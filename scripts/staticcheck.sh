#!/bin/sh
# Runs staticcheck at the pinned version over the given packages
# (default ./...). The version below is the single source of truth —
# CI and local runs both come through here, so a new staticcheck
# release can never break one without the other.
#
# The pin lives in a script rather than a tools.go because the module
# is deliberately dependency-free: `go run pkg@version` fetches and
# runs the tool without touching go.mod.
set -eu

STATICCHECK_VERSION=2025.1

cd "$(dirname "$0")/.."
go run "honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION}" "${@:-./...}"
