package triad

import "testing"

func TestOpenShardsOneWithShardFS(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		db, err := Open(Options{Shards: n, ShardFS: ShardMemFS()})
		if err != nil {
			t.Fatalf("Shards=%d: %v", n, err)
		}
		if err := db.Put([]byte("k"), []byte("v")); err != nil {
			t.Fatalf("Shards=%d Put: %v", n, err)
		}
		if v, err := db.Get([]byte("k")); err != nil || string(v) != "v" {
			t.Fatalf("Shards=%d Get = %q, %v", n, v, err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
