package triad

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/vfs"
)

// TestReopenShardCountMismatch is the fail-fast regression test for the
// persisted store metadata: a store created with 4 shards must refuse to
// reopen with 2 (before metadata landed, the keys silently vanished into
// unreachable shards) — and must also refuse a changed partitioner,
// while reopening correctly works without restating the configuration.
func TestReopenShardCountMismatch(t *testing.T) {
	fses := []vfs.FS{vfs.NewMemFS(), vfs.NewMemFS(), vfs.NewMemFS(), vfs.NewMemFS()}
	stableFS := func(i int) (vfs.FS, error) { return fses[i], nil }

	db, err := Open(Options{Shards: 4, ShardFS: stableFS})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"alpha", "bravo", "charlie", "delta", "echo"} {
		if err := db.Put([]byte(k), []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	_, err = Open(Options{Shards: 2, ShardFS: stableFS})
	if err == nil || !strings.Contains(err.Error(), "created with 4 shards") {
		t.Fatalf("reopen with 2 shards = %v, want a descriptive mismatch error", err)
	}
	// Shards: 1 with a ShardFS still goes through the shard layer, so
	// even collapsing to a single instance is caught.
	_, err = Open(Options{Shards: 1, ShardFS: stableFS})
	if err == nil || !strings.Contains(err.Error(), "created with 4 shards") {
		t.Fatalf("reopen with 1 shard = %v, want a descriptive mismatch error", err)
	}
	// A changed partitioner at the right count is caught too.
	_, err = Open(Options{
		Shards:      4,
		ShardFS:     stableFS,
		Partitioner: "range",
		RangeSplits: [][]byte{[]byte("c"), []byte("e"), []byte("g")},
	})
	if err == nil || !strings.Contains(err.Error(), "partitioner") {
		t.Fatalf("reopen with range partitioner = %v, want mismatch error", err)
	}

	// The matching configuration reopens and serves every key.
	db, err = Open(Options{Shards: 4, ShardFS: stableFS})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, k := range []string{"alpha", "bravo", "charlie", "delta", "echo"} {
		if v, err := db.Get([]byte(k)); err != nil || string(v) != k {
			t.Fatalf("after reopen Get(%s) = %q, %v", k, v, err)
		}
	}
}

// TestOpenRangePartitioned exercises the public range-partitioner knobs:
// splits route scans shard-locally, option validation catches misuse,
// and a reopen with no partitioner flags adopts the stored splits.
func TestOpenRangePartitioned(t *testing.T) {
	fses := []vfs.FS{vfs.NewMemFS(), vfs.NewMemFS(), vfs.NewMemFS()}
	stableFS := func(i int) (vfs.FS, error) { return fses[i], nil }

	if _, err := Open(Options{Shards: 3, ShardFS: ShardMemFS(), Partitioner: "range"}); err == nil {
		t.Fatal(`Partitioner "range" without RangeSplits succeeded`)
	}
	if _, err := Open(Options{Shards: 3, ShardFS: ShardMemFS(), Partitioner: "mod17"}); err == nil {
		t.Fatal("unknown partitioner name accepted")
	}
	// Routing knobs on an unsharded store are a misconfiguration, not a
	// silent no-op.
	if _, err := Open(Options{FS: vfs.NewMemFS(), Partitioner: "hash"}); err == nil ||
		!strings.Contains(err.Error(), "sharded stores only") {
		t.Fatalf("unsharded Partitioner = %v, want misconfiguration error", err)
	}
	if _, err := Open(Options{FS: vfs.NewMemFS(), RangeSplits: [][]byte{[]byte("m")}}); err == nil {
		t.Fatal("unsharded RangeSplits accepted")
	}
	// RangeSplits alone implies the range partitioner.
	db, err := Open(Options{
		Shards:      3,
		ShardFS:     stableFS,
		RangeSplits: [][]byte{[]byte("h"), []byte("p")},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"ant", "horse", "zebra"} {
		if err := db.Put([]byte(k), []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := db.NewIterator([]byte("a"), []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("bounded scan saw %d entries, want 1", n)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with no partitioner configuration: stored splits adopted.
	db, err = Open(Options{Shards: 3, ShardFS: stableFS})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, k := range []string{"ant", "horse", "zebra"} {
		if v, err := db.Get([]byte(k)); err != nil || string(v) != k {
			t.Fatalf("after adoption Get(%s) = %q, %v", k, v, err)
		}
	}
	if _, err := db.Get([]byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(nope) = %v, want ErrNotFound", err)
	}
}

func TestOpenShardsOneWithShardFS(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		db, err := Open(Options{Shards: n, ShardFS: ShardMemFS()})
		if err != nil {
			t.Fatalf("Shards=%d: %v", n, err)
		}
		if err := db.Put([]byte("k"), []byte("v")); err != nil {
			t.Fatalf("Shards=%d Put: %v", n, err)
		}
		if v, err := db.Get([]byte("k")); err != nil || string(v) != "v" {
			t.Fatalf("Shards=%d Get = %q, %v", n, v, err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
