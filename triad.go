// Package triad is a log-structured merge-tree (LSM) key-value store
// implementing TRIAD (Balmau et al., USENIX ATC 2017): three synergistic
// techniques that cut the background I/O of flushing and compaction —
//
//   - TRIAD-MEM keeps frequently-updated (hot) keys in memory across
//     flushes so they stop generating duplicate versions on disk;
//   - TRIAD-DISK defers L0→L1 compaction until the HyperLogLog-estimated
//     key overlap among L0 files makes the merge worthwhile;
//   - TRIAD-LOG adopts the commit log as an L0 table (CL-SSTable) so a
//     flush writes only a small sorted offset index instead of re-writing
//     every key and value.
//
// The same engine with all techniques disabled behaves like the paper's
// RocksDB baseline, which is what the benchmark harness compares against.
//
// Basic usage:
//
//	db, err := triad.Open(triad.Options{FS: vfs.NewMemFS(), Profile: triad.ProfileTriad})
//	...
//	err = db.Put([]byte("k"), []byte("v"))
//	v, err := db.Get([]byte("k"))
//	err = db.Close()
package triad

import (
	"errors"
	"fmt"

	"repro/internal/lsm"
	"repro/internal/memtable"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/vfs"
)

// Profile selects a pre-tuned engine configuration.
type Profile int

const (
	// ProfileTriad enables all three TRIAD techniques with the paper's
	// parameters (overlap threshold 0.4, max 6 L0 files, top-1% hot set).
	ProfileTriad Profile = iota
	// ProfileBaseline is the RocksDB-like leveled-compaction baseline.
	ProfileBaseline
)

// Options configures Open. Zero-valued fields take the profile defaults;
// Advanced overrides everything when non-nil.
type Options struct {
	// FS is where the store lives. Use vfs.NewMemFS() for an ephemeral
	// store or vfs.NewOSFS(dir) for a durable one. Required.
	FS vfs.FS
	// Profile picks the baseline or TRIAD configuration.
	Profile Profile
	// MemtableBytes overrides the memory-component budget when > 0.
	MemtableBytes int64
	// CommitLogBytes overrides the commit-log budget when > 0.
	CommitLogBytes int64
	// SyncWAL syncs the commit log on every write.
	SyncWAL bool
	// Shards, when > 1, hash-partitions the keyspace across that many
	// independent engine instances — each with its own commit log,
	// memtable, levels and background workers — multiplying the write
	// paths for concurrent workloads. ShardFS must then be set (FS is
	// ignored); the byte budgets above apply to each shard. The shard
	// count must be stable across opens of the same store.
	Shards int
	// ShardFS supplies shard i's filesystem when Shards > 1. Use
	// ShardMemFS() for an ephemeral store or ShardDirs(dir) to root each
	// shard in its own subdirectory of dir. When ShardFS is set, the
	// store always opens through the shard layer (even at Shards <= 1)
	// so the persisted store metadata is validated: reopening with a
	// shard count or partitioner different from creation returns an
	// error instead of silently misrouting keys.
	ShardFS func(i int) (vfs.FS, error)
	// Partitioner selects how keys map to shards when sharded: "hash"
	// (FNV-1a; balanced point ops, scans merge across all shards) or
	// "range" (sorted RangeSplits; contiguous scans stay shard-local).
	// Empty adopts whatever a durable store was created with, defaulting
	// to hash for new stores — or to range when RangeSplits is set.
	Partitioner string
	// RangeSplits are the Shards-1 strictly ascending split keys of the
	// "range" partitioner: shard 0 owns keys below RangeSplits[0], shard
	// i owns [RangeSplits[i-1], RangeSplits[i]), the last shard owns the
	// tail. Ignored by "hash".
	RangeSplits [][]byte
	// Advanced, when non-nil, is used verbatim (FS must still be set;
	// under Shards > 1 it is the per-shard template instead).
	Advanced *lsm.Options
}

// ShardMemFS returns a ShardFS factory of fresh in-memory filesystems.
func ShardMemFS() func(int) (vfs.FS, error) { return shard.MemFS() }

// ShardDirs returns a ShardFS factory rooting shard i at dir/shard-NNN.
func ShardDirs(dir string) func(int) (vfs.FS, error) { return shard.DirFS(dir) }

// Iterator is an ascending point-in-time scan; see DB.NewIterator.
type Iterator interface {
	// Next advances; the iterator starts before the first entry.
	Next() bool
	// Key returns the current key.
	Key() []byte
	// Value returns the current value.
	Value() []byte
	// Len reports the number of entries in the snapshot.
	Len() int
}

// engine is the surface shared by the single-instance and sharded
// backends (*lsm.DB and *shard.DB).
type engine interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error)
	Delete(key []byte) error
	Apply(*lsm.Batch) error
	Flush() error
	Stats() string
	CacheStats() (hits, misses int64)
	Metrics() metrics.Snapshot
	NumLevelFiles() []int
	Close() error
}

// DB is a TRIAD key-value store. All methods are safe for concurrent use.
type DB struct {
	inner   engine
	newIter func(start, limit []byte) (Iterator, error)
}

// ErrNotFound is returned by Get for absent or deleted keys.
var ErrNotFound = lsm.ErrNotFound

// Open opens or creates a store. An existing store recovers its tree from
// the manifest and replays the commit log (each shard independently when
// sharded).
func Open(o Options) (*DB, error) {
	var opts lsm.Options
	if o.Advanced != nil {
		opts = *o.Advanced
		if opts.FS == nil {
			opts.FS = o.FS
		}
	} else {
		switch o.Profile {
		case ProfileBaseline:
			opts = lsm.DefaultOptions(o.FS)
		default:
			opts = lsm.TriadOptions(o.FS)
		}
		if o.MemtableBytes > 0 {
			opts.MemtableBytes = o.MemtableBytes
		}
		if o.CommitLogBytes > 0 {
			opts.CommitLogBytes = o.CommitLogBytes
		}
		opts.SyncWAL = o.SyncWAL
	}
	if o.Shards > 1 && o.ShardFS == nil {
		return nil, errors.New("triad: Shards > 1 requires ShardFS (use ShardMemFS or ShardDirs)")
	}
	// Validate the partitioner knobs whether or not they will be used:
	// silently dropping a requested routing configuration is exactly the
	// misconfiguration class the store metadata exists to fail fast on.
	part, err := o.partitioner()
	if err != nil {
		return nil, err
	}
	if o.ShardFS == nil && (o.Partitioner != "" || len(o.RangeSplits) > 0) {
		return nil, errors.New("triad: Partitioner/RangeSplits apply to sharded stores only — set Shards and ShardFS")
	}
	if o.ShardFS != nil {
		// Every ShardFS store — including a caller parameterizing the
		// shard count down to one — opens through the shard layer, which
		// owns the durable store metadata and its reopen validation.
		opts.FS = nil
		inner, err := shard.Open(shard.Options{
			Shards:      o.Shards,
			Engine:      opts,
			NewFS:       o.ShardFS,
			Partitioner: part,
		})
		if err != nil {
			return nil, err
		}
		return &DB{
			inner:   inner,
			newIter: func(start, limit []byte) (Iterator, error) { return inner.NewIterator(start, limit) },
		}, nil
	}
	inner, err := lsm.Open(opts)
	if err != nil {
		return nil, err
	}
	return &DB{
		inner:   inner,
		newIter: func(start, limit []byte) (Iterator, error) { return inner.NewIterator(start, limit) },
	}, nil
}

// partitioner maps the string-typed Options knobs onto a shard-layer
// partitioner; nil means "adopt the stored one, defaulting to hash".
func (o Options) partitioner() (shard.Partitioner, error) {
	switch o.Partitioner {
	case "":
		if len(o.RangeSplits) == 0 {
			return nil, nil
		}
		return shard.NewRange(o.RangeSplits...)
	case "hash":
		return shard.FNV{}, nil
	case "range":
		if len(o.RangeSplits) == 0 {
			return nil, errors.New(`triad: Partitioner "range" requires RangeSplits (Shards-1 ascending keys)`)
		}
		return shard.NewRange(o.RangeSplits...)
	default:
		return nil, fmt.Errorf("triad: unknown Partitioner %q (want \"hash\" or \"range\")", o.Partitioner)
	}
}

// Put associates value with key.
func (db *DB) Put(key, value []byte) error { return db.inner.Put(key, value) }

// Get returns the value stored under key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) { return db.inner.Get(key) }

// Delete removes key.
func (db *DB) Delete(key []byte) error { return db.inner.Delete(key) }

// NewIterator returns an ascending point-in-time scan of [start, limit);
// nil bounds are unbounded. On a sharded store the per-shard snapshots
// are merged into one globally sorted stream.
func (db *DB) NewIterator(start, limit []byte) (Iterator, error) {
	return db.newIter(start, limit)
}

// Flush forces the memtable to disk and waits for it.
func (db *DB) Flush() error { return db.inner.Flush() }

// Batch is a set of writes applied atomically with Apply.
type Batch = lsm.Batch

// Apply commits a batch of writes atomically with respect to concurrent
// readers and writers. On a sharded store the batch is split and each
// per-shard sub-batch commits atomically on its shard.
func (db *DB) Apply(b *Batch) error { return db.inner.Apply(b) }

// Stats returns a human-readable dump of the tree shape and counters.
func (db *DB) Stats() string { return db.inner.Stats() }

// CacheStats reports block-cache hits and misses (zeros when the cache is
// disabled, the default).
func (db *DB) CacheStats() (hits, misses int64) { return db.inner.CacheStats() }

// Metrics snapshots the engine counters (write/read amplification,
// flush/compaction bytes and times).
func (db *DB) Metrics() metrics.Snapshot { return db.inner.Metrics() }

// NumLevelFiles reports the table count per LSM level.
func (db *DB) NumLevelFiles() []int { return db.inner.NumLevelFiles() }

// Close flushes background state and releases all resources.
func (db *DB) Close() error { return db.inner.Close() }

// Re-exported tuning types for Advanced configuration.
type (
	// EngineOptions is the full engine knob set.
	EngineOptions = lsm.Options
	// HotPolicy selects TRIAD-MEM's hot-key detector.
	HotPolicy = memtable.HotPolicy
)

// Hot-key detector choices (TRIAD-MEM).
const (
	HotTopK      = memtable.HotTopK
	HotAboveMean = memtable.HotAboveMean
)

// BaselineEngineOptions returns the baseline knob set for Advanced use.
func BaselineEngineOptions(fs vfs.FS) lsm.Options { return lsm.DefaultOptions(fs) }

// TriadEngineOptions returns the full-TRIAD knob set for Advanced use.
func TriadEngineOptions(fs vfs.FS) lsm.Options { return lsm.TriadOptions(fs) }
