// Package triad is a log-structured merge-tree (LSM) key-value store
// implementing TRIAD (Balmau et al., USENIX ATC 2017): three synergistic
// techniques that cut the background I/O of flushing and compaction —
//
//   - TRIAD-MEM keeps frequently-updated (hot) keys in memory across
//     flushes so they stop generating duplicate versions on disk;
//   - TRIAD-DISK defers L0→L1 compaction until the HyperLogLog-estimated
//     key overlap among L0 files makes the merge worthwhile;
//   - TRIAD-LOG adopts the commit log as an L0 table (CL-SSTable) so a
//     flush writes only a small sorted offset index instead of re-writing
//     every key and value.
//
// The same engine with all techniques disabled behaves like the paper's
// RocksDB baseline, which is what the benchmark harness compares against.
//
// Basic usage:
//
//	db, err := triad.Open(triad.Options{FS: vfs.NewMemFS(), Profile: triad.ProfileTriad})
//	...
//	err = db.Put([]byte("k"), []byte("v"))
//	v, err := db.Get([]byte("k"))
//	err = db.Close()
package triad

import (
	"errors"
	"fmt"

	"repro/internal/bgsched"
	"repro/internal/lsm"
	"repro/internal/memtable"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/sstable"
	"repro/internal/vfs"
)

// Profile selects a pre-tuned engine configuration.
type Profile int

const (
	// ProfileTriad enables all three TRIAD techniques with the paper's
	// parameters (overlap threshold 0.4, max 6 L0 files, top-1% hot set).
	ProfileTriad Profile = iota
	// ProfileBaseline is the RocksDB-like leveled-compaction baseline.
	ProfileBaseline
)

// Options configures Open. Zero-valued fields take the profile defaults;
// Advanced overrides everything when non-nil.
type Options struct {
	// FS is where the store lives. Use vfs.NewMemFS() for an ephemeral
	// store or vfs.NewOSFS(dir) for a durable one. Required.
	FS vfs.FS
	// Profile picks the baseline or TRIAD configuration.
	Profile Profile
	// MemtableBytes overrides the memory-component budget when > 0.
	MemtableBytes int64
	// CommitLogBytes overrides the commit-log budget when > 0.
	CommitLogBytes int64
	// BlockCacheBytes, when > 0, is the STORE-WIDE data-block cache
	// budget: one lock-striped, scan-resistant cache shared by all shards
	// (not a per-shard slice), so cache memory follows whichever shards
	// are hot. 0 disables caching.
	BlockCacheBytes int64
	// SyncWAL syncs the commit log on every write.
	SyncWAL bool
	// Shards, when > 1, hash-partitions the keyspace across that many
	// independent engine instances — each with its own commit log,
	// memtable, levels and background workers — multiplying the write
	// paths for concurrent workloads. ShardFS must then be set (FS is
	// ignored); the byte budgets above apply to each shard. The shard
	// count must be stable across opens of the same store.
	Shards int
	// ShardFS supplies shard i's filesystem when Shards > 1. Use
	// ShardMemFS() for an ephemeral store or ShardDirs(dir) to root each
	// shard in its own subdirectory of dir. When ShardFS is set, the
	// store always opens through the shard layer (even at Shards <= 1)
	// so the persisted store metadata is validated: reopening with a
	// shard count or partitioner different from creation returns an
	// error instead of silently misrouting keys.
	ShardFS func(i int) (vfs.FS, error)
	// Partitioner selects how keys map to shards when sharded: "hash"
	// (FNV-1a; balanced point ops, scans merge across all shards) or
	// "range" (sorted RangeSplits; contiguous scans stay shard-local).
	// Empty adopts whatever a durable store was created with, defaulting
	// to hash for new stores — or to range when RangeSplits is set.
	Partitioner string
	// RangeSplits are the Shards-1 strictly ascending split keys of the
	// "range" partitioner: shard 0 owns keys below RangeSplits[0], shard
	// i owns [RangeSplits[i-1], RangeSplits[i]), the last shard owns the
	// tail. Ignored by "hash".
	RangeSplits [][]byte
	// BackgroundWorkers sizes the store's shared background worker pool:
	// one bounded pool runs every shard's flushes and compactions with
	// flush-first priority and per-shard fairness, instead of two free
	// goroutines per shard. 0 sizes it min(GOMAXPROCS, shards+2) with a
	// floor of 2; negative restores the legacy per-shard goroutines (no
	// pool, no parallel subcompactions).
	BackgroundWorkers int
	// MaxSubcompactions caps how many parallel slices one leveled
	// compaction may split into when the pool is on. 0 allows up to the
	// pool's worker count; 1 keeps compactions monolithic.
	MaxSubcompactions int
	// Advanced, when non-nil, is used verbatim (FS must still be set;
	// under Shards > 1 it is the per-shard template instead).
	Advanced *lsm.Options
}

// ShardMemFS returns a ShardFS factory of fresh in-memory filesystems.
func ShardMemFS() func(int) (vfs.FS, error) { return shard.MemFS() }

// ShardDirs returns a ShardFS factory rooting shard i at dir/shard-NNN.
func ShardDirs(dir string) func(int) (vfs.FS, error) { return shard.DirFS(dir) }

// Iterator is an ascending, streaming point-in-time scan; see
// DB.NewIterator and Snapshot.NewIterator. Entries are produced lazily
// (nothing is materialized at creation); Close releases the underlying
// snapshot pin and must be called.
//
// Usage: for it.Next() { it.Key(), it.Value() }; check Err, then Close.
type Iterator interface {
	// Next advances; the iterator starts before the first entry.
	Next() bool
	// Key returns the current key (valid until Close).
	Key() []byte
	// Value returns the current value (valid until Close).
	Value() []byte
	// Err returns the first error the scan encountered (nil on clean
	// exhaustion).
	Err() error
	// Close releases the scan's resources and snapshot pin. Idempotent;
	// returns Err().
	Close() error
}

// Snapshot is a pinned, point-in-time read view of the whole store; see
// DB.NewSnapshot. Reads on it never observe later writes; on a sharded
// store the view is pinned at one epoch of the store-wide commit clock,
// so a cross-shard Apply batch is either entirely visible or entirely
// invisible, and concurrent conflicting batches appear in their
// serialized epoch order. A snapshot pins memory and on-disk files
// until Close.
type Snapshot struct {
	get     func(key []byte) ([]byte, error)
	newIter func(start, limit []byte) (Iterator, error)
	close   func() error
	epoch   uint64
}

// Epoch reports the snapshot's position in the store's total commit
// order: the snapshot observes exactly the commits at or below it. On
// an unsharded store this is the engine's sequence number — the same
// clock, viewed from one shard.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Get returns the value stored under key as of the snapshot, or
// ErrNotFound; ErrSnapshotClosed after Close.
func (s *Snapshot) Get(key []byte) ([]byte, error) { return s.get(key) }

// NewIterator returns a streaming scan of [start, limit) (nil bounds
// are unbounded) over the snapshot's frozen view. Iterators opened
// before Close stay valid until they close.
func (s *Snapshot) NewIterator(start, limit []byte) (Iterator, error) {
	return s.newIter(start, limit)
}

// Close releases the snapshot's pin. Idempotent.
func (s *Snapshot) Close() error { return s.close() }

// engine is the surface shared by the single-instance and sharded
// backends (*lsm.DB and *shard.DB).
type engine interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error)
	Delete(key []byte) error
	Apply(*lsm.Batch) error
	Flush() error
	Stats() string
	CacheStats() (hits, misses int64)
	BlockCacheStats() sstable.CacheStats
	Metrics() metrics.Snapshot
	NumLevelFiles() []int
	OpenSnapshots() int
	Close() error
}

// DB is a TRIAD key-value store. All methods are safe for concurrent use.
type DB struct {
	inner   engine
	newIter func(start, limit []byte) (Iterator, error)
	newSnap func() (*Snapshot, error)
	// ownPool is the private background pool built for an unsharded
	// store (the shard layer owns its own); closed after the engine.
	ownPool *bgsched.Pool
}

// ErrNotFound is returned by Get for absent or deleted keys.
var ErrNotFound = lsm.ErrNotFound

// ErrSnapshotClosed is returned by reads on a Snapshot after Close.
var ErrSnapshotClosed = lsm.ErrSnapshotClosed

// Open opens or creates a store. An existing store recovers its tree from
// the manifest and replays the commit log (each shard independently when
// sharded).
func Open(o Options) (*DB, error) {
	var opts lsm.Options
	if o.Advanced != nil {
		opts = *o.Advanced
		if opts.FS == nil {
			opts.FS = o.FS
		}
	} else {
		switch o.Profile {
		case ProfileBaseline:
			opts = lsm.DefaultOptions(o.FS)
		default:
			opts = lsm.TriadOptions(o.FS)
		}
		if o.MemtableBytes > 0 {
			opts.MemtableBytes = o.MemtableBytes
		}
		if o.CommitLogBytes > 0 {
			opts.CommitLogBytes = o.CommitLogBytes
		}
		if o.BlockCacheBytes > 0 {
			opts.BlockCacheBytes = o.BlockCacheBytes
		}
		opts.SyncWAL = o.SyncWAL
	}
	if o.Shards > 1 && o.ShardFS == nil {
		return nil, errors.New("triad: Shards > 1 requires ShardFS (use ShardMemFS or ShardDirs)")
	}
	// Validate the partitioner knobs whether or not they will be used:
	// silently dropping a requested routing configuration is exactly the
	// misconfiguration class the store metadata exists to fail fast on.
	part, err := o.partitioner()
	if err != nil {
		return nil, err
	}
	if o.ShardFS == nil && (o.Partitioner != "" || len(o.RangeSplits) > 0) {
		return nil, errors.New("triad: Partitioner/RangeSplits apply to sharded stores only — set Shards and ShardFS")
	}
	if o.ShardFS != nil {
		// Every ShardFS store — including a caller parameterizing the
		// shard count down to one — opens through the shard layer, which
		// owns the durable store metadata and its reopen validation.
		opts.FS = nil
		so := shard.Options{
			Shards:            o.Shards,
			Engine:            opts,
			NewFS:             o.ShardFS,
			Partitioner:       part,
			BackgroundWorkers: o.BackgroundWorkers,
			MaxSubcompactions: o.MaxSubcompactions,
		}
		if opts.BlockCacheBytes > 0 {
			// BlockCacheBytes is the store-wide budget, not a per-shard
			// slice: build the shared cache at exactly that size instead
			// of letting the shard layer multiply a per-shard share.
			so.BlockCache = sstable.NewCache(opts.BlockCacheBytes)
		}
		inner, err := shard.Open(so)
		if err != nil {
			return nil, err
		}
		return &DB{
			inner:   inner,
			newIter: wrapIter(inner.NewIterator),
			newSnap: wrapSnap(inner.NewSnapshot, (*shard.Snapshot).NewIterator, (*shard.Snapshot).Epoch),
		}, nil
	}
	// Unsharded stores get a private pool of their own (closed with the
	// DB) unless the caller opted back into the legacy goroutines or
	// supplied a pool through Advanced.
	var ownPool *bgsched.Pool
	if opts.Scheduler == nil && o.BackgroundWorkers >= 0 {
		w := o.BackgroundWorkers
		if w == 0 {
			w = bgsched.DefaultWorkers(1)
		}
		ownPool = bgsched.NewPool(w)
		opts.Scheduler = ownPool
	}
	if opts.MaxSubcompactions == 0 {
		opts.MaxSubcompactions = o.MaxSubcompactions
	}
	inner, err := lsm.Open(opts)
	if err != nil {
		if ownPool != nil {
			ownPool.Close()
		}
		return nil, err
	}
	return &DB{
		inner:   inner,
		newIter: wrapIter(inner.NewIterator),
		newSnap: wrapSnap(inner.NewSnapshot, (*lsm.Snapshot).NewIterator, (*lsm.Snapshot).Seq),
		ownPool: ownPool,
	}, nil
}

// wrapIter adapts a backend's concrete iterator constructor to the
// public Iterator interface. The error path must return an explicit
// nil: boxing a typed-nil concrete iterator would pass callers'
// `it != nil` checks and panic on use.
func wrapIter[I Iterator](newIter func(start, limit []byte) (I, error)) func(start, limit []byte) (Iterator, error) {
	return func(start, limit []byte) (Iterator, error) {
		it, err := newIter(start, limit)
		if err != nil {
			return nil, err
		}
		return it, nil
	}
}

// wrapSnap adapts a backend's snapshot constructor (and its iterator
// and epoch methods) to the public Snapshot wrapper — shared by the
// sharded and unsharded backends, whose snapshot APIs are structurally
// identical but nominally distinct types.
func wrapSnap[S interface {
	Get(key []byte) ([]byte, error)
	Close() error
}, I Iterator](newSnap func() (S, error), newIter func(S, []byte, []byte) (I, error), epoch func(S) uint64) func() (*Snapshot, error) {
	return func() (*Snapshot, error) {
		s, err := newSnap()
		if err != nil {
			return nil, err
		}
		return &Snapshot{
			get: s.Get,
			newIter: wrapIter(func(start, limit []byte) (I, error) {
				return newIter(s, start, limit)
			}),
			close: s.Close,
			epoch: epoch(s),
		}, nil
	}
}

// partitioner maps the string-typed Options knobs onto a shard-layer
// partitioner; nil means "adopt the stored one, defaulting to hash".
func (o Options) partitioner() (shard.Partitioner, error) {
	switch o.Partitioner {
	case "":
		if len(o.RangeSplits) == 0 {
			return nil, nil
		}
		return shard.NewRange(o.RangeSplits...)
	case "hash":
		return shard.FNV{}, nil
	case "range":
		if len(o.RangeSplits) == 0 {
			return nil, errors.New(`triad: Partitioner "range" requires RangeSplits (Shards-1 ascending keys)`)
		}
		return shard.NewRange(o.RangeSplits...)
	default:
		return nil, fmt.Errorf("triad: unknown Partitioner %q (want \"hash\" or \"range\")", o.Partitioner)
	}
}

// Put associates value with key.
func (db *DB) Put(key, value []byte) error { return db.inner.Put(key, value) }

// Get returns the value stored under key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) { return db.inner.Get(key) }

// Delete removes key.
func (db *DB) Delete(key []byte) error { return db.inner.Delete(key) }

// NewIterator returns an ascending, streaming point-in-time scan of
// [start, limit); nil bounds are unbounded. It is sugar for a
// single-use snapshot iterator: the snapshot is taken now and released
// by Close. On a sharded store the per-shard views are merged into one
// globally sorted stream; a scan spanning several shards is pinned at
// one global instant (see NewSnapshot).
func (db *DB) NewIterator(start, limit []byte) (Iterator, error) {
	return db.newIter(start, limit)
}

// NewSnapshot pins the store's current state as a frozen read view.
// Reads through the snapshot ignore all later writes; background
// flushes and compactions keep running, but the files the snapshot
// reads survive until it closes. The snapshot must be Closed.
func (db *DB) NewSnapshot() (*Snapshot, error) { return db.newSnap() }

// OpenSnapshots reports the number of live (unclosed) snapshots
// (observability; includes the single-use snapshots of open iterators
// on unsharded stores).
func (db *DB) OpenSnapshots() int { return db.inner.OpenSnapshots() }

// Flush forces the memtable to disk and waits for it.
func (db *DB) Flush() error { return db.inner.Flush() }

// Batch is a set of writes applied atomically with Apply.
type Batch = lsm.Batch

// Apply commits a batch of writes atomically with respect to concurrent
// readers and writers. On a sharded store the batch is split and each
// per-shard sub-batch commits atomically on its shard.
func (db *DB) Apply(b *Batch) error { return db.inner.Apply(b) }

// Stats returns a human-readable dump of the tree shape and counters.
func (db *DB) Stats() string { return db.inner.Stats() }

// CacheStats reports block-cache hits and misses (zeros when the cache is
// disabled, the default).
func (db *DB) CacheStats() (hits, misses int64) { return db.inner.CacheStats() }

// BlockCacheStats reports the full block-cache counters: hits, misses,
// resident and capacity bytes, evictions, and scan-admission rejects.
func (db *DB) BlockCacheStats() sstable.CacheStats { return db.inner.BlockCacheStats() }

// BlockCacheStats re-exports the cache counter type for callers of
// DB.BlockCacheStats.
type BlockCacheStats = sstable.CacheStats

// Metrics snapshots the engine counters (write/read amplification,
// flush/compaction bytes and times).
func (db *DB) Metrics() metrics.Snapshot { return db.inner.Metrics() }

// NumLevelFiles reports the table count per LSM level.
func (db *DB) NumLevelFiles() []int { return db.inner.NumLevelFiles() }

// ApplyLatency returns the store's per-batch commit latency recorder,
// or nil when the backend does not keep one (unsharded stores, or
// sharded stores opened with observability disabled). Snapshot it for
// quantiles; Record on it is not for callers.
func (db *DB) ApplyLatency() *obs.Hist {
	if s, ok := db.inner.(*shard.DB); ok {
		return s.ApplyLatency()
	}
	return nil
}

// Events returns the store's background-event journal (flushes,
// compactions, snapshot GC, write stalls), or nil when the backend does
// not keep one (unsharded stores, or observability disabled).
func (db *DB) Events() *obs.Journal {
	if s, ok := db.inner.(*shard.DB); ok {
		return s.Events()
	}
	return nil
}

// Close flushes background state and releases all resources.
func (db *DB) Close() error {
	err := db.inner.Close()
	if db.ownPool != nil {
		db.ownPool.Close()
		db.ownPool = nil
	}
	return err
}

// Re-exported tuning types for Advanced configuration.
type (
	// EngineOptions is the full engine knob set.
	EngineOptions = lsm.Options
	// HotPolicy selects TRIAD-MEM's hot-key detector.
	HotPolicy = memtable.HotPolicy
)

// Hot-key detector choices (TRIAD-MEM).
const (
	HotTopK      = memtable.HotTopK
	HotAboveMean = memtable.HotAboveMean
)

// BaselineEngineOptions returns the baseline knob set for Advanced use.
func BaselineEngineOptions(fs vfs.FS) lsm.Options { return lsm.DefaultOptions(fs) }

// TriadEngineOptions returns the full-TRIAD knob set for Advanced use.
func TriadEngineOptions(fs vfs.FS) lsm.Options { return lsm.TriadOptions(fs) }
