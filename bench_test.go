// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (§5), plus ablation benches for the TRIAD knobs.
//
// Each figure benchmark executes the same experiment grid the triadbench
// command prints, at a reduced scale so the full suite completes in
// minutes, and reports the figure's headline quantities via
// b.ReportMetric (KOPS, write amplification, compacted MB, ...). Run
//
//	go test -bench=. -benchmem
//
// or a single figure:
//
//	go test -bench=BenchmarkFig9A -benchmem
package triad

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bgsched"
	"repro/internal/harness"
	"repro/internal/lsm"
	"repro/internal/shard"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// benchScale keeps every figure under a few seconds per iteration.
func benchScale() harness.Scale {
	return harness.Scale{
		Keys:          40_000,
		Ops:           80_000,
		ProdScale:     1500,
		ProdOps:       100_000,
		MemtableBytes: 384 << 10,
		Threads:       8,
	}
}

// BenchmarkFig2 measures the throughput cost of background I/O
// (paper Figure 2): baseline vs the same engine with flush/compaction
// disabled, over four workload mixes.
func BenchmarkFig2(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		cells, err := harness.Fig2(s, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		// Report the uniform 10r-90w pair, the paper's starkest case.
		b.ReportMetric(cells[2].Res.KOPS, "base_kops")
		b.ReportMetric(cells[3].Res.KOPS, "nobg_kops")
		b.ReportMetric(cells[3].Res.KOPS/cells[2].Res.KOPS, "speedup")
	}
}

// BenchmarkFig9A runs the four production workload models on baseline and
// TRIAD (paper Figure 9A: throughput and write amplification).
func BenchmarkFig9A(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		cells, err := harness.Fig9A(s, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		var maxGain, maxWAcut float64
		for j := 0; j < len(cells); j += 2 {
			base, triad := cells[j].Res, cells[j+1].Res
			if g := triad.KOPS / base.KOPS; g > maxGain {
				maxGain = g
			}
			if triad.WA > 0 {
				if c := base.WA / triad.WA; c > maxWAcut {
					maxWAcut = c
				}
			}
		}
		b.ReportMetric(maxGain, "max_tput_gain_x")
		b.ReportMetric(maxWAcut, "max_wa_cut_x")
	}
}

// BenchmarkFig9B sweeps thread counts on the three synthetic skews
// (paper Figure 9B throughput grid; Figure 9C's WA comes from the same
// runs). The full grid lives in Fig9BC; here each skew × thread cell is a
// sub-benchmark so `-bench` can select slices of the grid.
func BenchmarkFig9B(b *testing.B) {
	s := benchScale()
	skews := map[string]workload.KeyDist{
		"Skew1-99":  workload.HotCold{N: s.Keys, HotFraction: 0.01, HotAccess: 0.99},
		"Skew20-80": workload.HotCold{N: s.Keys, HotFraction: 0.20, HotAccess: 0.80},
		"NoSkew":    workload.Uniform{N: s.Keys},
	}
	for name, dist := range skews {
		for _, threads := range []int{1, 8, 16} {
			for _, mode := range []string{"baseline", "triad"} {
				b.Run(fmt.Sprintf("%s/t%d/%s", name, threads, mode), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						res := runOne(b, s, mode, dist, 0.1, threads)
						b.ReportMetric(res.KOPS, "kops")
						b.ReportMetric(res.WA, "wa")
					}
				})
			}
		}
	}
}

// BenchmarkFig9C reports the write-amplification comparison at the
// paper's 8-thread point for each skew (Figure 9C).
func BenchmarkFig9C(b *testing.B) {
	s := benchScale()
	skews := []struct {
		name string
		dist workload.KeyDist
	}{
		{"Skew1-99", workload.HotCold{N: s.Keys, HotFraction: 0.01, HotAccess: 0.99}},
		{"Skew20-80", workload.HotCold{N: s.Keys, HotFraction: 0.20, HotAccess: 0.80}},
		{"NoSkew", workload.Uniform{N: s.Keys}},
	}
	for _, sk := range skews {
		b.Run(sk.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base := runOne(b, s, "baseline", sk.dist, 0.1, s.Threads)
				triad := runOne(b, s, "triad", sk.dist, 0.1, s.Threads)
				b.ReportMetric(base.WA, "base_wa")
				b.ReportMetric(triad.WA, "triad_wa")
			}
		})
	}
}

// BenchmarkFig9D reports compacted bytes and % time in compaction
// (paper Figure 9D) for the three skews.
func BenchmarkFig9D(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		cells, err := harness.Fig9D(s, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		// Cells alternate triad/base per skew; report the skewed pair.
		b.ReportMetric(cells[0].Res.CompactedMB, "triad_skew_compMB")
		b.ReportMetric(cells[1].Res.CompactedMB, "base_skew_compMB")
		b.ReportMetric(cells[0].Res.PctCompaction, "triad_skew_pct")
		b.ReportMetric(cells[1].Res.PctCompaction, "base_skew_pct")
	}
}

// BenchmarkFig10 reports the per-technique throughput breakdown
// (paper Figure 10) on the uniform and highly skewed workloads.
func BenchmarkFig10(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		out, err := harness.Fig10(s, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for wl, cells := range out {
			prefix := "uniform_"
			if wl == "Skew 1-99" {
				prefix = "skew_"
			}
			for _, c := range cells {
				switch {
				case contains(c.Label, "TRIAD-MEM"):
					b.ReportMetric(c.Res.KOPS, prefix+"mem_kops")
				case contains(c.Label, "TRIAD-DISK"):
					b.ReportMetric(c.Res.KOPS, prefix+"disk_kops")
				case contains(c.Label, "TRIAD-LOG"):
					b.ReportMetric(c.Res.KOPS, prefix+"log_kops")
				case contains(c.Label, "RocksDB"):
					b.ReportMetric(c.Res.KOPS, prefix+"base_kops")
				default:
					b.ReportMetric(c.Res.KOPS, prefix+"triad_kops")
				}
			}
		}
	}
}

// BenchmarkFig11 reports the per-technique WA (normalized to baseline)
// and the RA breakdown (paper Figure 11).
func BenchmarkFig11(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		out, err := harness.Fig11(s, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		uniform := out["no skew"]
		var baseWA float64
		for _, c := range uniform {
			if contains(c.Label, "RocksDB") {
				baseWA = c.Res.WA
			}
		}
		for _, c := range uniform {
			switch {
			case contains(c.Label, "TRIAD-DISK"):
				b.ReportMetric(c.Res.WA/baseWA, "disk_norm_wa")
				b.ReportMetric(c.Res.RA, "disk_ra")
			case contains(c.Label, "TRIAD-LOG"):
				b.ReportMetric(c.Res.WA/baseWA, "log_norm_wa")
			case contains(c.Label, "RocksDB"):
				b.ReportMetric(c.Res.RA, "base_ra")
			}
		}
	}
}

// --- Ablation benches for the TRIAD knobs DESIGN.md calls out ---

// BenchmarkAblationOverlapThreshold sweeps TRIAD-DISK's overlap-ratio
// gate on a uniform workload.
func BenchmarkAblationOverlapThreshold(b *testing.B) {
	s := benchScale()
	for _, th := range []float64{0.1, 0.4, 0.8} {
		b.Run(fmt.Sprintf("th=%.1f", th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runCustom(b, s, workload.Uniform{N: s.Keys}, 0.1, func(o *lsm.Options) {
					o.TriadMem, o.TriadDisk, o.TriadLog = true, true, true
					o.OverlapRatioThreshold = th
				})
				b.ReportMetric(res.WA, "wa")
				b.ReportMetric(float64(res.Deferred), "deferrals")
			}
		})
	}
}

// BenchmarkAblationMaxL0 sweeps the forced-compaction L0 cap.
func BenchmarkAblationMaxL0(b *testing.B) {
	s := benchScale()
	for _, maxL0 := range []int{4, 6, 12} {
		b.Run(fmt.Sprintf("maxL0=%d", maxL0), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runCustom(b, s, workload.Uniform{N: s.Keys}, 0.1, func(o *lsm.Options) {
					o.TriadMem, o.TriadDisk, o.TriadLog = true, true, true
					o.MaxFilesL0 = maxL0
				})
				b.ReportMetric(res.WA, "wa")
				b.ReportMetric(res.RA, "ra")
			}
		})
	}
}

// BenchmarkAblationHotFraction sweeps TRIAD-MEM's hot-set budget under
// the 20%-80% skew where the hot set cannot fully fit (paper §5.3's WS2
// robustness argument).
func BenchmarkAblationHotFraction(b *testing.B) {
	s := benchScale()
	dist := workload.HotCold{N: s.Keys, HotFraction: 0.20, HotAccess: 0.80}
	for _, hf := range []float64{0.01, 0.10, 0.50} {
		b.Run(fmt.Sprintf("hot=%.2f", hf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runCustom(b, s, dist, 0.1, func(o *lsm.Options) {
					o.TriadMem = true
					o.HotPolicy = 0 // HotTopK
					o.HotFraction = hf
				})
				b.ReportMetric(res.WA, "wa")
				b.ReportMetric(res.KOPS, "kops")
			}
		})
	}
}

// BenchmarkAblationFlushTH sweeps TRIAD-MEM's FLUSH_TH small-memtable
// skip on the highly skewed workload that triggers log-full flushes.
func BenchmarkAblationFlushTH(b *testing.B) {
	s := benchScale()
	dist := workload.HotCold{N: s.Keys, HotFraction: 0.01, HotAccess: 0.99}
	for _, frac := range []float64{0, 0.5, 0.9} {
		b.Run(fmt.Sprintf("th=%.1f", frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runCustom(b, s, dist, 0.1, func(o *lsm.Options) {
					o.TriadMem, o.TriadDisk, o.TriadLog = true, true, true
					if frac == 0 {
						o.FlushThresholdBytes = 1 // effectively never skip
					} else {
						o.FlushThresholdBytes = int64(frac * float64(o.MemtableBytes))
					}
				})
				b.ReportMetric(float64(res.FlushSkips), "flush_skips")
				b.ReportMetric(res.WA, "wa")
			}
		})
	}
}

// BenchmarkSizeTiered compares leveled vs size-tiered compaction, with
// and without TRIAD-DISK's HLL bucket selection (the §2 adaptation).
func BenchmarkSizeTiered(b *testing.B) {
	s := benchScale()
	dist := workload.HotCold{N: s.Keys, HotFraction: 0.20, HotAccess: 0.80}
	for _, v := range []struct {
		name       string
		sizeTiered bool
		triadDisk  bool
	}{
		{"leveled", false, false},
		{"size-tiered", true, false},
		{"size-tiered+disk", true, true},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runCustom(b, s, dist, 0.1, func(o *lsm.Options) {
					o.SizeTieredCompaction = v.sizeTiered
					o.TriadDisk = v.triadDisk
				})
				b.ReportMetric(res.KOPS, "kops")
				b.ReportMetric(res.WA, "wa")
				b.ReportMetric(res.RA, "ra")
			}
		})
	}
}

// BenchmarkAutoTuneHotFraction compares a badly sized fixed hot budget
// against the hill-climbing tuner (§4.1 future work) on a 10%-hot skew.
func BenchmarkAutoTuneHotFraction(b *testing.B) {
	s := benchScale()
	dist := workload.HotCold{N: s.Keys, HotFraction: 0.10, HotAccess: 0.90}
	for _, v := range []struct {
		name string
		auto bool
	}{{"fixed-bad", false}, {"auto-tuned", true}} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runCustom(b, s, dist, 0.1, func(o *lsm.Options) {
					o.TriadMem = true
					o.HotPolicy = 0 // HotTopK, the budgeted policy
					o.HotFraction = 0.002
					o.AutoTuneHotFraction = v.auto
				})
				b.ReportMetric(res.WA, "wa")
				b.ReportMetric(res.FlushedMB, "flushedMB")
			}
		})
	}
}

// BenchmarkFig10Device is the SSD-latency-model variant of Figure 10
// (see EXPERIMENTS.md on why TRIAD-LOG needs charged I/O to shine).
func BenchmarkFig10Device(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		cells, err := harness.Fig10Device(s, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			switch c.Label {
			case "TRIAD-LOG":
				b.ReportMetric(c.Res.KOPS, "log_kops")
			case "RocksDB":
				b.ReportMetric(c.Res.KOPS, "base_kops")
			case "TRIAD":
				b.ReportMetric(c.Res.KOPS, "triad_kops")
			}
		}
	}
}

// --- Sharded-engine scaling ---

// BenchmarkShardScaling measures concurrent mixed read/write throughput
// (8 parallel workers, 10% reads / 90% writes, uniform keys) against the
// sharded engine at 1, 2, 4 and 8 shards. Each shard is a full engine on
// its own simulated device, so the single-shard row pays for every WAL
// append and flush on one device behind one memtable mutex, while the
// multi-shard rows overlap those waits — the kops metric should rise
// with the shard count, demonstrating scaling over the 1-shard
// configuration.
func BenchmarkShardScaling(b *testing.B) {
	s := benchScale()
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.Spec{
					Name:                "shard-bench",
					Engine:              benchShardEngine(s),
					Shards:              shards,
					DevicePerShard:      true,
					Mix:                 workload.Mix{Dist: workload.Uniform{N: s.Keys}, ReadFraction: 0.1},
					Threads:             8,
					Ops:                 s.Ops,
					PrepopulateFraction: 0.5,
					Latency:             harness.SSDModel(),
					Seed:                1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.KOPS, "kops")
				b.ReportMetric(res.WA, "wa")
				b.ReportMetric(float64(res.P99.Nanoseconds())/1000, "p99_us")
			}
		})
	}
}

func benchShardEngine(s harness.Scale) lsm.Options {
	o := lsm.TriadOptions(nil)
	o.MemtableBytes = s.MemtableBytes
	o.CommitLogBytes = 4 * s.MemtableBytes
	o.FlushThresholdBytes = s.MemtableBytes / 2
	o.BaseLevelBytes = 8 * s.MemtableBytes
	o.TargetFileBytes = s.MemtableBytes
	o.HotPolicy = HotAboveMean
	return o
}

// BenchmarkRangeScanSharded compares range-scan throughput on a 4-shard
// store under hash vs range partitioning, at identical budgets over the
// same settled keyspace. Each iteration runs one 1%-of-keyspace scan:
// under hash routing it k-way merges all four shards; under range
// routing it is almost always one shard's iterator, verbatim. The
// keys/s metric is the headline — range routing should win by several
// times at 4 shards.
func BenchmarkRangeScanSharded(b *testing.B) {
	s := benchScale()
	const shards, keySize = 4, 8
	span := s.Keys / 100
	for _, mode := range []string{"hash", "range"} {
		b.Run(mode, func(b *testing.B) {
			var part shard.Partitioner
			if mode == "range" {
				var err error
				part, err = shard.NewRange(harness.EvenRangeSplits(s.Keys, keySize, shards)...)
				if err != nil {
					b.Fatal(err)
				}
			}
			db, err := shard.Open(shard.Options{
				Shards:      shards,
				Engine:      shard.DivideBudgets(benchShardEngine(s), shards),
				NewFS:       shard.MemFS(),
				Partitioner: part,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			key := make([]byte, keySize)
			val := make([]byte, 128)
			for i := uint64(0); i < s.Keys; i++ {
				workload.EncodeKey(key, i)
				if err := db.Put(key, val); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				b.Fatal(err)
			}
			lo := make([]byte, keySize)
			hi := make([]byte, keySize)
			var entries int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := (uint64(i) * 2654435761) % (s.Keys - span)
				workload.EncodeKey(lo, a)
				workload.EncodeKey(hi, a+span)
				it, err := db.NewIterator(lo, hi)
				if err != nil {
					b.Fatal(err)
				}
				for it.Next() {
					entries++
				}
				if err := it.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if entries == 0 {
				b.Fatal("scans saw no entries")
			}
			b.ReportMetric(float64(entries)/b.Elapsed().Seconds(), "keys/s")
			b.ReportMetric(float64(entries)/float64(b.N), "keys/scan")
		})
	}
}

// BenchmarkNetThroughput drives the RESP network front end over
// loopback TCP: 8 pipelined client connections, 90% SET / 10% GET,
// group commit on vs off. The gc-on/gc-off kops ratio is the headline —
// coalescing all connections' writes into shard-split batches should
// beat one Apply per command once connections contend.
func BenchmarkNetThroughput(b *testing.B) {
	s := benchScale()
	s.Keys = 20_000
	s.Ops = 40_000
	for i := 0; i < b.N; i++ {
		cells, err := harness.NetThroughput(s, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		// Report the 8-connection pair, selected by label so the
		// harness's connection-count sweep can change freely.
		byLabel := func(label string) harness.Result {
			for _, c := range cells {
				if c.Label == label {
					return c.Res
				}
			}
			b.Fatalf("no cell labeled %q", label)
			return harness.Result{}
		}
		on, off := byLabel("net c=8 gc=on"), byLabel("net c=8 gc=off")
		b.ReportMetric(on.KOPS, "gc_kops")
		b.ReportMetric(off.KOPS, "perop_kops")
		b.ReportMetric(on.KOPS/off.KOPS, "gain")
		b.ReportMetric(float64(on.P99.Nanoseconds())/1000, "gc_p99_us")
	}
}

// BenchmarkNetObsOverhead is the acceptance benchmark for the
// observability layer: the same 8-connection net experiment with the
// full instrumentation (per-command histograms, stage timing, event
// journal, apply latency) against the -no-observability configuration
// where every recorder is nil. The instrumented kops must stay within
// a few percent of no-op recording — compare the two cells' kops.
func BenchmarkNetObsOverhead(b *testing.B) {
	s := benchScale()
	s.Keys = 20_000
	s.Ops = 40_000
	for _, v := range []struct {
		name  string
		noObs bool
	}{{"instrumented", false}, {"no-op", true}} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.NetRun(s, 4, 8, false, v.noObs, 0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.KOPS, "kops")
				b.ReportMetric(float64(res.P99.Nanoseconds())/1000, "p99_us")
			}
		})
	}
}

// BenchmarkTraceOverhead is the acceptance benchmark for request
// tracing: the 8-connection net experiment at -trace-sample 0 (tracer
// off entirely), 0.01 (a production-reasonable rate, which must stay
// within noise of the no-observability floor), and 1.0 (every command
// traced — the worst case, quantifying what full tracing costs).
func BenchmarkTraceOverhead(b *testing.B) {
	s := benchScale()
	s.Keys = 20_000
	s.Ops = 40_000
	for _, v := range []struct {
		name   string
		noObs  bool
		sample float64
	}{
		{"no-observability", true, 0},
		{"sample-0", false, 0},
		{"sample-0.01", false, 0.01},
		{"sample-1", false, 1},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.NetRun(s, 4, 8, false, v.noObs, v.sample)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.KOPS, "kops")
				b.ReportMetric(float64(res.P99.Nanoseconds())/1000, "p99_us")
			}
		})
	}
}

// BenchmarkCommitPipeline measures the store-wide commit pipeline under
// contention. apply/cross-w4 drives four goroutines issuing conflicting
// cross-shard batches (every batch writes the same key set spanning all
// shards) — the workload the epoch clock serializes. snapshot/idle is
// the raw capture cost of shard.DB.NewSnapshot; snapshot/under-load
// takes snapshots while the same conflicting writers run, which is the
// barrier cost the epoch pin replaced (formerly: quiesce cross-shard
// Applies and hold every shard's write lock at once).
func BenchmarkCommitPipeline(b *testing.B) {
	const shards = 4
	openStore := func(b *testing.B) *shard.DB {
		s := benchScale()
		db, err := shard.Open(shard.Options{
			Shards: shards,
			Engine: shard.DivideBudgets(benchShardEngine(s), shards),
			NewFS:  shard.MemFS(),
		})
		if err != nil {
			b.Fatal(err)
		}
		return db
	}
	// conflictKeys spans every shard so each batch is a cross-shard
	// conflict with every other batch.
	conflictKeys := func(db *shard.DB) [][]byte {
		var keys [][]byte
		seen := make(map[int]bool)
		for i := 0; len(keys) < 4*shards; i++ {
			k := []byte(fmt.Sprintf("conflict-%04d", i))
			seen[db.Partitioner().Partition(k, shards)] = true
			keys = append(keys, k)
		}
		if len(seen) != shards {
			b.Fatal("conflict keys do not span all shards")
		}
		return keys
	}
	val := []byte("0123456789abcdef0123456789abcdef")
	b.Run("apply/cross-w4", func(b *testing.B) {
		db := openStore(b)
		defer db.Close()
		keys := conflictKeys(db)
		// Exactly 4 writers regardless of GOMAXPROCS (RunParallel would
		// scale with the machine and the w4 label would lie); b.N is
		// split across them.
		const writers = 4
		b.ResetTimer()
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			n := b.N / writers
			if w < b.N%writers {
				n++
			}
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					batch := &shard.Batch{}
					for _, k := range keys {
						batch.Put(k, val)
					}
					if err := db.Apply(batch); err != nil {
						b.Error(err)
						return
					}
				}
			}(n)
		}
		wg.Wait()
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "batches/s")
		b.ReportMetric(float64(b.N*len(keys))/b.Elapsed().Seconds()/1000, "kops")
	})
	b.Run("snapshot/idle", func(b *testing.B) {
		db := openStore(b)
		defer db.Close()
		for i := 0; i < 10_000; i++ {
			if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), val); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := db.NewSnapshot()
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("snapshot/under-load", func(b *testing.B) {
		db := openStore(b)
		defer db.Close()
		keys := conflictKeys(db)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					batch := &shard.Batch{}
					for _, k := range keys {
						batch.Put(k, val)
					}
					if err := db.Apply(batch); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := db.NewSnapshot()
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
}

// BenchmarkCacheSkewedTenants is the acceptance benchmark for the
// store-wide block cache: skewed multi-tenant reads (tenant ranks
// Zipf(2.0), each tenant range-pinned to its own shard) against the
// shared scan-resistant cache vs equal-split per-shard plain LRUs at
// IDENTICAL total cache bytes. The shared cache must win on both hit
// rate and kops — memory pooled store-wide follows the hot shard
// instead of sitting pre-split in cold ones.
func BenchmarkCacheSkewedTenants(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		cells, err := harness.CacheSkew(s, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		shared, split := cells[0].Res, cells[1].Res
		b.ReportMetric(shared.KOPS, "shared_kops")
		b.ReportMetric(split.KOPS, "split_kops")
		b.ReportMetric(shared.KOPS/split.KOPS, "gain")
		b.ReportMetric(100*shared.CacheHitRate, "shared_hit_pct")
		b.ReportMetric(100*split.CacheHitRate, "split_hit_pct")
	}
}

// --- Background-scheduler benchmarks ---

// BenchmarkIngestToQuiesce is the acceptance benchmark for the shared
// background worker pool: the same sustained write-only ingest driven
// all the way to quiesce (flush + compact-all) under the legacy
// free-goroutine engine and under the pool with parallel
// subcompactions, at identical aggregate memory. Compare kops and
// stall_s across the sub-benchmarks: the pool rows must match or beat
// legacy throughput and shrink total stall seconds. Meaningful at
// -cpu 2,4 — parallel slices need spare cores to win.
func BenchmarkIngestToQuiesce(b *testing.B) {
	s := benchScale()
	s.Shards = 4
	for _, v := range []struct {
		name    string
		workers int
		subcomp int
	}{
		{"legacy", -1, 1},
		{"pool-2w", 2, 2},
		{"pool-4w", 4, 4},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.RunIngest(harness.Spec{
					Name:                v.name,
					Engine:              shard.DivideBudgets(benchShardEngine(s), s.Shards),
					Shards:              s.Shards,
					Mix:                 workload.Mix{Dist: workload.Uniform{N: s.Keys}},
					Threads:             s.Threads,
					Ops:                 s.Ops,
					PrepopulateFraction: 0.5,
					BackgroundWorkers:   v.workers,
					MaxSubcompactions:   v.subcomp,
					Seed:                42,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.KOPS, "kops")
				b.ReportMetric(res.StallTime.Seconds(), "stall_s")
				b.ReportMetric(float64(res.Stalls), "stalls")
				b.ReportMetric(res.Quiesce.Seconds(), "quiesce_s")
			}
		})
	}
}

// BenchmarkSubcompaction times one full-tree compaction of the same
// settled store, monolithic vs split into parallel key-range slices on
// a 4-worker pool. The timed region is CompactAll only; load and flush
// happen outside the timer. Meaningful at -cpu 2,4: with one core the
// sliced row degenerates to sequential merges plus split overhead,
// with spare cores it should approach a worker-count speedup.
func BenchmarkSubcompaction(b *testing.B) {
	const keys = 60_000
	for _, v := range []struct {
		name    string
		subcomp int
	}{
		{"monolithic", 1},
		{"sliced-4", 4},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				pool := bgsched.NewPool(4)
				o := lsm.TriadOptions(vfs.NewMemFS())
				o.MemtableBytes = 256 << 10
				o.TargetFileBytes = 64 << 10
				o.BaseLevelBytes = 512 << 10
				o.DisableAutoCompaction = true
				o.Scheduler = pool
				o.MaxSubcompactions = v.subcomp
				db, err := lsm.Open(o)
				if err != nil {
					b.Fatal(err)
				}
				val := []byte("0123456789abcdef0123456789abcdef0123456789abcdef")
				for k := 0; k < keys; k++ {
					if err := db.Put([]byte(fmt.Sprintf("key-%08d", k)), val); err != nil {
						b.Fatal(err)
					}
				}
				if err := db.Flush(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := db.CompactAll(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
				pool.Close()
				b.StartTimer()
			}
		})
	}
}

// --- Micro-benchmarks for the public API ---

// BenchmarkPut measures the raw write path (WAL append + memtable).
func BenchmarkPut(b *testing.B) {
	for _, mode := range []string{"baseline", "triad"} {
		b.Run(mode, func(b *testing.B) {
			fs := vfs.NewMemFS()
			profile := ProfileTriad
			if mode == "baseline" {
				profile = ProfileBaseline
			}
			db, err := Open(Options{FS: fs, Profile: profile})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			key := make([]byte, 8)
			val := make([]byte, 255)
			b.SetBytes(263)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				workload.EncodeKey(key, uint64(i%100_000))
				if err := db.Put(key, val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGet measures point lookups over a settled multi-level tree.
func BenchmarkGet(b *testing.B) {
	for _, mode := range []string{"baseline", "triad"} {
		b.Run(mode, func(b *testing.B) {
			fs := vfs.NewMemFS()
			profile := ProfileTriad
			if mode == "baseline" {
				profile = ProfileBaseline
			}
			db, err := Open(Options{FS: fs, Profile: profile, MemtableBytes: 512 << 10})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			key := make([]byte, 8)
			val := make([]byte, 255)
			const n = 50_000
			for i := uint64(0); i < n; i++ {
				workload.EncodeKey(key, i)
				if err := db.Put(key, val); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				workload.EncodeKey(key, uint64(i)%n)
				if _, err := db.Get(key); err != nil && !errors.Is(err, ErrNotFound) {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- helpers ---

func runOne(b *testing.B, s harness.Scale, mode string, dist workload.KeyDist, readFrac float64, threads int) harness.Result {
	b.Helper()
	return runCustom(b, s, dist, readFrac, func(o *lsm.Options) {
		switch mode {
		case "triad":
			o.TriadMem, o.TriadDisk, o.TriadLog = true, true, true
		}
	}, threads)
}

func runCustom(b *testing.B, s harness.Scale, dist workload.KeyDist, readFrac float64, tweak func(*lsm.Options), threadsOpt ...int) harness.Result {
	b.Helper()
	threads := s.Threads
	if len(threadsOpt) > 0 {
		threads = threadsOpt[0]
	}
	o := lsm.DefaultOptions(nil)
	o.MemtableBytes = s.MemtableBytes
	o.CommitLogBytes = 4 * s.MemtableBytes
	o.FlushThresholdBytes = s.MemtableBytes / 2
	o.BaseLevelBytes = 8 * s.MemtableBytes
	o.TargetFileBytes = s.MemtableBytes
	o.HotPolicy = HotAboveMean
	tweak(&o)
	res, err := harness.Run(harness.Spec{
		Name:                "bench",
		Engine:              o,
		Mix:                 workload.Mix{Dist: dist, ReadFraction: readFrac},
		Threads:             threads,
		Ops:                 s.Ops,
		PrepopulateFraction: 0.5,
		Seed:                1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// BenchmarkSnapshotScan measures what the streaming snapshot iterator
// bought: reading the first 10 entries of a 100k-key store. The
// "streaming" case is the real iterator; "materialized" reproduces the
// pre-snapshot iterator's algorithm (clone every entry in range at
// creation, then read) as the baseline. Reported per op: allocations
// (the acceptance criterion — streaming must be >= 10x lower) and
// first-entry latency in ns.
func BenchmarkSnapshotScan(b *testing.B) {
	const keys = 100_000
	openStore := func(b *testing.B) *DB {
		db, err := Open(Options{FS: vfs.NewMemFS(), Profile: ProfileTriad, MemtableBytes: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		val := []byte("0123456789abcdef0123456789abcdef")
		for i := 0; i < keys; i++ {
			if err := db.Put([]byte(fmt.Sprintf("key-%08d", i)), val); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			b.Fatal(err)
		}
		return db
	}
	b.Run("streaming-first10", func(b *testing.B) {
		db := openStore(b)
		defer db.Close()
		var firstEntryNS int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			it, err := db.NewIterator(nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			if !it.Next() {
				b.Fatal("empty scan")
			}
			firstEntryNS += time.Since(start).Nanoseconds()
			for i := 0; i < 9; i++ {
				if !it.Next() {
					b.Fatal("iterator exhausted early")
				}
			}
			if err := it.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(firstEntryNS)/float64(b.N), "first-entry-ns")
	})
	b.Run("materialized-first10", func(b *testing.B) {
		db := openStore(b)
		defer db.Close()
		var firstEntryNS int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			// The old iterator: copy the whole range up front.
			it, err := db.NewIterator(nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			var ks, vs [][]byte
			for it.Next() {
				ks = append(ks, append([]byte(nil), it.Key()...))
				vs = append(vs, append([]byte(nil), it.Value()...))
			}
			if err := it.Close(); err != nil {
				b.Fatal(err)
			}
			mat := &sliceIter{keys: ks, vals: vs}
			if !mat.Next() {
				b.Fatal("empty scan")
			}
			firstEntryNS += time.Since(start).Nanoseconds()
			for i := 0; i < 9; i++ {
				if !mat.Next() {
					b.Fatal("iterator exhausted early")
				}
			}
		}
		b.ReportMetric(float64(firstEntryNS)/float64(b.N), "first-entry-ns")
	})
}

// sliceIter replays materialized entries through the Iterator surface.
type sliceIter struct {
	keys, vals [][]byte
	pos        int
}

func (s *sliceIter) Next() bool {
	if s.pos >= len(s.keys) {
		return false
	}
	s.pos++
	return true
}
func (s *sliceIter) Key() []byte   { return s.keys[s.pos-1] }
func (s *sliceIter) Value() []byte { return s.vals[s.pos-1] }
func (s *sliceIter) Err() error    { return nil }
func (s *sliceIter) Close() error  { return nil }
