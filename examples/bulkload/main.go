// Bulkload loads a dataset through atomic write batches, compares the
// cost against individual puts, and prints the engine's diagnostic stats
// dump (tree shape, byte counters, WA/RA, TRIAD activity).
package main

import (
	"fmt"
	"log"
	"time"

	triad "repro"
	"repro/internal/vfs"
	"repro/internal/workload"
)

const (
	records   = 40_000
	batchSize = 1000
)

func load(batched bool) (time.Duration, *triad.DB) {
	opts := triad.TriadEngineOptions(vfs.NewMemFS())
	opts.MemtableBytes = 512 << 10
	opts.CommitLogBytes = 2 << 20
	db, err := triad.Open(triad.Options{FS: opts.FS, Advanced: &opts})
	if err != nil {
		log.Fatal(err)
	}
	key := make([]byte, 8)
	val := make([]byte, 200)
	start := time.Now()
	if batched {
		var b triad.Batch
		for i := uint64(0); i < records; i++ {
			workload.EncodeKey(key, i)
			b.Put(key, val)
			if b.Len() == batchSize {
				if err := db.Apply(&b); err != nil {
					log.Fatal(err)
				}
				b.Reset()
			}
		}
		if b.Len() > 0 {
			if err := db.Apply(&b); err != nil {
				log.Fatal(err)
			}
		}
	} else {
		for i := uint64(0); i < records; i++ {
			workload.EncodeKey(key, i)
			if err := db.Put(key, val); err != nil {
				log.Fatal(err)
			}
		}
	}
	return time.Since(start), db
}

func main() {
	single, db1 := load(false)
	db1.Close()
	batched, db2 := load(true)
	defer db2.Close()

	fmt.Printf("loaded %d records:\n", records)
	fmt.Printf("  individual puts: %v (%.0f Kops/s)\n", single.Round(time.Millisecond),
		float64(records)/single.Seconds()/1000)
	fmt.Printf("  %d-record batches: %v (%.0f Kops/s)\n", batchSize, batched.Round(time.Millisecond),
		float64(records)/batched.Seconds()/1000)

	// Verify and show the tree.
	key := make([]byte, 8)
	workload.EncodeKey(key, records/2)
	if _, err := db2.Get(key); err != nil {
		log.Fatal("mid-load key missing:", err)
	}
	fmt.Println("\nengine stats after batched load:")
	fmt.Print(db2.Stats())
}
