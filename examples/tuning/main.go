// Tuning sweeps TRIAD-DISK's two knobs — the HLL overlap-ratio threshold
// and the maximum number of L0 files (paper §4.2; defaults 0.4 and 6) —
// on a uniform write-heavy workload, showing the trade-off the paper
// describes: deferring compaction longer cuts write amplification but
// keeps more files in L0 (which is what would push read amplification
// up).
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	triad "repro"
	"repro/internal/vfs"
	"repro/internal/workload"
)

func run(overlap float64, maxL0 int) (wa, ra float64, deferred int64) {
	fs := vfs.NewMemFS()
	opts := triad.TriadEngineOptions(fs)
	opts.MemtableBytes = 256 << 10
	opts.CommitLogBytes = 1 << 20
	opts.BaseLevelBytes = 2 << 20
	opts.TargetFileBytes = 256 << 10
	opts.OverlapRatioThreshold = overlap
	opts.MaxFilesL0 = maxL0
	db, err := triad.Open(triad.Options{FS: fs, Advanced: &opts})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	mix := workload.Mix{Dist: workload.Uniform{N: 30_000}, ReadFraction: 0.10}
	stream := mix.NewStream(3)
	for i := 0; i < 150_000; i++ {
		op := stream.Next()
		if op.Read {
			if _, err := db.Get(op.Key); err != nil && !errors.Is(err, triad.ErrNotFound) {
				log.Fatal(err)
			}
			continue
		}
		if err := db.Put(op.Key, op.Value); err != nil {
			log.Fatal(err)
		}
	}
	m := db.Metrics()
	return m.WriteAmplification(), m.ReadAmplification(), m.CompactionsDeferred
}

func main() {
	fmt.Println("TRIAD-DISK tuning sweep: uniform workload, 135k writes / 15k reads")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "overlap-threshold\tmax-L0\tWA\tRA\tdeferrals")
	for _, overlap := range []float64{0.1, 0.2, 0.4, 0.6} {
		for _, maxL0 := range []int{4, 6, 10} {
			wa, ra, def := run(overlap, maxL0)
			fmt.Fprintf(tw, "%.1f\t%d\t%.2f\t%.2f\t%d\n", overlap, maxL0, wa, ra, def)
		}
	}
	tw.Flush()
	fmt.Println("\nHigher thresholds / larger L0 budgets defer more compactions (lower WA),")
	fmt.Println("at the cost of more L0 files consulted per read (higher RA).")
}
