// Netclient: serve a TRIAD store over the RESP protocol and drive it
// with the pipelining client.
//
// The server (internal/server) listens on TCP, speaks a RESP2-compatible
// protocol (redis-cli works against it), and group-commits writes from
// all connections into shard-split batches. The client (internal/client)
// pipelines: send many commands, flush once, then read the replies in
// order — the traffic shape under which group commit shines.
//
// This example runs both in one process over loopback; `triadserver`
// and `redis-cli` give the same conversation across processes.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/client"
	"repro/internal/lsm"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	// A 4-shard in-memory store: every shard is a full TRIAD engine.
	db, err := shard.Open(shard.Options{
		Shards: 4,
		Engine: lsm.TriadOptions(nil),
		NewFS:  shard.MemFS(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The server owns the sockets; the store stays ours to close.
	srv := server.New(db, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()
	fmt.Printf("serving on %s\n", addr)

	c, err := client.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Synchronous commands: one round trip each.
	if err := c.Set([]byte("user:1"), []byte("alice")); err != nil {
		log.Fatal(err)
	}
	v, found, err := c.Get([]byte("user:1"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:1 = %q (found=%v)\n", v, found)

	if err := c.MSet(
		[]byte("user:2"), []byte("bob"),
		[]byte("user:3"), []byte("carol"),
	); err != nil {
		log.Fatal(err)
	}

	// Pipelining: 1000 SETs in flight on one connection. The server
	// keeps parsing while earlier writes commit, and the group
	// committer folds the burst into a handful of Apply batches.
	start := time.Now()
	const n = 1000
	for i := 0; i < n; i++ {
		if err := c.Send("SET",
			[]byte(fmt.Sprintf("event:%04d", i)),
			[]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.Receive(); err != nil {
			log.Fatal(err)
		}
	}
	batches, ops := srv.GroupCommitStats()
	fmt.Printf("%d pipelined SETs in %s — %d ops over %d group commits (mean batch %.0f)\n",
		n, time.Since(start).Round(time.Microsecond), ops, batches, float64(ops)/float64(batches))

	// Scans stream sorted key/value pairs; paging is built into ScanAll.
	keys, _, err := c.ScanAll([]byte("event:0990"), []byte("event:0995"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scan [event:0990, event:0995): %d keys, first %q\n", len(keys), keys[0])

	// STATS carries the engine dump, per-shard balance included.
	stats, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSTATS excerpt:\n%s", firstLines(stats, 4))

	// Graceful shutdown: drain connections, commit in-flight writes.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver drained cleanly")
}

func firstLines(s string, n int) string {
	out := ""
	for i, line := 0, 0; i < len(s) && line < n; i++ {
		out += string(s[i])
		if s[i] == '\n' {
			line++
		}
	}
	return out
}
