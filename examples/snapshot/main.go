// Snapshot: pin a point-in-time view of a (sharded) store, keep
// writing, and watch the snapshot's view stay frozen while live reads
// move on — then release it and watch the pinned files go.
//
// The snapshot is captured at one global instant across all shards, so
// a cross-shard Apply batch can never be seen half-committed; and its
// iterators stream (nothing is materialized up front), so holding one
// open is cheap even over a large store.
package main

import (
	"fmt"
	"log"

	triad "repro"
)

func main() {
	// A 4-shard in-memory store; swap in triad.ShardDirs("some/dir")
	// for a durable one — the API is identical.
	db, err := triad.Open(triad.Options{Shards: 4, ShardFS: triad.ShardMemFS()})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Seed a pair of balances kept at a constant sum by cross-shard
	// batches, plus some bulk data.
	var init triad.Batch
	init.Put([]byte("bal:alice"), []byte("900"))
	init.Put([]byte("bal:bob"), []byte("100"))
	for i := 0; i < 1000; i++ {
		init.Put([]byte(fmt.Sprintf("doc:%04d", i)), []byte("rev-1"))
	}
	if err := db.Apply(&init); err != nil {
		log.Fatal(err)
	}

	// Pin the view. From here on, nothing the store absorbs is visible
	// through snap — but the store keeps flushing and compacting
	// underneath it; the files the snapshot reads are reference-counted
	// and survive until Close.
	snap, err := db.NewSnapshot()
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()

	// Keep writing: a transfer (atomic per shard, captured all-or-
	// nothing by snapshots), a rewrite of every document, and a flush.
	var transfer triad.Batch
	transfer.Put([]byte("bal:alice"), []byte("400"))
	transfer.Put([]byte("bal:bob"), []byte("600"))
	if err := db.Apply(&transfer); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("doc:%04d", i)), []byte("rev-2")); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	get := func(g func([]byte) ([]byte, error), key string) string {
		v, err := g([]byte(key))
		if err != nil {
			log.Fatal(err)
		}
		return string(v)
	}
	fmt.Printf("live view:     alice=%s bob=%s doc:0000=%s\n",
		get(db.Get, "bal:alice"), get(db.Get, "bal:bob"), get(db.Get, "doc:0000"))
	fmt.Printf("snapshot view: alice=%s bob=%s doc:0000=%s\n",
		get(snap.Get, "bal:alice"), get(snap.Get, "bal:bob"), get(snap.Get, "doc:0000"))

	// Streaming scan over the frozen view: every doc still at rev-1.
	it, err := snap.NewIterator([]byte("doc:"), []byte("doc:z"))
	if err != nil {
		log.Fatal(err)
	}
	rev1 := 0
	for it.Next() {
		if string(it.Value()) == "rev-1" {
			rev1++
		}
	}
	if err := it.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot scan: %d/1000 docs at rev-1 (live store is fully at rev-2)\n", rev1)

	fmt.Printf("open snapshots before Close: %d\n", db.OpenSnapshots())
	if err := snap.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("open snapshots after Close:  %d\n", db.OpenSnapshots())
}
