// Metadata replays a Nutanix-style metadata workload (the paper's
// production workload W2 model, §5.2) against a durable on-disk TRIAD
// store, then simulates a crash and verifies recovery: the commit log and
// manifest reconstruct the exact pre-crash state, including CL-SSTables
// whose values still live in retained log files.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	triad "repro"
	"repro/internal/vfs"
	"repro/internal/workload"
)

func main() {
	dir := filepath.Join(os.TempDir(), "triad-metadata-example")
	os.RemoveAll(dir)
	defer os.RemoveAll(dir)

	// Phase 1: write metadata entries, then "crash" (close without any
	// explicit flush — the commit log is the only durability).
	written := writePhase(dir)
	fmt.Printf("phase 1: wrote %d distinct metadata keys, crashed\n", written)

	// Phase 2: reopen and verify every key.
	fs, err := vfs.NewOSFS(dir)
	check(err)
	db, err := triad.Open(triad.Options{FS: fs, Profile: triad.ProfileTriad})
	check(err)
	defer db.Close()

	p, err := workload.ProductionWorkload(2, 2000) // W2, scaled
	check(err)
	missing := 0
	key := make([]byte, 8)
	for i := uint64(0); i < p.Keys(); i++ {
		workload.EncodeKey(key, i)
		if _, err := db.Get(key); errors.Is(err, triad.ErrNotFound) {
			missing++
		} else {
			check(err)
		}
	}
	fmt.Printf("phase 2: recovered store serves %d/%d keys (%d never written)\n",
		int(p.Keys())-missing, p.Keys(), missing)

	m := db.Metrics()
	fmt.Printf("tree after recovery: files per level %v\n", db.NumLevelFiles())
	fmt.Printf("recovery read amplification so far: %.2f accesses/get\n", m.ReadAmplification())
}

// writePhase opens the store, applies the W2-like update stream, and
// abandons the handle without a clean shutdown.
func writePhase(dir string) int {
	fs, err := vfs.NewOSFS(dir)
	check(err)
	opts := triad.TriadEngineOptions(fs)
	opts.MemtableBytes = 128 << 10 // force flushes within the demo
	opts.CommitLogBytes = 512 << 10
	opts.FlushThresholdBytes = 64 << 10
	db, err := triad.Open(triad.Options{FS: fs, Advanced: &opts})
	check(err)

	p, err := workload.ProductionWorkload(2, 2000)
	check(err)
	mix := workload.Mix{Dist: p, ReadFraction: 0}
	stream := mix.NewStream(42)
	seen := map[string]bool{}
	for i := uint64(0); i < p.Updates && i < 60_000; i++ {
		op := stream.Next()
		check(db.Put(op.Key, op.Value))
		seen[string(op.Key)] = true
	}
	// Also write every key once so phase 2 can verify the whole space.
	key := make([]byte, 8)
	for i := uint64(0); i < p.Keys(); i++ {
		workload.EncodeKey(key, i)
		if !seen[string(key)] {
			check(db.Put(key, []byte("initial-metadata-value")))
			seen[string(key)] = true
		}
	}
	// Crash: the deferred Close never runs; the OS files are the truth.
	// (We do close file handles to be polite to the OS, via Close — but
	// a real crash is equivalent because every Put is already in the
	// commit log. To make the demo honest we skip Close entirely.)
	_ = db // abandoned
	return len(seen)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
