// Sharded: partition the keyspace across independent TRIAD engine
// instances and drive them from concurrent writers.
//
// One engine serializes every write behind a single memtable mutex and
// commit log. Opening the store with Shards: 4 gives four engines —
// each with its own WAL, memtable, levels and background workers — and
// a router that hashes every key to its owning shard. Point operations
// route; batches split; scans merge back into one sorted stream.
package main

import (
	"fmt"
	"log"
	"sync"

	triad "repro"
)

func main() {
	db, err := triad.Open(triad.Options{
		Shards:  4,
		ShardFS: triad.ShardMemFS(), // triad.ShardDirs("some/dir") for a durable store
		Profile: triad.ProfileTriad,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Concurrent writers: keys hash across shards, so the four write
	// paths proceed in parallel instead of queueing on one mutex.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2500; i++ {
				key := fmt.Sprintf("user:%d:%04d", w, i)
				if err := db.Put([]byte(key), []byte("profile")); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	// A batch whose keys span several shards: Apply splits it into
	// per-shard sub-batches and commits them concurrently.
	var b triad.Batch
	for i := 0; i < 100; i++ {
		b.Put([]byte(fmt.Sprintf("order:%04d", i)), []byte("pending"))
	}
	if err := db.Apply(&b); err != nil {
		log.Fatal(err)
	}

	// Point reads route to the owning shard.
	v, err := db.Get([]byte("user:3:0042"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:3:0042 = %s\n", v)

	// Range scans k-way-merge the per-shard snapshots back into one
	// globally sorted stream.
	it, err := db.NewIterator([]byte("order:0000"), []byte("order:0010"))
	if err != nil {
		log.Fatal(err)
	}
	for it.Next() {
		fmt.Printf("  %s = %s\n", it.Key(), it.Value())
	}
	if err := it.Close(); err != nil {
		log.Fatal(err)
	}

	// Metrics aggregate across shards; 8 writers x 2500 + 100 batch ops.
	m := db.Metrics()
	fmt.Printf("writes=%d logged=%d bytes across 4 shards\n", m.UserWrites, m.BytesLogged)
	fmt.Println(db.Stats())
}
