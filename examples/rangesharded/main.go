// Rangesharded: partition the keyspace by sorted split keys so range
// scans stay shard-local, and let the persisted store metadata catch a
// misconfigured reopen.
//
// Hash sharding (examples/sharded) balances point operations but
// scatters contiguous key ranges over every shard, so each scan pays a
// store-wide k-way merge. A range partitioner assigns each shard one
// contiguous slice of the keyspace: a scan whose bounds fall inside one
// slice is served by that shard's iterator directly, and a scan across
// several slices concatenates them in key order — no merge heap either
// way. The split keys and shard count are persisted in a STORE record on
// every shard's filesystem, so reopening with the wrong configuration
// fails fast instead of silently losing keys.
package main

import (
	"errors"
	"fmt"
	"log"

	triad "repro"
	"repro/internal/vfs"
)

func main() {
	// Four shards over the tenant keyspace: tenants a–f, g–m, n–s, t–z.
	// N shards take N-1 ascending split keys; shard 0 owns everything
	// below the first split, the last shard everything at or above the
	// final one.
	fses := []vfs.FS{vfs.NewMemFS(), vfs.NewMemFS(), vfs.NewMemFS(), vfs.NewMemFS()}
	newFS := func(i int) (vfs.FS, error) { return fses[i], nil }

	db, err := triad.Open(triad.Options{
		Shards:      4,
		ShardFS:     newFS, // triad.ShardDirs("some/dir") for a durable store
		Partitioner: "range",
		RangeSplits: [][]byte{[]byte("g"), []byte("n"), []byte("t")},
		Profile:     triad.ProfileTriad,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ordered tenant data: each tenant's keys land on one shard.
	for _, tenant := range []string{"acme", "globex", "initech", "umbrella"} {
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("%s:doc:%04d", tenant, i)
			if err := db.Put([]byte(key), []byte("body")); err != nil {
				log.Fatal(err)
			}
		}
	}

	// A tenant scan: both bounds fall inside shard 0's a–f slice, so
	// this is served by that single shard's iterator — no cross-shard
	// merge, the other three shards are never touched.
	it, err := db.NewIterator([]byte("acme:doc:0000"), []byte("acme:doc:0005"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("acme's first docs (single-shard scan):")
	for it.Next() {
		fmt.Printf("  %s\n", it.Key())
	}
	if err := it.Close(); err != nil {
		log.Fatal(err)
	}

	// A cross-tenant scan spanning the n and t splits: shard 1 (initech's
	// tail), shard 2 (the empty n–s slice) and shard 3 (umbrella's head)
	// are concatenated in key order — still no merge heap.
	it, err = db.NewIterator([]byte("initech:doc:0498"), []byte("umbrella:doc:0002"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("across the n and t splits (concatenated scan):")
	for it.Next() {
		fmt.Printf("  %s\n", it.Key())
	}
	if err := it.Close(); err != nil {
		log.Fatal(err)
	}

	// The per-shard balance table shows the range layout: acme on s0,
	// globex and initech together on s1 (both in the g–m slice), the
	// n–s slice empty, umbrella on s3.
	fmt.Println(db.Stats())
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopening with the wrong shard count would route keys to the
	// wrong shards and make them invisible. The STORE metadata written
	// at creation catches it before any read is served.
	_, err = triad.Open(triad.Options{
		Shards:  2,
		ShardFS: newFS,
		Profile: triad.ProfileTriad,
	})
	fmt.Printf("reopen with 2 shards: %v\n", err)
	if err == nil {
		log.Fatal("mismatched reopen unexpectedly succeeded")
	}

	// Reopening correctly needs no partitioner flags at all: the stored
	// metadata supplies the splits.
	db, err = triad.Open(triad.Options{
		Shards:  4,
		ShardFS: newFS,
		Profile: triad.ProfileTriad,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	v, err := db.Get([]byte("umbrella:doc:0042"))
	if err != nil && !errors.Is(err, triad.ErrNotFound) {
		log.Fatal(err)
	}
	fmt.Printf("after reopen, umbrella:doc:0042 = %s (stored partitioner adopted)\n", v)
}
