// Hotcold demonstrates TRIAD-MEM on the paper's motivating scenario: a
// highly skewed update workload (1% of keys get 99% of writes, §5.3 WS1).
// It runs the identical workload on the baseline engine and on TRIAD and
// prints the background-I/O metrics side by side — the skewed-workload
// half of Figure 9D, live.
package main

import (
	"errors"
	"fmt"
	"log"

	triad "repro"
	"repro/internal/vfs"
	"repro/internal/workload"
)

func run(name string, profile triad.Profile) {
	fs := vfs.NewMemFS()
	opts := triad.TriadEngineOptions(fs)
	if profile == triad.ProfileBaseline {
		opts = triad.BaselineEngineOptions(fs)
	}
	// Scale down so flushes happen within the demo.
	opts.MemtableBytes = 256 << 10
	opts.CommitLogBytes = 1 << 20
	opts.FlushThresholdBytes = 128 << 10
	opts.BaseLevelBytes = 2 << 20
	opts.TargetFileBytes = 256 << 10
	opts.HotPolicy = triad.HotAboveMean

	db, err := triad.Open(triad.Options{FS: fs, Advanced: &opts})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	mix := workload.Mix{
		Dist:         workload.HotCold{N: 20_000, HotFraction: 0.01, HotAccess: 0.99},
		ReadFraction: 0.10,
	}
	stream := mix.NewStream(7)
	for i := 0; i < 200_000; i++ {
		op := stream.Next()
		if op.Read {
			if _, err := db.Get(op.Key); err != nil && !errors.Is(err, triad.ErrNotFound) {
				log.Fatal(err)
			}
			continue
		}
		if err := db.Put(op.Key, op.Value); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	m := db.Metrics()
	fmt.Printf("%-9s flushes=%-4d flush-skips=%-4d compactions=%-4d deferred=%-4d\n",
		name, m.Flushes, m.FlushSkips, m.Compactions, m.CompactionsDeferred)
	fmt.Printf("%-9s loggedMB=%-7.1f flushedMB=%-7.1f compactedMB=%-7.1f WA=%.2f\n\n",
		"", float64(m.BytesLogged)/(1<<20), float64(m.BytesFlushed)/(1<<20),
		float64(m.BytesCompacted)/(1<<20), m.WriteAmplification())
}

func main() {
	fmt.Println("Skewed workload (1% of keys take 99% of 180k writes):")
	run("baseline", triad.ProfileBaseline)
	run("triad", triad.ProfileTriad)
	fmt.Println("TRIAD keeps the hot 1% in memory: fewer flushes, far less compaction.")
}
