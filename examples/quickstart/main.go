// Quickstart: open a TRIAD store, write, read, scan, and inspect the
// engine metrics.
package main

import (
	"fmt"
	"log"

	triad "repro"
	"repro/internal/vfs"
)

func main() {
	// An in-memory store; swap in vfs.NewOSFS("some/dir") for a durable
	// one — the API is identical.
	db, err := triad.Open(triad.Options{FS: vfs.NewMemFS(), Profile: triad.ProfileTriad})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Writes go to the memtable and commit log; reads check memory
	// first, then the LSM levels.
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("user:%04d", i)
		if err := db.Put([]byte(key), []byte(fmt.Sprintf("profile-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	v, err := db.Get([]byte("user:0042"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:0042 = %s\n", v)

	// Deletes write tombstones; Get then reports ErrNotFound.
	if err := db.Delete([]byte("user:0042")); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Get([]byte("user:0042")); err == triad.ErrNotFound {
		fmt.Println("user:0042 deleted")
	}

	// Range scans see a point-in-time snapshot.
	it, err := db.NewIterator([]byte("user:0010"), []byte("user:0015"))
	if err != nil {
		log.Fatal(err)
	}
	for it.Next() {
		fmt.Printf("  %s = %s\n", it.Key(), it.Value())
	}
	if err := it.Close(); err != nil {
		log.Fatal(err)
	}

	// Force the memtable down to L0 and look at the tree.
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	m := db.Metrics()
	fmt.Printf("level files: %v\n", db.NumLevelFiles())
	fmt.Printf("flushes=%d bytesLogged=%d bytesFlushed=%d WA=%.2f\n",
		m.Flushes, m.BytesLogged, m.BytesFlushed, m.WriteAmplification())
}
