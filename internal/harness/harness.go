// Package harness runs evaluation workloads against the engine and
// collects the paper's metrics (§5.1): throughput in KOPS, bytes written
// to disk by origin, time spent in background operations, write
// amplification and read amplification.
//
// A Spec describes one run (engine configuration + workload + thread
// count); Run executes it on a fresh in-memory filesystem: pre-populate,
// settle the tree, then drive the timed operation phase from N workers.
package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/bgsched"
	"repro/internal/histogram"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// Engine is the key-value surface Run drives. Both *lsm.DB and
// *shard.DB implement it, so every experiment can execute against a
// single instance or a sharded store unchanged.
type Engine interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error)
	Delete(key []byte) error
	Flush() error
	CompactAll() error
	SetDisableBackgroundIO(bool)
	Metrics() metrics.Snapshot
	CacheStats() (hits, misses int64)
	Close() error
}

var (
	_ Engine = (*lsm.DB)(nil)
	_ Engine = (*shard.DB)(nil)
)

// Spec describes one experiment run.
type Spec struct {
	// Name labels the run in tables.
	Name string
	// Engine is the engine configuration; FS is overwritten by Run.
	Engine lsm.Options
	// Shards, when > 1, runs the spec against a sharded engine of that
	// many lsm instances. Engine's budgets apply to each shard (the
	// column-family deployment convention: every shard is a full engine);
	// pass shard.DivideBudgets(engine, n) as Engine to compare shard
	// counts at equal aggregate memory instead.
	Shards int
	// DevicePerShard gives each shard its own simulated device when
	// Latency.Device is set (the scale-out deployment: one disk per
	// shard). Default false: all shards contend on the one device.
	DevicePerShard bool
	// Partitioner selects the shard router when Shards > 1: "" or
	// "hash" routes by FNV, "range" slices the synthetic EncodeKey
	// keyspace into Shards equal contiguous ranges (EvenRangeSplits),
	// so the same workload can be compared under both routings at
	// identical budgets.
	Partitioner string
	// Mix is the operation mix (distribution, read fraction, sizes).
	Mix workload.Mix
	// Threads is the number of concurrent workers.
	Threads int
	// Ops is the total operation count across workers.
	Ops int64
	// PrepopulateFraction of the key space is inserted before the timed
	// phase (the paper initializes "roughly half of the keys"; Figure 2
	// pre-populates every key).
	PrepopulateFraction float64
	// DisableBGAfterLoad reproduces Figure 2's No-BG-I/O system: the
	// tree is populated normally, then background I/O is switched off.
	DisableBGAfterLoad bool
	// Latency, when non-zero, charges simulated device time for every
	// byte moved through the filesystem — used by the device-backed
	// experiment variants where write I/O has a real cost.
	Latency vfs.LatencyModel
	// CacheSplit restores the pre-PR-7 block-cache layout for sharded
	// runs: each shard gets a private plain-LRU cache of
	// Engine.BlockCacheBytes instead of pooling the shares into one
	// store-wide scan-resistant cache. The baseline side of the
	// shared-cache comparison.
	CacheSplit bool
	// BackgroundWorkers sizes the shared background flush/compaction
	// pool: 0 takes the default (min(GOMAXPROCS, shards+2), floor 2),
	// negative restores the legacy free background goroutines per
	// engine — the pre-pool baseline the scheduler experiments compare
	// against.
	BackgroundWorkers int
	// MaxSubcompactions caps the parallel key-range slices one leveled
	// compaction may split into when the pool is on (0: up to the pool
	// size; 1: monolithic).
	MaxSubcompactions int
	// Seed makes the run deterministic.
	Seed int64
}

// Result is one run's measurements.
type Result struct {
	Name    string
	Threads int
	Ops     int64
	Elapsed time.Duration
	// KOPS is user operations per millisecond (thousands/second).
	KOPS float64
	// WA is system-wide write amplification (all storage writes per
	// user byte); FlushRelWA is the paper's flush-relative formula.
	WA, FlushRelWA float64
	// RA is mean disk accesses per Get.
	RA float64
	// CompactedMB / FlushedMB / LoggedMB are the storage writes by
	// origin during the timed phase.
	CompactedMB, FlushedMB, LoggedMB float64
	// PctCompaction is compaction wall time over elapsed time.
	PctCompaction float64
	// PctBackground is flush+compaction wall time over elapsed time.
	PctBackground float64
	// Deferred counts TRIAD-DISK compaction deferrals.
	Deferred int64
	// FlushSkips counts TRIAD-MEM small-memtable flush skips.
	FlushSkips int64
	// CacheHits/CacheMisses are the block-cache lookups during the timed
	// phase; CacheHitRate is hits over lookups (0 with no lookups).
	CacheHits, CacheMisses int64
	CacheHitRate           float64
	// P50 / P99 / P999 are per-operation latency quantiles and Lat is
	// the full merged histogram (every operation is recorded).
	P50, P99, P999 time.Duration
	Lat            histogram.H
	// Snap is the raw metric window for further analysis.
	Snap metrics.Snapshot
}

// Run executes one spec on fresh MemFS instances (one per shard). All
// shards share the spec's latency model; when it names a Device, the
// shards contend on that one simulated device by default, and each gets
// its own device when DevicePerShard is set (the one-disk-per-shard
// scale-out deployment).
func Run(spec Spec) (Result, error) {
	db, cleanup, err := openEngine(spec)
	if err != nil {
		return Result{}, err
	}
	defer cleanup()

	if err := prepopulate(db, spec); err != nil {
		return Result{}, err
	}
	// Settle: drain flushes and compactions so each run starts from an
	// equivalent tree.
	if err := db.Flush(); err != nil {
		return Result{}, err
	}
	if err := db.CompactAll(); err != nil {
		return Result{}, err
	}
	if spec.DisableBGAfterLoad {
		db.SetDisableBackgroundIO(true)
	}

	threads := spec.Threads
	if threads <= 0 {
		threads = 1
	}
	before := db.Metrics()
	hitsBefore, missesBefore := db.CacheStats()
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	perWorker := spec.Ops / int64(threads)
	// Every operation's latency lands in one striped concurrent recorder
	// (fixed memory, zero-alloc Record) snapshotted after the run — the
	// same recorder the server's observability layer uses.
	rec := obs.NewHist()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := spec.Mix.NewStream(spec.Seed + int64(w)*7919)
			for i := int64(0); i < perWorker; i++ {
				op := stream.Next()
				t0 := time.Now()
				switch {
				case op.Read:
					if _, err := db.Get(op.Key); err != nil && err != lsm.ErrNotFound {
						errCh <- err
						return
					}
				case op.Delete:
					if err := db.Delete(op.Key); err != nil {
						errCh <- err
						return
					}
				default:
					if err := db.Put(op.Key, op.Value); err != nil {
						errCh <- err
						return
					}
				}
				rec.Record(time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	after := db.Metrics()
	hitsAfter, missesAfter := db.CacheStats()
	select {
	case err := <-errCh:
		return Result{}, err
	default:
	}

	snap := after.Sub(before)
	totalOps := perWorker * int64(threads)
	res := Result{
		Name:          spec.Name,
		Threads:       threads,
		Ops:           totalOps,
		Elapsed:       elapsed,
		KOPS:          float64(totalOps) / elapsed.Seconds() / 1000,
		WA:            snap.WriteAmplification(),
		FlushRelWA:    snap.FlushRelativeWA(),
		RA:            snap.ReadAmplification(),
		CompactedMB:   float64(snap.BytesCompacted) / (1 << 20),
		FlushedMB:     float64(snap.BytesFlushed) / (1 << 20),
		LoggedMB:      float64(snap.BytesLogged) / (1 << 20),
		PctCompaction: snap.PercentTimeInCompaction(elapsed),
		PctBackground: 100 * float64(snap.BackgroundTime()) / float64(elapsed),
		Deferred:      snap.CompactionsDeferred,
		FlushSkips:    snap.FlushSkips,
		CacheHits:     hitsAfter - hitsBefore,
		CacheMisses:   missesAfter - missesBefore,
		Snap:          snap,
	}
	if lookups := res.CacheHits + res.CacheMisses; lookups > 0 {
		res.CacheHitRate = float64(res.CacheHits) / float64(lookups)
	}
	res.Lat = rec.Snapshot()
	res.P50 = res.Lat.Quantile(0.50)
	res.P99 = res.Lat.Quantile(0.99)
	res.P999 = res.Lat.Quantile(0.999)
	return res, nil
}

// openEngine opens the spec's engine — sharded or single-instance — on
// fresh MemFS instances. cleanup closes the engine and, on the
// single-instance path, the private background pool built for it (the
// shard layer owns its pool).
func openEngine(spec Spec) (db Engine, cleanup func(), err error) {
	opts := spec.Engine
	opts.Seed = spec.Seed
	if spec.Shards > 1 {
		var part shard.Partitioner
		if part, err = spec.partitioner(); err != nil {
			return nil, nil, err
		}
		if spec.CacheSplit {
			opts.PlainBlockCache = true
		}
		db, err = shard.Open(shard.Options{
			Shards:            spec.Shards,
			Engine:            opts,
			Partitioner:       part,
			SplitBlockCache:   spec.CacheSplit,
			BackgroundWorkers: spec.BackgroundWorkers,
			MaxSubcompactions: spec.MaxSubcompactions,
			NewFS: func(int) (vfs.FS, error) {
				fs := vfs.NewMemFS()
				lat := spec.Latency
				if spec.DevicePerShard && lat.Device != nil {
					lat.Device = &vfs.Device{}
				}
				fs.Latency = lat
				return fs, nil
			},
		})
		if err != nil {
			return nil, nil, err
		}
		return db, func() { db.Close() }, nil
	}
	fs := vfs.NewMemFS()
	fs.Latency = spec.Latency
	opts.FS = fs
	var pool *bgsched.Pool
	if opts.Scheduler == nil && spec.BackgroundWorkers >= 0 {
		w := spec.BackgroundWorkers
		if w == 0 {
			w = bgsched.DefaultWorkers(1)
		}
		pool = bgsched.NewPool(w)
		opts.Scheduler = pool
		opts.MaxSubcompactions = spec.MaxSubcompactions
	}
	db, err = lsm.Open(opts)
	if err != nil {
		if pool != nil {
			pool.Close()
		}
		return nil, nil, err
	}
	return db, func() {
		db.Close()
		if pool != nil {
			pool.Close()
		}
	}, nil
}

// partitioner maps Spec.Partitioner onto a shard-layer partitioner.
func (spec Spec) partitioner() (shard.Partitioner, error) {
	switch spec.Partitioner {
	case "", "hash":
		return nil, nil
	case "range":
		keySize := spec.Mix.KeySize
		if keySize <= 0 {
			keySize = 8
		}
		return shard.NewRange(EvenRangeSplits(spec.Mix.Dist.Keys(), keySize, spec.Shards)...)
	default:
		return nil, fmt.Errorf("harness: unknown partitioner %q (want \"hash\" or \"range\")", spec.Partitioner)
	}
}

// EvenRangeSplits returns the shards-1 split keys that divide the
// synthetic EncodeKey keyspace [0, keys) into equal contiguous slices —
// the range-partitioner configuration under which the synthetic
// workloads are balanced, so hash-vs-range comparisons isolate scan
// locality rather than skew.
func EvenRangeSplits(keys uint64, keySize, shards int) [][]byte {
	splits := make([][]byte, 0, shards-1)
	for i := 1; i < shards; i++ {
		k := make([]byte, keySize)
		workload.EncodeKey(k, keys*uint64(i)/uint64(shards))
		splits = append(splits, k)
	}
	return splits
}

// prepopulate inserts PrepopulateFraction of the key space with the mix's
// value size, then returns.
func prepopulate(db Engine, spec Spec) error {
	if spec.PrepopulateFraction <= 0 {
		return nil
	}
	mix := spec.Mix
	n := uint64(float64(mix.Dist.Keys()) * spec.PrepopulateFraction)
	if n == 0 {
		return nil
	}
	keySize, valSize := mix.KeySize, mix.ValueSize
	if keySize <= 0 {
		keySize = 8
	}
	if valSize <= 0 {
		valSize = 255
	}
	val := make([]byte, valSize)
	rng := rand.New(rand.NewSource(spec.Seed))
	rng.Read(val)
	key := make([]byte, keySize)
	for i := uint64(0); i < n; i++ {
		workload.EncodeKey(key, i)
		if err := db.Put(key, val); err != nil {
			return err
		}
	}
	// Give the background a chance before the timed phase.
	runtime.Gosched()
	return nil
}

// FormatKOPS renders a throughput for tables.
func FormatKOPS(k float64) string { return fmt.Sprintf("%.1f", k) }
