package harness

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/workload"
)

// netDepth is the per-connection pipeline depth of the net experiment:
// deep enough that the server's group-commit window always has company,
// shallow enough that per-op latency still means something.
const netDepth = 16

// NetThroughput is the network front-end experiment (not a paper
// figure; the serving extension). It starts a real triadserver over an
// in-memory sharded store, drives a 90% SET / 10% GET workload through
// N pipelined client connections over loopback TCP, and compares group
// commit (writes from all connections coalesced into shard-split
// batches) against one-Apply-per-command, reporting kops/s and p50/p99
// per-op latency for each connection count.
//
// The interesting column is the gain at high connection counts: one
// Apply per SET makes every reader goroutine fight for the shard
// mutexes and pay its own commit-log append, while the group committer
// turns the same traffic into a few hundred-op batches.
func NetThroughput(s Scale, w io.Writer) ([]Cell, error) {
	shards := s.Shards
	if shards < 2 {
		shards = 4
	}
	connCounts := []int{1, 4, 8, 16}

	var cells []Cell
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Net throughput: RESP over loopback, 90%% SET / 10%% GET, pipeline depth %d, %d shards\n", netDepth, shards)
	fmt.Fprintln(tw, "conns\tgroup KOPS\tp50\tp99\tper-op KOPS\tp50\tp99\tgain")
	for _, conns := range connCounts {
		on, err := runNet(s, shards, conns, false, false, 0)
		if err != nil {
			return nil, fmt.Errorf("net c=%d gc=on: %w", conns, err)
		}
		off, err := runNet(s, shards, conns, true, false, 0)
		if err != nil {
			return nil, fmt.Errorf("net c=%d gc=off: %w", conns, err)
		}
		cells = append(cells,
			Cell{Label: fmt.Sprintf("net c=%d gc=on", conns), Res: on},
			Cell{Label: fmt.Sprintf("net c=%d gc=off", conns), Res: off},
		)
		fmt.Fprintf(tw, "%d\t%.1f\t%s\t%s\t%.1f\t%s\t%s\t%.2fx\n",
			conns, on.KOPS, on.P50, on.P99, off.KOPS, off.P50, off.P99, on.KOPS/off.KOPS)
	}
	return cells, tw.Flush()
}

// NetRun measures one (connection count, commit mode, observability,
// trace sampling) configuration of the net experiment. Exported for
// the observability and tracing overhead benchmarks, which compare the
// instrumented server against the same server with nil recorders and
// against various -trace-sample rates.
func NetRun(s Scale, shards, conns int, gcOff, noObs bool, traceSample float64) (Result, error) {
	return runNet(s, shards, conns, gcOff, noObs, traceSample)
}

// runNet measures one (connection count, commit mode) configuration.
func runNet(s Scale, shards, conns int, gcOff, disableObs bool, traceSample float64) (Result, error) {
	db, err := shard.Open(shard.Options{
		Shards:               shards,
		Engine:               shard.DivideBudgets(s.engine("triad"), shards),
		NewFS:                shard.MemFS(),
		DisableObservability: disableObs,
	})
	if err != nil {
		return Result{}, err
	}
	defer db.Close()

	mix := workload.Mix{Dist: s.ws3(), ReadFraction: 0.1}
	if err := prepopulate(db, Spec{Mix: mix, PrepopulateFraction: 0.5, Seed: 1}); err != nil {
		return Result{}, err
	}
	if err := db.Flush(); err != nil {
		return Result{}, err
	}
	if err := db.CompactAll(); err != nil {
		return Result{}, err
	}

	srv := server.New(db, server.Config{DisableGroupCommit: gcOff, DisableObservability: disableObs, TraceSample: traceSample})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Result{}, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		srv.Shutdown(ctx)
		cancel()
		<-serveErr
	}()

	perConn := s.Ops / int64(conns)
	rec := obs.NewHist()
	errCh := make(chan error, conns)
	var wg sync.WaitGroup
	start := time.Now()
	before := db.Metrics()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(ln.Addr().String())
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			stream := mix.NewStream(1 + int64(i)*7919)
			var sentAt [netDepth]time.Time
			for done := int64(0); done < perConn; {
				depth := int64(netDepth)
				if left := perConn - done; left < depth {
					depth = left
				}
				for j := int64(0); j < depth; j++ {
					op := stream.Next()
					sentAt[j] = time.Now()
					if op.Read {
						err = c.Send("GET", op.Key)
					} else {
						err = c.Send("SET", op.Key, op.Value)
					}
					if err != nil {
						errCh <- err
						return
					}
				}
				if err := c.Flush(); err != nil {
					errCh <- err
					return
				}
				for j := int64(0); j < depth; j++ {
					if _, err := c.Receive(); err != nil {
						errCh <- err
						return
					}
					rec.Record(time.Since(sentAt[j]))
				}
				done += depth
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	snap := db.Metrics().Sub(before)
	select {
	case err := <-errCh:
		return Result{}, err
	default:
	}

	totalOps := perConn * int64(conns)
	res := Result{
		Name:    fmt.Sprintf("net c=%d", conns),
		Threads: conns,
		Ops:     totalOps,
		Elapsed: elapsed,
		KOPS:    float64(totalOps) / elapsed.Seconds() / 1000,
		WA:      snap.WriteAmplification(),
		RA:      snap.ReadAmplification(),
		Snap:    snap,
	}
	res.Lat = rec.Snapshot()
	res.P50 = res.Lat.Quantile(0.50)
	res.P99 = res.Lat.Quantile(0.99)
	res.P999 = res.Lat.Quantile(0.999)
	return res, nil
}
