package harness

import (
	"fmt"
	"io"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/histogram"
	"repro/internal/shard"
)

// Conflict is the contended-commit experiment (not a paper figure; the
// commit-pipeline extension). W concurrent writers Apply fully
// conflicting cross-shard batches — every batch writes the same key
// set, which spans all shards — so every commit races every other on
// every shard. The store clock serializes them: per shard, sub-batches
// commit in epoch-ticket order, which is exactly the path this
// experiment stresses. A background snapshotter runs throughout,
// measuring what a consistent cross-shard capture costs while the
// pipeline is saturated (it pins an epoch and rides the same ticket
// queues; before the clock, it had to freeze every shard's write lock
// behind a global barrier).
//
// The table reports, per writer count: committed batches/s, the
// derived key-write throughput, commit latency p50/p99, and the mean
// snapshot-capture latency under that load.
func Conflict(s Scale, shards int, w io.Writer) ([]Cell, error) {
	if shards < 2 {
		shards = 4
	}
	const keysPerBatch = 16
	writerCounts := []int{1, 2, 4, 8}

	var cells []Cell
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Conflicting cross-shard commits: %d shards, every batch writes the same %d keys (all shards)\n",
		shards, keysPerBatch)
	fmt.Fprintln(tw, "writers\tbatches/s\tKOPS\tp50\tp99\tsnap mean")
	for _, writers := range writerCounts {
		res, snapMean, err := runConflict(s, shards, writers, keysPerBatch)
		if err != nil {
			return nil, fmt.Errorf("conflict w=%d: %w", writers, err)
		}
		cells = append(cells, Cell{Label: fmt.Sprintf("conflict w=%d", writers), Res: res})
		fmt.Fprintf(tw, "%d\t%.0f\t%.1f\t%s\t%s\t%s\n",
			writers, float64(res.Ops)/res.Elapsed.Seconds()/float64(keysPerBatch),
			res.KOPS, res.P50, res.P99, snapMean)
	}
	return cells, tw.Flush()
}

// runConflict measures one writer count.
func runConflict(s Scale, shards, writers, keysPerBatch int) (Result, time.Duration, error) {
	db, err := shard.Open(shard.Options{
		Shards: shards,
		Engine: shard.DivideBudgets(s.engine("triad"), shards),
		NewFS:  shard.MemFS(),
	})
	if err != nil {
		return Result{}, 0, err
	}
	defer db.Close()

	keys := make([][]byte, keysPerBatch)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("conflict-%05d", i))
	}
	val := make([]byte, 128)

	batchesPerWriter := s.Ops / int64(writers) / int64(keysPerBatch)
	if batchesPerWriter < 50 {
		batchesPerWriter = 50
	}

	stop := make(chan struct{})
	errCh := make(chan error, writers+1)
	var snapWG sync.WaitGroup
	var snapTotal time.Duration
	var snapN int64
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			snap, err := db.NewSnapshot()
			if err != nil {
				// Surface it like a writer failure: a broken snapshot
				// path must fail the experiment, not zero its column.
				errCh <- fmt.Errorf("snapshot under load: %w", err)
				return
			}
			snapTotal += time.Since(t0)
			snapN++
			snap.Close()
		}
	}()

	hists := make([]*histogram.H, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		hists[w] = &histogram.H{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := hists[w]
			for i := int64(0); i < batchesPerWriter; i++ {
				b := &shard.Batch{}
				for _, k := range keys {
					b.Put(k, val)
				}
				t0 := time.Now()
				if err := db.Apply(b); err != nil {
					errCh <- err
					return
				}
				h.Record(time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	snapWG.Wait()
	select {
	case err := <-errCh:
		return Result{}, 0, err
	default:
	}

	totalBatches := batchesPerWriter * int64(writers)
	totalOps := totalBatches * int64(keysPerBatch)
	res := Result{
		Name:    fmt.Sprintf("conflict w=%d", writers),
		Threads: writers,
		Ops:     totalOps,
		Elapsed: elapsed,
		KOPS:    float64(totalOps) / elapsed.Seconds() / 1000,
	}
	for _, h := range hists {
		res.Lat.Merge(h)
	}
	res.P50 = res.Lat.Quantile(0.50)
	res.P99 = res.Lat.Quantile(0.99)
	res.P999 = res.Lat.Quantile(0.999)
	var snapMean time.Duration
	if snapN > 0 {
		snapMean = snapTotal / time.Duration(snapN)
	}
	return res, snapMean, nil
}
