package harness

import (
	"io"
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestRunSharded: the harness drives a sharded engine through the same
// pipeline (prepopulate, settle, timed phase) and the roll-up metrics
// account for every operation.
func TestRunSharded(t *testing.T) {
	s := tinyScale()
	res, err := Run(Spec{
		Name:                "sharded",
		Engine:              s.engine("triad"),
		Shards:              4,
		Mix:                 workload.Mix{Dist: s.ws3(), ReadFraction: 0.1},
		Threads:             s.Threads,
		Ops:                 s.Ops,
		PrepopulateFraction: 0.5,
		Seed:                1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.KOPS <= 0 {
		t.Fatalf("sharded run reported no work: %+v", res)
	}
	if res.Snap.UserWrites == 0 || res.Snap.UserReads == 0 {
		t.Fatalf("metrics roll-up empty: %+v", res.Snap)
	}
}

// TestShardScaleExperiment smoke-tests the scaling table: one cell per
// shard count, throughput present in each.
func TestShardScaleExperiment(t *testing.T) {
	var out strings.Builder
	cells, err := ShardScale(tinyScale(), 4, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 { // 1, 2, 4
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	for _, c := range cells {
		if c.Res.KOPS <= 0 {
			t.Fatalf("cell %s has no throughput", c.Label)
		}
	}
	if !strings.Contains(out.String(), "Shard scaling") {
		t.Fatalf("table header missing:\n%s", out.String())
	}
}

// TestShardScaleDefaults: maxShards below 2 falls back to 8.
func TestShardScaleDefaults(t *testing.T) {
	cells, err := ShardScale(tinyScale(), 0, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 { // 1, 2, 4, 8
		t.Fatalf("got %d cells, want 4", len(cells))
	}
}
