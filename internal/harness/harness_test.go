package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload"
)

// tinyScale keeps harness tests fast.
func tinyScale() Scale {
	return Scale{
		Keys:          5_000,
		Ops:           10_000,
		ProdScale:     10_000,
		ProdOps:       10_000,
		MemtableBytes: 128 << 10,
		Threads:       4,
	}
}

func TestRunBasic(t *testing.T) {
	s := tinyScale()
	res, err := Run(Spec{
		Name:                "basic",
		Engine:              s.engine("triad"),
		Mix:                 workload.Mix{Dist: workload.Uniform{N: s.Keys}, ReadFraction: 0.2},
		Threads:             4,
		Ops:                 s.Ops,
		PrepopulateFraction: 0.5,
		Seed:                1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.KOPS <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Snap.UserWrites == 0 || res.Snap.UserReads == 0 {
		t.Fatalf("no user ops recorded: %+v", res.Snap)
	}
	// Writes must have been logged during the window.
	if res.LoggedMB <= 0 {
		t.Fatal("no logged bytes in measurement window")
	}
}

func TestRunDisableBG(t *testing.T) {
	s := tinyScale()
	res, err := Run(Spec{
		Name:                "nobg",
		Engine:              s.engine("baseline"),
		Mix:                 workload.Mix{Dist: workload.Uniform{N: s.Keys}, ReadFraction: 0.1},
		Threads:             2,
		Ops:                 s.Ops,
		PrepopulateFraction: 1.0,
		DisableBGAfterLoad:  true,
		Seed:                1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With background I/O disabled, nothing is flushed or compacted in
	// the timed window.
	if res.FlushedMB != 0 || res.CompactedMB != 0 {
		t.Fatalf("no-BG run flushed %.2f MB / compacted %.2f MB", res.FlushedMB, res.CompactedMB)
	}
}

func TestEngineModes(t *testing.T) {
	s := tinyScale()
	for mode, want := range map[string][3]bool{
		"baseline": {false, false, false},
		"triad":    {true, true, true},
		"mem":      {true, false, false},
		"disk":     {false, true, false},
		"log":      {false, false, true},
	} {
		o := s.engine(mode)
		got := [3]bool{o.TriadMem, o.TriadDisk, o.TriadLog}
		if got != want {
			t.Errorf("%s toggles = %v, want %v", mode, got, want)
		}
	}
}

func TestFig7Fig8Print(t *testing.T) {
	s := tinyScale()
	var buf bytes.Buffer
	if err := Fig7(s, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "W1") || !strings.Contains(buf.String(), "W4") {
		t.Fatalf("Fig7 output missing workloads:\n%s", buf.String())
	}
	buf.Reset()
	if err := Fig8(s, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Updates") || !strings.Contains(buf.String(), "Keys") {
		t.Fatalf("Fig8 output malformed:\n%s", buf.String())
	}
}

// TestRunWithDeletes drives a mix including deletes and checks the
// latency histogram is populated.
func TestRunWithDeletes(t *testing.T) {
	s := tinyScale()
	res, err := Run(Spec{
		Name:                "deletes",
		Engine:              s.engine("triad"),
		Mix:                 workload.Mix{Dist: workload.Uniform{N: s.Keys}, ReadFraction: 0.2, DeleteFraction: 0.1},
		Threads:             4,
		Ops:                 s.Ops,
		PrepopulateFraction: 0.5,
		Seed:                2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lat.Count() == 0 {
		t.Fatal("latency histogram empty")
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 {
		t.Fatalf("quantiles inconsistent: p50=%v p99=%v p999=%v", res.P50, res.P99, res.P999)
	}
}

// TestFig2Shape runs the (tiny) Figure 2 experiment and checks the
// paper's claim: removing background I/O never hurts throughput, and
// helps clearly on the uniform write-heavy workload.
func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	s := tinyScale()
	var buf bytes.Buffer
	cells, err := Fig2(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("Fig2 returned %d cells", len(cells))
	}
	// Uniform 10r-90w pair: no-BG should be clearly faster.
	base, nobg := cells[2].Res, cells[3].Res
	if nobg.KOPS < base.KOPS*1.1 {
		t.Errorf("no-BG speedup only %.2fx on uniform 10r-90w", nobg.KOPS/base.KOPS)
	}
}

// TestFig9DShape checks the headline TRIAD claim at tiny scale: TRIAD
// compacts fewer bytes than the baseline on every skew, dramatically so
// under high skew.
func TestFig9DShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	s := tinyScale()
	s.Ops = 30_000 // enough to trigger compactions
	var buf bytes.Buffer
	cells, err := Fig9D(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(cells); i += 2 {
		triad, base := cells[i].Res, cells[i+1].Res
		if triad.CompactedMB > base.CompactedMB {
			t.Errorf("%s: TRIAD compacted more than baseline (%.1f > %.1f MB)",
				cells[i].Label, triad.CompactedMB, base.CompactedMB)
		}
	}
	// High-skew case: order-of-magnitude difference.
	if cells[0].Res.CompactedMB > cells[1].Res.CompactedMB/2 {
		t.Errorf("high skew: TRIAD %.2f MB vs baseline %.2f MB — expected large gap",
			cells[0].Res.CompactedMB, cells[1].Res.CompactedMB)
	}
}
