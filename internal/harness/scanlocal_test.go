package harness

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestEvenRangeSplits: the splits are ascending EncodeKey boundaries
// that divide [0, keys) into shards slices.
func TestEvenRangeSplits(t *testing.T) {
	splits := EvenRangeSplits(1000, 8, 4)
	if len(splits) != 3 {
		t.Fatalf("got %d splits, want 3", len(splits))
	}
	for i, want := range []uint64{250, 500, 750} {
		k := make([]byte, 8)
		workload.EncodeKey(k, want)
		if !bytes.Equal(splits[i], k) {
			t.Fatalf("split %d = %x, want EncodeKey(%d)", i, splits[i], want)
		}
		if i > 0 && bytes.Compare(splits[i-1], splits[i]) >= 0 {
			t.Fatalf("splits not ascending at %d", i)
		}
	}
}

// TestRunWithRangePartitioner: the harness runs a spec under "range"
// routing end to end (the hash-vs-range comparison path of every
// experiment), and rejects unknown partitioner names.
func TestRunWithRangePartitioner(t *testing.T) {
	s := Scale{Keys: 4000, Ops: 6000, MemtableBytes: 64 << 10, Threads: 4}
	spec := Spec{
		Name:                "range-smoke",
		Engine:              s.engine("triad"),
		Shards:              4,
		Partitioner:         "range",
		Mix:                 workload.Mix{Dist: workload.Uniform{N: s.Keys}, ReadFraction: 0.2},
		Threads:             s.Threads,
		Ops:                 s.Ops,
		PrepopulateFraction: 0.5,
		Seed:                1,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.KOPS <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	spec.Partitioner = "zone"
	if _, err := Run(spec); err == nil {
		t.Fatal("unknown partitioner accepted")
	}
}

// TestScanLocality smoke-runs the hash-vs-range scan experiment at a
// tiny scale and checks the range rows exist and the table renders.
func TestScanLocality(t *testing.T) {
	s := Scale{Keys: 3000, Ops: 3000, MemtableBytes: 64 << 10, Threads: 2}
	var buf strings.Builder
	cells, err := ScanLocality(s, 4, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 || cells[0].Label != "hash" || cells[1].Label != "range" {
		t.Fatalf("cells = %+v", cells)
	}
	for _, c := range cells {
		if c.Res.KOPS <= 0 || c.Res.Ops == 0 {
			t.Fatalf("%s: empty result %+v", c.Label, c.Res)
		}
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatalf("table missing speedup row:\n%s", buf.String())
	}
	// Bad shard counts are normalized, not fatal.
	if _, err := ScanLocality(s, 0, io.Discard); err != nil {
		t.Fatal(err)
	}
}
