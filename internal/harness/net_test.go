package harness

import (
	"io"
	"strings"
	"testing"
)

// TestNetThroughputSmall runs the net experiment at a tiny scale: the
// table renders, every cell measured real ops, and latencies are sane.
func TestNetThroughputSmall(t *testing.T) {
	s := QuickScale()
	s.Keys = 4_000
	s.Ops = 6_000
	var sb strings.Builder
	cells, err := NetThroughput(s, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 { // 4 connection counts x {gc on, gc off}
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	for _, c := range cells {
		if c.Res.KOPS <= 0 {
			t.Errorf("%s: KOPS = %v", c.Label, c.Res.KOPS)
		}
		if c.Res.P99 <= 0 {
			t.Errorf("%s: P99 = %v", c.Label, c.Res.P99)
		}
		if c.Res.Ops == 0 {
			t.Errorf("%s: no ops measured", c.Label)
		}
	}
	out := sb.String()
	if !strings.Contains(out, "conns") || !strings.Contains(out, "gain") {
		t.Fatalf("table missing headers:\n%s", out)
	}
}

// TestNetThroughputWriterError: a broken output writer surfaces as an
// error, not a panic.
func TestNetThroughputWriterError(t *testing.T) {
	s := QuickScale()
	s.Keys = 1_000
	s.Ops = 800
	if _, err := NetThroughput(s, failWriter{}); err == nil {
		t.Fatal("expected error from failing writer")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }
