package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/workload"
)

// IngestResult measures one sustained-ingest-to-quiesce run: the timed
// write phase plus the drain that follows (flush everything, compact
// until no work remains), so a configuration cannot look fast by merely
// deferring its compaction debt past the finish line.
type IngestResult struct {
	Name string
	Ops  int64
	// Ingest is the timed write phase; Quiesce is the flush+compact-all
	// drain after it; Total is their sum.
	Ingest, Quiesce, Total time.Duration
	// KOPS is ingest-to-quiesce throughput: operations over Total.
	KOPS float64
	// Stalls and StallTime total the write-stall episodes and their
	// wall time during the run — the backpressure the scheduler is
	// supposed to shrink.
	Stalls    int64
	StallTime time.Duration
	// P50/P99 are per-write latency quantiles of the ingest phase.
	P50, P99 time.Duration
	// WA is the run's write amplification (quiesce included).
	WA float64
}

// RunIngest executes the spec's mix as a sustained ingest and then
// drains the tree, timing both phases. The spec's mix should be
// write-only (reads would be measured as ingest operations).
func RunIngest(spec Spec) (IngestResult, error) {
	db, cleanup, err := openEngine(spec)
	if err != nil {
		return IngestResult{}, err
	}
	defer cleanup()

	if err := prepopulate(db, spec); err != nil {
		return IngestResult{}, err
	}
	if err := db.Flush(); err != nil {
		return IngestResult{}, err
	}
	if err := db.CompactAll(); err != nil {
		return IngestResult{}, err
	}

	threads := spec.Threads
	if threads <= 0 {
		threads = 1
	}
	perWorker := spec.Ops / int64(threads)
	before := db.Metrics()
	rec := obs.NewHist()
	errCh := make(chan error, threads)
	start := time.Now()
	done := make(chan struct{})
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			stream := spec.Mix.NewStream(spec.Seed + int64(w)*7919)
			for i := int64(0); i < perWorker; i++ {
				op := stream.Next()
				t0 := time.Now()
				if op.Delete {
					if err := db.Delete(op.Key); err != nil {
						errCh <- err
						return
					}
				} else {
					if err := db.Put(op.Key, op.Value); err != nil {
						errCh <- err
						return
					}
				}
				rec.Record(time.Since(t0))
			}
		}(w)
	}
	for w := 0; w < threads; w++ {
		<-done
	}
	ingest := time.Since(start)
	select {
	case err := <-errCh:
		return IngestResult{}, err
	default:
	}

	// Quiesce: the run is not over until the debt the ingest built up is
	// paid down.
	qStart := time.Now()
	if err := db.Flush(); err != nil {
		return IngestResult{}, err
	}
	if err := db.CompactAll(); err != nil {
		return IngestResult{}, err
	}
	quiesce := time.Since(qStart)

	snap := db.Metrics().Sub(before)
	totalOps := perWorker * int64(threads)
	total := ingest + quiesce
	lat := rec.Snapshot()
	return IngestResult{
		Name:      spec.Name,
		Ops:       totalOps,
		Ingest:    ingest,
		Quiesce:   quiesce,
		Total:     total,
		KOPS:      float64(totalOps) / total.Seconds() / 1000,
		Stalls:    snap.WriteStalls,
		StallTime: snap.WriteStallTime,
		P50:       lat.Quantile(0.50),
		P99:       lat.Quantile(0.99),
		WA:        snap.WriteAmplification(),
	}, nil
}

// Ingest is the background-scheduler experiment (not a paper figure;
// the scheduler extension): the same sustained uniform ingest driven to
// quiesce under three background configurations at identical aggregate
// memory — the legacy free-goroutine engine, and the shared worker pool
// with parallel subcompactions at 2 and 4 workers. On the in-memory
// filesystem a merge's cost is pure CPU (block decode, heap merge,
// block build, checksums), the deep-queue-SSD regime where compaction
// wall time divides by the slice count; the pool turns that into fewer
// and shorter write stalls. Reported per row: ingest-to-quiesce
// throughput, phase times, write stalls and their total seconds, and
// write-tail latency.
func Ingest(s Scale, w io.Writer) ([]IngestResult, error) {
	rows := []struct {
		label   string
		workers int
		subcomp int
	}{
		{"legacy goroutines", -1, 1},
		{"pool 2w 2sub", 2, 2},
		{"pool 4w 4sub", 4, 4},
	}

	var out []IngestResult
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Sustained ingest to quiesce: uniform write-only, %d workers\n", s.Threads)
	fmt.Fprintln(tw, "config\tKOPS\tspeedup\tingest\tquiesce\tstalls\tstall-time\tp99\tWA")
	var base float64
	for _, r := range rows {
		spec := Spec{
			Name:                r.label,
			Engine:              shard.DivideBudgets(s.engine("baseline"), s.Shards),
			Shards:              s.Shards,
			Partitioner:         s.Partitioner,
			Mix:                 workload.Mix{Dist: workload.Uniform{N: s.Keys}, ReadFraction: 0},
			Threads:             s.Threads,
			Ops:                 s.Ops,
			PrepopulateFraction: 0.5,
			BackgroundWorkers:   r.workers,
			MaxSubcompactions:   r.subcomp,
			Seed:                42,
		}
		res, err := RunIngest(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
		if base == 0 {
			base = res.KOPS
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2fx\t%.2fs\t%.2fs\t%d\t%.2fs\t%s\t%.2f\n",
			res.Name, FormatKOPS(res.KOPS), res.KOPS/base,
			res.Ingest.Seconds(), res.Quiesce.Seconds(),
			res.Stalls, res.StallTime.Seconds(), res.P99, res.WA)
	}
	return out, tw.Flush()
}
