package harness

import (
	"io"
	"testing"
)

// TestConflictSmoke runs the contended-commit experiment at a tiny
// scale: it must complete, report one cell per writer count, and show
// nonzero throughput and snapshot activity.
func TestConflictSmoke(t *testing.T) {
	s := QuickScale()
	s.Ops = 8_000
	cells, err := Conflict(s, 4, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	for _, c := range cells {
		if c.Res.KOPS <= 0 {
			t.Errorf("%s: KOPS = %v, want > 0", c.Label, c.Res.KOPS)
		}
		if c.Res.Ops == 0 || c.Res.P99 == 0 {
			t.Errorf("%s: missing ops/latency (ops=%d p99=%v)", c.Label, c.Res.Ops, c.Res.P99)
		}
	}
}
