package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/shard"
	"repro/internal/workload"
)

// CacheSkew is the shared-vs-split block-cache comparison under skewed
// multi-tenant traffic: N tenants, each pinned to its own shard by a
// range partitioner aligned with the tenant key slices, with tenant
// ranks drawn Zipf(2.0) so one shard is hot and the rest are cold. Both
// variants get IDENTICAL total cache bytes; the split variant pre-slices
// them into per-shard plain-LRU caches (the pre-PR-7 layout), the shared
// variant pools them into one store-wide scan-resistant cache. Reads run
// on the SSD latency model, so cache misses cost simulated device time
// and the hit-rate difference is visible in KOPS, not just in counters.
func CacheSkew(s Scale, w io.Writer) ([]Cell, error) {
	shards := s.Shards
	if shards <= 1 {
		shards = 4
	}
	// Per-shard cache share. The hot tenant's slice holds roughly
	// Keys/shards * ~270 B of table data, so the pooled total covers most
	// of the hot slice while a 1/N slice covers only a fraction of it —
	// the regime in which pre-splitting wastes the cold shards' bytes.
	perShard := 2 * s.MemtableBytes
	dist := workload.MultiTenant{
		Tenants:   shards,
		TenantS:   2.0,
		PerTenant: workload.Uniform{N: s.Keys / uint64(shards)},
	}
	variants := []struct {
		label string
		split bool
	}{
		{"shared", false},
		{"split", true},
	}
	var cells []Cell
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Cache skew: %d tenants Zipf(2.0) on %d shards, read-only, equal total cache (%d KiB)\n",
		shards, shards, perShard*int64(shards)>>10)
	fmt.Fprintln(tw, "cache\tKOPS\thit rate\tRA\tp99")
	for _, v := range variants {
		engine := shard.DivideBudgets(s.engine("baseline"), shards)
		engine.BlockCacheBytes = perShard // per-shard share; pooled unless split
		spec := Spec{
			Name:                "cacheskew " + v.label,
			Engine:              engine,
			Shards:              shards,
			Partitioner:         "range", // even splits == tenant slices
			CacheSplit:          v.split,
			Mix:                 workload.Mix{Dist: dist, ReadFraction: 1.0},
			Threads:             s.Threads,
			Ops:                 s.Ops,
			PrepopulateFraction: 1.0,
			Latency:             SSDModel(),
			Seed:                1,
		}
		res, err := Run(spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.label, err)
		}
		cells = append(cells, Cell{Label: v.label, Res: res})
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f%%\t%.2f\t%s\n",
			v.label, res.KOPS, 100*res.CacheHitRate, res.RA, res.P99.Round(time.Microsecond))
	}
	return cells, tw.Flush()
}
