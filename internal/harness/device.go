package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/shard"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// SSDModel approximates a SATA SSD of the paper's testbed class
// (Samsung 843T): ~2 µs of per-request overhead (queued/batched 4 KB
// requests), ~1 GB/s of shared streaming bandwidth. All charges serialize
// through one shared Device, so background flush/compaction I/O steals
// device time from foreground operations — the §3 contention effect.
func SSDModel() vfs.LatencyModel {
	return vfs.LatencyModel{
		PerOp:   2 * time.Microsecond,
		PerByte: time.Nanosecond,
		Device:  &vfs.Device{},
	}
}

// Fig10Device re-runs the Figure 10 uniform-workload breakdown with
// device time charged for every byte of storage I/O. On the pure
// in-memory harness a flush costs only a memcpy, which understates
// TRIAD-LOG (whose entire contribution is eliminating the flush write);
// with an SSD-like latency model the avoided bytes have a price and the
// paper's ordering emerges. EXPERIMENTS.md discusses the deviation.
func Fig10Device(s Scale, w io.Writer) ([]Cell, error) {
	modes := []struct{ label, mode string }{
		{"TRIAD-LOG", "log"},
		{"TRIAD-DISK", "disk"},
		{"RocksDB", "baseline"},
		{"TRIAD", "triad"},
	}
	// Fewer ops: every byte now costs simulated time.
	ops := s.Ops / 2
	if ops == 0 {
		ops = 1000
	}
	var cells []Cell
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 10 (device variant): uniform 10r-90w on an SSD latency model (KOPS, p99)")
	fmt.Fprintln(tw, "engine\tKOPS\tp99")
	for _, m := range modes {
		engine := s.engine(m.mode)
		// The substrate's default block cache (RocksDB has one too):
		// without it TRIAD-LOG pays a disk read for each CL index block
		// on top of the log record itself.
		engine.BlockCacheBytes = 8 << 20
		spec := Spec{
			Name:                "dev " + m.label,
			Engine:              shard.DivideBudgets(engine, s.Shards),
			Shards:              s.Shards,
			Mix:                 workload.Mix{Dist: s.ws3(), ReadFraction: 0.1},
			Threads:             s.Threads,
			Ops:                 ops,
			PrepopulateFraction: 0.5,
			Latency:             SSDModel(),
			Seed:                1,
		}
		res, err := Run(spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.label, err)
		}
		cells = append(cells, Cell{Label: m.label, Res: res})
		fmt.Fprintf(tw, "%s\t%.1f\t%s\n", m.label, res.KOPS, res.P99.Round(time.Microsecond))
	}
	return cells, tw.Flush()
}

// SizeTiered compares leveled vs size-tiered compaction, both with and
// without TRIAD-DISK's HLL-guided bucket selection — the adaptation §2
// says is straightforward. Not a paper figure; an extension experiment.
func SizeTiered(s Scale, w io.Writer) ([]Cell, error) {
	variants := []struct {
		label      string
		sizeTiered bool
		triadDisk  bool
	}{
		{"leveled", false, false},
		{"leveled+disk", false, true},
		{"size-tiered", true, false},
		{"size-tiered+disk", true, true},
	}
	var cells []Cell
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Size-tiered extension: 20%-80% skew, 10r-90w (KOPS / WA / RA)")
	fmt.Fprintln(tw, "strategy\tKOPS\tWA\tRA\tdeferrals")
	for _, v := range variants {
		o := s.engine("baseline")
		o.SizeTieredCompaction = v.sizeTiered
		o.TriadDisk = v.triadDisk
		spec := Spec{
			Name:                v.label,
			Engine:              shard.DivideBudgets(o, s.Shards),
			Shards:              s.Shards,
			Mix:                 workload.Mix{Dist: s.ws2(), ReadFraction: 0.1},
			Threads:             s.Threads,
			Ops:                 s.Ops,
			PrepopulateFraction: 0.5,
			Seed:                1,
		}
		res, err := Run(spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.label, err)
		}
		cells = append(cells, Cell{Label: v.label, Res: res})
		fmt.Fprintf(tw, "%s\t%.1f\t%.2f\t%.2f\t%d\n", v.label, res.KOPS, res.WA, res.RA, res.Deferred)
	}
	return cells, tw.Flush()
}
