package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/lsm"
	"repro/internal/memtable"
	"repro/internal/shard"
	"repro/internal/workload"
)

// Scale sizes an experiment suite. The paper's full configuration (4 MB
// memtable, 1 M keys, hours of runtime on a 20-core Xeon) is scaled down
// so every figure regenerates in seconds; both systems scale identically,
// so the comparisons (who wins, by what factor) are preserved.
type Scale struct {
	// Keys is the synthetic key-space size (paper: 1,000,000).
	Keys uint64
	// Ops is the timed operation count per run.
	Ops int64
	// ProdScale divides the production workload sizes of Figure 8.
	ProdScale uint64
	// ProdOps is the timed operation count for production runs.
	ProdOps int64
	// MemtableBytes is the memory-component budget (paper: 4 MB).
	MemtableBytes int64
	// Threads is the worker count for fixed-thread figures (paper: 8).
	Threads int
	// Shards, when > 1, runs every experiment against a sharded engine
	// of that many lsm instances at the same aggregate memory budget
	// (see Spec.Shards). 0 or 1 keeps the single-instance engine.
	Shards int
	// Partitioner is the shard router for sharded runs: "" or "hash"
	// for FNV, "range" for even contiguous keyspace slices (see
	// Spec.Partitioner).
	Partitioner string
}

// QuickScale regenerates every figure in roughly a minute total.
func QuickScale() Scale {
	return Scale{
		Keys:          60_000,
		Ops:           120_000,
		ProdScale:     1000,
		ProdOps:       150_000,
		MemtableBytes: 512 << 10,
		Threads:       8,
	}
}

// FullScale approaches the paper's synthetic configuration (1 M keys,
// 4 MB memtable); expect minutes per figure.
func FullScale() Scale {
	return Scale{
		Keys:          1_000_000,
		Ops:           2_000_000,
		ProdScale:     100,
		ProdOps:       2_000_000,
		MemtableBytes: 4 << 20,
		Threads:       8,
	}
}

// engine returns the engine options for a mode name:
// "baseline", "triad", "mem", "disk", "log".
func (s Scale) engine(mode string) lsm.Options {
	o := lsm.DefaultOptions(nil)
	o.MemtableBytes = s.MemtableBytes
	o.CommitLogBytes = 4 * s.MemtableBytes
	o.FlushThresholdBytes = s.MemtableBytes / 2
	o.BaseLevelBytes = 8 * s.MemtableBytes
	o.TargetFileBytes = s.MemtableBytes
	o.LevelMultiplier = 10
	// Above-mean hot detection: §4.1 reports it "is effective in all
	// workloads" and it needs no per-workload K tuning.
	o.HotPolicy = memtable.HotAboveMean
	o.HotFraction = 0.25
	switch mode {
	case "triad":
		o.TriadMem, o.TriadDisk, o.TriadLog = true, true, true
	case "mem":
		o.TriadMem = true
	case "disk":
		o.TriadDisk = true
	case "log":
		o.TriadLog = true
	}
	return o
}

// Skew profiles of §5.3.
func (s Scale) ws1() workload.KeyDist {
	return workload.HotCold{N: s.Keys, HotFraction: 0.01, HotAccess: 0.99}
}
func (s Scale) ws2() workload.KeyDist {
	return workload.HotCold{N: s.Keys, HotFraction: 0.20, HotAccess: 0.80}
}
func (s Scale) ws3() workload.KeyDist { return workload.Uniform{N: s.Keys} }
func (s Scale) ws1090() workload.KeyDist {
	return workload.HotCold{N: s.Keys, HotFraction: 0.10, HotAccess: 0.90}
}

// Cell is one (spec, result) pair of an experiment grid.
type Cell struct {
	Label string
	Res   Result
}

// runCell builds and runs one spec.
func (s Scale) runCell(label, mode string, dist workload.KeyDist, readFrac float64, threads int, ops int64, prepop float64, disableBG bool) (Cell, error) {
	spec := Spec{
		Name: label,
		// Budgets are divided across shards so a sharded figure run
		// stays comparable to the unsharded one at equal aggregate
		// memory (DivideBudgets is the identity for Shards <= 1).
		Engine:              shard.DivideBudgets(s.engine(mode), s.Shards),
		Shards:              s.Shards,
		Partitioner:         s.Partitioner,
		Mix:                 workload.Mix{Dist: dist, ReadFraction: readFrac},
		Threads:             threads,
		Ops:                 ops,
		PrepopulateFraction: prepop,
		DisableBGAfterLoad:  disableBG,
		Seed:                1,
	}
	res, err := Run(spec)
	if err != nil {
		return Cell{}, fmt.Errorf("%s: %w", label, err)
	}
	res.Name = label
	return Cell{Label: label, Res: res}, nil
}

// --- Figure 2: background I/O impact on throughput ---

// Fig2 compares the baseline engine against the same engine with
// background I/O disabled, for uniform/skewed × 50r-50w/10r-90w at 8
// workers over a fully pre-populated tree.
func Fig2(s Scale, w io.Writer) ([]Cell, error) {
	type wl struct {
		name     string
		dist     workload.KeyDist
		readFrac float64
	}
	wls := []wl{
		{"Uniform 50r-50w", s.ws3(), 0.5},
		{"Uniform 10r-90w", s.ws3(), 0.1},
		{"Skewed 50r-50w", s.ws1(), 0.5},
		{"Skewed 10r-90w", s.ws1(), 0.1},
	}
	var cells []Cell
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 2: Background I/O impact on throughput (KOPS)")
	fmt.Fprintln(tw, "workload\tRocksDB\tRocksDB No BG I/O\tratio")
	for _, x := range wls {
		base, err := s.runCell(x.name+" base", "baseline", x.dist, x.readFrac, s.Threads, s.Ops, 1.0, false)
		if err != nil {
			return nil, err
		}
		nobg, err := s.runCell(x.name+" nobg", "baseline", x.dist, x.readFrac, s.Threads, s.Ops, 1.0, true)
		if err != nil {
			return nil, err
		}
		cells = append(cells, base, nobg)
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.2fx\n", x.name, base.Res.KOPS, nobg.Res.KOPS, nobg.Res.KOPS/base.Res.KOPS)
	}
	return cells, tw.Flush()
}

// --- Figures 7 and 8: production workload shapes ---

// Fig7 prints the key-popularity curves of the four production workload
// models (log-scale probabilities at sampled ranks).
func Fig7(s Scale, w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 7: production workload key access probabilities (by decreasing popularity)")
	fmt.Fprintln(tw, "rank-fraction\tW1\tW2\tW3\tW4")
	var ps [4]workload.Production
	for i := 1; i <= 4; i++ {
		p, err := workload.ProductionWorkload(i, s.ProdScale)
		if err != nil {
			return err
		}
		ps[i-1] = p
	}
	for _, frac := range []float64{0.001, 0.005, 0.02, 0.05, 0.15, 0.40, 0.80, 0.99} {
		fmt.Fprintf(tw, "%.3f", frac)
		for _, p := range ps {
			i := uint64(frac * float64(p.Keys()))
			fmt.Fprintf(tw, "\t%.2e", p.AccessProbability(i))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Fig8 prints the (scaled) workload inventory table.
func Fig8(s Scale, w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Figure 8: production workloads (scaled 1/%d)\n", s.ProdScale)
	fmt.Fprintln(tw, "\tWkld 1\tWkld 2\tWkld 3\tWkld 4")
	fmt.Fprint(tw, "Updates")
	for i := 1; i <= 4; i++ {
		p, _ := workload.ProductionWorkload(i, s.ProdScale)
		fmt.Fprintf(tw, "\t%d", p.Updates)
	}
	fmt.Fprint(tw, "\nKeys")
	for i := 1; i <= 4; i++ {
		p, _ := workload.ProductionWorkload(i, s.ProdScale)
		fmt.Fprintf(tw, "\t%d", p.Keys())
	}
	fmt.Fprintln(tw)
	return tw.Flush()
}

// --- Figure 9A: production throughput and WA ---

// Fig9A runs the four production workloads on baseline and TRIAD.
func Fig9A(s Scale, w io.Writer) ([]Cell, error) {
	var cells []Cell
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 9A: production workloads, 8 threads (KOPS and write amplification)")
	fmt.Fprintln(tw, "workload\tRocksDB KOPS\tTRIAD KOPS\tgain\tRocksDB WA\tTRIAD WA")
	for i := 1; i <= 4; i++ {
		p, err := workload.ProductionWorkload(i, s.ProdScale)
		if err != nil {
			return nil, err
		}
		ops := s.ProdOps
		base, err := s.runCell(fmt.Sprintf("W%d base", i), "baseline", p, 0, s.Threads, ops, 0.5, false)
		if err != nil {
			return nil, err
		}
		triad, err := s.runCell(fmt.Sprintf("W%d triad", i), "triad", p, 0, s.Threads, ops, 0.5, false)
		if err != nil {
			return nil, err
		}
		cells = append(cells, base, triad)
		fmt.Fprintf(tw, "Prod Wkld %d\t%.1f\t%.1f\t+%.0f%%\t%.2f\t%.2f\n",
			i, base.Res.KOPS, triad.Res.KOPS, 100*(triad.Res.KOPS/base.Res.KOPS-1), base.Res.WA, triad.Res.WA)
	}
	return cells, tw.Flush()
}

// --- Figures 9B and 9C: synthetic throughput and WA grids ---

// ThreadGrid is the paper's x axis.
var ThreadGrid = []int{1, 2, 4, 8, 12, 16}

// Fig9BC runs the skew × read-mix × threads grid on both engines,
// printing throughput (9B) and write amplification (9C).
func Fig9BC(s Scale, w io.Writer) ([]Cell, error) {
	type wl struct {
		name     string
		dist     workload.KeyDist
		readFrac float64
	}
	wls := []wl{
		{"Skew 1%-99% 10r-90w", s.ws1(), 0.1},
		{"Skew 20%-80% 10r-90w", s.ws2(), 0.1},
		{"No Skew 10r-90w", s.ws3(), 0.1},
		{"Skew 1%-99% 50r-50w", s.ws1(), 0.5},
		{"Skew 20%-80% 50r-50w", s.ws2(), 0.5},
		{"No Skew 50r-50w", s.ws3(), 0.5},
	}
	var cells []Cell
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 9B/9C: synthetic workloads across thread counts (KOPS / WA)")
	fmt.Fprintln(tw, "workload\tthreads\tRocksDB KOPS\tTRIAD KOPS\tRocksDB WA\tTRIAD WA")
	for _, x := range wls {
		for _, th := range ThreadGrid {
			base, err := s.runCell(fmt.Sprintf("%s t%d base", x.name, th), "baseline", x.dist, x.readFrac, th, s.Ops, 0.5, false)
			if err != nil {
				return nil, err
			}
			triad, err := s.runCell(fmt.Sprintf("%s t%d triad", x.name, th), "triad", x.dist, x.readFrac, th, s.Ops, 0.5, false)
			if err != nil {
				return nil, err
			}
			cells = append(cells, base, triad)
			fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.2f\t%.2f\n",
				x.name, th, base.Res.KOPS, triad.Res.KOPS, base.Res.WA, triad.Res.WA)
		}
	}
	return cells, tw.Flush()
}

// --- Figure 9D: compacted bytes and % time in compaction ---

// Fig9D runs the three skews at 8 threads, 10r-90w.
func Fig9D(s Scale, w io.Writer) ([]Cell, error) {
	type wl struct {
		name string
		dist workload.KeyDist
	}
	wls := []wl{
		{"Skew 1%-99%", s.ws1()},
		{"Skew 20%-80%", s.ws2()},
		{"No Skew", s.ws3()},
	}
	var cells []Cell
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 9D: compacted MB and % time in compaction (8 threads, 10r-90w)")
	fmt.Fprintln(tw, "workload\tTRIAD MB\tRocksDB MB\tTRIAD pct-comp\tRocksDB pct-comp")
	for _, x := range wls {
		triad, err := s.runCell(x.name+" triad", "triad", x.dist, 0.1, s.Threads, s.Ops, 0.5, false)
		if err != nil {
			return nil, err
		}
		base, err := s.runCell(x.name+" base", "baseline", x.dist, 0.1, s.Threads, s.Ops, 0.5, false)
		if err != nil {
			return nil, err
		}
		cells = append(cells, triad, base)
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f%%\t%.1f%%\n",
			x.name, triad.Res.CompactedMB, base.Res.CompactedMB, triad.Res.PctCompaction, base.Res.PctCompaction)
	}
	return cells, tw.Flush()
}

// --- Figure 10: per-technique throughput breakdown ---

// Fig10 runs uniform and highly-skewed workloads (10r-90w, 16 threads) on
// the single-technique engines.
func Fig10(s Scale, w io.Writer) (map[string][]Cell, error) {
	modes := []struct{ label, mode string }{
		{"TRIAD-MEM", "mem"},
		{"TRIAD-DISK", "disk"},
		{"TRIAD-LOG", "log"},
		{"RocksDB", "baseline"},
		{"TRIAD", "triad"},
	}
	out := map[string][]Cell{}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 10: throughput breakdown by technique (16 threads, 10r-90w; KOPS)")
	fmt.Fprintln(tw, "workload\tTRIAD-MEM\tTRIAD-DISK\tTRIAD-LOG\tRocksDB\tTRIAD")
	for _, x := range []struct {
		name string
		dist workload.KeyDist
	}{{"No Skew", s.ws3()}, {"Skew 1-99", s.ws1()}} {
		row := x.name
		for _, m := range modes {
			c, err := s.runCell(x.name+" "+m.label, m.mode, x.dist, 0.1, 16, s.Ops, 0.5, false)
			if err != nil {
				return nil, err
			}
			out[x.name] = append(out[x.name], c)
			row += fmt.Sprintf("\t%.1f", c.Res.KOPS)
		}
		fmt.Fprintln(tw, row)
	}
	return out, tw.Flush()
}

// --- Figure 11: per-technique WA and RA breakdown ---

// Fig11 runs four skews on the single-technique engines, reporting WA
// normalized to the baseline, and the RA breakdown on the uniform
// 10%-read workload.
func Fig11(s Scale, w io.Writer) (map[string][]Cell, error) {
	skews := []struct {
		name string
		dist workload.KeyDist
	}{
		{"1% data - 99% time", s.ws1()},
		{"10% data - 90% time", s.ws1090()},
		{"20% data - 80% time", s.ws2()},
		{"no skew", s.ws3()},
	}
	modes := []struct{ label, mode string }{
		{"TRIAD-MEM", "mem"},
		{"TRIAD-DISK", "disk"},
		{"TRIAD-LOG", "log"},
		{"TRIAD", "triad"},
		{"RocksDB", "baseline"},
	}
	out := map[string][]Cell{}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 11: WA normalized to RocksDB (8 threads, 10r-90w)")
	fmt.Fprintln(tw, "workload\tTRIAD-MEM\tTRIAD-DISK\tTRIAD-LOG\tTRIAD\tRocksDB")
	for _, x := range skews {
		var base Cell
		var row []Cell
		for _, m := range modes {
			c, err := s.runCell(x.name+" "+m.label, m.mode, x.dist, 0.1, s.Threads, s.Ops, 0.5, false)
			if err != nil {
				return nil, err
			}
			row = append(row, c)
			if m.mode == "baseline" {
				base = c
			}
		}
		out[x.name] = row
		line := x.name
		for _, c := range row {
			line += fmt.Sprintf("\t%.2f", c.Res.WA/base.Res.WA)
		}
		fmt.Fprintln(tw, line)
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	// RA breakdown on uniform, 10% reads.
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nFigure 11 (lower right): read amplification, uniform, 10 percent reads")
	fmt.Fprintln(tw, "engine\tRA")
	for _, c := range out["no skew"] {
		fmt.Fprintf(tw, "%s\t%.2f\n", c.Label, c.Res.RA)
	}
	return out, tw.Flush()
}
