package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/vfs"
	"repro/internal/workload"
)

// shardDeviceModel is the per-shard storage device of the scaling
// experiment: SATA-class (~2 µs per request, ~250 MB/s streaming).
// Heavier than SSDModel's shared device because here every shard owns
// one — the scale-out deployment where capacity is added disk by disk.
func shardDeviceModel() vfs.LatencyModel {
	return vfs.LatencyModel{
		PerOp:   2 * time.Microsecond,
		PerByte: 4 * time.Nanosecond,
		Device:  &vfs.Device{},
	}
}

// ShardScale is the sharded-engine scaling experiment (not a paper
// figure; the scale-out extension). It drives the same mixed workload
// (uniform keys, 10% reads / 90% writes, Threads concurrent workers)
// against shard counts 1..maxShards and reports throughput, p99 latency
// and write amplification per shard count.
//
// Each configuration models the scale-out deployment: every shard is a
// full engine (own memtable budget, WAL, levels) on its own simulated
// device. The single-instance row is the contended baseline — all
// writers serialize behind one memtable mutex, and every WAL append
// holds that mutex while the one device charges for it. Each added
// shard multiplies the independent write paths and devices, so those
// waits overlap and throughput rises until workers or CPU, not the
// engine lock, are the limit.
func ShardScale(s Scale, maxShards int, w io.Writer) ([]Cell, error) {
	if maxShards < 2 {
		maxShards = 8
	}
	var counts []int
	for n := 1; n <= maxShards; n *= 2 {
		counts = append(counts, n)
	}
	if last := counts[len(counts)-1]; last != maxShards {
		counts = append(counts, maxShards)
	}

	var cells []Cell
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Shard scaling: uniform 10r-90w, %d workers, one device per shard\n", s.Threads)
	fmt.Fprintln(tw, "shards\tKOPS\tspeedup\tp99\tWA")
	var base float64
	for _, n := range counts {
		label := fmt.Sprintf("%d shard(s)", n)
		spec := Spec{
			Name:                label,
			Engine:              s.engine("triad"),
			Shards:              n,
			Partitioner:         s.Partitioner,
			DevicePerShard:      true,
			Mix:                 workload.Mix{Dist: s.ws3(), ReadFraction: 0.1},
			Threads:             s.Threads,
			Ops:                 s.Ops,
			PrepopulateFraction: 0.5,
			Latency:             shardDeviceModel(),
			Seed:                1,
		}
		res, err := Run(spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		if base == 0 {
			base = res.KOPS
		}
		cells = append(cells, Cell{Label: label, Res: res})
		fmt.Fprintf(tw, "%d\t%.1f\t%.2fx\t%s\t%.2f\n", n, res.KOPS, res.KOPS/base, res.P99, res.WA)
	}
	return cells, tw.Flush()
}
