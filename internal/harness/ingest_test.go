package harness

import (
	"io"
	"testing"

	"repro/internal/workload"
)

// TestRunIngestPhases: both phases are timed, the counters move, and
// the legacy and pool configurations agree on the amount of work done.
func TestRunIngestPhases(t *testing.T) {
	s := Scale{Keys: 6_000, Ops: 12_000, MemtableBytes: 64 << 10, Threads: 4}
	for _, cfg := range []struct {
		name    string
		workers int
		subcomp int
	}{
		{"legacy", -1, 1},
		{"pool", 2, 2},
	} {
		spec := Spec{
			Name:                cfg.name,
			Engine:              s.engine("baseline"),
			Mix:                 workload.Mix{Dist: workload.Uniform{N: s.Keys}},
			Threads:             s.Threads,
			Ops:                 s.Ops,
			PrepopulateFraction: 0.5,
			BackgroundWorkers:   cfg.workers,
			MaxSubcompactions:   cfg.subcomp,
			Seed:                7,
		}
		res, err := RunIngest(spec)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if res.Ops != spec.Ops {
			t.Errorf("%s: ran %d ops, want %d", cfg.name, res.Ops, spec.Ops)
		}
		if res.Total <= 0 || res.Total != res.Ingest+res.Quiesce {
			t.Errorf("%s: inconsistent phase times: %+v", cfg.name, res)
		}
		if res.KOPS <= 0 || res.WA <= 0 {
			t.Errorf("%s: missing derived metrics: %+v", cfg.name, res)
		}
	}
}

// TestIngestExperiment runs the three-row comparison end to end at a
// tiny scale.
func TestIngestExperiment(t *testing.T) {
	s := Scale{Keys: 5_000, Ops: 10_000, MemtableBytes: 64 << 10, Threads: 4}
	rows, err := Ingest(s, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Ops != s.Ops {
			t.Errorf("%s: ran %d ops, want %d", r.Name, r.Ops, s.Ops)
		}
	}
}
