package harness

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/shard"
	"repro/internal/workload"
)

// ScanLocality is the scan-locality experiment (not a paper figure; the
// range-partitioner extension). It loads the same ordered keyspace into
// two sharded stores at identical budgets — one hash-partitioned, one
// range-partitioned into even contiguous slices — and drives short range
// scans (1% of the keyspace each) from random starts.
//
// Under hash partitioning every scan touches all shards and pays a
// k-way heap merge; under range partitioning most scans fall inside one
// shard's slice and return that shard's iterator verbatim (at most two
// shards when a scan straddles a split). The table reports scans/s and
// scanned keys/s per partitioner, and the range:hash speedup — the win
// the TRIAD techniques' deferred disk work makes room for, restored on
// scans by scan-local routing.
func ScanLocality(s Scale, shards int, w io.Writer) ([]Cell, error) {
	if shards < 2 {
		shards = 4
	}
	const keySize = 8
	span := s.Keys / 100
	if span == 0 {
		span = 1
	}
	// Visit ~s.Ops entries per partitioner so quick and full scale
	// both finish in sensible time.
	scans := int(s.Ops / int64(span))
	if scans < 50 {
		scans = 50
	}

	var cells []Cell
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Scan locality: %d shards, %d scans of %d keys (1%% spans), same budgets\n",
		shards, scans, span)
	fmt.Fprintln(tw, "partitioner\tscans/s\tkeys/s\tshards/scan")
	for _, mode := range []string{"hash", "range"} {
		var part shard.Partitioner
		if mode == "range" {
			var err error
			part, err = shard.NewRange(EvenRangeSplits(s.Keys, keySize, shards)...)
			if err != nil {
				return nil, err
			}
		}
		db, err := shard.Open(shard.Options{
			Shards:      shards,
			Engine:      shard.DivideBudgets(s.engine("triad"), shards),
			NewFS:       shard.MemFS(),
			Partitioner: part,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mode, err)
		}
		key := make([]byte, keySize)
		val := make([]byte, 128)
		for i := uint64(0); i < s.Keys; i++ {
			workload.EncodeKey(key, i)
			if err := db.Put(key, val); err != nil {
				db.Close()
				return nil, fmt.Errorf("%s: load: %w", mode, err)
			}
		}
		// Settle so both stores scan an equivalent on-disk tree.
		if err := db.Flush(); err != nil {
			db.Close()
			return nil, err
		}
		if err := db.CompactAll(); err != nil {
			db.Close()
			return nil, err
		}

		rng := rand.New(rand.NewSource(1))
		lo := make([]byte, keySize)
		hi := make([]byte, keySize)
		var entries, shardsTouched int64
		start := time.Now()
		for i := 0; i < scans; i++ {
			a := uint64(rng.Int63n(int64(s.Keys - span + 1)))
			workload.EncodeKey(lo, a)
			workload.EncodeKey(hi, a+span)
			idx, _ := db.Partitioner().Ranges(lo, hi, db.NumShards())
			shardsTouched += int64(len(idx))
			it, err := db.NewIterator(lo, hi)
			if err != nil {
				db.Close()
				return nil, fmt.Errorf("%s: scan: %w", mode, err)
			}
			for it.Next() {
				entries++
			}
			if err := it.Close(); err != nil {
				db.Close()
				return nil, fmt.Errorf("%s: scan close: %w", mode, err)
			}
		}
		elapsed := time.Since(start)
		if err := db.Close(); err != nil {
			return nil, err
		}

		res := Result{
			Name:    mode,
			Ops:     int64(scans),
			Elapsed: elapsed,
			// KOPS carries scanned keys per millisecond, the headline
			// scan-throughput number.
			KOPS: float64(entries) / elapsed.Seconds() / 1000,
		}
		cells = append(cells, Cell{Label: mode, Res: res})
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.2f\n",
			mode,
			float64(scans)/elapsed.Seconds(),
			float64(entries)/elapsed.Seconds(),
			float64(shardsTouched)/float64(scans))
	}
	if len(cells) == 2 && cells[0].Res.KOPS > 0 {
		fmt.Fprintf(tw, "range/hash speedup\t%.2fx\n", cells[1].Res.KOPS/cells[0].Res.KOPS)
	}
	return cells, tw.Flush()
}
