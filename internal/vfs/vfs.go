// Package vfs provides the filesystem abstraction used by the LSM engine.
//
// Two implementations are provided: MemFS, an in-memory filesystem with
// byte-accurate I/O accounting, an optional latency model and fault
// injection (used by experiments and tests), and OSFS, a thin wrapper over
// the real filesystem (used by cmd/triaddb and the examples that persist
// data).
//
// All engine I/O goes through this interface so that write amplification
// and read amplification can be measured exactly, independent of the
// underlying medium.
package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrNotFound is returned when opening a file that does not exist.
var ErrNotFound = errors.New("vfs: file not found")

// ErrClosed is returned on operations against a closed file.
var ErrClosed = errors.New("vfs: file closed")

// File is the per-file handle interface. Writers append; readers use ReadAt
// so that concurrent reads need no seek state.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes buffered data to stable storage.
	Sync() error
	// Size reports the current length of the file in bytes.
	Size() (int64, error)
}

// FS is the filesystem interface the engine is written against.
type FS interface {
	// Create creates (or truncates) the named file for writing.
	Create(name string) (File, error)
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// Remove deletes the named file.
	Remove(name string) error
	// Rename atomically renames a file.
	Rename(oldname, newname string) error
	// List returns the names of all files whose name starts with prefix,
	// in lexicographic order.
	List(prefix string) ([]string, error)
	// Exists reports whether the named file exists.
	Exists(name string) bool
}

// Stats holds cumulative I/O counters for a MemFS. All fields are managed
// with atomics and may be read concurrently with engine activity.
type Stats struct {
	BytesWritten atomic.Int64
	BytesRead    atomic.Int64
	WriteOps     atomic.Int64
	ReadOps      atomic.Int64
	Syncs        atomic.Int64
	FilesCreated atomic.Int64
	FilesRemoved atomic.Int64
}

// LatencyModel charges simulated time for I/O against a MemFS. A zero model
// charges nothing. Charges are busy-free: the goroutine sleeps, modelling a
// device with the given throughput and per-operation overhead.
//
// When Device is set, charges additionally serialize through it: a shared
// token-bucket of device time, so concurrent foreground and background I/O
// queue behind each other the way they do on one SSD. That contention —
// background flush/compaction bytes stealing device time from user
// operations — is exactly the effect the paper's §3 measures.
type LatencyModel struct {
	// PerOp is charged once per read/write/sync call.
	PerOp time.Duration
	// PerByte is charged per byte moved.
	PerByte time.Duration
	// Device, when non-nil, is the shared device the time is drawn from.
	Device *Device
}

func (m LatencyModel) charge(n int) {
	if m.PerOp == 0 && m.PerByte == 0 {
		return
	}
	d := m.PerOp + time.Duration(n)*m.PerByte
	if d <= 0 {
		return
	}
	if m.Device != nil {
		m.Device.Occupy(d)
		return
	}
	time.Sleep(d)
}

// Device models one storage device's serial service queue. Every charge
// reserves a slot of device time after all previously reserved time and
// sleeps until its slot completes, so N concurrent streams each see the
// device at 1/N of its speed.
type Device struct {
	mu    sync.Mutex
	avail time.Time
}

// sleepGranularity bounds how precisely Occupy sleeps: reservations whose
// end is closer than this return immediately (the queue position still
// advances, so aggregate device throughput is enforced exactly; only
// per-operation jitter is traded away). Sleeping for every microsecond
// charge would round each one up to the runtime's timer resolution and
// overstate the device by orders of magnitude.
const sleepGranularity = 200 * time.Microsecond

// Occupy reserves d of device time and blocks until the reservation ends.
func (dev *Device) Occupy(d time.Duration) {
	dev.mu.Lock()
	now := time.Now()
	if dev.avail.Before(now) {
		dev.avail = now
	}
	dev.avail = dev.avail.Add(d)
	end := dev.avail
	dev.mu.Unlock()
	if wait := time.Until(end); wait > sleepGranularity {
		time.Sleep(wait)
	}
}

// MemFS is an in-memory filesystem. It is safe for concurrent use.
type MemFS struct {
	mu    sync.RWMutex
	files map[string]*memNode

	// Stats is updated on every operation.
	Stats Stats
	// Latency, if non-zero, charges simulated device time.
	Latency LatencyModel

	// failEvery, when > 0, makes every Nth write return an injected error.
	failEvery atomic.Int64
	writeSeq  atomic.Int64
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memNode)}
}

// ErrInjected is the error returned by fault-injected operations.
var ErrInjected = errors.New("vfs: injected fault")

// FailEveryNthWrite arranges for every nth write to fail with ErrInjected.
// n <= 0 disables injection.
func (fs *MemFS) FailEveryNthWrite(n int) { fs.failEvery.Store(int64(n)) }

type memNode struct {
	mu   sync.RWMutex
	data []byte
}

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	n := &memNode{}
	fs.files[name] = n
	fs.mu.Unlock()
	fs.Stats.FilesCreated.Add(1)
	return &memFile{fs: fs, node: n, writable: true}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.RLock()
	n, ok := fs.files[name]
	fs.mu.RUnlock()
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: ErrNotFound}
	}
	return &memFile{fs: fs, node: n}, nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: ErrNotFound}
	}
	delete(fs.files, name)
	fs.Stats.FilesRemoved.Add(1)
	return nil
}

// Rename implements FS.
func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: ErrNotFound}
	}
	delete(fs.files, oldname)
	fs.files[newname] = n
	return nil
}

// List implements FS.
func (fs *MemFS) List(prefix string) ([]string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for name := range fs.files {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Exists implements FS.
func (fs *MemFS) Exists(name string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[name]
	return ok
}

type memFile struct {
	fs       *MemFS
	node     *memNode
	writable bool
	closed   bool
}

func (f *memFile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if fe := f.fs.failEvery.Load(); fe > 0 {
		if f.fs.writeSeq.Add(1)%fe == 0 {
			return 0, ErrInjected
		}
	}
	f.node.mu.Lock()
	f.node.data = append(f.node.data, p...)
	f.node.mu.Unlock()
	f.fs.Stats.BytesWritten.Add(int64(len(p)))
	f.fs.Stats.WriteOps.Add(1)
	f.fs.Latency.charge(len(p))
	return len(p), nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	f.node.mu.RLock()
	defer f.node.mu.RUnlock()
	if off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[off:])
	f.fs.Stats.BytesRead.Add(int64(n))
	f.fs.Stats.ReadOps.Add(1)
	f.fs.Latency.charge(n)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Close() error {
	f.closed = true
	return nil
}

func (f *memFile) Sync() error {
	if f.closed {
		return ErrClosed
	}
	f.fs.Stats.Syncs.Add(1)
	f.fs.Latency.charge(0)
	return nil
}

func (f *memFile) Size() (int64, error) {
	f.node.mu.RLock()
	defer f.node.mu.RUnlock()
	return int64(len(f.node.data)), nil
}

// OSFS implements FS on top of the operating system filesystem, rooted at
// Dir. It performs no accounting; use it for durable stores.
type OSFS struct {
	// Dir is the root directory; all names are joined to it.
	Dir string
}

// NewOSFS returns an OSFS rooted at dir, creating dir if needed.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &OSFS{Dir: dir}, nil
}

func (fs *OSFS) path(name string) string { return filepath.Join(fs.Dir, name) }

// Create implements FS.
func (fs *OSFS) Create(name string) (File, error) {
	f, err := os.Create(fs.path(name))
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Open implements FS.
func (fs *OSFS) Open(name string) (File, error) {
	f, err := os.Open(fs.path(name))
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Remove implements FS.
func (fs *OSFS) Remove(name string) error { return os.Remove(fs.path(name)) }

// Rename implements FS.
func (fs *OSFS) Rename(oldname, newname string) error {
	return os.Rename(fs.path(oldname), fs.path(newname))
}

// List implements FS.
func (fs *OSFS) List(prefix string) ([]string, error) {
	entries, err := os.ReadDir(fs.Dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Exists implements FS.
func (fs *OSFS) Exists(name string) bool {
	_, err := os.Stat(fs.path(name))
	return err == nil
}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
