package vfs

import (
	"errors"
	"io"
	"testing"
)

func TestMemFSCreateWriteRead(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	size, err := f.Size()
	if err != nil || size != 11 {
		t.Fatalf("Size = %d, %v; want 11", size, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := fs.Open("a.txt")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := r.ReadAt(buf, 6); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("ReadAt = %q, want world", buf)
	}
	if _, err := r.ReadAt(buf, 100); err != io.EOF {
		t.Fatalf("ReadAt past end = %v, want EOF", err)
	}
}

func TestMemFSOpenMissing(t *testing.T) {
	fs := NewMemFS()
	if _, err := fs.Open("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Open missing = %v, want ErrNotFound", err)
	}
	if err := fs.Remove("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Remove missing = %v, want ErrNotFound", err)
	}
	if err := fs.Rename("missing", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Rename missing = %v, want ErrNotFound", err)
	}
}

func TestMemFSRemoveRenameListExists(t *testing.T) {
	fs := NewMemFS()
	for _, name := range []string{"001.log", "002.log", "001.sst"} {
		f, _ := fs.Create(name)
		f.Close()
	}
	names, err := fs.List("")
	if err != nil || len(names) != 3 {
		t.Fatalf("List all = %v, %v", names, err)
	}
	logs, _ := fs.List("00")
	if len(logs) != 3 {
		t.Fatalf("List prefix 00 = %v", logs)
	}
	if !fs.Exists("001.log") {
		t.Fatal("Exists(001.log) = false")
	}
	if err := fs.Rename("001.log", "003.log"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("001.log") || !fs.Exists("003.log") {
		t.Fatal("rename did not move the file")
	}
	if err := fs.Remove("003.log"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("003.log") {
		t.Fatal("remove left the file behind")
	}
}

func TestMemFSStats(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("s")
	f.Write(make([]byte, 100))
	f.Write(make([]byte, 50))
	f.Sync()
	r, _ := fs.Open("s")
	buf := make([]byte, 30)
	r.ReadAt(buf, 0)
	if got := fs.Stats.BytesWritten.Load(); got != 150 {
		t.Errorf("BytesWritten = %d, want 150", got)
	}
	if got := fs.Stats.BytesRead.Load(); got != 30 {
		t.Errorf("BytesRead = %d, want 30", got)
	}
	if got := fs.Stats.Syncs.Load(); got != 1 {
		t.Errorf("Syncs = %d, want 1", got)
	}
	if got := fs.Stats.FilesCreated.Load(); got != 1 {
		t.Errorf("FilesCreated = %d, want 1", got)
	}
}

func TestMemFSFaultInjection(t *testing.T) {
	fs := NewMemFS()
	fs.FailEveryNthWrite(3)
	f, _ := fs.Create("x")
	var fails int
	for i := 0; i < 9; i++ {
		if _, err := f.Write([]byte("a")); errors.Is(err, ErrInjected) {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("injected failures = %d, want 3", fails)
	}
	fs.FailEveryNthWrite(0)
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("write after disabling injection failed: %v", err)
	}
}

func TestClosedFile(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	f.Close()
	if _, err := f.Write([]byte("a")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after close = %v, want ErrClosed", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadAt after close = %v, want ErrClosed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close = %v, want ErrClosed", err)
	}
}

func TestOSFS(t *testing.T) {
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("a.txt")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("data"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !fs.Exists("a.txt") {
		t.Fatal("Exists = false after create")
	}
	r, err := fs.Open("a.txt")
	if err != nil {
		t.Fatal(err)
	}
	size, err := r.Size()
	if err != nil || size != 4 {
		t.Fatalf("Size = %d, %v", size, err)
	}
	buf := make([]byte, 4)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "data" {
		t.Fatalf("read %q", buf)
	}
	r.Close()
	names, err := fs.List("a")
	if err != nil || len(names) != 1 {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := fs.Rename("a.txt", "b.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("b.txt"); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSConcurrent(t *testing.T) {
	fs := NewMemFS()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			name := string(rune('a' + g))
			f, err := fs.Create(name)
			if err != nil {
				done <- err
				return
			}
			for i := 0; i < 1000; i++ {
				if _, err := f.Write([]byte{byte(i)}); err != nil {
					done <- err
					return
				}
			}
			done <- f.Close()
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	names, _ := fs.List("")
	if len(names) != 8 {
		t.Fatalf("expected 8 files, got %d", len(names))
	}
}
