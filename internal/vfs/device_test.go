package vfs

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyModelChargesTime(t *testing.T) {
	fs := NewMemFS()
	fs.Latency = LatencyModel{PerOp: 2 * time.Millisecond}
	f, _ := fs.Create("x")
	start := time.Now()
	f.Write([]byte("data"))
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Fatalf("write took %v, want >= 2ms", el)
	}
}

func TestDeviceSerializesCharges(t *testing.T) {
	dev := &Device{}
	// 8 goroutines each occupy 5ms: a shared device must take ~40ms,
	// not ~5ms (which independent sleeps would allow).
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev.Occupy(5 * time.Millisecond)
		}()
	}
	wg.Wait()
	if el := time.Since(start); el < 35*time.Millisecond {
		t.Fatalf("8x5ms on one device took %v, want >= 35ms", el)
	}
}

func TestDeviceSmallChargesEnforceAggregateRate(t *testing.T) {
	dev := &Device{}
	// 1000 charges of 50µs = 50ms of device time, each individually
	// below the sleep granularity. The aggregate must still take ≈50ms.
	start := time.Now()
	for i := 0; i < 1000; i++ {
		dev.Occupy(50 * time.Microsecond)
	}
	el := time.Since(start)
	if el < 40*time.Millisecond {
		t.Fatalf("1000x50µs took %v, want ≈50ms", el)
	}
}

func TestDeviceIdleDoesNotAccumulate(t *testing.T) {
	dev := &Device{}
	dev.Occupy(time.Millisecond)
	time.Sleep(5 * time.Millisecond) // device drains
	start := time.Now()
	dev.Occupy(time.Millisecond)
	if el := time.Since(start); el > 4*time.Millisecond {
		t.Fatalf("idle device charged backlog: %v", el)
	}
}
