package client

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/resp"
)

// timeoutErr is a fake transient (timeout) network error.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "fake i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// flaky wraps a net.Conn and injects scripted failures: a partial write
// followed by errWrite, a zero-byte read failing with errRead, or a
// one-byte read failing with errReadMid (a reply torn mid-arrival).
type flaky struct {
	net.Conn
	mu         sync.Mutex
	errWrite   error // fail the next Write after sending half
	errRead    error // fail the next Read before any byte
	errReadMid error // fail the next Read after delivering one byte
}

func (f *flaky) Write(p []byte) (int, error) {
	f.mu.Lock()
	inject := f.errWrite
	f.errWrite = nil
	f.mu.Unlock()
	if inject != nil {
		n, err := f.Conn.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, inject
	}
	return f.Conn.Write(p)
}

func (f *flaky) Read(p []byte) (int, error) {
	f.mu.Lock()
	zero, mid := f.errRead, f.errReadMid
	f.errRead = nil
	if zero == nil {
		f.errReadMid = nil
	}
	f.mu.Unlock()
	if zero != nil {
		return 0, zero
	}
	if mid != nil {
		n, err := f.Conn.Read(p[:1])
		if err != nil {
			return n, err
		}
		return n, mid
	}
	return f.Conn.Read(p)
}

// scanContServer answers every received command with a one-pair SCAN
// reply carrying cursor id — enough protocol for the retry tests.
func scanContServer(t *testing.T, nc net.Conn, cursor string) {
	t.Helper()
	go func() {
		r := resp.NewReader(nc)
		w := resp.NewWriter(nc)
		for {
			if _, err := r.ReadCommand(); err != nil {
				return
			}
			w.WriteValue(resp.Array(
				resp.Bulk([]byte(cursor)),
				resp.Bulk([]byte("k1")), resp.Bulk([]byte("v1")),
			))
			if w.Flush() != nil {
				return
			}
		}
	}()
}

// TestScanContRetriesTransientFlush: a timeout partway through sending
// the SCAN CONT command is retried from the byte offset reached — the
// cursor is not abandoned and the connection stays healthy.
func TestScanContRetriesTransientFlush(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	f := &flaky{Conn: cli}
	c := NewConn(f)
	defer c.Close()
	scanContServer(t, srv, "c7")

	f.mu.Lock()
	f.errWrite = timeoutErr{}
	f.mu.Unlock()
	next, keys, vals, err := c.ScanCont("c7", 10)
	if err != nil {
		t.Fatalf("ScanCont with transient flush error = %v, want retried success", err)
	}
	if next != "c7" || len(keys) != 1 || string(keys[0]) != "k1" || string(vals[0]) != "v1" {
		t.Fatalf("ScanCont = %q, %q, %q", next, keys, vals)
	}
	if c.broken {
		t.Fatal("connection marked broken after successful retry")
	}
}

// TestScanContRetriesTransientReceive: a timeout while waiting for the
// reply (no byte arrived yet) is retried once.
func TestScanContRetriesTransientReceive(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	f := &flaky{Conn: cli}
	c := NewConn(f)
	defer c.Close()
	scanContServer(t, srv, "c7")

	f.mu.Lock()
	f.errRead = timeoutErr{}
	f.mu.Unlock()
	next, keys, _, err := c.ScanCont("c7", 10)
	if err != nil {
		t.Fatalf("ScanCont with transient receive error = %v, want retried success", err)
	}
	if next != "c7" || len(keys) != 1 {
		t.Fatalf("ScanCont = %q, %d keys", next, len(keys))
	}
	if c.broken {
		t.Fatal("connection marked broken after successful retry")
	}
}

// TestScanContNoRetryMidReply: a timeout after reply bytes started
// arriving must NOT be retried — the stream is desynchronized, and a
// blind second read would misparse from the middle of the torn reply.
func TestScanContNoRetryMidReply(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	f := &flaky{Conn: cli}
	c := NewConn(f)
	defer c.Close()
	scanContServer(t, srv, "c7")

	f.mu.Lock()
	f.errReadMid = timeoutErr{}
	f.mu.Unlock()
	_, _, _, err := c.ScanCont("c7", 10)
	var ne net.Error
	if err == nil || !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("ScanCont with mid-reply timeout = %v, want the timeout surfaced", err)
	}
	if !c.broken {
		t.Fatal("connection not marked broken after unretriable failure")
	}
}

// TestScanContNoRetryPermanent: a non-transient error fails immediately
// (no retry) and breaks the connection.
func TestScanContNoRetryPermanent(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	f := &flaky{Conn: cli}
	c := NewConn(f)
	defer c.Close()
	scanContServer(t, srv, "c7")

	boom := errors.New("connection reset by peer")
	f.mu.Lock()
	f.errRead = boom
	f.mu.Unlock()
	if _, _, _, err := c.ScanCont("c7", 10); !errors.Is(err, boom) {
		t.Fatalf("ScanCont with permanent error = %v, want %v", err, boom)
	}
	if !c.broken {
		t.Fatal("connection not marked broken after permanent failure")
	}
}

// TestScanContRetriesExpiredDeadline uses a real expired deadline — no
// fake error injection. Once a net.Conn deadline has passed, every I/O
// fails instantly with a timeout, so a naive retry loop could never
// succeed; the retry must re-arm the deadline first. The command bytes
// are written before the deadline expires (net.Pipe is synchronous, so
// an expired write deadline would never get them out), then the reply
// read times out for real and the retry must recover.
func TestScanContRetriesExpiredDeadline(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	c := NewConn(cli)
	defer c.Close()

	// A slow server: reads the command, then replies only after a
	// delay longer than the remaining deadline.
	go func() {
		r := resp.NewReader(srv)
		w := resp.NewWriter(srv)
		if _, err := r.ReadCommand(); err != nil {
			return
		}
		time.Sleep(100 * time.Millisecond)
		w.WriteValue(resp.Array(
			resp.Bulk([]byte("c9")),
			resp.Bulk([]byte("k1")), resp.Bulk([]byte("v1")),
		))
		w.Flush()
	}()

	if err := cli.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	next, keys, _, err := c.ScanCont("c9", 10)
	if err != nil {
		t.Fatalf("ScanCont across an expired deadline = %v, want re-armed retry success", err)
	}
	if next != "c9" || len(keys) != 1 {
		t.Fatalf("ScanCont = %q, %d keys", next, len(keys))
	}
	if c.broken {
		t.Fatal("connection marked broken after successful retry")
	}
}

// TestScanContStillTalksToRealServer guards the happy path: the retry
// plumbing speaks byte-identical protocol to the plain Do it replaced
// (the flaky wrapper idle, nothing injected).
func TestScanContStillTalksToRealServer(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	c := NewConn(cli)
	defer c.Close()
	scanContServer(t, srv, DoneCursor)

	done := make(chan struct{})
	go func() {
		defer close(done)
		next, keys, vals, err := c.ScanCont("c3", 5)
		if err != nil {
			t.Errorf("ScanCont: %v", err)
			return
		}
		if next != DoneCursor || len(keys) != 1 || string(vals[0]) != "v1" {
			t.Errorf("ScanCont = %q, %q, %q", next, keys, vals)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ScanCont hung")
	}
}
