package client_test

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/lsm"
	"repro/internal/server"
	"repro/internal/shard"
)

func startServer(t *testing.T) string {
	t.Helper()
	opts := lsm.TriadOptions(nil)
	opts.MemtableBytes = 256 << 10
	db, err := shard.Open(shard.Options{Shards: 2, Engine: opts, NewFS: shard.MemFS()})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
		if err := db.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return ln.Addr().String()
}

// TestPool: concurrent checkouts share a bounded idle set, broken
// connections are dropped, and the convenience wrappers work.
func TestPool(t *testing.T) {
	addr := startServer(t)
	p := client.NewPool(addr, 4)
	defer p.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := []byte(fmt.Sprintf("pool-w%d-%d", w, i))
				if err := p.Set(key, []byte("v")); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	v, found, err := p.GetKey([]byte("pool-w7-49"))
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("GetKey = %q, %v, %v", v, found, err)
	}
	if _, found, err = p.GetKey([]byte("absent")); err != nil || found {
		t.Fatalf("absent key: found=%v err=%v", found, err)
	}

	// A connection with outstanding replies must not re-enter the pool.
	c, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send("PING"); err != nil {
		t.Fatal(err)
	}
	p.Put(c) // inflight != 0: dropped, not pooled
	if _, err := p.Do("PING"); err != nil {
		t.Fatal(err)
	}

	p.Close()
	if _, err := p.Get(); err != client.ErrPoolClosed {
		t.Fatalf("Get after Close: %v", err)
	}
}

// TestDoRejectsMidPipeline: mixing Do into an unfinished pipeline is a
// client-side error, not silent reply skew.
func TestDoRejectsMidPipeline(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send("SET", []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("GET", []byte("a")); err == nil {
		t.Fatal("Do mid-pipeline should fail")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Receive(); err != nil {
		t.Fatal(err)
	}
	// Pipeline settled: Do works again.
	if _, err := c.Do("GET", []byte("a")); err != nil {
		t.Fatal(err)
	}
}

// TestServerErrorMapping: error replies surface as ServerError and the
// connection remains usable.
func TestServerErrorMapping(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Do("GET") // wrong arity
	se, ok := err.(client.ServerError)
	if !ok {
		t.Fatalf("got %T %v, want ServerError", err, err)
	}
	if se.Error() == "" {
		t.Fatal("empty error text")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection broken after server error: %v", err)
	}
}
