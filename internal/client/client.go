// Package client is the pooled, pipelining RESP client for triadserver,
// used by the tests, the benchmark harness and the examples.
//
// A Conn is one connection with two layers of API. The synchronous
// helpers (Get, Set, Del, MGet, MSet, Scan, ...) issue one command and
// wait for its reply. The pipelining primitives (Send / Flush / Receive)
// let a caller keep many commands in flight on one connection — the
// shape under which the server's group commit does its work:
//
//	for i := range keys {
//		c.Send("SET", keys[i], vals[i])
//	}
//	c.Flush()
//	for range keys {
//		if _, err := c.Receive(); err != nil { ... }
//	}
//
// A Pool holds idle connections for concurrent callers (checkout with
// Get, return with Put). A Conn is not safe for concurrent use; a Pool
// is.
package client

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/resp"
)

// ServerError is an error reply from the server (the RESP "-..." line).
type ServerError string

// Error implements error.
func (e ServerError) Error() string { return "server: " + string(e) }

// ErrPoolClosed is returned by Pool.Get after Close.
var ErrPoolClosed = errors.New("client: pool closed")

// Conn is one client connection. Not safe for concurrent use — use a
// Pool to share connections across goroutines.
type Conn struct {
	nc net.Conn
	cr *countingReader // wraps nc so retries can tell whether reply bytes arrived
	r  *resp.Reader
	w  *resp.Writer
	// inflight counts sent-but-unreceived commands, to catch misuse.
	inflight int
	broken   bool // protocol or I/O error: the stream can no longer be trusted
}

// countingReader counts the bytes pulled off the wire, so a failed
// reply read can prove no byte of the reply was consumed (making one
// retry safe — the stream is still in sync).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Dial connects to a triadserver at addr.
func Dial(addr string) (*Conn, error) {
	return DialTimeout(addr, 5*time.Second)
}

// DialTimeout connects with a dial timeout.
func DialTimeout(addr string, d time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	return NewConn(nc), nil
}

// NewConn wraps an established connection (tests use net.Pipe).
func NewConn(nc net.Conn) *Conn {
	cr := &countingReader{r: nc}
	return &Conn{nc: nc, cr: cr, r: resp.NewReader(cr), w: resp.NewWriter(nc)}
}

// Close closes the connection.
func (c *Conn) Close() error { return c.nc.Close() }

// Send queues one command into the write buffer without flushing.
func (c *Conn) Send(cmd string, args ...[]byte) error {
	full := make([][]byte, 0, len(args)+1)
	full = append(full, []byte(cmd))
	full = append(full, args...)
	if err := c.w.WriteCommand(full...); err != nil {
		c.broken = true
		return err
	}
	c.inflight++
	return nil
}

// Flush pushes queued commands to the server.
func (c *Conn) Flush() error {
	if err := c.w.Flush(); err != nil {
		c.broken = true
		return err
	}
	return nil
}

// Receive reads the next reply in pipeline order. Error replies are
// returned as ServerError; the connection stays usable after them.
func (c *Conn) Receive() (resp.Value, error) {
	v, err := c.r.ReadReply()
	if err != nil {
		c.broken = true
		return resp.Value{}, err
	}
	if c.inflight > 0 {
		c.inflight--
	}
	if v.IsError() {
		return v, ServerError(v.Str)
	}
	return v, nil
}

// Do issues one command synchronously: Send + Flush + Receive.
func (c *Conn) Do(cmd string, args ...[]byte) (resp.Value, error) {
	if c.inflight != 0 {
		return resp.Value{}, fmt.Errorf("client: Do with %d replies outstanding (finish the pipeline first)", c.inflight)
	}
	if err := c.Send(cmd, args...); err != nil {
		return resp.Value{}, err
	}
	if err := c.Flush(); err != nil {
		return resp.Value{}, err
	}
	return c.Receive()
}

// Get fetches key; found is false when the key is absent.
func (c *Conn) Get(key []byte) (value []byte, found bool, err error) {
	v, err := c.Do("GET", key)
	if err != nil {
		return nil, false, err
	}
	if v.Null {
		return nil, false, nil
	}
	return v.Str, true, nil
}

// Set stores value under key.
func (c *Conn) Set(key, value []byte) error {
	_, err := c.Do("SET", key, value)
	return err
}

// Del removes keys, returning the number of tombstones written.
func (c *Conn) Del(keys ...[]byte) (int64, error) {
	v, err := c.Do("DEL", keys...)
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// MGet fetches keys; absent keys yield nil entries.
func (c *Conn) MGet(keys ...[]byte) ([][]byte, error) {
	v, err := c.Do("MGET", keys...)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(v.Elems))
	for i, e := range v.Elems {
		if !e.Null {
			out[i] = e.Str
			if out[i] == nil {
				out[i] = []byte{}
			}
		}
	}
	return out, nil
}

// MSet stores the pairs (key1, val1, key2, val2, ...) atomically within
// each shard.
func (c *Conn) MSet(pairs ...[]byte) error {
	if len(pairs) == 0 || len(pairs)%2 != 0 {
		return errors.New("client: MSet needs key/value pairs")
	}
	_, err := c.Do("MSET", pairs...)
	return err
}

// DoneCursor is the cursor id the server returns when a scan is
// exhausted (no server-side state remains).
const DoneCursor = "0"

// parseScanReply splits a SCAN/SCAN CONT reply [cursor, k1, v1, ...].
func (c *Conn) parseScanReply(v resp.Value) (cursor string, keys, vals [][]byte, err error) {
	if len(v.Elems) == 0 || len(v.Elems)%2 != 1 {
		c.broken = true
		return "", nil, nil, errors.New("client: malformed SCAN reply")
	}
	cursor = string(v.Elems[0].Str)
	for i := 1; i+1 < len(v.Elems); i += 2 {
		keys = append(keys, v.Elems[i].Str)
		vals = append(vals, v.Elems[i+1].Str)
	}
	return cursor, keys, vals, nil
}

// ScanOpen starts a server-side scan of [start, limit) and returns the
// first page (up to count pairs; count <= 0 uses the server's page cap)
// plus the cursor to resume from. A cursor of DoneCursor means the scan
// is complete; any other cursor identifies a snapshot the server keeps
// pinned — page through it with ScanCont and release it with ScanClose
// (or let the server's idle TTL reap it). All pages of one cursor read
// the same frozen snapshot, so paging is repeatable under concurrent
// writes.
func (c *Conn) ScanOpen(start, limit []byte, count int) (cursor string, keys, vals [][]byte, err error) {
	args := [][]byte{emptyOK(start), emptyOK(limit)}
	if count > 0 {
		args = append(args, []byte(fmt.Sprint(count)))
	}
	v, err := c.Do("SCAN", args...)
	if err != nil {
		return "", nil, nil, err
	}
	return c.parseScanReply(v)
}

// ScanCont fetches the next page of an open cursor. The returned cursor
// is DoneCursor once the scan is exhausted (the server has already
// released it).
//
// Unlike the other helpers, ScanCont retries its Flush and Receive once
// on a transient connection error (a timeout): abandoning a ScanCont
// midway strands the server-side cursor — and the snapshot it pins —
// until the idle TTL reaps it, so one retry is worth the wire cost. The
// retry never desynchronizes the pipeline: a failed command write
// resumes from the exact byte offset already sent, and a failed reply
// read is retried only when provably no reply byte had been consumed.
func (c *Conn) ScanCont(cursor string, count int) (next string, keys, vals [][]byte, err error) {
	args := [][]byte{[]byte("SCAN"), []byte("CONT"), []byte(cursor)}
	if count > 0 {
		args = append(args, []byte(fmt.Sprint(count)))
	}
	v, err := c.doRetryOnce(args)
	if err != nil {
		return "", nil, nil, err
	}
	return c.parseScanReply(v)
}

// isTransient reports whether err is a transient connection error — a
// timeout — after which the connection may still be intact.
func isTransient(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// retryGrace is the deadline extension granted to a ScanCont retry. A
// timeout usually means the caller's deadline on the net.Conn has
// already passed, and an expired deadline fails every subsequent I/O
// instantly — so without re-arming it, a retry could never succeed.
const retryGrace = 2 * time.Second

// rearm pushes the expired deadline forward by retryGrace so the retry
// gets a real chance. Callers that manage deadlines set them per
// operation, so granting one bounded grace window here does not disturb
// their discipline; connections with no deadline support ignore the
// error.
func (c *Conn) rearm() {
	_ = c.nc.SetDeadline(time.Now().Add(retryGrace))
}

// doRetryOnce issues one command like Do, but retries the flush and the
// receive once each on a transient error. The command is encoded into a
// standalone buffer and written directly to the connection: unlike a
// buffered-writer Flush (whose error is sticky), a plain write can
// resume from the offset it reached, so the retry cannot duplicate or
// tear the command on the wire.
func (c *Conn) doRetryOnce(args [][]byte) (resp.Value, error) {
	if c.inflight != 0 {
		return resp.Value{}, fmt.Errorf("client: command with %d replies outstanding (finish the pipeline first)", c.inflight)
	}
	var buf bytes.Buffer
	bw := resp.NewWriter(&buf)
	bw.WriteCommand(args...)
	if err := bw.Flush(); err != nil { // unreachable on a bytes.Buffer
		return resp.Value{}, err
	}
	data := buf.Bytes()
	for sent, attempt := 0, 0; sent < len(data); attempt++ {
		n, err := c.nc.Write(data[sent:])
		sent += n
		if err != nil {
			if attempt == 0 && isTransient(err) {
				c.rearm()
				continue
			}
			c.broken = true
			return resp.Value{}, err
		}
	}
	for attempt := 0; ; attempt++ {
		pulled := c.cr.n
		buffered := c.r.Buffered()
		v, err := c.r.ReadReply()
		if err == nil {
			if v.IsError() {
				return v, ServerError(v.Str)
			}
			return v, nil
		}
		// Safe to retry only when the reply hadn't started arriving: no
		// byte was buffered before the read and none was pulled off the
		// wire during it — the failed read consumed nothing.
		if attempt == 0 && isTransient(err) && buffered == 0 && c.cr.n == pulled {
			c.rearm()
			continue
		}
		c.broken = true
		return resp.Value{}, err
	}
}

// ScanClose releases an open cursor and its pinned snapshot.
func (c *Conn) ScanClose(cursor string) error {
	_, err := c.Do("SCAN", []byte("CLOSE"), []byte(cursor))
	return err
}

// Scan returns up to count key/value pairs of [start, limit) in key
// order (count <= 0 uses the server's cap), closing the server-side
// cursor if the page did not exhaust the range. Use ScanAll to page
// through a whole range on one pinned snapshot.
func (c *Conn) Scan(start, limit []byte, count int) (keys, vals [][]byte, err error) {
	cursor, keys, vals, err := c.ScanOpen(start, limit, count)
	if err != nil {
		return nil, nil, err
	}
	if cursor != DoneCursor {
		// Best effort: the page is already in hand, and a close failure
		// usually means the server reaped the cursor first — the state
		// Scan wanted anyway. A transport error will surface on the
		// connection's next use.
		_ = c.ScanClose(cursor)
	}
	return keys, vals, nil
}

// ScanAll pages through [start, limit) until exhaustion. The whole scan
// reads one pinned server-side snapshot, so the result is a consistent
// point-in-time view even while writes land concurrently; termination
// is the server's DoneCursor, which also means nothing is left to
// clean up.
func (c *Conn) ScanAll(start, limit []byte) (keys, vals [][]byte, err error) {
	const page = 1024
	cursor, keys, vals, err := c.ScanOpen(start, limit, page)
	if err != nil {
		return nil, nil, err
	}
	for cursor != DoneCursor {
		next, ks, vs, err := c.ScanCont(cursor, page)
		if err != nil {
			// Best-effort release so a failed scan does not pin the
			// server-side snapshot until the TTL, nor burn the
			// connection's cursor budget.
			_ = c.ScanClose(cursor)
			return nil, nil, err
		}
		cursor = next
		keys = append(keys, ks...)
		vals = append(vals, vs...)
	}
	return keys, vals, nil
}

// TraceRecent fetches up to n retained trace summaries (n <= 0: all),
// newest first — one line per trace, as rendered by TRACE RECENT. An
// empty slice means the server is not tracing (-trace-sample 0) or
// nothing has been sampled yet.
func (c *Conn) TraceRecent(n int) ([]string, error) {
	args := [][]byte{[]byte("RECENT")}
	if n > 0 {
		args = append(args, []byte(fmt.Sprint(n)))
	}
	v, err := c.Do("TRACE", args...)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(v.Elems))
	for _, e := range v.Elems {
		out = append(out, string(e.Str))
	}
	return out, nil
}

// TraceGet fetches one trace's full span breakdown by id (the #N number
// in TRACE RECENT and slowlog lines; a leading '#' is accepted). found
// is false when the ring has already overwritten the trace.
func (c *Conn) TraceGet(id uint64) (rendered string, found bool, err error) {
	v, err := c.Do("TRACE", []byte("GET"), []byte(fmt.Sprint(id)))
	if err != nil {
		return "", false, err
	}
	if v.Null {
		return "", false, nil
	}
	return string(v.Str), true, nil
}

// Stats fetches the server's STATS dump.
func (c *Conn) Stats() (string, error) {
	v, err := c.Do("STATS")
	if err != nil {
		return "", err
	}
	return string(v.Str), nil
}

// Ping round-trips a PING.
func (c *Conn) Ping() error {
	v, err := c.Do("PING")
	if err != nil {
		return err
	}
	if string(v.Str) != "PONG" {
		return fmt.Errorf("client: unexpected PING reply %q", v.Str)
	}
	return nil
}

// FlushStore asks the server to flush memtables to disk (the FLUSH
// command; named to avoid colliding with the pipeline Flush).
func (c *Conn) FlushStore() error {
	_, err := c.Do("FLUSH")
	return err
}

// Quit sends QUIT and closes the connection.
func (c *Conn) Quit() error {
	_, err := c.Do("QUIT")
	c.nc.Close()
	return err
}

// emptyOK encodes a possibly-nil bound as an argument (the server reads
// an empty argument as an unbounded side).
func emptyOK(b []byte) []byte {
	if b == nil {
		return []byte{}
	}
	return b
}

// Pool is a fixed-target pool of connections to one server. Get returns
// an idle connection or dials a new one; Put returns it (broken
// connections are dropped and redialed on demand). Safe for concurrent
// use.
type Pool struct {
	addr string
	size int

	mu     sync.Mutex
	idle   []*Conn
	closed bool
}

// NewPool returns a pool keeping up to size idle connections to addr.
func NewPool(addr string, size int) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{addr: addr, size: size}
}

// Get checks out a connection (dialing if no idle one is available).
func (p *Pool) Get() (*Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	return Dial(p.addr)
}

// Put returns a connection to the pool. Broken connections (failed I/O,
// desynchronized pipeline) and overflow beyond the pool size are closed.
func (p *Pool) Put(c *Conn) {
	if c == nil {
		return
	}
	if c.broken || c.inflight != 0 {
		c.Close()
		return
	}
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.size {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// Close closes all idle connections; checked-out connections are closed
// as they are Put back.
func (p *Pool) Close() error {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
	return nil
}

// Do checks out a connection, runs one command, and returns it.
func (p *Pool) Do(cmd string, args ...[]byte) (resp.Value, error) {
	c, err := p.Get()
	if err != nil {
		return resp.Value{}, err
	}
	v, err := c.Do(cmd, args...)
	p.Put(c)
	return v, err
}

// Set stores value under key via a pooled connection.
func (p *Pool) Set(key, value []byte) error {
	_, err := p.Do("SET", key, value)
	return err
}

// Get fetches key via a pooled connection.
func (p *Pool) GetKey(key []byte) (value []byte, found bool, err error) {
	v, err := p.Do("GET", key)
	if err != nil {
		return nil, false, err
	}
	if v.Null {
		return nil, false, nil
	}
	return v.Str, true, nil
}
