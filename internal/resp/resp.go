// Package resp implements the subset of the RESP2 wire protocol
// (REdis Serialization Protocol, version 2) that triadserver speaks:
// clients send commands as arrays of bulk strings (or space-separated
// inline lines, the telnet convenience), servers answer with simple
// strings, errors, integers, bulk strings and arrays.
//
// The codec is written for untrusted input: every length is bounded
// before allocation, every line is bounded before buffering, recursion
// depth is capped, and malformed bytes produce a *ProtocolError — never
// a panic. Truncated streams surface the underlying io error
// (io.EOF / io.ErrUnexpectedEOF), which is how a server tells "client
// hung up" apart from "client spoke garbage".
package resp

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// Wire limits. Inputs declaring anything larger are rejected before any
// allocation happens, so a hostile client cannot make the server reserve
// memory it will never send.
const (
	// MaxBulkLen bounds one bulk string (a key, value or dump).
	MaxBulkLen = 16 << 20
	// MaxArrayLen bounds one array (command arity or reply elements).
	MaxArrayLen = 1 << 20
	// MaxCommandBytes bounds one whole command's declared payload (the
	// sum of its bulk lengths): per-element limits alone would still let
	// a hostile client buffer MaxArrayLen × MaxBulkLen in the server.
	MaxCommandBytes = 64 << 20
	// MaxInlineLen bounds one inline command line.
	MaxInlineLen = 64 << 10
	// maxReplyDepth bounds reply nesting; our replies nest one level.
	maxReplyDepth = 8
	// maxIntLine bounds the digits of a length/integer line.
	maxIntLine = 32
)

// ProtocolError reports malformed wire data. A server should answer it
// with an error reply and close the connection, as redis does.
type ProtocolError struct{ Reason string }

// Error implements error.
func (e *ProtocolError) Error() string { return "resp: protocol error: " + e.Reason }

func protoErrf(format string, args ...any) error {
	return &ProtocolError{Reason: fmt.Sprintf(format, args...)}
}

// Type tags a reply Value with its RESP2 type byte.
type Type byte

// The five RESP2 reply types.
const (
	TypeSimple Type = '+'
	TypeError  Type = '-'
	TypeInt    Type = ':'
	TypeBulk   Type = '$'
	TypeArray  Type = '*'
)

// Value is one decoded reply. Exactly one of the payload fields is
// meaningful for each Type; Null marks the RESP2 null bulk ($-1) and
// null array (*-1).
type Value struct {
	Type  Type
	Str   []byte // Simple, Error and Bulk payload
	Int   int64  // Int payload
	Null  bool   // null bulk / null array
	Elems []Value
}

// Simple returns a simple-string value (e.g. "OK").
func Simple(s string) Value { return Value{Type: TypeSimple, Str: []byte(s)} }

// Error returns an error value (e.g. "ERR unknown command").
func Error(s string) Value { return Value{Type: TypeError, Str: []byte(s)} }

// Int returns an integer value.
func Int(n int64) Value { return Value{Type: TypeInt, Int: n} }

// Bulk returns a bulk-string value; Bulk(nil) is the empty bulk, not the
// null bulk — use NullBulk for "no such key".
func Bulk(b []byte) Value { return Value{Type: TypeBulk, Str: b} }

// NullBulk returns the RESP2 null bulk string ($-1), the "absent" reply.
func NullBulk() Value { return Value{Type: TypeBulk, Null: true} }

// Array returns an array value over elems.
func Array(elems ...Value) Value { return Value{Type: TypeArray, Elems: elems} }

// IsError reports whether v is an error reply.
func (v Value) IsError() bool { return v.Type == TypeError }

// Text renders the payload as a string (Simple/Error/Bulk types).
func (v Value) Text() string { return string(v.Str) }

// Reader decodes commands (server side) and replies (client side) from a
// byte stream. Not safe for concurrent use.
type Reader struct {
	br *bufio.Reader
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 32<<10)}
}

// Buffered reports the bytes read from the stream but not yet consumed
// by decoding. A client deciding whether a failed read left the stream
// in sync (nothing partially consumed) checks it alongside its own
// count of bytes pulled off the wire.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// readLine reads one CRLF-terminated line of at most max payload bytes
// and returns the payload (a fresh slice, CRLF stripped). When lenient,
// a bare LF terminator is accepted (inline commands, telnet clients).
func (r *Reader) readLine(max int, lenient bool) ([]byte, error) {
	var buf []byte
	for {
		frag, err := r.br.ReadSlice('\n')
		// frag aliases the bufio buffer; append copies it out before the
		// next read can clobber it.
		buf = append(buf, frag...)
		if err == bufio.ErrBufferFull {
			if len(buf) > max+2 {
				return nil, protoErrf("line exceeds %d bytes", max)
			}
			continue
		}
		if err != nil {
			if err == io.EOF && len(buf) > 0 {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
		break
	}
	if len(buf) > max+2 {
		return nil, protoErrf("line exceeds %d bytes", max)
	}
	buf = buf[:len(buf)-1] // strip LF
	if len(buf) > 0 && buf[len(buf)-1] == '\r' {
		return buf[:len(buf)-1], nil
	}
	if lenient {
		return buf, nil
	}
	return nil, protoErrf("expected CRLF line terminator")
}

// readInt reads the remainder of a length/integer line.
func (r *Reader) readInt() (int64, error) {
	line, err := r.readLine(maxIntLine, false)
	if err != nil {
		return 0, err
	}
	if len(line) == 0 {
		return 0, protoErrf("empty integer")
	}
	n, err := strconv.ParseInt(string(line), 10, 64)
	if err != nil {
		return 0, protoErrf("bad integer %q", line)
	}
	return n, nil
}

// ReadCommand reads one client command: either a RESP array of bulk
// strings or an inline (space-separated) line. Empty arrays and blank
// inline lines are skipped, per redis. The returned slices are freshly
// allocated and owned by the caller.
func (r *Reader) ReadCommand() ([][]byte, error) {
	for {
		b, err := r.br.ReadByte()
		if err != nil {
			return nil, err
		}
		if b != '*' {
			if err := r.br.UnreadByte(); err != nil {
				return nil, err
			}
			line, err := r.readLine(MaxInlineLen, true)
			if err != nil {
				return nil, err
			}
			fields := bytes.Fields(line)
			if len(fields) == 0 {
				continue
			}
			return fields, nil
		}
		n, err := r.readInt()
		if err != nil {
			return nil, err
		}
		if n < 0 || n > MaxArrayLen {
			return nil, protoErrf("invalid multibulk length %d", n)
		}
		if n == 0 {
			continue
		}
		// Cap the headroom allocation: the declared arity is untrusted
		// until the elements actually arrive.
		args := make([][]byte, 0, min(n, 1024))
		var total int64
		for i := int64(0); i < n; i++ {
			arg, err := r.readBulk()
			if err != nil {
				return nil, err
			}
			if total += int64(len(arg)); total > MaxCommandBytes {
				return nil, protoErrf("command exceeds %d payload bytes", MaxCommandBytes)
			}
			args = append(args, arg)
		}
		return args, nil
	}
}

// readBulk reads one $-prefixed bulk string (null bulks are not valid
// inside commands).
func (r *Reader) readBulk() ([]byte, error) {
	b, err := r.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if b != '$' {
		return nil, protoErrf("expected bulk string ('$'), got %q", b)
	}
	n, err := r.readInt()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > MaxBulkLen {
		return nil, protoErrf("invalid bulk length %d", n)
	}
	return r.readBulkBody(n)
}

// readBulkBody reads n payload bytes plus the trailing CRLF.
func (r *Reader) readBulkBody(n int64) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	var crlf [2]byte
	if _, err := io.ReadFull(r.br, crlf[:]); err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crlf[0] != '\r' || crlf[1] != '\n' {
		return nil, protoErrf("bulk string not CRLF-terminated")
	}
	return buf, nil
}

// ReadReply reads one server reply (client side).
func (r *Reader) ReadReply() (Value, error) {
	return r.readValue(0)
}

func (r *Reader) readValue(depth int) (Value, error) {
	if depth > maxReplyDepth {
		return Value{}, protoErrf("reply nesting exceeds %d", maxReplyDepth)
	}
	b, err := r.br.ReadByte()
	if err != nil {
		return Value{}, err
	}
	switch Type(b) {
	case TypeSimple, TypeError:
		line, err := r.readLine(MaxInlineLen, false)
		if err != nil {
			return Value{}, err
		}
		return Value{Type: Type(b), Str: line}, nil
	case TypeInt:
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		return Value{Type: TypeInt, Int: n}, nil
	case TypeBulk:
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		if n == -1 {
			return NullBulk(), nil
		}
		if n < 0 || n > MaxBulkLen {
			return Value{}, protoErrf("invalid bulk length %d", n)
		}
		body, err := r.readBulkBody(n)
		if err != nil {
			return Value{}, err
		}
		return Value{Type: TypeBulk, Str: body}, nil
	case TypeArray:
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		if n == -1 {
			return Value{Type: TypeArray, Null: true}, nil
		}
		if n < 0 || n > MaxArrayLen {
			return Value{}, protoErrf("invalid array length %d", n)
		}
		elems := make([]Value, 0, min(n, 1024))
		for i := int64(0); i < n; i++ {
			e, err := r.readValue(depth + 1)
			if err != nil {
				return Value{}, err
			}
			elems = append(elems, e)
		}
		return Value{Type: TypeArray, Elems: elems}, nil
	default:
		return Value{}, protoErrf("unknown reply type %q", b)
	}
}

// Writer encodes commands and replies onto a buffered stream. Callers
// must Flush to push buffered bytes to the connection. Not safe for
// concurrent use.
type Writer struct {
	bw  *bufio.Writer
	err error // first write error; subsequent writes are no-ops
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 32<<10)}
}

// Err reports the first write error, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) setErr(err error) {
	if w.err == nil && err != nil {
		w.err = err
	}
}

// Flush pushes buffered bytes to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.setErr(w.bw.Flush())
	return w.err
}

// WriteCommand encodes one command as an array of bulk strings
// (client side).
func (w *Writer) WriteCommand(args ...[]byte) error {
	w.writeHeader('*', int64(len(args)))
	for _, a := range args {
		w.writeBulkBytes(a)
	}
	return w.err
}

func (w *Writer) writeHeader(t byte, n int64) {
	if w.err != nil {
		return
	}
	var buf [maxIntLine]byte
	w.setErr(w.bw.WriteByte(t))
	b := strconv.AppendInt(buf[:0], n, 10)
	_, err := w.bw.Write(b)
	w.setErr(err)
	w.crlf()
}

func (w *Writer) crlf() {
	if w.err != nil {
		return
	}
	_, err := w.bw.WriteString("\r\n")
	w.setErr(err)
}

func (w *Writer) writeBulkBytes(b []byte) {
	w.writeHeader('$', int64(len(b)))
	if w.err != nil {
		return
	}
	_, err := w.bw.Write(b)
	w.setErr(err)
	w.crlf()
}

// writeLine writes one line-framed payload, replacing CR/LF bytes with
// spaces so a hostile payload cannot desynchronize the framing.
func (w *Writer) writeLine(t byte, s []byte) {
	if w.err != nil {
		return
	}
	w.setErr(w.bw.WriteByte(t))
	for _, c := range s {
		if c == '\r' || c == '\n' {
			c = ' '
		}
		if w.err == nil {
			w.setErr(w.bw.WriteByte(c))
		}
	}
	w.crlf()
}

// WriteSimple writes a simple-string reply (+s).
func (w *Writer) WriteSimple(s string) error {
	w.writeLine('+', []byte(s))
	return w.err
}

// WriteError writes an error reply (-s).
func (w *Writer) WriteError(s string) error {
	w.writeLine('-', []byte(s))
	return w.err
}

// WriteInt writes an integer reply (:n).
func (w *Writer) WriteInt(n int64) error {
	w.writeHeader(':', n)
	return w.err
}

// WriteBulk writes a bulk-string reply.
func (w *Writer) WriteBulk(b []byte) error {
	w.writeBulkBytes(b)
	return w.err
}

// WriteNullBulk writes the null bulk reply ($-1).
func (w *Writer) WriteNullBulk() error {
	w.writeHeader('$', -1)
	return w.err
}

// WriteArrayHeader writes an array header (*n); the caller then writes
// the n elements.
func (w *Writer) WriteArrayHeader(n int) error {
	w.writeHeader('*', int64(n))
	return w.err
}

// WriteValue encodes an arbitrary reply value.
func (w *Writer) WriteValue(v Value) error {
	switch v.Type {
	case TypeSimple:
		w.writeLine('+', v.Str)
	case TypeError:
		w.writeLine('-', v.Str)
	case TypeInt:
		w.writeHeader(':', v.Int)
	case TypeBulk:
		if v.Null {
			w.writeHeader('$', -1)
		} else {
			w.writeBulkBytes(v.Str)
		}
	case TypeArray:
		if v.Null {
			w.writeHeader('*', -1)
		} else {
			w.writeHeader('*', int64(len(v.Elems)))
			for _, e := range v.Elems {
				if err := w.WriteValue(e); err != nil {
					return err
				}
			}
		}
	default:
		w.setErr(protoErrf("cannot encode value type %q", byte(v.Type)))
	}
	return w.err
}
