package resp

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// encodeCommand renders args the way Writer.WriteCommand does and
// returns the bytes.
func encodeCommand(t *testing.T, args ...[]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteCommand(args...); err != nil {
		t.Fatalf("WriteCommand: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

// TestCommandRoundTrip encodes every server command shape and decodes it
// back, byte for byte.
func TestCommandRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{[]byte("PING")},
		{[]byte("GET"), []byte("key")},
		{[]byte("SET"), []byte("key"), []byte("value")},
		{[]byte("SET"), []byte("k"), {}}, // empty value
		{[]byte("DEL"), []byte("a"), []byte("b"), []byte("c")},
		{[]byte("MGET"), []byte("a"), []byte("b")},
		{[]byte("MSET"), []byte("a"), []byte("1"), []byte("b"), []byte("2")},
		{[]byte("SCAN"), []byte("a"), []byte("z"), []byte("10")},
		{[]byte("STATS")},
		{[]byte("FLUSH")},
		{[]byte("QUIT")},
		{[]byte("SET"), []byte("bin\x00\r\nkey"), []byte{0, 1, 2, 255}}, // binary-safe
	}
	for _, args := range cases {
		enc := encodeCommand(t, args...)
		got, err := NewReader(bytes.NewReader(enc)).ReadCommand()
		if err != nil {
			t.Fatalf("ReadCommand(%q): %v", enc, err)
		}
		if len(got) != len(args) {
			t.Fatalf("ReadCommand(%q): got %d args, want %d", enc, len(got), len(args))
		}
		for i := range args {
			if !bytes.Equal(got[i], args[i]) {
				t.Fatalf("arg %d: got %q, want %q", i, got[i], args[i])
			}
		}
	}
}

// TestInlineCommands covers the telnet-style framing.
func TestInlineCommands(t *testing.T) {
	r := NewReader(strings.NewReader("PING\r\n  GET  foo \nSET a b\r\n\r\n   \nQUIT\r\n"))
	want := [][]string{{"PING"}, {"GET", "foo"}, {"SET", "a", "b"}, {"QUIT"}}
	for _, w := range want {
		got, err := r.ReadCommand()
		if err != nil {
			t.Fatalf("ReadCommand: %v", err)
		}
		if len(got) != len(w) {
			t.Fatalf("got %d fields, want %v", len(got), w)
		}
		for i := range w {
			if string(got[i]) != w[i] {
				t.Fatalf("field %d: got %q, want %q", i, got[i], w[i])
			}
		}
	}
	if _, err := r.ReadCommand(); err != io.EOF {
		t.Fatalf("at end: got %v, want io.EOF", err)
	}
}

// TestReplyRoundTrip encodes every reply type and decodes it back.
func TestReplyRoundTrip(t *testing.T) {
	vals := []Value{
		Simple("OK"),
		Simple("PONG"),
		Error("ERR unknown command 'FOO'"),
		Int(0),
		Int(-42),
		Int(1 << 40),
		Bulk(nil),
		Bulk([]byte("hello")),
		Bulk([]byte{0, '\r', '\n', 255}),
		NullBulk(),
		Array(),
		{Type: TypeArray, Null: true},
		Array(Bulk([]byte("a")), NullBulk(), Int(7), Simple("x")),
		Array(Array(Bulk([]byte("nested"))), Int(1)),
	}
	for _, v := range vals {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteValue(v); err != nil {
			t.Fatalf("WriteValue(%+v): %v", v, err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := NewReader(bytes.NewReader(buf.Bytes())).ReadReply()
		if err != nil {
			t.Fatalf("ReadReply(%q): %v", buf.Bytes(), err)
		}
		assertValueEqual(t, got, v)
	}
}

func assertValueEqual(t *testing.T, got, want Value) {
	t.Helper()
	if got.Type != want.Type || got.Null != want.Null || got.Int != want.Int {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if !bytes.Equal(got.Str, want.Str) {
		t.Fatalf("payload: got %q, want %q", got.Str, want.Str)
	}
	if len(got.Elems) != len(want.Elems) {
		t.Fatalf("elems: got %d, want %d", len(got.Elems), len(want.Elems))
	}
	for i := range want.Elems {
		assertValueEqual(t, got.Elems[i], want.Elems[i])
	}
}

// TestWriterHelpers checks the dedicated reply writers against exact
// wire bytes.
func TestWriterHelpers(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteSimple("OK")
	w.WriteError("ERR nope")
	w.WriteInt(12)
	w.WriteBulk([]byte("hi"))
	w.WriteNullBulk()
	w.WriteArrayHeader(1)
	w.WriteBulk(nil)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "+OK\r\n-ERR nope\r\n:12\r\n$2\r\nhi\r\n$-1\r\n*1\r\n$0\r\n\r\n"
	if buf.String() != want {
		t.Fatalf("wire bytes:\n got %q\nwant %q", buf.String(), want)
	}
}

// TestWriterSanitizesLineReplies: CR/LF inside simple/error payloads
// must not desynchronize the framing.
func TestWriterSanitizesLineReplies(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteError("ERR bad\r\nkey")
	w.Flush()
	if got, want := buf.String(), "-ERR bad  key\r\n"; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

// TestMalformedInputs feeds hostile byte streams; each must produce an
// error (never a panic, never a bogus success).
func TestMalformedInputs(t *testing.T) {
	cases := []string{
		"*-2\r\n",                      // negative multibulk
		"*1\r\n:5\r\n",                 // non-bulk inside command
		"*1\r\n$-1\r\n",                // null bulk inside command
		"*1\r\n$5\r\nab\r\n",           // short bulk body
		"*1\r\n$2\r\nabcd",             // bulk not CRLF-terminated
		"*1\r\n$2\r\nab!!",             // wrong terminator
		"*abc\r\n",                     // non-numeric length
		"*1\r\n$99999999999999999\r\n", // absurd bulk length
		"*99999999999\r\n",             // absurd arity
		"*1\n$1\na\n",                  // LF-only protocol lines
		"*2\r\n$1\r\na\r\n",            // truncated arity
		"*1\r\n",                       // missing element
		"*\r\n",                        // empty length
	}
	for _, in := range cases {
		_, err := NewReader(strings.NewReader(in)).ReadCommand()
		if err == nil {
			t.Fatalf("ReadCommand(%q): expected error", in)
		}
	}
	replies := []string{
		"?ok\r\n",  // unknown type byte
		":\r\n",    // empty integer
		":12a\r\n", // trailing garbage
		"$-2\r\n",  // invalid negative bulk
		"*-2\r\n",  // invalid negative array
		"+ok",      // no terminator
		"*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n:1\r\n", // too deep
	}
	for _, in := range replies {
		_, err := NewReader(strings.NewReader(in)).ReadReply()
		if err == nil {
			t.Fatalf("ReadReply(%q): expected error", in)
		}
	}
}

// TestCommandAggregateCap: per-element limits are not enough — the sum
// of a command's bulk payloads is capped too, so one command cannot
// buffer arbitrarily much before dispatch.
func TestCommandAggregateCap(t *testing.T) {
	chunk := bytes.Repeat([]byte("x"), MaxBulkLen)
	elem := append([]byte(fmt.Sprintf("$%d\r\n", MaxBulkLen)), append(chunk, '\r', '\n')...)
	n := MaxCommandBytes/MaxBulkLen + 1
	readers := []io.Reader{strings.NewReader(fmt.Sprintf("*%d\r\n", n))}
	for i := 0; i < n; i++ {
		readers = append(readers, bytes.NewReader(elem))
	}
	_, err := NewReader(io.MultiReader(readers...)).ReadCommand()
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("oversized command: got %v, want protocol error", err)
	}
	if !strings.Contains(pe.Reason, "payload bytes") {
		t.Fatalf("unexpected reason %q", pe.Reason)
	}
}

// TestTruncationNeverPanics is the property test the fuzzers extend:
// every prefix of a valid conversation either decodes or errors cleanly.
func TestTruncationNeverPanics(t *testing.T) {
	full := encodeCommand(t, []byte("MSET"), []byte("key-one"), []byte("val"), []byte("key-two"), bytes.Repeat([]byte("v"), 300))
	for i := 0; i < len(full); i++ {
		if _, err := NewReader(bytes.NewReader(full[:i])).ReadCommand(); err == nil {
			t.Fatalf("prefix %d of %d decoded successfully", i, len(full))
		}
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteValue(Array(Bulk([]byte("k")), NullBulk(), Int(3), Error("ERR x")))
	w.Flush()
	enc := buf.Bytes()
	for i := 0; i < len(enc); i++ {
		if _, err := NewReader(bytes.NewReader(enc[:i])).ReadReply(); err == nil {
			t.Fatalf("reply prefix %d of %d decoded successfully", i, len(enc))
		}
	}
}

// TestTruncationErrorKinds: a clean cut at a message boundary is io.EOF;
// a cut inside a message is io.ErrUnexpectedEOF or a protocol error —
// servers rely on the distinction for logging.
func TestTruncationErrorKinds(t *testing.T) {
	if _, err := NewReader(strings.NewReader("")).ReadCommand(); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
	_, err := NewReader(strings.NewReader("*2\r\n$3\r\nGET\r\n")).ReadCommand()
	var pe *ProtocolError
	if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.As(err, &pe) {
		t.Fatalf("mid-command cut: got %v", err)
	}
}

// FuzzReadCommand asserts the command decoder never panics and never
// allocates unbounded memory on arbitrary input.
func FuzzReadCommand(f *testing.F) {
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"))
	f.Add([]byte("PING\r\n"))
	f.Add([]byte("*1\r\n$1000000000\r\nx\r\n"))
	f.Add([]byte("*-1\r\n"))
	f.Add([]byte{'*', 0xff, '\r', '\n'})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ { // bounded: a stream may hold many commands
			if _, err := r.ReadCommand(); err != nil {
				return
			}
		}
	})
}

// FuzzReadReply asserts the reply decoder never panics on arbitrary
// input.
func FuzzReadReply(f *testing.F) {
	f.Add([]byte("+OK\r\n"))
	f.Add([]byte("$-1\r\n"))
	f.Add([]byte("*2\r\n$1\r\na\r\n:4\r\n"))
	f.Add([]byte("*1000000000\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			if _, err := r.ReadReply(); err != nil {
				return
			}
		}
	})
}

// FuzzRoundTrip: any command the writer encodes, the reader must decode
// identically.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("GET"), []byte("key"), []byte("value"))
	f.Add([]byte{}, []byte{0, 1}, []byte("\r\n"))
	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		args := [][]byte{a, b, c}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteCommand(args...); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		got, err := NewReader(bytes.NewReader(buf.Bytes())).ReadCommand()
		if err != nil {
			t.Fatalf("decode %q: %v", buf.Bytes(), err)
		}
		if len(got) != len(args) {
			t.Fatalf("got %d args, want %d", len(got), len(args))
		}
		for i := range args {
			if !bytes.Equal(got[i], args[i]) {
				t.Fatalf("arg %d: got %q, want %q", i, got[i], args[i])
			}
		}
	})
}
