package histogram

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEmpty(t *testing.T) {
	var h H
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	if h.String() != "histogram: empty" {
		t.Fatalf("String = %q", h.String())
	}
}

func TestSingleValue(t *testing.T) {
	var h H
	h.Record(42 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatal("count")
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got != 42*time.Microsecond {
			// Bucketing error is bounded by min/max clamping.
			t.Fatalf("Quantile(%v) = %v", q, got)
		}
	}
}

func TestQuantileAccuracy(t *testing.T) {
	var h H
	rng := rand.New(rand.NewSource(1))
	var exact []time.Duration
	for i := 0; i < 100000; i++ {
		// Log-uniform from 100ns to 100ms — a latency-like shape.
		d := time.Duration(math.Exp(rng.Float64()*math.Log(1e6)) * 100)
		h.Record(d)
		exact = append(exact, d)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := exact[int(q*float64(len(exact)))]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got-want)) / float64(want)
		if relErr > 0.05 {
			t.Errorf("q=%v: got %v, exact %v (err %.3f)", q, got, want, relErr)
		}
	}
}

func TestMinMax(t *testing.T) {
	var h H
	h.Record(5 * time.Millisecond)
	h.Record(time.Microsecond)
	h.Record(time.Second)
	if h.Min() != time.Microsecond || h.Max() != time.Second {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Quantile(0) != time.Microsecond || h.Quantile(1) != time.Second {
		t.Fatal("extreme quantiles not clamped to observed extremes")
	}
}

func TestMerge(t *testing.T) {
	var a, b H
	for i := 1; i <= 1000; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
	}
	for i := 1001; i <= 2000; i++ {
		b.Record(time.Duration(i) * time.Microsecond)
	}
	a.Merge(&b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	p50 := a.Quantile(0.5)
	if p50 < 900*time.Microsecond || p50 > 1100*time.Microsecond {
		t.Fatalf("merged p50 = %v, want ≈1ms", p50)
	}
	// Merging an empty histogram is a no-op.
	var empty H
	c := a.Count()
	a.Merge(&empty)
	if a.Count() != c {
		t.Fatal("empty merge changed count")
	}
}

func TestNegativeClamped(t *testing.T) {
	var h H
	h.Record(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative record: count=%d max=%v", h.Count(), h.Max())
	}
}

func TestHugeValue(t *testing.T) {
	var h H
	h.Record(10 * time.Hour) // beyond the top magnitude; must not panic
	if h.Count() != 1 {
		t.Fatal("huge value lost")
	}
}

// TestQuickQuantileWithinRelativeError: for arbitrary positive values the
// recorded quantile of a single observation stays within the bucketing
// error bound.
func TestQuickQuantileWithinRelativeError(t *testing.T) {
	check := func(v uint32) bool {
		d := time.Duration(v) + 1
		var h H
		h.Record(d)
		got := h.Quantile(0.5)
		relErr := math.Abs(float64(got-d)) / float64(d)
		return relErr <= 1.0/subBuckets+0.001
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneBuckets(t *testing.T) {
	prev := -1
	for d := time.Duration(1); d < time.Minute; d *= 3 {
		b := bucketOf(d)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %v: %d < %d", d, b, prev)
		}
		prev = b
	}
}

func BenchmarkRecord(b *testing.B) {
	var h H
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i%1000000) * time.Nanosecond)
	}
}
