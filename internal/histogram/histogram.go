// Package histogram provides a fixed-memory log-linear latency histogram
// (HdrHistogram-style): values are bucketed by power-of-two magnitude with
// a fixed number of linear sub-buckets per magnitude, giving a bounded
// relative error (~1/subBuckets) over the full range of durations, with
// O(1) record cost and mergeability across worker threads.
package histogram

import (
	"fmt"
	"math/bits"
	"strings"
	"time"
)

const (
	// subBucketBits controls resolution: 2^subBucketBits linear
	// sub-buckets per power of two ⇒ ≤ ~1.6% relative error.
	subBucketBits = 6
	subBuckets    = 1 << subBucketBits
	// magnitudes covers 1ns .. ~2.3h.
	magnitudes = 43

	// NumBuckets is the size of H's bucket array. External recorders
	// (internal/obs keeps one atomic counter per bucket per stripe) use
	// it with BucketOf and FromCounts to share H's layout.
	NumBuckets = magnitudes * subBuckets
)

// H is a latency histogram. The zero value is ready to use. It is not
// safe for concurrent use; give each worker its own and Merge.
type H struct {
	counts [magnitudes * subBuckets]uint64
	total  uint64
	min    time.Duration
	max    time.Duration
}

// BucketOf returns the bucket index Record would count d in
// (0 <= BucketOf(d) < NumBuckets).
func BucketOf(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	return bucketOf(d)
}

func bucketOf(d time.Duration) int {
	v := uint64(d)
	if v == 0 {
		v = 1
	}
	mag := bits.Len64(v) - 1
	var sub uint64
	if mag < subBucketBits {
		// Small values index linearly within the first magnitudes.
		return int(v)
	}
	sub = (v >> (uint(mag) - subBucketBits)) & (subBuckets - 1)
	idx := mag*subBuckets + int(sub)
	if idx >= len(([magnitudes * subBuckets]uint64{})) {
		idx = magnitudes*subBuckets - 1
	}
	return idx
}

// bucketMid returns a representative duration for bucket i (upper edge).
func bucketMid(i int) time.Duration {
	if i < subBuckets {
		return time.Duration(i)
	}
	mag := i / subBuckets
	sub := i % subBuckets
	base := uint64(1) << uint(mag)
	step := base >> subBucketBits
	return time.Duration(base + uint64(sub)*step + step/2)
}

// Record adds one observation.
func (h *H) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.total++
	if h.total == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of observations.
func (h *H) Count() uint64 { return h.total }

// Min and Max report the exact observed extremes.
func (h *H) Min() time.Duration { return h.min }

// Max reports the largest observation.
func (h *H) Max() time.Duration { return h.max }

// Merge folds other into h.
func (h *H) Merge(other *H) {
	if other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
}

// Quantile returns the approximate q-quantile (0 ≤ q ≤ 1).
func (h *H) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			d := bucketMid(i)
			if d < h.min {
				d = h.min
			}
			if d > h.max {
				d = h.max
			}
			return d
		}
	}
	return h.max
}

// Mean returns the approximate mean.
func (h *H) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for i, c := range h.counts {
		if c > 0 {
			sum += float64(bucketMid(i)) * float64(c)
		}
	}
	return time.Duration(sum / float64(h.total))
}

// FromCounts reconstructs a histogram from a per-bucket count array laid
// out by BucketOf (len(counts) must be NumBuckets) plus the exact
// observed extremes. It is how the concurrent recorder in internal/obs
// materializes a mergeable H from its atomic stripes at scrape time.
// Pass a negative min or max for "not tracked": it falls back to the
// occupied buckets' representative edges so Quantile stays well-defined.
func FromCounts(counts []uint64, min, max time.Duration) H {
	var h H
	first := true
	for i, c := range counts {
		if c == 0 {
			continue
		}
		h.counts[i] += c
		h.total += c
		mid := bucketMid(i)
		if min < 0 && (first || mid < h.min) {
			h.min = mid
		}
		if max < 0 && mid > h.max {
			h.max = mid
		}
		first = false
	}
	if h.total == 0 {
		return h
	}
	if min >= 0 {
		h.min = min
	}
	if max >= 0 {
		h.max = max
	}
	return h
}

// EachBucket calls fn for every non-empty bucket, in ascending value
// order, with the bucket's representative upper edge and its count —
// the iteration a Prometheus-exposition re-bucketing needs.
func (h *H) EachBucket(fn func(upper time.Duration, count uint64)) {
	for i, c := range h.counts {
		if c > 0 {
			fn(bucketMid(i), c)
		}
	}
}

// String renders a compact summary.
func (h *H) String() string {
	if h.total == 0 {
		return "histogram: empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d min=%s p50=%s p90=%s p99=%s p99.9=%s max=%s mean=%s",
		h.total, h.min,
		h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Quantile(0.999),
		h.max, h.Mean())
	return b.String()
}
