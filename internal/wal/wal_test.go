package wal

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/base"
	"repro/internal/vfs"
)

func TestAppendReplay(t *testing.T) {
	fs := vfs.NewMemFS()
	w, err := NewWriter(fs, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	var wantOffsets []int64
	for i := 0; i < 100; i++ {
		off, n, err := w.Append(base.Entry{
			Key:   []byte(fmt.Sprintf("key-%03d", i)),
			Value: []byte(fmt.Sprintf("value-%d", i)),
			Seq:   uint64(i + 1),
			Kind:  base.KindSet,
		})
		if err != nil {
			t.Fatal(err)
		}
		if n <= 0 {
			t.Fatal("Append reported zero bytes")
		}
		wantOffsets = append(wantOffsets, off)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got int
	err = Replay(fs, 7, func(e base.Entry, off int64) error {
		if off != wantOffsets[got] {
			t.Fatalf("record %d replayed at offset %d, want %d", got, off, wantOffsets[got])
		}
		if string(e.Key) != fmt.Sprintf("key-%03d", got) || e.Seq != uint64(got+1) {
			t.Fatalf("record %d mismatch: %q seq %d", got, e.Key, e.Seq)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("replayed %d records, want 100", got)
	}
}

func TestReadRecordAt(t *testing.T) {
	fs := vfs.NewMemFS()
	w, _ := NewWriter(fs, 1, false)
	type rec struct {
		off int64
		e   base.Entry
	}
	var recs []rec
	for i := 0; i < 50; i++ {
		e := base.Entry{
			Key:   []byte(fmt.Sprintf("k%02d", i)),
			Value: []byte(fmt.Sprintf("v%d", i*i)),
			Seq:   uint64(i),
			Kind:  base.KindSet,
		}
		off, _, err := w.Append(e)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec{off, e})
	}
	w.Close()
	f, err := fs.Open(FileName(1))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Random access in reverse order (TRIAD-LOG's access pattern).
	for i := len(recs) - 1; i >= 0; i-- {
		e, _, err := ReadRecordAt(f, recs[i].off)
		if err != nil {
			t.Fatal(err)
		}
		if string(e.Key) != string(recs[i].e.Key) || string(e.Value) != string(recs[i].e.Value) || e.Seq != recs[i].e.Seq {
			t.Fatalf("record %d mismatch: got %q=%q seq %d", i, e.Key, e.Value, e.Seq)
		}
	}
}

func TestTombstoneRecord(t *testing.T) {
	fs := vfs.NewMemFS()
	w, _ := NewWriter(fs, 1, false)
	off, _, err := w.Append(base.Entry{Key: []byte("gone"), Seq: 9, Kind: base.KindDelete})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	f, _ := fs.Open(FileName(1))
	defer f.Close()
	e, _, err := ReadRecordAt(f, off)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != base.KindDelete || e.Value != nil {
		t.Fatalf("tombstone decoded as %v %q", e.Kind, e.Value)
	}
}

func TestReplayTornTail(t *testing.T) {
	fs := vfs.NewMemFS()
	w, _ := NewWriter(fs, 1, false)
	for i := 0; i < 10; i++ {
		w.Append(base.Entry{Key: []byte{byte('a' + i)}, Value: []byte("v"), Seq: uint64(i), Kind: base.KindSet})
	}
	w.Close()
	// Simulate a torn write: append garbage that is not a full record.
	f, _ := fs.Open(FileName(1))
	size, _ := f.Size()
	f.Close()
	wf, _ := fs.Create(FileName(1) + ".tmp")
	orig, _ := fs.Open(FileName(1))
	buf := make([]byte, size)
	orig.ReadAt(buf, 0)
	orig.Close()
	wf.Write(buf)
	wf.Write([]byte{0xde, 0xad, 0xbe}) // 3 garbage bytes: short header
	wf.Close()
	fs.Rename(FileName(1)+".tmp", FileName(1))

	var count int
	if err := Replay(fs, 1, func(e base.Entry, _ int64) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("replayed %d records, want 10 (torn tail dropped)", count)
	}
}

func TestReplayCorruptRecordStops(t *testing.T) {
	fs := vfs.NewMemFS()
	w, _ := NewWriter(fs, 1, false)
	var offs []int64
	for i := 0; i < 5; i++ {
		off, _, _ := w.Append(base.Entry{Key: []byte{byte('a' + i)}, Value: []byte("v"), Seq: uint64(i), Kind: base.KindSet})
		offs = append(offs, off)
	}
	w.Close()
	// Flip a byte in record 3's payload.
	f, _ := fs.Open(FileName(1))
	size, _ := f.Size()
	buf := make([]byte, size)
	f.ReadAt(buf, 0)
	f.Close()
	buf[offs[3]+headerSize] ^= 0xff
	wf, _ := fs.Create(FileName(1))
	wf.Write(buf)
	wf.Close()

	var count int
	if err := Replay(fs, 1, func(e base.Entry, _ int64) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("replayed %d records, want 3 (stop at corruption)", count)
	}
	// Direct read of the corrupt record reports ErrCorrupt.
	rf, _ := fs.Open(FileName(1))
	defer rf.Close()
	if _, _, err := ReadRecordAt(rf, offs[3]); err != ErrCorrupt {
		t.Fatalf("ReadRecordAt corrupt = %v, want ErrCorrupt", err)
	}
}

func TestReplayMissingFile(t *testing.T) {
	fs := vfs.NewMemFS()
	if err := Replay(fs, 42, func(base.Entry, int64) error { return nil }); err == nil {
		t.Fatal("Replay of missing log succeeded")
	}
}

// TestQuickRoundTrip: arbitrary key/value bytes survive append + replay.
func TestQuickRoundTrip(t *testing.T) {
	check := func(pairs [][2][]byte) bool {
		fs := vfs.NewMemFS()
		w, err := NewWriter(fs, 1, false)
		if err != nil {
			return false
		}
		var want []base.Entry
		for i, p := range pairs {
			k := p[0]
			if len(k) == 0 {
				k = []byte{0}
			}
			e := base.Entry{Key: k, Value: p[1], Seq: uint64(i), Kind: base.KindSet}
			if len(p[1]) == 0 {
				e.Value = nil
			}
			if _, _, err := w.Append(e); err != nil {
				return false
			}
			want = append(want, e)
		}
		w.Close()
		i := 0
		err = Replay(fs, 1, func(e base.Entry, _ int64) error {
			if string(e.Key) != string(want[i].Key) || string(e.Value) != string(want[i].Value) {
				return fmt.Errorf("mismatch at %d", i)
			}
			i++
			return nil
		})
		return err == nil && i == len(want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecodeRecordNeverPanics: DecodeRecord on arbitrary bytes and
// offsets must fail cleanly (error), never panic or over-read.
func TestQuickDecodeRecordNeverPanics(t *testing.T) {
	check := func(blob []byte, off uint16) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %d bytes at offset %d: %v", len(blob), off, r)
			}
		}()
		e, n, err := DecodeRecord(blob, int64(off))
		if err == nil {
			// A parse that succeeds on random bytes must at least be
			// self-consistent.
			if n <= 0 || int(off)+n > len(blob) {
				return false
			}
			_ = e
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeRecordMatchesReadRecordAt: both decoders agree on real logs.
func TestDecodeRecordMatchesReadRecordAt(t *testing.T) {
	fs := vfs.NewMemFS()
	w, _ := NewWriter(fs, 1, false)
	var offs []int64
	for i := 0; i < 50; i++ {
		off, _, _ := w.Append(base.Entry{
			Key:   []byte(fmt.Sprintf("k%02d", i)),
			Value: []byte(fmt.Sprintf("v%d", i)),
			Seq:   uint64(i),
			Kind:  base.KindSet,
		})
		offs = append(offs, off)
	}
	w.Close()
	f, _ := fs.Open(FileName(1))
	defer f.Close()
	size, _ := f.Size()
	img := make([]byte, size)
	f.ReadAt(img, 0)
	for _, off := range offs {
		a, an, aerr := ReadRecordAt(f, off)
		b, bn, berr := DecodeRecord(img, off)
		if (aerr == nil) != (berr == nil) || an != bn {
			t.Fatalf("decoders disagree at %d: %v/%v %d/%d", off, aerr, berr, an, bn)
		}
		if string(a.Key) != string(b.Key) || string(a.Value) != string(b.Value) || a.Seq != b.Seq {
			t.Fatalf("decoded records differ at %d", off)
		}
	}
}

func TestSyncOnAppend(t *testing.T) {
	fs := vfs.NewMemFS()
	w, _ := NewWriter(fs, 1, true)
	w.Append(base.Entry{Key: []byte("k"), Value: []byte("v"), Seq: 1, Kind: base.KindSet})
	w.Append(base.Entry{Key: []byte("k"), Value: []byte("v"), Seq: 2, Kind: base.KindSet})
	if got := fs.Stats.Syncs.Load(); got != 2 {
		t.Fatalf("Syncs = %d, want 2", got)
	}
	w.Close()
}

func BenchmarkAppend(b *testing.B) {
	fs := vfs.NewMemFS()
	w, _ := NewWriter(fs, 1, false)
	e := base.Entry{Key: make([]byte, 8), Value: make([]byte, 255), Kind: base.KindSet}
	b.SetBytes(int64(8 + 255 + 21))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Seq = uint64(i)
		w.Append(e)
	}
}
