// Package wal implements the commit log (Figure 1 of the paper).
//
// Classically the log only backs up the memtable for crash recovery and is
// discarded after a flush. TRIAD-LOG (paper §4.3) additionally treats a
// sealed log file as the value store of an L0 "CL-SSTable": the memtable
// remembers, per key, the file ID and byte offset of the most recent
// update, and the flush emits only a small sorted index pointing into the
// log. To support that, Append returns the offset of each record and
// ReadRecordAt decodes a single record from an arbitrary offset.
//
// Record layout (little endian, fixed 21-byte header):
//
//	crc32(4) | seq(8) | kind(1) | keyLen(4) | valueLen(4) | key | value
//
// The CRC covers everything after itself. A torn tail (short or corrupt
// final record) terminates replay without error, mirroring standard WAL
// semantics.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"repro/internal/base"
	"repro/internal/vfs"
)

const headerSize = 4 + 8 + 1 + 4 + 4

// ErrCorrupt is returned by ReadRecordAt when the record fails its CRC.
var ErrCorrupt = errors.New("wal: corrupt record")

// FileName returns the canonical name of log file id.
func FileName(id uint64) string { return fmt.Sprintf("%06d.log", id) }

// Writer appends records to one commit log file.
type Writer struct {
	mu   sync.Mutex
	f    vfs.File
	id   uint64
	off  int64
	buf  []byte
	sync bool
}

// NewWriter creates log file id in fs. If syncOnAppend is true every append
// is followed by a Sync (durability at the cost of throughput; the paper's
// workloads use batched logging, so the default experiments pass false).
func NewWriter(fs vfs.FS, id uint64, syncOnAppend bool) (*Writer, error) {
	f, err := fs.Create(FileName(id))
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, id: id, sync: syncOnAppend}, nil
}

// ID returns the log file ID.
func (w *Writer) ID() uint64 { return w.id }

// Size returns the number of bytes appended so far.
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.off
}

// Append writes one record and returns the byte offset it was written at
// (the offset TRIAD-LOG stores in the memtable) and the number of bytes
// appended.
func (w *Writer) Append(e base.Entry) (offset int64, n int, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	need := headerSize + len(e.Key) + len(e.Value)
	if cap(w.buf) < need {
		w.buf = make([]byte, need)
	}
	b := w.buf[:need]
	binary.LittleEndian.PutUint64(b[4:12], e.Seq)
	b[12] = byte(e.Kind)
	binary.LittleEndian.PutUint32(b[13:17], uint32(len(e.Key)))
	binary.LittleEndian.PutUint32(b[17:21], uint32(len(e.Value)))
	copy(b[21:], e.Key)
	copy(b[21+len(e.Key):], e.Value)
	binary.LittleEndian.PutUint32(b[0:4], crc32.ChecksumIEEE(b[4:]))
	if _, err := w.f.Write(b); err != nil {
		return 0, 0, err
	}
	offset = w.off
	w.off += int64(need)
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return 0, 0, err
		}
	}
	return offset, need, nil
}

// Sync flushes the log to stable storage.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Sync()
}

// Close syncs and closes the file. The file remains on disk; the engine
// removes it once its contents are durable elsewhere (or retains it as a
// CL-SSTable value store under TRIAD-LOG).
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		return err
	}
	return w.f.Close()
}

// ReadRecordAt decodes the record at offset off in file f. It returns the
// entry and the total encoded length of the record.
func ReadRecordAt(f vfs.File, off int64) (base.Entry, int, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(readerAt{f, off}, hdr[:]); err != nil {
		return base.Entry{}, 0, err
	}
	keyLen := binary.LittleEndian.Uint32(hdr[13:17])
	valLen := binary.LittleEndian.Uint32(hdr[17:21])
	if keyLen > 1<<30 || valLen > 1<<30 {
		return base.Entry{}, 0, ErrCorrupt
	}
	body := make([]byte, keyLen+valLen)
	if _, err := io.ReadFull(readerAt{f, off + headerSize}, body); err != nil {
		return base.Entry{}, 0, err
	}
	return assembleRecord(hdr[:], body)
}

// DecodeRecord decodes the record at offset off within an in-memory log
// image (used by the CL-SSTable merge path, which reads the whole sealed
// log sequentially once instead of one random read per record).
func DecodeRecord(log []byte, off int64) (base.Entry, int, error) {
	if off < 0 || off+headerSize > int64(len(log)) {
		return base.Entry{}, 0, io.ErrUnexpectedEOF
	}
	hdr := log[off : off+headerSize]
	keyLen := binary.LittleEndian.Uint32(hdr[13:17])
	valLen := binary.LittleEndian.Uint32(hdr[17:21])
	if keyLen > 1<<30 || valLen > 1<<30 {
		return base.Entry{}, 0, ErrCorrupt
	}
	end := off + headerSize + int64(keyLen) + int64(valLen)
	if end > int64(len(log)) {
		return base.Entry{}, 0, io.ErrUnexpectedEOF
	}
	return assembleRecord(hdr, log[off+headerSize:end])
}

func assembleRecord(hdr, body []byte) (base.Entry, int, error) {
	keyLen := binary.LittleEndian.Uint32(hdr[13:17])
	valLen := binary.LittleEndian.Uint32(hdr[17:21])
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:])
	crc.Write(body)
	if crc.Sum32() != binary.LittleEndian.Uint32(hdr[0:4]) {
		return base.Entry{}, 0, ErrCorrupt
	}
	e := base.Entry{
		Seq:   binary.LittleEndian.Uint64(hdr[4:12]),
		Kind:  base.Kind(hdr[12]),
		Key:   body[:keyLen:keyLen],
		Value: body[keyLen:],
	}
	if valLen == 0 {
		e.Value = nil
	}
	return e, headerSize + int(keyLen) + int(valLen), nil
}

type readerAt struct {
	f   vfs.File
	off int64
}

func (r readerAt) Read(p []byte) (int, error) {
	n, err := r.f.ReadAt(p, r.off)
	r.off += int64(n)
	return n, err
}

// Replay invokes fn for every intact record of log file id, in append
// order, passing the record's offset. Replay stops silently at the first
// torn or corrupt record (the standard crash-recovery contract) and returns
// any filesystem error encountered before that.
func Replay(fs vfs.FS, id uint64, fn func(e base.Entry, offset int64) error) error {
	f, err := fs.Open(FileName(id))
	if err != nil {
		return err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return err
	}
	var off int64
	for off < size {
		e, n, err := ReadRecordAt(f, off)
		if err != nil {
			if errors.Is(err, ErrCorrupt) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // torn tail
			}
			return err
		}
		if err := fn(e, off); err != nil {
			return err
		}
		off += int64(n)
	}
	return nil
}
