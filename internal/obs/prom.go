package obs

import (
	"fmt"
	"io"
	"time"

	"repro/internal/histogram"
)

// ContentType is the Prometheus text-exposition content type a /metrics
// handler must send.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// LatencyBuckets are the exposition upper bounds, in seconds, that the
// full-resolution recorder is folded into for /metrics: a 1-2.5-5 decade
// ladder from 1µs to 10s. The recorder itself keeps ~1.6% relative
// resolution; only the scrape is coarse.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Prom accumulates a Prometheus text-format dump: every series is
// preceded by its # HELP and # TYPE lines exactly once, names are
// triad_* snake_case by construction of the call sites, and histograms
// get the full _bucket/_sum/_count treatment.
type Prom struct {
	w    io.Writer
	seen map[string]bool
}

// NewProm returns a writer emitting to w.
func NewProm(w io.Writer) *Prom { return &Prom{w: w, seen: make(map[string]bool)} }

// header writes # HELP / # TYPE once per metric name.
func (p *Prom) header(name, typ, help string) {
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func labeled(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// Counter emits one counter sample. labels is a pre-rendered
// `k="v",...` list or empty.
func (p *Prom) Counter(name, help, labels string, v int64) {
	p.header(name, "counter", help)
	fmt.Fprintf(p.w, "%s %d\n", labeled(name, labels), v)
}

// CounterF emits one float counter sample (e.g. cumulative seconds).
func (p *Prom) CounterF(name, help, labels string, v float64) {
	p.header(name, "counter", help)
	fmt.Fprintf(p.w, "%s %g\n", labeled(name, labels), v)
}

// Gauge emits one integer gauge sample.
func (p *Prom) Gauge(name, help, labels string, v int64) {
	p.header(name, "gauge", help)
	fmt.Fprintf(p.w, "%s %d\n", labeled(name, labels), v)
}

// GaugeF emits one float gauge sample.
func (p *Prom) GaugeF(name, help, labels string, v float64) {
	p.header(name, "gauge", help)
	fmt.Fprintf(p.w, "%s %g\n", labeled(name, labels), v)
}

// Histogram emits a full histogram series — cumulative _bucket samples
// over LatencyBuckets plus +Inf, _sum (seconds) and _count — from one
// recorder's snapshot. A nil hist emits an all-zero series, so a scrape
// always carries every declared series regardless of traffic.
func (p *Prom) Histogram(name, help, labels string, hist *Hist) {
	var h histogram.H
	var sum time.Duration
	if hist != nil {
		h = hist.Snapshot()
		sum = hist.Sum()
	}
	p.header(name, "histogram", help)
	sep := ""
	if labels != "" {
		sep = ","
	}
	// Fold the fine log-linear buckets into the exposition ladder:
	// each recorder bucket lands in the first bound at or above its
	// representative upper edge, so cumulative counts stay exact with
	// respect to the recorder's own resolution.
	counts := make([]uint64, len(LatencyBuckets))
	var over uint64
	h.EachBucket(func(upper time.Duration, c uint64) {
		sec := upper.Seconds()
		for i, b := range LatencyBuckets {
			if sec <= b {
				counts[i] += c
				return
			}
		}
		over += c
	})
	var cum uint64
	for i, b := range LatencyBuckets {
		cum += counts[i]
		fmt.Fprintf(p.w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, b, cum)
	}
	cum += over
	fmt.Fprintf(p.w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	fmt.Fprintf(p.w, "%s_sum%s %g\n", name, maybeBraces(labels), sum.Seconds())
	fmt.Fprintf(p.w, "%s_count%s %d\n", name, maybeBraces(labels), cum)
}

func maybeBraces(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}
