package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// EventKind classifies a background event.
type EventKind uint8

// The event kinds the engine emits.
const (
	// EventFlush is one memtable flush: In = memtable bytes consumed,
	// Out = bytes written to L0 (0 when TRIAD-MEM kept everything hot).
	EventFlush EventKind = iota
	// EventCompaction is one compaction: In = input table bytes,
	// Out = output table bytes, Level = input level, Files = input count.
	EventCompaction
	// EventSnapshotGC is the zombie-file sweep after a snapshot
	// release: In = on-disk bytes reclaimed, Files = files deleted.
	EventSnapshotGC
	// EventStall is one writer's backpressure wait (flush queue full or
	// L0 at the stop-writes trigger): Dur is how long the writer stood.
	EventStall
)

// String returns the lower-case kind name.
func (k EventKind) String() string {
	switch k {
	case EventFlush:
		return "flush"
	case EventCompaction:
		return "compaction"
	case EventSnapshotGC:
		return "snapshot-gc"
	case EventStall:
		return "stall"
	default:
		return "other"
	}
}

// Event is one structured background event.
type Event struct {
	// Seq numbers events in emission order (1-based, monotonic per
	// Journal) so a reader can detect ring overwrites.
	Seq  uint64
	Time time.Time
	Kind EventKind
	// Shard is the emitting shard's index (0 for unsharded engines).
	Shard int
	// Level is the input level of a compaction; -1 when not applicable.
	Level int
	// Dur is how long the operation took (for stalls: how long the
	// writer waited).
	Dur time.Duration
	// In and Out are the bytes consumed and produced; see the kind
	// constants for each kind's reading.
	In, Out int64
	// Files counts the table files involved (compaction inputs,
	// snapshot-GC deletions).
	Files int
	// Detail is a short free-form annotation ("L0->L1", "all hot").
	Detail string
}

// String renders the event as one greppable line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s %s shard=%d", e.Seq, e.Time.Format("15:04:05.000"), e.Kind, e.Shard)
	if e.Level >= 0 {
		fmt.Fprintf(&b, " L%d", e.Level)
	}
	fmt.Fprintf(&b, " dur=%s", e.Dur.Round(time.Microsecond))
	if e.Kind != EventStall {
		fmt.Fprintf(&b, " in=%dB out=%dB", e.In, e.Out)
	}
	if e.Files > 0 {
		fmt.Fprintf(&b, " files=%d", e.Files)
	}
	if e.Detail != "" {
		// Detail is free-form engine text; escape it so a binary key
		// echoed into an error detail can't hit the terminal raw.
		fmt.Fprintf(&b, " %s", EscapeText(e.Detail))
	}
	return b.String()
}

// Journal is a fixed-size ring of Events. Add is cheap (one short
// mutex section, no allocation beyond the caller's Detail string) and
// safe for concurrent use; the ring overwrites oldest-first. A nil
// *Journal drops everything.
type Journal struct {
	mu   sync.Mutex
	ring []Event
	next uint64 // events ever added; ring[(next-1) % len] is newest
}

// NewJournal returns a journal keeping the most recent n events.
func NewJournal(n int) *Journal {
	if n <= 0 {
		n = 1024
	}
	return &Journal{ring: make([]Event, n)}
}

// Add appends e, stamping Seq (and Time when unset). Nil-safe.
func (j *Journal) Add(e Event) {
	if j == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	j.mu.Lock()
	j.next++
	e.Seq = j.next
	j.ring[(j.next-1)%uint64(len(j.ring))] = e
	j.mu.Unlock()
}

// Total reports how many events were ever added (including ones the
// ring has since overwritten).
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Dropped reports how many events the ring has overwritten: a nonzero
// value means Events is showing a window, not the whole history.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.next > uint64(len(j.ring)) {
		return j.next - uint64(len(j.ring))
	}
	return 0
}

// Events returns up to max retained events, newest first (max <= 0:
// all retained). The result is a copy; the ring keeps rolling.
func (j *Journal) Events(max int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := j.next
	if n > uint64(len(j.ring)) {
		n = uint64(len(j.ring))
	}
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, j.ring[(j.next-1-i)%uint64(len(j.ring))])
	}
	return out
}
