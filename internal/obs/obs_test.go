package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/histogram"
)

func TestHistBasic(t *testing.T) {
	h := NewHist()
	ds := []time.Duration{
		0, time.Nanosecond, 100 * time.Nanosecond,
		time.Microsecond, 17 * time.Microsecond,
		time.Millisecond, 250 * time.Millisecond, time.Second,
	}
	var sum time.Duration
	for _, d := range ds {
		h.Record(d)
		sum += d
	}
	if got := h.Count(); got != uint64(len(ds)) {
		t.Fatalf("Count = %d, want %d", got, len(ds))
	}
	if got := h.Sum(); got != sum {
		t.Fatalf("Sum = %v, want %v", got, sum)
	}
	snap := h.Snapshot()
	if snap.Count() != uint64(len(ds)) {
		t.Fatalf("snapshot Count = %d, want %d", snap.Count(), len(ds))
	}
	if snap.Min() != 0 {
		t.Fatalf("snapshot Min = %v, want 0", snap.Min())
	}
	if snap.Max() != time.Second {
		t.Fatalf("snapshot Max = %v, want 1s", snap.Max())
	}
	// Quantiles must live inside the recorded range.
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		v := snap.Quantile(q)
		if v < 0 || v > time.Second {
			t.Fatalf("Quantile(%g) = %v outside [0, 1s]", q, v)
		}
	}
}

func TestHistNilIsNoop(t *testing.T) {
	var h *Hist
	h.Record(time.Millisecond) // must not panic
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil Hist reported observations")
	}
	if snap := h.Snapshot(); snap.Count() != 0 {
		t.Fatal("nil Hist snapshot non-empty")
	}
}

// TestHistConcurrent hammers one recorder from many goroutines while a
// scraper takes snapshots; run under -race this is the data-race proof,
// and the final counts must be exact.
func TestHistConcurrent(t *testing.T) {
	h := NewHist()
	const (
		workers = 8
		perW    = 20000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var scr sync.WaitGroup
	scr.Add(1)
	go func() {
		defer scr.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := h.Snapshot()
			if c := snap.Count(); c > workers*perW {
				t.Errorf("snapshot count %d exceeds total recorded %d", c, workers*perW)
				return
			}
			_ = snap.Quantile(0.99)
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Record(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scr.Wait()
	if got := h.Count(); got != workers*perW {
		t.Fatalf("Count = %d, want %d", got, workers*perW)
	}
	snap := h.Snapshot()
	if got := snap.Count(); got != workers*perW {
		t.Fatalf("snapshot Count = %d, want %d", got, workers*perW)
	}
}

// TestHistQuantileMonotonic property-checks that for any recorded set,
// quantiles are monotone in q and bracketed by min/max.
func TestHistQuantileMonotonic(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHist()
		for _, v := range raw {
			h.Record(time.Duration(v))
		}
		snap := h.Snapshot()
		qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
		prev := time.Duration(-1)
		for _, q := range qs {
			v := snap.Quantile(q)
			if v < prev {
				return false
			}
			if v < snap.Min() || v > snap.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHistMergeDisjoint records two disjoint duration ranges into two
// recorders and checks the merged histogram sees both populations.
func TestHistMergeDisjoint(t *testing.T) {
	lo, hi := NewHist(), NewHist()
	const n = 1000
	for i := 0; i < n; i++ {
		lo.Record(time.Duration(1+i) * time.Microsecond)       // 1µs..1ms
		hi.Record(time.Duration(1+i) * 100 * time.Microsecond) // 100µs..100ms
	}
	a, b := lo.Snapshot(), hi.Snapshot()
	var m histogram.H
	m.Merge(&a)
	m.Merge(&b)
	if m.Count() != 2*n {
		t.Fatalf("merged Count = %d, want %d", m.Count(), 2*n)
	}
	if m.Min() != a.Min() {
		t.Fatalf("merged Min = %v, want %v", m.Min(), a.Min())
	}
	if m.Max() != b.Max() {
		t.Fatalf("merged Max = %v, want %v", m.Max(), b.Max())
	}
	// The median must sit between the two populations' medians.
	if p50 := m.Quantile(0.5); p50 < a.Quantile(0.25) || p50 > b.Quantile(0.75) {
		t.Fatalf("merged p50 %v outside plausible band [%v, %v]",
			p50, a.Quantile(0.25), b.Quantile(0.75))
	}
}

// TestHistRecordAllocs is the hot-path guard: Record must not allocate.
func TestHistRecordAllocs(t *testing.T) {
	h := NewHist()
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(123 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per call, want 0", allocs)
	}
}

func TestJournalRing(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Add(Event{Kind: EventFlush, In: int64(i), Level: -1})
	}
	if j.Total() != 10 {
		t.Fatalf("Total = %d, want 10", j.Total())
	}
	evs := j.Events(0)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Newest first: In = 9, 8, 7, 6; Seq stamped monotonically.
	for i, e := range evs {
		if want := int64(9 - i); e.In != want {
			t.Fatalf("evs[%d].In = %d, want %d", i, e.In, want)
		}
		if want := uint64(10 - i); e.Seq != want {
			t.Fatalf("evs[%d].Seq = %d, want %d", i, e.Seq, want)
		}
		if e.Time.IsZero() {
			t.Fatalf("evs[%d].Time not stamped", i)
		}
	}
	if evs2 := j.Events(2); len(evs2) != 2 || evs2[0].Seq != 10 {
		t.Fatalf("Events(2) = %v", evs2)
	}
	var nilJ *Journal
	nilJ.Add(Event{})
	if nilJ.Total() != 0 || nilJ.Events(0) != nil {
		t.Fatal("nil Journal retained events")
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		Seq: 3, Time: time.Date(2026, 8, 8, 12, 30, 45, 123e6, time.UTC),
		Kind: EventCompaction, Shard: 2, Level: 1,
		Dur: 42 * time.Millisecond, In: 2048, Out: 1024, Files: 5,
		Detail: "L1->L2",
	}
	s := e.String()
	for _, want := range []string{"#3", "compaction", "shard=2", "L1", "in=2048B", "out=1024B", "files=5", "L1->L2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Event.String() = %q missing %q", s, want)
		}
	}
	stall := Event{Seq: 1, Kind: EventStall, Level: -1, Dur: time.Millisecond}
	if s := stall.String(); strings.Contains(s, "in=") || strings.Contains(s, "L-1") {
		t.Fatalf("stall String() = %q carries inapplicable fields", s)
	}
}

func TestSlowLog(t *testing.T) {
	l := NewSlowLog(3, time.Millisecond)
	l.Observe("get", []byte("fast"), 10*time.Microsecond, 0) // below threshold
	if l.Total() != 0 {
		t.Fatal("fast command was logged")
	}
	for i := 0; i < 5; i++ {
		l.Observe("set", []byte(fmt.Sprintf("key-%d", i)), time.Duration(i+2)*time.Millisecond, 0)
	}
	if l.Total() != 5 {
		t.Fatalf("Total = %d, want 5", l.Total())
	}
	es := l.Entries(0)
	if len(es) != 3 {
		t.Fatalf("retained %d entries, want 3", len(es))
	}
	if es[0].Key != "key-4" || es[0].ID != 5 || es[2].Key != "key-2" {
		t.Fatalf("Entries = %v", es)
	}
	// Long keys are truncated to a preview.
	l.Observe("set", []byte(strings.Repeat("x", 500)), time.Second, 0)
	if got := l.Entries(1)[0]; len(got.Key) != maxSlowKeyBytes {
		t.Fatalf("key preview len = %d, want %d", len(got.Key), maxSlowKeyBytes)
	}
	l.Reset()
	if len(l.Entries(0)) != 0 {
		t.Fatal("Reset left entries behind")
	}
	if l.Total() != 6 {
		t.Fatalf("Total after Reset = %d, want 6 (lifetime)", l.Total())
	}
	// IDs keep counting after Reset.
	l.Observe("del", nil, time.Second, 0)
	if es := l.Entries(0); len(es) != 1 || es[0].ID != 7 {
		t.Fatalf("post-Reset Entries = %v", es)
	}
	var nilL *SlowLog
	nilL.Observe("get", nil, time.Hour, 0)
	if nilL.Total() != 0 || nilL.Entries(0) != nil || nilL.Threshold() != 0 {
		t.Fatal("nil SlowLog retained state")
	}
}

func TestPromHistogramFormat(t *testing.T) {
	h := NewHist()
	h.Record(3 * time.Microsecond)
	h.Record(700 * time.Microsecond)
	h.Record(20 * time.Millisecond)
	h.Record(30 * time.Second) // beyond the last bound → only +Inf
	var b strings.Builder
	p := NewProm(&b)
	p.Histogram("triad_cmd_latency_seconds", "help text", `cmd="get"`, h)
	out := b.String()
	for _, want := range []string{
		"# HELP triad_cmd_latency_seconds help text",
		"# TYPE triad_cmd_latency_seconds histogram",
		`triad_cmd_latency_seconds_bucket{cmd="get",le="+Inf"} 4`,
		`triad_cmd_latency_seconds_sum{cmd="get"}`,
		`triad_cmd_latency_seconds_count{cmd="get"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Buckets must be cumulative and monotone, ending at the count.
	var prev uint64
	var buckets int
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "triad_cmd_latency_seconds_bucket") {
			continue
		}
		buckets++
		var v uint64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not monotone at %q", line)
		}
		prev = v
	}
	if buckets != len(LatencyBuckets)+1 {
		t.Fatalf("emitted %d bucket lines, want %d", buckets, len(LatencyBuckets)+1)
	}
	if prev != 4 {
		t.Fatalf("final cumulative bucket = %d, want 4", prev)
	}
	// The 30s observation must not land in any finite bucket (largest is 10).
	if strings.Contains(out, `le="10"} 4`) {
		t.Fatal("out-of-range observation counted in finite bucket")
	}

	// HELP/TYPE emitted once even when the name repeats with new labels.
	p.Histogram("triad_cmd_latency_seconds", "help text", `cmd="set"`, nil)
	if n := strings.Count(b.String(), "# TYPE triad_cmd_latency_seconds histogram"); n != 1 {
		t.Fatalf("TYPE line emitted %d times, want 1", n)
	}
}

func TestPromScalars(t *testing.T) {
	var b strings.Builder
	p := NewProm(&b)
	p.Counter("triad_things_total", "things", "", 7)
	p.Gauge("triad_level", "level", `shard="1"`, -2)
	p.GaugeF("triad_ratio", "ratio", "", 1.5)
	out := b.String()
	for _, want := range []string{
		"# TYPE triad_things_total counter",
		"triad_things_total 7",
		"# TYPE triad_level gauge",
		`triad_level{shard="1"} -2`,
		"triad_ratio 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestFamilyStageNames(t *testing.T) {
	wantFam := []string{"get", "set", "del", "mget", "mset", "scan"}
	for f := FamGet; f < NumFamilies; f++ {
		if f.String() != wantFam[f] {
			t.Fatalf("Family(%d).String() = %q, want %q", f, f, wantFam[f])
		}
	}
	wantStage := []string{"coalesce", "epoch_wait", "commit", "reply_flush"}
	for s := StageCoalesce; s < NumStages; s++ {
		if s.String() != wantStage[s] {
			t.Fatalf("Stage(%d).String() = %q, want %q", s, s, wantStage[s])
		}
	}
}

func TestSnapshotMinMaxExact(t *testing.T) {
	h := NewHist()
	h.Record(1234 * time.Nanosecond)
	h.Record(777 * time.Millisecond)
	snap := h.Snapshot()
	if snap.Min() != 1234*time.Nanosecond {
		t.Fatalf("Min = %v, want 1.234µs exact", snap.Min())
	}
	if snap.Max() != 777*time.Millisecond {
		t.Fatalf("Max = %v, want 777ms exact", snap.Max())
	}
	if math.IsNaN(float64(snap.Mean())) {
		t.Fatal("Mean NaN")
	}
}

func BenchmarkHistRecord(b *testing.B) {
	h := NewHist()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := 100 * time.Microsecond
		for pb.Next() {
			h.Record(d)
		}
	})
}
