package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// SlowEntry is one command that exceeded the slowlog threshold.
type SlowEntry struct {
	// ID numbers slow entries in observation order (1-based).
	ID   uint64
	Time time.Time
	Dur  time.Duration
	// Cmd is the command family name; Key is a copy of the command's
	// first key (truncated), enough to find the offender.
	Cmd string
	Key string
	// Trace is the command's trace id when it happened to be sampled
	// (0 otherwise): the link from "this was slow" to its full span
	// breakdown via TRACE GET.
	Trace uint64
}

// String renders the entry as one greppable line.
func (e SlowEntry) String() string {
	s := fmt.Sprintf("#%d %s %s %s %q", e.ID, e.Time.Format("15:04:05.000"), e.Dur.Round(time.Microsecond), e.Cmd, e.Key)
	if e.Trace != 0 {
		s += fmt.Sprintf(" trace=#%d", e.Trace)
	}
	return s
}

// maxSlowKeyBytes bounds the key preview a slow entry copies.
const maxSlowKeyBytes = 64

// SlowLog keeps the most recent N commands slower than a threshold,
// redis-SLOWLOG style. Observe's fast path — the one every command
// takes — is a nil test and one atomic load; the ring mutex and the key
// copy are only touched by commands that were already slow. A nil
// *SlowLog records nothing.
type SlowLog struct {
	thresh atomic.Int64 // nanoseconds
	mu     sync.Mutex
	ring   []SlowEntry
	next   uint64
	since  uint64 // next at the last Reset; earlier entries are dropped
}

// NewSlowLog returns a slowlog keeping n entries over threshold.
func NewSlowLog(n int, threshold time.Duration) *SlowLog {
	if n <= 0 {
		n = 128
	}
	l := &SlowLog{ring: make([]SlowEntry, n)}
	l.thresh.Store(int64(threshold))
	return l
}

// Observe records the command if it exceeded the threshold. key may be
// nil; it is copied (truncated to a preview) only on the slow path.
// trace links the entry to a sampled trace id (0: untraced).
func (l *SlowLog) Observe(cmd string, key []byte, d time.Duration, trace uint64) {
	if l == nil || int64(d) < l.thresh.Load() {
		return
	}
	if len(key) > maxSlowKeyBytes {
		key = key[:maxSlowKeyBytes]
	}
	e := SlowEntry{Time: time.Now(), Dur: d, Cmd: cmd, Key: string(key), Trace: trace}
	l.mu.Lock()
	l.next++
	e.ID = l.next
	l.ring[(l.next-1)%uint64(len(l.ring))] = e
	l.mu.Unlock()
}

// Threshold reports the current slow threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.thresh.Load())
}

// Total reports how many slow commands were ever observed.
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Entries returns up to max retained entries, newest first (max <= 0:
// all retained).
func (l *SlowLog) Entries(max int) []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next - l.since
	if n > uint64(len(l.ring)) {
		n = uint64(len(l.ring))
	}
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]SlowEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, l.ring[(l.next-1-i)%uint64(len(l.ring))])
	}
	return out
}

// Reset drops the retained entries; lifetime IDs keep counting.
func (l *SlowLog) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.since = l.next
	l.mu.Unlock()
}
