// Package obs is the runtime's always-on observability substrate:
//
//   - Hist, a striped concurrent latency recorder over the log-linear
//     layout of internal/histogram — O(1) lock-free zero-allocation
//     Record on the hot path, merged into a quantile-capable
//     histogram.H only at scrape time;
//   - Journal, a fixed-size ring of structured background events
//     (flush, compaction, snapshot zombie-GC, write stall) emitted by
//     the engine and queried by the EVENTS command and /debug/events;
//   - SlowLog, a ring of the slowest commands the server has seen;
//   - the Prometheus text-exposition helpers in prom.go.
//
// Every type is nil-safe on its write path (a nil *Hist, *Journal or
// *SlowLog records nothing), so instrumentation can be compiled down to
// a pointer test where a caller opts out.
//
// That contract is machine-checked by triadlint (see internal/lint):
// nilsafeobs requires every exported pointer-receiver method on the
// nil-safe types to guard `recv == nil` before its first field access
// and forbids callers outside this package from touching their fields,
// and metricname vets the names handed to Prom's emission methods
// (constant triad_* snake_case, conventional unit suffixes).
package obs

import (
	"math/rand/v2"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/histogram"
)

// stripe is one shard of a Hist: a full bucket array of independent
// atomic counters plus sum/min/max. Stripes exist to spread the cache
// traffic of concurrent recorders; any goroutine may record into any
// stripe.
type stripe struct {
	counts [histogram.NumBuckets]atomic.Uint64
	sum    atomic.Int64 // nanoseconds, for exact Prometheus _sum
	min    atomic.Int64 // math.MaxInt64 when empty
	max    atomic.Int64
}

// Hist is a concurrent latency histogram. Record is safe from any
// number of goroutines concurrently with Snapshot and never allocates;
// there is no lock anywhere — each observation is one atomic add into a
// randomly chosen stripe (per-bucket counters), plus sum/min/max
// maintenance. A nil *Hist records nothing.
type Hist struct {
	stripes []stripe
	mask    uint64
}

const unsetMin = int64(^uint64(0) >> 1) // math.MaxInt64

// NewHist returns a recorder striped for the current GOMAXPROCS.
func NewHist() *Hist {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 16 {
		n <<= 1
	}
	h := &Hist{stripes: make([]stripe, n), mask: uint64(n - 1)}
	for i := range h.stripes {
		h.stripes[i].min.Store(unsetMin)
	}
	return h
}

// Record adds one observation. Nil-safe, lock-free, zero allocations.
func (h *Hist) Record(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	// rand/v2's global generator reads per-thread state without locking
	// or allocating, which is as close to a per-P stripe pick as the
	// runtime exposes.
	s := &h.stripes[rand.Uint64()&h.mask]
	s.counts[histogram.BucketOf(d)].Add(1)
	s.sum.Add(int64(d))
	for {
		cur := s.min.Load()
		if int64(d) >= cur || s.min.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	for {
		cur := s.max.Load()
		if int64(d) <= cur || s.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count reports the number of observations so far.
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.stripes {
		s := &h.stripes[i]
		for j := range s.counts {
			n += s.counts[j].Load()
		}
	}
	return n
}

// Sum reports the exact total of all recorded durations.
func (h *Hist) Sum() time.Duration {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.stripes {
		n += h.stripes[i].sum.Load()
	}
	return time.Duration(n)
}

// Snapshot merges every stripe into a point-in-time histogram.H, which
// carries the quantile/mean/merge machinery. Concurrent Records may or
// may not be included; the result is always internally consistent
// (counts observed are counts that happened).
func (h *Hist) Snapshot() histogram.H {
	if h == nil {
		return histogram.H{}
	}
	var counts [histogram.NumBuckets]uint64
	min, max := unsetMin, int64(0)
	for i := range h.stripes {
		s := &h.stripes[i]
		for j := range s.counts {
			counts[j] += s.counts[j].Load()
		}
		if m := s.min.Load(); m < min {
			min = m
		}
		if m := s.max.Load(); m > max {
			max = m
		}
	}
	if min == unsetMin {
		min = 0
	}
	return histogram.FromCounts(counts[:], time.Duration(min), time.Duration(max))
}

// Family enumerates the server's tracked command families.
type Family int

// The tracked command families, in exposition order.
const (
	FamGet Family = iota
	FamSet
	FamDel
	FamMGet
	FamMSet
	FamScan
	NumFamilies
)

// String returns the lower-case family name used as the cmd label.
func (f Family) String() string {
	switch f {
	case FamGet:
		return "get"
	case FamSet:
		return "set"
	case FamDel:
		return "del"
	case FamMGet:
		return "mget"
	case FamMSet:
		return "mset"
	case FamScan:
		return "scan"
	default:
		return "other"
	}
}

// Stage enumerates the commit-pipeline stages the server times. One
// write's server-side life is coalesce → epoch_wait → commit →
// reply_flush; separate histograms per stage are what locate a slow
// p99 (a fat coalesce histogram means the group window, a fat commit
// one means WAL/memtable/stall time).
type Stage int

// The commit-pipeline stages, in pipeline order.
const (
	// StageCoalesce is first-write-in-group → group detached for
	// commit: the batching window, including any wait for a free
	// pipeline slot (that wait is what grows batches under load).
	StageCoalesce Stage = iota
	// StageEpochWait is group detached → commit epoch assigned:
	// Prepare's validation, batch split, and stall absorption.
	StageEpochWait
	// StageCommit is epoch assigned → batch durable: the per-shard
	// epoch-order turn wait plus the WAL append and memtable insert.
	StageCommit
	// StageReplyFlush is one writer-side flush of a connection's
	// pending replies to the socket.
	StageReplyFlush
	NumStages
)

// String returns the snake_case stage name used as the stage label.
func (s Stage) String() string {
	switch s {
	case StageCoalesce:
		return "coalesce"
	case StageEpochWait:
		return "epoch_wait"
	case StageCommit:
		return "commit"
	case StageReplyFlush:
		return "reply_flush"
	default:
		return "other"
	}
}
