package obs

import "sync/atomic"

// Source classifies where a disk byte came from: the attribution axis
// of the I/O ledger. TRIAD's whole design is about moving bytes
// between these buckets (keeping hot keys out of flush, embedding the
// log, deferring compaction), so a per-shard breakdown is the live
// form of the paper's write-amplification argument.
type Source int

// The attribution sources, in exposition order.
const (
	// SrcUser counts the user-visible payload bytes written (the WA
	// denominator).
	SrcUser Source = iota
	// SrcWAL counts commit-log bytes: every Append, including TRIAD-MEM
	// hot-entry write-back and flush-skip log rewrites.
	SrcWAL
	// SrcFlush counts sstable bytes written by memtable flushes.
	SrcFlush
	// SrcCompactionRead counts table bytes read as compaction inputs.
	SrcCompactionRead
	// SrcCompactionWrite counts table bytes written as compaction
	// outputs.
	SrcCompactionWrite
	// SrcSnapshotGC counts zombie-file bytes reclaimed after snapshot
	// release (bytes deleted, not written).
	SrcSnapshotGC
	NumSources
)

// String returns the snake_case source name used as the source label.
func (s Source) String() string {
	switch s {
	case SrcUser:
		return "user_write"
	case SrcWAL:
		return "wal"
	case SrcFlush:
		return "flush"
	case SrcCompactionRead:
		return "compaction_read"
	case SrcCompactionWrite:
		return "compaction_write"
	case SrcSnapshotGC:
		return "snapshot_gc"
	default:
		return "other"
	}
}

// Ledger attributes disk bytes to sources. Add is one atomic add; a
// nil *Ledger drops everything, so the engine charges bytes with a
// pointer test when observability is off.
type Ledger struct {
	c [NumSources]atomic.Int64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Add charges n bytes to the source. Nil-safe.
func (l *Ledger) Add(s Source, n int64) {
	if l == nil || n == 0 {
		return
	}
	l.c[s].Add(n)
}

// Bytes reports the total charged to the source.
func (l *Ledger) Bytes(s Source) int64 {
	if l == nil {
		return 0
	}
	return l.c[s].Load()
}

// Snapshot captures every source's total at one instant-ish point
// (each counter is read atomically; the set is not a fenced cut).
func (l *Ledger) Snapshot() LedgerSnapshot {
	var ls LedgerSnapshot
	if l == nil {
		return ls
	}
	for s := Source(0); s < NumSources; s++ {
		ls[s] = l.c[s].Load()
	}
	return ls
}

// LedgerSnapshot is a point-in-time copy of a ledger's totals,
// indexable by Source.
type LedgerSnapshot [NumSources]int64

// AddSnapshot accumulates other into ls (for cross-shard roll-ups).
func (ls *LedgerSnapshot) AddSnapshot(other LedgerSnapshot) {
	for s := range ls {
		ls[s] += other[s]
	}
}
