package obs

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind names one timed segment of a traced request's life. The
// kinds cover both halves of the store: the server-side pipeline
// (decode, coalesce, epoch_wait, commit, reply_flush) and the engine
// work a request pays for directly (wal_append, memtable_apply,
// sstable_read, plus the read-your-writes barrier).
type SpanKind uint8

// The span kinds, roughly in request order.
const (
	// SpanDecode is socket wait + RESP parse: last reply handed off →
	// command dispatched.
	SpanDecode SpanKind = iota
	// SpanBarrier is a read's read-your-writes wait: blocking until the
	// connection's last write group is sealed and committed.
	SpanBarrier
	// SpanCoalesce is this op's enqueue into a write group → the group
	// detached for commit (the batching window).
	SpanCoalesce
	// SpanEpochWait is group detached → commit epoch assigned
	// (Prepare's validation, split, and stall absorption).
	SpanEpochWait
	// SpanWALAppend is the group's commit-log append time attributable
	// to the engine loop this op rode in.
	SpanWALAppend
	// SpanMemtableApply is the group's memtable insert time in the same
	// engine loop.
	SpanMemtableApply
	// SpanCommit is epoch assigned → group durable (turn wait + WAL +
	// memtable, end to end).
	SpanCommit
	// SpanSSTableRead is one cache-missing table read: a block fetched
	// from an sstable or a record resolved from a CL-SSTable's pinned
	// log, charged at device-model speed.
	SpanSSTableRead
	// SpanReplyFlush is the writer-side socket flush that carried this
	// op's reply.
	SpanReplyFlush
	NumSpanKinds
)

// String returns the snake_case kind name.
func (k SpanKind) String() string {
	switch k {
	case SpanDecode:
		return "decode"
	case SpanBarrier:
		return "barrier"
	case SpanCoalesce:
		return "coalesce"
	case SpanEpochWait:
		return "epoch_wait"
	case SpanWALAppend:
		return "wal_append"
	case SpanMemtableApply:
		return "memtable_apply"
	case SpanCommit:
		return "commit"
	case SpanSSTableRead:
		return "sstable_read"
	case SpanReplyFlush:
		return "reply_flush"
	default:
		return "other"
	}
}

// Span is one timed segment of a trace. Start is the offset from the
// trace's begin time, so spans render as a self-contained timeline.
type Span struct {
	Kind   SpanKind
	Start  time.Duration
	Dur    time.Duration
	Detail string
}

// Trace is one sampled request's span collection. Only sampled
// requests carry a non-nil *Trace, so the mutex here is never touched
// on the unsampled path; every method is nil-safe, making a trace
// pointer free to thread through layers that usually see nil.
type Trace struct {
	id   uint64
	time time.Time
	cmd  string
	key  string // escaped preview

	mu    sync.Mutex
	spans []Span
	dur   time.Duration
	done  bool
}

// ID reports the trace's store-unique id (0 for a nil trace).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Span records a segment that started at start and ends now. Nil-safe.
func (t *Trace) Span(kind SpanKind, start time.Time, detail string) {
	if t == nil {
		return
	}
	t.SpanAt(kind, start, time.Since(start), detail)
}

// SpanAt records a segment with an explicit duration. Nil-safe; spans
// may arrive from any goroutine and in any order.
func (t *Trace) SpanAt(kind SpanKind, start time.Time, dur time.Duration, detail string) {
	if t == nil {
		return
	}
	off := start.Sub(t.time)
	if off < 0 {
		off = 0
	}
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Kind: kind, Start: off, Dur: dur, Detail: detail})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans sorted by start offset
// (ties by kind order), so renderings are monotone timelines even
// though spans arrive from concurrent goroutines.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Dur reports the trace's end-to-end duration (0 until finished).
func (t *Trace) Dur() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dur
}

// String renders a one-line summary: id, begin time, command, key
// preview, duration, span count.
func (t *Trace) String() string {
	if t == nil {
		return "<nil trace>"
	}
	t.mu.Lock()
	n := len(t.spans)
	d := t.dur
	t.mu.Unlock()
	// key was escaped to printable ASCII at Start, so it embeds raw;
	// %q would double every backslash the escaping introduced.
	return fmt.Sprintf("#%d %s %s \"%s\" dur=%s spans=%d",
		t.id, t.time.Format("15:04:05.000"), t.cmd, t.key, d.Round(time.Microsecond), n)
}

// Render returns the full multi-line breakdown: the summary line, then
// one line per span in timeline order.
func (t *Trace) Render() string {
	if t == nil {
		return "<nil trace>"
	}
	var b strings.Builder
	b.WriteString(t.String())
	for _, s := range t.Spans() {
		fmt.Fprintf(&b, "\n  +%-10s %-14s %s", s.Start.Round(time.Microsecond), s.Kind, s.Dur.Round(time.Microsecond))
		if s.Detail != "" {
			b.WriteString("  ")
			b.WriteString(EscapeText(s.Detail))
		}
	}
	return b.String()
}

// Traces is the set of sampled traces riding one write group through
// the engine; SpanAt fans out to each member. The engine sees a nil
// Traces for every untraced group, so the fan-out costs one len test.
type Traces []*Trace

// SpanAt records the segment into every trace in the set.
func (ts Traces) SpanAt(kind SpanKind, start time.Time, dur time.Duration, detail string) {
	for _, t := range ts {
		t.SpanAt(kind, start, dur, detail)
	}
}

// Tracer samples commands probabilistically and retains finished
// traces in a ring for TRACE RECENT / TRACE GET / /debug/trace. A nil
// *Tracer samples nothing: Start on a nil tracer is a single pointer
// test, and Start on a live tracer rejects an unsampled command with
// one lock-free random draw and no allocation.
type Tracer struct {
	// threshold is the sampling probability mapped onto the uint64
	// space: sample iff rand.Uint64() < threshold, with ^uint64(0)
	// meaning always (so sample=1.0 cannot lose to the < comparison).
	threshold uint64
	ids       atomic.Uint64

	mu   sync.Mutex
	ring []*Trace
	next uint64
}

// NewTracer returns a tracer sampling the given fraction of commands
// and keeping the most recent keep finished traces. sample <= 0
// returns nil (tracing off, zero cost everywhere); sample >= 1 samples
// everything.
func NewTracer(sample float64, keep int) *Tracer {
	if sample <= 0 {
		return nil
	}
	if keep <= 0 {
		keep = 256
	}
	th := ^uint64(0)
	if sample < 1 {
		th = uint64(sample * float64(1<<63) * 2)
	}
	return &Tracer{threshold: th, ring: make([]*Trace, keep)}
}

// Start begins a trace for the command if it is sampled, returning nil
// otherwise. begin is the moment the request started being read off
// the wire; span offsets are relative to it. key is escaped into a
// bounded preview only when sampled.
func (t *Tracer) Start(cmd string, key []byte, begin time.Time) *Trace {
	if t == nil {
		return nil
	}
	if t.threshold != ^uint64(0) && rand.Uint64() >= t.threshold {
		return nil
	}
	if len(key) > maxSlowKeyBytes {
		key = key[:maxSlowKeyBytes]
	}
	return &Trace{id: t.ids.Add(1), time: begin, cmd: cmd, key: EscapeText(string(key))}
}

// Finish stamps the trace's end-to-end duration and publishes it to
// the retained ring. Nil-safe in both arguments; finishing twice is a
// no-op.
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.done {
		tr.mu.Unlock()
		return
	}
	tr.done = true
	tr.dur = time.Since(tr.time)
	tr.mu.Unlock()
	t.mu.Lock()
	t.next++
	t.ring[(t.next-1)%uint64(len(t.ring))] = tr
	t.mu.Unlock()
}

// Sampled reports how many commands were ever sampled.
func (t *Tracer) Sampled() uint64 {
	if t == nil {
		return 0
	}
	return t.ids.Load()
}

// Finished reports how many traces were ever published.
func (t *Tracer) Finished() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Recent returns up to max retained finished traces, newest first
// (max <= 0: all retained).
func (t *Tracer) Recent(max int) []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if n > uint64(len(t.ring)) {
		n = uint64(len(t.ring))
	}
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]*Trace, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, t.ring[(t.next-1-i)%uint64(len(t.ring))])
	}
	return out
}

// Get returns the retained trace with the given id, or nil if it has
// been overwritten (or never finished).
func (t *Tracer) Get(id uint64) *Trace {
	if t == nil || id == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tr := range t.ring {
		if tr != nil && tr.id == id {
			return tr
		}
	}
	return nil
}

// EscapeText returns s with every byte outside printable ASCII
// rendered as a \xNN escape, so binary keys and free-form detail
// strings cannot smuggle control bytes into terminal or HTTP output.
// Clean strings are returned unchanged without allocating.
func EscapeText(s string) string {
	clean := true
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] > 0x7e {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c > 0x7e {
			fmt.Fprintf(&b, "\\x%02x", c)
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}
