package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerSampling(t *testing.T) {
	if tr := NewTracer(0, 8); tr != nil {
		t.Fatal("sample 0 should return a nil tracer")
	}
	if tr := NewTracer(-1, 8); tr != nil {
		t.Fatal("negative sample should return a nil tracer")
	}

	always := NewTracer(1, 8)
	for i := 0; i < 100; i++ {
		if always.Start("GET", []byte("k"), time.Now()) == nil {
			t.Fatal("sample 1 must sample every command")
		}
	}
	if got := always.Sampled(); got != 100 {
		t.Fatalf("Sampled = %d, want 100", got)
	}

	never := NewTracer(1e-18, 8)
	for i := 0; i < 10_000; i++ {
		if never.Start("GET", []byte("k"), time.Now()) != nil {
			t.Fatal("sample 1e-18 sampled a command (threshold mapping broken)")
		}
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tracer *Tracer
	if tr := tracer.Start("GET", []byte("k"), time.Now()); tr != nil {
		t.Fatal("nil tracer Start != nil")
	}
	tracer.Finish(nil)
	if tracer.Sampled() != 0 || tracer.Finished() != 0 {
		t.Fatal("nil tracer counters nonzero")
	}
	if tracer.Recent(0) != nil || tracer.Get(1) != nil {
		t.Fatal("nil tracer returned traces")
	}

	var tr *Trace
	tr.Span(SpanDecode, time.Now(), "")
	tr.SpanAt(SpanCommit, time.Now(), time.Millisecond, "")
	if tr.ID() != 0 || tr.Dur() != 0 || tr.Spans() != nil {
		t.Fatal("nil trace accessors nonzero")
	}

	var trs Traces
	trs.SpanAt(SpanCommit, time.Now(), time.Millisecond, "") // must not panic
}

// TestTraceUnsampledZeroAlloc is the acceptance guard for the hot path:
// an unsampled command must cost zero allocations at every trace point
// it crosses — the sampling decision, the nil-trace span calls, the
// nil-Traces fan-out, and the nil-ledger charge.
func TestTraceUnsampledZeroAlloc(t *testing.T) {
	tracer := NewTracer(1e-18, 8) // live tracer, rejects ~everything
	begin := time.Now()
	if n := testing.AllocsPerRun(1000, func() {
		if tr := tracer.Start("SET", []byte("key"), begin); tr != nil {
			t.Fatal("sampled (astronomically unlikely; threshold mapping broken)")
		}
	}); n != 0 {
		t.Fatalf("unsampled Start allocates %v/op, want 0", n)
	}

	var tr *Trace
	if n := testing.AllocsPerRun(1000, func() {
		tr.SpanAt(SpanWALAppend, begin, time.Millisecond, "")
	}); n != 0 {
		t.Fatalf("nil-trace SpanAt allocates %v/op, want 0", n)
	}

	var trs Traces
	if n := testing.AllocsPerRun(1000, func() {
		trs.SpanAt(SpanCommit, begin, time.Millisecond, "")
	}); n != 0 {
		t.Fatalf("nil-Traces SpanAt allocates %v/op, want 0", n)
	}

	var led *Ledger
	if n := testing.AllocsPerRun(1000, func() {
		led.Add(SrcWAL, 128)
	}); n != 0 {
		t.Fatalf("nil-ledger Add allocates %v/op, want 0", n)
	}
}

func TestTraceSpansSortedAndClamped(t *testing.T) {
	tracer := NewTracer(1, 4)
	begin := time.Now()
	tr := tracer.Start("SET", []byte("k"), begin)

	// Record out of order, including a span "before" the trace began and
	// a negative duration — both must clamp to zero, never go negative.
	tr.SpanAt(SpanCommit, begin.Add(3*time.Millisecond), 2*time.Millisecond, "")
	tr.SpanAt(SpanDecode, begin.Add(-time.Second), -time.Minute, "early")
	tr.SpanAt(SpanCoalesce, begin.Add(time.Millisecond), time.Millisecond, "")
	tr.SpanAt(SpanWALAppend, begin.Add(3*time.Millisecond), time.Millisecond, "")

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if s.Start < 0 || s.Dur < 0 {
			t.Fatalf("span %d has negative offset/duration: %+v", i, s)
		}
		if i > 0 && s.Start < spans[i-1].Start {
			t.Fatalf("spans not sorted by offset: %v then %v", spans[i-1], s)
		}
	}
	if spans[0].Kind != SpanDecode {
		t.Fatalf("first span = %s, want decode", spans[0].Kind)
	}
	// Same offset: kind order breaks the tie deterministically.
	if spans[2].Kind != SpanWALAppend || spans[3].Kind != SpanCommit {
		t.Fatalf("tie not broken by kind: %s, %s", spans[2].Kind, spans[3].Kind)
	}
}

func TestTracerRing(t *testing.T) {
	tracer := NewTracer(1, 3)
	var ids []uint64
	for i := 0; i < 5; i++ {
		tr := tracer.Start("GET", []byte("k"), time.Now())
		ids = append(ids, tr.ID())
		tracer.Finish(tr)
		tracer.Finish(tr) // idempotent
	}
	if got := tracer.Finished(); got != 5 {
		t.Fatalf("Finished = %d, want 5 (double Finish must not double-count)", got)
	}
	recent := tracer.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("Recent(0) kept %d, want ring size 3", len(recent))
	}
	for i, tr := range recent {
		if want := ids[4-i]; tr.ID() != want {
			t.Fatalf("Recent[%d] = #%d, want #%d (newest first)", i, tr.ID(), want)
		}
	}
	if got := tracer.Recent(1); len(got) != 1 || got[0].ID() != ids[4] {
		t.Fatalf("Recent(1) = %v", got)
	}
	if tr := tracer.Get(ids[4]); tr == nil || tr.ID() != ids[4] {
		t.Fatal("Get missed a retained trace")
	}
	if tr := tracer.Get(ids[0]); tr != nil {
		t.Fatal("Get returned an overwritten trace")
	}
	if tr := tracer.Get(0); tr != nil {
		t.Fatal("Get(0) must be nil (0 is the no-trace id)")
	}

	// An unfinished trace is not in the ring.
	open := tracer.Start("GET", []byte("k"), time.Now())
	if tr := tracer.Get(open.ID()); tr != nil {
		t.Fatal("unfinished trace leaked into the ring")
	}
}

func TestTracesFanOut(t *testing.T) {
	tracer := NewTracer(1, 4)
	begin := time.Now()
	a := tracer.Start("SET", []byte("a"), begin)
	b := tracer.Start("SET", []byte("b"), begin)
	trs := Traces{a, b}
	trs.SpanAt(SpanWALAppend, begin, time.Millisecond, "shard 0")
	for _, tr := range []*Trace{a, b} {
		spans := tr.Spans()
		if len(spans) != 1 || spans[0].Kind != SpanWALAppend {
			t.Fatalf("fan-out missed trace #%d: %+v", tr.ID(), spans)
		}
	}
}

// TestTraceConcurrentRecordAndScrape drives span recording from many
// goroutines while readers render and scrape concurrently; run under
// -race this is the data-race guard for the trace plumbing.
func TestTraceConcurrentRecordAndScrape(t *testing.T) {
	tracer := NewTracer(1, 16)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tr := range tracer.Recent(0) {
				_ = tr.Render()
				_ = tr.String()
				_ = tr.Spans()
				_ = tr.Dur()
			}
		}
	}()
	var writers sync.WaitGroup
	for i := 0; i < 4; i++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for j := 0; j < 200; j++ {
				tr := tracer.Start("SET", []byte("key"), time.Now())
				var inner sync.WaitGroup
				for k := 0; k < 3; k++ {
					inner.Add(1)
					go func(k int) {
						defer inner.Done()
						tr.SpanAt(SpanKind(k), time.Now(), time.Microsecond, "concurrent")
					}(k)
				}
				inner.Wait()
				tracer.Finish(tr)
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if tracer.Finished() != 800 {
		t.Fatalf("Finished = %d, want 800", tracer.Finished())
	}
}

func TestLedger(t *testing.T) {
	var nilLed *Ledger
	nilLed.Add(SrcWAL, 100) // no-op
	if nilLed.Bytes(SrcWAL) != 0 {
		t.Fatal("nil ledger holds bytes")
	}
	var zero LedgerSnapshot
	if nilLed.Snapshot() != zero {
		t.Fatal("nil ledger snapshot nonzero")
	}

	led := NewLedger()
	led.Add(SrcUser, 100)
	led.Add(SrcWAL, 120)
	led.Add(SrcWAL, 30)
	led.Add(SrcFlush, 0) // zero is a no-op, not a counter touch
	if got := led.Bytes(SrcWAL); got != 150 {
		t.Fatalf("Bytes(wal) = %d, want 150", got)
	}
	snap := led.Snapshot()
	if snap[SrcUser] != 100 || snap[SrcWAL] != 150 || snap[SrcFlush] != 0 {
		t.Fatalf("snapshot = %v", snap)
	}
	var sum LedgerSnapshot
	sum.AddSnapshot(snap)
	sum.AddSnapshot(snap)
	if sum[SrcWAL] != 300 {
		t.Fatalf("AddSnapshot sum = %v", sum)
	}
	for s := Source(0); s < NumSources; s++ {
		if s.String() == "other" {
			t.Fatalf("source %d has no name", s)
		}
	}
}

func TestJournalDropped(t *testing.T) {
	j := NewJournal(4)
	if j.Dropped() != 0 {
		t.Fatal("fresh journal reports drops")
	}
	for i := 0; i < 3; i++ {
		j.Add(Event{Kind: EventFlush})
	}
	if j.Dropped() != 0 {
		t.Fatalf("Dropped = %d before the ring filled", j.Dropped())
	}
	for i := 0; i < 7; i++ {
		j.Add(Event{Kind: EventFlush})
	}
	if got := j.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6 (10 added, ring of 4)", got)
	}
	var nilJ *Journal
	if nilJ.Dropped() != 0 {
		t.Fatal("nil journal reports drops")
	}
}

func TestEscapeText(t *testing.T) {
	clean := "plain ASCII 0-9 {}"
	if got := EscapeText(clean); got != clean {
		t.Fatalf("clean text changed: %q", got)
	}
	if n := testing.AllocsPerRun(100, func() { EscapeText(clean) }); n != 0 {
		t.Fatalf("clean EscapeText allocates %v/op, want 0", n)
	}
	if got := EscapeText("a\x00b\x1b[31mc\xff"); got != `a\x00b\x1b[31mc\xff` {
		t.Fatalf("escaped = %q", got)
	}

	// The escaping is applied by every rendering surface.
	ev := Event{Kind: EventFlush, Detail: "evil\x07detail"}
	if s := ev.String(); strings.Contains(s, "\x07") || !strings.Contains(s, `\x07`) {
		t.Fatalf("journal rendering leaked a control byte: %q", s)
	}
	log := NewSlowLog(4, 0)
	log.Observe("GET", []byte("k\x1b"), time.Second, 7)
	e := log.Entries(1)[0]
	if s := e.String(); strings.Contains(s, "\x1b") || !strings.Contains(s, `\x1b`) {
		t.Fatalf("slowlog rendering leaked a control byte: %q", s)
	}
	if !strings.Contains(e.String(), "trace=#7") {
		t.Fatalf("slow entry lost its trace link: %q", e.String())
	}
	tracer := NewTracer(1, 4)
	tr := tracer.Start("GET", []byte("k\x00ey"), time.Now())
	tr.Span(SpanSSTableRead, time.Now(), "blk\x01")
	tracer.Finish(tr)
	if s := tr.Render(); strings.ContainsAny(s, "\x00\x01") || !strings.Contains(s, `k\x00ey`) {
		t.Fatalf("trace rendering leaked a control byte: %q", s)
	}
}
