package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// conflictKeySet returns n keys that collectively hash onto every shard,
// so a batch writing all of them is a cross-shard conflict with every
// other such batch.
func conflictKeySet(t *testing.T, n, shards int) [][]byte {
	t.Helper()
	keys := make([][]byte, 0, n)
	hit := make(map[int]bool)
	for i := 0; len(keys) < n; i++ {
		k := []byte(fmt.Sprintf("conflict-%04d", i))
		hit[(FNV{}).Partition(k, shards)] = true
		keys = append(keys, k)
	}
	if len(hit) != shards {
		t.Fatalf("%d conflict keys only reach %d of %d shards", n, len(hit), shards)
	}
	return keys
}

// TestApplySerializableConflictingBatches is the serializability torture
// test for the epoch commit pipeline. Two writers race fully conflicting
// cross-shard batches — every batch stamps the same key set, spanning
// all shards, with a unique value — while readers take snapshots. Under
// the old commit path, the per-shard sub-batches of two concurrent
// Applies interleaved in unspecified order, so a snapshot could see
// writer A's stamp on one shard's keys and writer B's on another's
// (verified: with the clock's per-shard ticket ordering disabled, this
// test fails within a few rounds). With the store clock, every batch
// commits at one totally ordered epoch, so each snapshot must observe
// a prefix of that one serial order:
//
//  1. atomicity — all keys carry the same stamp;
//  2. ordering — the stamp is the one with the greatest epoch below the
//     snapshot's own epoch, no batch skipped, none from the future.
//
// Run under -race in CI.
func TestApplySerializableConflictingBatches(t *testing.T) {
	const (
		shards  = 4
		nkeys   = 16
		writers = 2
		batches = 250 // per writer
		readers = 3
		reads   = 120 // per reader
	)
	db := openMem(t, shards)
	defer db.Close()
	keys := conflictKeySet(t, nkeys, shards)

	// epochOf records every committed stamp's epoch (writers fill it;
	// verification reads it after the run).
	var mu sync.Mutex
	epochOf := map[string]uint64{}

	stampAll := func(stamp string) (uint64, error) {
		b := &Batch{}
		for _, k := range keys {
			b.Put(k, []byte(stamp))
		}
		c, err := db.Prepare(b)
		if err != nil {
			return 0, err
		}
		if err := c.Commit(); err != nil {
			return 0, err
		}
		return c.Epoch(), nil
	}
	initEpoch, err := stampAll("init")
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	epochOf["init"] = initEpoch
	mu.Unlock()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				stamp := fmt.Sprintf("w%d-%04d", w, i)
				e, err := stampAll(stamp)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				epochOf[stamp] = e
				mu.Unlock()
			}
		}(w)
	}

	// observation is one snapshot's view: its epoch and the stamp set it
	// saw (one entry iff the view was atomic).
	type observation struct {
		epoch  uint64
		stamps map[string]bool
	}
	obs := make([][]observation, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 99))
			for i := 0; i < reads && !t.Failed(); i++ {
				s, err := db.NewSnapshot()
				if err != nil {
					t.Error(err)
					return
				}
				o := observation{epoch: s.Epoch(), stamps: map[string]bool{}}
				if rng.Intn(2) == 0 {
					for _, k := range keys {
						v, err := s.Get(k)
						if err != nil {
							t.Errorf("snapshot Get(%s): %v", k, err)
						}
						o.stamps[string(v)] = true
					}
				} else {
					it, err := s.NewIterator([]byte("conflict-"), []byte("conflict-z"))
					if err != nil {
						t.Error(err)
						s.Close()
						return
					}
					n := 0
					for it.Next() {
						o.stamps[string(it.Value())] = true
						n++
					}
					if err := it.Close(); err != nil {
						t.Error(err)
					}
					if n != nkeys {
						t.Errorf("snapshot scan saw %d keys, want %d", n, nkeys)
					}
				}
				s.Close()
				if len(o.stamps) != 1 {
					t.Errorf("snapshot at epoch %d observed %d distinct stamps %v — torn conflicting batches", o.epoch, len(o.stamps), o.stamps)
				}
				obs[r] = append(obs[r], o)
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Verify the prefix property against the one serial order the epochs
	// define: each snapshot saw exactly the committed batch with the
	// greatest epoch below its own.
	type commit struct {
		epoch uint64
		stamp string
	}
	serial := make([]commit, 0, len(epochOf))
	for stamp, e := range epochOf {
		serial = append(serial, commit{e, stamp})
	}
	sort.Slice(serial, func(i, j int) bool { return serial[i].epoch < serial[j].epoch })
	for r := range obs {
		for _, o := range obs[r] {
			i := sort.Search(len(serial), func(i int) bool { return serial[i].epoch >= o.epoch })
			if i == 0 {
				t.Fatalf("snapshot at epoch %d predates the init batch (epoch %d)", o.epoch, serial[0].epoch)
			}
			want := serial[i-1].stamp
			if !o.stamps[want] {
				t.Errorf("snapshot at epoch %d observed %v, want %q (the last commit at epoch %d) — not a prefix of the serial order",
					o.epoch, o.stamps, want, serial[i-1].epoch)
			}
		}
	}
}
