package shard

import "sync"

// clock is the store-wide commit clock: one monotonically increasing
// sequence of epochs that every write batch and every snapshot draws a
// ticket from. The clock replaces three independent ordering mechanisms
// that used to stack on top of each other — per-lsm.DB sequence
// counters, the shard layer's all-or-nothing apply barrier, and the
// server committer's single-goroutine ordering — with a single total
// order:
//
//   - every ticket (a batch or a snapshot capture) holds one unique
//     epoch; per-DB sequence counters become views of this clock;
//   - per shard, tickets execute in epoch order (each ticket waits for
//     its predecessor on that shard's chain), so any two tickets that
//     share a shard are ordered the same way everywhere they meet —
//     conflicting cross-shard batches are serializable, and a snapshot
//     ticket spanning all shards captures every shard at the same
//     logical instant without freezing the store;
//   - a committed watermark tracks the contiguous prefix of finished
//     epochs, which is what a read-your-writes barrier keys on.
//
// Ticket allocation is O(touched shards) under one mutex; the per-shard
// chains hand execution from each ticket directly to its successor, so
// shards that share no tickets never synchronize.
type clock struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast when committed advances
	next uint64     // next epoch to hand out
	tail []uint64   // per shard: epoch of the last ticket enqueued there

	committed uint64              // every epoch <= committed has finished
	finished  map[uint64]struct{} // epochs finished out of order

	gates []gate
}

// gate is one shard's commit chain: done is the epoch of the last
// ticket that finished on this shard, which is exactly the predecessor
// epoch its successor recorded at allocation time.
type gate struct {
	mu   sync.Mutex
	cond *sync.Cond
	done uint64
}

// newClock returns a clock over shards chains resuming at epoch last
// (the highest sequence any shard recovered; new stores start at 0).
func newClock(shards int, last uint64) *clock {
	c := &clock{
		next:      last + 1,
		committed: last,
		tail:      make([]uint64, shards),
		finished:  make(map[uint64]struct{}),
		gates:     make([]gate, shards),
	}
	c.cond = sync.NewCond(&c.mu)
	for i := range c.tail {
		c.tail[i] = last
	}
	for i := range c.gates {
		g := &c.gates[i]
		g.done = last
		g.cond = sync.NewCond(&g.mu)
	}
	return c
}

// ticket is one position in the store's total commit order: an epoch
// plus, per touched shard, the epoch of the ticket immediately ahead on
// that shard's chain.
type ticket struct {
	epoch  uint64
	shards []int    // touched shard indices
	preds  []uint64 // predecessor epoch per entry of shards
}

// allocate hands out the next epoch and enqueues the ticket on every
// listed shard's chain. The caller must drive the ticket to completion
// — waitTurn+shardDone on every shard, then finish — even on error
// paths, or everything queued behind it blocks forever. The shards
// slice is retained; callers must not mutate it afterwards.
func (c *clock) allocate(shards []int) ticket {
	c.mu.Lock()
	t := ticket{epoch: c.next, shards: shards, preds: make([]uint64, len(shards))}
	c.next++
	for j, i := range shards {
		t.preds[j] = c.tail[i]
		c.tail[i] = t.epoch
	}
	c.mu.Unlock()
	return t
}

// waitTurn blocks until every earlier ticket touching t.shards[j] has
// finished there — the ticket is now at the head of that shard's chain.
func (c *clock) waitTurn(t ticket, j int) {
	g := &c.gates[t.shards[j]]
	g.mu.Lock()
	for g.done != t.preds[j] {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// shardDone marks t finished on t.shards[j], handing the chain to its
// successor.
func (c *clock) shardDone(t ticket, j int) {
	g := &c.gates[t.shards[j]]
	g.mu.Lock()
	g.done = t.epoch
	g.mu.Unlock()
	g.cond.Broadcast()
}

// finish retires the ticket from the total order; the committed
// watermark advances over every contiguously finished epoch.
func (c *clock) finish(t ticket) {
	c.mu.Lock()
	c.finished[t.epoch] = struct{}{}
	advanced := false
	for {
		if _, ok := c.finished[c.committed+1]; !ok {
			break
		}
		c.committed++
		delete(c.finished, c.committed)
		advanced = true
	}
	c.mu.Unlock()
	if advanced {
		c.cond.Broadcast()
	}
}

// waitCommitted blocks until the committed watermark reaches epoch —
// every ticket at or below it has finished.
func (c *clock) waitCommitted(epoch uint64) {
	c.mu.Lock()
	for c.committed < epoch {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// committedEpoch reports the watermark.
func (c *clock) committedEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.committed
}
