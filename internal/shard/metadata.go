package shard

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"

	"repro/internal/vfs"
)

// The STORE record is the durable identity of a sharded store. One copy
// lives on every shard's filesystem alongside that shard's MANIFEST, so
// any single shard directory is self-describing. It persists the
// store-wide facts routing depends on — shard count, partitioner name
// (which, for the range partitioner, encodes the split keys) — plus the
// shard's own index, so a shuffled or miscounted reopen fails fast
// instead of silently misrouting keys into invisibility.
//
// Format: one line of text,
//
//	TRIADSTORE v1 <crc32c-hex> <compact-json>
//
// where the checksum covers the JSON payload. The version token gates
// future format changes; an unknown version or a failed checksum is an
// error, never a silent fallback.
const (
	storeMetaName    = "STORE"
	storeMetaMagic   = "TRIADSTORE"
	storeMetaVersion = "v1"
)

// storeMeta is the JSON payload of a STORE record.
type storeMeta struct {
	// Shards is the store-wide shard count.
	Shards int `json:"shards"`
	// Shard is the index of the shard whose filesystem holds this copy.
	Shard int `json:"shard"`
	// Partitioner is Partitioner.Name() at creation time; equal names
	// imply identical routing.
	Partitioner string `json:"partitioner"`
	// Splits are the range partitioner's split keys, hex-encoded
	// ascending (absent for hash partitioners). They also appear inside
	// Partitioner's name; this field keeps them machine-readable for
	// tooling and the future resharding path.
	Splits []string `json:"splits,omitempty"`
}

var storeCRC = crc32.MakeTable(crc32.Castagnoli)

// metaFor builds shard i's STORE record for a store of n shards routed
// by part.
func metaFor(part Partitioner, n, i int) storeMeta {
	m := storeMeta{Shards: n, Shard: i, Partitioner: part.Name()}
	if r, ok := part.(*Range); ok {
		for _, s := range r.Splits() {
			m.Splits = append(m.Splits, hex.EncodeToString(s))
		}
	}
	return m
}

// writeStoreMeta durably writes m as fs's STORE record (atomically, via
// a temporary file and rename).
func writeStoreMeta(fs vfs.FS, m storeMeta) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%s %s %08x %s\n",
		storeMetaMagic, storeMetaVersion, crc32.Checksum(payload, storeCRC), payload)
	tmp := storeMetaName + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(line)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, storeMetaName)
}

// readStoreMeta reads and verifies fs's STORE record. ok is false when
// the record does not exist (a store created before metadata landed, or
// a fresh filesystem); any malformed, mischecksummed or future-versioned
// record is an error.
func readStoreMeta(fs vfs.FS) (m storeMeta, ok bool, err error) {
	if !fs.Exists(storeMetaName) {
		return storeMeta{}, false, nil
	}
	f, err := fs.Open(storeMetaName)
	if err != nil {
		return storeMeta{}, false, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return storeMeta{}, false, err
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
			return storeMeta{}, false, err
		}
	}
	line := strings.TrimSuffix(string(buf), "\n")
	fields := strings.SplitN(line, " ", 4)
	if len(fields) != 4 || fields[0] != storeMetaMagic {
		return storeMeta{}, false, fmt.Errorf("shard: corrupt %s record", storeMetaName)
	}
	if fields[1] != storeMetaVersion {
		return storeMeta{}, false, fmt.Errorf("shard: %s record version %q not supported (want %s)",
			storeMetaName, fields[1], storeMetaVersion)
	}
	var want uint32
	if _, err := fmt.Sscanf(fields[2], "%08x", &want); err != nil {
		return storeMeta{}, false, fmt.Errorf("shard: corrupt %s checksum", storeMetaName)
	}
	payload := []byte(fields[3])
	if got := crc32.Checksum(payload, storeCRC); got != want {
		return storeMeta{}, false, fmt.Errorf("shard: %s record checksum mismatch (got %08x, want %08x)",
			storeMetaName, got, want)
	}
	if err := json.Unmarshal(payload, &m); err != nil {
		return storeMeta{}, false, fmt.Errorf("shard: corrupt %s payload: %w", storeMetaName, err)
	}
	if m.Shards < 1 || m.Shard < 0 || m.Shard >= m.Shards || m.Partitioner == "" {
		return storeMeta{}, false, fmt.Errorf("shard: %s record is inconsistent (%+v)", storeMetaName, m)
	}
	return m, true, nil
}

// partitionerFromName reconstructs the partitioner a STORE record names,
// for reopening with Options.Partitioner == nil. Only the built-in
// partitioners can be reconstructed; a store created with a custom one
// must be reopened with that implementation passed explicitly.
func partitionerFromName(name string) (Partitioner, error) {
	switch {
	case name == FNV{}.Name():
		return FNV{}, nil
	case strings.HasPrefix(name, "range("):
		return parseRangeName(name)
	default:
		return nil, fmt.Errorf("shard: store was created with custom partitioner %q; pass it in Options.Partitioner", name)
	}
}
