package shard

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bgsched"
	"repro/internal/manifest"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sstable"
)

// Metrics returns the store-wide counter snapshot: the counter-wise sum
// of every shard's snapshot. Derived quantities (write and read
// amplification) computed on the sum are the aggregate amplifications.
func (db *DB) Metrics() metrics.Snapshot {
	var out metrics.Snapshot
	for _, s := range db.shards {
		out = out.Add(s.Metrics())
	}
	return out
}

// CacheStats reports block-cache hits and misses summed across shards.
func (db *DB) CacheStats() (hits, misses int64) {
	for _, s := range db.shards {
		h, m := s.CacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// BlockCacheStats reports the store-wide block-cache counters. With the
// shared cache (the default) Resident/Capacity/AdmissionRejects come
// from the cache itself; in the split layout they are the sum of the
// per-shard caches.
func (db *DB) BlockCacheStats() sstable.CacheStats {
	if db.cache != nil {
		return db.cache.Stats()
	}
	var out sstable.CacheStats
	for _, s := range db.shards {
		st := s.BlockCacheStats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Resident += st.Resident
		out.Evictions += st.Evictions
		out.AdmissionRejects += st.AdmissionRejects
		out.Capacity += st.Capacity
	}
	return out
}

// BlockCache exposes the store-wide shared cache (nil when caching is
// disabled or per-shard split caches are in use).
func (db *DB) BlockCache() *sstable.Cache { return db.cache }

// NumLevelFiles reports the per-level table count summed across shards.
func (db *DB) NumLevelFiles() []int {
	out := make([]int, manifest.NumLevels)
	for _, s := range db.shards {
		for l, n := range s.NumLevelFiles() {
			out[l] += n
		}
	}
	return out
}

// LevelSizes reports the per-level byte size summed across shards.
func (db *DB) LevelSizes() []int64 {
	out := make([]int64, manifest.NumLevels)
	for _, s := range db.shards {
		for l, n := range s.LevelSizes() {
			out[l] += n
		}
	}
	return out
}

// ShardStat is one shard's share of the load, for observing hash-vs-
// range imbalance: how many writes and bytes the shard absorbed, how
// much disk it holds, and its individual amplifications.
type ShardStat struct {
	// Shard is the shard index.
	Shard int
	// Writes and WriteBytes are the user Put/Delete operations and
	// key+value bytes routed to this shard.
	Writes, WriteBytes int64
	// Reads counts user Gets routed to this shard.
	Reads int64
	// Files and DiskBytes are the shard's on-disk table count and size,
	// summed over levels.
	Files int
	// DiskBytes is the shard's total on-disk byte size.
	DiskBytes int64
	// CompactionDebt is the shard's pending-compaction byte estimate:
	// L0 at or past its trigger plus each level's excess over target —
	// the backlog the background pool still has to burn down.
	CompactionDebt int64
	// WriteStalls and WriteStallTime total the shard's write-stall
	// episodes and their wall time, the user-facing cost of that debt.
	WriteStalls    int64
	WriteStallTime time.Duration
	// WA and RA are the shard's own write and read amplification.
	WA, RA float64
	// HotBudget is the shard's current TRIAD-MEM hot fraction (the
	// auto-tuner moves it per shard; static configurations report the
	// configured value).
	HotBudget float64
	// OpenSnapshots is the shard's live snapshot-pin count;
	// LeakedSnapshots counts pins the finalizer reclaimed instead of an
	// explicit Close; OverlayEntries is how many preserved old versions
	// the shard's snapshot overlay holds right now. Together they make
	// snapshot hygiene observable per shard instead of internal-only.
	OpenSnapshots   int
	LeakedSnapshots int64
	OverlayEntries  int
	// CacheHits/CacheMisses are the shard's block-cache lookups;
	// CacheBytes is how many cache bytes the shard holds resident right
	// now. Under the shared cache the bytes are not pre-split, so this
	// column shows memory following the hot shards.
	CacheHits, CacheMisses int64
	CacheBytes             int64
	// IO attributes the shard's disk bytes by source (user write, WAL,
	// flush, compaction read/write, snapshot-GC reclaim) — the per-shard
	// WA decomposition. All-zero when observability is disabled.
	IO obs.LedgerSnapshot
}

// ShardStats reports every shard's share of the load, in shard order.
// Under the hash partitioner the shares should be near-uniform; under
// the range partitioner they mirror the keyspace skew, which is exactly
// what this surface exists to make visible.
func (db *DB) ShardStats() []ShardStat {
	out := make([]ShardStat, len(db.shards))
	for i, s := range db.shards {
		m := s.Metrics()
		cs := s.BlockCacheStats()
		st := ShardStat{
			Shard:           i,
			Writes:          m.UserWrites,
			WriteBytes:      m.UserBytes,
			Reads:           m.UserReads,
			CompactionDebt:  s.CompactionDebt(),
			WriteStalls:     m.WriteStalls,
			WriteStallTime:  m.WriteStallTime,
			WA:              m.WriteAmplification(),
			RA:              m.ReadAmplification(),
			HotBudget:       s.HotFraction(),
			OpenSnapshots:   s.OpenSnapshots(),
			LeakedSnapshots: s.LeakedSnapshots(),
			OverlayEntries:  s.OverlaySize(),
			CacheHits:       cs.Hits,
			CacheMisses:     cs.Misses,
			CacheBytes:      cs.Resident,
		}
		if db.ledgers != nil {
			st.IO = db.ledgers[i].Snapshot()
		}
		for _, n := range s.NumLevelFiles() {
			st.Files += n
		}
		for _, b := range s.LevelSizes() {
			st.DiskBytes += b
		}
		out[i] = st
	}
	return out
}

// Stats renders the aggregate tree shape and counters plus a per-shard
// balance table, in the spirit of lsm.DB.Stats.
func (db *DB) Stats() string {
	var b strings.Builder
	m := db.Metrics()
	files := db.NumLevelFiles()
	sizes := db.LevelSizes()

	fmt.Fprintf(&b, "shards: %d (%s partitioner)\n", len(db.shards), db.part.Name())
	fmt.Fprintf(&b, "levels (files/bytes, all shards):\n")
	for l := range files {
		if files[l] == 0 && sizes[l] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  L%d: %d files, %d bytes\n", l, files[l], sizes[l])
	}
	fmt.Fprintf(&b, "flushes: %d (skipped: %d)  compactions: %d (deferred: %d)\n",
		m.Flushes, m.FlushSkips, m.Compactions, m.CompactionsDeferred)
	fmt.Fprintf(&b, "bytes: user %d  logged %d  flushed %d  compacted %d\n",
		m.UserBytes, m.BytesLogged, m.BytesFlushed, m.BytesCompacted)
	fmt.Fprintf(&b, "WA: %.2f (flush-relative %.2f)  RA: %.2f\n",
		m.WriteAmplification(), m.FlushRelativeWA(), m.ReadAmplification())
	fmt.Fprintf(&b, "compaction debt: %d bytes  write stalls: %d (%s total)\n",
		db.CompactionDebt(), m.WriteStalls, m.WriteStallTime)
	if ps := db.sched; ps != nil {
		s := ps.Stats()
		fmt.Fprintf(&b, "background pool: %d workers (%d busy), queued", s.Workers, s.Busy)
		for c := 0; c < bgsched.NumClasses; c++ {
			fmt.Fprintf(&b, " %s=%d", bgsched.Class(c), s.Queued[c])
		}
		fmt.Fprintf(&b, ", %d tasks completed\n", s.Completed)
	}
	if io := db.IOBySource(); io[obs.SrcUser] > 0 {
		ub := float64(io[obs.SrcUser])
		fmt.Fprintf(&b, "WA decomposition (per user byte): wal %.2f + flush %.2f + compaction %.2f  [compaction read %d B, snapshot-gc reclaimed %d B]\n",
			float64(io[obs.SrcWAL])/ub, float64(io[obs.SrcFlush])/ub, float64(io[obs.SrcCompactionWrite])/ub,
			io[obs.SrcCompactionRead], io[obs.SrcSnapshotGC])
	}
	if cs := db.BlockCacheStats(); cs.Hits+cs.Misses > 0 || cs.Capacity > 0 {
		kind := "split per-shard"
		if db.cache != nil {
			kind = "shared"
		}
		fmt.Fprintf(&b, "block cache (%s): %d hits, %d misses (%.1f%% hit rate)  %d/%d B resident  %d evictions, %d scan rejects\n",
			kind, cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Resident, cs.Capacity, cs.Evictions, cs.AdmissionRejects)
	}
	fmt.Fprintf(&b, "commit epoch: %d  snapshots: %d open, %d leaked  overlay: %d entries\n",
		db.CommittedEpoch(), db.OpenSnapshots(), db.LeakedSnapshots(), db.OverlayEntries())
	if lat := db.applyLat; lat.Count() > 0 {
		h := lat.Snapshot()
		fmt.Fprintf(&b, "apply latency: n=%d p50=%s p90=%s p99=%s p99.9=%s max=%s\n",
			h.Count(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Quantile(0.999), h.Max())
	}
	fmt.Fprintf(&b, "per-shard balance (writes/reads/files/disk, WA, RA, hot budget, debt, stalls, snaps, overlay, cache):\n")
	for _, st := range db.ShardStats() {
		fmt.Fprintf(&b, "  s%d: writes=%d (%d B) reads=%d files=%d disk=%d B  WA=%.2f RA=%.2f  hot=%.4f  debt=%d B  stalls=%d (%s)  snaps=%d/%d leaked  overlay=%d  cache=%d/%d hits (%d B)\n",
			st.Shard, st.Writes, st.WriteBytes, st.Reads, st.Files, st.DiskBytes, st.WA, st.RA, st.HotBudget,
			st.CompactionDebt, st.WriteStalls, st.WriteStallTime,
			st.OpenSnapshots, st.LeakedSnapshots, st.OverlayEntries, st.CacheHits, st.CacheHits+st.CacheMisses, st.CacheBytes)
	}
	if ev := db.events; ev.Total() > 0 {
		fmt.Fprintf(&b, "background events: %d total, newest first:\n", ev.Total())
		for _, e := range ev.Events(5) {
			fmt.Fprintf(&b, "  %s\n", e)
		}
	}
	return b.String()
}

// CompactionDebt sums every shard's pending-compaction byte estimate —
// the store-wide backlog the background pool is draining.
func (db *DB) CompactionDebt() int64 {
	var n int64
	for _, s := range db.shards {
		n += s.CompactionDebt()
	}
	return n
}

// IOBySource reports the store-wide I/O attribution: every shard's
// ledger summed. All-zero when observability is disabled.
func (db *DB) IOBySource() obs.LedgerSnapshot {
	var out obs.LedgerSnapshot
	for _, l := range db.ledgers {
		out.AddSnapshot(l.Snapshot())
	}
	return out
}

// LeakedSnapshots reports, summed across shards, how many snapshot pins
// were reclaimed by a finalizer instead of an explicit Close.
func (db *DB) LeakedSnapshots() int64 {
	var n int64
	for _, s := range db.shards {
		n += s.LeakedSnapshots()
	}
	return n
}

// OverlayEntries reports, summed across shards, how many preserved old
// versions the snapshot overlays currently hold.
func (db *DB) OverlayEntries() int {
	n := 0
	for _, s := range db.shards {
		n += s.OverlaySize()
	}
	return n
}
