package shard

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/lsm"
	"repro/internal/vfs"
)

// TestNewRangeValidation: splits must be non-empty and strictly
// ascending.
func TestNewRangeValidation(t *testing.T) {
	if _, err := NewRange(); err == nil {
		t.Fatal("NewRange() with no splits succeeded")
	}
	if _, err := NewRange([]byte("a"), []byte("")); err == nil {
		t.Fatal("empty split accepted")
	}
	if _, err := NewRange([]byte("b"), []byte("a")); err == nil {
		t.Fatal("descending splits accepted")
	}
	if _, err := NewRange([]byte("a"), []byte("a")); err == nil {
		t.Fatal("duplicate splits accepted")
	}
	r, err := NewRange([]byte("g"), []byte("n"), []byte("t"))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", r.NumShards())
	}
}

// TestRangePartitionBoundaries: keys route by binary search over the
// splits, with a split key itself belonging to the shard it starts.
func TestRangePartitionBoundaries(t *testing.T) {
	r, err := NewRange([]byte("g"), []byte("n"), []byte("t"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		key  string
		want int
	}{
		{"", 0}, {"a", 0}, {"fzzz", 0},
		{"g", 1}, {"ga", 1}, {"mzzz", 1},
		{"n", 2}, {"szzz", 2},
		{"t", 3}, {"zzzz", 3},
	}
	for _, c := range cases {
		if got := r.Partition([]byte(c.key), 4); got != c.want {
			t.Fatalf("Partition(%q) = %d, want %d", c.key, got, c.want)
		}
	}
	// Stability: same key, same shard, always.
	for _, c := range cases {
		if r.Partition([]byte(c.key), 4) != r.Partition([]byte(c.key), 4) {
			t.Fatalf("unstable partition for %q", c.key)
		}
	}
}

// TestRangeRangesQuery covers the ownership query's edges: unbounded
// sides, bounds exactly on split keys, and empty ranges.
func TestRangeRangesQuery(t *testing.T) {
	r, err := NewRange([]byte("g"), []byte("n"), []byte("t"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		start, limit string
		want         []int
	}{
		{"", "", []int{0, 1, 2, 3}},     // unbounded
		{"a", "f", []int{0}},            // inside shard 0
		{"a", "g", []int{0}},            // limit exactly on a split: shard 1 excluded
		{"g", "n", []int{1}},            // one whole slice
		{"a", "ga", []int{0, 1}},        // straddles the g split
		{"h", "", []int{1, 2, 3}},       // unbounded right
		{"", "n", []int{0, 1}},          // unbounded left, limit on split
		{"t", "", []int{3}},             // last slice
		{"tzz", "tzzz", []int{3}},       // inside last slice
		{"x", "x", nil},                 // empty range
		{"z", "a", nil},                 // inverted range
		{"g", "g", nil},                 // empty range on a split
		{"zz", "zzz", []int{3}},         // above every split
		{"a", "zzz", []int{0, 1, 2, 3}}, // everything
	}
	for _, c := range cases {
		var start, limit []byte
		if c.start != "" {
			start = []byte(c.start)
		}
		if c.limit != "" {
			limit = []byte(c.limit)
		}
		got, ordered := r.Ranges(start, limit, 4)
		if !ordered {
			t.Fatalf("Ranges(%q, %q) not ordered", c.start, c.limit)
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Fatalf("Ranges(%q, %q) = %v, want %v", c.start, c.limit, got, c.want)
		}
	}
}

// TestRangeNameRoundTrip: Name() encodes the boundaries; parseRangeName
// reconstructs an identically routing partitioner.
func TestRangeNameRoundTrip(t *testing.T) {
	// Splits with bytes hostile to the name encoding: NULs, commas, a
	// closing paren.
	r, err := NewRange([]byte{0x00, 0x2c}, []byte("g"), []byte("t,)x"))
	if err != nil {
		t.Fatal(err)
	}
	name := r.Name()
	if !strings.HasPrefix(name, "range(") {
		t.Fatalf("Name = %q", name)
	}
	r2, err := parseRangeName(name)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Name() != name {
		t.Fatalf("round trip changed name: %q -> %q", name, r2.Name())
	}
	for _, k := range []string{"", "a", "g", "gz", "t,)x", "zz", "\x00,"} {
		if r.Partition([]byte(k), 4) != r2.Partition([]byte(k), 4) {
			t.Fatalf("round-tripped partitioner routes %q differently", k)
		}
	}
	if _, err := parseRangeName("fnv"); err == nil {
		t.Fatal("parseRangeName accepted a non-range name")
	}
	if _, err := parseRangeName("range(zz)"); err == nil {
		t.Fatal("parseRangeName accepted invalid hex")
	}
}

// TestFNVRanges: a hashed scan may touch every shard and is unordered
// except in the trivial single-shard store.
func TestFNVRanges(t *testing.T) {
	p := FNV{}
	shards, ordered := p.Ranges([]byte("a"), []byte("b"), 4)
	if len(shards) != 4 || ordered {
		t.Fatalf("FNV.Ranges = %v ordered=%v, want all 4 unordered", shards, ordered)
	}
	if _, ordered := p.Ranges(nil, nil, 1); !ordered {
		t.Fatal("single-shard FNV must be ordered")
	}
	if shards, _ := p.Ranges([]byte("b"), []byte("a"), 4); shards != nil {
		t.Fatalf("inverted range = %v, want nil", shards)
	}
}

// openRange opens an n-shard range-partitioned store over the "key-%05d"
// keyspace with even splits.
func openRange(t *testing.T, n int, keys int) *DB {
	t.Helper()
	splits := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		splits = append(splits, []byte(fmt.Sprintf("key-%05d", keys*i/n)))
	}
	r, err := NewRange(splits...)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(Options{Shards: n, Engine: smallEngine(), NewFS: MemFS(), Partitioner: r})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestSingleShardScanFastPath is the acceptance check for the scan
// refactor: a range-partitioned scan whose bounds fall inside one
// shard's slice returns that shard's iterator verbatim — the concrete
// *lsm.Iterator, not a merge or concat wrapper — while the hash store
// keeps the merged path and cross-slice scans concatenate.
func TestSingleShardScanFastPath(t *testing.T) {
	const keys = 4000
	db := openRange(t, 4, keys)
	defer db.Close()
	for i := 0; i < keys; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	// Bounds inside shard 0's slice: the raw lsm iterator, no heap.
	it, err := db.NewIterator([]byte("key-00100"), []byte("key-00200"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*lsm.Iterator); !ok {
		t.Fatalf("single-slice scan returned %T, want *lsm.Iterator", it)
	}
	n := 0
	for it.Next() {
		n++
	}
	if n != 100 {
		t.Fatalf("fast-path scan saw %d keys, want 100", n)
	}

	// Bounds spanning two slices: concatenation, still no heap.
	it, err = db.NewIterator([]byte("key-00900"), []byte("key-01100"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*Concat); !ok {
		t.Fatalf("cross-slice scan returned %T, want *Concat", it)
	}
	var prev []byte
	n = 0
	for it.Next() {
		if prev != nil && bytes.Compare(it.Key(), prev) <= 0 {
			t.Fatalf("concat out of order: %q after %q", it.Key(), prev)
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if n != 200 {
		t.Fatalf("concat scan saw %d keys, want 200", n)
	}

	// Unbounded scan: all four slices, concatenated.
	it, err = db.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*Concat); !ok {
		t.Fatalf("full range scan returned %T, want *Concat", it)
	}
	n = 0
	for it.Next() {
		n++
	}
	if n != keys {
		t.Fatalf("full scan saw %d keys, want %d", n, keys)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}

	// Empty range: no iterator machinery at all.
	it, err = db.NewIterator([]byte("key-00500"), []byte("key-00500"))
	if err != nil {
		t.Fatal(err)
	}
	if it.Next() {
		t.Fatal("empty range yielded an entry")
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}

	// The hash store keeps the merged path for multi-shard stores...
	hdb := openMem(t, 4)
	defer hdb.Close()
	if err := hdb.Put([]byte("a"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	hit, err := hdb.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hit.Close()
	if _, ok := hit.(*Merged); !ok {
		t.Fatalf("hash scan returned %T, want *Merged", hit)
	}
	// ...but a single-shard store is trivially ordered and skips it.
	one := openMem(t, 1)
	defer one.Close()
	oit, err := one.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer oit.Close()
	if _, ok := oit.(*lsm.Iterator); !ok {
		t.Fatalf("1-shard scan returned %T, want *lsm.Iterator", oit)
	}
}

// TestScanDifferential drives identical random workloads into a
// hash-partitioned store, a range-partitioned store (with splits that
// leave shards empty), and a map oracle, then compares randomized
// bounded scans — including bounds exactly on split keys and inverted
// bounds — entry for entry across all three.
func TestScanDifferential(t *testing.T) {
	const keyspace = 3000
	hdb := openMem(t, 4)
	defer hdb.Close()
	// Splits at 1/3 and 2/3 plus one above every real key, so the last
	// shard stays empty and the middle boundary keys get exercised.
	r, err := NewRange(
		[]byte(fmt.Sprintf("key-%05d", keyspace/3)),
		[]byte(fmt.Sprintf("key-%05d", 2*keyspace/3)),
		[]byte("key-99999"),
	)
	if err != nil {
		t.Fatal(err)
	}
	rdb, err := Open(Options{Shards: 4, Engine: smallEngine(), NewFS: MemFS(), Partitioner: r})
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()

	oracle := map[string]string{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 15_000; i++ {
		k := fmt.Sprintf("key-%05d", rng.Intn(keyspace))
		if rng.Intn(10) == 0 {
			delete(oracle, k)
			if err := hdb.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			if err := rdb.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			continue
		}
		v := fmt.Sprintf("v%d", i)
		oracle[k] = v
		if err := hdb.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		if err := rdb.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := hdb.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := rdb.Flush(); err != nil {
		t.Fatal(err)
	}

	sorted := make([]string, 0, len(oracle))
	for k := range oracle {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	expect := func(lo, hi []byte) [][2]string {
		var out [][2]string
		for _, k := range sorted {
			if lo != nil && k < string(lo) {
				continue
			}
			if hi != nil && k >= string(hi) {
				break
			}
			out = append(out, [2]string{k, oracle[k]})
		}
		return out
	}
	collect := func(db *DB, lo, hi []byte) [][2]string {
		it, err := db.NewIterator(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		var out [][2]string
		for it.Next() {
			out = append(out, [2]string{string(it.Key()), string(it.Value())})
		}
		return out
	}

	bound := func() []byte {
		switch rng.Intn(5) {
		case 0:
			return nil
		case 1: // exactly a split key
			return []byte(fmt.Sprintf("key-%05d", []int{keyspace / 3, 2 * keyspace / 3}[rng.Intn(2)]))
		default:
			return []byte(fmt.Sprintf("key-%05d", rng.Intn(keyspace+10)))
		}
	}
	for trial := 0; trial < 60; trial++ {
		lo, hi := bound(), bound()
		want := expect(lo, hi)
		if got := collect(hdb, lo, hi); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d [%q,%q): hash scan diverged from oracle\n got %d entries\nwant %d entries",
				trial, lo, hi, len(got), len(want))
		}
		if got := collect(rdb, lo, hi); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d [%q,%q): range scan diverged from oracle\n got %d entries\nwant %d entries",
				trial, lo, hi, len(got), len(want))
		}
	}
}

// TestReopenMismatchFailsFast is the metadata regression suite: a store
// created with 4 shards refuses to open with 2 or 8, with a changed
// partitioner, or with shard directories swapped — and reopens cleanly
// with the original configuration or with none (stored adoption).
func TestReopenMismatchFailsFast(t *testing.T) {
	fses := make([]vfs.FS, 8)
	for i := range fses {
		fses[i] = vfs.NewMemFS()
	}
	newFS := func(i int) (vfs.FS, error) { return fses[i], nil }
	r4, err := NewRange([]byte("b"), []byte("c"), []byte("d"))
	if err != nil {
		t.Fatal(err)
	}

	db, err := Open(Options{Shards: 4, Engine: smallEngine(), NewFS: newFS, Partitioner: r4})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"apple", "banana", "cherry", "date"} {
		if err := db.Put([]byte(k), []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Fewer shards than creation.
	if _, err := Open(Options{Shards: 2, Engine: smallEngine(), NewFS: newFS}); err == nil ||
		!strings.Contains(err.Error(), "created with 4 shards") {
		t.Fatalf("reopen with 2 shards: %v", err)
	}
	// More shards than creation.
	if _, err := Open(Options{Shards: 8, Engine: smallEngine(), NewFS: newFS}); err == nil ||
		!strings.Contains(err.Error(), "created with 4 shards") {
		t.Fatalf("reopen with 8 shards: %v", err)
	}
	// Different partitioner at the right count.
	if _, err := Open(Options{Shards: 4, Engine: smallEngine(), NewFS: newFS, Partitioner: FNV{}}); err == nil ||
		!strings.Contains(err.Error(), "partitioner") {
		t.Fatalf("reopen with fnv: %v", err)
	}
	// Different splits at the right count.
	rBad, err := NewRange([]byte("x"), []byte("y"), []byte("z"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Shards: 4, Engine: smallEngine(), NewFS: newFS, Partitioner: rBad}); err == nil {
		t.Fatal("reopen with different splits succeeded")
	}
	// Shuffled shard directories.
	swapped := func(i int) (vfs.FS, error) { return fses[[4]int{1, 0, 2, 3}[i]], nil }
	if _, err := Open(Options{Shards: 4, Engine: smallEngine(), NewFS: swapped}); err == nil ||
		!strings.Contains(err.Error(), "shuffled") {
		t.Fatalf("shuffled reopen: %v", err)
	}

	// nil partitioner adopts the stored range layout; reads route right.
	db, err = Open(Options{Shards: 4, Engine: smallEngine(), NewFS: newFS})
	if err != nil {
		t.Fatal(err)
	}
	if db.Partitioner().Name() != r4.Name() {
		t.Fatalf("adopted %q, want %q", db.Partitioner().Name(), r4.Name())
	}
	for _, k := range []string{"apple", "banana", "cherry", "date"} {
		if v, err := db.Get([]byte(k)); err != nil || string(v) != k {
			t.Fatalf("after adoption Get(%s) = %q, %v", k, v, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// A corrupt record is an error, not a fallback.
	f, err := fses[2].Create(storeMetaName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("TRIADSTORE v1 00000000 {}\n")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(Options{Shards: 4, Engine: smallEngine(), NewFS: newFS}); err == nil {
		t.Fatal("corrupt STORE record accepted")
	}
	// An unknown future version is an error too.
	f, _ = fses[2].Create(storeMetaName)
	f.Write([]byte("TRIADSTORE v9 00000000 {}\n"))
	f.Close()
	if _, err := Open(Options{Shards: 4, Engine: smallEngine(), NewFS: newFS}); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: %v", err)
	}

	// A store predating the metadata (no STORE anywhere) opens and gets
	// records written.
	for i := 0; i < 4; i++ {
		if err := fses[i].Remove(storeMetaName); err != nil {
			t.Fatal(err)
		}
	}
	db, err = Open(Options{Shards: 4, Engine: smallEngine(), NewFS: newFS, Partitioner: r4})
	if err != nil {
		t.Fatalf("legacy store reopen: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !fses[i].Exists(storeMetaName) {
			t.Fatalf("shard %d missing refreshed STORE record", i)
		}
	}
}

// TestCustomPartitionerMetadata: a store created with a custom
// partitioner reopens with the same implementation, but cannot be
// reconstructed from metadata alone.
func TestCustomPartitionerMetadata(t *testing.T) {
	fses := []vfs.FS{vfs.NewMemFS(), vfs.NewMemFS(), vfs.NewMemFS()}
	newFS := func(i int) (vfs.FS, error) { return fses[i], nil }
	opts := Options{Shards: 3, Engine: smallEngine(), NewFS: newFS, Partitioner: modPartitioner{}}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Same implementation: fine.
	if db, err = Open(opts); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// nil cannot reconstruct a custom partitioner.
	if _, err := Open(Options{Shards: 3, Engine: smallEngine(), NewFS: newFS}); err == nil ||
		!strings.Contains(err.Error(), "custom partitioner") {
		t.Fatalf("custom adoption: %v", err)
	}
}

// TestRangeShardCountMismatch: a Range whose implied count differs from
// Options.Shards is rejected up front.
func TestRangeShardCountMismatch(t *testing.T) {
	r, err := NewRange([]byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Shards: 4, Engine: smallEngine(), NewFS: MemFS(), Partitioner: r}); err == nil ||
		!strings.Contains(err.Error(), "implies 2 shards") {
		t.Fatalf("count mismatch: %v", err)
	}
}

// TestShardStats: the per-shard balance surface reports each shard's
// writes, and a range store shows the skew hash hides.
func TestShardStats(t *testing.T) {
	db := openRange(t, 4, 4000)
	defer db.Close()
	// All writes land below the first split: shard 0 takes everything.
	for i := 0; i < 500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%05d", i)), bytes.Repeat([]byte("x"), 32)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Get([]byte("key-00001")); err != nil {
		t.Fatal(err)
	}
	stats := db.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats len = %d", len(stats))
	}
	if stats[0].Writes != 500 || stats[0].WriteBytes == 0 || stats[0].Reads != 1 {
		t.Fatalf("shard 0 stats = %+v", stats[0])
	}
	for i := 1; i < 4; i++ {
		if stats[i].Writes != 0 {
			t.Fatalf("shard %d absorbed %d writes, want 0", i, stats[i].Writes)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	stats = db.ShardStats()
	if stats[0].Files == 0 || stats[0].DiskBytes == 0 || stats[0].WA == 0 {
		t.Fatalf("shard 0 post-flush stats = %+v", stats[0])
	}
	if !strings.Contains(db.Stats(), "per-shard balance") {
		t.Fatalf("Stats missing balance table:\n%s", db.Stats())
	}
	if _, err := db.Get([]byte("missing")); !errors.Is(err, lsm.ErrNotFound) {
		t.Fatalf("Get(missing) = %v", err)
	}
}
