package shard

// Partitioner maps a key to the shard that owns it. Implementations must
// be deterministic and stable across process restarts: a store written
// with one partitioner (and shard count) must be reopened with the same
// one, or keys become invisible on the wrong shard.
//
// The interface exists so a range partitioner (for locality-preserving
// scans and resharding) can slot in later without touching the router.
type Partitioner interface {
	// Partition returns the owning shard index for key, in [0, n).
	// n is always >= 1.
	Partition(key []byte, n int) int
	// Name identifies the partitioner in Stats output and (eventually)
	// store metadata.
	Name() string
}

// FNV hash-partitions keys with 64-bit FNV-1a. It is the default: cheap
// (no allocation, one pass over the key), uniform enough that shards stay
// balanced under both sequential and random keyspaces, and independent of
// key length patterns.
type FNV struct{}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Partition implements Partitioner.
func (FNV) Partition(key []byte, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	// Avalanche finalizer (murmur3): the modulo below only sees the low
	// bits, and raw FNV low bits retain structure from trailing key
	// bytes (sequential key suffixes would stripe across shards).
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(n))
}

// Name implements Partitioner.
func (FNV) Name() string { return "fnv" }
