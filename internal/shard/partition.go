package shard

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Partitioner maps a key to the shard that owns it. Implementations must
// be deterministic and stable across process restarts: a store written
// with one partitioner (and shard count) must be reopened with the same
// one, or keys become invisible on the wrong shard. Open persists the
// partitioner's Name in the store metadata and validates it on reopen,
// so a mismatch fails fast instead of misrouting.
type Partitioner interface {
	// Partition returns the owning shard index for key, in [0, n).
	// n is always >= 1.
	Partition(key []byte, n int) int
	// Ranges answers the scan-planning ownership query: which of n
	// shards may hold keys of [start, limit) (nil bounds are unbounded),
	// in visiting order, and whether that order is key order — i.e.
	// every listed shard owns a single contiguous key slice and the
	// slices ascend, so a scan can concatenate the per-shard iterators
	// instead of k-way merging them. Hash partitioners return every
	// shard with ordered == false (unless n == 1, where any order is
	// key order).
	Ranges(start, limit []byte, n int) (shards []int, ordered bool)
	// Name identifies the partitioner in Stats output and in the
	// durable store metadata; it must encode everything routing depends
	// on (the Range partitioner's Name includes its split keys), so
	// equal names imply identical routing.
	Name() string
}

// FNV hash-partitions keys with 64-bit FNV-1a. It is the default: cheap
// (no allocation, one pass over the key), uniform enough that shards stay
// balanced under both sequential and random keyspaces, and independent of
// key length patterns.
type FNV struct{}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Partition implements Partitioner.
func (FNV) Partition(key []byte, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	// Avalanche finalizer (murmur3): the modulo below only sees the low
	// bits, and raw FNV low bits retain structure from trailing key
	// bytes (sequential key suffixes would stripe across shards).
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(n))
}

// Ranges implements Partitioner: a hashed range scatters over every
// shard, so all of them may hold keys of [start, limit) and no visiting
// order is key order (except the trivial single-shard store).
func (FNV) Ranges(start, limit []byte, n int) ([]int, bool) {
	if emptyRange(start, limit) {
		return nil, true
	}
	shards := make([]int, n)
	for i := range shards {
		shards[i] = i
	}
	return shards, n <= 1
}

// Name implements Partitioner.
func (FNV) Name() string { return "fnv" }

// Range partitions the keyspace by sorted split keys: with splits
// s0 < s1 < ... < s(m-1), shard 0 owns keys below s0, shard i owns
// [s(i-1), si), and shard m owns keys at or above s(m-1) — m+1 shards
// total. Contiguous key ranges stay on one shard, so range scans are
// shard-local (no cross-shard merge) at the price of balance being the
// caller's problem: splits must match the keyspace, or shards skew.
type Range struct {
	splits [][]byte
}

// NewRange builds a Range partitioner from strictly ascending, non-empty
// split keys. len(splits)+1 shards are implied; Open rejects a Range
// whose implied count differs from Options.Shards.
func NewRange(splits ...[]byte) (*Range, error) {
	if len(splits) == 0 {
		return nil, fmt.Errorf("shard: range partitioner needs at least one split key")
	}
	cp := make([][]byte, len(splits))
	for i, s := range splits {
		if len(s) == 0 {
			return nil, fmt.Errorf("shard: range split %d is empty", i)
		}
		if i > 0 && bytes.Compare(splits[i-1], s) >= 0 {
			return nil, fmt.Errorf("shard: range splits not strictly ascending at %d (%q >= %q)",
				i, splits[i-1], s)
		}
		cp[i] = append([]byte(nil), s...)
	}
	return &Range{splits: cp}, nil
}

// NumShards reports the shard count the splits imply (len(splits)+1).
func (r *Range) NumShards() int { return len(r.splits) + 1 }

// Splits returns a copy of the split keys, ascending.
func (r *Range) Splits() [][]byte {
	out := make([][]byte, len(r.splits))
	for i, s := range r.splits {
		out[i] = append([]byte(nil), s...)
	}
	return out
}

// Partition implements Partitioner: the owning shard is the number of
// splits at or below key (binary search), clamped into [0, n) so a
// misconfigured n cannot index out of range (Open validates n ==
// NumShards up front).
func (r *Range) Partition(key []byte, n int) int {
	idx := sort.Search(len(r.splits), func(i int) bool {
		return bytes.Compare(key, r.splits[i]) < 0
	})
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Ranges implements Partitioner: the shards whose slices intersect
// [start, limit), ascending. The order is key order by construction, so
// scans concatenate instead of merging. A limit equal to a split key
// excludes the shard that starts at it.
func (r *Range) Ranges(start, limit []byte, n int) ([]int, bool) {
	if emptyRange(start, limit) {
		return nil, true
	}
	lo := 0
	if start != nil {
		lo = r.Partition(start, n)
	}
	hi := n - 1
	if limit != nil {
		// Keys of the scan are strictly below limit, so the last
		// relevant shard is the one owning the keys just under it:
		// the number of splits strictly below limit.
		h := sort.Search(len(r.splits), func(i int) bool {
			return bytes.Compare(limit, r.splits[i]) <= 0
		})
		if h > n-1 {
			h = n - 1
		}
		hi = h
	}
	shards := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		shards = append(shards, i)
	}
	return shards, true
}

// Name implements Partitioner. The split keys are hex-encoded into the
// name, so two Range partitioners share a name exactly when they route
// identically — the property the store-metadata validation relies on.
func (r *Range) Name() string {
	enc := make([]string, len(r.splits))
	for i, s := range r.splits {
		enc[i] = hex.EncodeToString(s)
	}
	return "range(" + strings.Join(enc, ",") + ")"
}

// parseRangeName reconstructs a Range partitioner from its Name(),
// used when reopening a store whose metadata recorded one.
func parseRangeName(name string) (*Range, error) {
	body, ok := strings.CutPrefix(name, "range(")
	if !ok || !strings.HasSuffix(body, ")") {
		return nil, fmt.Errorf("shard: %q is not a range partitioner name", name)
	}
	body = strings.TrimSuffix(body, ")")
	parts := strings.Split(body, ",")
	splits := make([][]byte, len(parts))
	for i, p := range parts {
		b, err := hex.DecodeString(p)
		if err != nil {
			return nil, fmt.Errorf("shard: bad split %d in %q: %w", i, name, err)
		}
		splits[i] = b
	}
	return NewRange(splits...)
}

// emptyRange reports whether [start, limit) can hold no key.
func emptyRange(start, limit []byte) bool {
	return start != nil && limit != nil && bytes.Compare(start, limit) >= 0
}
