package shard

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/lsm"
	"repro/internal/vfs"
)

// smallEngine returns a per-shard configuration tiny enough that the
// tests exercise flushes and compactions, not just the memtable.
func smallEngine() lsm.Options {
	o := lsm.TriadOptions(nil)
	o.MemtableBytes = 32 << 10
	o.CommitLogBytes = 128 << 10
	o.FlushThresholdBytes = 16 << 10
	o.BaseLevelBytes = 256 << 10
	o.TargetFileBytes = 64 << 10
	return o
}

func openMem(t *testing.T, shards int) *DB {
	t.Helper()
	db, err := Open(Options{Shards: shards, Engine: smallEngine(), NewFS: MemFS()})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestBehaviorParity drives the same pseudo-random put/delete/get
// sequence against a 4-shard DB and a map oracle, then checks every key
// and a full iteration — the same behavioral contract lsm.DB satisfies.
func TestBehaviorParity(t *testing.T) {
	db := openMem(t, 4)
	defer db.Close()

	oracle := map[string]string{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20_000; i++ {
		k := fmt.Sprintf("key-%05d", rng.Intn(5000))
		switch rng.Intn(10) {
		case 0: // delete
			delete(oracle, k)
			if err := db.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
		default:
			v := fmt.Sprintf("val-%d", i)
			oracle[k] = v
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
	}

	for k, want := range oracle {
		got, err := db.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		if string(got) != want {
			t.Fatalf("Get(%s) = %q, want %q", k, got, want)
		}
	}
	if _, err := db.Get([]byte("absent-key")); !errors.Is(err, lsm.ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}

	it, err := db.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	got := map[string]string{}
	for it.Next() {
		got[string(it.Key())] = string(it.Value())
	}
	if len(got) != len(oracle) {
		t.Fatalf("iterated %d keys, oracle has %d", len(got), len(oracle))
	}
	for k, v := range oracle {
		if got[k] != v {
			t.Fatalf("iterator: %s = %q, want %q", k, got[k], v)
		}
	}
}

// TestIteratorGloballySorted checks the k-way merge yields strictly
// ascending keys across shard boundaries, respects [start, limit), and
// yields the right entry count.
func TestIteratorGloballySorted(t *testing.T) {
	db := openMem(t, 8)
	defer db.Close()

	var keys []string
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("k%06d", i*7%3000)
		keys = append(keys, k)
		if err := db.Put([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil { // exercise the on-disk read path too
		t.Fatal(err)
	}
	sort.Strings(keys)

	it, err := db.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var prev []byte
	n := 0
	for it.Next() {
		if prev != nil && bytes.Compare(it.Key(), prev) <= 0 {
			t.Fatalf("keys out of order: %q after %q", it.Key(), prev)
		}
		if string(it.Key()) != keys[n] {
			t.Fatalf("entry %d = %q, want %q", n, it.Key(), keys[n])
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if n != 3000 {
		t.Fatalf("iterated %d entries, want 3000", n)
	}

	// Bounded scan. (The earlier defer bound the first iterator's
	// receiver, so this one needs its own Close.)
	it, err = db.NewIterator([]byte("k000100"), []byte("k000200"))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n = 0
	for it.Next() {
		k := string(it.Key())
		if k < "k000100" || k >= "k000200" {
			t.Fatalf("key %q outside [k000100, k000200)", k)
		}
		n++
	}
	if n != 100 {
		t.Fatalf("bounded scan saw %d keys, want 100", n)
	}
}

// TestBatchFanout applies one batch whose keys span every shard and
// checks routing, atomum-per-shard visibility, reuse protection and
// Reset.
func TestBatchFanout(t *testing.T) {
	db := openMem(t, 4)
	defer db.Close()

	var b Batch
	for i := 0; i < 400; i++ {
		b.Put([]byte(fmt.Sprintf("batch-%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	b.Delete([]byte("batch-0007"))
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}

	// Reuse without Reset must fail; after Reset it must work.
	if err := db.Apply(&b); err == nil {
		t.Fatal("re-Apply of committed batch succeeded")
	}
	b.Reset()
	b.Put([]byte("after-reset"), []byte("ok"))
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("batch-%04d", i)
		v, err := db.Get([]byte(k))
		if i == 7 {
			if !errors.Is(err, lsm.ErrNotFound) {
				t.Fatalf("deleted key %s: err = %v", k, err)
			}
			continue
		}
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) = %q, %v", k, v, err)
		}
	}

	// The batch must actually have fanned out: with 400 fnv-hashed keys
	// every shard should have received writes.
	for i := 0; i < db.NumShards(); i++ {
		if db.Shard(i).Metrics().UserWrites == 0 {
			t.Fatalf("shard %d received no batch writes", i)
		}
	}
}

// TestPartitionerDistributionAndStability: fnv must spread keys roughly
// evenly and always send the same key to the same shard.
func TestPartitionerDistributionAndStability(t *testing.T) {
	const n, keys = 8, 20_000
	counts := make([]int, n)
	p := FNV{}
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("user:%d", i))
		s := p.Partition(k, n)
		if s2 := p.Partition(k, n); s2 != s {
			t.Fatalf("unstable partition for %s: %d then %d", k, s, s2)
		}
		counts[s]++
	}
	want := keys / n
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("shard %d holds %d of %d keys (want ~%d): %v", i, c, keys, want, counts)
		}
	}
	if p.Partition([]byte("x"), 1) != 0 {
		t.Fatal("n=1 must route to shard 0")
	}
}

// modPartitioner routes by the last key byte — a stand-in for a custom
// (e.g. range) partitioner plugged through the interface.
type modPartitioner struct{}

func (modPartitioner) Partition(key []byte, n int) int {
	if len(key) == 0 {
		return 0
	}
	return int(key[len(key)-1]) % n
}
func (modPartitioner) Ranges(start, limit []byte, n int) ([]int, bool) {
	shards := make([]int, n)
	for i := range shards {
		shards[i] = i
	}
	return shards, n <= 1
}
func (modPartitioner) Name() string { return "mod-last-byte" }

func TestCustomPartitioner(t *testing.T) {
	db, err := Open(Options{
		Shards:      3,
		Engine:      smallEngine(),
		NewFS:       MemFS(),
		Partitioner: modPartitioner{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 300; i++ {
		k := []byte(fmt.Sprintf("k-%03d", i))
		if err := db.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		// The owning shard must hold the key; a direct read against it
		// proves the router and the partitioner agree.
		if _, err := db.Shard(modPartitioner{}.Partition(k, 3)).Get(k); err != nil {
			t.Fatalf("key %s not on its partitioned shard: %v", k, err)
		}
	}
}

// TestRecovery closes a sharded store and reopens it over the same
// filesystems: every shard must replay its own WAL/manifest.
func TestRecovery(t *testing.T) {
	fses := []vfs.FS{vfs.NewMemFS(), vfs.NewMemFS(), vfs.NewMemFS()}
	newFS := func(i int) (vfs.FS, error) { return fses[i], nil }
	opts := Options{Shards: 3, Engine: smallEngine(), NewFS: newFS}

	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete([]byte("key-00042")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%05d", i)
		v, err := db.Get([]byte(k))
		if i == 42 {
			if !errors.Is(err, lsm.ErrNotFound) {
				t.Fatalf("deleted key survived recovery: %v", err)
			}
			continue
		}
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("after recovery Get(%s) = %q, %v", k, v, err)
		}
	}
}

// TestConcurrentWriters hammers all shards from parallel goroutines
// (run under -race in CI) and verifies the metrics roll-up sees every
// write exactly once.
func TestConcurrentWriters(t *testing.T) {
	db := openMem(t, 4)
	defer db.Close()

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := []byte(fmt.Sprintf("w%d-%05d", w, i))
				if err := db.Put(k, []byte("v")); err != nil {
					errCh <- err
					return
				}
				if i%3 == 0 {
					if _, err := db.Get(k); err != nil {
						errCh <- fmt.Errorf("read-own-write %s: %w", k, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if got := db.Metrics().UserWrites; got != workers*perWorker {
		t.Fatalf("metrics roll-up UserWrites = %d, want %d", got, workers*perWorker)
	}
}

// TestFlushAndAggregates: a coordinated Flush must push every shard's
// memtable to disk, visible through the summed level counts.
func TestFlushAndAggregates(t *testing.T) {
	db := openMem(t, 4)
	defer db.Close()
	for i := 0; i < 4000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%05d", i)), bytes.Repeat([]byte("x"), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	files := db.NumLevelFiles()
	total := 0
	for _, n := range files {
		total += n
	}
	if total == 0 {
		t.Fatal("no files on any level after coordinated Flush")
	}
	var sizeTotal int64
	for _, s := range db.LevelSizes() {
		sizeTotal += s
	}
	if sizeTotal == 0 {
		t.Fatal("LevelSizes sums to zero after Flush")
	}
	stats := db.Stats()
	if !bytes.Contains([]byte(stats), []byte("shards: 4 (fnv partitioner)")) {
		t.Fatalf("Stats missing shard header:\n%s", stats)
	}
	// Per-shard flushes happened on more than one shard (the keyspace is
	// hashed, so no shard stays empty at this volume).
	flushedShards := 0
	for i := 0; i < db.NumShards(); i++ {
		if db.Shard(i).Metrics().Flushes > 0 {
			flushedShards++
		}
	}
	if flushedShards < 2 {
		t.Fatalf("only %d shards flushed; sharding not spreading load", flushedShards)
	}
}

// TestCloseErrClosed: operations after Close surface lsm.ErrClosed, and
// double Close is safe.
func TestCloseErrClosed(t *testing.T) {
	db := openMem(t, 2)
	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := db.Put([]byte("b"), []byte("2")); !errors.Is(err, lsm.ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if _, err := db.Get([]byte("a")); !errors.Is(err, lsm.ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
}

// TestDivideBudgets: dividing then summing stays within the original
// budget, and floors keep tiny configurations alive.
func TestDivideBudgets(t *testing.T) {
	o := lsm.DefaultOptions(nil)
	o.MemtableBytes = 4 << 20
	d := DivideBudgets(o, 8)
	if d.MemtableBytes != (4<<20)/8 {
		t.Fatalf("MemtableBytes = %d", d.MemtableBytes)
	}
	if got := DivideBudgets(o, 1); got.MemtableBytes != o.MemtableBytes {
		t.Fatal("n=1 must be identity")
	}
	o.MemtableBytes = 64 << 10
	if d := DivideBudgets(o, 16); d.MemtableBytes < 32<<10 {
		t.Fatalf("floor not applied: %d", d.MemtableBytes)
	}
	// Zero-valued knobs stay zero (so withDefaults still fills them).
	o.BlockCacheBytes = 0
	if d := DivideBudgets(o, 4); d.BlockCacheBytes != 0 {
		t.Fatalf("zero sentinel scaled: %d", d.BlockCacheBytes)
	}
}

// TestOpenValidation covers constructor error paths.
func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{Shards: 2, Engine: smallEngine()}); err == nil {
		t.Fatal("Open without NewFS succeeded")
	}
	// A failing factory mid-open must close the shards already opened.
	calls := 0
	_, err := Open(Options{
		Shards: 3,
		Engine: smallEngine(),
		NewFS: func(i int) (vfs.FS, error) {
			calls++
			if i == 2 {
				return nil, errors.New("boom")
			}
			return vfs.NewMemFS(), nil
		},
	})
	if err == nil {
		t.Fatal("Open with failing factory succeeded")
	}
	if calls != 3 {
		t.Fatalf("factory called %d times, want 3", calls)
	}
	// Shards < 1 degrades to a single shard.
	db, err := Open(Options{Shards: 0, Engine: smallEngine(), NewFS: MemFS()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", db.NumShards())
	}
}
