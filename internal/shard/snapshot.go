package shard

import (
	"errors"
	"sync"

	"repro/internal/lsm"
)

// Snapshot is a pinned read view spanning every shard, taken at one
// epoch of the store-wide commit clock: NewSnapshot draws a ticket
// covering all shards, and each shard is captured when that ticket
// reaches the head of the shard's commit chain — after every batch with
// an earlier epoch has committed there, before any with a later one
// can. All shards therefore pin the same logical instant (the epoch)
// even though the captures run at different wall-clock moments, and no
// shard's write lock is held across another shard's capture: writes to
// an already-captured shard proceed while the rest of the capture
// drains. A multi-shard batch is either entirely visible (epoch below
// the snapshot's) or entirely invisible — a scan can never observe half
// of a cross-shard commit, and concurrent conflicting batches appear in
// exactly their serialized epoch order.
//
// Close releases every shard's pin; iterators opened from the snapshot
// keep the underlying per-shard pins alive until they close.
type Snapshot struct {
	db    *DB
	snaps []*lsm.Snapshot
	epoch uint64

	mu     sync.Mutex
	closed bool
}

// NewSnapshot pins all shards at one epoch. The captures run
// sequentially: each shard's commit chain drains toward the ticket
// concurrently no matter when we arrive at its gate, so by the time
// shard j is captured, shard j+1's queue has been draining in the
// background — visiting in order costs roughly the slowest single
// chain, and none of the per-shard goroutine fan-out.
func (db *DB) NewSnapshot() (*Snapshot, error) {
	t := db.clk.allocate(db.idxAll)
	snaps := make([]*lsm.Snapshot, len(db.shards))
	var firstErr error
	for j := range db.shards {
		db.clk.waitTurn(t, j)
		if firstErr == nil {
			snaps[j], firstErr = db.shards[j].NewSnapshotAt(t.epoch)
		}
		db.clk.shardDone(t, j)
	}
	db.clk.finish(t)
	if firstErr != nil {
		for _, s := range snaps {
			if s != nil {
				s.Close()
			}
		}
		return nil, firstErr
	}
	db.openSnaps.Add(1)
	return &Snapshot{db: db, snaps: snaps, epoch: t.epoch}, nil
}

// Epoch reports the snapshot's position in the store-wide commit order:
// the snapshot observes exactly the batches whose epoch is below it.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Get returns the value stored under key as of the snapshot, or
// lsm.ErrNotFound; lsm.ErrSnapshotClosed after Close.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	return s.snaps[s.db.part.Partition(key, len(s.snaps))].Get(key)
}

// NewIterator returns a streaming scan of [start, limit) over the
// snapshot's pinned views, planned like DB.NewIterator: one owning
// shard yields that shard's iterator verbatim, contiguous slices are
// concatenated, hashed ownership is merged by a k-way heap.
func (s *Snapshot) NewIterator(start, limit []byte) (Iter, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, lsm.ErrSnapshotClosed
	}
	s.mu.Unlock()
	idx, ordered := s.db.part.Ranges(start, limit, len(s.snaps))
	return s.newIteratorPlanned(start, limit, idx, ordered, nil)
}

// newIteratorPlanned builds the iterator for an already-planned scan
// (idx/ordered from the partitioner's Ranges); owned, when non-nil, is
// a single-use snapshot the iterator must close with itself.
func (s *Snapshot) newIteratorPlanned(start, limit []byte, idx []int, ordered bool, owned *Snapshot) (Iter, error) {
	if len(idx) == 0 {
		if owned != nil {
			owned.Close()
		}
		return &Concat{}, nil
	}
	its := make([]*lsm.Iterator, len(idx))
	errs := make([]error, len(idx))
	var wg sync.WaitGroup
	for j, i := range idx {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			its[j], errs[j] = s.snaps[i].NewIterator(start, limit)
		}(j, i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, it := range its {
			if it != nil {
				it.Close()
			}
		}
		if owned != nil {
			owned.Close()
		}
		return nil, err
	}
	if ordered {
		if len(its) == 1 && owned == nil {
			// Single-shard fast path: the scan is entirely one shard's,
			// so its iterator is the scan — no wrapper at all. (A
			// single-use snapshot still needs the wrapper to die with
			// the iterator.)
			return its[0], nil
		}
		return &Concat{its: its, snap: owned}, nil
	}
	return newMerged(its, owned), nil
}

// Close releases every shard's pin. Idempotent; open iterators stay
// valid until they close.
func (s *Snapshot) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.db.openSnaps.Add(-1)
	var err error
	for _, snap := range s.snaps {
		if e := snap.Close(); err == nil {
			err = e
		}
	}
	return err
}

// OpenSnapshots reports the number of live (unclosed) store-level
// snapshots.
func (db *DB) OpenSnapshots() int { return int(db.openSnaps.Load()) }
