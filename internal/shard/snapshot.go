package shard

import (
	"errors"
	"sync"

	"repro/internal/lsm"
)

// Snapshot is a pinned read view spanning every shard, taken at one
// global instant: NewSnapshot quiesces cross-shard Apply batches (the
// apply barrier) and then holds every shard's write lock simultaneously
// while the per-shard sequence numbers are captured, so a multi-shard
// batch is either entirely visible or entirely invisible — a scan can
// never observe half of a cross-shard commit. Reads route exactly like
// the live store: point lookups to the owning shard's pinned view,
// scans planned by the partitioner's ownership query.
//
// Close releases every shard's pin; iterators opened from the snapshot
// keep the underlying per-shard pins alive until they close.
type Snapshot struct {
	db    *DB
	snaps []*lsm.Snapshot

	mu     sync.Mutex
	closed bool
}

// NewSnapshot pins all shards at one global instant.
func (db *DB) NewSnapshot() (*Snapshot, error) {
	// The write half of the apply barrier: no cross-shard Apply is
	// mid-fan-out while the captures run (Apply holds the read half for
	// its whole fan-out), and the simultaneous per-shard write locks in
	// lsm.NewSnapshots make the capture a single global instant.
	db.applyMu.Lock()
	snaps, err := lsm.NewSnapshots(db.shards)
	db.applyMu.Unlock()
	if err != nil {
		return nil, err
	}
	db.openSnaps.Add(1)
	return &Snapshot{db: db, snaps: snaps}, nil
}

// Get returns the value stored under key as of the snapshot, or
// lsm.ErrNotFound; lsm.ErrSnapshotClosed after Close.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	return s.snaps[s.db.part.Partition(key, len(s.snaps))].Get(key)
}

// NewIterator returns a streaming scan of [start, limit) over the
// snapshot's pinned views, planned like DB.NewIterator: one owning
// shard yields that shard's iterator verbatim, contiguous slices are
// concatenated, hashed ownership is merged by a k-way heap.
func (s *Snapshot) NewIterator(start, limit []byte) (Iter, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, lsm.ErrSnapshotClosed
	}
	s.mu.Unlock()
	idx, ordered := s.db.part.Ranges(start, limit, len(s.snaps))
	return s.newIteratorPlanned(start, limit, idx, ordered, nil)
}

// newIteratorPlanned builds the iterator for an already-planned scan
// (idx/ordered from the partitioner's Ranges); owned, when non-nil, is
// a single-use snapshot the iterator must close with itself.
func (s *Snapshot) newIteratorPlanned(start, limit []byte, idx []int, ordered bool, owned *Snapshot) (Iter, error) {
	if len(idx) == 0 {
		if owned != nil {
			owned.Close()
		}
		return &Concat{}, nil
	}
	its := make([]*lsm.Iterator, len(idx))
	errs := make([]error, len(idx))
	var wg sync.WaitGroup
	for j, i := range idx {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			its[j], errs[j] = s.snaps[i].NewIterator(start, limit)
		}(j, i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, it := range its {
			if it != nil {
				it.Close()
			}
		}
		if owned != nil {
			owned.Close()
		}
		return nil, err
	}
	if ordered {
		if len(its) == 1 && owned == nil {
			// Single-shard fast path: the scan is entirely one shard's,
			// so its iterator is the scan — no wrapper at all. (A
			// single-use snapshot still needs the wrapper to die with
			// the iterator.)
			return its[0], nil
		}
		return &Concat{its: its, snap: owned}, nil
	}
	return newMerged(its, owned), nil
}

// Close releases every shard's pin. Idempotent; open iterators stay
// valid until they close.
func (s *Snapshot) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.db.openSnaps.Add(-1)
	var err error
	for _, snap := range s.snaps {
		if e := snap.Close(); err == nil {
			err = e
		}
	}
	return err
}

// OpenSnapshots reports the number of live (unclosed) store-level
// snapshots.
func (db *DB) OpenSnapshots() int { return int(db.openSnaps.Load()) }
