package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"repro/internal/lsm"
)

// distinctShardPairs returns key pairs whose two keys hash to different
// shards — the configuration under which a torn cross-shard batch is
// observable.
func distinctShardPairs(t *testing.T, n, shards int) [][2]string {
	t.Helper()
	var out [][2]string
	for i := 0; len(out) < n; i++ {
		a := fmt.Sprintf("acct-a-%03d", i)
		b := fmt.Sprintf("acct-b-%03d", i)
		if (FNV{}).Partition([]byte(a), shards) != (FNV{}).Partition([]byte(b), shards) {
			out = append(out, [2]string{a, b})
		}
		if i > 10*n+100 {
			t.Fatal("could not find enough cross-shard pairs")
		}
	}
	return out
}

// TestSnapshotNoTornCrossShardBatch is the regression test for the
// snapshot barrier: each account pair holds a constant sum (a bank
// transfer moves value between the two sides atomically via a
// cross-shard Apply), and no snapshot — point reads or scan — may ever
// observe a pair mid-commit. Before the barrier, per-shard views were
// captured one after another, so a reader could see the debit without
// the credit. Run under -race in CI.
func TestSnapshotNoTornCrossShardBatch(t *testing.T) {
	const (
		shards  = 4
		pairs   = 8
		sum     = 100
		readers = 4
		rounds  = 150
	)
	db := openMem(t, shards)
	defer db.Close()
	ps := distinctShardPairs(t, pairs, shards)
	init := &Batch{}
	for _, p := range ps {
		init.Put([]byte(p[0]), []byte(strconv.Itoa(sum)))
		init.Put([]byte(p[1]), []byte("0"))
	}
	if err := db.Apply(init); err != nil {
		t.Fatal(err)
	}

	// All writers share every pair, so transfers on the same pair race
	// constantly. The epoch commit pipeline serializes conflicting
	// cross-shard batches (per-shard commits follow ticket order), so
	// each pair always ends in the state of whichever transfer drew the
	// later epoch — the constant sum holds under conflicts, not just
	// between them. (Pre-clock, this required disjoint per-writer pairs:
	// concurrent conflicting batches interleaved per shard and readers
	// saw mixed halves of two transfers.)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	const writers = 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := ps[rng.Intn(len(ps))]
				r := rng.Intn(sum + 1)
				b := &Batch{}
				b.Put([]byte(p[0]), []byte(strconv.Itoa(r)))
				b.Put([]byte(p[1]), []byte(strconv.Itoa(sum-r)))
				if err := db.Apply(b); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	check := func(get func(key string) int, where string) {
		for _, p := range ps {
			if got := get(p[0]) + get(p[1]); got != sum {
				t.Errorf("%s: pair (%s, %s) sums to %d, want %d — torn batch observed", where, p[0], p[1], got, sum)
			}
		}
	}
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			for i := 0; i < rounds && !t.Failed(); i++ {
				if i%2 == 0 {
					// Pinned snapshot: point reads.
					s, err := db.NewSnapshot()
					if err != nil {
						t.Error(err)
						return
					}
					check(func(key string) int {
						v, err := s.Get([]byte(key))
						if err != nil {
							t.Errorf("snapshot Get(%s): %v", key, err)
							return -1 << 20
						}
						n, _ := strconv.Atoi(string(v))
						return n
					}, "snapshot Get")
					s.Close()
				} else {
					// Store-level scan (single-use snapshot under the hood).
					it, err := db.NewIterator([]byte("acct-"), []byte("acct-z"))
					if err != nil {
						t.Error(err)
						return
					}
					seen := map[string]int{}
					for it.Next() {
						n, _ := strconv.Atoi(string(it.Value()))
						seen[string(it.Key())] = n
					}
					if err := it.Close(); err != nil {
						t.Error(err)
						return
					}
					check(func(key string) int { return seen[key] }, "scan")
				}
			}
		}(r)
	}
	rwg.Wait()
	close(stop)
	wg.Wait()
}

// TestShardSnapshotFrozenAndClosed: the cross-shard snapshot freezes
// all shards at once, survives writes, errors after Close, and the
// openSnaps gauge tracks the lifecycle.
func TestShardSnapshotFrozenAndClosed(t *testing.T) {
	db := openMem(t, 4)
	defer db.Close()
	for i := 0; i < 400; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}
	s, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if db.OpenSnapshots() != 1 {
		t.Fatalf("OpenSnapshots = %d, want 1", db.OpenSnapshots())
	}
	for i := 0; i < 400; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get([]byte("k0123")); err != nil || string(v) != "v1" {
		t.Fatalf("snapshot Get = %q, %v; want v1", v, err)
	}
	it, err := s.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next() {
		if string(it.Value()) != "v1" {
			t.Fatalf("snapshot scan saw %q = %q, want v1", it.Key(), it.Value())
		}
		n++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 400 {
		t.Fatalf("snapshot scan saw %d entries, want 400", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close:", err)
	}
	if db.OpenSnapshots() != 0 {
		t.Fatalf("OpenSnapshots = %d after Close", db.OpenSnapshots())
	}
	if _, err := s.Get([]byte("k0123")); !errors.Is(err, lsm.ErrSnapshotClosed) {
		t.Fatalf("Get after Close = %v, want ErrSnapshotClosed", err)
	}
	if it2, err := s.NewIterator(nil, nil); !errors.Is(err, lsm.ErrSnapshotClosed) {
		t.Fatalf("NewIterator after Close = %v, want ErrSnapshotClosed", err)
	} else if it2 != nil {
		it2.Close()
	}
}
