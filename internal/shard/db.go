// Package shard implements a sharded engine: a keyspace router over N
// independent lsm.DB instances, each with its own commit log, memtable,
// levels and background flush/compaction workers.
//
// A single lsm.DB serializes every write behind one memtable mutex and
// one WAL; under many concurrent writers that lock — not the device — is
// the bottleneck. Hash-partitioning the keyspace multiplies the write
// paths: N shards give N independent mutexes, WALs and background
// pipelines, while TRIAD's three techniques (hot/cold flush separation,
// HLL-gated L0 compaction, CL-SSTables) compose per shard unchanged.
//
// Two partitioners route keys to shards. FNV (the default) hashes, which
// balances any keyspace but scatters contiguous ranges over every shard;
// Range routes by sorted split keys, keeping contiguous ranges on one
// shard so scans stay shard-local. The active partitioner and shard
// count are persisted in a checksummed STORE record on every shard's
// filesystem; Open validates it on reopen and fails fast on a mismatch
// instead of silently misrouting keys.
//
// shard.DB exposes the same surface as lsm.DB: point operations route to
// the owning shard, Apply splits a batch into per-shard sub-batches
// applied concurrently, NewIterator plans the scan with the
// partitioner's ownership query (one shard: that shard's iterator,
// verbatim; several contiguous shards: concatenation in key order;
// hashed: a k-way heap merge), and Flush/CompactAll/Close fan out to
// every shard and drain them.
package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/lsm"
	"repro/internal/vfs"
)

// Options configures Open.
type Options struct {
	// Shards is the number of independent engine instances; values < 1
	// mean 1. The count must be stable across opens of the same store.
	Shards int
	// Engine is the per-shard engine configuration template. Engine.FS
	// is ignored (NewFS supplies each shard's filesystem) and Engine.Seed
	// is decorrelated per shard. Budgets in the template (memtable,
	// commit log, block cache, ...) apply to each shard individually;
	// use DivideBudgets to split one store-wide budget evenly.
	Engine lsm.Options
	// NewFS returns shard i's filesystem; required. Every shard needs a
	// namespace of its own — MemFS and DirFS are ready-made factories.
	NewFS func(i int) (vfs.FS, error)
	// Partitioner routes keys to shards. nil adopts the partitioner the
	// store's STORE metadata records (new stores default to FNV{}); a
	// non-nil partitioner must match what the store was created with,
	// or Open fails rather than misroute.
	Partitioner Partitioner
}

// MemFS returns a NewFS factory handing every shard a fresh in-memory
// filesystem (ephemeral stores, tests, benchmarks).
func MemFS() func(int) (vfs.FS, error) {
	return func(int) (vfs.FS, error) { return vfs.NewMemFS(), nil }
}

// DirFS returns a NewFS factory rooting shard i at dir/shard-NNN
// (durable stores).
func DirFS(dir string) func(int) (vfs.FS, error) {
	return func(i int) (vfs.FS, error) {
		return vfs.NewOSFS(filepath.Join(dir, fmt.Sprintf("shard-%03d", i)))
	}
}

// DivideBudgets returns o with its sizing knobs divided by n, so that N
// shards configured from the result consume roughly the same aggregate
// memory and produce the same aggregate level sizes as one instance of o
// — the configuration under which a shard-count comparison is fair.
// Floors keep tiny divisions functional.
func DivideBudgets(o lsm.Options, n int) lsm.Options {
	if n <= 1 {
		return o
	}
	div := func(v int64, floor int64) int64 {
		if v <= 0 {
			return v // keep "use default" sentinels as-is
		}
		if out := v / int64(n); out > floor {
			return out
		}
		return floor
	}
	o.MemtableBytes = div(o.MemtableBytes, 32<<10)
	o.CommitLogBytes = div(o.CommitLogBytes, 128<<10)
	o.FlushThresholdBytes = div(o.FlushThresholdBytes, 16<<10)
	o.BaseLevelBytes = div(o.BaseLevelBytes, 256<<10)
	o.TargetFileBytes = div(o.TargetFileBytes, 64<<10)
	o.BlockCacheBytes = div(o.BlockCacheBytes, 0)
	return o
}

// DB is a sharded key-value store. All methods are safe for concurrent
// use. Writes to different shards proceed in parallel; writes to the
// same shard serialize exactly as in lsm.DB.
type DB struct {
	shards []*lsm.DB
	part   Partitioner

	// applyMu is the cross-shard commit barrier. Cross-shard Apply holds
	// the read side for its whole fan-out (many batches commit
	// concurrently); NewSnapshot holds the write side while it captures
	// every shard, so a snapshot never lands in the middle of a
	// multi-shard batch. Single-shard writes need no barrier — they are
	// atomic on their shard.
	applyMu sync.RWMutex

	openSnaps atomic.Int64
}

// Open opens (creating or recovering) every shard. Recovery is
// per-shard: each instance replays its own manifest and commit log. The
// store-wide configuration is checked first: on create, a STORE metadata
// record (shard count + partitioner) is written to every shard's
// filesystem; on reopen, the records are validated against Options and
// a mismatched shard count or partitioner is an error — the alternative
// is serving reads that silently miss the keys routed elsewhere.
func Open(o Options) (*DB, error) {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.NewFS == nil {
		return nil, errors.New("shard: Options.NewFS is required")
	}
	fses := make([]vfs.FS, o.Shards)
	for i := range fses {
		fs, err := o.NewFS(i)
		if err == nil && fs == nil {
			err = errors.New("nil filesystem")
		}
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		fses[i] = fs
	}
	part, err := resolvePartitioner(fses, o.Partitioner)
	if err != nil {
		return nil, err
	}
	db := &DB{part: part, shards: make([]*lsm.DB, 0, o.Shards)}
	for i, fs := range fses {
		eo := o.Engine
		eo.FS = fs
		// Decorrelate the per-shard skiplist seeds so shards do not
		// produce identical tower heights in lockstep.
		eo.Seed = o.Engine.Seed + int64(i)*7919
		s, err := lsm.Open(eo)
		if err != nil {
			db.closeAll()
			return nil, fmt.Errorf("shard %d: open: %w", i, err)
		}
		db.shards = append(db.shards, s)
	}
	return db, nil
}

// resolvePartitioner reconciles the requested partitioner with the STORE
// records on the shard filesystems: validates count and routing on
// reopen, adopts the stored partitioner when none was requested, and
// writes records where absent (store creation, or a store predating the
// metadata format — the one case that cannot be validated).
func resolvePartitioner(fses []vfs.FS, requested Partitioner) (Partitioner, error) {
	n := len(fses)
	metas := make([]*storeMeta, n)
	var ref *storeMeta
	for i, fs := range fses {
		m, ok, err := readStoreMeta(fs)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if !ok {
			continue
		}
		if m.Shard != i {
			return nil, fmt.Errorf("shard: shard %d's filesystem holds shard %d's metadata — shard directories shuffled or miswired", i, m.Shard)
		}
		metas[i] = &m
		if ref == nil {
			ref = &m
		} else if m.Shards != ref.Shards || m.Partitioner != ref.Partitioner {
			return nil, fmt.Errorf("shard: shards disagree on store metadata (shard %d: %d shards, partitioner %q; shard %d: %d shards, partitioner %q)",
				ref.Shard, ref.Shards, ref.Partitioner, i, m.Shards, m.Partitioner)
		}
	}
	part := requested
	if ref != nil {
		if ref.Shards != n {
			return nil, fmt.Errorf("shard: store was created with %d shards (partitioner %q); reopening with %d shards would misroute keys — pass the original shard count",
				ref.Shards, ref.Partitioner, n)
		}
		if part == nil {
			var err error
			part, err = partitionerFromName(ref.Partitioner)
			if err != nil {
				return nil, err
			}
		} else if part.Name() != ref.Partitioner {
			return nil, fmt.Errorf("shard: store was created with partitioner %q; reopening with %q would misroute keys",
				ref.Partitioner, part.Name())
		}
	}
	if part == nil {
		part = FNV{}
	}
	if r, ok := part.(*Range); ok && r.NumShards() != n {
		return nil, fmt.Errorf("shard: range partitioner implies %d shards (splits+1), Options.Shards is %d", r.NumShards(), n)
	}
	for i, fs := range fses {
		if metas[i] != nil {
			continue
		}
		if err := writeStoreMeta(fs, metaFor(part, n, i)); err != nil {
			return nil, fmt.Errorf("shard %d: write store metadata: %w", i, err)
		}
	}
	return part, nil
}

// NumShards reports the shard count.
func (db *DB) NumShards() int { return len(db.shards) }

// Shard exposes shard i (observability and tests).
func (db *DB) Shard(i int) *lsm.DB { return db.shards[i] }

// Partitioner reports the active partitioner.
func (db *DB) Partitioner() Partitioner { return db.part }

// pick returns the shard owning key.
func (db *DB) pick(key []byte) *lsm.DB {
	return db.shards[db.part.Partition(key, len(db.shards))]
}

// Put associates value with key on the owning shard.
func (db *DB) Put(key, value []byte) error { return db.pick(key).Put(key, value) }

// Get returns the value stored under key, or lsm.ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) { return db.pick(key).Get(key) }

// Delete removes key (writing a tombstone on the owning shard).
func (db *DB) Delete(key []byte) error { return db.pick(key).Delete(key) }

// Batch is re-exported so callers build batches without importing lsm.
type Batch = lsm.Batch

// Apply splits b into per-shard sub-batches and applies them
// concurrently. Atomicity is per shard: a sub-batch commits atomically
// on its shard, but a failure can leave the batch applied on some shards
// and not others (the batch then stays uncommitted, so retrying after
// the error is safe — re-applying a Put/Delete set is idempotent).
//
// Point reads and single-shard scans can observe a batch half applied;
// a Snapshot (or any multi-shard iterator, which rides on one) cannot:
// NewSnapshot waits for in-flight cross-shard batches and commits block
// while a capture runs. Two *concurrent* Apply calls writing the same
// keys commit in unspecified per-shard order, so callers needing a
// cross-key invariant must serialize conflicting batches themselves.
func (db *DB) Apply(b *Batch) error {
	if b.Committed() {
		return errors.New("shard: batch already applied (Reset to reuse)")
	}
	if len(db.shards) == 1 {
		return db.shards[0].Apply(b)
	}
	for _, e := range b.Ops() {
		if len(e.Key) == 0 {
			return errors.New("shard: empty key in batch")
		}
	}
	subs := make([]*lsm.Batch, len(db.shards))
	for _, e := range b.Ops() {
		i := db.part.Partition(e.Key, len(db.shards))
		if subs[i] == nil {
			subs[i] = &lsm.Batch{}
		}
		// The outer batch's Put/Delete already made defensive copies;
		// PutEntry re-queues them without copying again.
		subs[i].PutEntry(e)
	}
	// Absorb write stalls before entering the barrier: the read side is
	// held across the whole fan-out, so a shard stalling inside (L0
	// full, flush queue full — potentially seconds) would hold the
	// barrier, and a NewSnapshot waiting on the write side would convoy
	// every other cross-shard batch behind the one stalled shard.
	// Waiting here narrows that to the rare stall that develops between
	// this check and the commit.
	for i, sub := range subs {
		if sub == nil {
			continue
		}
		if err := db.shards[i].WaitWritable(); err != nil {
			return err
		}
	}
	// Hold the apply barrier's read side across the fan-out so a
	// concurrent NewSnapshot (write side) can never capture the shards
	// with this batch half applied.
	db.applyMu.RLock()
	err := db.fanOut(func(i int, s *lsm.DB) error {
		if subs[i] == nil {
			return nil
		}
		return s.Apply(subs[i])
	})
	db.applyMu.RUnlock()
	if err != nil {
		return err
	}
	b.MarkCommitted()
	return nil
}

// Flush seals and drains every shard's memtable, in parallel.
func (db *DB) Flush() error {
	return db.fanOut(func(_ int, s *lsm.DB) error { return s.Flush() })
}

// CompactAll drains all pending compactions on every shard, in parallel.
func (db *DB) CompactAll() error {
	return db.fanOut(func(_ int, s *lsm.DB) error { return s.CompactAll() })
}

// SetDisableBackgroundIO toggles the no-background-I/O experiment mode on
// every shard.
func (db *DB) SetDisableBackgroundIO(v bool) {
	for _, s := range db.shards {
		s.SetDisableBackgroundIO(v)
	}
}

// Close drains background work on every shard and releases all
// resources. All shards are closed even if one fails; the first error is
// returned.
func (db *DB) Close() error { return db.closeAll() }

func (db *DB) closeAll() error {
	return db.fanOut(func(_ int, s *lsm.DB) error { return s.Close() })
}

// fanOut runs fn on every shard concurrently and returns the first
// error. Every fn runs to completion regardless of other shards' errors.
func (db *DB) fanOut(fn func(i int, s *lsm.DB) error) error {
	errs := make([]error, len(db.shards))
	var wg sync.WaitGroup
	for i, s := range db.shards {
		wg.Add(1)
		go func(i int, s *lsm.DB) {
			defer wg.Done()
			errs[i] = fn(i, s)
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}
