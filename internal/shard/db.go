// Package shard implements a sharded engine: a keyspace router over N
// independent lsm.DB instances, each with its own commit log, memtable,
// levels and background flush/compaction workers.
//
// A single lsm.DB serializes every write behind one memtable mutex and
// one WAL; under many concurrent writers that lock — not the device — is
// the bottleneck. Hash-partitioning the keyspace multiplies the write
// paths: N shards give N independent mutexes, WALs and background
// pipelines, while TRIAD's three techniques (hot/cold flush separation,
// HLL-gated L0 compaction, CL-SSTables) compose per shard unchanged.
//
// Two partitioners route keys to shards. FNV (the default) hashes, which
// balances any keyspace but scatters contiguous ranges over every shard;
// Range routes by sorted split keys, keeping contiguous ranges on one
// shard so scans stay shard-local. The active partitioner and shard
// count are persisted in a checksummed STORE record on every shard's
// filesystem; Open validates it on reopen and fails fast on a mismatch
// instead of silently misrouting keys.
//
// shard.DB exposes the same surface as lsm.DB: point operations route to
// the owning shard, Apply splits a batch into per-shard sub-batches
// applied concurrently, NewIterator plans the scan with the
// partitioner's ownership query (one shard: that shard's iterator,
// verbatim; several contiguous shards: concatenation in key order;
// hashed: a k-way heap merge), and Flush/CompactAll/Close fan out to
// every shard and drain them.
//
// Two lifetime invariants here are machine-checked by triadlint (see
// internal/lint): every *Commit ticket minted by Prepare must reach
// Commit or Abort on all control-flow paths (ticketleak — an
// unsettled ticket holds the epoch pipeline open forever), and every
// Snapshot and Iter must be closed or handed to a tracked owner
// (mustclose — snapshots pin memtable overlays and zombie sstables
// until released).
package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bgsched"
	"repro/internal/lsm"
	"repro/internal/obs"
	"repro/internal/sstable"
	"repro/internal/vfs"
)

// Options configures Open.
type Options struct {
	// Shards is the number of independent engine instances; values < 1
	// mean 1. The count must be stable across opens of the same store.
	Shards int
	// Engine is the per-shard engine configuration template. Engine.FS
	// is ignored (NewFS supplies each shard's filesystem) and Engine.Seed
	// is decorrelated per shard. Budgets in the template (memtable,
	// commit log, block cache, ...) apply to each shard individually;
	// use DivideBudgets to split one store-wide budget evenly.
	//
	// Engine.BlockCacheBytes is the per-shard share, but by default the
	// store pools the shares: Open builds ONE store-wide block cache of
	// Engine.BlockCacheBytes x Shards and hands every shard a tenant
	// handle on it, so the aggregate memory matches the old per-shard
	// design while the bytes follow whichever shards are hot.
	Engine lsm.Options
	// BlockCache, when non-nil, is used as the store-wide block cache
	// instead of building one (callers embedding several stores can pool
	// even wider). The store does not own it; it is not closed on Close.
	BlockCache *sstable.Cache
	// SplitBlockCache restores the pre-PR-7 layout: every shard builds
	// its own private plain-LRU cache of Engine.BlockCacheBytes. Kept as
	// the measurable baseline for the shared-cache comparison.
	SplitBlockCache bool
	// NewFS returns shard i's filesystem; required. Every shard needs a
	// namespace of its own — MemFS and DirFS are ready-made factories.
	NewFS func(i int) (vfs.FS, error)
	// Partitioner routes keys to shards. nil adopts the partitioner the
	// store's STORE metadata records (new stores default to FNV{}); a
	// non-nil partitioner must match what the store was created with,
	// or Open fails rather than misroute.
	Partitioner Partitioner
	// DisableObservability leaves the store's event journal and apply
	// latency recorder nil: every instrumentation point degrades to a
	// pointer test (the configuration the overhead benchmark compares
	// against). Engine.Events, when set, still wins over the built-in
	// journal.
	DisableObservability bool

	// BackgroundWorkers sizes the store-wide background worker pool
	// shared by every shard's flushes and compactions (with priority
	// classes and per-shard fairness; see internal/bgsched). 0 means
	// the default min(GOMAXPROCS, shards+2), floored at 2; a negative
	// value disables the pool and keeps the seed's two private
	// goroutines per shard — the measurable baseline. Ignored when
	// Scheduler is set.
	BackgroundWorkers int
	// Scheduler, when non-nil, is a caller-owned pool shared even wider
	// than this store (e.g. several stores on one machine). The store
	// does not close it.
	Scheduler *bgsched.Pool
	// MaxSubcompactions caps how many parallel key-range slices one
	// compaction may split into; 0 means up to the pool's worker count,
	// 1 disables splitting. Meaningless without a pool.
	MaxSubcompactions int
}

// MemFS returns a NewFS factory handing every shard a fresh in-memory
// filesystem (ephemeral stores, tests, benchmarks).
func MemFS() func(int) (vfs.FS, error) {
	return func(int) (vfs.FS, error) { return vfs.NewMemFS(), nil }
}

// DirFS returns a NewFS factory rooting shard i at dir/shard-NNN
// (durable stores).
func DirFS(dir string) func(int) (vfs.FS, error) {
	return func(i int) (vfs.FS, error) {
		return vfs.NewOSFS(filepath.Join(dir, fmt.Sprintf("shard-%03d", i)))
	}
}

// DivideBudgets returns o with its sizing knobs divided by n, so that N
// shards configured from the result consume roughly the same aggregate
// memory and produce the same aggregate level sizes as one instance of o
// — the configuration under which a shard-count comparison is fair.
// Floors keep tiny divisions functional.
func DivideBudgets(o lsm.Options, n int) lsm.Options {
	if n <= 1 {
		return o
	}
	div := func(v int64, floor int64) int64 {
		if v <= 0 {
			return v // keep "use default" sentinels as-is
		}
		if out := v / int64(n); out > floor {
			return out
		}
		return floor
	}
	o.MemtableBytes = div(o.MemtableBytes, 32<<10)
	o.CommitLogBytes = div(o.CommitLogBytes, 128<<10)
	o.FlushThresholdBytes = div(o.FlushThresholdBytes, 16<<10)
	o.BaseLevelBytes = div(o.BaseLevelBytes, 256<<10)
	o.TargetFileBytes = div(o.TargetFileBytes, 64<<10)
	o.BlockCacheBytes = div(o.BlockCacheBytes, 0)
	return o
}

// DB is a sharded key-value store. All methods are safe for concurrent
// use. Writes to different shards proceed in parallel; writes touching
// the same shard commit in store-clock epoch order.
type DB struct {
	shards []*lsm.DB
	part   Partitioner

	// clk is the store-wide commit clock: every write (single- or
	// cross-shard) and every snapshot holds one epoch ticket, and per
	// shard, tickets execute in epoch order. That single total order is
	// what makes concurrent conflicting cross-shard batches serializable
	// and lets NewSnapshot pin an epoch instead of freezing every
	// shard's write lock.
	clk *clock
	// idxAll is the precomputed all-shards index list snapshots ticket.
	idxAll []int

	openSnaps atomic.Int64

	// events receives every shard's background events (flush, compaction,
	// snapshot GC, stall), labeled by shard; applyLat times each batch's
	// commit execution. Both nil when Options.DisableObservability.
	events   *obs.Journal
	applyLat *obs.Hist
	// ledgers attribute each shard's disk bytes by source (user write,
	// WAL, flush, compaction read/write, snapshot-GC). With range
	// partitioning, shards are tenants, so this is also the per-tenant
	// I/O bill. Nil when Options.DisableObservability.
	ledgers []*obs.Ledger

	// cache is the store-wide block cache every shard draws from (nil
	// when caching is disabled or SplitBlockCache keeps per-shard LRUs).
	cache *sstable.Cache

	// sched is the store-wide background worker pool (nil in the
	// legacy two-goroutines-per-shard mode); ownSched records whether
	// Close should tear it down (false when the caller injected it).
	sched    *bgsched.Pool
	ownSched bool
}

// Open opens (creating or recovering) every shard. Recovery is
// per-shard: each instance replays its own manifest and commit log. The
// store-wide configuration is checked first: on create, a STORE metadata
// record (shard count + partitioner) is written to every shard's
// filesystem; on reopen, the records are validated against Options and
// a mismatched shard count or partitioner is an error — the alternative
// is serving reads that silently miss the keys routed elsewhere.
func Open(o Options) (*DB, error) {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.NewFS == nil {
		return nil, errors.New("shard: Options.NewFS is required")
	}
	fses := make([]vfs.FS, o.Shards)
	for i := range fses {
		fs, err := o.NewFS(i)
		if err == nil && fs == nil {
			err = errors.New("nil filesystem")
		}
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		fses[i] = fs
	}
	part, err := resolvePartitioner(fses, o.Partitioner)
	if err != nil {
		return nil, err
	}
	db := &DB{part: part, shards: make([]*lsm.DB, 0, o.Shards)}
	if !o.DisableObservability {
		db.events = o.Engine.Events // a caller-supplied journal wins
		if db.events == nil {
			db.events = obs.NewJournal(0)
		}
		db.applyLat = obs.NewHist()
		db.ledgers = make([]*obs.Ledger, o.Shards)
		for i := range db.ledgers {
			db.ledgers[i] = obs.NewLedger()
		}
	}
	// Pool the per-shard cache shares into one store-wide cache (same
	// aggregate bytes, no pre-split) unless the caller injected a cache
	// or explicitly asked for the old split layout.
	db.cache = o.BlockCache
	if db.cache == nil && !o.SplitBlockCache && o.Engine.BlockCacheBytes > 0 {
		db.cache = sstable.NewCache(o.Engine.BlockCacheBytes * int64(o.Shards))
	}
	// One store-wide background pool arbitrates every shard's flushes
	// and compactions (the same centralization PR 7 gave the block
	// cache); a caller-supplied pool wins, a negative worker count
	// keeps the legacy two-goroutines-per-shard plane.
	db.sched = o.Scheduler
	if db.sched == nil && o.BackgroundWorkers >= 0 {
		w := o.BackgroundWorkers
		if w == 0 {
			w = bgsched.DefaultWorkers(o.Shards)
		}
		db.sched = bgsched.NewPool(w)
		db.ownSched = true
	}
	for i, fs := range fses {
		eo := o.Engine
		eo.FS = fs
		eo.Scheduler = db.sched
		eo.MaxSubcompactions = o.MaxSubcompactions
		eo.Events = db.events
		eo.EventShard = i
		if db.ledgers != nil {
			eo.Ledger = db.ledgers[i]
		}
		if db.cache != nil {
			eo.BlockCache = db.cache
		}
		// Decorrelate the per-shard skiplist seeds so shards do not
		// produce identical tower heights in lockstep.
		eo.Seed = o.Engine.Seed + int64(i)*7919
		s, err := lsm.Open(eo)
		if err != nil {
			db.closeAll()
			return nil, fmt.Errorf("shard %d: open: %w", i, err)
		}
		db.shards = append(db.shards, s)
	}
	// The store clock resumes from the highest sequence any shard has
	// committed, so epochs stay unique across reopens.
	var last uint64
	for _, s := range db.shards {
		if ls := s.LastSeq(); ls > last {
			last = ls
		}
	}
	db.clk = newClock(len(db.shards), last)
	db.idxAll = make([]int, len(db.shards))
	for i := range db.idxAll {
		db.idxAll[i] = i
	}
	return db, nil
}

// resolvePartitioner reconciles the requested partitioner with the STORE
// records on the shard filesystems: validates count and routing on
// reopen, adopts the stored partitioner when none was requested, and
// writes records where absent (store creation, or a store predating the
// metadata format — the one case that cannot be validated).
func resolvePartitioner(fses []vfs.FS, requested Partitioner) (Partitioner, error) {
	n := len(fses)
	metas := make([]*storeMeta, n)
	var ref *storeMeta
	for i, fs := range fses {
		m, ok, err := readStoreMeta(fs)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if !ok {
			continue
		}
		if m.Shard != i {
			return nil, fmt.Errorf("shard: shard %d's filesystem holds shard %d's metadata — shard directories shuffled or miswired", i, m.Shard)
		}
		metas[i] = &m
		if ref == nil {
			ref = &m
		} else if m.Shards != ref.Shards || m.Partitioner != ref.Partitioner {
			return nil, fmt.Errorf("shard: shards disagree on store metadata (shard %d: %d shards, partitioner %q; shard %d: %d shards, partitioner %q)",
				ref.Shard, ref.Shards, ref.Partitioner, i, m.Shards, m.Partitioner)
		}
	}
	part := requested
	if ref != nil {
		if ref.Shards != n {
			return nil, fmt.Errorf("shard: store was created with %d shards (partitioner %q); reopening with %d shards would misroute keys — pass the original shard count",
				ref.Shards, ref.Partitioner, n)
		}
		if part == nil {
			var err error
			part, err = partitionerFromName(ref.Partitioner)
			if err != nil {
				return nil, err
			}
		} else if part.Name() != ref.Partitioner {
			return nil, fmt.Errorf("shard: store was created with partitioner %q; reopening with %q would misroute keys",
				ref.Partitioner, part.Name())
		}
	}
	if part == nil {
		part = FNV{}
	}
	if r, ok := part.(*Range); ok && r.NumShards() != n {
		return nil, fmt.Errorf("shard: range partitioner implies %d shards (splits+1), Options.Shards is %d", r.NumShards(), n)
	}
	for i, fs := range fses {
		if metas[i] != nil {
			continue
		}
		if err := writeStoreMeta(fs, metaFor(part, n, i)); err != nil {
			return nil, fmt.Errorf("shard %d: write store metadata: %w", i, err)
		}
	}
	return part, nil
}

// NumShards reports the shard count.
func (db *DB) NumShards() int { return len(db.shards) }

// Shard exposes shard i (observability and tests).
func (db *DB) Shard(i int) *lsm.DB { return db.shards[i] }

// Partitioner reports the active partitioner.
func (db *DB) Partitioner() Partitioner { return db.part }

// Events returns the store's background-event journal (nil when
// observability is disabled).
func (db *DB) Events() *obs.Journal { return db.events }

// ApplyLatency returns the recorder timing each batch's commit execution
// (nil when observability is disabled).
func (db *DB) ApplyLatency() *obs.Hist { return db.applyLat }

// pick returns the shard owning key.
func (db *DB) pick(key []byte) *lsm.DB {
	return db.shards[db.part.Partition(key, len(db.shards))]
}

// Put associates value with key on the owning shard, committing at a
// fresh store-clock epoch.
func (db *DB) Put(key, value []byte) error {
	b := &lsm.Batch{}
	b.Put(key, value)
	return db.commitOne(db.part.Partition(key, len(db.shards)), b)
}

// Get returns the value stored under key, or lsm.ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) { return db.pick(key).Get(key) }

// GetTraced is Get with an optional sampled trace attached; the owning
// shard records an sstable_read span for every disk read the lookup
// pays. tr is nil on the untraced path.
func (db *DB) GetTraced(key []byte, tr *obs.Trace) ([]byte, error) {
	return db.pick(key).GetTraced(key, tr)
}

// Delete removes key (writing a tombstone on the owning shard).
func (db *DB) Delete(key []byte) error {
	b := &lsm.Batch{}
	b.Delete(key)
	return db.commitOne(db.part.Partition(key, len(db.shards)), b)
}

// commitOne commits a batch routed entirely to shard i at a fresh
// epoch — the degenerate, inline form of the commit pipeline.
func (db *DB) commitOne(i int, b *lsm.Batch) error {
	// Absorb write stalls before taking the ticket: a stalled commit at
	// the head of the shard's chain would block every ticket queued
	// behind it (including snapshots) for the length of a compaction.
	if err := db.shards[i].WaitWritable(); err != nil {
		return err
	}
	var start time.Time
	if db.applyLat != nil {
		start = time.Now()
	}
	t := db.clk.allocate([]int{i})
	db.clk.waitTurn(t, 0)
	err := db.shards[i].CommitAt(t.epoch, b)
	db.clk.shardDone(t, 0)
	db.clk.finish(t)
	if db.applyLat != nil {
		db.applyLat.Record(time.Since(start))
	}
	return err
}

// Batch is re-exported so callers build batches without importing lsm.
type Batch = lsm.Batch

// Commit is a prepared batch holding its epoch ticket — its place in
// the store-wide total commit order. Exactly one Commit (or Abort) call
// must follow Prepare: an abandoned ticket blocks every later write and
// snapshot queued behind it on its shards.
type Commit struct {
	db   *DB
	b    *Batch
	subs []*lsm.Batch // per shard; nil where the batch has no ops
	tk   ticket
	used bool
	trs  obs.Traces // sampled traces riding this commit (usually nil)
}

// Trace attaches the group's sampled request traces; each receives the
// engine-side wal_append / memtable_apply spans when the commit
// executes. Call between Prepare and Commit.
func (c *Commit) Trace(trs obs.Traces) { c.trs = trs }

// Prepare stages b in the commit pipeline: validate, split into
// per-shard sub-batches, absorb write stalls, and allocate the epoch
// ticket. The returned Commit's epoch is final — later Prepares get
// later epochs — which is what lets a caller (the server's group
// committer) publish the epoch to waiters before the writes land.
func (db *DB) Prepare(b *Batch) (*Commit, error) {
	if b.Committed() {
		return nil, errors.New("shard: batch already applied (Reset to reuse)")
	}
	for _, e := range b.Ops() {
		if len(e.Key) == 0 {
			return nil, errors.New("shard: empty key in batch")
		}
	}
	subs := make([]*lsm.Batch, len(db.shards))
	var idxs []int
	if len(db.shards) == 1 && b.Len() > 0 {
		// Single-shard store: the batch is its own sub-batch, no split.
		subs[0] = b
		idxs = []int{0}
	} else {
		for _, e := range b.Ops() {
			i := db.part.Partition(e.Key, len(db.shards))
			if subs[i] == nil {
				subs[i] = &lsm.Batch{}
				idxs = append(idxs, i)
			}
			// The outer batch's Put/Delete already made defensive
			// copies; PutEntry re-queues them without copying again.
			subs[i].PutEntry(e)
		}
	}
	// Absorb write stalls before taking the ticket (see commitOne).
	for _, i := range idxs {
		if err := db.shards[i].WaitWritable(); err != nil {
			return nil, err
		}
	}
	return &Commit{db: db, b: b, subs: subs, tk: db.clk.allocate(idxs)}, nil
}

// Epoch reports the commit's position in the store-wide total order.
func (c *Commit) Epoch() uint64 { return c.tk.epoch }

// Commit applies the per-shard sub-batches, each at the ticket's epoch
// and at the ticket's turn in that shard's commit chain. A failure can
// still leave the batch applied on some shards and not others (the
// batch then stays uncommitted, so retrying with a fresh Prepare is
// safe — re-applying a Put/Delete set is idempotent); the chains and
// the watermark always advance, so an error never wedges the pipeline.
//
// Write stalls are absorbed at Prepare time, before the ticket exists;
// a stall that develops between Prepare and Commit blocks this shard's
// chain — successors wait on this ticket whether it stalls before or
// after claiming the chain head, so a later re-check could not help.
// The exposure is narrower than the pre-clock design, where a stall
// inside the apply barrier held the storewide applyMu and froze every
// shard's snapshots; now only the stalled shard's chain waits, and the
// other shards keep committing.
func (c *Commit) Commit() error {
	if c.used {
		return errors.New("shard: commit already executed (Prepare again)")
	}
	c.used = true
	db := c.db
	var start time.Time
	if db.applyLat != nil && len(c.tk.shards) > 0 {
		start = time.Now()
	}
	var err error
	switch len(c.tk.shards) {
	case 0: // empty batch: the ticket is just a watermark event
	case 1:
		i := c.tk.shards[0]
		db.clk.waitTurn(c.tk, 0)
		err = db.shards[i].CommitAtTraced(c.tk.epoch, c.subs[i], c.trs)
		db.clk.shardDone(c.tk, 0)
	default:
		errs := make([]error, len(c.tk.shards))
		var wg sync.WaitGroup
		for j := range c.tk.shards {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				i := c.tk.shards[j]
				db.clk.waitTurn(c.tk, j)
				errs[j] = db.shards[i].CommitAtTraced(c.tk.epoch, c.subs[i], c.trs)
				db.clk.shardDone(c.tk, j)
			}(j)
		}
		wg.Wait()
		err = errors.Join(errs...)
	}
	db.clk.finish(c.tk)
	if !start.IsZero() {
		db.applyLat.Record(time.Since(start))
	}
	if err != nil {
		return err
	}
	c.b.MarkCommitted()
	return nil
}

// Abort releases the ticket without writing: the per-shard chains and
// the watermark advance exactly as for a committed ticket, so the
// pipeline cannot wedge on an abandoned Prepare.
func (c *Commit) Abort() {
	if c.used {
		return
	}
	c.used = true
	for j := range c.tk.shards {
		c.db.clk.waitTurn(c.tk, j)
		c.db.clk.shardDone(c.tk, j)
	}
	c.db.clk.finish(c.tk)
}

// Apply commits b through the pipeline: every batch — single- or
// cross-shard — commits at one totally ordered epoch, and batches
// sharing a shard commit there in epoch order. Two concurrent
// conflicting cross-shard Applies are therefore serializable: whichever
// drew the later epoch commits second on every shard they share, so the
// store always ends in a state some serial execution produces, and
// snapshots only ever observe prefixes of that order.
//
// Point reads and single-shard scans can still observe a cross-shard
// batch half applied (they are not epoch-pinned); a Snapshot cannot.
func (db *DB) Apply(b *Batch) error {
	c, err := db.Prepare(b)
	if err != nil {
		return err
	}
	return c.Commit()
}

// CommittedEpoch reports the commit watermark: every epoch at or below
// it has finished on all its shards.
func (db *DB) CommittedEpoch() uint64 { return db.clk.committedEpoch() }

// WaitCommitted blocks until the watermark reaches epoch — the
// read-your-writes barrier for a caller holding a Commit's epoch.
func (db *DB) WaitCommitted(epoch uint64) { db.clk.waitCommitted(epoch) }

// Flush seals and drains every shard's memtable, in parallel.
func (db *DB) Flush() error {
	return db.fanOut(func(_ int, s *lsm.DB) error { return s.Flush() })
}

// CompactAll drains all pending compactions on every shard, in parallel.
func (db *DB) CompactAll() error {
	return db.fanOut(func(_ int, s *lsm.DB) error { return s.CompactAll() })
}

// SetDisableBackgroundIO toggles the no-background-I/O experiment mode on
// every shard.
func (db *DB) SetDisableBackgroundIO(v bool) {
	for _, s := range db.shards {
		s.SetDisableBackgroundIO(v)
	}
}

// Close drains background work on every shard and releases all
// resources. All shards are closed even if one fails; the first error is
// returned.
func (db *DB) Close() error { return db.closeAll() }

func (db *DB) closeAll() error {
	err := db.fanOut(func(_ int, s *lsm.DB) error { return s.Close() })
	// The pool outlives the shards: each shard's Close cancels its own
	// owner (waiting out its running tasks) first, so by now the pool
	// is idle and tearing it down cannot strand engine work.
	if db.ownSched && db.sched != nil {
		db.sched.Close()
		db.sched = nil
	}
	return err
}

// Scheduler exposes the store-wide background pool (nil in the legacy
// per-shard-goroutines mode).
func (db *DB) Scheduler() *bgsched.Pool { return db.sched }

// fanOut runs fn on every shard concurrently and returns the first
// error. Every fn runs to completion regardless of other shards' errors.
func (db *DB) fanOut(fn func(i int, s *lsm.DB) error) error {
	errs := make([]error, len(db.shards))
	var wg sync.WaitGroup
	for i, s := range db.shards {
		wg.Add(1)
		go func(i int, s *lsm.DB) {
			defer wg.Done()
			errs[i] = fn(i, s)
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}
