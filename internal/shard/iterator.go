package shard

import (
	"bytes"
	"container/heap"
	"errors"
	"sync"

	"repro/internal/lsm"
)

// Iter is the iterator surface DB.NewIterator returns. Which concrete
// type backs it depends on what the partitioner's ownership query says
// about the scan bounds:
//
//   - one shard can hold the range  → that shard's *lsm.Iterator,
//     verbatim (no cross-shard machinery at all);
//   - several shards, in key order  → *Concat, per-shard iterators
//     visited back to back;
//   - hashed (any shard, any order) → *Merged, a k-way heap merge.
type Iter interface {
	// Next advances; the iterator starts before the first entry.
	Next() bool
	// Key returns the current key.
	Key() []byte
	// Value returns the current value.
	Value() []byte
	// Len reports the total number of entries in the snapshot.
	Len() int
}

// NewIterator snapshots the range [start, limit) (nil bounds are
// unbounded) on every shard the partitioner says can hold it, in
// parallel, and returns the cheapest iterator the ownership structure
// allows. Each shard's snapshot is point-in-time consistent; the
// snapshots of different shards are taken concurrently but not at one
// global instant (there is no cross-shard write ordering to preserve —
// only writes to the same key order, and a key never changes shards).
func (db *DB) NewIterator(start, limit []byte) (Iter, error) {
	idx, ordered := db.part.Ranges(start, limit, len(db.shards))
	if len(idx) == 0 {
		return &Concat{}, nil
	}
	its := make([]*lsm.Iterator, len(idx))
	errs := make([]error, len(idx))
	var wg sync.WaitGroup
	for j, i := range idx {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			its[j], errs[j] = db.shards[i].NewIterator(start, limit)
		}(j, i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	if ordered {
		if len(its) == 1 {
			// Single-shard fast path: the scan is entirely one shard's,
			// so its iterator is the scan — no heap, no indirection.
			return its[0], nil
		}
		return NewConcat(its), nil
	}
	return newMerged(its), nil
}

// Concat visits per-shard iterators back to back. It is correct exactly
// when the partitioner guarantees the shards hold disjoint contiguous
// key slices in visiting order (Ranges reported ordered == true), which
// makes every advance O(1) — no comparisons, no heap — while still
// yielding one globally sorted stream.
type Concat struct {
	its []*lsm.Iterator
	pos int
	n   int
}

// NewConcat builds a concatenation over iterators whose key ranges are
// disjoint and ascending in slice order.
func NewConcat(its []*lsm.Iterator) *Concat {
	c := &Concat{its: its}
	for _, it := range its {
		c.n += it.Len()
	}
	return c
}

// Next advances; the iterator starts before the first entry.
func (c *Concat) Next() bool {
	for c.pos < len(c.its) {
		if c.its[c.pos].Next() {
			return true
		}
		c.pos++
	}
	return false
}

// Key returns the current key.
func (c *Concat) Key() []byte { return c.its[c.pos].Key() }

// Value returns the current value.
func (c *Concat) Value() []byte { return c.its[c.pos].Value() }

// Len reports the total number of entries in the snapshot.
func (c *Concat) Len() int { return c.n }

// Merged is an ascending, globally sorted scan across shards whose key
// ownership is scattered (hash partitioning), produced by a k-way heap
// merge of the per-shard snapshot iterators. Each key lives on exactly
// one shard, so the merge needs no deduplication; ordering is by key
// alone.
type Merged struct {
	h   iterHeap
	cur *lsm.Iterator // source of the current entry; nil before first Next
	n   int           // total entries across all shards
}

func newMerged(its []*lsm.Iterator) *Merged {
	out := &Merged{}
	for _, it := range its {
		out.n += it.Len()
		if it.Next() {
			out.h = append(out.h, it)
		}
	}
	heap.Init(&out.h)
	return out
}

// Next advances; the iterator starts before the first entry.
func (it *Merged) Next() bool {
	if it.cur != nil {
		// Re-admit the source we last yielded from, now at its next
		// position (or retire it when exhausted).
		if it.cur.Next() {
			heap.Push(&it.h, it.cur)
		}
		it.cur = nil
	}
	if it.h.Len() == 0 {
		return false
	}
	it.cur = heap.Pop(&it.h).(*lsm.Iterator)
	return true
}

// Key returns the current key.
func (it *Merged) Key() []byte { return it.cur.Key() }

// Value returns the current value.
func (it *Merged) Value() []byte { return it.cur.Value() }

// Len reports the total number of entries in the merged snapshot.
func (it *Merged) Len() int { return it.n }

// iterHeap is a min-heap of shard iterators ordered by current key.
type iterHeap []*lsm.Iterator

func (h iterHeap) Len() int { return len(h) }
func (h iterHeap) Less(i, j int) bool {
	return bytes.Compare(h[i].Key(), h[j].Key()) < 0
}
func (h iterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x any)   { *h = append(*h, x.(*lsm.Iterator)) }
func (h *iterHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
