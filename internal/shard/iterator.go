package shard

import (
	"bytes"
	"container/heap"

	"repro/internal/lsm"
)

// Iter is the iterator surface DB.NewIterator and Snapshot.NewIterator
// return: a streaming, ascending scan. Which concrete type backs it
// depends on what the partitioner's ownership query says about the scan
// bounds:
//
//   - one shard can hold the range  → that shard's *lsm.Iterator,
//     verbatim (no cross-shard machinery at all);
//   - several shards, in key order  → *Concat, per-shard iterators
//     visited back to back;
//   - hashed (any shard, any order) → *Merged, a k-way heap merge.
type Iter interface {
	// Next advances; the iterator starts before the first entry.
	Next() bool
	// Key returns the current key.
	Key() []byte
	// Value returns the current value.
	Value() []byte
	// Err returns the first error the scan encountered.
	Err() error
	// Close releases the per-shard iterators and their snapshot pins.
	Close() error
}

// NewIterator returns a streaming scan of [start, limit) (nil bounds
// are unbounded). A scan a single shard can serve skips the cross-shard
// snapshot entirely (per-shard commits are atomic, so one shard's view
// is always consistent); a scan spanning shards is taken on a pinned
// cross-shard snapshot that dies with the iterator, so it can never
// observe half of a concurrent cross-shard Apply.
func (db *DB) NewIterator(start, limit []byte) (Iter, error) {
	idx, ordered := db.part.Ranges(start, limit, len(db.shards))
	switch len(idx) {
	case 0:
		// Nothing owns the range (inverted or empty bounds): no shard
		// work, and in particular no cross-shard barrier.
		return &Concat{}, nil
	case 1:
		it, err := db.shards[idx[0]].NewIterator(start, limit)
		if err != nil {
			// Return an explicit nil: a typed-nil *lsm.Iterator inside
			// the interface would pass callers' `it != nil` checks.
			return nil, err
		}
		return it, nil
	}
	s, err := db.NewSnapshot()
	if err != nil {
		return nil, err
	}
	return s.newIteratorPlanned(start, limit, idx, ordered, s)
}

// Concat visits per-shard iterators back to back. It is correct exactly
// when the partitioner guarantees the shards hold disjoint contiguous
// key slices in visiting order (Ranges reported ordered == true), which
// makes every advance O(1) — no comparisons, no heap — while still
// yielding one globally sorted stream.
type Concat struct {
	its    []*lsm.Iterator
	pos    int
	snap   *Snapshot // owned single-use snapshot, nil otherwise
	err    error
	closed bool
}

// NewConcat builds a concatenation over iterators whose key ranges are
// disjoint and ascending in slice order.
func NewConcat(its []*lsm.Iterator) *Concat {
	return &Concat{its: its}
}

// Next advances; the iterator starts before the first entry.
func (c *Concat) Next() bool {
	if c.closed || c.err != nil {
		return false
	}
	for c.pos < len(c.its) {
		if c.its[c.pos].Next() {
			return true
		}
		if err := c.its[c.pos].Err(); err != nil {
			c.err = err
			return false
		}
		c.pos++
	}
	return false
}

// Key returns the current key.
func (c *Concat) Key() []byte { return c.its[c.pos].Key() }

// Value returns the current value.
func (c *Concat) Value() []byte { return c.its[c.pos].Value() }

// Err returns the first error the scan encountered.
func (c *Concat) Err() error { return c.err }

// Close releases the per-shard iterators (and the owned snapshot when
// DB.NewIterator created one). Idempotent; returns Err() like
// lsm.Iterator.Close.
func (c *Concat) Close() error {
	if c.closed {
		return c.err
	}
	c.closed = true
	for _, it := range c.its {
		if err := it.Close(); err != nil && c.err == nil {
			c.err = err
		}
	}
	if c.snap != nil {
		c.snap.Close()
	}
	return c.err
}

// Merged is an ascending, globally sorted scan across shards whose key
// ownership is scattered (hash partitioning), produced by a k-way heap
// merge of the per-shard snapshot iterators. Each key lives on exactly
// one shard, so the merge needs no deduplication; ordering is by key
// alone.
type Merged struct {
	all    []*lsm.Iterator
	h      iterHeap
	cur    *lsm.Iterator // source of the current entry; nil before first Next
	snap   *Snapshot     // owned single-use snapshot, nil otherwise
	err    error
	closed bool
}

func newMerged(its []*lsm.Iterator, owned *Snapshot) *Merged {
	out := &Merged{all: its, snap: owned}
	for _, it := range its {
		if it.Next() {
			out.h = append(out.h, it)
		} else if err := it.Err(); err != nil && out.err == nil {
			out.err = err
		}
	}
	heap.Init(&out.h)
	return out
}

// Next advances; the iterator starts before the first entry.
func (it *Merged) Next() bool {
	if it.closed || it.err != nil {
		return false
	}
	if it.cur != nil {
		// Re-admit the source we last yielded from, now at its next
		// position (or retire it when exhausted).
		if it.cur.Next() {
			heap.Push(&it.h, it.cur)
		} else if err := it.cur.Err(); err != nil {
			it.err = err
			it.cur = nil
			return false
		}
		it.cur = nil
	}
	if it.h.Len() == 0 {
		return false
	}
	it.cur = heap.Pop(&it.h).(*lsm.Iterator)
	return true
}

// Key returns the current key.
func (it *Merged) Key() []byte { return it.cur.Key() }

// Value returns the current value.
func (it *Merged) Value() []byte { return it.cur.Value() }

// Err returns the first error the scan encountered.
func (it *Merged) Err() error { return it.err }

// Close releases the per-shard iterators (and the owned snapshot when
// DB.NewIterator created one). Idempotent.
func (it *Merged) Close() error {
	if it.closed {
		return it.err
	}
	it.closed = true
	for _, in := range it.all {
		if err := in.Close(); err != nil && it.err == nil {
			it.err = err
		}
	}
	if it.snap != nil {
		it.snap.Close()
	}
	return it.err
}

// iterHeap is a min-heap of shard iterators ordered by current key.
type iterHeap []*lsm.Iterator

func (h iterHeap) Len() int { return len(h) }
func (h iterHeap) Less(i, j int) bool {
	return bytes.Compare(h[i].Key(), h[j].Key()) < 0
}
func (h iterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x any)   { *h = append(*h, x.(*lsm.Iterator)) }
func (h *iterHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
