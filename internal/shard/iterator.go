package shard

import (
	"bytes"
	"container/heap"

	"repro/internal/lsm"
)

// Iterator is an ascending, globally sorted scan across every shard,
// produced by a k-way heap merge of the per-shard snapshot iterators.
// Each key lives on exactly one shard, so the merge needs no
// deduplication; ordering is by key alone.
//
// Like lsm.Iterator, the snapshot is materialized at creation. Each
// shard's snapshot is point-in-time consistent; the snapshots of
// different shards are taken concurrently but not at one global instant
// (there is no cross-shard write ordering to preserve — only writes to
// the same key order, and a key never changes shards).
type Iterator struct {
	h   iterHeap
	cur *lsm.Iterator // source of the current entry; nil before first Next
	n   int           // total entries across all shards
}

// NewIterator snapshots the range [start, limit) on every shard in
// parallel (nil bounds are unbounded) and returns the merged scan.
func (db *DB) NewIterator(start, limit []byte) (*Iterator, error) {
	its := make([]*lsm.Iterator, len(db.shards))
	if err := db.fanOut(func(i int, s *lsm.DB) error {
		it, err := s.NewIterator(start, limit)
		if err != nil {
			return err
		}
		its[i] = it
		return nil
	}); err != nil {
		return nil, err
	}
	out := &Iterator{}
	for _, it := range its {
		out.n += it.Len()
		if it.Next() {
			out.h = append(out.h, it)
		}
	}
	heap.Init(&out.h)
	return out, nil
}

// Next advances; the iterator starts before the first entry.
func (it *Iterator) Next() bool {
	if it.cur != nil {
		// Re-admit the source we last yielded from, now at its next
		// position (or retire it when exhausted).
		if it.cur.Next() {
			heap.Push(&it.h, it.cur)
		}
		it.cur = nil
	}
	if it.h.Len() == 0 {
		return false
	}
	it.cur = heap.Pop(&it.h).(*lsm.Iterator)
	return true
}

// Key returns the current key.
func (it *Iterator) Key() []byte { return it.cur.Key() }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.cur.Value() }

// Len reports the total number of entries in the merged snapshot.
func (it *Iterator) Len() int { return it.n }

// iterHeap is a min-heap of shard iterators ordered by current key.
type iterHeap []*lsm.Iterator

func (h iterHeap) Len() int { return len(h) }
func (h iterHeap) Less(i, j int) bool {
	return bytes.Compare(h[i].Key(), h[j].Key()) < 0
}
func (h iterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x any)   { *h = append(*h, x.(*lsm.Iterator)) }
func (h *iterHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
