package shard

import (
	"math/rand"
	"sync"
	"testing"
)

// TestClockEpochsUniqueAndOrdered: allocation hands out strictly
// increasing epochs, and per shard, waitTurn admits tickets in exactly
// allocation order.
func TestClockEpochsUniqueAndOrdered(t *testing.T) {
	const shards, workers, perWorker = 3, 8, 200
	c := newClock(shards, 0)
	order := make([][]uint64, shards) // per shard: epochs in commit order
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				// Random non-empty shard subset.
				var idxs []int
				for s := 0; s < shards; s++ {
					if rng.Intn(2) == 0 {
						idxs = append(idxs, s)
					}
				}
				if len(idxs) == 0 {
					idxs = []int{rng.Intn(shards)}
				}
				tk := c.allocate(idxs)
				for j := range idxs {
					c.waitTurn(tk, j)
					mu.Lock()
					order[idxs[j]] = append(order[idxs[j]], tk.epoch)
					mu.Unlock()
					c.shardDone(tk, j)
				}
				c.finish(tk)
			}
		}(w)
	}
	wg.Wait()
	for s, epochs := range order {
		for i := 1; i < len(epochs); i++ {
			if epochs[i] <= epochs[i-1] {
				t.Fatalf("shard %d committed epoch %d after %d — not in ticket order", s, epochs[i], epochs[i-1])
			}
		}
	}
	// Every ticket finished, so the watermark is the last epoch issued.
	if got := c.committedEpoch(); got != uint64(workers*perWorker) {
		t.Fatalf("committedEpoch = %d, want %d", got, workers*perWorker)
	}
}

// TestClockWatermarkGap: the committed watermark must not advance past
// an unfinished epoch, even when later epochs finish first.
func TestClockWatermarkGap(t *testing.T) {
	c := newClock(2, 0)
	t1 := c.allocate([]int{0})
	t2 := c.allocate([]int{1})
	// t2 finishes first: watermark stays below t1.
	c.waitTurn(t2, 0)
	c.shardDone(t2, 0)
	c.finish(t2)
	if got := c.committedEpoch(); got != 0 {
		t.Fatalf("committedEpoch = %d with epoch %d unfinished, want 0", got, t1.epoch)
	}
	done := make(chan struct{})
	go func() {
		c.waitCommitted(t2.epoch)
		close(done)
	}()
	c.waitTurn(t1, 0)
	c.shardDone(t1, 0)
	c.finish(t1)
	<-done // waitCommitted(t2) unblocks once the gap closes
	if got := c.committedEpoch(); got != t2.epoch {
		t.Fatalf("committedEpoch = %d, want %d", got, t2.epoch)
	}
}

// TestClockResume: a clock resuming from a recovered sequence issues
// epochs strictly above it.
func TestClockResume(t *testing.T) {
	c := newClock(2, 41)
	if got := c.committedEpoch(); got != 41 {
		t.Fatalf("committedEpoch = %d, want 41", got)
	}
	tk := c.allocate([]int{0, 1})
	if tk.epoch != 42 {
		t.Fatalf("first epoch = %d, want 42", tk.epoch)
	}
	for j := range tk.shards {
		c.waitTurn(tk, j)
		c.shardDone(tk, j)
	}
	c.finish(tk)
	if got := c.committedEpoch(); got != 42 {
		t.Fatalf("committedEpoch = %d, want 42", got)
	}
}
