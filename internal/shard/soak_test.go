package shard

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestSchedulerSoak is the race-detector soak gate for the shared
// background pool: aggressive concurrent ingest into tiny memtables
// with a low stop-writes trigger, so sealing, flush scheduling,
// subcompaction slicing and write stalls all fire constantly across
// shards contending for two workers — then a clean Close with nothing
// left queued, running or lost.
func TestSchedulerSoak(t *testing.T) {
	eng := smallEngine()
	eng.MemtableBytes = 8 << 10
	eng.FlushThresholdBytes = 4 << 10
	eng.MaxImmutableMemtables = 1
	eng.L0StallFiles = 4
	db, err := Open(Options{
		Shards:            4,
		Engine:            eng,
		NewFS:             MemFS(),
		BackgroundWorkers: 2,
		MaxSubcompactions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	const writers, opsPerWriter = 6, 3000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := bytes.Repeat([]byte{byte(w)}, 120)
			for i := 0; i < opsPerWriter; i++ {
				key := fmt.Sprintf("w%d-%05d", w, i)
				if err := db.Put([]byte(key), val); err != nil {
					t.Error(err)
					return
				}
				if i%13 == 0 {
					if err := db.Delete([]byte(fmt.Sprintf("w%d-%05d", w, i/2))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// The backpressure path must actually have fired, or the soak
	// exercised nothing.
	if m := db.Metrics(); m.WriteStalls == 0 {
		t.Error("soak never stalled a writer; tighten the configuration")
	}

	// Spot-check that the last write of every writer survived the churn.
	for w := 0; w < writers; w++ {
		key := fmt.Sprintf("w%d-%05d", w, opsPerWriter-1)
		if _, err := db.Get([]byte(key)); err != nil {
			t.Fatalf("lost %s: %v", key, err)
		}
	}

	pool := db.Scheduler()
	if pool == nil {
		t.Fatal("store has no scheduler despite BackgroundWorkers=2")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Clean shutdown: every worker exited, nothing queued, nothing
	// still running.
	if s := pool.Stats(); s.Busy != 0 || s.QueuedTotal() != 0 {
		t.Fatalf("pool not drained after Close: %+v", s)
	}
}
