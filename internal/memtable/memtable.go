// Package memtable implements the LSM memory component Cm (paper §2).
//
// Beyond the classic sorted map, entries carry the metadata TRIAD needs
// (paper §4, "TRIAD Memory Overhead Analysis"): a 4-byte update-frequency
// counter for TRIAD-MEM hot/cold separation, and the commit-log file ID and
// offset of the most recent update for TRIAD-LOG's index-only flush.
//
// Updates are absorbed in place (Algorithm 1, Update): a second write to a
// key replaces the value and increments the counter rather than appending a
// version, which is precisely why a skewed workload fills the commit log
// faster than the memtable.
package memtable

import (
	"sort"
	"sync"

	"repro/internal/base"
	"repro/internal/skiplist"
)

// Entry is one memtable record with TRIAD metadata.
type Entry struct {
	Key   []byte
	Value []byte
	Seq   uint64
	Kind  base.Kind
	// Updates counts in-place updates to this key since it entered the
	// memtable (TRIAD-MEM hotness signal).
	Updates uint32
	// LogID and LogOffset locate the most recent record for this key in
	// the commit log (TRIAD-LOG).
	LogID     uint64
	LogOffset int64
}

// Base converts to the shared record type.
func (e *Entry) Base() base.Entry {
	return base.Entry{Key: e.Key, Value: e.Value, Seq: e.Seq, Kind: e.Kind}
}

// entryOverhead approximates per-entry bookkeeping bytes when accounting
// memtable size, matching the paper's 12 B/entry TRIAD overhead plus the
// skiplist node itself.
const entryOverhead = 48

// Memtable is a mutable sorted map. It is safe for concurrent use.
type Memtable struct {
	mu   sync.RWMutex
	list *skiplist.List
	size int64
}

// New returns an empty memtable; seed drives skiplist level randomness.
func New(seed int64) *Memtable {
	return &Memtable{list: skiplist.New(seed)}
}

// Set inserts or updates key. For an update the value is replaced in place,
// the update counter is incremented and the commit-log position is advanced
// to the new record (Algorithm 1, Update).
func (m *Memtable) Set(key, value []byte, seq uint64, kind base.Kind, logID uint64, logOff int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.list.Get(key); ok {
		e := v.(*Entry)
		m.size += int64(len(value)) - int64(len(e.Value))
		e.Value = value
		e.Seq = seq
		e.Kind = kind
		e.Updates++
		e.LogID = logID
		e.LogOffset = logOff
		return
	}
	e := &Entry{Key: key, Value: value, Seq: seq, Kind: kind, Updates: 1, LogID: logID, LogOffset: logOff}
	m.list.Set(key, e)
	m.size += int64(len(key)+len(value)) + entryOverhead
}

// SetLogPos updates an entry's commit-log position under the memtable
// lock. The entry must belong to this memtable; the lock is what keeps
// the write from racing concurrent Gets that copy the entry.
func (m *Memtable) SetLogPos(e *Entry, logID uint64, off int64) {
	m.mu.Lock()
	e.LogID = logID
	e.LogOffset = off
	m.mu.Unlock()
}

// Get returns a copy of the entry stored under key.
func (m *Memtable) Get(key []byte) (Entry, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.list.Get(key)
	if !ok {
		return Entry{}, false
	}
	return *v.(*Entry), true
}

// Len reports the number of entries.
func (m *Memtable) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.list.Len()
}

// ApproxSize reports the approximate heap footprint in bytes; the flush
// trigger compares it against the configured memtable budget.
func (m *Memtable) ApproxSize() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.size
}

// All returns every entry in ascending key order. The returned pointers
// alias live entries; callers must only use them while the memtable is no
// longer mutated (i.e. after it has been sealed for flush).
func (m *Memtable) All() []*Entry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Entry, 0, m.list.Len())
	it := m.list.NewIterator()
	for it.Next() {
		out = append(out, it.Value().(*Entry))
	}
	return out
}

// SeekAll returns entries with key >= from, ascending.
func (m *Memtable) SeekAll(from []byte) []*Entry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Entry
	it := m.list.NewIterator()
	if !it.SeekGE(from) {
		return nil
	}
	out = append(out, it.Value().(*Entry))
	for it.Next() {
		out = append(out, it.Value().(*Entry))
	}
	return out
}

// Iter is a streaming iterator over the memtable in ascending key order.
// It is safe to use while the memtable is still receiving writes: every
// step takes the memtable lock, advances, copies the current entry and
// releases, so the iterator holds no lock between steps and never blocks
// writers for longer than one entry copy. Skiplist nodes are never
// removed, so a held position stays valid across concurrent inserts.
// Keys inserted mid-iteration behind the current position are not
// revisited; in-place updates ahead of it are observed with their new
// sequence number — callers needing a point-in-time view filter by
// sequence (the snapshot layer does).
type Iter struct {
	m   *Memtable
	it  *skiplist.Iterator
	cur Entry
	ok  bool
}

// NewIter returns an iterator positioned before the first entry.
func (m *Memtable) NewIter() *Iter {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return &Iter{m: m, it: m.list.NewIterator()}
}

// Next advances and reports whether an entry is available.
func (it *Iter) Next() bool {
	it.m.mu.RLock()
	it.ok = it.it.Next()
	if it.ok {
		it.cur = *it.it.Value().(*Entry)
	}
	it.m.mu.RUnlock()
	return it.ok
}

// SeekGE positions at the first entry with key >= key.
func (it *Iter) SeekGE(key []byte) bool {
	it.m.mu.RLock()
	it.ok = it.it.SeekGE(key)
	if it.ok {
		it.cur = *it.it.Value().(*Entry)
	}
	it.m.mu.RUnlock()
	return it.ok
}

// Entry returns a copy of the current entry (valid after a true
// Next/SeekGE). The slices it references are never mutated in place by
// the memtable, so they stay stable.
func (it *Iter) Entry() Entry { return it.cur }

// HotPolicy selects how SeparateKeys picks hot entries.
type HotPolicy uint8

const (
	// HotTopK keeps the K most-updated entries (Algorithm 2,
	// separateKeys, with K derived from a fraction of the memtable).
	HotTopK HotPolicy = iota
	// HotAboveMean keeps entries updated strictly more often than the
	// mean update frequency — the variant §4.1 reports "is effective in
	// all workloads".
	HotAboveMean
)

// Separation is the result of hot/cold key separation.
type Separation struct {
	Hot  []*Entry // stay in memory, re-logged to the fresh commit log
	Cold []*Entry // flushed to L0, ascending key order
}

// SeparateKeys splits the (sealed) memtable into hot and cold entry sets
// per Algorithm 2. hotFraction bounds the hot set to that fraction of the
// entry count when policy is HotTopK. Update counters of the hot survivors
// are reset ("Reset hotness").
//
// The whole separation holds the write lock: readers that captured this
// memtable before it was sealed (the TRIAD-MEM compaction skip check)
// may still be calling Get, and the counter reset below mutates entries
// those Gets copy.
func (m *Memtable) SeparateKeys(policy HotPolicy, hotFraction float64) Separation {
	m.mu.Lock()
	defer m.mu.Unlock()
	all := make([]*Entry, 0, m.list.Len())
	it := m.list.NewIterator()
	for it.Next() {
		all = append(all, it.Value().(*Entry))
	}
	if len(all) == 0 {
		return Separation{}
	}
	var hotSet map[*Entry]bool
	switch policy {
	case HotAboveMean:
		var sum uint64
		for _, e := range all {
			sum += uint64(e.Updates)
		}
		mean := float64(sum) / float64(len(all))
		hotSet = make(map[*Entry]bool)
		for _, e := range all {
			if float64(e.Updates) > mean {
				hotSet[e] = true
			}
		}
	default: // HotTopK
		k := int(float64(len(all)) * hotFraction)
		if k <= 0 {
			break
		}
		byUpdates := append([]*Entry(nil), all...)
		sort.SliceStable(byUpdates, func(i, j int) bool {
			return byUpdates[i].Updates > byUpdates[j].Updates
		})
		// Entries updated exactly once were never re-written; keeping
		// them hot buys nothing and costs write-back, so the hot set
		// stops at the first single-update entry.
		hotSet = make(map[*Entry]bool, k)
		for _, e := range byUpdates[:k] {
			if e.Updates <= 1 {
				break
			}
			hotSet[e] = true
		}
	}
	var sep Separation
	for _, e := range all {
		if hotSet[e] {
			e.Updates = 0 // reset hotness
			sep.Hot = append(sep.Hot, e)
		} else {
			sep.Cold = append(sep.Cold, e)
		}
	}
	return sep
}
