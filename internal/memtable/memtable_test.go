package memtable

import (
	"fmt"
	"testing"

	"repro/internal/base"
)

func put(m *Memtable, key, val string, seq uint64) {
	m.Set([]byte(key), []byte(val), seq, base.KindSet, 1, int64(seq)*100)
}

func TestSetGet(t *testing.T) {
	m := New(1)
	put(m, "a", "1", 1)
	e, ok := m.Get([]byte("a"))
	if !ok || string(e.Value) != "1" || e.Updates != 1 {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	if _, ok := m.Get([]byte("b")); ok {
		t.Fatal("Get of absent key returned ok")
	}
}

func TestInPlaceUpdateIncrementsCounter(t *testing.T) {
	m := New(1)
	for i := 1; i <= 5; i++ {
		put(m, "hot", fmt.Sprint(i), uint64(i))
	}
	e, _ := m.Get([]byte("hot"))
	if e.Updates != 5 {
		t.Fatalf("Updates = %d, want 5", e.Updates)
	}
	if string(e.Value) != "5" || e.Seq != 5 {
		t.Fatalf("value/seq = %q/%d, want 5/5", e.Value, e.Seq)
	}
	if e.LogOffset != 500 {
		t.Fatalf("LogOffset = %d, want most recent (500)", e.LogOffset)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (in-place)", m.Len())
	}
}

func TestSizeTracksValueGrowth(t *testing.T) {
	m := New(1)
	put(m, "k", "short", 1)
	s1 := m.ApproxSize()
	put(m, "k", "a-much-longer-value-now", 2)
	if m.ApproxSize() <= s1 {
		t.Fatal("size did not grow with larger value")
	}
	put(m, "k", "s", 3)
	if m.ApproxSize() >= s1 {
		t.Fatal("size did not shrink with smaller value")
	}
}

func TestTombstone(t *testing.T) {
	m := New(1)
	put(m, "k", "v", 1)
	m.Set([]byte("k"), nil, 2, base.KindDelete, 1, 0)
	e, ok := m.Get([]byte("k"))
	if !ok || e.Kind != base.KindDelete {
		t.Fatalf("tombstone lookup = %+v, %v", e, ok)
	}
	if e.Updates != 2 {
		t.Fatalf("Updates = %d, want 2 (delete counts as update)", e.Updates)
	}
}

func TestAllSorted(t *testing.T) {
	m := New(1)
	for _, k := range []string{"d", "a", "c", "b"} {
		put(m, k, k, 1)
	}
	all := m.All()
	want := []string{"a", "b", "c", "d"}
	if len(all) != 4 {
		t.Fatalf("All returned %d entries", len(all))
	}
	for i, e := range all {
		if string(e.Key) != want[i] {
			t.Fatalf("All[%d] = %q, want %q", i, e.Key, want[i])
		}
	}
}

func TestSeekAll(t *testing.T) {
	m := New(1)
	for i := 0; i < 10; i++ {
		put(m, fmt.Sprintf("%02d", i), "v", uint64(i+1))
	}
	got := m.SeekAll([]byte("05"))
	if len(got) != 5 || string(got[0].Key) != "05" {
		t.Fatalf("SeekAll(05) = %d entries starting %q", len(got), got[0].Key)
	}
	if m.SeekAll([]byte("99")) != nil {
		t.Fatal("SeekAll past end returned entries")
	}
}

func makeSkewed(t *testing.T) *Memtable {
	t.Helper()
	m := New(1)
	seq := uint64(0)
	// 10 hot keys updated 20x each, 90 cold keys written once.
	for round := 0; round < 20; round++ {
		for h := 0; h < 10; h++ {
			seq++
			put(m, fmt.Sprintf("hot%02d", h), fmt.Sprint(round), seq)
		}
	}
	for c := 0; c < 90; c++ {
		seq++
		put(m, fmt.Sprintf("cold%02d", c), "v", seq)
	}
	return m
}

func TestSeparateKeysTopK(t *testing.T) {
	m := makeSkewed(t)
	sep := m.SeparateKeys(HotTopK, 0.10) // top 10% of 100 entries = 10
	if len(sep.Hot) != 10 {
		t.Fatalf("hot = %d, want 10", len(sep.Hot))
	}
	if len(sep.Cold) != 90 {
		t.Fatalf("cold = %d, want 90", len(sep.Cold))
	}
	for _, e := range sep.Hot {
		if string(e.Key[:3]) != "hot" {
			t.Fatalf("cold key %q classified hot", e.Key)
		}
		if e.Updates != 0 {
			t.Fatalf("hot key %q hotness not reset: %d", e.Key, e.Updates)
		}
	}
	// Cold output must be sorted (it feeds the SSTable writer).
	for i := 1; i < len(sep.Cold); i++ {
		if string(sep.Cold[i-1].Key) >= string(sep.Cold[i].Key) {
			t.Fatal("cold entries not sorted")
		}
	}
}

func TestSeparateKeysAboveMean(t *testing.T) {
	m := makeSkewed(t)
	sep := m.SeparateKeys(HotAboveMean, 0)
	// Mean updates = (10*20 + 90*1)/100 = 2.9; only the 20x keys exceed it.
	if len(sep.Hot) != 10 {
		t.Fatalf("hot = %d, want 10", len(sep.Hot))
	}
}

func TestSeparateKeysSingleUpdateNeverHot(t *testing.T) {
	m := New(1)
	for i := 0; i < 100; i++ {
		put(m, fmt.Sprintf("%02d", i), "v", uint64(i+1))
	}
	sep := m.SeparateKeys(HotTopK, 0.5)
	if len(sep.Hot) != 0 {
		t.Fatalf("uniform single-write memtable produced %d hot keys, want 0", len(sep.Hot))
	}
	if len(sep.Cold) != 100 {
		t.Fatalf("cold = %d, want 100", len(sep.Cold))
	}
}

func TestSeparateKeysEmpty(t *testing.T) {
	m := New(1)
	sep := m.SeparateKeys(HotTopK, 0.5)
	if sep.Hot != nil || sep.Cold != nil {
		t.Fatal("empty memtable separation returned entries")
	}
}

func TestSeparateKeysZeroFraction(t *testing.T) {
	m := makeSkewed(t)
	sep := m.SeparateKeys(HotTopK, 0)
	if len(sep.Hot) != 0 || len(sep.Cold) != 100 {
		t.Fatalf("zero fraction: hot=%d cold=%d", len(sep.Hot), len(sep.Cold))
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := New(1)
	done := make(chan bool, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 1000; i++ {
				m.Set([]byte(fmt.Sprintf("g%d-%d", g, i%50)), []byte("v"), uint64(i), base.KindSet, 0, 0)
			}
			done <- true
		}(g)
		go func(g int) {
			for i := 0; i < 1000; i++ {
				m.Get([]byte(fmt.Sprintf("g%d-%d", g, i%50)))
			}
			done <- true
		}(g)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if m.Len() != 200 {
		t.Fatalf("Len = %d, want 200", m.Len())
	}
}
