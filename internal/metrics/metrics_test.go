package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestSnapshotAndDerived(t *testing.T) {
	var m Metrics
	m.UserBytes.Add(1000)
	m.UserWrites.Add(10)
	m.UserReads.Add(4)
	m.BytesLogged.Add(1000)
	m.BytesFlushed.Add(900)
	m.BytesCompacted.Add(2100)
	m.TableDiskReads.Add(12)
	m.FlushNanos.Add(int64(200 * time.Millisecond))
	m.CompactionNanos.Add(int64(300 * time.Millisecond))

	s := m.Snapshot()
	if got := s.WriteAmplification(); got != 4.0 {
		t.Fatalf("WA = %.2f, want 4.0", got)
	}
	// Paper formula: (flushed + compacted) / flushed.
	if got := s.FlushRelativeWA(); got < 3.33 || got > 3.34 {
		t.Fatalf("flush-relative WA = %.3f, want ≈3.333", got)
	}
	if got := s.ReadAmplification(); got != 3.0 {
		t.Fatalf("RA = %.2f, want 3.0", got)
	}
	if got := s.BackgroundTime(); got != 500*time.Millisecond {
		t.Fatalf("BackgroundTime = %v", got)
	}
	if got := s.PercentTimeInCompaction(time.Second); got != 30 {
		t.Fatalf("PctCompaction = %.1f, want 30", got)
	}
}

func TestZeroDenominators(t *testing.T) {
	var s Snapshot
	if s.WriteAmplification() != 0 || s.ReadAmplification() != 0 || s.FlushRelativeWA() != 0 {
		t.Fatal("zero-denominator metrics must be 0")
	}
	if s.PercentTimeInCompaction(0) != 0 {
		t.Fatal("zero elapsed must be 0")
	}
}

func TestSub(t *testing.T) {
	var m Metrics
	m.UserBytes.Add(100)
	m.Flushes.Add(1)
	before := m.Snapshot()
	m.UserBytes.Add(50)
	m.Flushes.Add(2)
	m.CompactionNanos.Add(int64(time.Second))
	window := m.Snapshot().Sub(before)
	if window.UserBytes != 50 || window.Flushes != 2 {
		t.Fatalf("window = %+v", window)
	}
	if window.CompactionTime != time.Second {
		t.Fatalf("window compaction time = %v", window.CompactionTime)
	}
}

func TestConcurrentCounters(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.UserWrites.Add(1)
				m.UserBytes.Add(10)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.UserWrites != 8000 || s.UserBytes != 80000 {
		t.Fatalf("counters = %d/%d", s.UserWrites, s.UserBytes)
	}
}

// TestSnapshotAdd: Add is the shard roll-up; it must be counter-wise,
// invert Sub, and leave derived metrics computed on the aggregate.
func TestSnapshotAdd(t *testing.T) {
	a := Snapshot{UserWrites: 10, UserBytes: 1000, BytesLogged: 500,
		BytesFlushed: 300, BytesCompacted: 200, Flushes: 2,
		FlushTime: time.Second, HotKeysKeptInMem: 7}
	b := Snapshot{UserWrites: 5, UserBytes: 500, BytesLogged: 250,
		BytesFlushed: 150, BytesCompacted: 100, Flushes: 1,
		FlushTime: 2 * time.Second, HotKeysKeptInMem: 3}
	sum := a.Add(b)
	if sum.UserWrites != 15 || sum.UserBytes != 1500 || sum.Flushes != 3 {
		t.Fatalf("Add: %+v", sum)
	}
	if sum.FlushTime != 3*time.Second || sum.HotKeysKeptInMem != 10 {
		t.Fatalf("Add: %+v", sum)
	}
	if got := sum.Sub(b); got != a {
		t.Fatalf("Add then Sub != identity: %+v", got)
	}
	// Aggregate WA over the sum equals WA of the combined counters.
	if got := sum.WriteAmplification(); got != float64(750+450+300)/1500 {
		t.Fatalf("aggregate WA = %v", got)
	}
}
