// Package metrics collects the evaluation metrics of the paper (§5.1):
// throughput is measured by the harness; this package tracks the I/O-side
// quantities — bytes flushed / compacted / logged, user bytes, disk reads
// per Get, background wall time — from which write amplification (WA),
// read amplification (RA) and %-time-in-compaction are derived.
package metrics

import (
	"sync/atomic"
	"time"
)

// Metrics is a set of cumulative counters. All methods are safe for
// concurrent use. The zero value is ready.
type Metrics struct {
	// User-side.
	UserWrites     atomic.Int64 // Put/Delete operations
	UserReads      atomic.Int64 // Get operations
	UserBytes      atomic.Int64 // key+value bytes written by the application
	ReadsFromMem   atomic.Int64 // Gets answered by a memtable
	TableDiskReads atomic.Int64 // data-block/log reads performed by Gets

	// Storage-side writes, by origin.
	BytesLogged    atomic.Int64 // commit-log appends (incl. TRIAD-MEM write-back)
	BytesFlushed   atomic.Int64 // flush output (SSTables, or CL indexes under TRIAD-LOG)
	BytesCompacted atomic.Int64 // compaction output

	// Background operation counts and wall time.
	Flushes            atomic.Int64
	FlushSkips         atomic.Int64 // TRIAD-MEM FLUSH_TH small-memtable skips
	Compactions        atomic.Int64
	CompactionsDefer   atomic.Int64 // TRIAD-DISK deferrals
	FlushNanos         atomic.Int64
	CompactionNanos    atomic.Int64
	EntriesCompacted   atomic.Int64
	EntriesDiscarded   atomic.Int64 // stale versions dropped by compaction
	HotKeysKeptInMem   atomic.Int64 // TRIAD-MEM hot survivors across flushes
	ColdEntriesFlushed atomic.Int64

	// Write-stall accounting: how often writers blocked on backpressure
	// (flush queue full or L0 at its stop-writes trigger) and for how
	// long in total — the user-visible cost of background-I/O debt.
	WriteStalls     atomic.Int64
	WriteStallNanos atomic.Int64
}

// Snapshot is a point-in-time copy with derived metrics.
type Snapshot struct {
	UserWrites, UserReads, UserBytes          int64
	ReadsFromMem, TableDiskReads              int64
	BytesLogged, BytesFlushed, BytesCompacted int64
	Flushes, FlushSkips                       int64
	Compactions, CompactionsDeferred          int64
	FlushTime, CompactionTime                 time.Duration
	EntriesCompacted, EntriesDiscarded        int64
	HotKeysKeptInMem, ColdEntriesFlushed      int64
	WriteStalls                               int64
	WriteStallTime                            time.Duration
}

// Snapshot captures the current counters.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		UserWrites:          m.UserWrites.Load(),
		UserReads:           m.UserReads.Load(),
		UserBytes:           m.UserBytes.Load(),
		ReadsFromMem:        m.ReadsFromMem.Load(),
		TableDiskReads:      m.TableDiskReads.Load(),
		BytesLogged:         m.BytesLogged.Load(),
		BytesFlushed:        m.BytesFlushed.Load(),
		BytesCompacted:      m.BytesCompacted.Load(),
		Flushes:             m.Flushes.Load(),
		FlushSkips:          m.FlushSkips.Load(),
		Compactions:         m.Compactions.Load(),
		CompactionsDeferred: m.CompactionsDefer.Load(),
		FlushTime:           time.Duration(m.FlushNanos.Load()),
		CompactionTime:      time.Duration(m.CompactionNanos.Load()),
		EntriesCompacted:    m.EntriesCompacted.Load(),
		EntriesDiscarded:    m.EntriesDiscarded.Load(),
		HotKeysKeptInMem:    m.HotKeysKeptInMem.Load(),
		ColdEntriesFlushed:  m.ColdEntriesFlushed.Load(),
		WriteStalls:         m.WriteStalls.Load(),
		WriteStallTime:      time.Duration(m.WriteStallNanos.Load()),
	}
}

// Sub returns s - earlier, counter-wise (for measuring a window).
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	return Snapshot{
		UserWrites:          s.UserWrites - earlier.UserWrites,
		UserReads:           s.UserReads - earlier.UserReads,
		UserBytes:           s.UserBytes - earlier.UserBytes,
		ReadsFromMem:        s.ReadsFromMem - earlier.ReadsFromMem,
		TableDiskReads:      s.TableDiskReads - earlier.TableDiskReads,
		BytesLogged:         s.BytesLogged - earlier.BytesLogged,
		BytesFlushed:        s.BytesFlushed - earlier.BytesFlushed,
		BytesCompacted:      s.BytesCompacted - earlier.BytesCompacted,
		Flushes:             s.Flushes - earlier.Flushes,
		FlushSkips:          s.FlushSkips - earlier.FlushSkips,
		Compactions:         s.Compactions - earlier.Compactions,
		CompactionsDeferred: s.CompactionsDeferred - earlier.CompactionsDeferred,
		FlushTime:           s.FlushTime - earlier.FlushTime,
		CompactionTime:      s.CompactionTime - earlier.CompactionTime,
		EntriesCompacted:    s.EntriesCompacted - earlier.EntriesCompacted,
		EntriesDiscarded:    s.EntriesDiscarded - earlier.EntriesDiscarded,
		HotKeysKeptInMem:    s.HotKeysKeptInMem - earlier.HotKeysKeptInMem,
		ColdEntriesFlushed:  s.ColdEntriesFlushed - earlier.ColdEntriesFlushed,
		WriteStalls:         s.WriteStalls - earlier.WriteStalls,
		WriteStallTime:      s.WriteStallTime - earlier.WriteStallTime,
	}
}

// Add returns s + other, counter-wise — the roll-up used to aggregate
// per-shard snapshots into one store-wide view.
func (s Snapshot) Add(other Snapshot) Snapshot {
	return Snapshot{
		UserWrites:          s.UserWrites + other.UserWrites,
		UserReads:           s.UserReads + other.UserReads,
		UserBytes:           s.UserBytes + other.UserBytes,
		ReadsFromMem:        s.ReadsFromMem + other.ReadsFromMem,
		TableDiskReads:      s.TableDiskReads + other.TableDiskReads,
		BytesLogged:         s.BytesLogged + other.BytesLogged,
		BytesFlushed:        s.BytesFlushed + other.BytesFlushed,
		BytesCompacted:      s.BytesCompacted + other.BytesCompacted,
		Flushes:             s.Flushes + other.Flushes,
		FlushSkips:          s.FlushSkips + other.FlushSkips,
		Compactions:         s.Compactions + other.Compactions,
		CompactionsDeferred: s.CompactionsDeferred + other.CompactionsDeferred,
		FlushTime:           s.FlushTime + other.FlushTime,
		CompactionTime:      s.CompactionTime + other.CompactionTime,
		EntriesCompacted:    s.EntriesCompacted + other.EntriesCompacted,
		EntriesDiscarded:    s.EntriesDiscarded + other.EntriesDiscarded,
		HotKeysKeptInMem:    s.HotKeysKeptInMem + other.HotKeysKeptInMem,
		ColdEntriesFlushed:  s.ColdEntriesFlushed + other.ColdEntriesFlushed,
		WriteStalls:         s.WriteStalls + other.WriteStalls,
		WriteStallTime:      s.WriteStallTime + other.WriteStallTime,
	}
}

// WriteAmplification is the system-wide WA: every byte the store wrote
// (log + flush + compaction) per user byte. This is the conventional
// whole-system definition; it subsumes the paper's flush-relative formula
// and produces the same orderings.
func (s Snapshot) WriteAmplification() float64 {
	if s.UserBytes == 0 {
		return 0
	}
	return float64(s.BytesLogged+s.BytesFlushed+s.BytesCompacted) / float64(s.UserBytes)
}

// FlushRelativeWA is the paper's §5.1 formula:
// (Bytes_flushed + Bytes_compacted) / Bytes_flushed.
func (s Snapshot) FlushRelativeWA() float64 {
	if s.BytesFlushed == 0 {
		return 0
	}
	return float64(s.BytesFlushed+s.BytesCompacted) / float64(s.BytesFlushed)
}

// ReadAmplification is the average number of disk accesses per Get.
func (s Snapshot) ReadAmplification() float64 {
	if s.UserReads == 0 {
		return 0
	}
	return float64(s.TableDiskReads) / float64(s.UserReads)
}

// BackgroundTime is total flush + compaction wall time.
func (s Snapshot) BackgroundTime() time.Duration { return s.FlushTime + s.CompactionTime }

// PercentTimeInCompaction reports compaction time as a percentage of
// elapsed (one background worker, so directly comparable to the paper's
// per-run percentage).
func (s Snapshot) PercentTimeInCompaction(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return 100 * float64(s.CompactionTime) / float64(elapsed)
}
