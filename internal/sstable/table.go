// Package sstable implements the on-disk sorted-table formats of the
// engine's disk component Cdisk (paper §2):
//
//   - the classic SSTable: sorted data blocks, a sparse index, a Bloom
//     filter, a HyperLogLog sketch, properties and a footer, produced by
//     flushes and compactions; and
//   - the CL-SSTable of TRIAD-LOG (paper §4.3): a small sorted index of
//     (key → commit-log offset) paired with the sealed commit-log file that
//     holds the values, so a flush writes only the index.
//
// Both satisfy the Table interface, which is what the read path, the
// compaction merge and the manifest operate on — the rest of the engine is
// format-agnostic.
//
// The shared block cache hands out per-tenant Handles whose resident
// bytes are reclaimed only by Release; triadlint's mustclose analyzer
// (see internal/lint) enforces that every NewHandle result is released
// on all control-flow paths or escapes to a tracked owner.
package sstable

import (
	"fmt"

	"repro/internal/base"
	"repro/internal/hll"
	"repro/internal/obs"
)

// Table is a read-only sorted table of versioned entries.
type Table interface {
	// ID is the table's file number.
	ID() uint64
	// Get returns the entry for key if present. diskReads reports how
	// many distinct disk reads the lookup performed (0 when the Bloom
	// filter excluded the key), which feeds read amplification. tr, when
	// non-nil, receives an sstable_read span per disk read (the usual
	// caller passes nil).
	Get(key []byte, tr *obs.Trace) (e base.Entry, found bool, diskReads int, err error)
	// NewIterator iterates all entries in ascending key order.
	NewIterator() (Iterator, error)
	// Smallest and Largest bound the key range (inclusive).
	Smallest() []byte
	Largest() []byte
	// NumEntries is the number of records in the table.
	NumEntries() uint64
	// FileSize is the on-disk size in bytes of the table file itself
	// (for a CL-SSTable: the index file, not the shared log).
	FileSize() int64
	// Sketch returns the table's HyperLogLog key sketch (TRIAD-DISK).
	Sketch() *hll.Sketch
	// Close releases file handles.
	Close() error
}

// Iterator walks a table in ascending key order.
//
// Usage: for it.Next() { e := it.Entry() ... }; check Err, then Close.
type Iterator interface {
	// Next advances and reports whether an entry is available.
	Next() bool
	// SeekGE positions at the first entry with key >= key.
	SeekGE(key []byte) bool
	// Entry returns the current entry. The returned slices are stable
	// (not reused across Next calls).
	Entry() base.Entry
	// Err returns the first error encountered.
	Err() error
	// Close releases iterator resources.
	Close() error
}

// FileName returns the canonical name of classic SSTable id.
func FileName(id uint64) string { return fmt.Sprintf("%06d.sst", id) }

// CLIndexFileName returns the canonical name of a CL-SSTable index file.
func CLIndexFileName(id uint64) string { return fmt.Sprintf("%06d.clidx", id) }

const footerMagic uint64 = 0x7472696164317632 // "triad1v2"
