package sstable

import (
	"testing"
)

// BenchmarkBlockCacheParallelGet measures hot-path Get throughput under
// parallelism (RunParallel scales goroutines with GOMAXPROCS): the
// lock-striped default against the single-mutex plain LRU it replaced.
// Every lookup hits (the working set fits), so the benchmark isolates
// lock contention on the recency update — the striped cache should
// scale with cores where the mutex LRU flatlines. Compare:
//
//	go test -run XXX -bench ParallelGet -cpu 1,4,8 ./internal/sstable/
func BenchmarkBlockCacheParallelGet(b *testing.B) {
	configs := []struct {
		name string
		o    CacheOptions
	}{
		{"striped", CacheOptions{Bytes: 64 << 20}},
		{"mutex-lru", CacheOptions{Bytes: 64 << 20, Segments: 1, PlainLRU: true}},
	}
	const blocks = 4096 // 16 MiB resident, fits either cache
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			h := NewCacheOpts(cfg.o).NewHandle()
			blk := make([]byte, 4<<10)
			for i := uint64(0); i < blocks; i++ {
				h.Put(1, i<<12, blk)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var x uint64 = 0x9E3779B97F4A7C15
				for pb.Next() {
					x = x*6364136223846793005 + 1
					off := ((x >> 33) % blocks) << 12
					if h.Get(1, off) == nil {
						h.Put(1, off, blk)
					}
				}
			})
		})
	}
}

// BenchmarkBlockCachePutEvict measures the insert path under constant
// eviction pressure: a cache one-quarter the size of the key set, so
// every Put displaces (or, with admission on, is refused residency).
func BenchmarkBlockCachePutEvict(b *testing.B) {
	configs := []struct {
		name string
		o    CacheOptions
	}{
		{"striped", CacheOptions{Bytes: 4 << 20}},
		{"mutex-lru", CacheOptions{Bytes: 4 << 20, Segments: 1, PlainLRU: true}},
	}
	const span = 4096
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			h := NewCacheOpts(cfg.o).NewHandle()
			blk := make([]byte, 4<<10)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var x uint64 = 0xD1B54A32D192ED03
				for pb.Next() {
					x = x*6364136223846793005 + 1
					h.Put(2, ((x>>33)%span)<<12, blk)
				}
			})
		})
	}
}
