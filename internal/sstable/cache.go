package sstable

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// BlockCache is a sharded-free LRU cache of decoded table blocks keyed by
// (table ID, block offset). Production LSMs (RocksDB included) serve hot
// data blocks from such a cache; lookups that hit it do not count as disk
// accesses for read amplification, matching how the paper's substrate
// behaves with its default block cache.
//
// A nil *BlockCache is valid and caches nothing.
type BlockCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List // front = most recent
	items    map[cacheKey]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheKey struct {
	table  uint64
	offset uint64
}

type cacheEntry struct {
	key   cacheKey
	block []byte
}

// NewBlockCache returns a cache bounded to capacity bytes of block data.
// capacity <= 0 returns nil (caching disabled).
func NewBlockCache(capacity int64) *BlockCache {
	if capacity <= 0 {
		return nil
	}
	return &BlockCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element),
	}
}

// Get returns the cached block for (table, offset), or nil.
func (c *BlockCache) Get(table, offset uint64) []byte {
	if c == nil {
		return nil
	}
	k := cacheKey{table, offset}
	c.mu.Lock()
	var block []byte
	el, ok := c.items[k]
	if ok {
		c.ll.MoveToFront(el)
		// Capture the slice under the lock: a concurrent Put to the
		// same key replaces entry.block in place.
		block = el.Value.(*cacheEntry).block
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return block
}

// Put inserts a block, evicting least-recently-used blocks as needed.
// Blocks larger than the whole cache are not admitted.
func (c *BlockCache) Put(table, offset uint64, block []byte) {
	if c == nil || int64(len(block)) > c.capacity {
		return
	}
	k := cacheKey{table, offset}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		old := el.Value.(*cacheEntry)
		c.used += int64(len(block)) - int64(len(old.block))
		old.block = block
	} else {
		el := c.ll.PushFront(&cacheEntry{key: k, block: block})
		c.items[k] = el
		c.used += int64(len(block))
	}
	for c.used > c.capacity {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, ent.key)
		c.used -= int64(len(ent.block))
	}
}

// EvictTable drops every cached block of a table (called when compaction
// deletes the file).
func (c *BlockCache) EvictTable(table uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		if ent.key.table == table {
			c.ll.Remove(el)
			delete(c.items, ent.key)
			c.used -= int64(len(ent.block))
		}
		el = next
	}
}

// Stats reports cumulative hits and misses.
func (c *BlockCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Used reports the current resident byte count.
func (c *BlockCache) Used() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}
