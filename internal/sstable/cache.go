package sstable

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Cache is the store-wide block cache: one budget of decoded table
// blocks shared by every shard's engine, replacing the per-shard mutex
// LRU caches the engine used before. Production LSMs (RocksDB included)
// serve hot data blocks from such a cache; lookups that hit it do not
// count as disk accesses for read amplification, matching how the
// paper's substrate behaves with its default block cache.
//
// Three properties matter on the sharded read hot path, and each is a
// deliberate structural choice:
//
//   - Lock striping. The cache is split into power-of-two segments, each
//     with its own mutex, keyed by a hash of (handle, table, offset).
//     A Get takes exactly one segment lock, so concurrent readers on
//     different blocks proceed in parallel instead of serializing
//     through one cache-wide mutex.
//
//   - Scan resistance. Each segment is a segmented LRU (a probation
//     queue for new arrivals, a protected queue for re-referenced
//     blocks) guarded by a TinyLFU-style 4-bit frequency sketch: a block
//     is admitted over a resident victim only if it has been touched
//     more often. A full-keyspace streaming scan or a compaction
//     read-through touches each block once, so its blocks lose the
//     admission comparison against the resident hot set and the hot
//     set's hit rate survives the scan.
//
//   - Per-shard accounting. Every engine sharing the cache draws blocks
//     through its own Handle, which counts hits, misses, evictions and
//     resident bytes per shard. Memory is not pre-split: a hot shard
//     organically occupies more of the shared budget than a cold one,
//     and the per-handle stats make that visible.
//
// A nil *Cache (and a nil *Handle) is valid and caches nothing.
type Cache struct {
	segs    []*segment
	segMask uint64
	cap     int64
	nextID  atomic.Uint64
}

// CacheOptions configures NewCacheOpts.
type CacheOptions struct {
	// Bytes is the total capacity across all segments; <= 0 disables the
	// cache (NewCacheOpts returns nil).
	Bytes int64
	// Segments is the lock-stripe count, rounded up to a power of two;
	// 0 means 16. Small capacities collapse to fewer segments so each
	// stripe stays big enough to hold several blocks.
	Segments int
	// PlainLRU disables the frequency-sketch admission filter and the
	// probation/protected segmentation, leaving a plain LRU per segment.
	// Combined with Segments: 1 this reproduces the engine's previous
	// single-mutex LRU cache; it exists as the comparison baseline for
	// the scan-resistance tests and contention benchmarks.
	PlainLRU bool
}

// minSegmentBytes keeps each stripe large enough for a handful of
// typical 4 KiB blocks; caches smaller than Segments*minSegmentBytes
// get fewer stripes rather than degenerate ones.
const minSegmentBytes = 32 << 10

// NewCache returns a store-wide cache bounded to capacity bytes with
// the default configuration (16 stripes, scan-resistant admission).
// capacity <= 0 returns nil (caching disabled).
func NewCache(capacity int64) *Cache {
	return NewCacheOpts(CacheOptions{Bytes: capacity})
}

// NewCacheOpts returns a cache configured by o, or nil when o.Bytes <= 0.
func NewCacheOpts(o CacheOptions) *Cache {
	if o.Bytes <= 0 {
		return nil
	}
	n := o.Segments
	if n <= 0 {
		n = 16
	}
	segs := 1
	for segs < n {
		segs <<= 1
	}
	for segs > 1 && o.Bytes/int64(segs) < minSegmentBytes {
		segs >>= 1
	}
	c := &Cache{segs: make([]*segment, segs), segMask: uint64(segs - 1), cap: o.Bytes}
	per := o.Bytes / int64(segs)
	// Distribute the rounding remainder so segment capacities sum to the
	// configured total.
	rem := o.Bytes - per*int64(segs)
	for i := range c.segs {
		cap := per
		if int64(i) < rem {
			cap++
		}
		c.segs[i] = newSegment(cap, o.PlainLRU)
	}
	return c
}

// NewHandle registers a new accounting tenant (one per engine instance
// sharing the cache) and returns its view. Safe on a nil Cache, which
// yields a nil (no-op) Handle.
func (c *Cache) NewHandle() *Handle {
	if c == nil {
		return nil
	}
	return &Handle{c: c, id: c.nextID.Add(1)}
}

// Capacity reports the configured byte budget (0 on nil).
func (c *Cache) Capacity() int64 {
	if c == nil {
		return 0
	}
	return c.cap
}

// Used reports the resident byte count across all segments.
func (c *Cache) Used() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for _, s := range c.segs {
		s.mu.Lock()
		n += s.used
		s.mu.Unlock()
	}
	return n
}

// Stats reports the cache-wide counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{Capacity: c.cap}
	for _, s := range c.segs {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.AdmissionRejects += s.rejects
		st.Resident += s.used
		s.mu.Unlock()
	}
	return st
}

// CacheStats is a point-in-time counter snapshot, either cache-wide
// (Cache.Stats) or for one tenant (Handle.Stats).
type CacheStats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Resident is the current cached byte count.
	Resident int64
	// Evictions counts blocks removed to make room (not EvictTable or
	// Release removals).
	Evictions int64
	// AdmissionRejects counts blocks the frequency filter refused to
	// admit over a more frequently used victim — the scan traffic the
	// cache deflected.
	AdmissionRejects int64
	// Capacity is the configured byte budget of the underlying cache
	// (shared across tenants for per-handle stats).
	Capacity int64
}

// HitRate returns hits/(hits+misses), or 0 with no traffic.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Handle is one tenant's view of a shared Cache: the engine instance it
// belongs to issues Get/Put/EvictTable through it, and the handle keys
// the blocks (so table IDs from different engines never collide) and
// keeps the tenant's own counters. A nil Handle is valid and caches
// nothing.
type Handle struct {
	c  *Cache
	id uint64

	hits      atomic.Int64
	misses    atomic.Int64
	resident  atomic.Int64
	evictions atomic.Int64
	rejects   atomic.Int64
}

// Stats reports this tenant's counters (resident bytes are the
// tenant's own; Capacity is the shared budget).
func (h *Handle) Stats() CacheStats {
	if h == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:             h.hits.Load(),
		Misses:           h.misses.Load(),
		Resident:         h.resident.Load(),
		Evictions:        h.evictions.Load(),
		AdmissionRejects: h.rejects.Load(),
		Capacity:         h.c.cap,
	}
}

// HitMiss reports cumulative hits and misses (the legacy two-value
// surface).
func (h *Handle) HitMiss() (hits, misses int64) {
	if h == nil {
		return 0, 0
	}
	return h.hits.Load(), h.misses.Load()
}

type cacheKey struct {
	id     uint64 // handle (tenant) id
	table  uint64
	offset uint64
}

// hash mixes the key into 64 well-distributed bits (splitmix64 finish);
// the top bits pick the segment, the full value feeds the sketch.
func (k cacheKey) hash() uint64 {
	h := (k.id+1)*0x9E3779B97F4A7C15 ^ (k.table+1)*0xC2B2AE3D27D4EB4F ^ k.offset
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

func (c *Cache) seg(hash uint64) *segment {
	return c.segs[(hash>>48)&c.segMask]
}

// Get returns the cached block for (table, offset), or nil. A hit
// refreshes the block's recency and, on its second touch, promotes it
// from probation to the protected queue.
func (h *Handle) Get(table, offset uint64) []byte {
	if h == nil {
		return nil
	}
	k := cacheKey{h.id, table, offset}
	hv := k.hash()
	s := h.c.seg(hv)
	s.mu.Lock()
	s.sketch.touch(hv)
	el, ok := s.items[k]
	var block []byte
	if ok {
		e := el.Value.(*centry)
		if s.plain || e.prot {
			e.home(s).MoveToFront(el)
		} else {
			s.promote(el, e)
		}
		// Capture the slice under the lock: a concurrent Put to the same
		// key replaces entry.block in place.
		block = e.block
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
	if ok {
		h.hits.Add(1)
		return block
	}
	h.misses.Add(1)
	return nil
}

// Put inserts a block. New blocks enter the probation queue; when the
// segment is full, the frequency sketch arbitrates between the new
// block and the eviction victim, and the less-used of the two loses —
// which is what keeps one-touch scan traffic from flushing the
// resident hot set. Blocks larger than a whole segment are not admitted.
func (h *Handle) Put(table, offset uint64, block []byte) {
	if h == nil {
		return
	}
	k := cacheKey{h.id, table, offset}
	hv := k.hash()
	s := h.c.seg(hv)
	sz := int64(len(block))
	if sz > s.cap {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		// Replace in place (a racing reader of the same block).
		e := el.Value.(*centry)
		delta := sz - int64(len(e.block))
		e.block = block
		s.used += delta
		if e.prot {
			s.protUsed += delta
		}
		h.resident.Add(delta)
		for s.used > s.cap {
			vel := s.victim()
			if vel == nil {
				break
			}
			s.evict(vel)
		}
		return
	}
	// Admission: evict victims until the block fits, unless a victim is
	// used at least as often as the candidate — then the candidate is
	// the one that loses.
	for s.used+sz > s.cap {
		vel := s.victim()
		if vel == nil {
			break
		}
		ve := vel.Value.(*centry)
		if !s.plain && s.sketch.estimate(hv) <= s.sketch.estimate(ve.hash) {
			s.rejects++
			h.rejects.Add(1)
			return
		}
		s.evict(vel)
	}
	e := &centry{key: k, hash: hv, block: block, owner: h}
	s.items[k] = s.probation.PushFront(e)
	s.used += sz
	h.resident.Add(sz)
}

// EvictTable drops every cached block of one of this tenant's tables
// (called when compaction deletes the file).
func (h *Handle) EvictTable(table uint64) {
	if h == nil {
		return
	}
	h.c.drop(func(k cacheKey) bool { return k.id == h.id && k.table == table })
}

// Release drops every block this tenant holds — called when its engine
// closes so a long-lived shared cache does not retain dead bytes.
func (h *Handle) Release() {
	if h == nil {
		return
	}
	h.c.drop(func(k cacheKey) bool { return k.id == h.id })
}

// drop removes every entry matching the predicate (not counted as an
// eviction: the bytes were invalidated, not displaced).
func (c *Cache) drop(match func(cacheKey) bool) {
	for _, s := range c.segs {
		s.mu.Lock()
		for _, q := range []*list.List{&s.probation, &s.protected} {
			for el := q.Front(); el != nil; {
				next := el.Next()
				e := el.Value.(*centry)
				if match(e.key) {
					s.remove(el, e)
				}
				el = next
			}
		}
		s.mu.Unlock()
	}
}

// centry is one cached block.
type centry struct {
	key   cacheKey
	hash  uint64
	block []byte
	owner *Handle
	prot  bool // resident in the protected queue
}

func (e *centry) home(s *segment) *list.List {
	if e.prot {
		return &s.protected
	}
	return &s.probation
}

// segment is one lock stripe: an SLRU (probation + protected lists,
// front = most recent) plus its own frequency sketch and counters.
type segment struct {
	mu        sync.Mutex
	cap       int64
	protCap   int64 // protected-queue budget (80% of cap)
	used      int64
	protUsed  int64
	plain     bool
	probation list.List
	protected list.List
	items     map[cacheKey]*list.Element
	sketch    sketch

	hits, misses, evictions, rejects int64
}

func newSegment(capacity int64, plain bool) *segment {
	s := &segment{cap: capacity, protCap: capacity * 4 / 5, plain: plain}
	s.probation.Init()
	s.protected.Init()
	s.items = make(map[cacheKey]*list.Element)
	if !plain {
		// Size the sketch to roughly the number of 1 KiB granules the
		// segment can hold — a few counters per typical 4 KiB block.
		s.sketch = newSketch(int(capacity / 1024))
	}
	return s
}

// promote moves a probation entry to the protected queue, demoting
// protected LRU entries back to probation until the protected budget
// holds.
func (s *segment) promote(el *list.Element, e *centry) {
	s.probation.Remove(el)
	e.prot = true
	s.items[e.key] = s.protected.PushFront(e)
	s.protUsed += int64(len(e.block))
	for s.protUsed > s.protCap {
		tail := s.protected.Back()
		if tail == nil {
			break
		}
		te := tail.Value.(*centry)
		s.protected.Remove(tail)
		te.prot = false
		s.protUsed -= int64(len(te.block))
		s.items[te.key] = s.probation.PushFront(te)
	}
}

// victim returns the next eviction candidate: the probation LRU tail,
// falling back to the protected tail when probation is empty.
func (s *segment) victim() *list.Element {
	if el := s.probation.Back(); el != nil {
		return el
	}
	return s.protected.Back()
}

// evict removes an entry to make room, charging an eviction to both the
// segment and the owning tenant.
func (s *segment) evict(el *list.Element) {
	e := el.Value.(*centry)
	s.remove(el, e)
	s.evictions++
	e.owner.evictions.Add(1)
}

// remove unlinks an entry and settles the byte accounting.
func (s *segment) remove(el *list.Element, e *centry) {
	e.home(s).Remove(el)
	delete(s.items, e.key)
	sz := int64(len(e.block))
	s.used -= sz
	if e.prot {
		s.protUsed -= sz
	}
	e.owner.resident.Add(-sz)
}

// sketch is a TinyLFU-style frequency estimator: a count-min sketch of
// 4-bit saturating counters (16 per word), four probes per key, halved
// once the touch count reaches a multiple of the table size so stale
// popularity decays and the estimates track the recent access window.
type sketch struct {
	words     []uint64
	mask      uint32
	samples   int
	sampleCap int
}

func newSketch(counters int) sketch {
	const minCounters = 256
	if counters < minCounters {
		counters = minCounters
	}
	n := 1
	for n < counters {
		n <<= 1
	}
	return sketch{
		words:     make([]uint64, n/16),
		mask:      uint32(n - 1),
		sampleCap: n * 8,
	}
}

// index derives probe i's counter index from the key hash.
func (sk *sketch) index(h uint64, i int) uint32 {
	h += uint64(i+1) * 0x9E3779B97F4A7C15
	h *= 0xC2B2AE3D27D4EB4F
	h ^= h >> 32
	return uint32(h) & sk.mask
}

// touch records one access.
func (sk *sketch) touch(h uint64) {
	if sk.words == nil {
		return
	}
	added := false
	for i := 0; i < 4; i++ {
		idx := sk.index(h, i)
		word, shift := idx>>4, (idx&15)*4
		if (sk.words[word]>>shift)&0xF < 15 {
			sk.words[word] += 1 << shift
			added = true
		}
	}
	if added {
		if sk.samples++; sk.samples >= sk.sampleCap {
			sk.age()
		}
	}
}

// estimate returns the key's approximate touch count in the current
// window (min over the four probes).
func (sk *sketch) estimate(h uint64) uint64 {
	if sk.words == nil {
		return 0
	}
	min := uint64(15)
	for i := 0; i < 4; i++ {
		idx := sk.index(h, i)
		if v := (sk.words[idx>>4] >> ((idx & 15) * 4)) & 0xF; v < min {
			min = v
		}
	}
	return min
}

// age halves every counter, decaying old popularity.
func (sk *sketch) age() {
	for i, w := range sk.words {
		sk.words[i] = (w >> 1) & 0x7777777777777777
	}
	sk.samples /= 2
}
