package sstable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/base"
	"repro/internal/hll"
	"repro/internal/obs"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// CL-SSTable (paper §4.3, Figure 6): the sealed commit log is adopted as
// the value store of an L0 table, and flushing writes only a sorted
// (key → log offset) index. The index reuses the classic table container —
// blocks, Bloom filter, HLL sketch, footer — with the 8-byte log offset
// stored in the entry's value slot, so the whole format stack is shared.
// The paper's example keeps exactly this pair: for each key, the memtable
// value plus the CL name and offset of its most recent update.

// CLWriter builds the index file of a CL-SSTable over log file logID.
type CLWriter struct {
	inner *Writer
	logID uint64
}

// NewCLWriter creates CL-SSTable index file id referencing log logID.
func NewCLWriter(fs vfs.FS, id, logID uint64, blockSize int) (*CLWriter, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	f, err := fs.Create(CLIndexFileName(id))
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, id: id, blockSize: blockSize, sketch: mustSketch()}
	w.props.logID = logID
	return &CLWriter{inner: w, logID: logID}, nil
}

// Add records that key's most recent update (with the given seq and kind)
// lives at byte offset off in the log. Keys must be strictly ascending.
func (w *CLWriter) Add(key []byte, seq uint64, kind base.Kind, off int64) error {
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], uint64(off))
	return w.inner.Add(base.Entry{Key: key, Value: v[:], Seq: seq, Kind: kind})
}

// NumEntries reports entries added so far.
func (w *CLWriter) NumEntries() uint64 { return w.inner.NumEntries() }

// Finish completes the index and returns the bytes written — the only
// bytes a TRIAD-LOG flush costs.
func (w *CLWriter) Finish() (int64, error) { return w.inner.Finish() }

// Abort removes a partially written index.
func (w *CLWriter) Abort(fs vfs.FS) {
	if !w.inner.closed {
		w.inner.closed = true
		w.inner.f.Close()
	}
	_ = fs.Remove(CLIndexFileName(w.inner.id))
}

func mustSketch() *hll.Sketch { return hll.MustNew(hll.DefaultPrecision) }

// CLReader reads a CL-SSTable: the index plus the shared log file.
type CLReader struct {
	idx *Reader
	log vfs.File
}

var _ Table = (*CLReader)(nil)

// OpenCL opens CL-SSTable id in fs with no block cache.
func OpenCL(fs vfs.FS, id uint64) (*CLReader, error) {
	return OpenCLWithCache(fs, id, nil)
}

// OpenCLWithCache opens CL-SSTable id in fs. The log file it references
// must still exist; the engine keeps it alive until the table is
// compacted away. Index blocks are served through the (possibly nil)
// block-cache handle; log records are not cached.
func OpenCLWithCache(fs vfs.FS, id uint64, cache *Handle) (*CLReader, error) {
	f, err := fs.Open(CLIndexFileName(id))
	if err != nil {
		return nil, err
	}
	idx := &Reader{f: f, id: id, cache: cache}
	if err := idx.load(); err != nil {
		f.Close()
		return nil, fmt.Errorf("cl-sstable %d: %w", id, err)
	}
	log, err := fs.Open(wal.FileName(idx.props.logID))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("cl-sstable %d: open log %d: %w", id, idx.props.logID, err)
	}
	return &CLReader{idx: idx, log: log}, nil
}

// LogID returns the commit-log file this table's offsets point into.
func (r *CLReader) LogID() uint64 { return r.idx.props.logID }

// ID implements Table.
func (r *CLReader) ID() uint64 { return r.idx.id }

// Smallest implements Table.
func (r *CLReader) Smallest() []byte { return r.idx.props.smallest }

// Largest implements Table.
func (r *CLReader) Largest() []byte { return r.idx.props.largest }

// NumEntries implements Table.
func (r *CLReader) NumEntries() uint64 { return r.idx.props.numEntries }

// FileSize implements Table. It reports the index file size only: the log
// bytes were charged to logging when first appended (avoiding that second
// write is TRIAD-LOG's contribution).
func (r *CLReader) FileSize() int64 { return r.idx.size }

// Sketch implements Table.
func (r *CLReader) Sketch() *hll.Sketch { return r.idx.sketch }

// BlockSeparators returns the last key of every index block, ascending
// (see Reader.BlockSeparators) — the key distribution of the index is
// the key distribution of the table.
func (r *CLReader) BlockSeparators() [][]byte { return r.idx.BlockSeparators() }

// Close implements Table.
func (r *CLReader) Close() error {
	err1 := r.idx.Close()
	err2 := r.log.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// resolve fetches the real entry behind an index entry, charging disk
// reads as it goes. tr, when non-nil, receives the log read as an
// sstable_read span (log records are uncached, so every resolve of a
// live value is a device-model read).
func (r *CLReader) resolve(ie base.Entry, tr *obs.Trace) (base.Entry, int, error) {
	off := int64(binary.LittleEndian.Uint64(ie.Value))
	if ie.Kind == base.KindDelete {
		// Tombstone: no value to fetch.
		return base.Entry{Key: ie.Key, Seq: ie.Seq, Kind: base.KindDelete}, 0, nil
	}
	var rs time.Time
	if tr != nil {
		rs = time.Now()
	}
	rec, n, err := wal.ReadRecordAt(r.log, off)
	if tr != nil {
		tr.Span(obs.SpanSSTableRead, rs, fmt.Sprintf("cl-table %06d log@%d %dB", r.idx.id, off, n))
	}
	if err != nil {
		return base.Entry{}, 1, fmt.Errorf("cl-sstable %d: log offset %d: %w", r.idx.id, off, err)
	}
	if !bytes.Equal(rec.Key, ie.Key) {
		return base.Entry{}, 1, fmt.Errorf("cl-sstable %d: index/log key mismatch at offset %d", r.idx.id, off)
	}
	return rec, 1, nil
}

// Get implements Table: search the index, then read the log at the
// recorded offset (paper: "the index is searched for the key, and, if
// found, the CL-SSTable is accessed at the corresponding offset").
func (r *CLReader) Get(key []byte, tr *obs.Trace) (base.Entry, bool, int, error) {
	ie, found, reads, err := r.idx.Get(key, tr)
	if err != nil || !found {
		return base.Entry{}, false, reads, err
	}
	e, extra, err := r.resolve(ie, tr)
	return e, err == nil, reads + extra, err
}

// NewIterator implements Table. The index is sorted, so iteration (and the
// L0→L1 merge during compaction) proceeds merge-sort style. The sealed log
// is read into memory once — a single sequential read, which is how a real
// merge would stream it — rather than one random read per record.
func (r *CLReader) NewIterator() (Iterator, error) {
	inner, err := r.idx.NewIterator()
	if err != nil {
		return nil, err
	}
	size, err := r.log.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if size > 0 {
		if n, err := r.log.ReadAt(buf, 0); err != nil && !(err == io.EOF && int64(n) == size) {
			return nil, err
		}
	}
	return &clIter{r: r, inner: inner, logBuf: buf}, nil
}

type clIter struct {
	r      *CLReader
	inner  Iterator
	logBuf []byte
	cur    base.Entry
	err    error
}

func (it *clIter) fill() bool {
	ie := it.inner.Entry()
	if ie.Kind == base.KindDelete {
		it.cur = base.Entry{Key: ie.Key, Seq: ie.Seq, Kind: base.KindDelete}
		return true
	}
	off := int64(binary.LittleEndian.Uint64(ie.Value))
	rec, _, err := wal.DecodeRecord(it.logBuf, off)
	if err != nil {
		it.err = fmt.Errorf("cl-sstable %d: log offset %d: %w", it.r.idx.id, off, err)
		return false
	}
	if !bytes.Equal(rec.Key, ie.Key) {
		it.err = fmt.Errorf("cl-sstable %d: index/log key mismatch at offset %d", it.r.idx.id, off)
		return false
	}
	it.cur = rec
	return true
}

func (it *clIter) Next() bool {
	if it.err != nil || !it.inner.Next() {
		return false
	}
	return it.fill()
}

func (it *clIter) SeekGE(key []byte) bool {
	if it.err != nil || !it.inner.SeekGE(key) {
		return false
	}
	return it.fill()
}

func (it *clIter) Entry() base.Entry { return it.cur }

func (it *clIter) Err() error {
	if it.err != nil {
		return it.err
	}
	return it.inner.Err()
}

func (it *clIter) Close() error { return it.inner.Close() }
