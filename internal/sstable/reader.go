package sstable

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/base"
	"repro/internal/bloom"
	"repro/internal/hll"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// Reader reads a classic SSTable. Metadata (index, Bloom filter, HLL
// sketch, properties) is loaded eagerly at open — the table-cache behaviour
// of production LSMs — so a Get costs at most one data-block disk read.
type Reader struct {
	f      vfs.File
	id     uint64
	index  []indexEntry
	filter *bloom.Filter
	sketch *hll.Sketch
	props  props
	size   int64
	cache  *Handle // optional view of the shared block cache
}

var _ Table = (*Reader)(nil)

// Open opens SSTable id in fs with no block cache.
func Open(fs vfs.FS, id uint64) (*Reader, error) {
	return OpenWithCache(fs, id, nil)
}

// OpenWithCache opens SSTable id in fs, serving data blocks through the
// (possibly nil) block-cache handle.
func OpenWithCache(fs vfs.FS, id uint64, cache *Handle) (*Reader, error) {
	f, err := fs.Open(FileName(id))
	if err != nil {
		return nil, err
	}
	r := &Reader{f: f, id: id, cache: cache}
	if err := r.load(); err != nil {
		f.Close()
		return nil, fmt.Errorf("sstable %d: %w", id, err)
	}
	return r, nil
}

// block fetches a data block through the cache. cached reports whether
// the block came from memory (no disk access).
func (r *Reader) block(h blockHandle) (data []byte, cached bool, err error) {
	if b := r.cache.Get(r.id, h.offset); b != nil {
		return b, true, nil
	}
	b, err := readBlock(r.f, h)
	if err != nil {
		return nil, false, err
	}
	r.cache.Put(r.id, h.offset, b)
	return b, false, nil
}

func (r *Reader) load() error {
	var err error
	if r.size, err = r.f.Size(); err != nil {
		return err
	}
	ftr, err := readFooter(r.f)
	if err != nil {
		return err
	}
	ib, err := readBlock(r.f, ftr.index)
	if err != nil {
		return err
	}
	if r.index, err = decodeIndex(ib); err != nil {
		return err
	}
	fb, err := readBlock(r.f, ftr.filter)
	if err != nil {
		return err
	}
	if r.filter, err = bloom.Unmarshal(fb); err != nil {
		return err
	}
	sb, err := readBlock(r.f, ftr.sketch)
	if err != nil {
		return err
	}
	if r.sketch, err = hll.Unmarshal(sb); err != nil {
		return err
	}
	pb, err := readBlock(r.f, ftr.properties)
	if err != nil {
		return err
	}
	if r.props, err = decodeProps(pb); err != nil {
		return err
	}
	return nil
}

// ID implements Table.
func (r *Reader) ID() uint64 { return r.id }

// Smallest implements Table.
func (r *Reader) Smallest() []byte { return r.props.smallest }

// Largest implements Table.
func (r *Reader) Largest() []byte { return r.props.largest }

// NumEntries implements Table.
func (r *Reader) NumEntries() uint64 { return r.props.numEntries }

// FileSize implements Table.
func (r *Reader) FileSize() int64 { return r.size }

// Sketch implements Table.
func (r *Reader) Sketch() *hll.Sketch { return r.sketch }

// Close implements Table.
func (r *Reader) Close() error { return r.f.Close() }

// Get implements Table.
func (r *Reader) Get(key []byte, tr *obs.Trace) (base.Entry, bool, int, error) {
	if bytes.Compare(key, r.props.smallest) < 0 || bytes.Compare(key, r.props.largest) > 0 {
		return base.Entry{}, false, 0, nil
	}
	if !r.filter.MayContain(key) {
		return base.Entry{}, false, 0, nil
	}
	bi := seekBlocks(r.index, key)
	if bi >= len(r.index) {
		return base.Entry{}, false, 0, nil
	}
	var rs time.Time
	if tr != nil {
		rs = time.Now()
	}
	blk, cached, err := r.block(r.index[bi].handle)
	reads := 1
	if cached {
		reads = 0
	}
	if tr != nil && !cached {
		// The block came off the device model, not the cache: this is
		// the disk time a traced read actually paid.
		tr.Span(obs.SpanSSTableRead, rs, fmt.Sprintf("table %06d block@%d %dB", r.id, r.index[bi].handle.offset, len(blk)))
	}
	if err != nil {
		return base.Entry{}, false, reads, err
	}
	for off := 0; off < len(blk); {
		e, next, err := decodeEntry(blk, off)
		if err != nil {
			return base.Entry{}, false, reads, err
		}
		switch bytes.Compare(e.Key, key) {
		case 0:
			return e.Clone(), true, reads, nil
		case 1:
			return base.Entry{}, false, reads, nil
		}
		off = next
	}
	return base.Entry{}, false, reads, nil
}

// NewIterator implements Table.
func (r *Reader) NewIterator() (Iterator, error) {
	return &readerIter{r: r, block: -1}, nil
}

// BlockSeparators returns the last key of every data block, ascending —
// the table's natural key-range partition points. The compaction
// splitter uses them as subcompaction slice boundaries: they come from
// the already-loaded sparse index, so choosing boundaries costs no I/O.
// The returned slices alias the index; callers must not mutate them.
func (r *Reader) BlockSeparators() [][]byte {
	out := make([][]byte, len(r.index))
	for i := range r.index {
		out[i] = r.index[i].lastKey
	}
	return out
}

type readerIter struct {
	r     *Reader
	block int // current block index; -1 before first
	buf   []byte
	off   int
	cur   base.Entry
	valid bool
	err   error
}

func (it *readerIter) loadBlock(i int) bool {
	if i >= len(it.r.index) {
		it.valid = false
		return false
	}
	blk, _, err := it.r.block(it.r.index[i].handle)
	if err != nil {
		it.err = err
		it.valid = false
		return false
	}
	it.block = i
	it.buf = blk
	it.off = 0
	return true
}

func (it *readerIter) Next() bool {
	if it.err != nil {
		return false
	}
	for {
		if it.block == -1 || it.off >= len(it.buf) {
			if !it.loadBlock(it.block + 1) {
				return false
			}
		}
		if it.off < len(it.buf) {
			e, next, err := decodeEntry(it.buf, it.off)
			if err != nil {
				it.err = err
				it.valid = false
				return false
			}
			it.off = next
			it.cur = e.Clone()
			it.valid = true
			return true
		}
	}
}

func (it *readerIter) SeekGE(key []byte) bool {
	if it.err != nil {
		return false
	}
	bi := seekBlocks(it.r.index, key)
	if bi >= len(it.r.index) {
		it.valid = false
		it.block = len(it.r.index)
		it.off = 0
		it.buf = nil
		return false
	}
	if !it.loadBlock(bi) {
		return false
	}
	for it.off < len(it.buf) {
		e, next, err := decodeEntry(it.buf, it.off)
		if err != nil {
			it.err = err
			it.valid = false
			return false
		}
		if bytes.Compare(e.Key, key) >= 0 {
			it.off = next
			it.cur = e.Clone()
			it.valid = true
			return true
		}
		it.off = next
	}
	// key is past this block's last entry; the next block starts >= key.
	return it.Next()
}

func (it *readerIter) Entry() base.Entry { return it.cur }
func (it *readerIter) Err() error        { return it.err }
func (it *readerIter) Close() error      { return nil }
