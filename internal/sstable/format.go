package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/base"
	"repro/internal/vfs"
)

// Data block entry layout (little endian, varint lengths):
//
//	kind(1) | seq(uvarint) | keyLen(uvarint) | valLen(uvarint) | key | val
//
// Blocks are not compressed; the experiments measure logical bytes, and
// compression would only rescale both systems identically.

func appendEntry(dst []byte, e base.Entry) []byte {
	dst = append(dst, byte(e.Kind))
	dst = binary.AppendUvarint(dst, e.Seq)
	dst = binary.AppendUvarint(dst, uint64(len(e.Key)))
	dst = binary.AppendUvarint(dst, uint64(len(e.Value)))
	dst = append(dst, e.Key...)
	dst = append(dst, e.Value...)
	return dst
}

var errTruncated = errors.New("sstable: truncated block")

// decodeEntry parses one entry at b[off:]; it returns the entry (aliasing
// b) and the offset just past it.
func decodeEntry(b []byte, off int) (base.Entry, int, error) {
	if off >= len(b) {
		return base.Entry{}, 0, errTruncated
	}
	var e base.Entry
	e.Kind = base.Kind(b[off])
	off++
	seq, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return base.Entry{}, 0, errTruncated
	}
	off += n
	kl, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return base.Entry{}, 0, errTruncated
	}
	off += n
	vl, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return base.Entry{}, 0, errTruncated
	}
	off += n
	if off+int(kl)+int(vl) > len(b) {
		return base.Entry{}, 0, errTruncated
	}
	e.Seq = seq
	e.Key = b[off : off+int(kl) : off+int(kl)]
	off += int(kl)
	if vl > 0 {
		e.Value = b[off : off+int(vl) : off+int(vl)]
		off += int(vl)
	}
	return e, off, nil
}

// blockHandle locates a block within the file.
type blockHandle struct {
	offset uint64
	length uint64
}

// index block: uvarint count, then per block: lastKeyLen|lastKey|off|len.
func encodeIndex(blocks []indexEntry) []byte {
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(blocks)))
	for _, ie := range blocks {
		out = binary.AppendUvarint(out, uint64(len(ie.lastKey)))
		out = append(out, ie.lastKey...)
		out = binary.AppendUvarint(out, ie.handle.offset)
		out = binary.AppendUvarint(out, ie.handle.length)
	}
	return out
}

type indexEntry struct {
	lastKey []byte
	handle  blockHandle
}

func decodeIndex(b []byte) ([]indexEntry, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, errTruncated
	}
	off := n
	out := make([]indexEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		kl, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, errTruncated
		}
		off += n
		if off+int(kl) > len(b) {
			return nil, errTruncated
		}
		key := b[off : off+int(kl) : off+int(kl)]
		off += int(kl)
		bo, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, errTruncated
		}
		off += n
		bl, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, errTruncated
		}
		off += n
		out = append(out, indexEntry{lastKey: key, handle: blockHandle{bo, bl}})
	}
	return out, nil
}

// properties block.
type props struct {
	numEntries uint64
	smallest   []byte
	largest    []byte
	// logID is the commit-log file a CL-SSTable's offsets point into;
	// zero for classic tables.
	logID uint64
}

func (p props) encode() []byte {
	var out []byte
	out = binary.AppendUvarint(out, p.numEntries)
	out = binary.AppendUvarint(out, uint64(len(p.smallest)))
	out = append(out, p.smallest...)
	out = binary.AppendUvarint(out, uint64(len(p.largest)))
	out = append(out, p.largest...)
	out = binary.AppendUvarint(out, p.logID)
	return out
}

func decodeProps(b []byte) (props, error) {
	var p props
	var n int
	off := 0
	p.numEntries, n = binary.Uvarint(b[off:])
	if n <= 0 {
		return p, errTruncated
	}
	off += n
	sl, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return p, errTruncated
	}
	off += n
	if off+int(sl) > len(b) {
		return p, errTruncated
	}
	p.smallest = append([]byte(nil), b[off:off+int(sl)]...)
	off += int(sl)
	ll, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return p, errTruncated
	}
	off += n
	if off+int(ll) > len(b) {
		return p, errTruncated
	}
	p.largest = append([]byte(nil), b[off:off+int(ll)]...)
	off += int(ll)
	p.logID, n = binary.Uvarint(b[off:])
	if n <= 0 {
		return p, errTruncated
	}
	return p, nil
}

// footer: 4 block handles (index, filter, hll, props) as fixed u64 pairs,
// then magic. 72 bytes total.
const footerSize = 8*8 + 8

type footer struct {
	index, filter, sketch, properties blockHandle
}

func (f footer) encode() []byte {
	out := make([]byte, footerSize)
	le := binary.LittleEndian
	le.PutUint64(out[0:], f.index.offset)
	le.PutUint64(out[8:], f.index.length)
	le.PutUint64(out[16:], f.filter.offset)
	le.PutUint64(out[24:], f.filter.length)
	le.PutUint64(out[32:], f.sketch.offset)
	le.PutUint64(out[40:], f.sketch.length)
	le.PutUint64(out[48:], f.properties.offset)
	le.PutUint64(out[56:], f.properties.length)
	le.PutUint64(out[64:], footerMagic)
	return out
}

func readFooter(f vfs.File) (footer, error) {
	size, err := f.Size()
	if err != nil {
		return footer{}, err
	}
	if size < footerSize {
		return footer{}, fmt.Errorf("sstable: file too small (%d bytes)", size)
	}
	buf := make([]byte, footerSize)
	if _, err := f.ReadAt(buf, size-footerSize); err != nil && err != io.EOF {
		return footer{}, err
	}
	le := binary.LittleEndian
	if le.Uint64(buf[64:]) != footerMagic {
		return footer{}, errors.New("sstable: bad magic")
	}
	return footer{
		index:      blockHandle{le.Uint64(buf[0:]), le.Uint64(buf[8:])},
		filter:     blockHandle{le.Uint64(buf[16:]), le.Uint64(buf[24:])},
		sketch:     blockHandle{le.Uint64(buf[32:]), le.Uint64(buf[40:])},
		properties: blockHandle{le.Uint64(buf[48:]), le.Uint64(buf[56:])},
	}, nil
}

// blockTrailerLen is the per-block CRC32 trailer, covering the block
// contents (data and metadata blocks alike).
const blockTrailerLen = 4

// readBlock fetches and verifies one block, returning its contents
// without the trailer.
func readBlock(f vfs.File, h blockHandle) ([]byte, error) {
	if h.length < blockTrailerLen {
		return nil, errors.New("sstable: block shorter than its trailer")
	}
	buf := make([]byte, h.length)
	n, err := f.ReadAt(buf, int64(h.offset))
	if err != nil && !(err == io.EOF && uint64(n) == h.length) {
		return nil, err
	}
	data := buf[:h.length-blockTrailerLen]
	want := binary.LittleEndian.Uint32(buf[h.length-blockTrailerLen:])
	if crc32.ChecksumIEEE(data) != want {
		return nil, fmt.Errorf("sstable: block at %d fails checksum", h.offset)
	}
	return data, nil
}

// seekBlocks returns the position of the first index entry whose lastKey is
// >= key, i.e. the first block that could contain key.
func seekBlocks(index []indexEntry, key []byte) int {
	lo, hi := 0, len(index)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(index[mid].lastKey, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
