package sstable

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/base"
	"repro/internal/vfs"
	"repro/internal/wal"
)

func buildTable(t testing.TB, fs vfs.FS, id uint64, n int) *Reader {
	t.Helper()
	w, err := NewWriter(fs, id, 512) // small blocks to exercise the index
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		e := base.Entry{
			Key:   []byte(fmt.Sprintf("key-%05d", i)),
			Value: []byte(fmt.Sprintf("value-%d", i*3)),
			Seq:   uint64(i + 1),
			Kind:  base.KindSet,
		}
		if err := w.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(fs, id)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := vfs.NewMemFS()
	r := buildTable(t, fs, 1, 1000)
	defer r.Close()
	if r.NumEntries() != 1000 {
		t.Fatalf("NumEntries = %d", r.NumEntries())
	}
	if string(r.Smallest()) != "key-00000" || string(r.Largest()) != "key-00999" {
		t.Fatalf("bounds = %q..%q", r.Smallest(), r.Largest())
	}
	for _, i := range []int{0, 1, 499, 500, 998, 999} {
		key := []byte(fmt.Sprintf("key-%05d", i))
		e, found, reads, err := r.Get(key, nil)
		if err != nil || !found {
			t.Fatalf("Get(%s) = found=%v err=%v", key, found, err)
		}
		if string(e.Value) != fmt.Sprintf("value-%d", i*3) {
			t.Fatalf("Get(%s) value = %q", key, e.Value)
		}
		if reads != 1 {
			t.Fatalf("Get(%s) disk reads = %d, want 1", key, reads)
		}
	}
}

func TestGetAbsent(t *testing.T) {
	fs := vfs.NewMemFS()
	r := buildTable(t, fs, 1, 100)
	defer r.Close()
	// Out of range: zero disk reads.
	_, found, reads, _ := r.Get([]byte("aaa"), nil)
	if found || reads != 0 {
		t.Fatalf("below-range Get: found=%v reads=%d", found, reads)
	}
	_, found, reads, _ = r.Get([]byte("zzz"), nil)
	if found || reads != 0 {
		t.Fatalf("above-range Get: found=%v reads=%d", found, reads)
	}
	// In range but absent: the Bloom filter should usually skip (0
	// reads); occasionally a false positive costs 1. Never found.
	fpReads := 0
	for i := 0; i < 1000; i++ {
		_, found, reads, err := r.Get([]byte(fmt.Sprintf("key-%05d-x", i)), nil)
		if err != nil || found {
			t.Fatalf("absent Get: found=%v err=%v", found, err)
		}
		fpReads += reads
	}
	if fpReads > 100 {
		t.Fatalf("absent in-range probes cost %d reads; bloom filter broken?", fpReads)
	}
}

func TestIteratorFullScan(t *testing.T) {
	fs := vfs.NewMemFS()
	r := buildTable(t, fs, 1, 500)
	defer r.Close()
	it, err := r.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := 0
	for it.Next() {
		want := fmt.Sprintf("key-%05d", i)
		if string(it.Entry().Key) != want {
			t.Fatalf("entry %d = %q, want %q", i, it.Entry().Key, want)
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != 500 {
		t.Fatalf("iterated %d entries, want 500", i)
	}
}

func TestIteratorSeekGE(t *testing.T) {
	fs := vfs.NewMemFS()
	r := buildTable(t, fs, 1, 500)
	defer r.Close()
	it, _ := r.NewIterator()
	defer it.Close()
	if !it.SeekGE([]byte("key-00250")) || string(it.Entry().Key) != "key-00250" {
		t.Fatalf("SeekGE exact failed: %q", it.Entry().Key)
	}
	if !it.SeekGE([]byte("key-00250a")) || string(it.Entry().Key) != "key-00251" {
		t.Fatalf("SeekGE between failed: %q", it.Entry().Key)
	}
	if !it.SeekGE([]byte("a")) || string(it.Entry().Key) != "key-00000" {
		t.Fatalf("SeekGE before-first failed: %q", it.Entry().Key)
	}
	if it.SeekGE([]byte("zzz")) {
		t.Fatal("SeekGE past-end succeeded")
	}
}

func TestOutOfOrderAddFails(t *testing.T) {
	fs := vfs.NewMemFS()
	w, _ := NewWriter(fs, 1, 0)
	if err := w.Add(base.Entry{Key: []byte("b"), Kind: base.KindSet}); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(base.Entry{Key: []byte("a"), Kind: base.KindSet}); err == nil {
		t.Fatal("out-of-order Add succeeded")
	}
	if err := w.Add(base.Entry{Key: []byte("b"), Kind: base.KindSet}); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	w.Abort(fs)
	if fs.Exists(FileName(1)) {
		t.Fatal("Abort left the file behind")
	}
}

func TestTombstonesRoundTrip(t *testing.T) {
	fs := vfs.NewMemFS()
	w, _ := NewWriter(fs, 1, 0)
	w.Add(base.Entry{Key: []byte("alive"), Value: []byte("v"), Seq: 1, Kind: base.KindSet})
	w.Add(base.Entry{Key: []byte("dead"), Seq: 2, Kind: base.KindDelete})
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(fs, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	e, found, _, err := r.Get([]byte("dead"), nil)
	if err != nil || !found || e.Kind != base.KindDelete || e.Value != nil {
		t.Fatalf("tombstone Get = %+v found=%v err=%v", e, found, err)
	}
}

func TestSketchSurvives(t *testing.T) {
	fs := vfs.NewMemFS()
	r := buildTable(t, fs, 1, 5000)
	defer r.Close()
	est := float64(r.Sketch().Estimate())
	if est < 4500 || est > 5500 {
		t.Fatalf("persisted sketch estimate = %.0f, want ≈5000", est)
	}
	if r.Sketch().Count() != 5000 {
		t.Fatalf("persisted sketch count = %d", r.Sketch().Count())
	}
}

func TestOpenErrors(t *testing.T) {
	fs := vfs.NewMemFS()
	if _, err := Open(fs, 99); err == nil {
		t.Fatal("Open missing table succeeded")
	}
	// Too-short file.
	f, _ := fs.Create(FileName(2))
	f.Write([]byte("tiny"))
	f.Close()
	if _, err := Open(fs, 2); err == nil {
		t.Fatal("Open truncated table succeeded")
	}
	// Bad magic.
	f, _ = fs.Create(FileName(3))
	f.Write(make([]byte, 100))
	f.Close()
	if _, err := Open(fs, 3); err == nil {
		t.Fatal("Open corrupt table succeeded")
	}
}

// --- CL-SSTable ---

// buildCL writes n entries through a WAL and builds a CL-SSTable over it,
// mirroring what a TRIAD-LOG flush does.
func buildCL(t testing.TB, fs vfs.FS, clID, logID uint64, n int) *CLReader {
	t.Helper()
	lw, err := wal.NewWriter(fs, logID, false)
	if err != nil {
		t.Fatal(err)
	}
	type pos struct {
		off  int64
		kind base.Kind
		seq  uint64
	}
	latest := map[string]pos{}
	seq := uint64(0)
	// Two updates per key so the log holds stale versions, like reality.
	for round := 0; round < 2; round++ {
		for i := 0; i < n; i++ {
			seq++
			key := fmt.Sprintf("key-%05d", i)
			kind := base.KindSet
			val := []byte(fmt.Sprintf("r%d-value-%d", round, i))
			if round == 1 && i%10 == 0 {
				kind = base.KindDelete
				val = nil
			}
			off, _, err := lw.Append(base.Entry{Key: []byte(key), Value: val, Seq: seq, Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			latest[key] = pos{off, kind, seq}
		}
	}
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	cw, err := NewCLWriter(fs, clID, logID, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%05d", i)
		p := latest[key]
		if err := cw.Add([]byte(key), p.seq, p.kind, p.off); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cw.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenCL(fs, clID)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCLSSTableGet(t *testing.T) {
	fs := vfs.NewMemFS()
	r := buildCL(t, fs, 10, 5, 200)
	defer r.Close()
	if r.LogID() != 5 {
		t.Fatalf("LogID = %d", r.LogID())
	}
	e, found, reads, err := r.Get([]byte("key-00007"), nil)
	if err != nil || !found {
		t.Fatalf("Get: found=%v err=%v", found, err)
	}
	if string(e.Value) != "r1-value-7" {
		t.Fatalf("Get returned stale value %q", e.Value)
	}
	if reads != 2 { // one index block + one log record
		t.Fatalf("disk reads = %d, want 2", reads)
	}
	// Deleted key resolves to a tombstone without touching the log.
	e, found, reads, err = r.Get([]byte("key-00010"), nil)
	if err != nil || !found || e.Kind != base.KindDelete {
		t.Fatalf("tombstone Get = %+v found=%v err=%v", e, found, err)
	}
	if reads != 1 {
		t.Fatalf("tombstone disk reads = %d, want 1 (no log access)", reads)
	}
	if _, found, _, _ := r.Get([]byte("nope"), nil); found {
		t.Fatal("absent key found")
	}
}

func TestCLSSTableIterator(t *testing.T) {
	fs := vfs.NewMemFS()
	r := buildCL(t, fs, 10, 5, 100)
	defer r.Close()
	it, err := r.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := 0
	for it.Next() {
		e := it.Entry()
		want := fmt.Sprintf("key-%05d", i)
		if string(e.Key) != want {
			t.Fatalf("entry %d key = %q", i, e.Key)
		}
		if i%10 == 0 {
			if e.Kind != base.KindDelete {
				t.Fatalf("entry %d should be a tombstone", i)
			}
		} else if string(e.Value) != fmt.Sprintf("r1-value-%d", i) {
			t.Fatalf("entry %d value = %q", i, e.Value)
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != 100 {
		t.Fatalf("iterated %d, want 100", i)
	}
	// SeekGE through the CL index.
	if !it.SeekGE([]byte("key-00050")) || string(it.Entry().Key) != "key-00050" {
		t.Fatalf("SeekGE = %q", it.Entry().Key)
	}
}

// TestCLSSTableMuchSmallerThanData checks the premise of TRIAD-LOG: with
// paper-sized records (8 B keys, 255 B values), flushing the index costs a
// small fraction of re-writing the data.
func TestCLSSTableMuchSmallerThanData(t *testing.T) {
	fs := vfs.NewMemFS()
	lw, err := wal.NewWriter(fs, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	n := 1000
	offs := make([]int64, n)
	val := bytes.Repeat([]byte{'v'}, 255)
	for i := 0; i < n; i++ {
		off, _, err := lw.Append(base.Entry{Key: []byte(fmt.Sprintf("%08d", i)), Value: val, Seq: uint64(i + 1), Kind: base.KindSet})
		if err != nil {
			t.Fatal(err)
		}
		offs[i] = off
	}
	lw.Close()
	cw, err := NewCLWriter(fs, 10, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := cw.Add([]byte(fmt.Sprintf("%08d", i)), uint64(i+1), base.KindSet, offs[i]); err != nil {
			t.Fatal(err)
		}
	}
	idxBytes, err := cw.Finish()
	if err != nil {
		t.Fatal(err)
	}
	logF, _ := fs.Open(wal.FileName(5))
	logSize, _ := logF.Size()
	logF.Close()
	if idxBytes*5 > logSize {
		t.Fatalf("CL index (%d B) not ≤ 1/5 of log (%d B)", idxBytes, logSize)
	}
}

func TestCLOpenWithoutLogFails(t *testing.T) {
	fs := vfs.NewMemFS()
	r := buildCL(t, fs, 10, 5, 10)
	r.Close()
	if err := fs.Remove(wal.FileName(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCL(fs, 10); err == nil {
		t.Fatal("OpenCL without backing log succeeded")
	}
}

// TestQuickTableRoundTrip: random sorted key sets survive the classic
// table round trip.
func TestQuickTableRoundTrip(t *testing.T) {
	var id uint64
	check := func(n uint16, valSize uint8) bool {
		id++
		fs := vfs.NewMemFS()
		count := int(n%500) + 1
		w, err := NewWriter(fs, id, 256)
		if err != nil {
			return false
		}
		for i := 0; i < count; i++ {
			e := base.Entry{
				Key:   []byte(fmt.Sprintf("%06d", i)),
				Value: bytes.Repeat([]byte{byte(i)}, int(valSize)),
				Seq:   uint64(i + 1),
				Kind:  base.KindSet,
			}
			if valSize == 0 {
				e.Value = nil
			}
			if err := w.Add(e); err != nil {
				return false
			}
		}
		if _, err := w.Finish(); err != nil {
			return false
		}
		r, err := Open(fs, id)
		if err != nil {
			return false
		}
		defer r.Close()
		for i := 0; i < count; i++ {
			e, found, _, err := r.Get([]byte(fmt.Sprintf("%06d", i)), nil)
			if err != nil || !found || len(e.Value) != int(valSize) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTableGet(b *testing.B) {
	fs := vfs.NewMemFS()
	r := buildTable(b, fs, 1, 10000)
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i%10000))
		r.Get(key, nil)
	}
}

func BenchmarkCLTableGet(b *testing.B) {
	fs := vfs.NewMemFS()
	r := buildCL(b, fs, 10, 5, 10000)
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i%10000))
		r.Get(key, nil)
	}
}
