package sstable

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/base"
	"repro/internal/vfs"
)

func TestBlockCacheLRU(t *testing.T) {
	c := NewBlockCache(100)
	c.Put(1, 0, make([]byte, 40))
	c.Put(1, 40, make([]byte, 40))
	if c.Used() != 80 {
		t.Fatalf("Used = %d", c.Used())
	}
	// Touch the first block so the second becomes LRU.
	if c.Get(1, 0) == nil {
		t.Fatal("miss on resident block")
	}
	// Inserting 40 more evicts (1, 40).
	c.Put(2, 0, make([]byte, 40))
	if c.Get(1, 40) != nil {
		t.Fatal("LRU block not evicted")
	}
	if c.Get(1, 0) == nil || c.Get(2, 0) == nil {
		t.Fatal("recently used blocks evicted")
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 3/1", hits, misses)
	}
}

func TestBlockCacheOversizedNotAdmitted(t *testing.T) {
	c := NewBlockCache(10)
	c.Put(1, 0, make([]byte, 100))
	if c.Used() != 0 {
		t.Fatal("oversized block admitted")
	}
}

func TestBlockCacheReplaceSameKey(t *testing.T) {
	c := NewBlockCache(1000)
	c.Put(1, 0, make([]byte, 100))
	c.Put(1, 0, make([]byte, 50))
	if c.Used() != 50 {
		t.Fatalf("Used after replace = %d", c.Used())
	}
}

func TestBlockCacheEvictTable(t *testing.T) {
	c := NewBlockCache(1000)
	c.Put(1, 0, make([]byte, 10))
	c.Put(1, 10, make([]byte, 10))
	c.Put(2, 0, make([]byte, 10))
	c.EvictTable(1)
	if c.Get(1, 0) != nil || c.Get(1, 10) != nil {
		t.Fatal("EvictTable left table-1 blocks")
	}
	if c.Get(2, 0) == nil {
		t.Fatal("EvictTable removed another table's block")
	}
	if c.Used() != 10 {
		t.Fatalf("Used = %d", c.Used())
	}
}

func TestNilBlockCacheSafe(t *testing.T) {
	var c *BlockCache
	c.Put(1, 0, []byte("x"))
	if c.Get(1, 0) != nil {
		t.Fatal("nil cache returned data")
	}
	c.EvictTable(1)
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatal("nil cache has stats")
	}
	if c.Used() != 0 {
		t.Fatal("nil cache has usage")
	}
	if NewBlockCache(0) != nil {
		t.Fatal("zero-capacity cache not nil")
	}
}

func TestBlockCacheConcurrent(t *testing.T) {
	c := NewBlockCache(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Put(uint64(g), uint64(i%50)*64, make([]byte, 64))
				c.Get(uint64(g), uint64(i%50)*64)
			}
		}(g)
	}
	wg.Wait()
	if c.Used() > 1<<16 {
		t.Fatalf("cache over budget: %d", c.Used())
	}
}

// TestBlockCacheConcurrentContended drives parallel Put/Get/EvictTable/
// Stats/Used over a *shared* key set through a cache small enough to
// evict constantly — the access pattern of the sharded read hot path,
// where every shard's readers share one per-shard cache. Run under
// -race in CI; the invariant checked here is that the budget holds and
// the structure survives.
func TestBlockCacheConcurrentContended(t *testing.T) {
	const capacity = 4 << 10
	c := NewBlockCache(capacity)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				// All goroutines fight over the same (table, offset)
				// keys, forcing concurrent MoveToFront / eviction of
				// shared list elements.
				table := uint64(i % 4)
				off := uint64(i%16) * 256
				switch i % 7 {
				case 0:
					c.EvictTable(table)
				case 1, 2:
					if blk := c.Get(table, off); blk != nil && len(blk) == 0 {
						t.Error("cached block lost its contents")
						return
					}
				default:
					c.Put(table, off, make([]byte, 256))
				}
				if u := c.Used(); u < 0 || u > capacity {
					t.Errorf("cache budget violated: used=%d cap=%d", u, capacity)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses == 0 {
		t.Fatal("no cache traffic recorded")
	}
	if u := c.Used(); u > capacity {
		t.Fatalf("cache over budget after churn: %d > %d", u, capacity)
	}
}

// TestBlockCacheConcurrentReadersOneTable mimics the sharded Get path:
// many readers hammering the same hot blocks while a background
// compaction evicts a retired table. The hot blocks must remain
// servable throughout.
func TestBlockCacheConcurrentReadersOneTable(t *testing.T) {
	c := NewBlockCache(1 << 20)
	const hotTable, coldTable = 1, 2
	for off := uint64(0); off < 32; off++ {
		c.Put(hotTable, off*512, make([]byte, 512))
	}
	var wg sync.WaitGroup
	var hits atomic.Int64
	const readers, reads = 6, 5000
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				if c.Get(hotTable, uint64(i%32)*512) != nil {
					hits.Add(1)
				}
			}
		}()
	}
	// Background churn: insert and evict a competing table repeatedly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			c.Put(coldTable, uint64(i%8)*512, make([]byte, 512))
			if i%10 == 0 {
				c.EvictTable(coldTable)
			}
		}
	}()
	wg.Wait()
	// The cache is larger than hot + cold combined, so the hot blocks
	// are never under eviction pressure: every read must have hit.
	if got := hits.Load(); got != readers*reads {
		t.Fatalf("hot-block hits = %d, want %d", got, readers*reads)
	}
	for off := uint64(0); off < 32; off++ {
		if c.Get(hotTable, off*512) == nil {
			t.Fatalf("hot block at offset %d evicted by smaller cold set", off*512)
		}
	}
}

func TestReaderServesFromCache(t *testing.T) {
	fs := vfs.NewMemFS()
	w, _ := NewWriter(fs, 1, 512)
	for i := 0; i < 500; i++ {
		w.Add(base.Entry{Key: []byte(fmt.Sprintf("key-%04d", i)), Value: []byte("v"), Seq: uint64(i + 1), Kind: base.KindSet})
	}
	w.Finish()
	cache := NewBlockCache(1 << 20)
	r, err := OpenWithCache(fs, 1, cache)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, found, reads1, _ := r.Get([]byte("key-0100"))
	if !found || reads1 != 1 {
		t.Fatalf("cold Get: found=%v reads=%d", found, reads1)
	}
	_, found, reads2, _ := r.Get([]byte("key-0100"))
	if !found || reads2 != 0 {
		t.Fatalf("warm Get: found=%v reads=%d (want 0)", found, reads2)
	}
	hits, _ := cache.Stats()
	if hits == 0 {
		t.Fatal("no cache hits recorded")
	}
}

// TestBlockChecksumDetectsCorruption flips a byte in a data block and
// expects the read to fail loudly.
func TestBlockChecksumDetectsCorruption(t *testing.T) {
	fs := vfs.NewMemFS()
	w, _ := NewWriter(fs, 1, 512)
	for i := 0; i < 200; i++ {
		w.Add(base.Entry{Key: []byte(fmt.Sprintf("key-%04d", i)), Value: []byte("value"), Seq: uint64(i + 1), Kind: base.KindSet})
	}
	w.Finish()
	// Corrupt a byte early in the file (inside the first data block).
	f, _ := fs.Open(FileName(1))
	size, _ := f.Size()
	buf := make([]byte, size)
	f.ReadAt(buf, 0)
	f.Close()
	buf[10] ^= 0xFF
	wf, _ := fs.Create(FileName(1))
	wf.Write(buf)
	wf.Close()

	r, err := Open(fs, 1)
	if err != nil {
		// Corruption in a metadata block is also an acceptable failure
		// point (the first data block sits before the metadata, so Open
		// itself succeeds in this layout).
		return
	}
	defer r.Close()
	if _, _, _, err := r.Get([]byte("key-0000")); err == nil {
		t.Fatal("read of corrupted block succeeded")
	}
}
