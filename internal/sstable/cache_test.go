package sstable

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/base"
	"repro/internal/vfs"
)

// plainLRU returns the pre-scan-resistant configuration: one segment,
// one mutex, no admission filter — the engine's previous per-shard
// cache, kept as the behavioural baseline.
func plainLRU(capacity int64) *Cache {
	return NewCacheOpts(CacheOptions{Bytes: capacity, Segments: 1, PlainLRU: true})
}

func TestBlockCacheLRU(t *testing.T) {
	h := plainLRU(100).NewHandle()
	defer h.Release()
	h.Put(1, 0, make([]byte, 40))
	h.Put(1, 40, make([]byte, 40))
	if used := h.c.Used(); used != 80 {
		t.Fatalf("Used = %d", used)
	}
	// Touch the first block so the second becomes LRU.
	if h.Get(1, 0) == nil {
		t.Fatal("miss on resident block")
	}
	// Inserting 40 more evicts (1, 40).
	h.Put(2, 0, make([]byte, 40))
	if h.Get(1, 40) != nil {
		t.Fatal("LRU block not evicted")
	}
	if h.Get(1, 0) == nil || h.Get(2, 0) == nil {
		t.Fatal("recently used blocks evicted")
	}
	st := h.Stats()
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats = %d/%d, want 3/1", st.Hits, st.Misses)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestBlockCacheOversizedNotAdmitted(t *testing.T) {
	c := plainLRU(10)
	h := c.NewHandle()
	defer h.Release()
	h.Put(1, 0, make([]byte, 100))
	if c.Used() != 0 {
		t.Fatal("oversized block admitted")
	}
}

func TestBlockCacheReplaceSameKey(t *testing.T) {
	c := plainLRU(1000)
	h := c.NewHandle()
	defer h.Release()
	h.Put(1, 0, make([]byte, 100))
	h.Put(1, 0, make([]byte, 50))
	if c.Used() != 50 {
		t.Fatalf("Used after replace = %d", c.Used())
	}
	if h.Stats().Resident != 50 {
		t.Fatalf("tenant resident after replace = %d", h.Stats().Resident)
	}
}

func TestBlockCacheEvictTable(t *testing.T) {
	c := NewCache(1 << 20)
	h := c.NewHandle()
	defer h.Release()
	h.Put(1, 0, make([]byte, 10))
	h.Put(1, 10, make([]byte, 10))
	h.Put(2, 0, make([]byte, 10))
	h.EvictTable(1)
	if h.Get(1, 0) != nil || h.Get(1, 10) != nil {
		t.Fatal("EvictTable left table-1 blocks")
	}
	if h.Get(2, 0) == nil {
		t.Fatal("EvictTable removed another table's block")
	}
	if c.Used() != 10 {
		t.Fatalf("Used = %d", c.Used())
	}
}

func TestNilBlockCacheSafe(t *testing.T) {
	var c *Cache
	var h *Handle = c.NewHandle()
	if h != nil {
		t.Fatal("nil cache produced a live handle")
	}
	h.Put(1, 0, []byte("x"))
	if h.Get(1, 0) != nil {
		t.Fatal("nil cache returned data")
	}
	h.EvictTable(1)
	h.Release()
	if st := h.Stats(); st != (CacheStats{}) {
		t.Fatal("nil handle has stats")
	}
	if hits, misses := h.HitMiss(); hits != 0 || misses != 0 {
		t.Fatal("nil handle has hit/miss counts")
	}
	if c.Used() != 0 || c.Capacity() != 0 {
		t.Fatal("nil cache has usage")
	}
	if c.Stats() != (CacheStats{}) {
		t.Fatal("nil cache has stats")
	}
	if NewCache(0) != nil {
		t.Fatal("zero-capacity cache not nil")
	}
}

// TestCacheTenantIsolation pins the multi-tenant keying: two handles
// using the same (table, offset) coordinates must not observe each
// other's blocks — the property that lets every shard share one cache
// without coordinating table-ID allocation.
func TestCacheTenantIsolation(t *testing.T) {
	c := NewCache(1 << 20)
	a, b := c.NewHandle(), c.NewHandle()
	defer b.Release()
	a.Put(1, 0, []byte("from-a"))
	if b.Get(1, 0) != nil {
		t.Fatal("tenant b read tenant a's block")
	}
	b.Put(1, 0, []byte("from-b"))
	if got := string(a.Get(1, 0)); got != "from-a" {
		t.Fatalf("tenant a's block clobbered: %q", got)
	}
	if ra, rb := a.Stats().Resident, b.Stats().Resident; ra != 6 || rb != 6 {
		t.Fatalf("per-tenant resident = %d/%d, want 6/6", ra, rb)
	}
	a.Release()
	if a.Stats().Resident != 0 || a.Get(1, 0) != nil {
		t.Fatal("Release left tenant a's blocks")
	}
	if got := string(b.Get(1, 0)); got != "from-b" {
		t.Fatal("Release dropped another tenant's block")
	}
}

// TestCacheScanResistance is the regression gate for the admission
// filter: fill a hot working set, hammer it until it is established,
// stream a full-keyspace one-touch scan 16x the cache size through the
// same cache, then re-read the hot set. The scan-resistant default must
// keep serving the hot set; the plain-LRU baseline must fail the same
// floor (verifying the test has teeth — this is the behaviour the old
// per-shard caches had).
func TestCacheScanResistance(t *testing.T) {
	const (
		blockSize = 4 << 10
		capacity  = 512 << 10
		hotBlocks = 32
		scanSpan  = 4096 // 16 MiB of one-touch traffic
		floor     = 0.75
	)
	hotRate := func(c *Cache) float64 {
		h := c.NewHandle()
		defer h.Release()
		blk := make([]byte, blockSize)
		// Establish the hot set: enough rounds for promotion into the
		// protected queue and a solid frequency-sketch footprint.
		for round := 0; round < 8; round++ {
			for i := uint64(0); i < hotBlocks; i++ {
				if h.Get(1, i*blockSize) == nil {
					h.Put(1, i*blockSize, blk)
				}
			}
		}
		// The scan: every block touched exactly once.
		for i := uint64(0); i < scanSpan; i++ {
			if h.Get(2, i*blockSize) == nil {
				h.Put(2, i*blockSize, blk)
			}
		}
		hits := 0
		for i := uint64(0); i < hotBlocks; i++ {
			if h.Get(1, i*blockSize) != nil {
				hits++
			}
		}
		return float64(hits) / hotBlocks
	}
	if rate := hotRate(NewCache(capacity)); rate < floor {
		t.Errorf("scan-resistant cache: hot hit rate %.2f after scan, want >= %.2f", rate, floor)
	}
	if rate := hotRate(plainLRU(capacity)); rate >= floor {
		t.Errorf("plain LRU unexpectedly scan-resistant (hot rate %.2f) — the regression floor has no teeth", rate)
	}
	// The deflected scan traffic must be visible in the stats.
	c := NewCache(capacity)
	_ = hotRate(c)
	if st := c.Stats(); st.AdmissionRejects == 0 {
		t.Error("no admission rejects recorded during the scan")
	} else if st.Resident > st.Capacity {
		t.Errorf("over budget: resident %d > capacity %d", st.Resident, st.Capacity)
	}
}

// TestCacheProtectedPromotion checks the SLRU mechanics: a block
// touched twice moves to the protected queue and outlives a burst of
// one-touch arrivals that flows through probation.
func TestCacheProtectedPromotion(t *testing.T) {
	// One segment so queue behaviour is exact; admission on.
	c := NewCacheOpts(CacheOptions{Bytes: 8 << 10, Segments: 1})
	h := c.NewHandle()
	defer h.Release()
	blk := make([]byte, 1<<10)
	h.Put(1, 0, blk)
	if h.Get(1, 0) == nil { // second touch: promote
		t.Fatal("resident block missed")
	}
	// Fill the rest of the segment with one-touch blocks, then keep
	// pushing: the hot block must survive every displacement round.
	for i := uint64(1); i < 32; i++ {
		h.Put(1, i<<10, blk)
	}
	if h.Get(1, 0) == nil {
		t.Fatal("promoted block evicted by one-touch traffic")
	}
}

func TestBlockCacheConcurrent(t *testing.T) {
	c := NewCache(1 << 16)
	h := c.NewHandle()
	defer h.Release()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Put(uint64(g), uint64(i%50)*64, make([]byte, 64))
				h.Get(uint64(g), uint64(i%50)*64)
			}
		}(g)
	}
	wg.Wait()
	if c.Used() > 1<<16 {
		t.Fatalf("cache over budget: %d", c.Used())
	}
}

// TestBlockCacheConcurrentContended drives parallel Put/Get/EvictTable/
// Stats/Used over a *shared* key set through a cache small enough to
// evict constantly — the access pattern of the store-wide read hot
// path, where every shard's readers share the one cache. Run under
// -race in CI; the invariant checked here is that the budget holds and
// the structure survives.
func TestBlockCacheConcurrentContended(t *testing.T) {
	const capacity = 4 << 10
	c := NewCache(capacity)
	h := c.NewHandle()
	defer h.Release()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				// All goroutines fight over the same (table, offset)
				// keys, forcing concurrent recency moves / eviction of
				// shared entries.
				table := uint64(i % 4)
				off := uint64(i%16) * 256
				switch i % 7 {
				case 0:
					h.EvictTable(table)
				case 1, 2:
					if blk := h.Get(table, off); blk != nil && len(blk) == 0 {
						t.Error("cached block lost its contents")
						return
					}
				default:
					h.Put(table, off, make([]byte, 256))
				}
				if u := c.Used(); u < 0 || u > capacity {
					t.Errorf("cache budget violated: used=%d cap=%d", u, capacity)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no cache traffic recorded")
	}
	if u := c.Used(); u > capacity {
		t.Fatalf("cache over budget after churn: %d > %d", u, capacity)
	}
	if got := h.Stats().Resident; got != c.Used() {
		t.Fatalf("tenant resident accounting drifted: handle %d, cache %d", got, c.Used())
	}
}

// TestBlockCacheConcurrentReadersOneTable mimics the sharded Get path:
// many readers hammering the same hot blocks while a background
// compaction evicts a retired table, and a second tenant (another
// shard) churning its own keys through the same shared cache. The hot
// blocks must remain servable throughout.
func TestBlockCacheConcurrentReadersOneTable(t *testing.T) {
	c := NewCache(1 << 20)
	h := c.NewHandle()
	defer h.Release()
	other := c.NewHandle()
	const hotTable, coldTable = 1, 2
	for off := uint64(0); off < 32; off++ {
		h.Put(hotTable, off*512, make([]byte, 512))
	}
	var wg sync.WaitGroup
	var hits atomic.Int64
	const readers, reads = 6, 5000
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				if h.Get(hotTable, uint64(i%32)*512) != nil {
					hits.Add(1)
				}
			}
		}()
	}
	// Background churn: insert and evict a competing table repeatedly,
	// on this tenant and on a second one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			h.Put(coldTable, uint64(i%8)*512, make([]byte, 512))
			other.Put(coldTable, uint64(i%8)*512, make([]byte, 512))
			if i%10 == 0 {
				h.EvictTable(coldTable)
				other.Release()
			}
		}
	}()
	wg.Wait()
	// The cache is larger than hot + cold combined, so the hot blocks
	// are never under eviction pressure: every read must have hit.
	if got := hits.Load(); got != readers*reads {
		t.Fatalf("hot-block hits = %d, want %d", got, readers*reads)
	}
	for off := uint64(0); off < 32; off++ {
		if h.Get(hotTable, off*512) == nil {
			t.Fatalf("hot block at offset %d evicted by smaller cold set", off*512)
		}
	}
}

func TestReaderServesFromCache(t *testing.T) {
	fs := vfs.NewMemFS()
	w, _ := NewWriter(fs, 1, 512)
	for i := 0; i < 500; i++ {
		w.Add(base.Entry{Key: []byte(fmt.Sprintf("key-%04d", i)), Value: []byte("v"), Seq: uint64(i + 1), Kind: base.KindSet})
	}
	w.Finish()
	cache := NewCache(1 << 20)
	r, err := OpenWithCache(fs, 1, cache.NewHandle())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, found, reads1, _ := r.Get([]byte("key-0100"), nil)
	if !found || reads1 != 1 {
		t.Fatalf("cold Get: found=%v reads=%d", found, reads1)
	}
	_, found, reads2, _ := r.Get([]byte("key-0100"), nil)
	if !found || reads2 != 0 {
		t.Fatalf("warm Get: found=%v reads=%d (want 0)", found, reads2)
	}
	if cache.Stats().Hits == 0 {
		t.Fatal("no cache hits recorded")
	}
}

// TestBlockChecksumDetectsCorruption flips a byte in a data block and
// expects the read to fail loudly.
func TestBlockChecksumDetectsCorruption(t *testing.T) {
	fs := vfs.NewMemFS()
	w, _ := NewWriter(fs, 1, 512)
	for i := 0; i < 200; i++ {
		w.Add(base.Entry{Key: []byte(fmt.Sprintf("key-%04d", i)), Value: []byte("value"), Seq: uint64(i + 1), Kind: base.KindSet})
	}
	w.Finish()
	// Corrupt a byte early in the file (inside the first data block).
	f, _ := fs.Open(FileName(1))
	size, _ := f.Size()
	buf := make([]byte, size)
	f.ReadAt(buf, 0)
	f.Close()
	buf[10] ^= 0xFF
	wf, _ := fs.Create(FileName(1))
	wf.Write(buf)
	wf.Close()

	r, err := Open(fs, 1)
	if err != nil {
		// Corruption in a metadata block is also an acceptable failure
		// point (the first data block sits before the metadata, so Open
		// itself succeeds in this layout).
		return
	}
	defer r.Close()
	if _, _, _, err := r.Get([]byte("key-0000"), nil); err == nil {
		t.Fatal("read of corrupted block succeeded")
	}
}
