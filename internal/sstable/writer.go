package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/base"
	"repro/internal/bloom"
	"repro/internal/hll"
	"repro/internal/vfs"
)

// DefaultBlockSize is the target size of a data block.
const DefaultBlockSize = 4 << 10

// DefaultBloomBitsPerKey matches RocksDB's common 10 bits/key (~1% FP).
const DefaultBloomBitsPerKey = 10

// Writer builds a classic SSTable. Entries must be added in strictly
// ascending key order (one version per key; flush and compaction both
// guarantee this).
type Writer struct {
	f         vfs.File
	id        uint64
	blockSize int

	buf     []byte // current data block
	index   []indexEntry
	lastKey []byte
	offset  uint64

	filter bloom.Builder
	sketch *hll.Sketch
	props  props

	written int64
	closed  bool
}

// NewWriter creates SSTable file id in fs.
func NewWriter(fs vfs.FS, id uint64, blockSize int) (*Writer, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	f, err := fs.Create(FileName(id))
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, id: id, blockSize: blockSize, sketch: hll.MustNew(hll.DefaultPrecision)}, nil
}

// Add appends one entry. Keys must be strictly ascending.
func (w *Writer) Add(e base.Entry) error {
	if w.closed {
		return errors.New("sstable: writer closed")
	}
	if w.lastKey != nil && bytes.Compare(e.Key, w.lastKey) <= 0 {
		return fmt.Errorf("sstable: keys out of order: %q after %q", e.Key, w.lastKey)
	}
	if w.props.numEntries == 0 {
		w.props.smallest = append([]byte(nil), e.Key...)
	}
	w.lastKey = append(w.lastKey[:0], e.Key...)
	w.props.numEntries++
	w.filter.Add(e.Key)
	w.sketch.Add(e.Key)
	w.buf = appendEntry(w.buf, e)
	if len(w.buf) >= w.blockSize {
		return w.flushBlock()
	}
	return nil
}

// writeBlock writes data plus its CRC trailer and returns its handle.
func (w *Writer) writeBlock(data []byte) (blockHandle, error) {
	h := blockHandle{offset: w.offset, length: uint64(len(data)) + blockTrailerLen}
	var trailer [blockTrailerLen]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(data))
	if _, err := w.f.Write(data); err != nil {
		return blockHandle{}, err
	}
	if _, err := w.f.Write(trailer[:]); err != nil {
		return blockHandle{}, err
	}
	w.offset += h.length
	w.written += int64(h.length)
	return h, nil
}

func (w *Writer) flushBlock() error {
	if len(w.buf) == 0 {
		return nil
	}
	h, err := w.writeBlock(w.buf)
	if err != nil {
		return err
	}
	w.index = append(w.index, indexEntry{lastKey: append([]byte(nil), w.lastKey...), handle: h})
	w.buf = w.buf[:0]
	return nil
}

// NumEntries reports the entries added so far.
func (w *Writer) NumEntries() uint64 { return w.props.numEntries }

// ID returns the table's file number.
func (w *Writer) ID() uint64 { return w.id }

// LastKey returns the most recently added key (aliasing an internal
// buffer; callers must copy to retain).
func (w *Writer) LastKey() []byte { return w.lastKey }

// EstimatedSize reports bytes written plus the buffered block.
func (w *Writer) EstimatedSize() int64 { return w.written + int64(len(w.buf)) }

// Finish flushes metadata and closes the file, returning the total bytes
// written (the flush/compaction byte accounting).
func (w *Writer) Finish() (int64, error) {
	if w.closed {
		return 0, errors.New("sstable: writer closed")
	}
	w.closed = true
	if err := w.flushBlock(); err != nil {
		return 0, err
	}
	w.props.largest = append([]byte(nil), w.lastKey...)

	var ftr footer
	writeMeta := w.writeBlock
	var err error
	if ftr.index, err = writeMeta(encodeIndex(w.index)); err != nil {
		return 0, err
	}
	if ftr.filter, err = writeMeta(w.filter.Build(DefaultBloomBitsPerKey).Marshal()); err != nil {
		return 0, err
	}
	if ftr.sketch, err = writeMeta(w.sketch.Marshal()); err != nil {
		return 0, err
	}
	if ftr.properties, err = writeMeta(w.props.encode()); err != nil {
		return 0, err
	}
	if _, err := w.f.Write(ftr.encode()); err != nil {
		return 0, err
	}
	w.written += footerSize
	if err := w.f.Sync(); err != nil {
		return 0, err
	}
	if err := w.f.Close(); err != nil {
		return 0, err
	}
	return w.written, nil
}

// Abort closes and removes a partially written table.
func (w *Writer) Abort(fs vfs.FS) {
	if !w.closed {
		w.closed = true
		w.f.Close()
	}
	_ = fs.Remove(FileName(w.id))
}
