// Package manifest tracks the shape of the LSM disk component: which table
// files live on which level, their key ranges and sizes. Changes (flushes,
// compactions) are applied as atomic version edits and journaled to a
// manifest log so the tree can be reconstructed after a crash, mirroring
// the LevelDB/RocksDB MANIFEST design the paper's substrate uses.
package manifest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/vfs"
)

// TableKind discriminates the two L0 table formats.
type TableKind uint8

const (
	// KindSST is a classic sorted table.
	KindSST TableKind = 1
	// KindCLSST is a TRIAD-LOG CL-SSTable (index + commit-log pair).
	KindCLSST TableKind = 2
)

// FileMeta describes one table file.
type FileMeta struct {
	ID         uint64    `json:"id"`
	Kind       TableKind `json:"kind"`
	Level      int       `json:"level"`
	Size       int64     `json:"size"`
	NumEntries uint64    `json:"entries"`
	Smallest   []byte    `json:"smallest"`
	Largest    []byte    `json:"largest"`
	// LogID is the commit log a CL-SSTable references (zero otherwise).
	LogID uint64 `json:"log_id,omitempty"`
}

// Overlaps reports whether the file's key range intersects [lo, hi].
func (f *FileMeta) Overlaps(lo, hi []byte) bool {
	return bytes.Compare(f.Smallest, hi) <= 0 && bytes.Compare(f.Largest, lo) >= 0
}

// Edit is one atomic change to the tree: files added and files deleted.
type Edit struct {
	Added   []FileMeta `json:"added,omitempty"`
	Deleted []uint64   `json:"deleted,omitempty"`
	// NextFileID persists the file-number allocator across restarts.
	NextFileID uint64 `json:"next_file_id,omitempty"`
	// LastSeq persists the sequence-number allocator.
	LastSeq uint64 `json:"last_seq,omitempty"`
}

// Version is an immutable snapshot of the level structure. Levels[0] is
// ordered newest-first (overlapping ranges allowed); deeper levels are
// ordered by Smallest with disjoint ranges.
type Version struct {
	Levels [][]*FileMeta
}

// NumLevels is the fixed depth of the tree (L0..L6), matching RocksDB's
// default of 7 levels.
const NumLevels = 7

// NewVersion returns an empty version.
func NewVersion() *Version {
	return &Version{Levels: make([][]*FileMeta, NumLevels)}
}

// Clone returns a shallow copy (FileMeta values are immutable once added).
func (v *Version) Clone() *Version {
	nv := NewVersion()
	for i := range v.Levels {
		nv.Levels[i] = append([]*FileMeta(nil), v.Levels[i]...)
	}
	return nv
}

// Apply returns a new version with the edit applied.
func (v *Version) Apply(e Edit) (*Version, error) {
	nv := v.Clone()
	if len(e.Deleted) > 0 {
		del := make(map[uint64]bool, len(e.Deleted))
		for _, id := range e.Deleted {
			del[id] = true
		}
		for l := range nv.Levels {
			keep := nv.Levels[l][:0:0]
			for _, f := range nv.Levels[l] {
				if !del[f.ID] {
					keep = append(keep, f)
				} else {
					delete(del, f.ID)
				}
			}
			nv.Levels[l] = keep
		}
		if len(del) > 0 {
			return nil, fmt.Errorf("manifest: edit deletes unknown files %v", keys(del))
		}
	}
	for i := range e.Added {
		f := e.Added[i]
		if f.Level < 0 || f.Level >= NumLevels {
			return nil, fmt.Errorf("manifest: level %d out of range", f.Level)
		}
		fm := f
		nv.Levels[f.Level] = append(nv.Levels[f.Level], &fm)
	}
	// Keep L0 newest-first (higher IDs are newer) and deeper levels
	// sorted by smallest key.
	sort.Slice(nv.Levels[0], func(i, j int) bool {
		return nv.Levels[0][i].ID > nv.Levels[0][j].ID
	})
	for l := 1; l < NumLevels; l++ {
		sort.Slice(nv.Levels[l], func(i, j int) bool {
			return bytes.Compare(nv.Levels[l][i].Smallest, nv.Levels[l][j].Smallest) < 0
		})
	}
	return nv, nil
}

func keys(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CheckInvariants verifies the level structure: deeper levels must hold
// disjoint, sorted ranges. Used by tests and the engine's paranoid mode.
func (v *Version) CheckInvariants() error {
	for l := 1; l < len(v.Levels); l++ {
		files := v.Levels[l]
		for i := 0; i < len(files); i++ {
			if bytes.Compare(files[i].Smallest, files[i].Largest) > 0 {
				return fmt.Errorf("L%d file %d: smallest > largest", l, files[i].ID)
			}
			if i > 0 && bytes.Compare(files[i-1].Largest, files[i].Smallest) >= 0 {
				return fmt.Errorf("L%d files %d,%d overlap", l, files[i-1].ID, files[i].ID)
			}
		}
	}
	return nil
}

// LevelSize returns the total byte size of level l.
func (v *Version) LevelSize(l int) int64 {
	var s int64
	for _, f := range v.Levels[l] {
		s += f.Size
	}
	return s
}

// Overlapping returns the files in level l intersecting [lo, hi].
func (v *Version) Overlapping(l int, lo, hi []byte) []*FileMeta {
	var out []*FileMeta
	for _, f := range v.Levels[l] {
		if f.Overlaps(lo, hi) {
			out = append(out, f)
		}
	}
	return out
}

const logName = "MANIFEST"

// Log journals version edits and replays them at startup.
type Log struct {
	mu sync.Mutex
	fs vfs.FS
	f  vfs.File
	w  *bufio.Writer
}

// OpenLog opens (appending) or creates the manifest log.
//
// Appending to an existing log is modelled by replaying the old log into a
// fresh file: vfs.FS has create/truncate semantics only, and rewriting also
// compacts the journal, which is what production stores periodically do
// anyway.
func OpenLog(fs vfs.FS) (*Log, *Version, Edit, error) {
	state := Edit{}
	v := NewVersion()
	if fs.Exists(logName) {
		var err error
		v, state, err = replay(fs)
		if err != nil {
			return nil, nil, Edit{}, err
		}
	}
	f, err := fs.Create(logName + ".new")
	if err != nil {
		return nil, nil, Edit{}, err
	}
	l := &Log{fs: fs, f: f, w: bufio.NewWriter(f)}
	// Re-journal the recovered state as a single snapshot edit.
	snap := Edit{NextFileID: state.NextFileID, LastSeq: state.LastSeq}
	for _, files := range v.Levels {
		for _, fm := range files {
			snap.Added = append(snap.Added, *fm)
		}
	}
	if err := l.append(snap); err != nil {
		return nil, nil, Edit{}, err
	}
	if err := fs.Rename(logName+".new", logName); err != nil {
		return nil, nil, Edit{}, err
	}
	return l, v, state, nil
}

func replay(fs vfs.FS) (*Version, Edit, error) {
	f, err := fs.Open(logName)
	if err != nil {
		return nil, Edit{}, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, Edit{}, err
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
			return nil, Edit{}, err
		}
	}
	v := NewVersion()
	state := Edit{}
	dec := json.NewDecoder(bytes.NewReader(buf))
	for {
		var e Edit
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break // torn tail tolerated, like the WAL
			}
			var syn *json.SyntaxError
			if errors.As(err, &syn) {
				break
			}
			return nil, Edit{}, err
		}
		nv, err := v.Apply(e)
		if err != nil {
			return nil, Edit{}, err
		}
		v = nv
		if e.NextFileID > state.NextFileID {
			state.NextFileID = e.NextFileID
		}
		if e.LastSeq > state.LastSeq {
			state.LastSeq = e.LastSeq
		}
	}
	return v, state, nil
}

// Append journals one edit durably.
func (l *Log) Append(e Edit) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.append(e)
}

func (l *Log) append(e Edit) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := l.w.Write(append(b, '\n')); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close closes the journal.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Close()
}
