package manifest

import (
	"testing"

	"repro/internal/vfs"
)

func fm(id uint64, level int, lo, hi string) FileMeta {
	return FileMeta{ID: id, Kind: KindSST, Level: level, Size: 100, Smallest: []byte(lo), Largest: []byte(hi)}
}

func TestApplyAddDelete(t *testing.T) {
	v := NewVersion()
	v1, err := v.Apply(Edit{Added: []FileMeta{fm(1, 0, "a", "m"), fm(2, 0, "c", "z"), fm(3, 1, "a", "f")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(v1.Levels[0]) != 2 || len(v1.Levels[1]) != 1 {
		t.Fatalf("level sizes = %d, %d", len(v1.Levels[0]), len(v1.Levels[1]))
	}
	// L0 is newest-first.
	if v1.Levels[0][0].ID != 2 || v1.Levels[0][1].ID != 1 {
		t.Fatalf("L0 order: %d, %d", v1.Levels[0][0].ID, v1.Levels[0][1].ID)
	}
	// Original version untouched (immutability).
	if len(v.Levels[0]) != 0 {
		t.Fatal("Apply mutated the input version")
	}
	v2, err := v1.Apply(Edit{Deleted: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(v2.Levels[0]) != 1 || v2.Levels[0][0].ID != 2 {
		t.Fatalf("delete left %v", v2.Levels[0])
	}
}

func TestApplyDeleteUnknownFails(t *testing.T) {
	v := NewVersion()
	if _, err := v.Apply(Edit{Deleted: []uint64{42}}); err == nil {
		t.Fatal("deleting unknown file succeeded")
	}
}

func TestApplyBadLevelFails(t *testing.T) {
	v := NewVersion()
	if _, err := v.Apply(Edit{Added: []FileMeta{fm(1, NumLevels, "a", "b")}}); err == nil {
		t.Fatal("adding to out-of-range level succeeded")
	}
}

func TestDeeperLevelsSortedByKey(t *testing.T) {
	v := NewVersion()
	v1, _ := v.Apply(Edit{Added: []FileMeta{fm(1, 1, "m", "p"), fm(2, 1, "a", "c"), fm(3, 1, "x", "z")}})
	got := []string{string(v1.Levels[1][0].Smallest), string(v1.Levels[1][1].Smallest), string(v1.Levels[1][2].Smallest)}
	if got[0] != "a" || got[1] != "m" || got[2] != "x" {
		t.Fatalf("L1 order: %v", got)
	}
	if err := v1.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckInvariantsDetectsOverlap(t *testing.T) {
	v := NewVersion()
	v1, _ := v.Apply(Edit{Added: []FileMeta{fm(1, 1, "a", "m"), fm(2, 1, "k", "z")}})
	if err := v1.CheckInvariants(); err == nil {
		t.Fatal("overlapping L1 files passed invariant check")
	}
}

func TestOverlapping(t *testing.T) {
	v := NewVersion()
	v1, _ := v.Apply(Edit{Added: []FileMeta{fm(1, 1, "a", "f"), fm(2, 1, "g", "m"), fm(3, 1, "n", "z")}})
	got := v1.Overlapping(1, []byte("e"), []byte("h"))
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("Overlapping = %v", got)
	}
	if len(v1.Overlapping(1, []byte("fa"), []byte("fb"))) != 0 {
		t.Fatal("gap query returned files")
	}
	// Point query.
	if got := v1.Overlapping(1, []byte("n"), []byte("n")); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("point Overlapping = %v", got)
	}
}

func TestLevelSize(t *testing.T) {
	v := NewVersion()
	v1, _ := v.Apply(Edit{Added: []FileMeta{fm(1, 1, "a", "b"), fm(2, 1, "c", "d")}})
	if v1.LevelSize(1) != 200 {
		t.Fatalf("LevelSize = %d", v1.LevelSize(1))
	}
}

func TestLogPersistRecover(t *testing.T) {
	fs := vfs.NewMemFS()
	l, v, state, err := OpenLog(fs)
	if err != nil {
		t.Fatal(err)
	}
	if state.NextFileID != 0 || len(v.Levels[0]) != 0 {
		t.Fatal("fresh log not empty")
	}
	if err := l.Append(Edit{Added: []FileMeta{fm(1, 0, "a", "m")}, NextFileID: 2, LastSeq: 10}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Edit{Added: []FileMeta{fm(2, 0, "c", "z")}, NextFileID: 3, LastSeq: 20}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Edit{Deleted: []uint64{1}, Added: []FileMeta{fm(3, 1, "a", "m")}, NextFileID: 4, LastSeq: 30}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, v2, state2, err := OpenLog(fs)
	if err != nil {
		t.Fatal(err)
	}
	if state2.NextFileID != 4 || state2.LastSeq != 30 {
		t.Fatalf("recovered state = %+v", state2)
	}
	if len(v2.Levels[0]) != 1 || v2.Levels[0][0].ID != 2 {
		t.Fatalf("recovered L0 = %v", v2.Levels[0])
	}
	if len(v2.Levels[1]) != 1 || v2.Levels[1][0].ID != 3 {
		t.Fatalf("recovered L1 = %v", v2.Levels[1])
	}
}

func TestLogRecoverCLSST(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _, _, _ := OpenLog(fs)
	meta := fm(5, 0, "a", "z")
	meta.Kind = KindCLSST
	meta.LogID = 3
	l.Append(Edit{Added: []FileMeta{meta}, NextFileID: 6})
	l.Close()
	_, v, _, err := OpenLog(fs)
	if err != nil {
		t.Fatal(err)
	}
	got := v.Levels[0][0]
	if got.Kind != KindCLSST || got.LogID != 3 {
		t.Fatalf("recovered CL meta = %+v", got)
	}
}

func TestLogTornTailTolerated(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _, _, _ := OpenLog(fs)
	l.Append(Edit{Added: []FileMeta{fm(1, 0, "a", "b")}, NextFileID: 2})
	l.Close()
	// Corrupt the tail with half a JSON object.
	f, _ := fs.Open("MANIFEST")
	size, _ := f.Size()
	buf := make([]byte, size)
	f.ReadAt(buf, 0)
	f.Close()
	w, _ := fs.Create("MANIFEST")
	w.Write(buf)
	w.Write([]byte(`{"added":[{"id":`))
	w.Close()

	_, v, _, err := OpenLog(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Levels[0]) != 1 {
		t.Fatalf("recovered %d L0 files, want 1", len(v.Levels[0]))
	}
}
