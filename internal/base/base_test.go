package base

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if KindSet.String() != "set" || KindDelete.String() != "del" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatalf("unknown kind = %s", Kind(9))
	}
}

func TestCompare(t *testing.T) {
	a := Entry{Key: []byte("a"), Seq: 1}
	b := Entry{Key: []byte("b"), Seq: 1}
	if Compare(a, b) >= 0 || Compare(b, a) <= 0 {
		t.Fatal("key ordering wrong")
	}
	newer := Entry{Key: []byte("a"), Seq: 9}
	older := Entry{Key: []byte("a"), Seq: 2}
	if Compare(newer, older) >= 0 {
		t.Fatal("newer version must order before older")
	}
	if Compare(a, a) != 0 {
		t.Fatal("equal entries must compare 0")
	}
}

func TestSize(t *testing.T) {
	e := Entry{Key: []byte("abc"), Value: []byte("12345")}
	if e.Size() != 8 {
		t.Fatalf("Size = %d, want 8", e.Size())
	}
	if (Entry{Key: []byte("k")}).Size() != 1 {
		t.Fatal("tombstone size wrong")
	}
}

func TestClone(t *testing.T) {
	e := Entry{Key: []byte("k"), Value: []byte("v"), Seq: 3, Kind: KindSet}
	c := e.Clone()
	e.Key[0] = 'x'
	e.Value[0] = 'y'
	if string(c.Key) != "k" || string(c.Value) != "v" {
		t.Fatal("Clone aliases the original buffers")
	}
	// nil value stays nil (tombstone invariant).
	d := Entry{Key: []byte("k"), Kind: KindDelete}.Clone()
	if d.Value != nil {
		t.Fatal("Clone materialized a nil value")
	}
}

// TestQuickCompareIsStrictWeakOrder: antisymmetry and transitivity over
// random entries.
func TestQuickCompareIsStrictWeakOrder(t *testing.T) {
	mk := func(k uint8, seq uint8) Entry {
		return Entry{Key: []byte{k % 4}, Seq: uint64(seq % 4)}
	}
	anti := func(a, b, c uint8, s1, s2, s3 uint8) bool {
		x, y, z := mk(a, s1), mk(b, s2), mk(c, s3)
		if Compare(x, y) != -Compare(y, x) {
			return false
		}
		// transitivity
		if Compare(x, y) < 0 && Compare(y, z) < 0 && Compare(x, z) >= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(anti, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
