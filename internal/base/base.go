// Package base defines the record types shared by the memtable, commit
// log, SSTables and the merge machinery: the (key, value, sequence, kind)
// tuple and its ordering.
package base

import (
	"bytes"
	"fmt"
)

// Kind discriminates sets from deletes (tombstones).
type Kind uint8

const (
	// KindSet is a live key/value pair.
	KindSet Kind = 1
	// KindDelete is a tombstone. Tombstones must survive until compaction
	// into the last level proves no older version remains below them.
	KindDelete Kind = 2
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSet:
		return "set"
	case KindDelete:
		return "del"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Entry is one versioned record.
type Entry struct {
	Key   []byte
	Value []byte
	Seq   uint64
	Kind  Kind
}

// Size returns the user-visible payload size in bytes (key + value),
// which is what write-amplification is normalized against.
func (e Entry) Size() int64 { return int64(len(e.Key) + len(e.Value)) }

// Compare orders entries by key ascending, then by sequence descending
// (newest first), matching the merge order the read path needs.
func Compare(a, b Entry) int {
	if c := bytes.Compare(a.Key, b.Key); c != 0 {
		return c
	}
	switch {
	case a.Seq > b.Seq:
		return -1
	case a.Seq < b.Seq:
		return 1
	default:
		return 0
	}
}

// Clone deep-copies the entry so callers may retain it past the lifetime
// of the buffer it was decoded from.
func (e Entry) Clone() Entry {
	c := e
	c.Key = append([]byte(nil), e.Key...)
	if e.Value != nil {
		c.Value = append([]byte(nil), e.Value...)
	}
	return c
}
