// Package compaction implements the leveled-compaction machinery: the
// N-way merge over heterogeneous tables (classic SSTables and TRIAD-LOG
// CL-SSTables merge identically because both iterate in key order) and the
// picker that decides what to compact — including TRIAD-DISK's decision to
// *defer* an L0→L1 compaction while the HyperLogLog-estimated key overlap
// among L0 files is still low (paper §4.2, Algorithm 2, Figure 5).
package compaction

import (
	"bytes"
	"container/heap"

	"repro/internal/base"
	"repro/internal/sstable"
)

// MergeIterator yields the union of several table iterators in ascending
// (key, descending seq) order — i.e. for duplicate keys the newest version
// comes out first, which lets the consumer keep the first and discard the
// rest, exactly the "merge sort discarding stale values" of paper §2.
type MergeIterator struct {
	h   mergeHeap
	cur base.Entry
	err error
	// inputs retained for Close.
	inputs []sstable.Iterator
}

type mergeItem struct {
	it    sstable.Iterator
	entry base.Entry
	// rank breaks full ties deterministically: lower rank = newer source.
	rank int
}

type mergeHeap []*mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if c := base.Compare(h[i].entry, h[j].entry); c != 0 {
		return c < 0
	}
	return h[i].rank < h[j].rank
}
func (h mergeHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)      { *h = append(*h, x.(*mergeItem)) }
func (h *mergeHeap) Pop() any        { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h mergeHeap) Peek() *mergeItem { return h[0] }

// NewMergeIterator merges its, where its[0] is the newest source (rank 0).
// It takes ownership of the iterators.
func NewMergeIterator(its []sstable.Iterator) *MergeIterator {
	m := &MergeIterator{inputs: its}
	for rank, it := range its {
		if it.Next() {
			m.h = append(m.h, &mergeItem{it: it, entry: it.Entry(), rank: rank})
		} else if err := it.Err(); err != nil {
			m.err = err
		}
	}
	heap.Init(&m.h)
	return m
}

// Next advances to the next entry in merged order.
func (m *MergeIterator) Next() bool {
	if m.err != nil || m.h.Len() == 0 {
		return false
	}
	top := m.h.Peek()
	m.cur = top.entry
	if top.it.Next() {
		top.entry = top.it.Entry()
		heap.Fix(&m.h, 0)
	} else {
		if err := top.it.Err(); err != nil {
			m.err = err
			return false
		}
		heap.Pop(&m.h)
	}
	return true
}

// Entry returns the current entry.
func (m *MergeIterator) Entry() base.Entry { return m.cur }

// Err returns the first error from any input.
func (m *MergeIterator) Err() error { return m.err }

// Close closes all inputs.
func (m *MergeIterator) Close() error {
	var first error
	for _, it := range m.inputs {
		if err := it.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DedupIterator wraps a MergeIterator and yields only the newest version
// of each key, optionally dropping tombstones (legal only when compacting
// into the bottommost non-empty level, where nothing older can hide
// below). It also skips keys in skip — TRIAD-MEM integration: "during
// compaction, the hot keys are skipped" when they are known to be
// superseded in memory (paper §4.3).
type DedupIterator struct {
	m              *MergeIterator
	dropTombstones bool
	skip           func(key []byte) bool
	lastKey        []byte
	cur            base.Entry
}

// NewDedupIterator wraps m. skip may be nil.
func NewDedupIterator(m *MergeIterator, dropTombstones bool, skip func(key []byte) bool) *DedupIterator {
	return &DedupIterator{m: m, dropTombstones: dropTombstones, skip: skip}
}

// Next advances to the next surviving entry.
func (d *DedupIterator) Next() bool {
	for d.m.Next() {
		e := d.m.Entry()
		if d.lastKey != nil && bytes.Equal(e.Key, d.lastKey) {
			continue // older version of the same key
		}
		d.lastKey = append(d.lastKey[:0], e.Key...)
		if d.skip != nil && d.skip(e.Key) {
			continue
		}
		if d.dropTombstones && e.Kind == base.KindDelete {
			continue
		}
		d.cur = e
		return true
	}
	return false
}

// Entry returns the current entry.
func (d *DedupIterator) Entry() base.Entry { return d.cur }

// Err returns the first error from the merge.
func (d *DedupIterator) Err() error { return d.m.Err() }

// Close closes the underlying merge.
func (d *DedupIterator) Close() error { return d.m.Close() }
