package compaction

import (
	"testing"

	"repro/internal/hll"
	"repro/internal/manifest"
)

func stPicker(triadDisk bool) *Picker {
	return NewPicker(PickerOptions{
		Strategy:              SizeTiered,
		MinMergeWidth:         4,
		MaxMergeWidth:         8,
		TriadDisk:             triadDisk,
		OverlapRatioThreshold: 0.4,
	})
}

func stFile(id uint64, size int64) *manifest.FileMeta {
	return &manifest.FileMeta{ID: id, Kind: manifest.KindSST, Level: 0, Size: size,
		Smallest: []byte("a"), Largest: []byte("z")}
}

func TestSizeTieredTooFewFiles(t *testing.T) {
	p := stPicker(false)
	v := version(stFile(1, 100), stFile(2, 100), stFile(3, 100))
	if job := p.Pick(v, nil); job != nil {
		t.Fatalf("job = %+v, want nil below MinMergeWidth", job)
	}
}

func TestSizeTieredBucketsBySize(t *testing.T) {
	p := stPicker(false)
	// Four small files + two huge ones: only the small bucket merges.
	v := version(
		stFile(1, 100), stFile(2, 110), stFile(3, 120), stFile(4, 130),
		stFile(5, 100_000), stFile(6, 110_000),
	)
	job := p.Pick(v, nil)
	if job == nil || job.Deferred {
		t.Fatalf("job = %+v", job)
	}
	if len(job.Inputs) != 4 {
		t.Fatalf("merged %d files, want the 4 similar-sized ones", len(job.Inputs))
	}
	for _, f := range job.Inputs {
		if f.Size > 1000 {
			t.Fatalf("bucket included a huge file: %d", f.Size)
		}
	}
	if job.OutputLevel != 0 {
		t.Fatalf("OutputLevel = %d, want 0", job.OutputLevel)
	}
	if job.WholeTree {
		t.Fatal("partial merge flagged WholeTree")
	}
}

func TestSizeTieredWholeTree(t *testing.T) {
	p := stPicker(false)
	v := version(stFile(1, 100), stFile(2, 100), stFile(3, 100), stFile(4, 100))
	job := p.Pick(v, nil)
	if job == nil || !job.WholeTree {
		t.Fatalf("job = %+v, want WholeTree", job)
	}
}

func TestSizeTieredMaxMergeWidth(t *testing.T) {
	p := stPicker(false)
	var files []*manifest.FileMeta
	for id := uint64(1); id <= 12; id++ {
		files = append(files, stFile(id, 100))
	}
	v := version(files...)
	job := p.Pick(v, nil)
	if job == nil || len(job.Inputs) != 8 {
		t.Fatalf("merge width = %d, want MaxMergeWidth 8", len(job.Inputs))
	}
	if job.WholeTree {
		t.Fatal("capped merge flagged WholeTree")
	}
}

func TestSizeTieredTriadDiskDefersLowOverlap(t *testing.T) {
	p := stPicker(true)
	v := version(stFile(1, 100), stFile(2, 100), stFile(3, 100), stFile(4, 100))
	// Disjoint sketches → defer.
	job := p.Pick(v, func(f *manifest.FileMeta) *hll.Sketch { return sketchWith(1000, int(f.ID)) })
	if job == nil || !job.Deferred {
		t.Fatalf("job = %+v, want deferred", job)
	}
	// Identical sketches → merge.
	shared := sketchWith(1000, 0)
	job = p.Pick(v, func(*manifest.FileMeta) *hll.Sketch { return shared })
	if job == nil || job.Deferred {
		t.Fatalf("job = %+v, want merge on high overlap", job)
	}
}

func TestSizeTieredTriadDiskForcedAtMaxWidth(t *testing.T) {
	p := stPicker(true)
	var files []*manifest.FileMeta
	for id := uint64(1); id <= 8; id++ {
		files = append(files, stFile(id, 100))
	}
	v := version(files...)
	// Disjoint, but the bucket is at MaxMergeWidth → forced merge.
	job := p.Pick(v, func(f *manifest.FileMeta) *hll.Sketch { return sketchWith(500, int(f.ID)) })
	if job == nil || job.Deferred {
		t.Fatalf("job = %+v, want forced merge at MaxMergeWidth", job)
	}
}
