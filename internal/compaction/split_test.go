package compaction

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/base"
	"repro/internal/sstable"
	"repro/internal/vfs"
)

// openTables opens the given table IDs newest-first.
func openTables(t testing.TB, fs vfs.FS, ids ...uint64) []sstable.Table {
	t.Helper()
	out := make([]sstable.Table, 0, len(ids))
	for _, id := range ids {
		r, err := sstable.Open(fs, id)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		out = append(out, r)
	}
	return out
}

// mergeKeys drains a merge+dedup over tables bounded to slc.
func mergeKeys(t testing.TB, tables []sstable.Table, slc Slice, drop bool) []string {
	t.Helper()
	m, err := NewSliceMerge(tables, slc)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDedupIterator(m, drop, nil)
	defer d.Close()
	var got []string
	for d.Next() {
		e := d.Entry()
		got = append(got, fmt.Sprintf("%s/%d=%s", e.Key, e.Seq, e.Value))
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	return got
}

// twoOverlappingTables builds a newer and an older table with many
// overlapping keys, small blocks (so there are plenty of separators),
// and some tombstones.
func twoOverlappingTables(t testing.TB, fs vfs.FS) []sstable.Table {
	t.Helper()
	var newer, older []base.Entry
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%04d", i)
		older = append(older, e(key, uint64(1000+i), "old"))
		if i%2 == 0 {
			newer = append(newer, e(key, uint64(3000+i), "new"))
		} else if i%7 == 0 {
			newer = append(newer, del(key, uint64(3000+i)))
		}
	}
	buildTable(t, fs, 1, newer)
	buildTable(t, fs, 2, older)
	return openTables(t, fs, 1, 2)
}

func TestSplitJobCoversKeySpaceDisjointly(t *testing.T) {
	fs := vfs.NewMemFS()
	tables := twoOverlappingTables(t, fs)
	for _, k := range []int{2, 3, 4, 7} {
		slices := SplitJob(tables, k)
		if len(slices) < 2 {
			t.Fatalf("maxSlices=%d: got %d slices, want >= 2", k, len(slices))
		}
		if len(slices) > k {
			t.Fatalf("maxSlices=%d: got %d slices", k, len(slices))
		}
		// Contiguity: first lower and last upper unbounded, interior
		// boundaries shared and strictly ascending.
		if slices[0].Lower != nil || slices[len(slices)-1].Upper != nil {
			t.Fatalf("maxSlices=%d: edge slices bounded: %+v", k, slices)
		}
		for i := 0; i < len(slices)-1; i++ {
			if !bytes.Equal(slices[i].Upper, slices[i+1].Lower) {
				t.Fatalf("slice %d upper != slice %d lower", i, i+1)
			}
			if slices[i].Upper == nil {
				t.Fatalf("interior boundary %d is nil", i)
			}
			if i > 0 && bytes.Compare(slices[i-1].Upper, slices[i].Upper) >= 0 {
				t.Fatalf("boundaries not strictly ascending at %d", i)
			}
		}
	}
}

func TestSlicedMergeEqualsMonolithic(t *testing.T) {
	fs := vfs.NewMemFS()
	tables := twoOverlappingTables(t, fs)
	for _, drop := range []bool{false, true} {
		want := mergeKeys(t, tables, Slice{}, drop)
		for _, k := range []int{2, 3, 5, 8} {
			var got []string
			for _, slc := range SplitJob(tables, k) {
				got = append(got, mergeKeys(t, tables, slc, drop)...)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("drop=%v k=%d: sliced merge diverges from monolithic\n got %d entries\nwant %d entries",
					drop, k, len(got), len(want))
			}
		}
	}
}

func TestSplitJobDegenerate(t *testing.T) {
	fs := vfs.NewMemFS()
	// One tiny table: a single block has no interior separators.
	buildTable(t, fs, 1, []base.Entry{e("a", 1, "x"), e("b", 2, "y")})
	tables := openTables(t, fs, 1)
	if got := SplitJob(tables, 8); len(got) != 1 || got[0].Lower != nil || got[0].Upper != nil {
		t.Fatalf("tiny table: SplitJob = %+v, want one unbounded slice", got)
	}
	if got := SplitJob(tables, 1); len(got) != 1 {
		t.Fatalf("maxSlices=1: SplitJob = %+v", got)
	}
	if got := SplitJob(tables, 0); len(got) != 1 {
		t.Fatalf("maxSlices=0: SplitJob = %+v", got)
	}
}

func TestBoundedIterSeekGEClampsToSlice(t *testing.T) {
	fs := vfs.NewMemFS()
	tables := twoOverlappingTables(t, fs)
	slices := SplitJob(tables, 3)
	if len(slices) < 3 {
		t.Skipf("only %d slices", len(slices))
	}
	mid := slices[1]
	m, err := NewSliceMerge(tables, mid)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for m.Next() {
		k := m.Entry().Key
		if bytes.Compare(k, mid.Lower) < 0 || bytes.Compare(k, mid.Upper) >= 0 {
			t.Fatalf("key %q escaped slice [%q, %q)", k, mid.Lower, mid.Upper)
		}
	}
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
}
