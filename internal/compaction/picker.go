package compaction

import (
	"bytes"
	"sort"

	"repro/internal/hll"
	"repro/internal/manifest"
)

// Strategy selects the compaction layout policy.
type Strategy uint8

const (
	// Leveled is the RocksDB-style leveled compaction the paper's
	// substrate and TRIAD both use.
	Leveled Strategy = iota
	// SizeTiered is a Cassandra-style size-tiered strategy: every table
	// lives in L0 (overlapping ranges allowed) and groups of
	// similar-sized tables are merged into one larger table. The paper
	// (§2) notes TRIAD's techniques "could easily be adapted to
	// size-tiered approaches"; this strategy is that adaptation —
	// TRIAD-DISK's HLL overlap estimate picks the most duplicate-dense
	// bucket, the same use Cassandra put HLL to (§6).
	SizeTiered
)

// PickerOptions configures compaction triggering.
type PickerOptions struct {
	// Strategy selects leveled (default) or size-tiered compaction.
	Strategy Strategy
	// L0CompactionTrigger is the L0 file count at which a baseline engine
	// compacts L0 into L1 (RocksDB default: 4).
	L0CompactionTrigger int
	// BaseLevelBytes is the target size of L1; level n has target
	// BaseLevelBytes * Multiplier^(n-1).
	BaseLevelBytes int64
	// Multiplier is the per-level size ratio (RocksDB default: 10).
	Multiplier int64

	// TriadDisk enables the deferred-compaction policy.
	TriadDisk bool
	// OverlapRatioThreshold is the minimum HLL overlap ratio among L0
	// files required to compact before MaxFilesL0 forces it (paper: 0.4).
	OverlapRatioThreshold float64
	// MaxFilesL0 is the hard cap on L0 files (paper: 6).
	MaxFilesL0 int

	// MinMergeWidth / MaxMergeWidth bound a size-tiered merge
	// (Cassandra defaults: 4 and 32).
	MinMergeWidth int
	MaxMergeWidth int
	// BucketRatio is the size similarity bound: a bucket holds files
	// within [avg/BucketRatio, avg*BucketRatio] (default 2.0).
	BucketRatio float64
}

// DefaultPickerOptions mirrors the paper's configuration.
func DefaultPickerOptions() PickerOptions {
	return PickerOptions{
		L0CompactionTrigger:   4,
		BaseLevelBytes:        8 << 20,
		Multiplier:            10,
		TriadDisk:             true,
		OverlapRatioThreshold: 0.4,
		MaxFilesL0:            6,
	}
}

// Job describes one compaction: merge Inputs (level Level) with Overlaps
// (level Level+1) into new tables at level OutputLevel.
type Job struct {
	Level       int
	OutputLevel int
	Inputs      []*manifest.FileMeta
	Overlaps    []*manifest.FileMeta
	// Deferred reports (for observability) that L0 compaction was
	// considered but deferred by TRIAD-DISK this round.
	Deferred bool
	// WholeTree reports that the job merges every file in the tree, so
	// tombstones may be dropped even when the output stays in L0
	// (size-tiered full compaction).
	WholeTree bool
}

// Picker decides what to compact next.
type Picker struct {
	opts PickerOptions
	// roundRobin remembers the next file cursor per level so repeated
	// compactions cycle through a level's key space like LevelDB.
	cursor [manifest.NumLevels]int
}

// NewPicker returns a Picker with the given options.
func NewPicker(opts PickerOptions) *Picker {
	if opts.L0CompactionTrigger <= 0 {
		opts.L0CompactionTrigger = 4
	}
	if opts.Multiplier <= 0 {
		opts.Multiplier = 10
	}
	if opts.BaseLevelBytes <= 0 {
		opts.BaseLevelBytes = 8 << 20
	}
	if opts.MaxFilesL0 <= 0 {
		opts.MaxFilesL0 = 6
	}
	if opts.MinMergeWidth <= 0 {
		opts.MinMergeWidth = 4
	}
	if opts.MaxMergeWidth <= 0 {
		opts.MaxMergeWidth = 32
	}
	if opts.BucketRatio <= 1 {
		opts.BucketRatio = 2.0
	}
	return &Picker{opts: opts}
}

// TargetSize returns the byte budget of level l (l >= 1).
func (p *Picker) TargetSize(l int) int64 {
	t := p.opts.BaseLevelBytes
	for i := 1; i < l; i++ {
		t *= p.opts.Multiplier
	}
	return t
}

// ShouldDeferL0 implements Algorithm 2's deferCompaction: true means "wait
// for more L0 files". sketches are the HLL sketches of the current L0
// files (paper: the overlap ratio is computed over the L0 files; Figure 5
// also folds in the overlapping L1 files — we follow Algorithm 2, which
// uses the L0 files, and expose the policy for ablation).
func (p *Picker) ShouldDeferL0(numL0 int, sketches []*hll.Sketch) bool {
	if !p.opts.TriadDisk {
		return false
	}
	if numL0 >= p.opts.MaxFilesL0 {
		return false // forced
	}
	var total float64
	for _, s := range sketches {
		total += float64(s.Count())
	}
	if total == 0 {
		return true
	}
	ratio := hll.OverlapRatio(sketches)
	return ratio < p.opts.OverlapRatioThreshold
}

// OverlapRatioL0 reports the current HLL overlap ratio (observability).
func OverlapRatioL0(sketches []*hll.Sketch) float64 { return hll.OverlapRatio(sketches) }

// Pick returns the next compaction job for version v, or nil if the tree
// is in shape. sketchOf must return the HLL sketch of an L0 file (used
// only when TRIAD-DISK is on).
func (p *Picker) Pick(v *manifest.Version, sketchOf func(*manifest.FileMeta) *hll.Sketch) *Job {
	if p.opts.Strategy == SizeTiered {
		return p.pickSizeTiered(v, sketchOf)
	}
	// L0 first: it gates reads (every L0 file is probed).
	l0 := v.Levels[0]
	if len(l0) >= p.opts.L0CompactionTrigger {
		if p.opts.TriadDisk {
			sketches := make([]*hll.Sketch, 0, len(l0))
			for _, f := range l0 {
				if s := sketchOf(f); s != nil {
					sketches = append(sketches, s)
				}
			}
			if p.ShouldDeferL0(len(l0), sketches) {
				return &Job{Level: 0, Deferred: true}
			}
			// TRIAD-DISK compacts every L0 file together (one multi-way
			// merge) so a key occurring in several L0 files is compacted
			// once — the premature/iterative compaction fix of §3(2).
			lo, hi := KeyRangeOf(l0)
			return &Job{Level: 0, OutputLevel: 1, Inputs: append([]*manifest.FileMeta(nil), l0...), Overlaps: v.Overlapping(1, lo, hi)}
		}
		// Baseline behaviour per §3(2): "files in L0 are compacted to
		// higher levels one at a time, resulting in several consecutive
		// compaction operations" — merge the oldest L0 file alone.
		oldest := l0[len(l0)-1] // L0 is ordered newest-first
		return &Job{Level: 0, OutputLevel: 1, Inputs: []*manifest.FileMeta{oldest}, Overlaps: v.Overlapping(1, oldest.Smallest, oldest.Largest)}
	}
	// Size-triggered compactions for L1..Ln-1, highest score first.
	bestLevel, bestScore := -1, 1.0
	for l := 1; l < manifest.NumLevels-1; l++ {
		if len(v.Levels[l]) == 0 {
			continue
		}
		score := float64(v.LevelSize(l)) / float64(p.TargetSize(l))
		if score > bestScore {
			bestLevel, bestScore = l, score
		}
	}
	if bestLevel < 0 {
		return nil
	}
	files := v.Levels[bestLevel]
	idx := p.cursor[bestLevel] % len(files)
	p.cursor[bestLevel]++
	in := files[idx]
	return &Job{
		Level:       bestLevel,
		OutputLevel: bestLevel + 1,
		Inputs:      []*manifest.FileMeta{in},
		Overlaps:    v.Overlapping(bestLevel+1, in.Smallest, in.Largest),
	}
}

// pickSizeTiered implements the size-tiered strategy: bucket the (single
// level of) tables by similar size; merge the fullest eligible bucket.
// With TRIAD-DISK, the bucket with the highest HLL overlap ratio is
// preferred (Cassandra's use of HLL, §6) and a bucket whose overlap is
// below the threshold is deferred unless it has reached MaxMergeWidth.
func (p *Picker) pickSizeTiered(v *manifest.Version, sketchOf func(*manifest.FileMeta) *hll.Sketch) *Job {
	files := append([]*manifest.FileMeta(nil), v.Levels[0]...)
	if len(files) < p.opts.MinMergeWidth {
		return nil
	}
	// Sort by size ascending, then group into similarity buckets.
	sort.Slice(files, func(i, j int) bool { return files[i].Size < files[j].Size })
	var buckets [][]*manifest.FileMeta
	cur := []*manifest.FileMeta{files[0]}
	for _, f := range files[1:] {
		if float64(f.Size) <= p.opts.BucketRatio*float64(cur[0].Size) {
			cur = append(cur, f)
			continue
		}
		buckets = append(buckets, cur)
		cur = []*manifest.FileMeta{f}
	}
	buckets = append(buckets, cur)

	var (
		best        []*manifest.FileMeta
		bestOverlap = -1.0
		deferred    bool
	)
	for _, b := range buckets {
		if len(b) < p.opts.MinMergeWidth {
			continue
		}
		if len(b) > p.opts.MaxMergeWidth {
			b = b[:p.opts.MaxMergeWidth]
		}
		if !p.opts.TriadDisk {
			if best == nil || len(b) > len(best) {
				best = b
			}
			continue
		}
		sketches := make([]*hll.Sketch, 0, len(b))
		for _, f := range b {
			if s := sketchOf(f); s != nil {
				sketches = append(sketches, s)
			}
		}
		ratio := hll.OverlapRatio(sketches)
		if ratio < p.opts.OverlapRatioThreshold && len(b) < p.opts.MaxMergeWidth {
			deferred = true // not enough duplication yet; wait
			continue
		}
		if ratio > bestOverlap {
			best, bestOverlap = b, ratio
		}
	}
	if best == nil {
		if deferred {
			return &Job{Level: 0, Deferred: true}
		}
		return nil
	}
	return &Job{
		Level:       0,
		OutputLevel: 0,
		Inputs:      best,
		WholeTree:   len(best) == len(files),
	}
}

// KeyRangeOf returns the union key range of files.
func KeyRangeOf(files []*manifest.FileMeta) (lo, hi []byte) {
	for i, f := range files {
		if i == 0 {
			lo, hi = f.Smallest, f.Largest
			continue
		}
		if bytes.Compare(f.Smallest, lo) < 0 {
			lo = f.Smallest
		}
		if bytes.Compare(f.Largest, hi) > 0 {
			hi = f.Largest
		}
	}
	return lo, hi
}
