package compaction

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/base"
	"repro/internal/hll"
	"repro/internal/manifest"
	"repro/internal/sstable"
	"repro/internal/vfs"
)

// buildTable writes entries (key, value, seq) triples into table id.
func buildTable(t testing.TB, fs vfs.FS, id uint64, entries []base.Entry) {
	t.Helper()
	w, err := sstable.NewWriter(fs, id, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := w.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
}

func openIter(t testing.TB, fs vfs.FS, id uint64) sstable.Iterator {
	t.Helper()
	r, err := sstable.Open(fs, id)
	if err != nil {
		t.Fatal(err)
	}
	it, err := r.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	return it
}

func e(key string, seq uint64, val string) base.Entry {
	return base.Entry{Key: []byte(key), Value: []byte(val), Seq: seq, Kind: base.KindSet}
}

func del(key string, seq uint64) base.Entry {
	return base.Entry{Key: []byte(key), Seq: seq, Kind: base.KindDelete}
}

func TestMergeIteratorOrder(t *testing.T) {
	fs := vfs.NewMemFS()
	buildTable(t, fs, 1, []base.Entry{e("b", 10, "new-b"), e("d", 11, "new-d")})
	buildTable(t, fs, 2, []base.Entry{e("a", 1, "a1"), e("b", 2, "old-b"), e("c", 3, "c1")})
	m := NewMergeIterator([]sstable.Iterator{openIter(t, fs, 1), openIter(t, fs, 2)})
	defer m.Close()
	var got []string
	for m.Next() {
		en := m.Entry()
		got = append(got, fmt.Sprintf("%s/%d", en.Key, en.Seq))
	}
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	want := []string{"a/1", "b/10", "b/2", "c/3", "d/11"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merge order = %v, want %v", got, want)
	}
}

func TestDedupKeepsNewest(t *testing.T) {
	fs := vfs.NewMemFS()
	buildTable(t, fs, 1, []base.Entry{e("b", 10, "new-b")})
	buildTable(t, fs, 2, []base.Entry{e("a", 1, "a1"), e("b", 2, "old-b")})
	m := NewMergeIterator([]sstable.Iterator{openIter(t, fs, 1), openIter(t, fs, 2)})
	d := NewDedupIterator(m, false, nil)
	defer d.Close()
	var got []string
	for d.Next() {
		got = append(got, fmt.Sprintf("%s=%s", d.Entry().Key, d.Entry().Value))
	}
	want := "[a=a1 b=new-b]"
	if fmt.Sprint(got) != want {
		t.Fatalf("dedup = %v, want %v", got, want)
	}
}

func TestDedupTombstones(t *testing.T) {
	fs := vfs.NewMemFS()
	buildTable(t, fs, 1, []base.Entry{del("a", 10), e("b", 11, "b")})
	buildTable(t, fs, 2, []base.Entry{e("a", 1, "old-a")})
	// Tombstones retained (not bottommost).
	m := NewMergeIterator([]sstable.Iterator{openIter(t, fs, 1), openIter(t, fs, 2)})
	d := NewDedupIterator(m, false, nil)
	var got []string
	for d.Next() {
		got = append(got, fmt.Sprintf("%s/%v", d.Entry().Key, d.Entry().Kind))
	}
	d.Close()
	if fmt.Sprint(got) != "[a/del b/set]" {
		t.Fatalf("kept = %v", got)
	}
	// Tombstones dropped (bottommost).
	m = NewMergeIterator([]sstable.Iterator{openIter(t, fs, 1), openIter(t, fs, 2)})
	d = NewDedupIterator(m, true, nil)
	got = nil
	for d.Next() {
		got = append(got, string(d.Entry().Key))
	}
	d.Close()
	if fmt.Sprint(got) != "[b]" {
		t.Fatalf("dropped = %v", got)
	}
}

func TestDedupSkipHotKeys(t *testing.T) {
	fs := vfs.NewMemFS()
	buildTable(t, fs, 1, []base.Entry{e("cold", 1, "c"), e("hot", 2, "h")})
	m := NewMergeIterator([]sstable.Iterator{openIter(t, fs, 1)})
	d := NewDedupIterator(m, false, func(key []byte) bool { return string(key) == "hot" })
	var got []string
	for d.Next() {
		got = append(got, string(d.Entry().Key))
	}
	d.Close()
	if fmt.Sprint(got) != "[cold]" {
		t.Fatalf("skip result = %v", got)
	}
}

func TestMergeEmptyInputs(t *testing.T) {
	m := NewMergeIterator(nil)
	if m.Next() {
		t.Fatal("empty merge advanced")
	}
	m.Close()
}

// TestQuickMergeEqualsSortedUnion: merging k tables equals the sorted
// newest-wins union of their contents. Tables are built oldest-first
// (ti = 2, 1, 0) with globally increasing sequence numbers, so later
// tables hold the newer version of any shared key.
func TestQuickMergeEqualsSortedUnion(t *testing.T) {
	check := func(tables [3][]uint16) bool {
		fs := vfs.NewMemFS()
		seq := uint64(1)
		want := map[string]string{}
		var ids []uint64 // newest first, for merge rank
		for ti := 2; ti >= 0; ti-- {
			val := fmt.Sprintf("t%d", ti)
			latest := map[string]base.Entry{}
			for _, k := range tables[ti] {
				key := fmt.Sprintf("%04d", k%200)
				latest[key] = base.Entry{Key: []byte(key), Value: []byte(val), Seq: seq, Kind: base.KindSet}
				want[key] = val // later tables overwrite: newest wins
				seq++
			}
			if len(latest) == 0 {
				continue
			}
			sorted := make([]base.Entry, 0, len(latest))
			for _, e := range latest {
				sorted = append(sorted, e)
			}
			sort.Slice(sorted, func(i, j int) bool {
				return string(sorted[i].Key) < string(sorted[j].Key)
			})
			id := uint64(10 + ti)
			buildTable(t, fs, id, sorted)
			ids = append([]uint64{id}, ids...)
		}
		var its []sstable.Iterator
		for _, id := range ids {
			its = append(its, openIter(t, fs, id))
		}
		d := NewDedupIterator(NewMergeIterator(its), false, nil)
		defer d.Close()
		got := map[string]string{}
		var prev string
		for d.Next() {
			k := string(d.Entry().Key)
			if prev != "" && k <= prev {
				return false // order violated
			}
			prev = k
			got[k] = string(d.Entry().Value)
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// --- Picker ---

func fm(id uint64, level int, lo, hi string, size int64) *manifest.FileMeta {
	return &manifest.FileMeta{ID: id, Kind: manifest.KindSST, Level: level, Size: size, Smallest: []byte(lo), Largest: []byte(hi)}
}

func version(files ...*manifest.FileMeta) *manifest.Version {
	v := manifest.NewVersion()
	var edit manifest.Edit
	for _, f := range files {
		edit.Added = append(edit.Added, *f)
	}
	nv, err := v.Apply(edit)
	if err != nil {
		panic(err)
	}
	return nv
}

func sketchWith(n, salt int) *hll.Sketch {
	s := hll.MustNew(12)
	for i := 0; i < n; i++ {
		s.Add([]byte(fmt.Sprintf("%d-%d", salt, i)))
	}
	return s
}

func TestPickerBaselineOneL0FileAtATime(t *testing.T) {
	p := NewPicker(PickerOptions{L0CompactionTrigger: 4, TriadDisk: false})
	v := version(
		fm(4, 0, "a", "z", 100), fm(3, 0, "a", "z", 100),
		fm(2, 0, "a", "z", 100), fm(1, 0, "a", "z", 100),
		fm(10, 1, "a", "m", 100), fm(11, 1, "n", "z", 100),
	)
	job := p.Pick(v, func(*manifest.FileMeta) *hll.Sketch { return nil })
	if job == nil || job.Deferred {
		t.Fatalf("job = %+v", job)
	}
	if len(job.Inputs) != 1 || job.Inputs[0].ID != 1 {
		t.Fatalf("baseline picked %d L0 inputs (first %d), want oldest single file",
			len(job.Inputs), job.Inputs[0].ID)
	}
	if len(job.Overlaps) != 2 {
		t.Fatalf("overlaps = %d, want 2", len(job.Overlaps))
	}
}

func TestPickerTriadCompactsAllL0Together(t *testing.T) {
	p := NewPicker(PickerOptions{L0CompactionTrigger: 4, TriadDisk: true, OverlapRatioThreshold: 0.4, MaxFilesL0: 6})
	// Four L0 files over the same keys: overlap ratio ≈ 0.75 ≥ 0.4.
	shared := sketchWith(1000, 0)
	v := version(
		fm(4, 0, "a", "z", 100), fm(3, 0, "a", "z", 100),
		fm(2, 0, "a", "z", 100), fm(1, 0, "a", "z", 100),
	)
	job := p.Pick(v, func(*manifest.FileMeta) *hll.Sketch { return shared })
	if job == nil || job.Deferred {
		t.Fatalf("job = %+v, want a real job", job)
	}
	if len(job.Inputs) != 4 {
		t.Fatalf("TRIAD picked %d L0 inputs, want all 4", len(job.Inputs))
	}
}

func TestPickerTriadDefersLowOverlap(t *testing.T) {
	p := NewPicker(PickerOptions{L0CompactionTrigger: 4, TriadDisk: true, OverlapRatioThreshold: 0.4, MaxFilesL0: 6})
	v := version(
		fm(4, 0, "a", "z", 100), fm(3, 0, "a", "z", 100),
		fm(2, 0, "a", "z", 100), fm(1, 0, "a", "z", 100),
	)
	// Disjoint sketches: overlap ≈ 0 < 0.4 → defer.
	job := p.Pick(v, func(f *manifest.FileMeta) *hll.Sketch { return sketchWith(1000, int(f.ID)) })
	if job == nil || !job.Deferred {
		t.Fatalf("job = %+v, want deferred", job)
	}
}

func TestPickerTriadForcesAtMaxFiles(t *testing.T) {
	p := NewPicker(PickerOptions{L0CompactionTrigger: 4, TriadDisk: true, OverlapRatioThreshold: 0.4, MaxFilesL0: 6})
	var files []*manifest.FileMeta
	for id := uint64(1); id <= 6; id++ {
		files = append(files, fm(id, 0, "a", "z", 100))
	}
	v := version(files...)
	// Still disjoint, but MAX_FILES_L0 reached → compact anyway.
	job := p.Pick(v, func(f *manifest.FileMeta) *hll.Sketch { return sketchWith(1000, int(f.ID)) })
	if job == nil || job.Deferred {
		t.Fatalf("job = %+v, want forced compaction", job)
	}
	if len(job.Inputs) != 6 {
		t.Fatalf("forced compaction picked %d inputs, want 6", len(job.Inputs))
	}
}

func TestPickerSizeTriggeredDeeperLevels(t *testing.T) {
	p := NewPicker(PickerOptions{L0CompactionTrigger: 4, BaseLevelBytes: 1000, Multiplier: 10})
	v := version(
		fm(1, 1, "a", "m", 800), fm(2, 1, "n", "z", 900), // L1 = 1700 > 1000
		fm(3, 2, "a", "z", 500),
	)
	job := p.Pick(v, func(*manifest.FileMeta) *hll.Sketch { return nil })
	if job == nil || job.Level != 1 || len(job.Inputs) != 1 {
		t.Fatalf("job = %+v", job)
	}
	if len(job.Overlaps) != 1 || job.Overlaps[0].ID != 3 {
		t.Fatalf("overlaps = %v", job.Overlaps)
	}
}

func TestPickerNothingToDo(t *testing.T) {
	p := NewPicker(DefaultPickerOptions())
	v := version(fm(1, 1, "a", "m", 100))
	if job := p.Pick(v, func(*manifest.FileMeta) *hll.Sketch { return nil }); job != nil {
		t.Fatalf("job = %+v, want nil", job)
	}
}

func TestPickerRoundRobinCursor(t *testing.T) {
	p := NewPicker(PickerOptions{L0CompactionTrigger: 4, BaseLevelBytes: 100, Multiplier: 10})
	v := version(fm(1, 1, "a", "f", 200), fm(2, 1, "g", "z", 200))
	j1 := p.Pick(v, nil)
	j2 := p.Pick(v, nil)
	if j1.Inputs[0].ID == j2.Inputs[0].ID {
		t.Fatal("cursor did not advance between picks")
	}
}

func TestKeyRangeOf(t *testing.T) {
	lo, hi := KeyRangeOf([]*manifest.FileMeta{fm(1, 0, "g", "m", 0), fm(2, 0, "a", "k", 0), fm(3, 0, "j", "z", 0)})
	if string(lo) != "a" || string(hi) != "z" {
		t.Fatalf("range = %q..%q", lo, hi)
	}
}
