// Parallel subcompactions: one picked compaction is partitioned into K
// disjoint key-range slices, each merged independently into its own
// output tables, and the union of the outputs is installed as a single
// atomic manifest edit. The splitter chooses boundaries from the input
// tables' block index separators — partition points the tables already
// paid for — so a slice's iterators SeekGE straight to their range
// instead of scanning from the front.
package compaction

import (
	"bytes"
	"sort"

	"repro/internal/sstable"
)

// Slice is one key-range partition of a compaction: the half-open
// interval [Lower, Upper). A nil Lower means unbounded below, a nil
// Upper unbounded above; the zero Slice covers everything. Boundaries
// compare whole user keys, so every version of a key lands in exactly
// one slice and per-slice dedup sees what a monolithic merge would.
type Slice struct {
	Lower, Upper []byte
}

// blockSeparated is implemented by tables that expose their block
// index's last keys (both SSTable readers do); tables that don't simply
// contribute no split points.
type blockSeparated interface {
	BlockSeparators() [][]byte
}

// SplitJob partitions the key space covered by tables into at most
// maxSlices contiguous slices with boundaries drawn evenly from the
// tables' pooled block separators. It returns at least one slice; a
// single (unbounded) slice means the compaction runs monolithically —
// because maxSlices <= 1, or the tables expose too few distinct
// interior separators to cut.
func SplitJob(tables []sstable.Table, maxSlices int) []Slice {
	if maxSlices > len(tables)*64 {
		// No point slicing finer than the data can spread.
		maxSlices = len(tables) * 64
	}
	if maxSlices <= 1 {
		return []Slice{{}}
	}
	lo, hi := tableKeyRange(tables)
	var seps [][]byte
	for _, t := range tables {
		bs, ok := t.(blockSeparated)
		if !ok {
			continue
		}
		for _, s := range bs.BlockSeparators() {
			// A boundary at or below the overall smallest key (or at or
			// above the largest) would produce an empty edge slice.
			if bytes.Compare(s, lo) > 0 && bytes.Compare(s, hi) < 0 {
				seps = append(seps, s)
			}
		}
	}
	if len(seps) == 0 {
		return []Slice{{}}
	}
	sort.Slice(seps, func(i, j int) bool { return bytes.Compare(seps[i], seps[j]) < 0 })
	uniq := seps[:1]
	for _, s := range seps[1:] {
		if !bytes.Equal(s, uniq[len(uniq)-1]) {
			uniq = append(uniq, s)
		}
	}
	k := maxSlices
	if k > len(uniq)+1 {
		k = len(uniq) + 1
	}
	out := make([]Slice, 0, k)
	var lower []byte
	for i := 1; i < k; i++ {
		b := uniq[i*len(uniq)/k]
		out = append(out, Slice{Lower: lower, Upper: b})
		lower = b
	}
	return append(out, Slice{Lower: lower})
}

func tableKeyRange(tables []sstable.Table) (lo, hi []byte) {
	for _, t := range tables {
		if lo == nil || bytes.Compare(t.Smallest(), lo) < 0 {
			lo = t.Smallest()
		}
		if hi == nil || bytes.Compare(t.Largest(), hi) > 0 {
			hi = t.Largest()
		}
	}
	return lo, hi
}

// boundedIter restricts a table iterator to a Slice: the first Next
// seeks to the lower bound, and iteration stops at the first key at or
// past the upper bound.
type boundedIter struct {
	sstable.Iterator
	slc     Slice
	started bool
	done    bool
}

func (b *boundedIter) Next() bool {
	if b.done {
		return false
	}
	var ok bool
	if !b.started {
		b.started = true
		if b.slc.Lower != nil {
			ok = b.Iterator.SeekGE(b.slc.Lower)
		} else {
			ok = b.Iterator.Next()
		}
	} else {
		ok = b.Iterator.Next()
	}
	return b.check(ok)
}

func (b *boundedIter) SeekGE(key []byte) bool {
	if b.done {
		return false
	}
	b.started = true
	if b.slc.Lower != nil && bytes.Compare(key, b.slc.Lower) < 0 {
		key = b.slc.Lower
	}
	return b.check(b.Iterator.SeekGE(key))
}

func (b *boundedIter) check(ok bool) bool {
	if !ok {
		b.done = true
		return false
	}
	if b.slc.Upper != nil && bytes.Compare(b.Iterator.Entry().Key, b.slc.Upper) >= 0 {
		b.done = true
		return false
	}
	return true
}

// NewSliceMerge opens one iterator per table — tables[0] being the
// newest source, as NewMergeIterator requires — bounds each to slc, and
// returns their merge. With the zero Slice it is exactly the monolithic
// compaction merge. The caller owns the result and must Close it (or
// hand it to NewDedupIterator, which takes ownership).
func NewSliceMerge(tables []sstable.Table, slc Slice) (*MergeIterator, error) {
	its := make([]sstable.Iterator, 0, len(tables))
	for _, t := range tables {
		it, err := t.NewIterator()
		if err != nil {
			for _, prev := range its {
				prev.Close()
			}
			return nil, err
		}
		its = append(its, &boundedIter{Iterator: it, slc: slc})
	}
	return NewMergeIterator(its), nil
}
