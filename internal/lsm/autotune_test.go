package lsm

import (
	"testing"

	"repro/internal/vfs"
	"repro/internal/workload"
)

// TestAutoTuneGrowsUnderSkew: starting with an undersized hot budget on a
// workload whose hot set is 10% of keys, the tuner must raise the budget.
func TestAutoTuneGrowsUnderSkew(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	o.TriadMem = true
	o.HotPolicy = 0 // HotTopK: budget-driven, the policy K tunes
	o.HotFraction = 0.005
	o.AutoTuneHotFraction = true
	db := mustOpen(t, o)
	defer db.Close()

	dist := workload.HotCold{N: 2000, HotFraction: 0.10, HotAccess: 0.95}
	drive(t, db, dist, 40000, 0, 11)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	got := db.HotFraction()
	if got <= o.HotFraction {
		t.Fatalf("hot fraction did not grow: %.4f <= %.4f", got, o.HotFraction)
	}
	if got > 0.60 {
		t.Fatalf("hot fraction exceeded cap: %.4f", got)
	}
}

// TestAutoTuneShrinksOnUniform: an oversized budget on a uniform workload
// (no hot keys at all) must shrink toward the floor.
func TestAutoTuneShrinksOnUniform(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	o.TriadMem = true
	o.HotPolicy = 0
	o.HotFraction = 0.40
	o.AutoTuneHotFraction = true
	db := mustOpen(t, o)
	defer db.Close()

	drive(t, db, workload.Uniform{N: 50_000}, 40000, 0, 12)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	got := db.HotFraction()
	if got >= o.HotFraction {
		t.Fatalf("hot fraction did not shrink: %.4f >= %.4f", got, o.HotFraction)
	}
}

// TestAutoTuneDisabledStaysPut: without the toggle the fraction is fixed.
func TestAutoTuneDisabledStaysPut(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	o.TriadMem = true
	o.HotFraction = 0.05
	db := mustOpen(t, o)
	defer db.Close()
	drive(t, db, skewed(2000), 20000, 0, 13)
	db.Flush()
	if got := db.HotFraction(); got != 0.05 {
		t.Fatalf("hot fraction moved without auto-tune: %.4f", got)
	}
}

// TestAutoTuneReducesFlushedBytes: end to end, the tuner should recover
// most of the benefit of a hand-tuned budget when starting from a bad one.
func TestAutoTuneReducesFlushedBytes(t *testing.T) {
	run := func(autotune bool, hotFrac float64) int64 {
		fs := vfs.NewMemFS()
		o := smallOptions(fs)
		o.TriadMem = true
		o.HotPolicy = 0
		o.HotFraction = hotFrac
		o.AutoTuneHotFraction = autotune
		db := mustOpen(t, o)
		defer db.Close()
		dist := workload.HotCold{N: 2000, HotFraction: 0.10, HotAccess: 0.95}
		drive(t, db, dist, 60000, 0, 14)
		db.Flush()
		return db.Metrics().BytesFlushed
	}
	badFixed := run(false, 0.005)
	tuned := run(true, 0.005)
	if tuned >= badFixed {
		t.Fatalf("auto-tune did not cut flushed bytes: tuned %d >= fixed %d", tuned, badFixed)
	}
	t.Logf("flushed bytes: fixed-bad=%d tuned=%d", badFixed, tuned)
}

func TestAutoTuneSurvivesManyFlushes(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	o.TriadMem = true
	o.HotPolicy = 0
	o.HotFraction = 0.01
	o.AutoTuneHotFraction = true
	db := mustOpen(t, o)
	defer db.Close()
	// Alternate skew phases; the fraction must stay within bounds.
	for phase := 0; phase < 4; phase++ {
		var dist workload.KeyDist = workload.Uniform{N: 20_000}
		if phase%2 == 0 {
			dist = workload.HotCold{N: 2000, HotFraction: 0.05, HotAccess: 0.95}
		}
		drive(t, db, dist, 15000, 0, int64(20+phase))
		db.Flush()
		hf := db.HotFraction()
		if hf < 0.001-1e-9 || hf > 0.60+1e-9 {
			t.Fatalf("phase %d: hot fraction out of bounds: %f", phase, hf)
		}
	}
}
