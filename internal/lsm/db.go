// Package lsm implements the LSM key-value engine (paper Figure 1): a
// memtable absorbing updates, a commit log for durability, and a leveled
// on-disk component maintained by background flushes and compactions.
//
// One engine serves as both sides of every experiment: with the three
// technique toggles off it behaves like the paper's RocksDB baseline
// (leveled compaction, one-file-at-a-time L0 merges, full memtable
// flushes); enabling TriadMem / TriadDisk / TriadLog switches in the
// paper's §4 mechanisms at exactly three sites — the flush policy, the L0
// compaction gate, and the L0 table format — leaving everything else
// byte-identical, which is what makes the ablation meaningful.
//
// Snapshots and iterators pin engine state (memtable overlay versions,
// zombie sstables) until closed; triadlint's mustclose analyzer (see
// internal/lint) enforces that every NewSnapshot/NewSnapshotAt/
// NewIterator result is closed on all control-flow paths or escapes to
// a tracked owner.
package lsm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/base"
	"repro/internal/bgsched"
	"repro/internal/compaction"
	"repro/internal/manifest"
	"repro/internal/memtable"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sstable"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// ErrNotFound is returned by Get for missing (or deleted) keys.
var ErrNotFound = errors.New("lsm: key not found")

// ErrClosed is returned on use after Close.
var ErrClosed = errors.New("lsm: database closed")

// immutable is a sealed (memtable, commit log) pair queued for flush.
type immutable struct {
	mem *memtable.Memtable
	log *wal.Writer
}

// DB is the key-value store.
type DB struct {
	opts   Options
	fs     vfs.FS
	picker *compaction.Picker
	met    metrics.Metrics

	// mu guards the mutable write-side state and the background queue.
	mu     sync.Mutex
	cond   *sync.Cond // signalled on queue/state changes
	mem    *memtable.Memtable
	imm    []*immutable
	log    *wal.Writer
	seq    uint64
	nextID uint64
	closed bool

	// versionMu guards the version pointer and the open-table map. Reads
	// hold it shared for the duration of a lookup so installs cannot
	// close a table out from under them.
	versionMu sync.RWMutex
	version   *manifest.Version
	tables    map[uint64]sstable.Table

	manifest *manifest.Log
	cache    *sstable.Handle // this DB's tenant view of the block cache

	// compactionMu serializes compaction pick+run cycles between the
	// background worker and explicit CompactOnce/CompactAll callers, so
	// no two compactions can consume the same files.
	compactionMu sync.Mutex

	bgErr error // first background error; surfaced on subsequent ops
	bgWG  sync.WaitGroup

	// sched is this engine's handle on the shared background pool (nil
	// in the classic two-goroutine mode). flushActive and compactQueued
	// (guarded by mu) keep at most one flush task draining the queue
	// and one compaction task queued at a time, so a burst of seals
	// does not pile duplicate tasks onto the pool.
	sched         *bgsched.Owner
	flushActive   bool
	compactQueued bool

	compactRequested bool
	flushing         int // immutables currently being flushed
	seedCounter      int64
	hotFrac          float64 // live TRIAD-MEM hot budget (auto-tunable)

	// l0Count caches len(version.Levels[0]) for the write-stall check
	// without taking versionMu on the write path.
	l0Count atomic.Int32

	// Snapshot state. snaps and maxPinned are guarded by mu (the write
	// path consults maxPinned while already holding it); refs and
	// zombies are guarded by versionMu alongside the version and table
	// map they qualify; the overlay carries its own lock.
	snaps     map[*snapPin]struct{}
	maxPinned uint64 // highest pinned seq among active snapshots; 0 = none
	overlay   overlay
	snapLeaks atomic.Int64

	// refs counts snapshot pins per table file; zombies holds files a
	// compaction consumed while still pinned — closed and deleted when
	// the last pin drops.
	refs    map[uint64]int
	zombies map[uint64]*manifest.FileMeta
}

// Open opens (creating or recovering) a DB in opts.FS.
func Open(opts Options) (*DB, error) {
	if opts.FS == nil {
		return nil, errors.New("lsm: Options.FS is required")
	}
	opts.withDefaults()
	// A caller-injected cache is shared across engines (table IDs are
	// per-DB, so the tenant handle keys this DB's blocks apart); the
	// fallback is a private cache sized from BlockCacheBytes.
	cc := opts.BlockCache
	if cc == nil {
		cc = sstable.NewCacheOpts(sstable.CacheOptions{
			Bytes:    opts.BlockCacheBytes,
			PlainLRU: opts.PlainBlockCache,
		})
	}
	db := &DB{
		opts:    opts,
		fs:      opts.FS,
		picker:  compaction.NewPicker(opts.pickerOptions()),
		tables:  make(map[uint64]sstable.Table),
		cache:   cc.NewHandle(),
		snaps:   make(map[*snapPin]struct{}),
		refs:    make(map[uint64]int),
		zombies: make(map[uint64]*manifest.FileMeta),
	}
	db.cond = sync.NewCond(&db.mu)
	if err := db.recover(); err != nil {
		return nil, err
	}
	if opts.Scheduler != nil {
		// Shared-pool mode: background work runs as pool tasks instead
		// of private goroutines. A recovered tree may already be over
		// its compaction triggers (e.g. many L0 files); queue a round
		// immediately.
		db.sched = opts.Scheduler.NewOwner()
		db.mu.Lock()
		if !opts.DisableAutoCompaction && !opts.DisableBackgroundIO {
			db.requestCompactLocked()
		}
		db.scheduleFlushLocked()
		db.mu.Unlock()
		return db, nil
	}
	// A recovered tree may already be over its compaction triggers
	// (e.g. many L0 files); let the worker check immediately.
	if !opts.DisableAutoCompaction && !opts.DisableBackgroundIO {
		db.compactRequested = true
	}
	db.bgWG.Add(2)
	go db.flushWorker()
	go db.compactionWorker()
	return db, nil
}

func (db *DB) nextSeed() int64 {
	db.seedCounter++
	return db.opts.Seed + db.seedCounter
}

// recover reconstructs the tree from the manifest and replays orphan logs.
func (db *DB) recover() error {
	ml, v, state, err := manifest.OpenLog(db.fs)
	if err != nil {
		return err
	}
	db.manifest = ml
	db.version = v
	db.l0Count.Store(int32(len(v.Levels[0])))
	db.seq = state.LastSeq
	db.nextID = state.NextFileID
	if db.nextID == 0 {
		db.nextID = 1
	}

	// Open every table the manifest references; remember which commit
	// logs are pinned by CL-SSTables.
	pinnedLogs := map[uint64]bool{}
	for _, files := range v.Levels {
		for _, f := range files {
			t, err := db.openTable(f)
			if err != nil {
				return fmt.Errorf("lsm: recover table %d: %w", f.ID, err)
			}
			db.tables[f.ID] = t
			if f.Kind == manifest.KindCLSST {
				pinnedLogs[f.LogID] = true
			}
			if f.ID >= db.nextID {
				db.nextID = f.ID + 1
			}
		}
	}

	// Replay unpinned logs (sealed-but-unflushed or current at crash)
	// oldest-first into a fresh memtable.
	logNames, err := db.fs.List("")
	if err != nil {
		return err
	}
	var replayIDs []uint64
	for _, name := range logNames {
		var id uint64
		if _, err := fmt.Sscanf(name, "%d.log", &id); err == nil && name == wal.FileName(id) && !pinnedLogs[id] {
			replayIDs = append(replayIDs, id)
		}
	}
	db.mem = memtable.New(db.nextSeed())
	for _, id := range replayIDs {
		err := wal.Replay(db.fs, id, func(e base.Entry, _ int64) error {
			if e.Seq > db.seq {
				db.seq = e.Seq
			}
			db.mem.Set(e.Key, e.Value, e.Seq, e.Kind, 0, 0)
			return nil
		})
		if err != nil {
			return fmt.Errorf("lsm: replay log %d: %w", id, err)
		}
		if id >= db.nextID {
			db.nextID = id + 1
		}
	}

	// Start a fresh log and rewrite the recovered entries into it so the
	// TRIAD-LOG invariant (every memtable entry's offset points into the
	// current log) holds; then the replayed logs can go.
	db.log, err = wal.NewWriter(db.fs, db.allocFileID(), db.opts.SyncWAL)
	if err != nil {
		return err
	}
	if db.mem.Len() > 0 {
		if err := db.populateLog(db.log, db.mem); err != nil {
			return err
		}
	}
	for _, id := range replayIDs {
		if err := db.fs.Remove(wal.FileName(id)); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) openTable(f *manifest.FileMeta) (sstable.Table, error) {
	switch f.Kind {
	case manifest.KindCLSST:
		return sstable.OpenCLWithCache(db.fs, f.ID, db.cache)
	default:
		return sstable.OpenWithCache(db.fs, f.ID, db.cache)
	}
}

// CacheStats reports block-cache hits and misses (zero when disabled).
func (db *DB) CacheStats() (hits, misses int64) { return db.cache.HitMiss() }

// BlockCacheStats reports this DB's full block-cache counters: its own
// hits/misses/evictions and the bytes it holds resident. When the cache
// is shared, Resident is this tenant's slice of it, not the whole cache.
func (db *DB) BlockCacheStats() sstable.CacheStats { return db.cache.Stats() }

func (db *DB) allocFileID() uint64 {
	id := db.nextID
	db.nextID++
	return id
}

// populateLog appends every entry of mem to w and updates the entries'
// commit-log positions (Algorithm 1, populateLog + CLUpdateOffset). The
// position writes go through the memtable lock: compactions may hold a
// reference to mem and copy its entries concurrently.
func (db *DB) populateLog(w *wal.Writer, mem *memtable.Memtable) error {
	for _, e := range mem.All() {
		off, n, err := w.Append(e.Base())
		if err != nil {
			return err
		}
		db.met.BytesLogged.Add(int64(n))
		db.opts.Ledger.Add(obs.SrcWAL, int64(n))
		mem.SetLogPos(e, w.ID(), off)
	}
	return nil
}

// Put associates value with key.
func (db *DB) Put(key, value []byte) error {
	return db.write(key, value, base.KindSet)
}

// Delete removes key (writing a tombstone).
func (db *DB) Delete(key []byte) error {
	return db.write(key, nil, base.KindDelete)
}

func (db *DB) write(key, value []byte, kind base.Kind) error {
	if len(key) == 0 {
		return errors.New("lsm: empty key")
	}
	k := append([]byte(nil), key...)
	var v []byte
	if value != nil {
		v = append([]byte(nil), value...)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.bgErr != nil {
		return db.bgErr
	}
	if err := db.stallLocked(); err != nil {
		return err
	}
	db.seq++
	e := base.Entry{Key: k, Value: v, Seq: db.seq, Kind: kind}
	off, n, err := db.log.Append(e)
	if err != nil {
		return err
	}
	db.met.BytesLogged.Add(int64(n))
	db.opts.Ledger.Add(obs.SrcWAL, int64(n))
	db.preserveLocked(k)
	db.mem.Set(k, v, e.Seq, kind, db.log.ID(), off)
	db.met.UserWrites.Add(1)
	db.met.UserBytes.Add(e.Size())
	db.opts.Ledger.Add(obs.SrcUser, e.Size())
	return db.maybeRotateLocked()
}

// preserveLocked copies the live memtable's current version of key into
// the snapshot overlay before an in-place overwrite destroys it, when an
// active snapshot could still read it (its pinned sequence is at or
// above the version's). Must run before the corresponding mem.Set so a
// concurrent snapshot read that observes the new version always finds
// the preserved one. Caller holds db.mu.
func (db *DB) preserveLocked(key []byte) {
	if db.maxPinned == 0 {
		return
	}
	if old, ok := db.mem.Get(key); ok && old.Seq <= db.maxPinned {
		db.overlay.preserve(old.Base())
	}
}

// WaitWritable blocks until the engine would accept a write without
// stalling (or it closes / hits a background error). The sharded
// engine calls it before entering its cross-shard apply barrier, so a
// stalled shard absorbs its backpressure outside the barrier instead
// of holding it — and thereby every other shard's batches — for the
// length of a compaction.
func (db *DB) WaitWritable() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.bgErr != nil {
		return db.bgErr
	}
	return db.stallLocked()
}

// stallLocked applies write backpressure: writers wait while the flush
// queue is full or L0 has accumulated L0StallFiles tables (RocksDB's
// stop-writes trigger) — the mechanism through which background-I/O debt
// reaches user-facing throughput (§3). Caller holds db.mu.
func (db *DB) stallLocked() error {
	l0Stall := func() bool {
		// Size-tiered keeps its whole tree in L0 by design; only the
		// immutable-queue backpressure applies there.
		return !db.opts.SizeTieredCompaction &&
			!db.opts.DisableBackgroundIO && !db.opts.DisableAutoCompaction &&
			int(db.l0Count.Load()) >= db.opts.L0StallFiles
	}
	var stallStart time.Time
	var reason string
	for !db.closed && (len(db.imm) > db.opts.MaxImmutableMemtables || l0Stall()) {
		if stallStart.IsZero() {
			stallStart = time.Now()
			if l0Stall() {
				reason = "l0-stop-writes"
			} else {
				reason = "flush-queue-full"
			}
		}
		db.cond.Wait()
	}
	if !stallStart.IsZero() {
		d := time.Since(stallStart)
		db.met.WriteStalls.Add(1)
		db.met.WriteStallNanos.Add(d.Nanoseconds())
		db.opts.Events.Add(obs.Event{
			Kind:   obs.EventStall,
			Shard:  db.opts.EventShard,
			Level:  -1,
			Dur:    d,
			Detail: reason,
		})
	}
	if db.closed {
		return ErrClosed
	}
	return nil
}

// maybeRotateLocked seals the memtable when it or the commit log is full
// (paper §2, Flushing). Caller holds db.mu.
func (db *DB) maybeRotateLocked() error {
	memFull := db.mem.ApproxSize() >= db.opts.MemtableBytes
	logFull := db.log.Size() >= db.opts.CommitLogBytes
	if !memFull && !logFull {
		return nil
	}
	// TRIAD-MEM small-memtable skip (Algorithm 1): a log-full flush with
	// a small memtable rewrites a compact log instead of flushing, so
	// very skewed workloads do not litter L0 with tiny files.
	if db.opts.TriadMem && logFull && db.mem.ApproxSize() < db.opts.FlushThresholdBytes {
		newLog, err := wal.NewWriter(db.fs, db.allocFileID(), db.opts.SyncWAL)
		if err != nil {
			return err
		}
		oldLog := db.log
		if err := db.populateLog(newLog, db.mem); err != nil {
			newLog.Close()
			return err
		}
		db.log = newLog
		db.met.FlushSkips.Add(1)
		if err := oldLog.Close(); err != nil {
			return err
		}
		return db.fs.Remove(wal.FileName(oldLog.ID()))
	}
	return db.sealLocked()
}

// sealLocked moves the live (memtable, log) pair onto the flush queue and
// installs fresh ones. Caller holds db.mu.
func (db *DB) sealLocked() error {
	newLog, err := wal.NewWriter(db.fs, db.allocFileID(), db.opts.SyncWAL)
	if err != nil {
		return err
	}
	db.imm = append(db.imm, &immutable{mem: db.mem, log: db.log})
	db.mem = memtable.New(db.nextSeed())
	db.log = newLog
	db.cond.Broadcast()
	db.scheduleFlushLocked()
	return nil
}

// Get returns the value stored under key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) {
	return db.GetTraced(key, nil)
}

// GetTraced is Get with an optional sampled trace attached: any
// cache-missing table read the lookup performs is recorded as an
// sstable_read span. tr is nil on the untraced path.
func (db *DB) GetTraced(key []byte, tr *obs.Trace) ([]byte, error) {
	db.met.UserReads.Add(1)
	// Snapshot the memtable stack.
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	mem := db.mem
	imms := append([]*immutable(nil), db.imm...)
	db.mu.Unlock()

	if e, ok := mem.Get(key); ok {
		db.met.ReadsFromMem.Add(1)
		return entryValue(e.Base())
	}
	for i := len(imms) - 1; i >= 0; i-- {
		if e, ok := imms[i].mem.Get(key); ok {
			db.met.ReadsFromMem.Add(1)
			return entryValue(e.Base())
		}
	}

	return db.getFromVersion(nil, key, tr)
}

func entryValue(e base.Entry) ([]byte, error) {
	if e.Kind == base.KindDelete {
		return nil, ErrNotFound
	}
	return e.Value, nil
}

// LastSeq reports the highest committed sequence number. When this DB
// serves as one shard of a sharded store it is the shard's view of the
// store-wide commit clock; the store resumes its clock from the maximum
// across shards on reopen.
func (db *DB) LastSeq() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.seq
}

// Metrics returns a snapshot of the engine's counters.
func (db *DB) Metrics() metrics.Snapshot { return db.met.Snapshot() }

// RawMetrics exposes the live counters (the harness adds elapsed time).
func (db *DB) RawMetrics() *metrics.Metrics { return &db.met }

// Flush seals the current memtable (if non-empty) and blocks until the
// whole flush queue has drained.
func (db *DB) Flush() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if db.mem.Len() > 0 {
		if err := db.sealLocked(); err != nil {
			db.mu.Unlock()
			return err
		}
	}
	for (len(db.imm) > 0 || db.flushing > 0) && db.bgErr == nil && !db.closed {
		db.cond.Wait()
	}
	err := db.bgErr
	db.mu.Unlock()
	return err
}

// SetDisableBackgroundIO toggles Figure 2's no-background-I/O mode at
// runtime (the experiment pre-populates the tree first, then disables).
func (db *DB) SetDisableBackgroundIO(v bool) {
	db.mu.Lock()
	db.opts.DisableBackgroundIO = v
	db.mu.Unlock()
}

// CompactionDebt estimates the bytes of compaction work the tree owes
// before it is back in shape: all of L0 once it has reached the
// compaction trigger, plus each deeper level's excess over its size
// target. It is the backlog the background pool is burning down —
// surfaced per shard as triad_compaction_backlog_bytes. Size-tiered
// trees have no per-level targets and report 0.
func (db *DB) CompactionDebt() int64 {
	if db.opts.SizeTieredCompaction {
		return 0
	}
	db.versionMu.RLock()
	defer db.versionMu.RUnlock()
	var debt int64
	if len(db.version.Levels[0]) >= db.opts.L0CompactionTrigger {
		debt += db.version.LevelSize(0)
	}
	target := db.opts.BaseLevelBytes
	for l := 1; l < manifest.NumLevels-1; l++ { // bottommost has nowhere to go
		if sz := db.version.LevelSize(l); sz > target {
			debt += sz - target
		}
		target *= db.opts.LevelMultiplier
	}
	return debt
}

// NumLevelFiles reports the file count per level (observability/tests).
func (db *DB) NumLevelFiles() []int {
	db.versionMu.RLock()
	defer db.versionMu.RUnlock()
	out := make([]int, manifest.NumLevels)
	for l, files := range db.version.Levels {
		out[l] = len(files)
	}
	return out
}

// LevelSizes reports bytes per level.
func (db *DB) LevelSizes() []int64 {
	db.versionMu.RLock()
	defer db.versionMu.RUnlock()
	out := make([]int64, manifest.NumLevels)
	for l := range db.version.Levels {
		out[l] = db.version.LevelSize(l)
	}
	return out
}

// Close drains background work and releases all resources.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.cond.Broadcast()
	db.mu.Unlock()
	if db.sched != nil {
		// Cancel queued tasks and wait out running ones, then drain any
		// immutables a purged flush task left behind — exactly what the
		// classic flush worker does on its way out.
		db.sched.Close()
		db.drainImmutablesOnClose()
	}
	db.bgWG.Wait()

	db.mu.Lock()
	err := db.bgErr
	if e := db.log.Close(); err == nil {
		err = e
	}
	db.mu.Unlock()

	// Live snapshots cannot be read once the tables close; unregister
	// them so their eventual Close/finalizer is a no-op, and reclaim the
	// files only they were pinning.
	db.mu.Lock()
	for s := range db.snaps {
		delete(db.snaps, s)
	}
	db.maxPinned = 0
	db.mu.Unlock()
	db.overlay.gc(0)

	db.versionMu.Lock()
	for _, t := range db.tables {
		if e := t.Close(); err == nil {
			err = e
		}
	}
	db.tables = nil
	zombies := db.zombies
	db.zombies = map[uint64]*manifest.FileMeta{}
	db.versionMu.Unlock()
	for _, f := range zombies {
		if e := db.removeTableFiles(f); err == nil {
			err = e
		}
	}

	// Give this engine's resident blocks back to the (possibly shared)
	// cache so a long-lived store-wide cache does not accumulate blocks
	// of closed shards.
	db.cache.Release()

	if e := db.manifest.Close(); err == nil {
		err = e
	}
	return err
}
