package lsm

import (
	"fmt"
	"testing"

	"repro/internal/vfs"
)

func TestCheckConsistencyCleanTree(t *testing.T) {
	for _, mode := range []string{"baseline", "triad"} {
		t.Run(mode, func(t *testing.T) {
			fs := vfs.NewMemFS()
			o := smallOptions(fs)
			if mode == "triad" {
				o = triadSmall(fs)
			}
			db := mustOpen(t, o)
			defer db.Close()
			for i := 0; i < 3000; i++ {
				if err := db.Put([]byte(fmt.Sprintf("key-%05d", i%800)), make([]byte, 100)); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := db.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
			if err := db.CompactAll(); err != nil {
				t.Fatal(err)
			}
			if err := db.CheckConsistency(); err != nil {
				t.Fatalf("after compaction: %v", err)
			}
		})
	}
}

func TestCheckConsistencyAfterRecovery(t *testing.T) {
	fs := vfs.NewMemFS()
	o := triadSmall(fs)
	db := mustOpen(t, o)
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%05d", i%800)), make([]byte, 100))
	}
	db.Close()
	db2 := mustOpen(t, o)
	defer db2.Close()
	if err := db2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckConsistencyDetectsMissingPinnedLog(t *testing.T) {
	fs := vfs.NewMemFS()
	o := triadSmall(fs)
	o.DisableAutoCompaction = true // keep CL-SSTables in L0
	db := mustOpen(t, o)
	defer db.Close()
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%05d", i)), make([]byte, 100))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Sabotage: remove one pinned log out from under a CL-SSTable.
	names, _ := fs.List("")
	removed := false
	db.versionMu.RLock()
	var pinned map[uint64]bool = map[uint64]bool{}
	for _, f := range db.version.Levels[0] {
		if f.LogID != 0 {
			pinned[f.LogID] = true
		}
	}
	db.versionMu.RUnlock()
	for _, n := range names {
		var id uint64
		if _, err := fmt.Sscanf(n, "%d.log", &id); err == nil && pinned[id] {
			fs.Remove(n)
			removed = true
			break
		}
	}
	if !removed {
		t.Skip("no pinned log materialized")
	}
	if err := db.CheckConsistency(); err == nil {
		t.Fatal("scrub missed the missing pinned log")
	}
}
