package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/vfs"
)

func TestFlushEmptyDB(t *testing.T) {
	fs := vfs.NewMemFS()
	db := mustOpen(t, smallOptions(fs))
	defer db.Close()
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := db.Metrics().Flushes; got != 0 {
		t.Fatalf("empty flush counted: %d", got)
	}
}

func TestLargeValues(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	db := mustOpen(t, o)
	defer db.Close()
	// Values bigger than the memtable budget must still round-trip.
	big := bytes.Repeat([]byte{0xAB}, int(o.MemtableBytes)+1000)
	if err := db.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("big"))
	if err != nil || !bytes.Equal(v, big) {
		t.Fatalf("big value corrupted: len=%d err=%v", len(v), err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	v, err = db.Get([]byte("big"))
	if err != nil || !bytes.Equal(v, big) {
		t.Fatalf("big value corrupted after flush: len=%d err=%v", len(v), err)
	}
}

func TestEmptyValue(t *testing.T) {
	fs := vfs.NewMemFS()
	db := mustOpen(t, smallOptions(fs))
	defer db.Close()
	if err := db.Put([]byte("k"), []byte{}); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("empty value = %q", v)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k")); err != nil {
		t.Fatalf("empty value lost on flush: %v", err)
	}
}

func TestDeleteAbsentKey(t *testing.T) {
	fs := vfs.NewMemFS()
	db := mustOpen(t, smallOptions(fs))
	defer db.Close()
	if err := db.Delete([]byte("ghost")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("ghost")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after deleting absent key = %v", err)
	}
	// Tombstone survives a flush without resurrecting anything.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("ghost")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstone lost: %v", err)
	}
}

// TestWriteBackpressure: writers stall rather than grow the flush queue
// without bound, and no write is lost.
func TestWriteBackpressure(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	o.MemtableBytes = 4 << 10 // rotate constantly
	o.MaxImmutableMemtables = 1
	db := mustOpen(t, o)
	defer db.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("w%d-%04d", w, i)
				if err := db.Put([]byte(key), bytes.Repeat([]byte{1}, 100)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	db.mu.Lock()
	queued := len(db.imm)
	db.mu.Unlock()
	if queued > o.MaxImmutableMemtables+1 {
		t.Fatalf("flush queue grew to %d", queued)
	}
	for w := 0; w < 4; w++ {
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("w%d-%04d", w, i)
			if _, err := db.Get([]byte(key)); err != nil {
				t.Fatalf("lost %s: %v", key, err)
			}
		}
	}
}

// TestL0StallBoundsFileCount: under sustained write pressure the L0 file
// count stays near the stop-writes trigger instead of growing without
// bound (the flush worker alone could outrun compaction forever).
func TestL0StallBoundsFileCount(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	o.L0StallFiles = 6
	db := mustOpen(t, o)
	defer db.Close()
	maxL0 := 0
	for i := 0; i < 10000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%06d", i)), bytes.Repeat([]byte{1}, 150)); err != nil {
			t.Fatal(err)
		}
		if i%100 == 0 {
			if n := db.NumLevelFiles()[0]; n > maxL0 {
				maxL0 = n
			}
		}
	}
	// A small overshoot is possible (flushes in flight while stalled).
	if maxL0 > o.L0StallFiles+o.MaxImmutableMemtables+1 {
		t.Fatalf("L0 grew to %d files despite stall trigger %d", maxL0, o.L0StallFiles)
	}
	if maxL0 == 0 {
		t.Fatal("workload never built L0 files; test ineffective")
	}
}

// TestIteratorDuringCompaction: a snapshot taken mid-stream stays
// consistent while flushes and compactions proceed underneath.
func TestIteratorDuringCompaction(t *testing.T) {
	fs := vfs.NewMemFS()
	db := mustOpen(t, triadSmall(fs))
	defer db.Close()
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte("v1"))
	}
	it, err := db.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	// Mutate heavily after the snapshot.
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte("v2"))
	}
	db.Flush()
	n := 0
	for it.Next() {
		if string(it.Value()) != "v1" {
			t.Fatalf("snapshot leaked a later write: %q", it.Value())
		}
		n++
	}
	if n != 1000 {
		t.Fatalf("snapshot has %d entries, want 1000", n)
	}
}

// TestDoubleRecovery: open/close/open/close/open preserves data and
// allocator monotonicity.
func TestDoubleRecovery(t *testing.T) {
	fs := vfs.NewMemFS()
	for round := 0; round < 3; round++ {
		db := mustOpen(t, triadSmall(fs))
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("r%d-%04d", round, i)
			if err := db.Put([]byte(key), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		// Verify everything from all previous rounds.
		for r := 0; r <= round; r++ {
			for i := 0; i < 500; i += 97 {
				key := fmt.Sprintf("r%d-%04d", r, i)
				if _, err := db.Get([]byte(key)); err != nil {
					t.Fatalf("round %d lost %s: %v", round, key, err)
				}
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryIgnoresTornManifestTail is covered at the manifest level;
// here we check the engine survives a truncated current log.
func TestRecoveryTornLogTail(t *testing.T) {
	fs := vfs.NewMemFS()
	db := mustOpen(t, smallOptions(fs))
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	// Simulate a crash: abandon the handle, then truncate the newest log
	// by rewriting it minus its last 5 bytes.
	names, _ := fs.List("")
	var newest string
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".log" {
			newest = n
		}
	}
	f, _ := fs.Open(newest)
	size, _ := f.Size()
	buf := make([]byte, size-5)
	f.ReadAt(buf, 0)
	f.Close()
	w, _ := fs.Create(newest)
	w.Write(buf)
	w.Close()

	db2 := mustOpen(t, smallOptions(fs))
	defer db2.Close()
	// All but (at most) the final record must be present.
	missing := 0
	for i := 0; i < 100; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("k%03d", i))); err != nil {
			missing++
		}
	}
	if missing > 1 {
		t.Fatalf("torn tail lost %d records, want ≤1", missing)
	}
	db.Close()
}

// TestGetHonoursNewestVersionAcrossLevels: version resolution order is
// memtable > immutables > L0 (newest first) > deeper levels.
func TestGetHonoursNewestVersionAcrossLevels(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	o.DisableAutoCompaction = true
	db := mustOpen(t, o)
	defer db.Close()
	// Version 1 → flushed to L0, compacted to L1.
	db.Put([]byte("k"), []byte("v1"))
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("fill-a-%04d", i)), make([]byte, 64))
	}
	db.Flush()
	db.CompactAll()
	// Version 2 → flushed to L0.
	db.Put([]byte("k"), []byte("v2"))
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("fill-b-%04d", i)), make([]byte, 64))
	}
	db.Flush()
	// Version 3 → memtable only.
	db.Put([]byte("k"), []byte("v3"))
	v, err := db.Get([]byte("k"))
	if err != nil || string(v) != "v3" {
		t.Fatalf("Get = %q, %v; want v3 (memtable wins)", v, err)
	}
	// Drop the memtable version from visibility by flushing; L0 must win
	// over L1 with v3 now in L0 too. Re-put v2-era key ordering check:
	db.Flush()
	v, err = db.Get([]byte("k"))
	if err != nil || string(v) != "v3" {
		t.Fatalf("Get after flush = %q, %v; want v3 (newest L0 wins)", v, err)
	}
}

// TestLevelFillAndInvariants: sustained load pushes data into deeper
// levels while the version invariants hold.
func TestLevelFillAndInvariants(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	o.BaseLevelBytes = 32 << 10 // tiny L1 so L2 fills
	db := mustOpen(t, o)
	defer db.Close()
	for i := 0; i < 6000; i++ {
		key := fmt.Sprintf("key-%06d", i%2000)
		if err := db.Put([]byte(key), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	db.Flush()
	db.CompactAll()
	db.versionMu.RLock()
	err := db.version.CheckInvariants()
	db.versionMu.RUnlock()
	if err != nil {
		t.Fatal(err)
	}
	levels := db.NumLevelFiles()
	deep := 0
	for _, n := range levels[1:] {
		deep += n
	}
	if deep == 0 {
		t.Fatalf("no files below L0 after sustained load: %v", levels)
	}
	// Every key resolves to its latest value length.
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%06d", i)
		v, err := db.Get([]byte(key))
		if err != nil || len(v) != 100 {
			t.Fatalf("Get(%s) = %d bytes, %v", key, len(v), err)
		}
	}
}
