package lsm

import (
	"fmt"
	"time"

	"repro/internal/bgsched"
	"repro/internal/manifest"
	"repro/internal/memtable"
	"repro/internal/obs"
	"repro/internal/sstable"
	"repro/internal/wal"
)

// The engine's background plane has two modes. The classic mode runs
// two private goroutines, mirroring RocksDB's separate flush and
// compaction thread pools (§6 credits RocksDB with introducing
// multi-threaded background work): flushes never queue behind a long
// compaction, so write stalls reflect flush speed alone. With
// Options.Scheduler set, the same work runs as tasks on a shared
// bounded pool instead — flushes at the highest priority class, then
// compaction rounds — so a store's many engines draw on one centrally
// arbitrated worker budget and a single compaction can fan out into
// parallel subcompaction slices. In both modes exactly one compaction
// runs per engine at a time (compactionMu), which keeps the paper's
// "% time spent in compaction" directly comparable to wall time.

// flushWorker drains the immutable-memtable queue.
func (db *DB) flushWorker() {
	defer db.bgWG.Done()
	for {
		db.mu.Lock()
		for !db.closed && len(db.imm) == 0 {
			db.cond.Wait()
		}
		if len(db.imm) == 0 && db.closed {
			db.mu.Unlock()
			return
		}
		// The immutable stays on the queue (visible to readers) until
		// its table is installed; it is only dequeued after the flush
		// completes.
		imm := db.imm[0]
		db.flushing++
		disable := db.opts.DisableBackgroundIO
		db.mu.Unlock()

		var err error
		if disable {
			err = db.discardImmutable(imm)
		} else {
			err = db.flushImmutable(imm)
		}

		db.mu.Lock()
		db.imm = db.imm[1:]
		db.flushing--
		if err != nil && db.bgErr == nil {
			db.bgErr = err
		}
		if !db.opts.DisableAutoCompaction && !disable {
			db.compactRequested = true
		}
		db.cond.Broadcast()
		db.mu.Unlock()
	}
}

// compactionWorker runs compaction rounds whenever a flush requests one.
func (db *DB) compactionWorker() {
	defer db.bgWG.Done()
	for {
		db.mu.Lock()
		for !db.closed && !db.compactRequested {
			db.cond.Wait()
		}
		if db.closed {
			db.mu.Unlock()
			return
		}
		db.compactRequested = false
		db.mu.Unlock()
		if err := db.compactLoop(); err != nil {
			db.mu.Lock()
			if db.bgErr == nil {
				db.bgErr = err
			}
			db.cond.Broadcast()
			db.mu.Unlock()
		}
	}
}

// scheduleFlushLocked queues a flush task on the shared pool unless one
// is already draining the queue (or the engine runs the classic
// workers). Caller holds db.mu.
func (db *DB) scheduleFlushLocked() {
	if db.sched == nil || db.flushActive || len(db.imm) == 0 {
		return
	}
	db.flushActive = true
	if !db.sched.Submit(bgsched.ClassFlush, db.opts.EventShard, db.flushTask) {
		// Owner closing: Close drains the queue inline.
		db.flushActive = false
	}
}

// flushTask is the pool-scheduled counterpart of flushWorker: one task
// drains the whole immutable queue, so a burst of seals costs one pool
// slot, and — like the classic worker — it keeps draining after Close
// flips db.closed, since a sealed memtable's flush must not be lost.
func (db *DB) flushTask() {
	db.mu.Lock()
	for {
		if len(db.imm) == 0 || db.bgErr != nil {
			db.flushActive = false
			db.cond.Broadcast()
			db.mu.Unlock()
			return
		}
		imm := db.imm[0]
		db.flushing++
		disable := db.opts.DisableBackgroundIO
		db.mu.Unlock()

		var err error
		if disable {
			err = db.discardImmutable(imm)
		} else {
			err = db.flushImmutable(imm)
		}

		db.mu.Lock()
		db.imm = db.imm[1:]
		db.flushing--
		if err != nil && db.bgErr == nil {
			db.bgErr = err
		}
		if err == nil && !db.opts.DisableAutoCompaction && !disable {
			db.requestCompactLocked()
		}
		db.cond.Broadcast()
	}
}

// requestCompactLocked asks for a background compaction round: in
// classic mode it arms the compaction worker's flag; in pool mode it
// queues one compaction task, classed by urgency — L0 at its trigger
// outranks deeper-level shaping. Caller holds db.mu.
func (db *DB) requestCompactLocked() {
	if db.sched == nil {
		db.compactRequested = true
		return
	}
	if db.compactQueued || db.closed || db.opts.DisableAutoCompaction || db.opts.DisableBackgroundIO {
		return
	}
	class := bgsched.ClassDeep
	if int(db.l0Count.Load()) >= db.opts.L0CompactionTrigger {
		class = bgsched.ClassL0
	}
	db.compactQueued = true
	if !db.sched.Submit(class, db.opts.EventShard, db.compactTask) {
		db.compactQueued = false
	}
}

// compactTask runs ONE compaction round, then — if the round did work —
// re-queues itself, yielding its worker between rounds so a shard with
// a deep backlog cannot monopolize the pool the way an in-task loop
// would.
func (db *DB) compactTask() {
	db.mu.Lock()
	db.compactQueued = false
	if db.closed || db.bgErr != nil {
		db.mu.Unlock()
		return
	}
	db.mu.Unlock()
	ran, err := db.compactOnceLocked(false)
	db.mu.Lock()
	defer db.mu.Unlock()
	if err != nil {
		if db.bgErr == nil {
			db.bgErr = err
		}
		db.cond.Broadcast()
		return
	}
	if ran {
		db.requestCompactLocked()
	}
}

// drainImmutablesOnClose flushes (or discards) whatever the purged
// flush task left queued, preserving the classic worker's close-time
// guarantee that no sealed memtable is dropped.
func (db *DB) drainImmutablesOnClose() {
	db.mu.Lock()
	for len(db.imm) > 0 && db.bgErr == nil {
		imm := db.imm[0]
		disable := db.opts.DisableBackgroundIO
		db.mu.Unlock()
		var err error
		if disable {
			err = db.discardImmutable(imm)
		} else {
			err = db.flushImmutable(imm)
		}
		db.mu.Lock()
		db.imm = db.imm[1:]
		if err != nil && db.bgErr == nil {
			db.bgErr = err
		}
	}
	db.mu.Unlock()
}

// discardImmutable implements Figure 2's "No BG I/O" variant: the sealed
// memtable is dropped and its log removed; nothing reaches L0.
func (db *DB) discardImmutable(imm *immutable) error {
	if err := imm.log.Close(); err != nil {
		return err
	}
	return db.fs.Remove(wal.FileName(imm.log.ID()))
}

// flushImmutable writes one sealed memtable to L0 (paper §2 Flushing,
// §4.1 Algorithm 1 and §4.3 Figure 6 depending on the enabled techniques).
func (db *DB) flushImmutable(imm *immutable) error {
	start := time.Now()
	defer func() { db.met.FlushNanos.Add(time.Since(start).Nanoseconds()) }()

	inBytes := imm.mem.ApproxSize()
	entries := imm.mem.All()
	if len(entries) == 0 {
		return db.dropLog(imm.log)
	}

	toFlush := entries
	if db.opts.TriadMem {
		sep := imm.mem.SeparateKeys(db.opts.HotPolicy, db.currentHotFraction())
		db.autoTuneHot(sep, len(entries))
		toFlush = sep.Cold
		db.met.HotKeysKeptInMem.Add(int64(len(sep.Hot)))
		if len(sep.Hot) > 0 {
			// Keep hot entries in the new memtable and write them back
			// to the current commit log so no information is lost
			// (Figure 3). A newer user write — which may live in the
			// live memtable or in a memtable sealed after this one —
			// wins by sequence number.
			db.mu.Lock()
			log, mem := db.log, db.mem
			var laterImms []*immutable
			for i, q := range db.imm {
				if q == imm {
					laterImms = append([]*immutable(nil), db.imm[i+1:]...)
					break
				}
			}
			for _, h := range sep.Hot {
				cur, curOK := mem.Get(h.Key)
				if curOK && cur.Seq >= h.Seq {
					continue // superseded while the flush was queued
				}
				superseded := false
				for _, q := range laterImms {
					if cur, ok := q.mem.Get(h.Key); ok && cur.Seq >= h.Seq {
						superseded = true
						break
					}
				}
				if superseded {
					continue
				}
				off, n, err := log.Append(h.Base())
				if err != nil {
					db.mu.Unlock()
					return err
				}
				db.met.BytesLogged.Add(int64(n))
				db.opts.Ledger.Add(obs.SrcWAL, int64(n))
				// The write-back overwrites the live memtable's version
				// in place; keep it for any snapshot that pinned it.
				if curOK && db.maxPinned != 0 && cur.Seq <= db.maxPinned {
					db.overlay.preserve(cur.Base())
				}
				mem.Set(h.Key, h.Value, h.Seq, h.Kind, log.ID(), off)
			}
			db.mu.Unlock()
		}
	}
	db.met.ColdEntriesFlushed.Add(int64(len(toFlush)))
	hot := len(entries) - len(toFlush)
	if len(toFlush) == 0 {
		db.met.Flushes.Add(1)
		db.opts.Events.Add(obs.Event{
			Kind: obs.EventFlush, Shard: db.opts.EventShard, Level: -1,
			Dur: time.Since(start), In: inBytes,
			Detail: fmt.Sprintf("all %d entries hot, nothing reached L0", hot),
		})
		return db.dropLog(imm.log)
	}

	var (
		meta    manifest.FileMeta
		written int64
		err     error
	)
	if db.opts.TriadLog {
		meta, written, err = db.writeCLSSTable(imm, toFlush)
	} else {
		meta, written, err = db.writeSSTable(toFlush)
	}
	if err != nil {
		return err
	}
	db.met.BytesFlushed.Add(written)
	db.opts.Ledger.Add(obs.SrcFlush, written)
	db.met.Flushes.Add(1)

	if err := db.installFlush(meta); err != nil {
		return err
	}
	detail := fmt.Sprintf("%d cold entries", len(toFlush))
	if db.opts.TriadMem {
		detail = fmt.Sprintf("%d cold / %d hot entries", len(toFlush), hot)
	}
	if db.opts.TriadLog {
		detail += ", CL-SSTable index only"
	}
	db.opts.Events.Add(obs.Event{
		Kind: obs.EventFlush, Shard: db.opts.EventShard, Level: 0,
		Dur: time.Since(start), In: inBytes, Out: written,
		Files: 1, Detail: detail,
	})
	if !db.opts.TriadLog {
		// The memtable contents are durable in the SSTable; the log can
		// go. Under TRIAD-LOG the log *is* the table's value store and
		// stays pinned until compaction consumes it.
		return db.dropLog(imm.log)
	}
	return imm.log.Close()
}

func (db *DB) dropLog(log *wal.Writer) error {
	if err := log.Close(); err != nil {
		return err
	}
	return db.fs.Remove(wal.FileName(log.ID()))
}

// writeSSTable emits a classic L0 table from sorted memtable entries.
func (db *DB) writeSSTable(entries []*memtable.Entry) (manifest.FileMeta, int64, error) {
	db.mu.Lock()
	id := db.allocFileID()
	db.mu.Unlock()
	w, err := sstable.NewWriter(db.fs, id, db.opts.BlockBytes)
	if err != nil {
		return manifest.FileMeta{}, 0, err
	}
	for _, e := range entries {
		if err := w.Add(e.Base()); err != nil {
			w.Abort(db.fs)
			return manifest.FileMeta{}, 0, err
		}
	}
	written, err := w.Finish()
	if err != nil {
		w.Abort(db.fs)
		return manifest.FileMeta{}, 0, err
	}
	return manifest.FileMeta{
		ID:         id,
		Kind:       manifest.KindSST,
		Level:      0,
		Size:       written,
		NumEntries: uint64(len(entries)),
		Smallest:   append([]byte(nil), entries[0].Key...),
		Largest:    append([]byte(nil), entries[len(entries)-1].Key...),
	}, written, nil
}

// writeCLSSTable emits only the sorted offset index over the sealed log
// (TRIAD-LOG): "instead of copying Cm to disk, we convert the commit log
// into a CL-SSTable". With TRIAD-MEM, only the cold part of the index is
// flushed; the hot keys' offsets are ignored.
func (db *DB) writeCLSSTable(imm *immutable, entries []*memtable.Entry) (manifest.FileMeta, int64, error) {
	db.mu.Lock()
	id := db.allocFileID()
	db.mu.Unlock()
	w, err := sstable.NewCLWriter(db.fs, id, imm.log.ID(), db.opts.BlockBytes)
	if err != nil {
		return manifest.FileMeta{}, 0, err
	}
	for _, e := range entries {
		if e.LogID != imm.log.ID() {
			w.Abort(db.fs)
			return manifest.FileMeta{}, 0, fmt.Errorf(
				"lsm: entry %q points at log %d, expected %d", e.Key, e.LogID, imm.log.ID())
		}
		if err := w.Add(e.Key, e.Seq, e.Kind, e.LogOffset); err != nil {
			w.Abort(db.fs)
			return manifest.FileMeta{}, 0, err
		}
	}
	written, err := w.Finish()
	if err != nil {
		w.Abort(db.fs)
		return manifest.FileMeta{}, 0, err
	}
	return manifest.FileMeta{
		ID:         id,
		Kind:       manifest.KindCLSST,
		Level:      0,
		Size:       written,
		NumEntries: uint64(len(entries)),
		Smallest:   append([]byte(nil), entries[0].Key...),
		Largest:    append([]byte(nil), entries[len(entries)-1].Key...),
		LogID:      imm.log.ID(),
	}, written, nil
}

// installFlush journals and publishes a new L0 table.
func (db *DB) installFlush(meta manifest.FileMeta) error {
	t, err := db.openTable(&meta)
	if err != nil {
		return err
	}
	db.mu.Lock()
	edit := manifest.Edit{Added: []manifest.FileMeta{meta}, NextFileID: db.nextID, LastSeq: db.seq}
	db.mu.Unlock()
	if err := db.manifest.Append(edit); err != nil {
		t.Close()
		return err
	}
	db.versionMu.Lock()
	nv, err := db.version.Apply(edit)
	if err != nil {
		db.versionMu.Unlock()
		t.Close()
		return err
	}
	db.version = nv
	db.tables[meta.ID] = t
	db.l0Count.Store(int32(len(nv.Levels[0])))
	db.versionMu.Unlock()
	return nil
}
