package lsm

import (
	"bytes"

	"repro/internal/base"
	"repro/internal/compaction"
	"repro/internal/manifest"
	"repro/internal/memtable"
	"repro/internal/sstable"
)

// Iterator is a point-in-time range scan over the live keys of the store,
// ascending. It is built by merging the memtable stack with every on-disk
// table, keeping the newest version of each key and skipping tombstones —
// the merge the non-overlapping-levels property makes cheap (paper §2).
//
// The snapshot is materialized at creation (keys and values are copied),
// so the iterator never blocks flushes or compactions and remains valid
// after Close of the DB. This trades memory for isolation; it suits the
// metadata-scale scans the examples and tests perform.
type Iterator struct {
	entries []base.Entry
	pos     int
}

// NewIterator snapshots the range [start, limit) (nil means unbounded).
func (db *DB) NewIterator(start, limit []byte) (*Iterator, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	mems := []*immutable{{mem: db.mem}}
	for i := len(db.imm) - 1; i >= 0; i-- {
		mems = append(mems, db.imm[i])
	}
	db.mu.Unlock()

	// Memtable contents, newest stack first.
	var its []sstable.Iterator
	for _, m := range mems {
		its = append(its, newMemIter(m.mem.All()))
	}

	db.versionMu.RLock()
	defer db.versionMu.RUnlock()
	v := db.version
	for _, f := range v.Levels[0] {
		it, err := db.tables[f.ID].NewIterator()
		if err != nil {
			closeAll(its)
			return nil, err
		}
		its = append(its, it)
	}
	for l := 1; l < manifest.NumLevels; l++ {
		for _, f := range v.Levels[l] {
			it, err := db.tables[f.ID].NewIterator()
			if err != nil {
				closeAll(its)
				return nil, err
			}
			its = append(its, it)
		}
	}

	merge := compaction.NewMergeIterator(its)
	dedup := compaction.NewDedupIterator(merge, true, nil)
	defer dedup.Close()
	out := &Iterator{}
	for dedup.Next() {
		e := dedup.Entry()
		if start != nil && bytes.Compare(e.Key, start) < 0 {
			continue
		}
		if limit != nil && bytes.Compare(e.Key, limit) >= 0 {
			break
		}
		out.entries = append(out.entries, e.Clone())
	}
	if err := dedup.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Next advances; the iterator starts before the first entry.
func (it *Iterator) Next() bool {
	if it.pos >= len(it.entries) {
		return false
	}
	it.pos++
	return it.pos <= len(it.entries)
}

// Key returns the current key.
func (it *Iterator) Key() []byte { return it.entries[it.pos-1].Key }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.entries[it.pos-1].Value }

// Len reports the number of entries in the snapshot.
func (it *Iterator) Len() int { return len(it.entries) }

// memIter adapts a sorted entry slice to the table iterator interface.
type memIter struct {
	entries []*memEntryAdapter
	pos     int
}

type memEntryAdapter struct {
	e base.Entry
}

func newMemIter(entries []*memtable.Entry) sstable.Iterator {
	out := &memIter{}
	for _, e := range entries {
		out.entries = append(out.entries, &memEntryAdapter{e.Base()})
	}
	return out
}

func (it *memIter) Next() bool {
	if it.pos >= len(it.entries) {
		return false
	}
	it.pos++
	return true
}

func (it *memIter) SeekGE(key []byte) bool {
	lo, hi := 0, len(it.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(it.entries[mid].e.Key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.pos = lo + 1
	return lo < len(it.entries)
}

func (it *memIter) Entry() base.Entry { return it.entries[it.pos-1].e }
func (it *memIter) Err() error        { return nil }
func (it *memIter) Close() error      { return nil }
