package lsm

import (
	"bytes"

	"repro/internal/base"
	"repro/internal/compaction"
	"repro/internal/memtable"
	"repro/internal/sstable"
)

// Iterator is an ascending, point-in-time range scan over the live keys
// of a snapshot. It is a *streaming* k-way merge over the pinned
// memtable stack and the pinned version's tables: entries are produced
// lazily, O(log sources) amortized per step, with nothing materialized
// up front — creation costs one seek per source, not one copy per entry
// in the range. The snapshot's pin keeps every source alive (including
// files a concurrent compaction has since consumed), so flushes and
// compactions proceed untouched underneath a long scan.
//
// Usage: for it.Next() { it.Key(), it.Value() }; check Err, then Close.
// Close releases the pin reference; an iterator opened via DB.NewIterator
// owns a single-use snapshot and releases it too. Key and Value return
// slices that stay valid until Close (they alias the pinned sources).
type Iterator struct {
	snap     *Snapshot
	ownsSnap bool
	dedup    *compaction.DedupIterator
	cur      base.Entry
	err      error
	closed   bool
}

// NewIterator returns a streaming scan of [start, limit) (nil bounds are
// unbounded) over the snapshot's pinned view.
func (s *Snapshot) NewIterator(start, limit []byte) (*Iterator, error) {
	if err := s.addRef(); err != nil {
		return nil, err
	}
	db := s.db
	// Sources newest-first: the merge resolves same-key ties by source
	// rank, so fresher sources must come earlier.
	its := []sstable.Iterator{newSnapMemIter(s.mem, &db.overlay, s.seq)}
	for _, m := range s.imms {
		its = append(its, &memSourceIter{it: m.NewIter()})
	}
	db.versionMu.RLock()
	if db.tables == nil {
		db.versionMu.RUnlock()
		s.unref()
		return nil, ErrClosed
	}
	fail := func(err error) (*Iterator, error) {
		db.versionMu.RUnlock()
		closeAll(its)
		s.unref()
		return nil, err
	}
	for _, f := range s.version.Levels[0] {
		it, err := db.tables[f.ID].NewIterator()
		if err != nil {
			return fail(err)
		}
		its = append(its, it)
	}
	for l := 1; l < len(s.version.Levels); l++ {
		for _, f := range s.version.Levels[l] {
			it, err := db.tables[f.ID].NewIterator()
			if err != nil {
				return fail(err)
			}
			its = append(its, it)
		}
	}
	db.versionMu.RUnlock()

	for i := range its {
		its[i] = &boundedIter{in: its[i], start: start, limit: limit}
	}
	merge := compaction.NewMergeIterator(its)
	return &Iterator{snap: s, dedup: compaction.NewDedupIterator(merge, true, nil)}, nil
}

// NewIterator returns a streaming scan of [start, limit) over a
// single-use snapshot taken now; closing the iterator releases it.
func (db *DB) NewIterator(start, limit []byte) (*Iterator, error) {
	s, err := db.NewSnapshot()
	if err != nil {
		return nil, err
	}
	it, err := s.NewIterator(start, limit)
	if err != nil {
		s.Close()
		return nil, err
	}
	it.ownsSnap = true
	return it, nil
}

// Next advances; the iterator starts before the first entry.
func (it *Iterator) Next() bool {
	if it.closed || it.err != nil {
		return false
	}
	if !it.dedup.Next() {
		it.err = it.dedup.Err()
		return false
	}
	it.cur = it.dedup.Entry()
	return true
}

// Key returns the current key.
func (it *Iterator) Key() []byte { return it.cur.Key }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.cur.Value }

// Err returns the first error the scan encountered (nil on clean
// exhaustion).
func (it *Iterator) Err() error { return it.err }

// Close releases the iterator's sources and its snapshot pin (and the
// whole snapshot, when DB.NewIterator created it). Idempotent. It
// returns Err() so `defer it.Close()` users still surface scan errors
// when they check the return.
func (it *Iterator) Close() error {
	if it.closed {
		return it.err
	}
	it.closed = true
	if err := it.dedup.Close(); err != nil && it.err == nil {
		it.err = err
	}
	if it.ownsSnap {
		it.snap.Close()
	}
	it.snap.unref()
	return it.err
}

// boundedIter restricts a source to [start, limit): the first advance
// seeks to start (making creation O(seek), not O(prefix)), and the scan
// reports exhaustion at the first key >= limit.
type boundedIter struct {
	in      sstable.Iterator
	start   []byte
	limit   []byte
	started bool
	done    bool
}

func (b *boundedIter) Next() bool {
	if b.done {
		return false
	}
	var ok bool
	if !b.started {
		b.started = true
		if b.start != nil {
			ok = b.in.SeekGE(b.start)
		} else {
			ok = b.in.Next()
		}
	} else {
		ok = b.in.Next()
	}
	if !ok {
		b.done = true
		return false
	}
	if b.limit != nil && bytes.Compare(b.in.Entry().Key, b.limit) >= 0 {
		b.done = true
		return false
	}
	return true
}

func (b *boundedIter) SeekGE(key []byte) bool {
	b.started = true
	b.done = false
	if b.start != nil && bytes.Compare(key, b.start) < 0 {
		key = b.start
	}
	if !b.in.SeekGE(key) {
		b.done = true
		return false
	}
	if b.limit != nil && bytes.Compare(b.in.Entry().Key, b.limit) >= 0 {
		b.done = true
		return false
	}
	return true
}

func (b *boundedIter) Entry() base.Entry { return b.in.Entry() }
func (b *boundedIter) Err() error        { return b.in.Err() }
func (b *boundedIter) Close() error      { return b.in.Close() }

// memSourceIter adapts a streaming memtable iterator to the table
// iterator interface (immutable memtables need no sequence filtering:
// they were sealed before the snapshot was taken).
type memSourceIter struct {
	it *memtable.Iter
}

func (m *memSourceIter) Next() bool             { return m.it.Next() }
func (m *memSourceIter) SeekGE(key []byte) bool { return m.it.SeekGE(key) }
func (m *memSourceIter) Entry() base.Entry      { e := m.it.Entry(); return e.Base() }
func (m *memSourceIter) Err() error             { return nil }
func (m *memSourceIter) Close() error           { return nil }

// snapMemIter streams the live-at-capture memtable as of sequence
// maxSeq. The memtable updates entries in place, so a key overwritten
// after the capture shows a too-new sequence; the overlay preserved the
// snapshot's version at overwrite time (the write path does so before
// the in-place update commits), and this iterator substitutes it at
// yield time. Keys with no version at or below maxSeq anywhere in the
// live memtable's history (inserted after capture) are skipped — older
// versions, if any, live in the immutables or tables behind this source.
type snapMemIter struct {
	it     *memtable.Iter
	ov     *overlay
	maxSeq uint64
	cur    base.Entry
}

func newSnapMemIter(m *memtable.Memtable, ov *overlay, maxSeq uint64) sstable.Iterator {
	return &snapMemIter{it: m.NewIter(), ov: ov, maxSeq: maxSeq}
}

func (s *snapMemIter) Next() bool {
	for s.it.Next() {
		if s.admit() {
			return true
		}
	}
	return false
}

func (s *snapMemIter) SeekGE(key []byte) bool {
	if !s.it.SeekGE(key) {
		return false
	}
	if s.admit() {
		return true
	}
	return s.Next()
}

// admit resolves the iterator's current raw entry against the snapshot
// horizon, setting cur when a version <= maxSeq exists.
func (s *snapMemIter) admit() bool {
	e := s.it.Entry()
	if e.Seq <= s.maxSeq {
		s.cur = e.Base()
		return true
	}
	if oe, ok := s.ov.get(e.Key, s.maxSeq); ok {
		s.cur = oe
		return true
	}
	return false
}

func (s *snapMemIter) Entry() base.Entry { return s.cur }
func (s *snapMemIter) Err() error        { return nil }
func (s *snapMemIter) Close() error      { return nil }
