package lsm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/base"
	"repro/internal/manifest"
	"repro/internal/memtable"
	"repro/internal/obs"
)

// ErrSnapshotClosed is returned by reads on a snapshot after Close.
var ErrSnapshotClosed = errors.New("lsm: snapshot closed")

// Snapshot is a pinned, sequence-numbered read view of the store: every
// read resolves to the newest version with Seq <= the pinned sequence,
// exactly what was visible the instant NewSnapshot ran. The pin holds
// three things alive until Close:
//
//   - the pinned sequence number, which filters out newer versions;
//   - the memtable stack (live + immutables) of that instant — in-place
//     updates the live memtable absorbs afterwards are compensated by
//     the version overlay (see overlay);
//   - the manifest version, whose table files are reference-counted so
//     flushes and compactions cannot delete a file the snapshot still
//     reads (a consumed-but-pinned file becomes a "zombie" and is
//     removed when its last snapshot closes).
//
// A Snapshot is safe for concurrent use. Iterators opened from it keep
// the underlying pin alive even if the Snapshot is closed first; the
// resources are released when the last of them closes.
type Snapshot struct {
	db      *DB
	seq     uint64
	mem     *memtable.Memtable
	imms    []*memtable.Memtable // newest-first, sealed before capture
	version *manifest.Version
	// pin is the registration token held by db.snaps. The DB must not
	// reference the Snapshot itself: that would keep it reachable and
	// defeat the leak finalizer.
	pin *snapPin

	mu     sync.Mutex
	refs   int // 1 for the handle + 1 per open iterator
	closed bool
}

// snapPin is a snapshot's registration in the DB (guarded by db.mu).
type snapPin struct{ seq uint64 }

// NewSnapshot pins the store's current state. The snapshot must be
// Closed, or its pinned files and memtables linger until a finalizer
// catches the leak.
func (db *DB) NewSnapshot() (*Snapshot, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.newSnapshotLocked(db.seq)
}

// NewSnapshotAt pins a read view at the externally assigned sequence
// seq: the snapshot observes exactly the writes committed with
// sequences <= seq. This is how the sharded engine captures one shard
// of a store-wide snapshot — seq is the snapshot's epoch ticket from
// the store clock, and the clock's per-shard commit ordering guarantees
// that when the capture runs, every commit below seq has landed here
// and none above it has. A seq below the last committed sequence would
// claim a view this DB can no longer reconstruct and is an error.
func (db *DB) NewSnapshotAt(seq uint64) (*Snapshot, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if seq < db.seq {
		return nil, fmt.Errorf("lsm: snapshot sequence %d is before the last committed %d", seq, db.seq)
	}
	return db.newSnapshotLocked(seq)
}

// newSnapshotLocked captures the pin at seq (>= db.seq). Caller holds
// db.mu.
func (db *DB) newSnapshotLocked(seq uint64) (*Snapshot, error) {
	if db.closed {
		return nil, ErrClosed
	}
	s := &Snapshot{db: db, seq: seq, mem: db.mem, refs: 1, pin: &snapPin{seq: seq}}
	for i := len(db.imm) - 1; i >= 0; i-- {
		s.imms = append(s.imms, db.imm[i].mem)
	}
	// Capture the version and take a reference on every file it names
	// under versionMu so a racing installCompaction either sees the refs
	// (and zombies the files) or completes before the capture.
	db.versionMu.Lock()
	s.version = db.version
	for _, files := range s.version.Levels {
		for _, f := range files {
			db.refs[f.ID]++
		}
	}
	db.versionMu.Unlock()
	db.snaps[s.pin] = struct{}{}
	if s.seq > db.maxPinned {
		db.maxPinned = s.seq
	}
	// A leaked snapshot would pin files and memtables forever; the
	// finalizer is the backstop (and the accounting for the leak tests).
	runtime.SetFinalizer(s, (*Snapshot).finalize)
	return s, nil
}

// finalize runs when the snapshot becomes unreachable. Its iterators
// hold references to the snapshot, so unreachable-snapshot implies
// every unclosed iterator leaked too: any references still outstanding
// belong to garbage, and the whole pin can be force-released. A fully
// closed snapshot (refs already zero) finalizes as a no-op — the
// finalizer is deliberately NOT cleared in Close, so an iterator leaked
// after its snapshot was closed is still reclaimed here.
func (s *Snapshot) finalize() {
	s.mu.Lock()
	leaked := s.refs > 0
	s.refs = 0
	s.closed = true
	s.mu.Unlock()
	if leaked {
		s.db.snapLeaks.Add(1)
		s.db.releaseSnapshot(s)
	}
}

// LeakedSnapshots reports how many snapshots were reclaimed by the
// finalizer instead of an explicit Close.
func (db *DB) LeakedSnapshots() int64 { return db.snapLeaks.Load() }

// Seq reports the pinned sequence number.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Get returns the value stored under key as of the snapshot, or
// ErrNotFound; ErrSnapshotClosed after Close.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSnapshotClosed
	}
	s.refs++ // hold the pin across the read, so Close cannot free tables mid-lookup
	s.mu.Unlock()
	defer s.unref()

	db := s.db
	db.met.UserReads.Add(1)

	// Memory tier: the live-at-capture memtable (with the overlay
	// compensating post-capture in-place overwrites), then the pinned
	// immutables, newest first. Candidates are compared by sequence so
	// the code does not depend on subtle cross-memtable orderings.
	var best base.Entry
	var found bool
	consider := func(e base.Entry) {
		if e.Seq <= s.seq && (!found || e.Seq > best.Seq) {
			best, found = e, true
		}
	}
	if e, ok := s.mem.Get(key); ok {
		if e.Seq <= s.seq {
			consider(e.Base())
		} else if oe, ok := db.overlay.get(key, s.seq); ok {
			consider(oe)
		}
	}
	for _, m := range s.imms {
		if e, ok := m.Get(key); ok {
			consider(e.Base())
			break // older imms hold only older versions
		}
	}
	if found {
		db.met.ReadsFromMem.Add(1)
		return entryValue(best)
	}
	// Disk tier: every file in the pinned version predates the capture,
	// so its entries all satisfy Seq <= s.seq — no filtering needed.
	return db.getFromVersion(s.version, key, nil)
}

// Close releases the snapshot's pin. Iterators opened from the snapshot
// stay valid; the underlying resources are freed when the last one
// closes. Close is idempotent and returns nil on repeat calls.
func (s *Snapshot) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.unref()
	return nil
}

// unref drops one pin reference, releasing the snapshot at zero.
func (s *Snapshot) unref() {
	s.mu.Lock()
	s.refs--
	release := s.refs == 0
	s.mu.Unlock()
	if release {
		s.db.releaseSnapshot(s)
	}
}

// addRef takes an extra pin reference (for a new iterator); it fails
// once the snapshot is closed.
func (s *Snapshot) addRef() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSnapshotClosed
	}
	s.refs++
	return nil
}

// releaseSnapshot unregisters s, garbage-collects the overlay, drops the
// file references and deletes any zombie files whose last pin this was.
func (db *DB) releaseSnapshot(s *Snapshot) {
	db.mu.Lock()
	if _, ok := db.snaps[s.pin]; !ok {
		// Already released, or the DB was closed (Close cleaned up).
		db.mu.Unlock()
		return
	}
	delete(db.snaps, s.pin)
	db.maxPinned = 0
	for other := range db.snaps {
		if other.seq > db.maxPinned {
			db.maxPinned = other.seq
		}
	}
	// The overlay GC must run while db.mu is still held: with the lock
	// released, a newer snapshot could register and a writer preserve a
	// version for it between our maxPinned read and the sweep — which
	// would then drop that version and tear the new snapshot's view.
	db.overlay.gc(db.maxPinned)
	db.mu.Unlock()

	db.versionMu.Lock()
	var free []*manifest.FileMeta
	for _, files := range s.version.Levels {
		for _, f := range files {
			db.refs[f.ID]--
			if db.refs[f.ID] > 0 {
				continue
			}
			delete(db.refs, f.ID)
			if z, ok := db.zombies[f.ID]; ok {
				delete(db.zombies, f.ID)
				if db.tables != nil {
					if t, ok := db.tables[f.ID]; ok {
						t.Close()
						delete(db.tables, f.ID)
					}
					free = append(free, z)
				}
			}
		}
	}
	db.versionMu.Unlock()
	var freed int64
	start := time.Now()
	for _, f := range free {
		db.cache.EvictTable(f.ID)
		db.removeTableFiles(f)
		freed += f.Size
	}
	if len(free) > 0 {
		db.opts.Ledger.Add(obs.SrcSnapshotGC, freed)
		db.opts.Events.Add(obs.Event{
			Kind: obs.EventSnapshotGC, Shard: db.opts.EventShard, Level: -1,
			Dur: time.Since(start), In: freed, Files: len(free),
			Detail: "zombie tables reclaimed",
		})
	}
}

// OpenSnapshots reports the number of live (unreleased) snapshots.
func (db *DB) OpenSnapshots() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.snaps)
}

// OverlaySize reports how many preserved old versions the snapshot
// overlay currently holds (observability and leak tests).
func (db *DB) OverlaySize() int { return db.overlay.size() }

// getFromVersion walks the disk component of version v for key (nil
// means the current version, resolved under the lock). It is the shared
// tail of DB.Get and Snapshot.Get; a snapshot's pinned version is safe
// here because its file references keep every table open. tr (nil on
// the untraced path) collects an sstable_read span per disk read.
func (db *DB) getFromVersion(v *manifest.Version, key []byte, tr *obs.Trace) ([]byte, error) {
	db.versionMu.RLock()
	defer db.versionMu.RUnlock()
	if db.tables == nil {
		return nil, ErrClosed
	}
	if v == nil {
		v = db.version
	}
	if db.opts.SizeTieredCompaction {
		// Size-tiered files in L0 are not in strict freshness order (a
		// merged table has a new file ID but old contents), so resolve
		// by sequence number across every overlapping file.
		var best base.Entry
		var bestFound bool
		for _, f := range v.Levels[0] {
			e, found, reads, err := db.tables[f.ID].Get(key, tr)
			db.met.TableDiskReads.Add(int64(reads))
			if err != nil {
				return nil, err
			}
			if found && (!bestFound || e.Seq > best.Seq) {
				best, bestFound = e, true
			}
		}
		if bestFound {
			return entryValue(best)
		}
		return nil, ErrNotFound
	}
	// L0: newest to oldest, all files (overlapping ranges).
	for _, f := range v.Levels[0] {
		e, found, reads, err := db.tables[f.ID].Get(key, tr)
		db.met.TableDiskReads.Add(int64(reads))
		if err != nil {
			return nil, err
		}
		if found {
			return entryValue(e)
		}
	}
	// Deeper levels: at most one file each.
	for l := 1; l < manifest.NumLevels; l++ {
		for _, f := range v.Overlapping(l, key, key) {
			e, found, reads, err := db.tables[f.ID].Get(key, tr)
			db.met.TableDiskReads.Add(int64(reads))
			if err != nil {
				return nil, err
			}
			if found {
				return entryValue(e)
			}
		}
	}
	return nil, ErrNotFound
}

// overlay preserves old versions of live-memtable entries for the
// snapshots that still need them. The memtable absorbs updates in place
// (the TRIAD premise), so without help the version a snapshot pinned
// would be destroyed by the next write to the same key. The write path
// calls preserve (under db.mu) with the about-to-be-overwritten entry
// whenever an active snapshot could still read it; snapshot reads that
// find a too-new version in the live memtable look up the newest
// preserved version at or below their pinned sequence instead. Entries
// are dropped as the snapshots needing them close.
type overlay struct {
	mu sync.RWMutex
	// versions maps key -> preserved versions in ascending Seq order
	// (preservation happens in commit order).
	versions map[string][]base.Entry
	n        int
}

// preserve records e (the entry being overwritten). Caller has checked
// that some active snapshot pins a sequence >= e.Seq.
func (o *overlay) preserve(e base.Entry) {
	o.mu.Lock()
	if o.versions == nil {
		o.versions = make(map[string][]base.Entry)
	}
	o.versions[string(e.Key)] = append(o.versions[string(e.Key)], e)
	o.n++
	o.mu.Unlock()
}

// get returns the newest preserved version of key with Seq <= maxSeq.
func (o *overlay) get(key []byte, maxSeq uint64) (base.Entry, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	vs := o.versions[string(key)]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].Seq <= maxSeq {
			return vs[i], true
		}
	}
	return base.Entry{}, false
}

// gc drops versions no snapshot can still need: everything when no
// snapshot remains, otherwise versions newer than the highest pinned
// sequence (a version is only readable by snapshots pinned at or above
// its own sequence).
func (o *overlay) gc(maxPinned uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if maxPinned == 0 {
		o.versions = nil
		o.n = 0
		return
	}
	for k, vs := range o.versions {
		keep := vs[:0]
		for _, v := range vs {
			if v.Seq <= maxPinned {
				keep = append(keep, v)
			}
		}
		o.n -= len(vs) - len(keep)
		if len(keep) == 0 {
			delete(o.versions, k)
		} else {
			o.versions[k] = keep
		}
	}
}

// size reports the number of preserved versions.
func (o *overlay) size() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.n
}
