package lsm

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/base"
	"repro/internal/obs"
)

// Batch collects writes to be applied together. Application is atomic
// with respect to concurrent readers and writers (all records commit at
// one sequence number under one critical section). Recovery atomicity
// follows WAL semantics: only a torn tail — the final records of the
// log — can be lost, so a crash can truncate the batch's suffix but
// never interleave it with other writes.
type Batch struct {
	ops       []base.Entry
	byteSize  int64
	committed bool
}

// Put queues a key/value write.
func (b *Batch) Put(key, value []byte) {
	e := base.Entry{
		Key:  append([]byte(nil), key...),
		Kind: base.KindSet,
	}
	if value != nil {
		e.Value = append([]byte(nil), value...)
	}
	b.ops = append(b.ops, e)
	b.byteSize += e.Size()
}

// Delete queues a tombstone.
func (b *Batch) Delete(key []byte) {
	e := base.Entry{Key: append([]byte(nil), key...), Kind: base.KindDelete}
	b.ops = append(b.ops, e)
	b.byteSize += e.Size()
}

// PutEntry queues an already-copied entry without re-copying its key and
// value. It exists for engines that split a batch into per-shard
// sub-batches: the source batch's Put/Delete made the defensive copies,
// so the split must not pay for them twice. The caller must not mutate
// e's slices afterwards.
func (b *Batch) PutEntry(e base.Entry) {
	b.ops = append(b.ops, e)
	b.byteSize += e.Size()
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Bytes reports the queued payload size.
func (b *Batch) Bytes() int64 { return b.byteSize }

// Reset clears the batch for reuse.
func (b *Batch) Reset() {
	b.ops = b.ops[:0]
	b.byteSize = 0
	b.committed = false
}

// Ops exposes the queued entries, in application order. It exists for
// engines that split a batch across several DB instances (the sharded
// engine); callers must not mutate the returned entries.
func (b *Batch) Ops() []base.Entry { return b.ops }

// Committed reports whether the batch has been applied (and not Reset).
func (b *Batch) Committed() bool { return b.committed }

// MarkCommitted records that an outer engine applied the batch on the
// caller's behalf (the sharded engine applies per-shard sub-batches and
// then marks the original).
func (b *Batch) MarkCommitted() { b.committed = true }

// prepare is the validation stage of the commit pipeline: the batch
// must not already be committed and every key must be non-empty. It
// touches no engine state, so it runs before any lock or sequence is
// taken.
func (b *Batch) prepare() error {
	if b.committed {
		return errors.New("lsm: batch already applied (Reset to reuse)")
	}
	for i := range b.ops {
		if len(b.ops[i].Key) == 0 {
			return errors.New("lsm: empty key in batch")
		}
	}
	return nil
}

// Apply commits the batch at the next internal sequence number. The
// batch may be Reset and reused afterwards.
func (db *DB) Apply(b *Batch) error { return db.commit(0, b, nil) }

// CommitAt commits the batch with every record carrying the externally
// assigned sequence seq. This is the commit stage the sharded engine
// drives: seq is a store-wide epoch from its commit clock, and the
// per-DB sequence counter advances to seq — it becomes a view of that
// clock rather than an independent allocator. seq must exceed every
// sequence previously committed on this DB (the clock's per-shard
// ticket ordering guarantees it); a regressing seq is an error and
// commits nothing.
func (db *DB) CommitAt(seq uint64, b *Batch) error {
	return db.CommitAtTraced(seq, b, nil)
}

// CommitAtTraced is CommitAt with the group's sampled request traces
// attached: the engine records aggregated wal_append and memtable_apply
// spans into each. trs is nil for every untraced group.
func (db *DB) CommitAtTraced(seq uint64, b *Batch, trs obs.Traces) error {
	if seq == 0 {
		return errors.New("lsm: CommitAt requires a non-zero sequence")
	}
	return db.commit(seq, b, trs)
}

// commit runs the pipeline: prepare (validation, lock-free), then the
// commit stage under db.mu — absorb backpressure, fix the sequence, and
// append to log and memtable. seq 0 means self-assigned.
func (db *DB) commit(seq uint64, b *Batch, trs obs.Traces) error {
	if err := b.prepare(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.bgErr != nil {
		return db.bgErr
	}
	if err := db.stallLocked(); err != nil {
		return err
	}
	if seq == 0 {
		db.seq++
		seq = db.seq
	} else if seq <= db.seq {
		return fmt.Errorf("lsm: commit sequence %d is not after the last committed %d", seq, db.seq)
	} else {
		db.seq = seq
	}
	return db.commitLocked(seq, b, trs)
}

// commitLocked is the write stage: every record is appended to the WAL
// and the memtable at sequence seq (one sequence for the whole batch —
// the batch is one commit-order event). Caller holds db.mu and has
// already advanced db.seq to seq. When traces ride the batch, the loop
// times its two halves and records one aggregated wal_append and
// memtable_apply span per trace (the group commits as a unit, so every
// rider paid for the whole loop).
func (db *DB) commitLocked(seq uint64, b *Batch, trs obs.Traces) error {
	traced := len(trs) > 0
	var t0, ts time.Time
	var walDur, memDur time.Duration
	var walBytes, userBytes int64
	if traced {
		t0 = time.Now()
	}
	for i := range b.ops {
		e := &b.ops[i]
		rec := base.Entry{Key: e.Key, Value: e.Value, Seq: seq, Kind: e.Kind}
		if traced {
			ts = time.Now()
		}
		off, n, err := db.log.Append(rec)
		if traced {
			walDur += time.Since(ts)
		}
		if err != nil {
			// Keep the ledger in lockstep with the met counters even on
			// a torn batch: charge what the loop already logged.
			db.opts.Ledger.Add(obs.SrcWAL, walBytes)
			db.opts.Ledger.Add(obs.SrcUser, userBytes)
			return err
		}
		db.met.BytesLogged.Add(int64(n))
		walBytes += int64(n)
		if traced {
			ts = time.Now()
		}
		db.preserveLocked(e.Key)
		db.mem.Set(e.Key, e.Value, seq, e.Kind, db.log.ID(), off)
		if traced {
			memDur += time.Since(ts)
		}
		db.met.UserWrites.Add(1)
		db.met.UserBytes.Add(rec.Size())
		userBytes += rec.Size()
	}
	db.opts.Ledger.Add(obs.SrcWAL, walBytes)
	db.opts.Ledger.Add(obs.SrcUser, userBytes)
	if traced {
		detail := fmt.Sprintf("shard %d, %d ops, %dB", db.opts.EventShard, b.Len(), walBytes)
		trs.SpanAt(obs.SpanWALAppend, t0, walDur, detail)
		trs.SpanAt(obs.SpanMemtableApply, t0, memDur, detail)
	}
	b.committed = true
	return db.maybeRotateLocked()
}
