package lsm

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/vfs"
)

// --- Write batches ---

func TestBatchAtomicVisibility(t *testing.T) {
	fs := vfs.NewMemFS()
	db := mustOpen(t, smallOptions(fs))
	defer db.Close()
	var b Batch
	for i := 0; i < 100; i++ {
		b.Put([]byte(fmt.Sprintf("b-%03d", i)), []byte("v"))
	}
	b.Delete([]byte("b-050"))
	if b.Len() != 101 {
		t.Fatalf("Len = %d", b.Len())
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_, err := db.Get([]byte(fmt.Sprintf("b-%03d", i)))
		if i == 50 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted batch key: %v", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("batch key %d: %v", i, err)
		}
	}
	// Double-apply is rejected; Reset re-arms.
	if err := db.Apply(&b); err == nil {
		t.Fatal("double Apply succeeded")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset kept ops")
	}
	b.Put([]byte("again"), []byte("v"))
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
}

func TestBatchEmptyKeyRejected(t *testing.T) {
	fs := vfs.NewMemFS()
	db := mustOpen(t, smallOptions(fs))
	defer db.Close()
	var b Batch
	b.Put(nil, []byte("v"))
	if err := db.Apply(&b); err == nil {
		t.Fatal("batch with empty key accepted")
	}
}

func TestBatchSurvivesRecovery(t *testing.T) {
	fs := vfs.NewMemFS()
	db := mustOpen(t, triadSmall(fs))
	var b Batch
	for i := 0; i < 500; i++ {
		b.Put([]byte(fmt.Sprintf("b-%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2 := mustOpen(t, triadSmall(fs))
	defer db2.Close()
	for i := 0; i < 500; i++ {
		v, err := db2.Get([]byte(fmt.Sprintf("b-%04d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered batch key %d = %q, %v", i, v, err)
		}
	}
}

// --- Block cache ---

func TestBlockCacheReducesDiskReads(t *testing.T) {
	run := func(cacheBytes int64) (ra float64, hits int64) {
		fs := vfs.NewMemFS()
		o := smallOptions(fs)
		o.BlockCacheBytes = cacheBytes
		db := mustOpen(t, o)
		defer db.Close()
		for i := 0; i < 1000; i++ {
			db.Put([]byte(fmt.Sprintf("key-%05d", i)), make([]byte, 100))
		}
		db.Flush()
		db.CompactAll()
		// Hammer a small working set of keys.
		for round := 0; round < 20; round++ {
			for i := 0; i < 50; i++ {
				if _, err := db.Get([]byte(fmt.Sprintf("key-%05d", i))); err != nil {
					t.Fatal(err)
				}
			}
		}
		h, _ := db.CacheStats()
		return db.Metrics().ReadAmplification(), h
	}
	raCold, hitsCold := run(0)
	raHot, hitsHot := run(4 << 20)
	if hitsCold != 0 {
		t.Fatalf("disabled cache recorded %d hits", hitsCold)
	}
	if hitsHot == 0 {
		t.Fatal("enabled cache never hit")
	}
	if raHot >= raCold {
		t.Fatalf("cache did not reduce RA: %.3f >= %.3f", raHot, raCold)
	}
}

// --- Size-tiered compaction ---

func sizeTieredOpts(fs *vfs.MemFS) Options {
	o := smallOptions(fs)
	o.SizeTieredCompaction = true
	o.MinMergeWidth = 4
	return o
}

func TestSizeTieredBasic(t *testing.T) {
	fs := vfs.NewMemFS()
	o := sizeTieredOpts(fs)
	db := mustOpen(t, o)
	defer db.Close()
	for i := 0; i < 6000; i++ {
		key := fmt.Sprintf("key-%05d", i%1000)
		if err := db.Put([]byte(key), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	// Everything lives in L0; deeper levels stay empty.
	files := db.NumLevelFiles()
	for l := 1; l < len(files); l++ {
		if files[l] != 0 {
			t.Fatalf("size-tiered put files on L%d: %v", l, files)
		}
	}
	if db.Metrics().Compactions == 0 {
		t.Fatal("no size-tiered merge ran")
	}
	// Latest values win.
	for i := 5000; i < 6000; i++ {
		key := fmt.Sprintf("key-%05d", i%1000)
		v, err := db.Get([]byte(key))
		if err != nil || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("Get(%s) = %q, %v; want v-%d", key, v, err, i)
		}
	}
}

func TestSizeTieredModelBased(t *testing.T) {
	fs := vfs.NewMemFS()
	o := sizeTieredOpts(fs)
	o.TriadMem, o.TriadDisk, o.TriadLog = true, true, true
	db := mustOpen(t, o)
	defer db.Close()
	oracle := map[string]string{}
	for i := 0; i < 6000; i++ {
		k := fmt.Sprintf("key-%04d", (i*37)%400)
		switch i % 11 {
		case 0:
			if err := db.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(oracle, k)
		default:
			v := fmt.Sprintf("v-%d", i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			oracle[k] = v
		}
	}
	for k, want := range oracle {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != want {
			t.Fatalf("Get(%s) = %q, %v; want %q", k, got, err, want)
		}
	}
	// Deleted keys stay deleted.
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if _, live := oracle[k]; live {
			continue
		}
		if _, err := db.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key %s resurrected: %v", k, err)
		}
	}
}

// TestSizeTieredMergeConvergesWithSmallTargetFile is a regression test:
// size-tiered merges must emit one output table even when it exceeds
// TargetFileBytes, otherwise the split recreates same-sized files that
// the bucketer re-merges forever.
func TestSizeTieredMergeConvergesWithSmallTargetFile(t *testing.T) {
	fs := vfs.NewMemFS()
	o := sizeTieredOpts(fs)
	o.TargetFileBytes = 8 << 10 // far below the merged output size
	o.DisableAutoCompaction = true
	db := mustOpen(t, o)
	defer db.Close()
	for batch := 0; batch < 6; batch++ {
		for i := 0; i < 300; i++ {
			if err := db.Put([]byte(fmt.Sprintf("k-%d-%04d", batch, i)), make([]byte, 64)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Must terminate (the package test timeout is the guard).
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	files := db.NumLevelFiles()[0]
	if files > 2 {
		t.Fatalf("size-tiered CompactAll left %d files", files)
	}
	compactions := db.Metrics().Compactions
	if compactions > 10 {
		t.Fatalf("size-tiered needed %d merges; loop suspected", compactions)
	}
}

func TestSizeTieredRecovery(t *testing.T) {
	fs := vfs.NewMemFS()
	o := sizeTieredOpts(fs)
	db := mustOpen(t, o)
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i%500)), []byte(fmt.Sprintf("v-%d", i)))
	}
	db.Close()
	db2 := mustOpen(t, o)
	defer db2.Close()
	for i := 2500; i < 3000; i++ {
		key := fmt.Sprintf("key-%04d", i%500)
		v, err := db2.Get([]byte(key))
		if err != nil || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("recovered Get(%s) = %q, %v", key, v, err)
		}
	}
}

// TestSizeTieredTriadDiskPicksDuplicateDenseBuckets: with duplicate-heavy
// L0 contents TRIAD-DISK merges; with disjoint contents it defers.
func TestSizeTieredTriadDiskDefers(t *testing.T) {
	fs := vfs.NewMemFS()
	o := sizeTieredOpts(fs)
	o.TriadDisk = true
	o.MaxMergeWidth = 16
	o.DisableAutoCompaction = true
	db := mustOpen(t, o)
	defer db.Close()
	// Four similar-size files with disjoint keys.
	for batch := 0; batch < 4; batch++ {
		for i := 0; i < 200; i++ {
			db.Put([]byte(fmt.Sprintf("b%d-%04d", batch, i)), make([]byte, 64))
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ran, err := db.CompactOnce()
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("size-tiered TRIAD-DISK merged disjoint files")
	}
	if db.Metrics().CompactionsDeferred == 0 {
		t.Fatal("no deferral recorded")
	}
	// Now four files with identical key sets → overlap high → merge.
	for batch := 0; batch < 4; batch++ {
		for i := 0; i < 200; i++ {
			db.Put([]byte(fmt.Sprintf("dup-%04d", i)), make([]byte, 64))
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ran, err = db.CompactOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("size-tiered TRIAD-DISK did not merge duplicate-dense bucket")
	}
}

// --- Stats dump ---

func TestStatsString(t *testing.T) {
	fs := vfs.NewMemFS()
	db := mustOpen(t, triadSmall(fs))
	defer db.Close()
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i)), make([]byte, 64))
	}
	db.Flush()
	s := db.Stats()
	for _, want := range []string{"levels", "flushes", "compactions", "WA", "RA"} {
		if !containsStr(s, want) {
			t.Fatalf("Stats() missing %q:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
