package lsm

import (
	"fmt"
	"time"

	"repro/internal/compaction"
	"repro/internal/hll"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/sstable"
	"repro/internal/wal"
)

// compactLoop runs compactions until the tree is in shape or TRIAD-DISK
// defers (paper §4.2: "If the L0 and L1 SSTables do not have enough key
// overlap, compaction is delayed until more L0 SSTables are generated").
func (db *DB) compactLoop() error {
	for {
		db.mu.Lock()
		closed := db.closed
		db.mu.Unlock()
		if closed {
			return nil
		}
		ran, err := db.compactOnceLocked(false)
		if err != nil || !ran {
			return err
		}
	}
}

// compactOnceLocked picks and runs one compaction under compactionMu.
// force bypasses a TRIAD-DISK deferral by merging whatever L0 holds.
func (db *DB) compactOnceLocked(force bool) (bool, error) {
	db.compactionMu.Lock()
	defer db.compactionMu.Unlock()
	db.versionMu.RLock()
	job := db.picker.Pick(db.version, func(f *manifest.FileMeta) *hll.Sketch {
		if t, ok := db.tables[f.ID]; ok {
			return t.Sketch()
		}
		return nil
	})
	db.versionMu.RUnlock()
	if job == nil {
		return false, nil
	}
	if job.Deferred {
		db.met.CompactionsDefer.Add(1)
		if !force {
			return false, nil
		}
		db.versionMu.RLock()
		l0 := append([]*manifest.FileMeta(nil), db.version.Levels[0]...)
		if db.opts.SizeTieredCompaction {
			job = &compaction.Job{Level: 0, OutputLevel: 0, Inputs: l0, WholeTree: true}
		} else {
			lo, hi := compaction.KeyRangeOf(l0)
			job = &compaction.Job{Level: 0, OutputLevel: 1, Inputs: l0, Overlaps: db.version.Overlapping(1, lo, hi)}
		}
		db.versionMu.RUnlock()
	}
	return true, db.runCompaction(job)
}

// CompactOnce runs at most one compaction synchronously and reports
// whether one ran (false also when TRIAD-DISK deferred). For tests and
// the tuning example; normal operation compacts in the background.
func (db *DB) CompactOnce() (bool, error) {
	return db.compactOnceLocked(false)
}

// CompactAll drains all pending compactions synchronously, ignoring
// TRIAD-DISK deferral (used to settle the tree before measurements).
func (db *DB) CompactAll() error {
	for {
		ran, err := db.compactOnceLocked(true)
		if err != nil || !ran {
			return err
		}
	}
}

// runCompaction merges job.Inputs (level L) with job.Overlaps (level L+1)
// into fresh tables at L+1, discarding stale versions — and, with
// TRIAD-MEM, versions of keys currently held hot in the memtable (§4.3:
// "during compaction, the hot keys are skipped, similarly to the duplicate
// updates"; safe because the memtable version is strictly newer and is
// durable in the current commit log).
//
// With a scheduler attached, a large leveled compaction is partitioned
// into disjoint key-range slices (boundaries from the input tables'
// block indexes) merged in parallel on the pool; the slices' outputs
// are concatenated — they are disjoint and in key order — and installed
// as the same single atomic manifest edit a monolithic merge produces,
// so snapshots and zombie refcounts never see a half-installed split.
func (db *DB) runCompaction(job *compaction.Job) error {
	start := time.Now()
	defer func() { db.met.CompactionNanos.Add(time.Since(start).Nanoseconds()) }()
	db.met.Compactions.Add(1)

	outLevel := job.OutputLevel
	if outLevel < job.Level {
		outLevel = job.Level + 1
	}
	all := append(append([]*manifest.FileMeta(nil), job.Inputs...), job.Overlaps...)

	// Resolve tables newest-first: L0 inputs are already newest-first in
	// the version; the next level's files are strictly older. The inputs
	// cannot be closed mid-compaction — only a compaction consumes live
	// tables, and compactionMu serializes them.
	db.versionMu.RLock()
	tabs := make([]sstable.Table, 0, len(all))
	for _, f := range all {
		t, ok := db.tables[f.ID]
		if !ok {
			db.versionMu.RUnlock()
			return errClosedTable(f.ID)
		}
		tabs = append(tabs, t)
	}
	lo, hi := compaction.KeyRangeOf(all)
	// Tombstones may be dropped only when nothing outside the merge can
	// still hold an older version of a key in range: for leveled output,
	// nothing below the output level overlaps; for a size-tiered merge,
	// only when the whole tree participates.
	drop := true
	if outLevel == job.Level {
		drop = job.WholeTree
	} else {
		for l := outLevel + 1; l < manifest.NumLevels; l++ {
			if len(db.version.Overlapping(l, lo, hi)) > 0 {
				drop = false
				break
			}
		}
	}
	db.versionMu.RUnlock()

	var skip func([]byte) bool
	if db.opts.TriadMem && job.Level == 0 {
		db.mu.Lock()
		mem := db.mem
		db.mu.Unlock()
		// Memtable reads take its internal RWMutex, so concurrent
		// subcompaction slices may share this closure.
		skip = func(key []byte) bool {
			_, ok := mem.Get(key)
			if ok {
				db.met.EntriesDiscarded.Add(1)
			}
			return ok
		}
	}

	var inBytes int64
	for _, f := range all {
		inBytes += f.Size
	}
	// Size-tiered merges (output level == input level) must stay
	// monolithic: they produce exactly one table.
	slices := []compaction.Slice{{}}
	if outLevel != job.Level && db.sched != nil {
		maxSub := db.opts.MaxSubcompactions
		if maxSub <= 0 {
			maxSub = db.opts.Scheduler.Workers()
		}
		// Don't split below about one output file of input per slice —
		// the split overhead would outweigh the parallelism.
		if perSlice := int(inBytes / db.opts.TargetFileBytes); perSlice < maxSub {
			maxSub = perSlice
		}
		slices = compaction.SplitJob(tabs, maxSub)
	}

	results := make([]sliceResult, len(slices))
	if len(slices) == 1 {
		results[0] = db.runSlice(tabs, slices[0], outLevel, outLevel == job.Level, drop, skip)
	} else {
		fns := make([]func(), len(slices))
		for i := range slices {
			i := i
			fns[i] = func() {
				results[i] = db.runSlice(tabs, slices[i], outLevel, false, drop, skip)
			}
		}
		db.sched.RunSlices(db.opts.EventShard, fns)
	}

	var outputs []manifest.FileMeta
	var written int64
	var firstErr error
	for _, r := range results {
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		outputs = append(outputs, r.outputs...)
		written += r.written
	}
	if firstErr != nil {
		// Every slice aborted its own partial writer; finished slices'
		// outputs were never installed, so remove their files.
		for _, o := range outputs {
			f := o
			_ = db.removeTableFiles(&f)
		}
		return firstErr
	}
	db.met.BytesCompacted.Add(written)
	db.opts.Ledger.Add(obs.SrcCompactionWrite, written)

	if err := db.installCompaction(all, outputs); err != nil {
		return err
	}
	db.opts.Ledger.Add(obs.SrcCompactionRead, inBytes)
	detail := fmt.Sprintf("L%d->L%d, %d outputs", job.Level, outLevel, len(outputs))
	if job.WholeTree {
		detail = fmt.Sprintf("size-tiered %d-way, %d outputs", len(all), len(outputs))
	}
	if len(slices) > 1 {
		detail += fmt.Sprintf(", %d subcompactions", len(slices))
	}
	db.opts.Events.Add(obs.Event{
		Kind: obs.EventCompaction, Shard: db.opts.EventShard, Level: job.Level,
		Dur: time.Since(start), In: inBytes, Out: written,
		Files: len(all), Detail: detail,
	})
	return nil
}

// sliceResult is one subcompaction slice's contribution: its output
// tables in key order, and the bytes it wrote.
type sliceResult struct {
	outputs []manifest.FileMeta
	written int64
	err     error
}

// runSlice merges one key-range slice of the input tables into fresh
// tables at outLevel. With the zero Slice it is the whole (monolithic)
// compaction. singleOutput pins a size-tiered merge to one table —
// splitting would recreate same-sized files for the bucketer to merge
// again, forever; tiers are supposed to grow.
func (db *DB) runSlice(tabs []sstable.Table, slc compaction.Slice, outLevel int, singleOutput bool, drop bool, skip func([]byte) bool) sliceResult {
	merge, err := compaction.NewSliceMerge(tabs, slc)
	if err != nil {
		return sliceResult{err: err}
	}
	dedup := compaction.NewDedupIterator(merge, drop, skip)
	defer dedup.Close()

	var (
		res   sliceResult
		w     *sstable.Writer
		first []byte
		count uint64
	)
	finish := func() error {
		if w == nil {
			return nil
		}
		n, err := w.Finish()
		if err != nil {
			w.Abort(db.fs)
			return err
		}
		res.written += n
		res.outputs = append(res.outputs, manifest.FileMeta{
			ID:         w.ID(),
			Kind:       manifest.KindSST,
			Level:      outLevel,
			Size:       n,
			NumEntries: count,
			Smallest:   first,
			Largest:    append([]byte(nil), w.LastKey()...),
		})
		w = nil
		return nil
	}
	for dedup.Next() {
		e := dedup.Entry()
		db.met.EntriesCompacted.Add(1)
		if w == nil {
			db.mu.Lock()
			id := db.allocFileID()
			db.mu.Unlock()
			w, err = sstable.NewWriter(db.fs, id, db.opts.BlockBytes)
			if err != nil {
				res.err = err
				return res
			}
			first = append([]byte(nil), e.Key...)
			count = 0
		}
		if err := w.Add(e); err != nil {
			w.Abort(db.fs)
			res.err = err
			return res
		}
		count++
		// Leveled outputs roll at the target file size.
		if !singleOutput && w.EstimatedSize() >= db.opts.TargetFileBytes {
			if err := finish(); err != nil {
				res.err = err
				return res
			}
		}
	}
	if err := dedup.Err(); err != nil {
		if w != nil {
			w.Abort(db.fs)
		}
		res.err = err
		return res
	}
	res.err = finish()
	return res
}

// installCompaction journals the edit, swaps the version, and removes the
// consumed files (for CL-SSTables: the index and its pinned commit log).
func (db *DB) installCompaction(consumed []*manifest.FileMeta, outputs []manifest.FileMeta) error {
	newTables := make(map[uint64]sstable.Table, len(outputs))
	for i := range outputs {
		t, err := db.openTable(&outputs[i])
		if err != nil {
			for _, nt := range newTables {
				nt.Close()
			}
			return err
		}
		newTables[outputs[i].ID] = t
	}
	db.mu.Lock()
	edit := manifest.Edit{Added: outputs, NextFileID: db.nextID, LastSeq: db.seq}
	db.mu.Unlock()
	for _, f := range consumed {
		edit.Deleted = append(edit.Deleted, f.ID)
	}
	if err := db.manifest.Append(edit); err != nil {
		for _, nt := range newTables {
			nt.Close()
		}
		return err
	}
	db.versionMu.Lock()
	nv, err := db.version.Apply(edit)
	if err != nil {
		db.versionMu.Unlock()
		for _, nt := range newTables {
			nt.Close()
		}
		return err
	}
	db.version = nv
	var closeErr error
	// A consumed file a snapshot still pins becomes a zombie: it leaves
	// the version but keeps its open table and on-disk bytes until the
	// last pinning snapshot closes. Unpinned files go immediately.
	var free []*manifest.FileMeta
	for _, f := range consumed {
		if db.refs[f.ID] > 0 {
			db.zombies[f.ID] = f
			continue
		}
		if t, ok := db.tables[f.ID]; ok {
			if err := t.Close(); err != nil && closeErr == nil {
				closeErr = err
			}
			delete(db.tables, f.ID)
		}
		free = append(free, f)
	}
	for id, t := range newTables {
		db.tables[id] = t
	}
	db.l0Count.Store(int32(len(nv.Levels[0])))
	db.versionMu.Unlock()
	// Wake writers stalled on the L0 file count.
	db.mu.Lock()
	db.cond.Broadcast()
	db.mu.Unlock()
	if closeErr != nil {
		return closeErr
	}
	for _, f := range free {
		db.cache.EvictTable(f.ID)
	}
	for _, f := range free {
		if err := db.removeTableFiles(f); err != nil {
			return err
		}
	}
	return nil
}

// removeTableFiles deletes a table's on-disk files (for CL-SSTables: the
// index and the commit log it pins).
func (db *DB) removeTableFiles(f *manifest.FileMeta) error {
	switch f.Kind {
	case manifest.KindCLSST:
		if err := db.fs.Remove(sstable.CLIndexFileName(f.ID)); err != nil {
			return err
		}
		return db.fs.Remove(wal.FileName(f.LogID))
	default:
		return db.fs.Remove(sstable.FileName(f.ID))
	}
}

func closeAll(its []sstable.Iterator) {
	for _, it := range its {
		it.Close()
	}
}

type errClosedTable uint64

func (e errClosedTable) Error() string { return "lsm: table missing from cache" }
