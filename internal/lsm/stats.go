package lsm

import (
	"fmt"
	"strings"
)

// Stats renders a human-readable dump of the tree shape and the engine
// counters, in the spirit of RocksDB's GetProperty("rocksdb.stats").
func (db *DB) Stats() string {
	var b strings.Builder
	m := db.Metrics()
	files := db.NumLevelFiles()
	sizes := db.LevelSizes()

	fmt.Fprintf(&b, "levels (files/bytes):\n")
	for l := range files {
		if files[l] == 0 && sizes[l] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  L%d: %d files, %d bytes\n", l, files[l], sizes[l])
	}
	db.mu.Lock()
	memBytes := db.mem.ApproxSize()
	memLen := db.mem.Len()
	immCount := len(db.imm)
	logBytes := db.log.Size()
	snapCount := len(db.snaps)
	db.mu.Unlock()
	fmt.Fprintf(&b, "memtable: %d entries, %d bytes (+%d immutable queued)\n", memLen, memBytes, immCount)
	if snapCount > 0 || db.OverlaySize() > 0 {
		fmt.Fprintf(&b, "snapshots: %d open (%d preserved versions)\n", snapCount, db.OverlaySize())
	}
	fmt.Fprintf(&b, "commit log: %d bytes\n", logBytes)
	fmt.Fprintf(&b, "flushes: %d (skipped: %d)  compactions: %d (deferred: %d)\n",
		m.Flushes, m.FlushSkips, m.Compactions, m.CompactionsDeferred)
	fmt.Fprintf(&b, "bytes: user %d  logged %d  flushed %d  compacted %d\n",
		m.UserBytes, m.BytesLogged, m.BytesFlushed, m.BytesCompacted)
	fmt.Fprintf(&b, "background time: flush %s, compaction %s\n", m.FlushTime, m.CompactionTime)
	fmt.Fprintf(&b, "compaction debt: %d bytes  write stalls: %d (%s total)\n",
		db.CompactionDebt(), m.WriteStalls, m.WriteStallTime)
	fmt.Fprintf(&b, "WA: %.2f (flush-relative %.2f)  RA: %.2f\n",
		m.WriteAmplification(), m.FlushRelativeWA(), m.ReadAmplification())
	if hits, misses := db.CacheStats(); hits+misses > 0 {
		fmt.Fprintf(&b, "block cache: %d hits, %d misses (%.1f%% hit rate)\n",
			hits, misses, 100*float64(hits)/float64(hits+misses))
	}
	if m.HotKeysKeptInMem > 0 || m.ColdEntriesFlushed > 0 {
		fmt.Fprintf(&b, "triad-mem: %d hot kept, %d cold flushed\n", m.HotKeysKeptInMem, m.ColdEntriesFlushed)
	}
	return b.String()
}
