package lsm

import (
	"repro/internal/memtable"
)

// Hot-set auto-tuning (paper §4.1): "Ideally, K should be high enough to
// accommodate all the hot keys, but low enough to avoid a high memory
// overhead ... We are also currently investigating techniques to
// automatically set K depending on the runtime workload, for example by
// means of hill climbing."
//
// This implements that future-work feature. After every TRIAD-MEM
// separation the tuner inspects two signals:
//
//   - misses: cold (flushed) entries that were updated more than once —
//     hot keys that did not fit in the budget. Many misses ⇒ K too small.
//   - slack: the budget minus the hot keys actually found. Persistent
//     slack ⇒ K larger than the workload's hot set, costing memory and
//     write-back for nothing.
//
// The fraction is nudged multiplicatively toward whichever signal
// dominates and clamped to [minHotFraction, maxHotFraction]; a dead band
// keeps it stable on stationary workloads (plain hill climbing on the
// miss rate with a fixed step).
const (
	minHotFraction = 0.001
	maxHotFraction = 0.60
	// missTolerance is the accepted fraction of multi-update entries in
	// the flushed cold set before the budget grows.
	missTolerance = 0.02
	// slackTolerance is the accepted unused fraction of the hot budget
	// before it shrinks.
	slackTolerance = 0.50
	// tuneStep is the multiplicative hill-climbing step.
	tuneStep = 1.25
)

// currentHotFraction reads the live (possibly auto-tuned) hot budget.
func (db *DB) currentHotFraction() float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.hotFrac == 0 {
		db.hotFrac = db.opts.HotFraction
	}
	return db.hotFrac
}

// HotFraction reports the live TRIAD-MEM hot budget (equal to
// Options.HotFraction unless AutoTuneHotFraction has adjusted it).
func (db *DB) HotFraction() float64 { return db.currentHotFraction() }

// autoTuneHot adjusts the hot budget after one separation. total is the
// sealed memtable's entry count.
func (db *DB) autoTuneHot(sep memtable.Separation, total int) {
	if !db.opts.AutoTuneHotFraction || total == 0 {
		return
	}
	multiUpdateCold := 0
	for _, e := range sep.Cold {
		if e.Updates > 1 {
			multiUpdateCold++
		}
	}
	missRate := 0.0
	if len(sep.Cold) > 0 {
		missRate = float64(multiUpdateCold) / float64(len(sep.Cold))
	}
	budget := int(db.currentHotFraction() * float64(total))

	db.mu.Lock()
	defer db.mu.Unlock()
	switch {
	case missRate > missTolerance:
		db.hotFrac *= tuneStep
		if db.hotFrac > maxHotFraction {
			db.hotFrac = maxHotFraction
		}
	case budget > 0 && float64(len(sep.Hot)) < (1-slackTolerance)*float64(budget):
		db.hotFrac /= tuneStep
		if db.hotFrac < minHotFraction {
			db.hotFrac = minHotFraction
		}
	}
}
