package lsm

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/bgsched"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// schedOptions returns smallOptions wired to a fresh shared pool. The
// caller owns the pool and must close it after the DB.
func schedOptions(fs *vfs.MemFS, workers int) (Options, *bgsched.Pool) {
	o := smallOptions(fs)
	pool := bgsched.NewPool(workers)
	o.Scheduler = pool
	return o, pool
}

// TestSchedulerStallLifecycle: while the pool's only worker is occupied
// the flush queue cannot drain and the writer stalls; the moment the
// pool is released the queued flush runs and the writer unblocks, the
// episode lands on the metrics and in the journal, no write is lost,
// and nothing leaks past Close.
func TestSchedulerStallLifecycle(t *testing.T) {
	fs := vfs.NewMemFS()
	o, pool := schedOptions(fs, 1)
	defer pool.Close()
	o.MemtableBytes = 2 << 10
	o.MaxImmutableMemtables = 1
	o.DisableAutoCompaction = true // isolate the flush-queue stall path
	o.Events = obs.NewJournal(256)

	// Occupy the single worker so every flush the DB schedules queues
	// behind it.
	blocker := pool.NewOwner()
	started := make(chan struct{})
	release := make(chan struct{})
	blocker.Submit(bgsched.ClassDeep, 0, func() { close(started); <-release })
	<-started

	db := mustOpen(t, o)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("key-%04d", i)
			if err := db.Put([]byte(key), bytes.Repeat([]byte{1}, 150)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	// Wait until the writer is wedged: the immutable queue is over its
	// cap and cannot drain while the blocker holds the worker.
	deadline := time.Now().Add(10 * time.Second)
	for {
		db.mu.Lock()
		wedged := len(db.imm) > o.MaxImmutableMemtables
		db.mu.Unlock()
		if wedged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writer never filled the flush queue; stall condition unreachable")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("writer finished while the pool was blocked (err=%v); backpressure missing", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release) // pool drains: the queued flush runs, the stall must end
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := blocker.Close(); err != nil {
		t.Fatal(err)
	}

	// The episode is visible on both surfaces, with its duration.
	m := db.Metrics()
	if m.WriteStalls == 0 {
		t.Fatal("writer was blocked but WriteStalls is 0")
	}
	if m.WriteStallTime <= 0 {
		t.Fatalf("WriteStalls=%d but WriteStallTime=%s", m.WriteStalls, m.WriteStallTime)
	}
	stallEvents := 0
	for _, e := range o.Events.Events(0) {
		if e.Kind == obs.EventStall {
			stallEvents++
			if e.Dur <= 0 {
				t.Fatalf("stall event with non-positive duration: %v", e)
			}
		}
	}
	if stallEvents == 0 {
		t.Fatalf("%d stalls counted but none journaled", m.WriteStalls)
	}

	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%04d", i)
		if _, err := db.Get([]byte(key)); err != nil {
			t.Fatalf("lost %s: %v", key, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The DB's owner settled at Close: nothing still queued or running.
	if s := pool.Stats(); s.Busy != 0 || s.QueuedTotal() != 0 {
		t.Fatalf("pool not drained after Close: %+v", s)
	}
}

// TestSubcompactionEqualsMonolithic: the same workload compacted with
// parallel key-range slices and with the legacy monolithic merge yields
// the identical key/value sequence, and a snapshot pinned across the
// split compactions keeps its frozen view.
func TestSubcompactionEqualsMonolithic(t *testing.T) {
	type entry struct{ k, v string }
	load := func(t *testing.T, db *DB) *Snapshot {
		t.Helper()
		var snap *Snapshot
		for i := 0; i < 4000; i++ {
			k := fmt.Sprintf("key-%05d", i%2500) // overwrites past 2500
			v := fmt.Sprintf("val-%05d", i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			if i%7 == 0 {
				if err := db.Delete([]byte(fmt.Sprintf("key-%05d", (i+13)%2500))); err != nil {
					t.Fatal(err)
				}
			}
			if i == 2000 {
				var err error
				if snap, err = db.NewSnapshot(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := db.CompactAll(); err != nil {
			t.Fatal(err)
		}
		return snap
	}
	dump := func(t *testing.T, db *DB) []entry {
		t.Helper()
		it, err := db.NewIterator(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		var out []entry
		for it.Next() {
			out = append(out, entry{string(it.Key()), string(it.Value())})
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Sliced: pool-backed with up to 4 parallel slices per compaction.
	fsA := vfs.NewMemFS()
	oA, pool := schedOptions(fsA, 4)
	defer pool.Close()
	oA.MaxSubcompactions = 4
	oA.DisableAutoCompaction = true // compact only via CompactAll, deterministically
	oA.Events = obs.NewJournal(256)
	dbA := mustOpen(t, oA)
	defer dbA.Close()
	snapA := load(t, dbA)
	defer snapA.Close()

	// Monolithic: the legacy nil-scheduler engine.
	fsB := vfs.NewMemFS()
	oB := smallOptions(fsB)
	oB.DisableAutoCompaction = true
	dbB := mustOpen(t, oB)
	defer dbB.Close()
	snapB := load(t, dbB)
	defer snapB.Close()

	split := false
	for _, e := range oA.Events.Events(0) {
		if e.Kind == obs.EventCompaction && strings.Contains(e.Detail, "subcompaction") {
			split = true
		}
	}
	if !split {
		t.Fatal("no compaction actually split into subcompactions; differential is vacuous")
	}

	gotA, gotB := dump(t, dbA), dump(t, dbB)
	if len(gotA) != len(gotB) {
		t.Fatalf("entry counts differ: sliced %d vs monolithic %d", len(gotA), len(gotB))
	}
	for i := range gotA {
		if gotA[i] != gotB[i] {
			t.Fatalf("entry %d differs: sliced %v vs monolithic %v", i, gotA[i], gotB[i])
		}
	}

	// The snapshots were pinned before the compactions ran; their frozen
	// views must agree with each other entry for entry.
	dumpSnap := func(t *testing.T, s *Snapshot) []entry {
		t.Helper()
		it, err := s.NewIterator(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		var out []entry
		for it.Next() {
			out = append(out, entry{string(it.Key()), string(it.Value())})
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	sA, sB := dumpSnap(t, snapA), dumpSnap(t, snapB)
	if len(sA) != len(sB) {
		t.Fatalf("snapshot entry counts differ: sliced %d vs monolithic %d", len(sA), len(sB))
	}
	for i := range sA {
		if sA[i] != sB[i] {
			t.Fatalf("snapshot entry %d differs: sliced %v vs monolithic %v", i, sA[i], sB[i])
		}
	}
	if len(sA) == 0 {
		t.Fatal("pinned snapshots saw no data; test ineffective")
	}
}

// TestSchedulerModeBasics runs the bread-and-butter lifecycle on a
// pool-backed DB: writes, flush, auto-compaction, reopen-recovery.
func TestSchedulerModeBasics(t *testing.T) {
	fs := vfs.NewMemFS()
	o, pool := schedOptions(fs, 2)
	defer pool.Close()
	db := mustOpen(t, o)
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key-%05d", i)
		if err := db.Put([]byte(k), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.Metrics().Flushes == 0 {
		t.Fatal("no flush ran on the pool")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery reopens on the same pool.
	o2 := smallOptions(fs)
	o2.Scheduler = pool
	db2 := mustOpen(t, o2)
	defer db2.Close()
	for _, i := range []int{0, 1234, 2999} {
		k := fmt.Sprintf("key-%05d", i)
		v, err := db2.Get([]byte(k))
		if err != nil {
			t.Fatalf("after reopen, %s: %v", k, err)
		}
		if want := fmt.Sprintf("v%d", i); string(v) != want {
			t.Fatalf("after reopen, %s = %q, want %q", k, v, want)
		}
	}
}
