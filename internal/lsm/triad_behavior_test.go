package lsm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/memtable"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// drive applies a deterministic skewed update stream.
func drive(t testing.TB, db *DB, dist workload.KeyDist, ops int, readFrac float64, seed int64) {
	t.Helper()
	mix := workload.Mix{Dist: dist, ReadFraction: readFrac, ValueSize: 128}
	stream := mix.NewStream(seed)
	for i := 0; i < ops; i++ {
		op := stream.Next()
		if op.Read {
			if _, err := db.Get(op.Key); err != nil && !errors.Is(err, ErrNotFound) {
				t.Fatal(err)
			}
			continue
		}
		if err := db.Put(op.Key, op.Value); err != nil {
			t.Fatal(err)
		}
	}
}

func skewed(n uint64) workload.KeyDist {
	return workload.HotCold{N: n, HotFraction: 0.01, HotAccess: 0.99}
}

// TestTriadMemKeepsHotKeysInMemory: under heavy skew, TRIAD-MEM serves
// hot keys from the memtable and flushes far fewer bytes than baseline.
func TestTriadMemKeepsHotKeysInMemory(t *testing.T) {
	run := func(triadMem bool) (flushed int64, memHits int64) {
		fs := vfs.NewMemFS()
		o := smallOptions(fs)
		o.TriadMem = triadMem
		o.HotPolicy = memtable.HotAboveMean
		db := mustOpen(t, o)
		defer db.Close()
		drive(t, db, skewed(5000), 30000, 0.1, 7)
		m := db.Metrics()
		return m.BytesFlushed, m.ReadsFromMem
	}
	baseFlushed, _ := run(false)
	triadFlushed, _ := run(true)
	if triadFlushed >= baseFlushed {
		t.Fatalf("TRIAD-MEM flushed %d bytes >= baseline %d on a skewed workload",
			triadFlushed, baseFlushed)
	}
}

// TestTriadMemFlushSkip: the FLUSH_TH path fires when the commit log
// fills while the memtable is still small (extremely skewed workload),
// and no L0 file is produced by the skipped flushes.
func TestTriadMemFlushSkip(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	o.TriadMem = true
	o.HotPolicy = memtable.HotAboveMean
	// Tiny log budget, large memtable: log-full flushes with a small
	// memtable are guaranteed.
	o.MemtableBytes = 1 << 20
	o.CommitLogBytes = 16 << 10
	o.FlushThresholdBytes = 512 << 10
	db := mustOpen(t, o)
	defer db.Close()
	// Hammer 10 keys.
	for i := 0; i < 5000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("hot-%d", i%10)), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	m := db.Metrics()
	if m.FlushSkips == 0 {
		t.Fatal("no FLUSH_TH skips on an extreme-skew workload")
	}
	if m.Flushes > m.FlushSkips {
		t.Fatalf("flushes (%d) dominate skips (%d) despite tiny working set", m.Flushes, m.FlushSkips)
	}
	// All ten keys still readable with the freshest value.
	for i := 0; i < 10; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("hot-%d", i))); err != nil {
			t.Fatalf("hot key lost: %v", err)
		}
	}
}

// TestTriadDiskDefersCompaction: on a uniform workload (low L0 overlap),
// TRIAD-DISK records deferrals and tolerates more L0 files than the
// baseline trigger.
func TestTriadDiskDefersCompaction(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	o.TriadDisk = true
	o.L0CompactionTrigger = 2
	o.MaxFilesL0 = 8
	o.DisableAutoCompaction = true
	db := mustOpen(t, o)
	defer db.Close()
	// Three flushes of disjoint key ranges → negligible overlap.
	for batch := 0; batch < 3; batch++ {
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("b%d-key-%04d", batch, i)
			if err := db.Put([]byte(key), make([]byte, 64)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ran, err := db.CompactOnce()
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("compaction ran despite low L0 overlap")
	}
	if db.Metrics().CompactionsDeferred == 0 {
		t.Fatal("no deferral recorded")
	}

	// Now overlap: rewrite the same ranges → high overlap ratio.
	for batch := 0; batch < 3; batch++ {
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("b%d-key-%04d", batch, i)
			if err := db.Put([]byte(key), make([]byte, 64)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ran, err = db.CompactOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatalf("compaction still deferred with duplicate L0 contents (L0=%d files)", db.NumLevelFiles()[0])
	}
	// The multi-way merge must leave L0 empty.
	if got := db.NumLevelFiles()[0]; got != 0 {
		t.Fatalf("L0 has %d files after TRIAD-DISK compaction, want 0", got)
	}
}

// TestTriadDiskForcedAtMaxFiles: L0 never exceeds MaxFilesL0 even with
// zero overlap.
func TestTriadDiskForcedAtMaxFiles(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	o.TriadDisk = true
	o.L0CompactionTrigger = 2
	o.MaxFilesL0 = 4
	o.DisableAutoCompaction = true
	db := mustOpen(t, o)
	defer db.Close()
	for batch := 0; batch < 4; batch++ {
		for i := 0; i < 150; i++ {
			key := fmt.Sprintf("b%d-key-%04d", batch, i)
			if err := db.Put([]byte(key), make([]byte, 64)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.NumLevelFiles()[0]; got < 4 {
		t.Fatalf("setup failed: only %d L0 files", got)
	}
	ran, err := db.CompactOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("compaction not forced at MaxFilesL0")
	}
}

// TestTriadLogFlushWritesOnlyIndex: with TRIAD-LOG, flushed bytes are a
// small fraction of the logged bytes, and reads still see every key.
func TestTriadLogFlushWritesOnlyIndex(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	o.TriadLog = true
	// Realistic-ish memtable so the fixed per-file metadata (4 KB HLL
	// sketch, Bloom filter) amortizes over the index entries.
	o.MemtableBytes = 256 << 10
	o.CommitLogBytes = 1 << 20
	db := mustOpen(t, o)
	defer db.Close()
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%06d", i)
		if err := db.Put([]byte(key), make([]byte, 200)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.Flushes == 0 {
		t.Fatal("nothing flushed")
	}
	if m.BytesFlushed*4 > m.BytesLogged {
		t.Fatalf("CL index flush (%d B) not ≪ logged bytes (%d B)", m.BytesFlushed, m.BytesLogged)
	}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%06d", i)
		if _, err := db.Get([]byte(key)); err != nil {
			t.Fatalf("Get(%s) after CL flush: %v", key, err)
		}
	}
	// The commit logs backing CL-SSTables must still exist.
	logs, _ := fs.List("")
	var logCount int
	for _, n := range logs {
		if strings.HasSuffix(n, ".log") {
			logCount++
		}
	}
	if logCount < 2 { // current log + at least one pinned CL log
		t.Fatalf("expected pinned CL logs, found %d .log files", logCount)
	}
}

// TestTriadLogCompactionReclaimsLogs: after compaction consumes
// CL-SSTables, their pinned logs are deleted.
func TestTriadLogCompactionReclaimsLogs(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	o.TriadLog = true
	o.DisableAutoCompaction = true
	db := mustOpen(t, o)
	defer db.Close()
	for round := 0; round < 5; round++ {
		for i := 0; i < 300; i++ {
			key := fmt.Sprintf("key-%05d", i)
			if err := db.Put([]byte(key), make([]byte, 100)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	countLogs := func() int {
		names, _ := fs.List("")
		n := 0
		for _, name := range names {
			if strings.HasSuffix(name, ".log") {
				n++
			}
		}
		return n
	}
	before := countLogs()
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	after := countLogs()
	if after >= before {
		t.Fatalf("logs not reclaimed by compaction: %d -> %d", before, after)
	}
	// Without TRIAD-DISK the baseline policy compacts one L0 file at a
	// time until the level is back under its trigger.
	if got := db.NumLevelFiles()[0]; got >= o.L0CompactionTrigger {
		t.Fatalf("L0 still at/over trigger after CompactAll: %d files", got)
	}
	// Everything still readable from the compacted classic tables.
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%05d", i)
		if _, err := db.Get([]byte(key)); err != nil {
			t.Fatalf("Get(%s) after compaction: %v", key, err)
		}
	}
}

// TestRecoveryWithCLSSTables: a TRIAD-LOG store with live CL-SSTables
// (pinned logs) recovers fully.
func TestRecoveryWithCLSSTables(t *testing.T) {
	fs := vfs.NewMemFS()
	o := triadSmall(fs)
	o.DisableAutoCompaction = true // keep CL-SSTables alive in L0
	db := mustOpen(t, o)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%05d", i%500)
		if err := db.Put([]byte(key), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	hasCL := false
	names, _ := fs.List("")
	for _, n := range names {
		if strings.HasSuffix(n, ".clidx") {
			hasCL = true
		}
	}
	if !hasCL {
		t.Skip("no CL-SSTable materialized; adjust sizes")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, o)
	defer db2.Close()
	for i := 1500; i < 2000; i++ { // the final value of each key
		key := fmt.Sprintf("key-%05d", i%500)
		v, err := db2.Get([]byte(key))
		if err != nil {
			t.Fatalf("recovered Get(%s): %v", key, err)
		}
		if string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("recovered Get(%s) = %q, want val-%d", key, v, i)
		}
	}
}

// TestDisableBackgroundIO: sealed memtables are discarded; the
// pre-populated tree keeps serving reads (Figure 2's No-BG-I/O system).
func TestDisableBackgroundIO(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	db := mustOpen(t, o)
	defer db.Close()
	for i := 0; i < 1000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte("stable")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	pre := db.Metrics()
	db.SetDisableBackgroundIO(true)
	for i := 0; i < 5000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%04d", i%1000)), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.BytesFlushed != pre.BytesFlushed || m.BytesCompacted != pre.BytesCompacted {
		t.Fatalf("background I/O happened while disabled: flushed %d->%d compacted %d->%d",
			pre.BytesFlushed, m.BytesFlushed, pre.BytesCompacted, m.BytesCompacted)
	}
	// Pre-populated values still served.
	v, err := db.Get([]byte("key-0999"))
	if err != nil {
		t.Fatal(err)
	}
	_ = v
}

// TestWALFaultSurfacesError: an injected write failure on the commit log
// reaches the caller.
func TestWALFaultSurfacesError(t *testing.T) {
	fs := vfs.NewMemFS()
	db := mustOpen(t, smallOptions(fs))
	defer db.Close()
	if err := db.Put([]byte("ok"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	fs.FailEveryNthWrite(1)
	if err := db.Put([]byte("boom"), []byte("v")); err == nil {
		t.Fatal("write with failing FS succeeded")
	}
	fs.FailEveryNthWrite(0)
	if err := db.Put([]byte("ok2"), []byte("v")); err != nil {
		t.Fatalf("write after clearing fault: %v", err)
	}
}

// TestFlushFaultSetsBackgroundError: a failure during flush is surfaced
// on subsequent writes rather than silently dropped.
func TestFlushFaultSetsBackgroundError(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	db := mustOpen(t, o)
	defer db.Close()
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	fs.FailEveryNthWrite(3)
	db.Flush() // may or may not error directly
	fs.FailEveryNthWrite(0)
	// Eventually the background error must surface on the write path.
	var sawErr bool
	for i := 0; i < 100 && !sawErr; i++ {
		if err := db.Put([]byte("probe"), []byte("v")); err != nil && !errors.Is(err, ErrClosed) {
			sawErr = true
		}
	}
	if !sawErr {
		t.Skip("flush completed before fault injection engaged")
	}
}

// TestTombstonesDroppedAtBottom: deleting everything and compacting to
// the bottom level leaves zero entries on disk.
func TestTombstonesDroppedAtBottom(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	o.DisableAutoCompaction = true
	db := mustOpen(t, o)
	defer db.Close()
	for i := 0; i < 300; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := db.Delete([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	it, err := db.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for it.Next() {
		t.Fatalf("live entry %q after deleting everything", it.Key())
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	// A second full compaction pass should leave a tree whose levels
	// hold no entries (tombstones reclaimed at the bottom).
	sizes := db.LevelSizes()
	var total int64
	for _, s := range sizes[1:] {
		total += s
	}
	if total != 0 {
		t.Logf("note: %d bytes of deeper-level data remain (tombstones pending)", total)
	}
}

// TestHotKeySkipDuringCompaction: with TRIAD-MEM, stale on-disk versions
// of currently-hot keys are dropped by L0 compaction, and the memtable
// version survives.
func TestHotKeySkipDuringCompaction(t *testing.T) {
	fs := vfs.NewMemFS()
	o := smallOptions(fs)
	o.TriadMem = true
	o.HotPolicy = memtable.HotAboveMean
	o.DisableAutoCompaction = true
	db := mustOpen(t, o)
	defer db.Close()
	// Create L0 files containing old versions of "hot".
	for round := 0; round < 3; round++ {
		if err := db.Put([]byte("hot"), []byte(fmt.Sprintf("old-%d", round))); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if err := db.Put([]byte(fmt.Sprintf("cold-%d-%04d", round, i)), make([]byte, 64)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Make "hot" live in the memtable now.
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte("hot"), []byte("fresh")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("hot"))
	if err != nil || string(v) != "fresh" {
		t.Fatalf("hot key after compaction = %q, %v", v, err)
	}
	if db.Metrics().EntriesDiscarded == 0 {
		t.Fatal("no hot-key versions were skipped during compaction")
	}
}
