package lsm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/vfs"
)

// smallOptions returns options scaled down so flushes and compactions
// happen within a few hundred writes.
func smallOptions(fs *vfs.MemFS) Options {
	o := DefaultOptions(fs)
	o.MemtableBytes = 16 << 10
	o.CommitLogBytes = 64 << 10
	o.FlushThresholdBytes = 8 << 10
	o.BaseLevelBytes = 64 << 10
	o.TargetFileBytes = 16 << 10
	o.BlockBytes = 1 << 10
	o.HotFraction = 0.10
	o.Seed = 42
	return o
}

func triadSmall(fs *vfs.MemFS) Options {
	o := smallOptions(fs)
	o.TriadMem = true
	o.TriadDisk = true
	o.TriadLog = true
	return o
}

func mustOpen(t testing.TB, o Options) *DB {
	t.Helper()
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBasicPutGetDelete(t *testing.T) {
	for _, mode := range []string{"baseline", "triad"} {
		t.Run(mode, func(t *testing.T) {
			fs := vfs.NewMemFS()
			o := smallOptions(fs)
			if mode == "triad" {
				o = triadSmall(fs)
			}
			db := mustOpen(t, o)
			defer db.Close()

			if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
				t.Fatal(err)
			}
			v, err := db.Get([]byte("k1"))
			if err != nil || string(v) != "v1" {
				t.Fatalf("Get = %q, %v", v, err)
			}
			if _, err := db.Get([]byte("absent")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("absent Get = %v", err)
			}
			if err := db.Put([]byte("k1"), []byte("v2")); err != nil {
				t.Fatal(err)
			}
			v, _ = db.Get([]byte("k1"))
			if string(v) != "v2" {
				t.Fatalf("updated Get = %q", v)
			}
			if err := db.Delete([]byte("k1")); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Get([]byte("k1")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted Get = %v", err)
			}
			if err := db.Put([]byte(""), []byte("v")); err == nil {
				t.Fatal("empty key accepted")
			}
		})
	}
}

func TestFlushAndReadBack(t *testing.T) {
	for _, mode := range []string{"baseline", "triad"} {
		t.Run(mode, func(t *testing.T) {
			fs := vfs.NewMemFS()
			o := smallOptions(fs)
			if mode == "triad" {
				o = triadSmall(fs)
			}
			db := mustOpen(t, o)
			defer db.Close()
			for i := 0; i < 500; i++ {
				if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			files := db.NumLevelFiles()
			total := 0
			for _, n := range files {
				total += n
			}
			if total == 0 {
				t.Fatal("flush produced no files")
			}
			for i := 0; i < 500; i++ {
				v, err := db.Get([]byte(fmt.Sprintf("key-%04d", i)))
				if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
					t.Fatalf("Get key-%04d = %q, %v", i, v, err)
				}
			}
			m := db.Metrics()
			if m.Flushes == 0 {
				t.Fatal("no flush counted")
			}
		})
	}
}

// TestModelBased drives a random workload against a map oracle across all
// four engine configurations, with overwrites, deletes and enough volume
// to force flushes and compactions.
func TestModelBased(t *testing.T) {
	configs := map[string]func(*vfs.MemFS) Options{
		"baseline": smallOptions,
		"mem-only": func(fs *vfs.MemFS) Options { o := smallOptions(fs); o.TriadMem = true; return o },
		"disk-only": func(fs *vfs.MemFS) Options {
			o := smallOptions(fs)
			o.TriadDisk = true
			return o
		},
		"log-only": func(fs *vfs.MemFS) Options { o := smallOptions(fs); o.TriadLog = true; return o },
		"triad":    triadSmall,
	}
	for name, mk := range configs {
		t.Run(name, func(t *testing.T) {
			fs := vfs.NewMemFS()
			db := mustOpen(t, mk(fs))
			defer db.Close()
			oracle := map[string]string{}
			rng := rand.New(rand.NewSource(99))
			const keySpace = 400
			for i := 0; i < 8000; i++ {
				k := fmt.Sprintf("key-%04d", rng.Intn(keySpace))
				switch rng.Intn(10) {
				case 0: // delete
					if err := db.Delete([]byte(k)); err != nil {
						t.Fatal(err)
					}
					delete(oracle, k)
				default: // put (skewed value sizes)
					v := fmt.Sprintf("v-%d-%s", i, string(make([]byte, rng.Intn(100))))
					if err := db.Put([]byte(k), []byte(v)); err != nil {
						t.Fatal(err)
					}
					oracle[k] = v
				}
				if i%1000 == 999 {
					// Periodic full verification.
					for k, want := range oracle {
						got, err := db.Get([]byte(k))
						if err != nil || string(got) != want {
							t.Fatalf("op %d: Get(%s) = %q, %v; want %q", i, k, got, err, want)
						}
					}
				}
			}
			// Every key, including deleted ones.
			for i := 0; i < keySpace; i++ {
				k := fmt.Sprintf("key-%04d", i)
				got, err := db.Get([]byte(k))
				want, live := oracle[k]
				if live {
					if err != nil || string(got) != want {
						t.Fatalf("final Get(%s) = %q, %v; want %q", k, got, err, want)
					}
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("final Get(%s) = %q, %v; want ErrNotFound", k, got, err)
				}
			}
			// Iterator equals oracle.
			it, err := db.NewIterator(nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for it.Next() {
				if oracle[string(it.Key())] != string(it.Value()) {
					t.Fatalf("iterator %s = %q, oracle %q", it.Key(), it.Value(), oracle[string(it.Key())])
				}
				n++
			}
			if err := it.Close(); err != nil {
				t.Fatal(err)
			}
			if n != len(oracle) {
				t.Fatalf("iterator has %d entries, oracle %d", n, len(oracle))
			}
		})
	}
}

func TestRecovery(t *testing.T) {
	for _, mode := range []string{"baseline", "triad"} {
		t.Run(mode, func(t *testing.T) {
			fs := vfs.NewMemFS()
			mk := smallOptions
			if mode == "triad" {
				mk = triadSmall
			}
			db := mustOpen(t, mk(fs))
			oracle := map[string]string{}
			for i := 0; i < 3000; i++ {
				k := fmt.Sprintf("key-%04d", i%300)
				v := fmt.Sprintf("val-%d", i)
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				oracle[k] = v
			}
			db.Delete([]byte("key-0000"))
			delete(oracle, "key-0000")
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db2 := mustOpen(t, mk(fs))
			defer db2.Close()
			for k, want := range oracle {
				got, err := db2.Get([]byte(k))
				if err != nil || string(got) != want {
					t.Fatalf("after recovery Get(%s) = %q, %v; want %q", k, got, err, want)
				}
			}
			if _, err := db2.Get([]byte("key-0000")); !errors.Is(err, ErrNotFound) {
				t.Fatal("deleted key resurrected by recovery")
			}
			// Writes continue after recovery.
			if err := db2.Put([]byte("post"), []byte("recovery")); err != nil {
				t.Fatal(err)
			}
			v, _ := db2.Get([]byte("post"))
			if string(v) != "recovery" {
				t.Fatal("write after recovery lost")
			}
		})
	}
}

// TestRecoveryWithoutClose simulates a crash: the DB is abandoned (its
// background goroutine is stopped via Close after we null out the work,
// but the *files* are what recovery reads — so we just reopen the same
// MemFS without Close and accept both copies running; MemFS is safe).
func TestRecoveryWithoutClose(t *testing.T) {
	fs := vfs.NewMemFS()
	db := mustOpen(t, smallOptions(fs))
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no Close, no Flush. The commit log holds everything.
	db2 := mustOpen(t, smallOptions(fs))
	defer db2.Close()
	for i := 0; i < 200; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("k%03d", i))); err != nil {
			t.Fatalf("crash recovery lost k%03d: %v", i, err)
		}
	}
	db.Close() // silence the leaked worker
}

func TestConcurrentReadersWriters(t *testing.T) {
	fs := vfs.NewMemFS()
	db := mustOpen(t, triadSmall(fs))
	defer db.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("w%d-key-%03d", w, i%100)
				if err := db.Put([]byte(k), []byte(fmt.Sprintf("v%d", i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("w%d-key-%03d", r, i%100)
				if _, err := db.Get([]byte(k)); err != nil && !errors.Is(err, ErrNotFound) {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All final values visible.
	for w := 0; w < 4; w++ {
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("w%d-key-%03d", w, i)
			if _, err := db.Get([]byte(k)); err != nil {
				t.Fatalf("lost %s: %v", k, err)
			}
		}
	}
}

func TestIteratorRange(t *testing.T) {
	fs := vfs.NewMemFS()
	db := mustOpen(t, smallOptions(fs))
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("%03d", i)), []byte("v"))
	}
	it, err := db.NewIterator([]byte("010"), []byte("020"))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !it.Next() || string(it.Key()) != "010" {
		t.Fatalf("first = %q", it.Key())
	}
	n := 1
	for it.Next() {
		n++
	}
	if n != 10 {
		t.Fatalf("range scan returned %d entries, want 10", n)
	}
}

func TestUseAfterClose(t *testing.T) {
	fs := vfs.NewMemFS()
	db := mustOpen(t, smallOptions(fs))
	db.Put([]byte("k"), []byte("v"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if err := db.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close = %v", err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close = %v", err)
	}
	if it, err := db.NewIterator(nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewIterator after close = %v", err)
	} else if it != nil {
		it.Close()
	}
}

func TestOpenRequiresFS(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without FS succeeded")
	}
}
