package lsm

import (
	"repro/internal/bgsched"
	"repro/internal/compaction"
	"repro/internal/memtable"
	"repro/internal/obs"
	"repro/internal/sstable"
	"repro/internal/vfs"
)

// Options configures a DB. The zero value is not usable; start from
// DefaultOptions (the RocksDB-like baseline) or TriadOptions (all three
// techniques on, with the paper's parameters: overlap threshold 0.4, max 6
// L0 files, top-1% hot keys).
type Options struct {
	// FS is the filesystem; required.
	FS vfs.FS

	// MemtableBytes caps the memory component Cm; a flush is scheduled
	// when it fills (paper §2: "a few MBs to tens of MBs"; the synthetic
	// evaluation uses 4 MB).
	MemtableBytes int64
	// CommitLogBytes caps the commit log; exceeding it also triggers a
	// flush even when the memtable has room (paper §2-§3 — the trigger
	// data skew abuses).
	CommitLogBytes int64
	// SyncWAL forces a sync per append (off in the experiments, as in
	// the paper's batched logging).
	SyncWAL bool

	// TriadMem enables hot/cold key separation at flush (§4.1).
	TriadMem bool
	// TriadDisk enables HLL-based deferred L0 compaction (§4.2).
	TriadDisk bool
	// TriadLog enables CL-SSTable index-only flushes (§4.3).
	TriadLog bool

	// HotFraction is TRIAD-MEM's PERC_HOT: the fraction of memtable
	// entries eligible to stay hot (paper's evaluation: top 1%).
	HotFraction float64
	// HotPolicy selects the hot-key detector (§4.1 discusses top-K and
	// above-mean selection).
	HotPolicy memtable.HotPolicy
	// FlushThresholdBytes is FLUSH_TH: when a log-full flush fires with a
	// memtable smaller than this, TRIAD-MEM skips the flush and rewrites
	// a compact commit log instead (Algorithm 1).
	FlushThresholdBytes int64
	// AutoTuneHotFraction enables the hill-climbing K tuner the paper
	// sketches as future work (§4.1): the hot budget grows while
	// multi-update keys keep spilling to disk and shrinks while it sits
	// unused. HotFraction is the starting point.
	AutoTuneHotFraction bool

	// OverlapRatioThreshold is TRIAD-DISK's compaction gate (paper: 0.4).
	OverlapRatioThreshold float64
	// MaxFilesL0 forces compaction regardless of overlap (paper: 6).
	MaxFilesL0 int
	// L0CompactionTrigger is the baseline L0 file-count trigger
	// (RocksDB default: 4).
	L0CompactionTrigger int
	// L0StallFiles stops writes while L0 holds at least this many files,
	// RocksDB's level0_stop_writes_trigger: the backpressure that makes
	// user throughput feel compaction debt (paper §3's bottleneck).
	// It must exceed MaxFilesL0 so TRIAD-DISK can still defer.
	L0StallFiles int

	// BaseLevelBytes is the L1 size target; each deeper level is
	// LevelMultiplier times larger.
	BaseLevelBytes  int64
	LevelMultiplier int64
	// TargetFileBytes caps each compaction output file.
	TargetFileBytes int64
	// BlockBytes is the SSTable data-block size.
	BlockBytes int

	// MaxImmutableMemtables bounds the flush queue; writers stall beyond
	// it (RocksDB's write-stall behaviour).
	MaxImmutableMemtables int

	// BlockCacheBytes sizes the data-block cache (0 disables it). Cache
	// hits do not count as disk accesses for read amplification, matching
	// the substrate's block-cache behaviour. Ignored when BlockCache is
	// set.
	BlockCacheBytes int64
	// BlockCache, when non-nil, is a caller-owned cache shared with other
	// engines (the sharded store injects one store-wide cache so memory
	// follows hot shards instead of being pre-split). The DB takes a
	// tenant handle on it and releases only its own blocks at Close; the
	// caller keeps ownership of the cache itself.
	BlockCache *sstable.Cache
	// PlainBlockCache disables the scan-resistant admission policy on the
	// DB-private cache built from BlockCacheBytes (single-segment plain
	// LRU — the pre-PR-7 behaviour, kept for baselines). Ignored when
	// BlockCache is set.
	PlainBlockCache bool

	// SizeTieredCompaction switches from leveled to a Cassandra-style
	// size-tiered strategy (§2 of the paper notes TRIAD adapts to it;
	// TRIAD-DISK then uses its HLL sketches to pick the most
	// duplicate-dense merge bucket). All tables live in L0.
	SizeTieredCompaction bool
	// MinMergeWidth / MaxMergeWidth bound a size-tiered merge.
	MinMergeWidth, MaxMergeWidth int

	// Scheduler, when non-nil, replaces the engine's two private
	// background goroutines with tasks on a shared worker pool: flushes
	// and compaction rounds are submitted by priority class (flush >
	// L0→L1 > deeper levels), labeled with EventShard for per-shard
	// fairness, and large leveled compactions split into parallel
	// subcompaction slices (see MaxSubcompactions). The caller owns the
	// pool; the sharded store injects one store-wide pool so N shards'
	// background I/O is centrally arbitrated. nil preserves the classic
	// two-goroutine-per-DB behaviour, kept as the measurable baseline.
	Scheduler *bgsched.Pool
	// MaxSubcompactions caps how many parallel key-range slices one
	// leveled compaction may split into. 0 means "up to the pool's
	// worker count"; 1 disables splitting. Only consulted when
	// Scheduler is set — the baseline's compactions are monolithic.
	MaxSubcompactions int

	// DisableBackgroundIO reproduces Figure 2's "RocksDB No BG I/O":
	// sealed memtables are discarded instead of flushed and no
	// compaction runs. Reads are served from the pre-populated tree.
	DisableBackgroundIO bool
	// DisableAutoCompaction leaves compaction to explicit CompactOnce /
	// CompactAll calls (used by tests).
	DisableAutoCompaction bool

	// Seed drives memtable skiplist randomness.
	Seed int64

	// Events, when non-nil, receives a structured entry for every
	// background operation (flush, compaction, snapshot zombie-GC, write
	// stall). EventShard labels them; sharded stores pass each shard's
	// index so a merged journal stays attributable.
	Events *obs.Journal
	// EventShard is the shard index stamped on emitted events.
	EventShard int
	// Ledger, when non-nil, is charged with every disk byte the engine
	// moves, classified by source (user payload, WAL, flush, compaction
	// read/write, snapshot-GC reclaim). Sharded stores pass one ledger
	// per shard, which is what turns the aggregate WA number into a
	// per-shard decomposition.
	Ledger *obs.Ledger
}

// DefaultOptions returns the baseline engine configuration ("RocksDB" in
// the figures): leveled compaction, classic flushes, no TRIAD techniques.
func DefaultOptions(fs vfs.FS) Options {
	return Options{
		FS:                    fs,
		MemtableBytes:         4 << 20,
		CommitLogBytes:        16 << 20,
		HotFraction:           0.01,
		FlushThresholdBytes:   2 << 20,
		OverlapRatioThreshold: 0.4,
		MaxFilesL0:            6,
		L0CompactionTrigger:   4,
		L0StallFiles:          12,
		BaseLevelBytes:        8 << 20,
		LevelMultiplier:       10,
		TargetFileBytes:       2 << 20,
		BlockBytes:            4 << 10,
		MaxImmutableMemtables: 2,
	}
}

// TriadOptions returns the full-TRIAD configuration with the paper's
// parameters (§5.1).
func TriadOptions(fs vfs.FS) Options {
	o := DefaultOptions(fs)
	o.TriadMem = true
	o.TriadDisk = true
	o.TriadLog = true
	return o
}

func (o *Options) withDefaults() {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.CommitLogBytes <= 0 {
		o.CommitLogBytes = 4 * o.MemtableBytes
	}
	if o.FlushThresholdBytes <= 0 {
		o.FlushThresholdBytes = o.MemtableBytes / 2
	}
	if o.HotFraction <= 0 {
		o.HotFraction = 0.01
	}
	if o.OverlapRatioThreshold <= 0 {
		o.OverlapRatioThreshold = 0.4
	}
	if o.MaxFilesL0 <= 0 {
		o.MaxFilesL0 = 6
	}
	if o.L0CompactionTrigger <= 0 {
		o.L0CompactionTrigger = 4
	}
	if o.L0StallFiles <= 0 {
		o.L0StallFiles = 12
	}
	if o.L0StallFiles <= o.MaxFilesL0 {
		o.L0StallFiles = o.MaxFilesL0 + 2
	}
	if o.BaseLevelBytes <= 0 {
		o.BaseLevelBytes = 8 << 20
	}
	if o.LevelMultiplier <= 0 {
		o.LevelMultiplier = 10
	}
	if o.TargetFileBytes <= 0 {
		o.TargetFileBytes = 2 << 20
	}
	if o.BlockBytes <= 0 {
		o.BlockBytes = 4 << 10
	}
	if o.MaxImmutableMemtables <= 0 {
		o.MaxImmutableMemtables = 2
	}
}

func (o Options) pickerOptions() compaction.PickerOptions {
	strategy := compaction.Leveled
	if o.SizeTieredCompaction {
		strategy = compaction.SizeTiered
	}
	return compaction.PickerOptions{
		Strategy:              strategy,
		L0CompactionTrigger:   o.L0CompactionTrigger,
		BaseLevelBytes:        o.BaseLevelBytes,
		Multiplier:            o.LevelMultiplier,
		TriadDisk:             o.TriadDisk,
		OverlapRatioThreshold: o.OverlapRatioThreshold,
		MaxFilesL0:            o.MaxFilesL0,
		MinMergeWidth:         o.MinMergeWidth,
		MaxMergeWidth:         o.MaxMergeWidth,
	}
}
