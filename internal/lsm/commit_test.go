package lsm

import (
	"strings"
	"testing"

	"repro/internal/vfs"
)

func openCommitTestDB(t *testing.T) *DB {
	t.Helper()
	o := TriadOptions(vfs.NewMemFS())
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestCommitAtExternalSequence: CommitAt commits at the given sequence,
// the per-DB counter becomes a view of it, and a regressing sequence is
// rejected without committing anything.
func TestCommitAtExternalSequence(t *testing.T) {
	db := openCommitTestDB(t)
	b := &Batch{}
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	if err := db.CommitAt(10, b); err != nil {
		t.Fatal(err)
	}
	if got := db.LastSeq(); got != 10 {
		t.Fatalf("LastSeq = %d, want 10", got)
	}
	// Internal allocation resumes above the external clock.
	if err := db.Put([]byte("c"), []byte("3")); err != nil {
		t.Fatal(err)
	}
	if got := db.LastSeq(); got != 11 {
		t.Fatalf("LastSeq after Put = %d, want 11", got)
	}
	// Regressing sequence: rejected, nothing written.
	bad := &Batch{}
	bad.Put([]byte("a"), []byte("overwrite"))
	err := db.CommitAt(11, bad)
	if err == nil || !strings.Contains(err.Error(), "not after") {
		t.Fatalf("CommitAt(11) after 11 = %v, want sequence-regression error", err)
	}
	if bad.Committed() {
		t.Fatal("rejected batch marked committed")
	}
	if v, err := db.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v; want 1", v, err)
	}
	if err := db.CommitAt(0, bad); err == nil {
		t.Fatal("CommitAt(0) succeeded, want error")
	}
}

// TestCommitAtBatchSharesSequence: every record of a batch commits at
// the batch's one sequence — a snapshot pinned at or above it sees the
// whole batch, one pinned below sees none of it.
func TestCommitAtBatchSharesSequence(t *testing.T) {
	db := openCommitTestDB(t)
	init := &Batch{}
	init.Put([]byte("x"), []byte("old"))
	init.Put([]byte("y"), []byte("old"))
	if err := db.CommitAt(5, init); err != nil {
		t.Fatal(err)
	}
	before, err := db.NewSnapshotAt(7)
	if err != nil {
		t.Fatal(err)
	}
	defer before.Close()

	b := &Batch{}
	b.Put([]byte("x"), []byte("new"))
	b.Put([]byte("y"), []byte("new"))
	if err := db.CommitAt(8, b); err != nil {
		t.Fatal(err)
	}
	after, err := db.NewSnapshotAt(8)
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()

	for _, k := range []string{"x", "y"} {
		if v, err := before.Get([]byte(k)); err != nil || string(v) != "old" {
			t.Fatalf("before.Get(%s) = %q, %v; want old", k, v, err)
		}
		if v, err := after.Get([]byte(k)); err != nil || string(v) != "new" {
			t.Fatalf("after.Get(%s) = %q, %v; want new", k, v, err)
		}
	}
}

// TestNewSnapshotAtBounds: a pin below the last committed sequence is
// an error (the view is gone); a pin above it is a valid future epoch
// that filters later writes.
func TestNewSnapshotAtBounds(t *testing.T) {
	db := openCommitTestDB(t)
	b := &Batch{}
	b.Put([]byte("k"), []byte("v1"))
	if err := db.CommitAt(20, b); err != nil {
		t.Fatal(err)
	}
	if s19, err := db.NewSnapshotAt(19); err == nil {
		s19.Close()
		t.Fatal("NewSnapshotAt(19) after commit 20 succeeded, want error")
	}
	s, err := db.NewSnapshotAt(25)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A later commit (epoch 30 > pin 25) is invisible, and the pinned
	// version of the in-place-overwritten key survives via the overlay.
	b2 := &Batch{}
	b2.Put([]byte("k"), []byte("v2"))
	if err := db.CommitAt(30, b2); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get([]byte("k")); err != nil || string(v) != "v1" {
		t.Fatalf("snapshot Get = %q, %v; want v1", v, err)
	}
	if v, err := db.Get([]byte("k")); err != nil || string(v) != "v2" {
		t.Fatalf("live Get = %q, %v; want v2", v, err)
	}
}

// TestApplyStillSelfSequences: the plain Apply path allocates its own
// sequence (the standalone, unsharded mode) and coexists with reads.
func TestApplyStillSelfSequences(t *testing.T) {
	db := openCommitTestDB(t)
	b := &Batch{}
	b.Put([]byte("p"), []byte("q"))
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if got := db.LastSeq(); got != 1 {
		t.Fatalf("LastSeq = %d, want 1", got)
	}
	if !b.Committed() {
		t.Fatal("batch not marked committed")
	}
	if err := db.Apply(b); err == nil {
		t.Fatal("re-Apply of committed batch succeeded")
	}
	var empty Batch
	empty.Put(nil, []byte("v"))
	if err := db.Apply(&empty); err == nil || !strings.Contains(err.Error(), "empty key") {
		t.Fatalf("empty-key batch = %v, want empty-key error", err)
	}
}
