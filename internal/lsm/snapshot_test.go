package lsm

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/vfs"
)

// TestSnapshotFrozenView: a snapshot's Get and iterator ignore every
// write that lands after the pin — including in-place overwrites of
// live-memtable entries (the overlay path), new keys, and deletes.
func TestSnapshotFrozenView(t *testing.T) {
	for _, mode := range []string{"baseline", "triad"} {
		t.Run(mode, func(t *testing.T) {
			fs := vfs.NewMemFS()
			mk := smallOptions
			if mode == "triad" {
				mk = triadSmall
			}
			db := mustOpen(t, mk(fs))
			defer db.Close()
			for i := 0; i < 500; i++ {
				if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("v1-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			s, err := db.NewSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			// Overwrite everything, delete some, add new keys.
			for i := 0; i < 500; i++ {
				if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte("v2")); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 100; i++ {
				if err := db.Delete([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 500; i < 600; i++ {
				if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte("new")); err != nil {
					t.Fatal(err)
				}
			}

			// Point reads: the snapshot sees v1 everywhere, including the
			// deleted range, and none of the new keys.
			for _, i := range []int{0, 50, 123, 499} {
				k := fmt.Sprintf("key-%04d", i)
				v, err := s.Get([]byte(k))
				if err != nil || string(v) != fmt.Sprintf("v1-%d", i) {
					t.Fatalf("snapshot Get(%s) = %q, %v; want v1-%d", k, v, err, i)
				}
			}
			if _, err := s.Get([]byte("key-0550")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("snapshot sees post-pin key: %v", err)
			}
			// Live reads have moved on.
			if v, err := db.Get([]byte("key-0200")); err != nil || string(v) != "v2" {
				t.Fatalf("live Get = %q, %v; want v2", v, err)
			}
			if _, err := db.Get([]byte("key-0000")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("live Get of deleted key = %v", err)
			}

			// The snapshot scan equals the pinned state exactly.
			it, err := s.NewIterator(nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for it.Next() {
				want := fmt.Sprintf("v1-%d", n)
				if string(it.Key()) != fmt.Sprintf("key-%04d", n) || string(it.Value()) != want {
					t.Fatalf("entry %d = (%q, %q), want (key-%04d, %s)", n, it.Key(), it.Value(), n, want)
				}
				n++
			}
			if err := it.Close(); err != nil {
				t.Fatal(err)
			}
			if n != 500 {
				t.Fatalf("snapshot scan saw %d entries, want 500", n)
			}
		})
	}
}

// TestSnapshotSurvivesFlushAndCompaction: files a snapshot pins outlive
// the compactions that consume them (zombies), and are deleted when the
// snapshot closes.
func TestSnapshotSurvivesFlushAndCompaction(t *testing.T) {
	fs := vfs.NewMemFS()
	db := mustOpen(t, smallOptions(fs))
	defer db.Close()
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("v1-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Overwrite everything and force the tree through flushes and full
	// compactions: every file the snapshot pinned is consumed.
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}

	beforeClose, err := fs.List("")
	if err != nil {
		t.Fatal(err)
	}

	// The snapshot still reads the pre-compaction state from the pinned
	// (now-zombie) files.
	for _, i := range []int{0, 777, 1999} {
		k := fmt.Sprintf("key-%05d", i)
		v, err := s.Get([]byte(k))
		if err != nil || string(v) != fmt.Sprintf("v1-%d", i) {
			t.Fatalf("snapshot Get(%s) after compaction = %q, %v", k, v, err)
		}
	}
	it, err := s.NewIterator([]byte("key-00100"), []byte("key-00110"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next() {
		if string(it.Value()) != fmt.Sprintf("v1-%d", 100+n) {
			t.Fatalf("scan after compaction: %s = %q", it.Key(), it.Value())
		}
		n++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("scan saw %d entries, want 10", n)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	afterClose, err := fs.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(afterClose) >= len(beforeClose) {
		t.Fatalf("closing the snapshot freed no files: %d before, %d after", len(beforeClose), len(afterClose))
	}
	if db.OpenSnapshots() != 0 {
		t.Fatalf("OpenSnapshots = %d after close", db.OpenSnapshots())
	}
}

// TestSnapshotClosedErrors: reads on a closed snapshot fail with
// ErrSnapshotClosed; Close is idempotent; iterators opened before Close
// stay valid until they close (they hold their own pin).
func TestSnapshotClosedErrors(t *testing.T) {
	db := mustOpen(t, smallOptions(vfs.NewMemFS()))
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	s, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	it, err := s.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close:", err)
	}
	if _, err := s.Get([]byte("k000")); !errors.Is(err, ErrSnapshotClosed) {
		t.Fatalf("Get after Close = %v, want ErrSnapshotClosed", err)
	}
	if it2, err := s.NewIterator(nil, nil); !errors.Is(err, ErrSnapshotClosed) {
		t.Fatalf("NewIterator after Close = %v, want ErrSnapshotClosed", err)
	} else if it2 != nil {
		it2.Close()
	}
	// The pre-Close iterator keeps working: it holds a pin reference.
	n := 0
	for it.Next() {
		n++
	}
	if n != 100 {
		t.Fatalf("iterator after snapshot Close saw %d entries, want 100", n)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRefcountAccounting: overlapping snapshots pin shared
// files; releases are exact (no file freed early, none leaked).
func TestSnapshotRefcountAccounting(t *testing.T) {
	fs := vfs.NewMemFS()
	db := mustOpen(t, smallOptions(fs))
	defer db.Close()
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v1"))
	}
	db.Flush()
	s1, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if db.OpenSnapshots() != 2 {
		t.Fatalf("OpenSnapshots = %d, want 2", db.OpenSnapshots())
	}
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v2"))
	}
	db.Flush()
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	// s1 closes; s2 still pins the shared zombies, so both must read v1.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if v, err := s2.Get([]byte("k00042")); err != nil || string(v) != "v1" {
		t.Fatalf("s2 after s1.Close: Get = %q, %v; want v1", v, err)
	}
	before, _ := fs.List("")
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	after, _ := fs.List("")
	if len(after) >= len(before) {
		t.Fatalf("last snapshot close freed no files (%d -> %d)", len(before), len(after))
	}
	if db.OverlaySize() != 0 {
		t.Fatalf("overlay not drained: %d preserved versions", db.OverlaySize())
	}
}

// TestSnapshotLeakFinalizer: a snapshot dropped without Close is
// reclaimed by its finalizer, which releases the pin and counts the
// leak — including when open iterators (which hold extra pin
// references) are leaked along with it, or leaked after the snapshot
// handle itself was closed.
func TestSnapshotLeakFinalizer(t *testing.T) {
	db := mustOpen(t, smallOptions(vfs.NewMemFS()))
	defer db.Close()
	db.Put([]byte("k"), []byte("v"))
	waitReclaimed := func(wantLeaks int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for db.LeakedSnapshots() < wantLeaks || db.OpenSnapshots() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("leak not reclaimed: leaks=%d (want %d) open=%d", db.LeakedSnapshots(), wantLeaks, db.OpenSnapshots())
			}
			runtime.GC()
			time.Sleep(10 * time.Millisecond)
		}
	}
	func() {
		s, err := db.NewSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		_ = s // dropped without Close
	}()
	waitReclaimed(1)
	func() {
		// Snapshot handle AND an iterator (refs=2), both dropped.
		s, err := db.NewSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		it, err := s.NewIterator(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		_ = it // dropped without Close
	}()
	waitReclaimed(2)
	func() {
		// Handle closed properly, iterator leaked (refs stuck at 1).
		s, err := db.NewSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		it, err := s.NewIterator(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		_ = it // dropped without Close
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	waitReclaimed(3)
	// A fully closed snapshot must NOT count as a leak.
	s, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	it, err := s.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.GC()
	time.Sleep(20 * time.Millisecond)
	if n := db.LeakedSnapshots(); n != 3 {
		t.Fatalf("clean close counted as leak: LeakedSnapshots = %d, want 3", n)
	}
}

// TestIteratorStreamsLazily: creating an iterator over a large store
// and reading a few entries must not materialize the range — the
// regression the streaming redesign exists to prevent. Guarded by a
// generous allocation bound rather than an exact count.
func TestIteratorStreamsLazily(t *testing.T) {
	db := mustOpen(t, smallOptions(vfs.NewMemFS()))
	defer db.Close()
	const keys = 50000
	for i := 0; i < keys; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		it, err := db.NewIterator(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10 && it.Next(); i++ {
		}
		it.Close()
	})
	// The old iterator cloned every one of the 50k entries (several
	// allocations each); streaming needs a few hundred for the sources
	// and block reads.
	if allocs > 5000 {
		t.Fatalf("short scan allocated %.0f objects — iterator is materializing the range", allocs)
	}
}
