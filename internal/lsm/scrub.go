package lsm

import (
	"bytes"
	"fmt"

	"repro/internal/manifest"
	"repro/internal/wal"
)

// CheckConsistency walks the whole tree and verifies its invariants:
// every table opens and iterates cleanly (exercising all block CRCs),
// entries within a table are strictly sorted and inside the manifest's
// [smallest, largest] bounds, deeper levels hold disjoint sorted ranges,
// and CL-SSTables can resolve every index entry against their pinned log.
// It is the offline scrub a production store ships for fsck-style
// verification; tests use it after crash-recovery scenarios.
func (db *DB) CheckConsistency() error {
	db.versionMu.RLock()
	defer db.versionMu.RUnlock()
	v := db.version
	if err := v.CheckInvariants(); err != nil {
		return err
	}
	for level, files := range v.Levels {
		for _, f := range files {
			t, ok := db.tables[f.ID]
			if !ok {
				return fmt.Errorf("lsm: L%d table %d missing from cache", level, f.ID)
			}
			if t.NumEntries() != f.NumEntries {
				return fmt.Errorf("lsm: L%d table %d: manifest says %d entries, table has %d",
					level, f.ID, f.NumEntries, t.NumEntries())
			}
			it, err := t.NewIterator()
			if err != nil {
				return fmt.Errorf("lsm: L%d table %d: %w", level, f.ID, err)
			}
			var prev []byte
			var count uint64
			for it.Next() {
				e := it.Entry()
				if prev != nil && bytes.Compare(e.Key, prev) <= 0 {
					it.Close()
					return fmt.Errorf("lsm: L%d table %d: keys out of order at %q", level, f.ID, e.Key)
				}
				if bytes.Compare(e.Key, f.Smallest) < 0 || bytes.Compare(e.Key, f.Largest) > 0 {
					it.Close()
					return fmt.Errorf("lsm: L%d table %d: key %q outside manifest bounds [%q,%q]",
						level, f.ID, e.Key, f.Smallest, f.Largest)
				}
				prev = append(prev[:0], e.Key...)
				count++
			}
			err = it.Err()
			it.Close()
			if err != nil {
				return fmt.Errorf("lsm: L%d table %d: %w", level, f.ID, err)
			}
			if count != f.NumEntries {
				return fmt.Errorf("lsm: L%d table %d: iterated %d entries, manifest says %d",
					level, f.ID, count, f.NumEntries)
			}
			if f.Kind == manifest.KindCLSST && !db.fs.Exists(wal.FileName(f.LogID)) {
				return fmt.Errorf("lsm: L%d CL-SSTable %d: pinned log %d missing", level, f.ID, f.LogID)
			}
		}
	}
	return nil
}
