// Package hll implements the HyperLogLog cardinality estimator used by
// TRIAD-DISK (paper §4.2) to estimate the key overlap between L0 files.
//
// This is the dense HyperLogLog of Flajolet et al. with the empirical bias
// corrections from the original paper (small-range linear counting and the
// large-range correction). A sketch with precision p uses 2^p one-byte
// registers; TRIAD uses 4 KB sketches (p = 12), which gives a standard
// error of 1.04/sqrt(4096) ≈ 1.6% — far more accurate than the 0.4 overlap
// threshold decision requires.
package hll

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// DefaultPrecision matches the paper's 4 KB-per-file sketch.
const DefaultPrecision = 12

// Sketch is a dense HyperLogLog sketch. The zero value is not usable;
// use New.
type Sketch struct {
	p         uint8
	registers []uint8
	// count mirrors the number of Add calls, used for the overlap-ratio
	// denominator (the paper tracks per-file key counts alongside the HLL).
	count uint64
}

// New returns an empty sketch with the given precision (4..16).
func New(precision uint8) (*Sketch, error) {
	if precision < 4 || precision > 16 {
		return nil, fmt.Errorf("hll: precision %d out of range [4,16]", precision)
	}
	return &Sketch{p: precision, registers: make([]uint8, 1<<precision)}, nil
}

// MustNew is New for known-good precisions.
func MustNew(precision uint8) *Sketch {
	s, err := New(precision)
	if err != nil {
		panic(err)
	}
	return s
}

// fnv64a hashes b; we then mix with a 64-bit finalizer so that sequential
// keys (common in workloads) spread over the register space.
func hash(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Add observes one element.
func (s *Sketch) Add(b []byte) {
	s.count++
	h := hash(b)
	idx := h >> (64 - s.p)
	rest := h<<s.p | 1<<(uint(s.p)-1) // avoid zero tail
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > s.registers[idx] {
		s.registers[idx] = rank
	}
}

// Count reports the number of Add calls (with multiplicity).
func (s *Sketch) Count() uint64 { return s.count }

// Estimate returns the estimated number of distinct elements added.
func (s *Sketch) Estimate() uint64 {
	m := float64(len(s.registers))
	var sum float64
	zeros := 0
	for _, r := range s.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := alphaM(len(s.registers))
	e := alpha * m * m / sum
	switch {
	case e <= 2.5*m && zeros > 0:
		// Small-range correction: linear counting.
		e = m * math.Log(m/float64(zeros))
	case e > (1.0/30.0)*math.Pow(2, 64):
		e = -math.Pow(2, 64) * math.Log(1-e/math.Pow(2, 64))
	}
	return uint64(e + 0.5)
}

func alphaM(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Merge folds other into s (register-wise max). Both sketches must share a
// precision.
func (s *Sketch) Merge(other *Sketch) error {
	if s.p != other.p {
		return fmt.Errorf("hll: precision mismatch %d != %d", s.p, other.p)
	}
	for i, r := range other.registers {
		if r > s.registers[i] {
			s.registers[i] = r
		}
	}
	s.count += other.count
	return nil
}

// Clone returns a deep copy.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{p: s.p, registers: make([]uint8, len(s.registers)), count: s.count}
	copy(c.registers, s.registers)
	return c
}

// OverlapRatio implements the paper's metric over n sketches:
//
//	1 - UniqueKeys(f1..fn) / sum(Keys(fi))
//
// where UniqueKeys is the merged estimate and Keys(fi) is the per-file
// distinct-key estimate. It returns 0 for fewer than two sketches (a single
// file cannot overlap with itself).
func OverlapRatio(sketches []*Sketch) float64 {
	if len(sketches) < 2 {
		return 0
	}
	merged := sketches[0].Clone()
	total := float64(sketches[0].Estimate())
	for _, s := range sketches[1:] {
		// Precision mismatch cannot occur inside one engine; guard anyway.
		if err := merged.Merge(s); err != nil {
			return 0
		}
		total += float64(s.Estimate())
	}
	if total == 0 {
		return 0
	}
	r := 1 - float64(merged.Estimate())/total
	if r < 0 {
		return 0
	}
	return r
}

// Marshal serializes the sketch: 1 byte precision, 8 bytes count, then the
// registers.
func (s *Sketch) Marshal() []byte {
	out := make([]byte, 1+8+len(s.registers))
	out[0] = s.p
	binary.LittleEndian.PutUint64(out[1:9], s.count)
	copy(out[9:], s.registers)
	return out
}

// Unmarshal parses a sketch produced by Marshal.
func Unmarshal(b []byte) (*Sketch, error) {
	if len(b) < 9 {
		return nil, errors.New("hll: short buffer")
	}
	p := b[0]
	s, err := New(p)
	if err != nil {
		return nil, err
	}
	if len(b) != 9+len(s.registers) {
		return nil, fmt.Errorf("hll: bad buffer length %d for precision %d", len(b), p)
	}
	s.count = binary.LittleEndian.Uint64(b[1:9])
	copy(s.registers, b[9:])
	return s, nil
}
