package hll

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestPrecisionBounds(t *testing.T) {
	for _, p := range []uint8{0, 1, 3, 17, 255} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%d) succeeded, want error", p)
		}
	}
	for _, p := range []uint8{4, 12, 16} {
		if _, err := New(p); err != nil {
			t.Errorf("New(%d) failed: %v", p, err)
		}
	}
}

func TestEmptyEstimate(t *testing.T) {
	s := MustNew(12)
	if got := s.Estimate(); got != 0 {
		t.Fatalf("empty estimate = %d, want 0", got)
	}
	if s.Count() != 0 {
		t.Fatalf("empty count = %d, want 0", s.Count())
	}
}

func TestEstimateAccuracy(t *testing.T) {
	// Standard error for p=12 is ~1.6%; allow 5% at these cardinalities.
	for _, n := range []int{100, 1000, 10000, 100000} {
		s := MustNew(12)
		for i := 0; i < n; i++ {
			s.Add([]byte(fmt.Sprintf("key-%d", i)))
		}
		got := float64(s.Estimate())
		if relErr := math.Abs(got-float64(n)) / float64(n); relErr > 0.05 {
			t.Errorf("n=%d: estimate %0.f, relative error %.3f > 0.05", n, got, relErr)
		}
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	s := MustNew(12)
	for round := 0; round < 10; round++ {
		for i := 0; i < 1000; i++ {
			s.Add([]byte(fmt.Sprintf("key-%d", i)))
		}
	}
	got := float64(s.Estimate())
	if got < 900 || got > 1100 {
		t.Fatalf("estimate with duplicates = %.0f, want ≈1000", got)
	}
	if s.Count() != 10000 {
		t.Fatalf("count = %d, want 10000 (with multiplicity)", s.Count())
	}
}

func TestMerge(t *testing.T) {
	a, b := MustNew(12), MustNew(12)
	for i := 0; i < 5000; i++ {
		a.Add([]byte(fmt.Sprintf("a-%d", i)))
		b.Add([]byte(fmt.Sprintf("b-%d", i)))
	}
	// Shared keys.
	for i := 0; i < 2000; i++ {
		k := []byte(fmt.Sprintf("shared-%d", i))
		a.Add(k)
		b.Add(k)
	}
	m := a.Clone()
	if err := m.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := float64(m.Estimate())
	want := 12000.0
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("merged estimate = %.0f, want ≈%.0f", got, want)
	}
}

func TestMergePrecisionMismatch(t *testing.T) {
	a, b := MustNew(12), MustNew(10)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge with precision mismatch succeeded")
	}
}

func TestOverlapRatio(t *testing.T) {
	// Disjoint files: ratio ≈ 0.
	a, b := MustNew(12), MustNew(12)
	for i := 0; i < 10000; i++ {
		a.Add([]byte(fmt.Sprintf("a-%d", i)))
		b.Add([]byte(fmt.Sprintf("b-%d", i)))
	}
	if r := OverlapRatio([]*Sketch{a, b}); r > 0.05 {
		t.Errorf("disjoint overlap ratio = %.3f, want ≈0", r)
	}
	// Identical files: ratio ≈ 0.5 for two files (unique = n, total = 2n).
	c, d := MustNew(12), MustNew(12)
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("k-%d", i))
		c.Add(k)
		d.Add(k)
	}
	if r := OverlapRatio([]*Sketch{c, d}); math.Abs(r-0.5) > 0.05 {
		t.Errorf("identical overlap ratio = %.3f, want ≈0.5", r)
	}
	// Single file: defined as 0.
	if r := OverlapRatio([]*Sketch{a}); r != 0 {
		t.Errorf("single-file overlap ratio = %.3f, want 0", r)
	}
	if r := OverlapRatio(nil); r != 0 {
		t.Errorf("no-file overlap ratio = %.3f, want 0", r)
	}
}

// TestOverlapRatioPaperExample reproduces Figure 5's arithmetic: files
// {2,15,19} and {1,2,5,10},{11,12,19,20} → 1 - 9/11 ≈ 0.18; adding
// {1,10,13} → 1 - 10/14 ≈ 0.28. (Exact small sets; HLL is exact here up to
// estimator noise, which is zero at these cardinalities with p=12.)
func TestOverlapRatioPaperExample(t *testing.T) {
	mk := func(keys ...int) *Sketch {
		s := MustNew(12)
		for _, k := range keys {
			s.Add([]byte(fmt.Sprintf("%02d", k)))
		}
		return s
	}
	l0a := mk(2, 15, 19)
	l1a := mk(1, 2, 5, 10)
	l1b := mk(11, 12, 19, 20)
	r1 := OverlapRatio([]*Sketch{l0a, l1a, l1b})
	if math.Abs(r1-(1-9.0/11.0)) > 0.02 {
		t.Errorf("upper Figure 5 ratio = %.3f, want ≈0.18", r1)
	}
	l0b := mk(1, 10, 13)
	r2 := OverlapRatio([]*Sketch{l0a, l0b, l1a, l1b})
	if math.Abs(r2-(1-10.0/14.0)) > 0.02 {
		t.Errorf("lower Figure 5 ratio = %.3f, want ≈0.28", r2)
	}
	if r2 <= r1 {
		t.Errorf("adding an overlapping file lowered the ratio: %.3f <= %.3f", r2, r1)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := MustNew(12)
	for i := 0; i < 5000; i++ {
		s.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	got, err := Unmarshal(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != s.Estimate() || got.Count() != s.Count() {
		t.Fatalf("round trip changed estimate: %d/%d vs %d/%d",
			got.Estimate(), got.Count(), s.Estimate(), s.Count())
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("Unmarshal(nil) succeeded")
	}
	if _, err := Unmarshal([]byte{3, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("Unmarshal with bad precision succeeded")
	}
	s := MustNew(8)
	b := s.Marshal()
	if _, err := Unmarshal(b[:len(b)-1]); err == nil {
		t.Error("Unmarshal with truncated registers succeeded")
	}
}

// TestQuickEstimateWithinBound: for random key sets the estimate stays
// within 10% of the true cardinality (way beyond 3 sigma for p=12).
func TestQuickEstimateWithinBound(t *testing.T) {
	check := func(seed uint32) bool {
		n := 1000 + int(seed%50000)
		s := MustNew(12)
		for i := 0; i < n; i++ {
			s.Add([]byte(fmt.Sprintf("%d-%d", seed, i)))
		}
		got := float64(s.Estimate())
		return math.Abs(got-float64(n))/float64(n) < 0.10
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	s := MustNew(12)
	key := []byte("benchmark-key-00000000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[len(key)-1] = byte(i)
		s.Add(key)
	}
}

func BenchmarkOverlapRatio6Files(b *testing.B) {
	sketches := make([]*Sketch, 6)
	for f := range sketches {
		sketches[f] = MustNew(12)
		for i := 0; i < 16000; i++ {
			sketches[f].Add([]byte(fmt.Sprintf("f%d-%d", f, i)))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OverlapRatio(sketches)
	}
}
