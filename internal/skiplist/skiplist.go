// Package skiplist implements a randomized skip list keyed by byte slices.
//
// It is the ordered-map substrate underneath the memtable. Values are
// opaque unsafe-free interface payloads owned by the caller; the list never
// copies keys or values. The zero value is not usable; use New.
//
// Concurrency: the list itself is not synchronized. The memtable wraps it
// with its own lock, which also covers the per-entry metadata TRIAD needs
// (update counters, commit-log offsets).
package skiplist

import (
	"bytes"
	"math/rand"
)

const (
	maxHeight = 16
	// pInv is the inverse branching probability: a node of height h is
	// promoted to h+1 with probability 1/pInv.
	pInv = 4
)

type node struct {
	key   []byte
	value any
	next  []*node
}

// List is a skip list mapping byte-slice keys to arbitrary values.
type List struct {
	head   *node
	height int
	length int
	rng    *rand.Rand
}

// New returns an empty list whose level randomness is drawn from seed.
// Deterministic seeding keeps tests and experiments reproducible.
func New(seed int64) *List {
	return &List{
		head:   &node{next: make([]*node, maxHeight)},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Len reports the number of entries.
func (l *List) Len() int { return l.length }

func (l *List) randomHeight() int {
	h := 1
	for h < maxHeight && l.rng.Intn(pInv) == 0 {
		h++
	}
	return h
}

// findGE returns the first node with key >= key, along with the per-level
// predecessors (when prev is non-nil).
func (l *List) findGE(key []byte, prev []*node) *node {
	x := l.head
	for i := l.height - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		if prev != nil {
			prev[i] = x
		}
	}
	return x.next[0]
}

// Get returns the value stored under key, or (nil, false).
func (l *List) Get(key []byte) (any, bool) {
	n := l.findGE(key, nil)
	if n != nil && bytes.Equal(n.key, key) {
		return n.value, true
	}
	return nil, false
}

// Set inserts key with value, or replaces the value if key is present.
// It returns the previous value, if any.
func (l *List) Set(key []byte, value any) (prev any, replaced bool) {
	var prevs [maxHeight]*node
	n := l.findGE(key, prevs[:])
	if n != nil && bytes.Equal(n.key, key) {
		old := n.value
		n.value = value
		return old, true
	}
	h := l.randomHeight()
	if h > l.height {
		for i := l.height; i < h; i++ {
			prevs[i] = l.head
		}
		l.height = h
	}
	nn := &node{key: key, value: value, next: make([]*node, h)}
	for i := 0; i < h; i++ {
		nn.next[i] = prevs[i].next[i]
		prevs[i].next[i] = nn
	}
	l.length++
	return nil, false
}

// Delete removes key, reporting whether it was present.
func (l *List) Delete(key []byte) bool {
	var prevs [maxHeight]*node
	n := l.findGE(key, prevs[:])
	if n == nil || !bytes.Equal(n.key, key) {
		return false
	}
	for i := 0; i < len(n.next); i++ {
		if prevs[i].next[i] == n {
			prevs[i].next[i] = n.next[i]
		}
	}
	for l.height > 1 && l.head.next[l.height-1] == nil {
		l.height--
	}
	l.length--
	return true
}

// Iterator walks the list in ascending key order.
type Iterator struct {
	list *List
	node *node
}

// NewIterator returns an iterator positioned before the first entry;
// call Next to advance to it.
func (l *List) NewIterator() *Iterator {
	return &Iterator{list: l, node: l.head}
}

// Next advances and reports whether an entry is available.
func (it *Iterator) Next() bool {
	if it.node == nil {
		return false
	}
	it.node = it.node.next[0]
	return it.node != nil
}

// SeekGE positions the iterator at the first entry with key >= key and
// reports whether such an entry exists.
func (it *Iterator) SeekGE(key []byte) bool {
	it.node = it.list.findGE(key, nil)
	return it.node != nil
}

// Key returns the current key. Valid only after a true Next/SeekGE.
func (it *Iterator) Key() []byte { return it.node.key }

// Value returns the current value. Valid only after a true Next/SeekGE.
func (it *Iterator) Value() any { return it.node.value }
