package skiplist

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	l := New(1)
	if l.Len() != 0 {
		t.Fatalf("Len = %d, want 0", l.Len())
	}
	if _, ok := l.Get([]byte("a")); ok {
		t.Fatal("Get on empty list returned ok")
	}
	if l.Delete([]byte("a")) {
		t.Fatal("Delete on empty list returned true")
	}
	it := l.NewIterator()
	if it.Next() {
		t.Fatal("iterator on empty list advanced")
	}
}

func TestSetGetReplace(t *testing.T) {
	l := New(1)
	if _, replaced := l.Set([]byte("k"), 1); replaced {
		t.Fatal("first Set reported replaced")
	}
	prev, replaced := l.Set([]byte("k"), 2)
	if !replaced || prev.(int) != 1 {
		t.Fatalf("replace: got (%v, %v), want (1, true)", prev, replaced)
	}
	v, ok := l.Get([]byte("k"))
	if !ok || v.(int) != 2 {
		t.Fatalf("Get = (%v, %v), want (2, true)", v, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestDelete(t *testing.T) {
	l := New(2)
	for i := 0; i < 100; i++ {
		l.Set([]byte(fmt.Sprintf("key%03d", i)), i)
	}
	for i := 0; i < 100; i += 2 {
		if !l.Delete([]byte(fmt.Sprintf("key%03d", i))) {
			t.Fatalf("Delete key%03d returned false", i)
		}
	}
	if l.Len() != 50 {
		t.Fatalf("Len = %d, want 50", l.Len())
	}
	for i := 0; i < 100; i++ {
		_, ok := l.Get([]byte(fmt.Sprintf("key%03d", i)))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get key%03d = %v, want %v", i, ok, want)
		}
	}
}

func TestIterationSorted(t *testing.T) {
	l := New(3)
	rng := rand.New(rand.NewSource(7))
	n := 1000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("%08d", rng.Intn(10*n))
		l.Set([]byte(k), i)
	}
	var prev string
	count := 0
	it := l.NewIterator()
	for it.Next() {
		k := string(it.Key())
		if count > 0 && k <= prev {
			t.Fatalf("keys out of order: %q after %q", k, prev)
		}
		prev = k
		count++
	}
	if count != l.Len() {
		t.Fatalf("iterated %d entries, Len = %d", count, l.Len())
	}
}

func TestSeekGE(t *testing.T) {
	l := New(4)
	for i := 0; i < 100; i += 10 {
		l.Set([]byte(fmt.Sprintf("%03d", i)), i)
	}
	it := l.NewIterator()
	if !it.SeekGE([]byte("015")) {
		t.Fatal("SeekGE(015) found nothing")
	}
	if string(it.Key()) != "020" {
		t.Fatalf("SeekGE(015) = %q, want 020", it.Key())
	}
	if !it.SeekGE([]byte("090")) || string(it.Key()) != "090" {
		t.Fatal("SeekGE(exact) failed")
	}
	if it.SeekGE([]byte("091")) {
		t.Fatalf("SeekGE past the end found %q", it.Key())
	}
}

// TestQuickAgainstMap drives random operations against a map oracle.
func TestQuickAgainstMap(t *testing.T) {
	check := func(seed int64, ops []uint16) bool {
		l := New(seed)
		oracle := map[string]uint16{}
		for i, op := range ops {
			key := []byte(fmt.Sprintf("%04d", op%512))
			switch i % 3 {
			case 0, 1:
				l.Set(key, op)
				oracle[string(key)] = op
			case 2:
				got := l.Delete(key)
				_, want := oracle[string(key)]
				if got != want {
					return false
				}
				delete(oracle, string(key))
			}
		}
		if l.Len() != len(oracle) {
			return false
		}
		// Full scan must equal the sorted oracle.
		keys := make([]string, 0, len(oracle))
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		it := l.NewIterator()
		for _, k := range keys {
			if !it.Next() || string(it.Key()) != k || it.Value().(uint16) != oracle[k] {
				return false
			}
		}
		return !it.Next()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSet(b *testing.B) {
	l := New(1)
	keys := make([][]byte, 1<<16)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%08d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Set(keys[i%len(keys)], i)
	}
}

func BenchmarkGet(b *testing.B) {
	l := New(1)
	keys := make([][]byte, 1<<16)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%08d", i))
		l.Set(keys[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Get(keys[i%len(keys)])
	}
}
