// Package bgsched is the store-wide background I/O scheduler: one
// bounded worker pool shared by every shard's engine, replacing the
// seed's two-goroutines-per-DB background plane.
//
// The pool dispatches by priority class — flushes first (they unblock
// write stalls directly), then compaction slices (finishing an
// in-flight compaction frees its inputs and its claim on the pool),
// then L0→L1 compactions (they gate the stop-writes trigger), then
// deeper-level compactions — and within a class round-robins across
// shards, so one hot shard's backlog cannot starve the others'
// flushes.
//
// Each engine holds an Owner handle; submitting through the owner lets
// Close cancel the engine's queued work and wait out its running work
// without touching other tenants. triadlint's mustclose analyzer (see
// internal/lint) enforces that every NewOwner result is closed on all
// control-flow paths or escapes to a tracked owner.
package bgsched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Class is a task's priority class. Lower values run first.
type Class int

const (
	// ClassFlush is an immutable-memtable flush: the highest priority,
	// because a full flush queue stalls user writes immediately.
	ClassFlush Class = iota
	// ClassSlice is one key-range slice of an already-running parallel
	// subcompaction. Slices outrank whole compactions: finishing work
	// in flight releases its inputs (and its workers) sooner than
	// starting new work would.
	ClassSlice
	// ClassL0 is an L0→L1 compaction (or a size-tiered merge while L0
	// is at its file trigger) — the compactions that drain the
	// stop-writes file count.
	ClassL0
	// ClassDeep is a compaction between deeper levels, shaping the tree
	// without any stall on the line.
	ClassDeep

	// NumClasses is the number of priority classes.
	NumClasses = int(ClassDeep) + 1
)

// String names the class for metric labels.
func (c Class) String() string {
	switch c {
	case ClassFlush:
		return "flush"
	case ClassSlice:
		return "slice"
	case ClassL0:
		return "l0"
	case ClassDeep:
		return "deep"
	default:
		return fmt.Sprintf("class%d", int(c))
	}
}

// DefaultWorkers sizes a pool for a store of the given shard count:
// min(GOMAXPROCS, shards+2), floored at 2 so a lone flush can always
// overlap a running compaction's (simulated or real) I/O waits — the
// property the seed's dedicated flush goroutine provided.
func DefaultWorkers(shards int) int {
	w := runtime.GOMAXPROCS(0)
	if s := shards + 2; s < w {
		w = s
	}
	if w < 2 {
		w = 2
	}
	return w
}

// task is one queued unit of background work.
type task struct {
	owner *Owner
	fn    func()
}

// Pool is a bounded worker pool with class priorities and per-shard
// round-robin fairness. All methods are safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	cond *sync.Cond
	// queues[c][shard] is the FIFO of shard's queued class-c tasks;
	// order[c] rotates the shards with non-empty queues so equal-class
	// work is served round-robin across shards.
	queues [NumClasses]map[int][]task
	order  [NumClasses][]int
	queued [NumClasses]int

	workers   int
	busy      int
	closed    bool
	wg        sync.WaitGroup
	completed atomic.Int64
}

// NewPool starts a pool of the given worker count (floored at 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	for c := range p.queues {
		p.queues[c] = make(map[int][]task)
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers reports the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the pool: queued tasks are discarded, running tasks are
// waited out, worker goroutines exit. Owners should be closed first;
// Close exists so the pool itself never leaks goroutines.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for c := range p.queues {
		for shard, q := range p.queues[c] {
			for _, t := range q {
				t.owner.wg.Done()
			}
			delete(p.queues[c], shard)
		}
		p.order[c] = nil
		p.queued[c] = 0
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// worker runs queued tasks until the pool closes.
func (p *Pool) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		t, ok := p.popLocked()
		if !ok {
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			continue
		}
		p.busy++
		p.mu.Unlock()
		t.fn()
		t.owner.wg.Done()
		p.completed.Add(1)
		p.mu.Lock()
		p.busy--
	}
}

// popLocked dequeues the next task: the highest-priority non-empty
// class, round-robin across that class's shards. Caller holds p.mu.
func (p *Pool) popLocked() (task, bool) {
	for c := 0; c < NumClasses; c++ {
		if p.queued[c] == 0 {
			continue
		}
		shard := p.order[c][0]
		q := p.queues[c][shard]
		t := q[0]
		if len(q) == 1 {
			delete(p.queues[c], shard)
			p.order[c] = append(p.order[c][:0], p.order[c][1:]...)
		} else {
			p.queues[c][shard] = q[1:]
			// Rotate: the shard goes to the back of its class.
			p.order[c] = append(append(p.order[c][:0], p.order[c][1:]...), shard)
		}
		p.queued[c]--
		return t, true
	}
	return task{}, false
}

// submit enqueues a class-c task for shard on behalf of o. Reports
// false (without enqueueing) when the pool or owner is closed.
func (p *Pool) submit(o *Owner, c Class, shard int, fn func()) bool {
	p.mu.Lock()
	if p.closed || o.closed {
		p.mu.Unlock()
		return false
	}
	if _, ok := p.queues[c][shard]; !ok {
		p.order[c] = append(p.order[c], shard)
	}
	p.queues[c][shard] = append(p.queues[c][shard], task{owner: o, fn: fn})
	p.queued[c]++
	o.wg.Add(1)
	p.cond.Signal()
	p.mu.Unlock()
	return true
}

// RunSlices runs every fn, using pool workers for parallelism where
// available while the calling goroutine always participates: slices are
// claimed from a shared counter, so the call completes even when every
// worker is busy (or the owner is closing and the helpers never run) —
// the caller just drains the remaining slices itself. Used by parallel
// subcompactions; returns when all fns have finished.
func (p *Pool) RunSlices(o *Owner, shard int, fns []func()) {
	if len(fns) == 0 {
		return
	}
	var next atomic.Int64
	var done sync.WaitGroup
	claim := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(fns) {
				return
			}
			fns[i]()
			done.Done()
		}
	}
	done.Add(len(fns))
	for i := 1; i < len(fns); i++ {
		if !p.submit(o, ClassSlice, shard, claim) {
			break // closing: the caller claims everything below
		}
	}
	claim()
	// Every slice has been claimed by someone running (helpers that
	// arrive after the counter is exhausted no-op; purged helpers never
	// claimed anything); wait for the claimed ones to finish.
	done.Wait()
}

// Stats is a point-in-time view of the pool.
type Stats struct {
	// Workers is the pool size; Busy is how many are running a task
	// right now.
	Workers, Busy int
	// Queued is the queue depth per class, indexed by Class.
	Queued [NumClasses]int
	// Completed counts tasks run to completion since the pool started.
	Completed int64
}

// QueuedTotal sums the per-class queue depths.
func (s Stats) QueuedTotal() int {
	n := 0
	for _, q := range s.Queued {
		n += q
	}
	return n
}

// Stats captures the current pool state.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	s := Stats{Workers: p.workers, Busy: p.busy, Queued: p.queued}
	p.mu.Unlock()
	s.Completed = p.completed.Load()
	return s
}

// Owner is one tenant's handle on the pool: the unit of cancellation.
// Every engine submits through its own owner; closing the owner purges
// the engine's queued tasks and waits for its running ones, leaving
// other tenants untouched.
type Owner struct {
	pool   *Pool
	wg     sync.WaitGroup // queued + running tasks
	closed bool           // guarded by pool.mu
}

// NewOwner registers a tenant. The caller must Close it before the
// engine's resources (tables, logs) are torn down.
func (p *Pool) NewOwner() *Owner { return &Owner{pool: p} }

// Submit enqueues fn at class c on behalf of this owner. shard labels
// the work for fairness. Reports false when the pool or owner is
// closed; the task will then never run.
func (o *Owner) Submit(c Class, shard int, fn func()) bool {
	return o.pool.submit(o, c, shard, fn)
}

// RunSlices runs fns through the pool with the calling goroutine
// participating; see Pool.RunSlices.
func (o *Owner) RunSlices(shard int, fns []func()) {
	o.pool.RunSlices(o, shard, fns)
}

// Close cancels the owner's queued tasks (they never run) and waits for
// its in-flight tasks to finish. Safe to call twice; Submit after Close
// reports false.
func (o *Owner) Close() error {
	p := o.pool
	p.mu.Lock()
	if o.closed {
		p.mu.Unlock()
		o.wg.Wait()
		return nil
	}
	o.closed = true
	for c := range p.queues {
		for shard, q := range p.queues[c] {
			kept := q[:0]
			for _, t := range q {
				if t.owner == o {
					t.owner.wg.Done()
					p.queued[c]--
					continue
				}
				kept = append(kept, t)
			}
			if len(kept) == 0 {
				delete(p.queues[c], shard)
				for i, s := range p.order[c] {
					if s == shard {
						p.order[c] = append(p.order[c][:i], p.order[c][i+1:]...)
						break
					}
				}
			} else {
				p.queues[c][shard] = kept
			}
		}
	}
	p.mu.Unlock()
	o.wg.Wait()
	return nil
}
