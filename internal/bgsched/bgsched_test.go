package bgsched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// drain waits for the pool to report an empty queue and no busy workers.
func drain(t *testing.T, p *Pool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s := p.Stats()
		if s.QueuedTotal() == 0 && s.Busy == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("pool did not drain: %+v", p.Stats())
}

func TestPriorityOrder(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	o := p.NewOwner()
	defer o.Close()

	var mu sync.Mutex
	var got []Class
	record := func(c Class) func() {
		return func() {
			mu.Lock()
			got = append(got, c)
			mu.Unlock()
		}
	}

	// Occupy the single worker so the queue builds up, then submit in
	// reverse priority order.
	gate := make(chan struct{})
	if !o.Submit(ClassDeep, 0, func() { <-gate }) {
		t.Fatal("submit failed")
	}
	for _, c := range []Class{ClassDeep, ClassL0, ClassSlice, ClassFlush} {
		if !o.Submit(c, 0, record(c)) {
			t.Fatalf("submit %v failed", c)
		}
	}
	close(gate)
	drain(t, p)

	want := []Class{ClassFlush, ClassSlice, ClassL0, ClassDeep}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("ran %d tasks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("run order %v, want %v", got, want)
		}
	}
}

func TestShardFairness(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	o := p.NewOwner()
	defer o.Close()

	var mu sync.Mutex
	var got []int
	gate := make(chan struct{})
	o.Submit(ClassDeep, 9, func() { <-gate })
	// Shard 0 floods the queue before shard 1 adds two tasks; fairness
	// means shard 1 is served every other slot, not after the flood.
	for i := 0; i < 4; i++ {
		o.Submit(ClassDeep, 0, func() { mu.Lock(); got = append(got, 0); mu.Unlock() })
	}
	for i := 0; i < 2; i++ {
		o.Submit(ClassDeep, 1, func() { mu.Lock(); got = append(got, 1); mu.Unlock() })
	}
	close(gate)
	drain(t, p)

	mu.Lock()
	defer mu.Unlock()
	want := []int{0, 1, 0, 1, 0, 0}
	if len(got) != len(want) {
		t.Fatalf("ran %d tasks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shard order %v, want %v (round-robin)", got, want)
		}
	}
}

func TestOwnerClosePurgesQueuedAndWaitsRunning(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	o := p.NewOwner()
	other := p.NewOwner()
	defer other.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	var finished atomic.Bool
	o.Submit(ClassFlush, 0, func() {
		close(started)
		<-release
		finished.Store(true)
	})
	var purgedRan atomic.Bool
	o.Submit(ClassFlush, 0, func() { purgedRan.Store(true) })
	var otherRan atomic.Bool
	other.Submit(ClassFlush, 0, func() { otherRan.Store(true) })

	<-started
	closed := make(chan struct{})
	go func() {
		o.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while an owned task was still running")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-closed
	if !finished.Load() {
		t.Fatal("Close returned before the running task finished")
	}
	if purgedRan.Load() {
		t.Fatal("queued task ran after owner Close purged it")
	}
	if o.Submit(ClassFlush, 0, func() {}) {
		t.Fatal("Submit succeeded on a closed owner")
	}
	drain(t, p)
	if !otherRan.Load() {
		t.Fatal("another owner's queued task was purged")
	}
}

func TestRunSlicesCompletesWithBusyPool(t *testing.T) {
	// All workers blocked: the caller must drain every slice itself.
	p := NewPool(2)
	defer p.Close()
	o := p.NewOwner()
	defer o.Close()

	gate := make(chan struct{})
	o.Submit(ClassDeep, 0, func() { <-gate })
	o.Submit(ClassDeep, 0, func() { <-gate })

	var ran atomic.Int64
	fns := make([]func(), 8)
	for i := range fns {
		fns[i] = func() { ran.Add(1) }
	}
	doneCh := make(chan struct{})
	go func() {
		o.RunSlices(0, fns)
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("RunSlices deadlocked with a saturated pool")
	}
	if got := ran.Load(); got != int64(len(fns)) {
		t.Fatalf("ran %d slices, want %d", got, len(fns))
	}
	close(gate)
	drain(t, p)
}

func TestRunSlicesParallel(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	o := p.NewOwner()
	defer o.Close()

	// Slices that block until at least two run concurrently would hang
	// a serial executor; bound the check with a timeout instead of
	// asserting exact parallelism.
	var peak, cur atomic.Int64
	fns := make([]func(), 6)
	for i := range fns {
		fns[i] = func() {
			c := cur.Add(1)
			for {
				pk := peak.Load()
				if c <= pk || peak.CompareAndSwap(pk, c) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			cur.Add(-1)
		}
	}
	o.RunSlices(0, fns)
	if peak.Load() < 2 {
		t.Logf("slices never overlapped (peak=%d) — legal but unexpected on a 4-worker pool", peak.Load())
	}
}

func TestPoolCloseIdempotentAndStats(t *testing.T) {
	p := NewPool(3)
	if w := p.Workers(); w != 3 {
		t.Fatalf("Workers() = %d, want 3", w)
	}
	o := p.NewOwner()
	var n atomic.Int64
	for i := 0; i < 10; i++ {
		o.Submit(ClassL0, i%2, func() { n.Add(1) })
	}
	drain(t, p)
	if n.Load() != 10 {
		t.Fatalf("ran %d tasks, want 10", n.Load())
	}
	s := p.Stats()
	if s.Completed != 10 {
		t.Fatalf("Completed = %d, want 10", s.Completed)
	}
	o.Close()
	p.Close()
	p.Close() // idempotent
	if o.Submit(ClassFlush, 0, func() {}) {
		t.Fatal("Submit succeeded on a closed pool")
	}
}

func TestDefaultWorkersFloor(t *testing.T) {
	if w := DefaultWorkers(0); w < 2 {
		t.Fatalf("DefaultWorkers(0) = %d, want >= 2", w)
	}
	if w := DefaultWorkers(64); w < 2 {
		t.Fatalf("DefaultWorkers(64) = %d, want >= 2", w)
	}
}
