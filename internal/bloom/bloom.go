// Package bloom implements the Bloom filter attached to every SSTable so
// that point lookups can skip tables that cannot contain a key. RocksDB
// (the paper's substrate) attaches the same structure; reproducing it keeps
// the read-amplification comparison honest.
package bloom

import (
	"encoding/binary"
	"errors"
	"math"
)

// Filter is an immutable Bloom filter built by a Builder.
type Filter struct {
	bits  []byte
	k     uint32 // number of probes
	nBits uint64
}

// Builder accumulates keys and produces a Filter.
type Builder struct {
	hashes []uint64
}

// Add records a key.
func (b *Builder) Add(key []byte) { b.hashes = append(b.hashes, bloomHash(key)) }

// N reports the number of keys added.
func (b *Builder) N() int { return len(b.hashes) }

// Build constructs a filter with the given bits budget per key (typically
// 10, giving ~1% false positives).
func (b *Builder) Build(bitsPerKey int) *Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	n := len(b.hashes)
	if n == 0 {
		n = 1
	}
	nBits := uint64(n * bitsPerKey)
	if nBits < 64 {
		nBits = 64
	}
	k := uint32(float64(bitsPerKey) * math.Ln2)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	f := &Filter{bits: make([]byte, (nBits+7)/8), k: k}
	f.nBits = uint64(len(f.bits)) * 8
	for _, h := range b.hashes {
		f.insert(h)
	}
	return f
}

// double hashing: g_i(x) = h1 + i*h2.
func (f *Filter) insert(h uint64) {
	h1, h2 := uint32(h), uint32(h>>32)
	for i := uint32(0); i < f.k; i++ {
		pos := uint64(h1+i*h2) % f.nBits
		f.bits[pos/8] |= 1 << (pos % 8)
	}
}

// MayContain reports whether the key may have been added. False means
// definitely absent.
func (f *Filter) MayContain(key []byte) bool {
	h := bloomHash(key)
	h1, h2 := uint32(h), uint32(h>>32)
	for i := uint32(0); i < f.k; i++ {
		pos := uint64(h1+i*h2) % f.nBits
		if f.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// Marshal serializes the filter: 4 bytes k, then the bit array.
func (f *Filter) Marshal() []byte {
	out := make([]byte, 4+len(f.bits))
	binary.LittleEndian.PutUint32(out[:4], f.k)
	copy(out[4:], f.bits)
	return out
}

// Unmarshal parses a filter produced by Marshal.
func Unmarshal(b []byte) (*Filter, error) {
	if len(b) < 5 {
		return nil, errors.New("bloom: short buffer")
	}
	f := &Filter{k: binary.LittleEndian.Uint32(b[:4]), bits: append([]byte(nil), b[4:]...)}
	if f.k == 0 || f.k > 30 {
		return nil, errors.New("bloom: corrupt probe count")
	}
	f.nBits = uint64(len(f.bits)) * 8
	return f, nil
}

func bloomHash(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
