package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	var b Builder
	n := 10000
	for i := 0; i < n; i++ {
		b.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	f := b.Build(10)
	for i := 0; i < n; i++ {
		if !f.MayContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	var b Builder
	n := 10000
	for i := 0; i < n; i++ {
		b.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	f := b.Build(10)
	fp := 0
	probes := 100000
	for i := 0; i < probes; i++ {
		if f.MayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	rate := float64(fp) / float64(probes)
	// 10 bits/key gives ~1%; allow 2.5%.
	if rate > 0.025 {
		t.Fatalf("false positive rate %.4f > 0.025", rate)
	}
}

func TestEmptyFilter(t *testing.T) {
	var b Builder
	f := b.Build(10)
	if f.MayContain([]byte("anything")) {
		t.Fatal("empty filter claimed to contain a key")
	}
}

func TestSmallBitsPerKey(t *testing.T) {
	var b Builder
	b.Add([]byte("a"))
	f := b.Build(0) // clamped to 1
	if !f.MayContain([]byte("a")) {
		t.Fatal("false negative with clamped bits/key")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	var b Builder
	for i := 0; i < 1000; i++ {
		b.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	f := b.Build(10)
	got, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if !got.MayContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative after round trip for key-%d", i)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("Unmarshal(nil) succeeded")
	}
	if _, err := Unmarshal([]byte{0, 0, 0, 0, 1}); err == nil {
		t.Error("Unmarshal with k=0 succeeded")
	}
	if _, err := Unmarshal([]byte{200, 0, 0, 0, 1}); err == nil {
		t.Error("Unmarshal with k=200 succeeded")
	}
}

// TestQuickMembership: anything added is always reported present, across
// random key sets and bits/key settings.
func TestQuickMembership(t *testing.T) {
	check := func(keys [][]byte, bitsPerKey uint8) bool {
		var b Builder
		for _, k := range keys {
			b.Add(k)
		}
		f := b.Build(int(bitsPerKey%20) + 1)
		for _, k := range keys {
			if !f.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMayContain(b *testing.B) {
	var bld Builder
	for i := 0; i < 100000; i++ {
		bld.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	f := bld.Build(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain([]byte("key-50000"))
	}
}
