// Package server is TRIAD's network front end: a TCP server speaking a
// RESP2-compatible protocol (GET/SET/DEL/MGET/MSET/SCAN/STATS/FLUSH/
// PING/QUIT) over the sharded engine.
//
// Two mechanisms carry the load:
//
//   - Per-connection pipelining. Each connection gets a reader goroutine
//     (parse, execute or enqueue) and a writer goroutine (encode replies
//     in request order), joined by a bounded reply queue. A client may
//     send hundreds of commands before reading the first reply; the
//     server keeps parsing while earlier writes are still committing.
//
//   - Cross-connection group commit. Writes from all connections are
//     coalesced into shared batches that ride the store's commit
//     pipeline: each group's epoch is fixed when the committer seals it,
//     and up to CommitPipeline sealed groups apply concurrently —
//     amortizing the commit-log append and the memtable mutex exactly
//     where TRIAD says the write-path costs live, while the store clock
//     (not the committer) keeps overlapping groups ordered per shard.
//
// Per-connection ordering is preserved: replies are sent in request
// order, and a read observes every earlier write of its own connection
// (the reader waits for the epoch of the connection's last write group
// before serving GET/MGET/SCAN — reads of other connections' in-flight
// writes are not ordered, exactly as with any concurrent store).
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bgsched"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/sstable"
)

// Store is the engine surface the server fronts. *shard.DB implements it
// (open the store with shard.Open, Shards >= 1); the shard layer is used
// even for one shard so STATS always carries the per-shard table and the
// STORE metadata validation.
type Store interface {
	Get(key []byte) ([]byte, error)
	// GetTraced is Get with an optional sampled trace attached (nil on
	// the untraced path): disk reads the lookup performs are recorded as
	// sstable_read spans.
	GetTraced(key []byte, tr *obs.Trace) ([]byte, error)
	Apply(b *lsm.Batch) error
	// Prepare stages a batch in the store's commit pipeline, fixing its
	// epoch; Commit applies it. Apply is Prepare+Commit. The group
	// committer uses the staged form so it can publish a group's epoch
	// to waiters at coalesce time and pipeline the applies.
	Prepare(b *lsm.Batch) (*shard.Commit, error)
	// WaitCommitted blocks until every epoch at or below epoch has
	// committed — the read-your-writes barrier.
	WaitCommitted(epoch uint64)
	// CommittedEpoch reports the store's commit watermark (metrics).
	CommittedEpoch() uint64
	Flush() error
	Stats() string
	Metrics() metrics.Snapshot
	ShardStats() []shard.ShardStat
	// BlockCacheStats reports the store-wide block-cache counters
	// (hits/misses/resident/capacity/evictions/admission rejects),
	// exported as the triad_block_cache_* series.
	BlockCacheStats() sstable.CacheStats
	// NewSnapshot pins a cross-shard point-in-time view; every SCAN
	// reads through one (cursors hold theirs open across pages, which
	// is what makes paging repeatable).
	NewSnapshot() (*shard.Snapshot, error)
	// OpenSnapshots reports the store's live snapshot count (metrics);
	// LeakedSnapshots and OverlayEntries surface snapshot hygiene.
	OpenSnapshots() int
	LeakedSnapshots() int64
	OverlayEntries() int
	// Events is the store's background-event journal (flushes,
	// compactions, snapshot GC, stalls), served by EVENTS and
	// /debug/events. May return nil (observability disabled).
	Events() *obs.Journal
	// ApplyLatency is the store's per-batch commit-execution recorder.
	// May return nil (observability disabled).
	ApplyLatency() *obs.Hist
	// IOBySource is the store-wide I/O attribution roll-up; per-shard
	// breakdowns ride ShardStats. All-zero when observability is
	// disabled.
	IOBySource() obs.LedgerSnapshot
	// Scheduler is the store's shared background worker pool, exported
	// as the triad_bg_* series. Nil when the store runs the legacy
	// per-shard background goroutines.
	Scheduler() *bgsched.Pool
	// CompactionDebt is the store-wide pending-compaction byte
	// estimate — the backlog the background pool is draining.
	CompactionDebt() int64
}

var _ Store = (*shard.DB)(nil)

// Config tunes the server. The zero value is production-shaped: group
// commit on with no artificial delay (leader-based batching), 4096-op /
// 1 MiB batches, pipeline depth 1024.
type Config struct {
	// DisableGroupCommit applies every write in its own Apply call on
	// the connection's reader goroutine (the one-Apply-per-connection
	// mode the net benchmark compares against).
	DisableGroupCommit bool
	// CommitDelay holds each write group open for a window from its
	// first write before committing, trading latency for batch size.
	// Default 0: commit as soon as the committer goroutine is free —
	// writes arriving during the previous Apply form the next batch, so
	// batching scales with load and a quiet server pays no extra
	// latency.
	CommitDelay time.Duration
	// CommitMaxOps commits the pending group when it reaches this many
	// operations. Default 4096.
	CommitMaxOps int
	// CommitMaxBytes commits the pending group when it reaches this many
	// payload bytes. Default 1 MiB.
	CommitMaxBytes int64
	// CommitPipeline is how many sealed write groups may be applying
	// concurrently. Their epochs are assigned at coalesce time, and the
	// store clock commits them in epoch order on every shard they
	// share, so pipelining cannot reorder writes. Default 4.
	CommitPipeline int
	// MaxPipeline bounds a connection's outstanding replies; a client
	// that pipelines deeper blocks until replies drain (backpressure).
	// Default 1024.
	MaxPipeline int
	// ScanMaxEntries caps one SCAN reply page; clients page through the
	// rest with SCAN CONT on the returned cursor. Default 4096.
	ScanMaxEntries int
	// CursorTTL closes a SCAN cursor (releasing its pinned snapshot)
	// after this much idle time. Default 60s.
	CursorTTL time.Duration
	// MaxCursorsPerConn caps the cursors one connection may hold open;
	// further SCANs error until one closes. Default 16.
	MaxCursorsPerConn int
	// Logf, when set, receives connection-level diagnostics (protocol
	// errors, accept failures). Default: discard.
	Logf func(format string, args ...any)
	// DisableObservability turns off the server's latency recorders,
	// stage timing, and slowlog: every instrumentation point degrades to
	// a pointer test (the overhead benchmark's baseline). The store's
	// own journal is unaffected — disable it via shard.Options.
	DisableObservability bool
	// SlowlogThreshold is the server-side latency above which a command
	// is recorded in the slowlog. Default 10ms; negative disables the
	// slowlog while keeping the histograms.
	SlowlogThreshold time.Duration
	// SlowlogSize is the slowlog ring capacity. Default 128.
	SlowlogSize int
	// TraceSample is the fraction of commands given an end-to-end trace
	// (spans at decode, coalesce, epoch wait, WAL append, memtable
	// apply, commit, sstable reads, reply flush), served by TRACE and
	// /debug/trace. 0 (the default) disables tracing; unsampled
	// commands pay one random draw and zero allocations.
	TraceSample float64
	// TraceKeep is how many finished traces the server retains.
	// Default 256.
	TraceKeep int
}

func (c Config) withDefaults() Config {
	if c.CommitDelay < 0 {
		c.CommitDelay = 0
	}
	if c.CommitMaxOps <= 0 {
		c.CommitMaxOps = 4096
	}
	if c.CommitMaxBytes <= 0 {
		c.CommitMaxBytes = 1 << 20
	}
	if c.CommitPipeline <= 0 {
		c.CommitPipeline = 4
	}
	if c.MaxPipeline <= 0 {
		c.MaxPipeline = 1024
	}
	if c.ScanMaxEntries <= 0 {
		c.ScanMaxEntries = 4096
	}
	if c.CursorTTL <= 0 {
		c.CursorTTL = 60 * time.Second
	}
	if c.MaxCursorsPerConn <= 0 {
		c.MaxCursorsPerConn = 16
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.SlowlogThreshold == 0 {
		c.SlowlogThreshold = 10 * time.Millisecond
	}
	if c.SlowlogSize <= 0 {
		c.SlowlogSize = 128
	}
	if c.TraceKeep <= 0 {
		c.TraceKeep = 256
	}
	return c
}

// Server serves the RESP front end over one Store. Create with New,
// start with Serve or ListenAndServe, stop with Shutdown (graceful) or
// Close (abrupt). The Store's lifecycle belongs to the caller: Shutdown
// drains the server but does not close the engine.
type Server struct {
	store   Store
	cfg     Config
	gc      *committer // nil when group commit is disabled
	cursors *registry  // server-side SCAN cursors
	ob      *serverObs // nil when Config.DisableObservability

	mu      sync.Mutex
	ln      net.Listener
	conns   map[*conn]struct{}
	closing bool
	drained chan struct{} // closed when the first Shutdown finishes
	wg      sync.WaitGroup

	// Counters for the metrics dump.
	totalConns atomic.Int64
	commands   atomic.Int64
}

// New returns a Server over store.
func New(store Store, cfg Config) *Server {
	s := &Server{
		store:   store,
		cfg:     cfg.withDefaults(),
		conns:   make(map[*conn]struct{}),
		drained: make(chan struct{}),
	}
	if !s.cfg.DisableObservability {
		s.ob = newServerObs(s.cfg)
	}
	if !s.cfg.DisableGroupCommit {
		s.gc = newCommitter(store, s.cfg, s.ob)
	}
	s.cursors = newRegistry(s.cfg)
	return s
}

// ListenAndServe listens on addr (e.g. ":6379", "127.0.0.1:0") and
// serves until Shutdown or Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown or Close. It returns
// nil after a clean shutdown, or the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closing {
		// Shutdown won the race (it can run before Serve registers the
		// listener, e.g. a signal at startup); that is a clean stop,
		// not an error.
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	var acceptBackoff time.Duration
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return nil
			}
			// Transient accept failures (ECONNABORTED, fd exhaustion)
			// must not kill the server; back off and retry, as net/http
			// does.
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() {
				if acceptBackoff == 0 {
					acceptBackoff = 5 * time.Millisecond
				} else if acceptBackoff *= 2; acceptBackoff > time.Second {
					acceptBackoff = time.Second
				}
				s.cfg.Logf("server: accept: %v; retrying in %v", err, acceptBackoff)
				time.Sleep(acceptBackoff)
				continue
			}
			return err
		}
		acceptBackoff = 0
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		c := newConn(s, nc)
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.totalConns.Add(1)
		go func() {
			defer s.wg.Done()
			c.serve()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Addr reports the bound listener address (useful with ":0").
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown gracefully drains the server: stop accepting, unblock every
// connection's reader, let in-flight pipelines finish (their group
// commits included), then stop the committer. Writes that were accepted
// before Shutdown are committed; commands arriving after it get an error
// reply. The ctx bounds the drain; on expiry remaining connections are
// closed abruptly and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closing {
		// A drain is already in flight; wait for it so every Shutdown
		// caller can safely close the store afterwards.
		s.mu.Unlock()
		select {
		case <-s.drained:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.closing = true
	ln := s.ln
	for c := range s.conns {
		c.beginDrain()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		err = ctx.Err()
	}
	if s.gc != nil {
		s.gc.close()
	}
	s.cursors.close()
	close(s.drained)
	return err
}

// Close shuts down without a drain deadline beyond a short default.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// GroupCommitStats reports how many Apply batches the committer issued
// and how many write operations they carried; ops/batches is the
// realized group size. Zeros when group commit is disabled.
func (s *Server) GroupCommitStats() (batches, ops int64) {
	if s.gc == nil {
		return 0, 0
	}
	return s.gc.batches.Load(), s.gc.ops.Load()
}

// ConnStats reports current and lifetime connection counts and the
// number of commands served.
func (s *Server) ConnStats() (open int, total, commands int64) {
	s.mu.Lock()
	open = len(s.conns)
	s.mu.Unlock()
	return open, s.totalConns.Load(), s.commands.Load()
}

// CursorStats reports open and lifetime SCAN cursor counts.
func (s *Server) CursorStats() (open int, total int64) {
	return s.cursors.openCount(), s.cursors.openedTotal()
}

// errShuttingDown is the reply given to writes that race a shutdown.
var errShuttingDown = errors.New("server shutting down")

func fmtErr(err error) string {
	return fmt.Sprintf("ERR %v", err)
}
