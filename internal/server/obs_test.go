package server_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/lsm"
	"repro/internal/resp"
	"repro/internal/server"
	"repro/internal/shard"
)

// scrape fetches path from the server's metrics handler.
func scrape(t *testing.T, srv *server.Server, pprof bool, path string) (*http.Response, string) {
	t.Helper()
	ts := httptest.NewServer(srv.MetricsHandler(pprof))
	defer ts.Close()
	res, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

// TestMetricsExpositionFormat is the promlint-style pin: it parses the
// entire /metrics dump line by line and enforces the text-format 0.0.4
// rules — every sample preceded by # HELP and # TYPE for its metric,
// counter names ending in _total, histograms carrying cumulative
// _bucket{le} / _sum / _count series, snake_case triad_* names, and the
// versioned Content-Type.
func TestMetricsExpositionFormat(t *testing.T) {
	db := newTestStore(t, 2)
	srv, addr := startServer(t, db, server.Config{})
	c := dial(t, addr)
	for i := 0; i < 64; i++ {
		if err := c.Set([]byte(fmt.Sprintf("fmt-%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Get([]byte("fmt-00")); err != nil {
		t.Fatal(err)
	}

	res, text := scrape(t, srv, false, "/metrics")
	if ct := res.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q, want text/plain; version=0.0.4; charset=utf-8", ct)
	}

	typeOf := map[string]string{} // metric name -> declared TYPE
	helped := map[string]bool{}
	// histState[name+labels-without-le] tracks cumulative bucket counts.
	lastBucket := map[string]uint64{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.SplitN(line, " ", 4)
			if len(f) < 4 || (f[1] != "HELP" && f[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if f[1] == "HELP" {
				helped[f[2]] = true
			} else {
				switch f[3] {
				case "counter", "gauge", "histogram":
				default:
					t.Fatalf("line %d: unknown TYPE %q", ln+1, f[3])
				}
				typeOf[f[2]] = f[3]
			}
			continue
		}
		// Sample line: name{labels} value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(valStr, 64); err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", ln+1, valStr, err)
		}
		name := series
		labels := ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln+1, series)
			}
			name, labels = series[:i], series[i+1:len(series)-1]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && typeOf[strings.TrimSuffix(name, suf)] == "histogram" {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if !strings.HasPrefix(base, "triad_") {
			t.Errorf("line %d: metric %q not triad_* prefixed", ln+1, base)
		}
		if strings.ToLower(base) != base || strings.Contains(base, "-") {
			t.Errorf("line %d: metric %q not snake_case", ln+1, base)
		}
		typ, ok := typeOf[base]
		if !ok || !helped[base] {
			t.Fatalf("line %d: sample %q precedes its # HELP/# TYPE", ln+1, series)
		}
		if typ == "counter" && !strings.HasSuffix(base, "_total") {
			t.Errorf("line %d: counter %q does not end in _total", ln+1, base)
		}
		if typ == "histogram" && strings.HasSuffix(name, "_bucket") {
			if !strings.Contains(labels, `le="`) {
				t.Fatalf("line %d: _bucket sample without le label: %q", ln+1, line)
			}
			key := base + "|" + stripLe(labels)
			v, _ := strconv.ParseUint(valStr, 10, 64)
			if v < lastBucket[key] {
				t.Errorf("line %d: histogram %q buckets not cumulative", ln+1, key)
			}
			lastBucket[key] = v
		}
	}

	// The required series: one histogram per command family, one per
	// pipeline stage, per-shard WA/RA/hot-budget gauges, apply latency.
	for _, fam := range []string{"get", "set", "del", "mget", "mset", "scan"} {
		want := fmt.Sprintf(`triad_cmd_latency_seconds_bucket{cmd="%s",le="+Inf"}`, fam)
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %s", want)
		}
	}
	for _, stage := range []string{"coalesce", "epoch_wait", "commit", "reply_flush"} {
		want := fmt.Sprintf(`triad_commit_stage_latency_seconds_bucket{stage="%s",le="+Inf"}`, stage)
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %s", want)
		}
	}
	for shardN := 0; shardN < 2; shardN++ {
		for _, g := range []string{"triad_shard_write_amplification", "triad_shard_read_amplification", "triad_shard_hot_budget", "triad_shard_disk_bytes"} {
			want := fmt.Sprintf(`%s{shard="%d"}`, g, shardN)
			if !strings.Contains(text, want) {
				t.Errorf("dump missing %s", want)
			}
		}
	}
	if !strings.Contains(text, "triad_apply_latency_seconds_count") {
		t.Error("dump missing triad_apply_latency_seconds")
	}

	// The SETs must be visible in the set-family histogram count.
	if !strings.Contains(text, `triad_cmd_latency_seconds_count{cmd="set"} 64`) {
		t.Error("set-family histogram count != 64")
	}
	if t.Failed() {
		t.Logf("dump:\n%s", text)
	}
}

func stripLe(labels string) string {
	parts := strings.Split(labels, ",")
	out := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, "le=") {
			out = append(out, p)
		}
	}
	return strings.Join(out, ",")
}

// TestEventsAfterFlush drives writes through the server, forces a FLUSH,
// and asserts EVENTS returns flush events carrying durations and byte
// counts — through both the RESP command and /debug/events.
func TestEventsAfterFlush(t *testing.T) {
	db := newTestStore(t, 2)
	srv, addr := startServer(t, db, server.Config{})
	c := dial(t, addr)
	val := make([]byte, 512)
	for i := 0; i < 128; i++ {
		if err := c.Set([]byte(fmt.Sprintf("ev-%03d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushStore(); err != nil {
		t.Fatal(err)
	}

	v, err := c.Do("EVENTS")
	if err != nil {
		t.Fatal(err)
	}
	if v.Type != resp.TypeArray {
		t.Fatalf("EVENTS reply type = %c, want array", v.Type)
	}
	if len(v.Elems) == 0 {
		t.Fatal("EVENTS returned no events after FLUSH")
	}
	var flushes int
	for _, e := range v.Elems {
		line := e.Text()
		if !strings.Contains(line, "flush") {
			continue
		}
		flushes++
		if !strings.Contains(line, "dur=") {
			t.Errorf("flush event missing duration: %q", line)
		}
		if !strings.Contains(line, "in=") || !strings.Contains(line, "B") {
			t.Errorf("flush event missing byte counts: %q", line)
		}
		if !strings.Contains(line, "shard=") {
			t.Errorf("flush event missing shard label: %q", line)
		}
	}
	if flushes == 0 {
		t.Fatalf("no flush events among %d events", len(v.Elems))
	}

	// EVENTS 1 caps the reply.
	v, err = c.Do("EVENTS", []byte("1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Elems) != 1 {
		t.Fatalf("EVENTS 1 returned %d events", len(v.Elems))
	}

	_, body := scrape(t, srv, false, "/debug/events")
	if !strings.Contains(body, "flush") || !strings.Contains(body, "dur=") {
		t.Errorf("/debug/events missing flush events:\n%s", body)
	}
}

// TestSlowlog drives commands over a zero threshold so everything is
// slow, then exercises SLOWLOG GET/LEN/RESET.
func TestSlowlog(t *testing.T) {
	db := newTestStore(t, 1)
	srv, addr := startServer(t, db, server.Config{SlowlogThreshold: time.Nanosecond})
	c := dial(t, addr)
	if err := c.Set([]byte("slow-key"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get([]byte("slow-key")); err != nil {
		t.Fatal(err)
	}

	v, err := c.Do("SLOWLOG", []byte("GET"))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Elems) < 2 {
		t.Fatalf("SLOWLOG GET returned %d entries, want >= 2", len(v.Elems))
	}
	joined := v.Elems[0].Text() + v.Elems[1].Text()
	if !strings.Contains(joined, "slow-key") {
		t.Errorf("slowlog entries missing key preview: %q", joined)
	}

	v, err = c.Do("SLOWLOG", []byte("LEN"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Type != resp.TypeInt || v.Int < 2 {
		t.Fatalf("SLOWLOG LEN = %v, want >= 2", v.Int)
	}

	if v, err = c.Do("SLOWLOG", []byte("RESET")); err != nil || v.IsError() {
		t.Fatalf("SLOWLOG RESET: %v %v", err, v)
	}
	if v, err = c.Do("SLOWLOG", []byte("LEN")); err != nil || v.Int != 0 {
		t.Fatalf("SLOWLOG LEN after RESET = %v (err %v), want 0", v.Int, err)
	}

	_, body := scrape(t, srv, false, "/debug/slowlog")
	if !strings.Contains(body, "threshold") {
		t.Errorf("/debug/slowlog missing header:\n%s", body)
	}
}

// TestPprofGate checks the profiling surface is opt-in: 404 without the
// flag, a real profile with it.
func TestPprofGate(t *testing.T) {
	db := newTestStore(t, 1)
	srv, _ := startServer(t, db, server.Config{})

	res, _ := scrape(t, srv, false, "/debug/pprof/profile?seconds=1")
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled: /debug/pprof/profile status = %d, want 404", res.StatusCode)
	}
	// The metrics dump must still be reachable at / and /metrics.
	if res, _ := scrape(t, srv, false, "/"); res.StatusCode != http.StatusOK {
		t.Errorf("/ status = %d, want 200", res.StatusCode)
	}

	res, body := scrape(t, srv, true, "/debug/pprof/profile?seconds=1")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled: /debug/pprof/profile status = %d, body %q", res.StatusCode, body)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("profile Content-Type = %q, want application/octet-stream", ct)
	}
	if len(body) == 0 {
		t.Error("profile body empty")
	}
}

// TestStatsQuantileTable checks STATS carries the per-family latency
// table after traffic.
func TestStatsQuantileTable(t *testing.T) {
	db := newTestStore(t, 1)
	_, addr := startServer(t, db, server.Config{})
	c := dial(t, addr)
	for i := 0; i < 16; i++ {
		if err := c.Set([]byte(fmt.Sprintf("q-%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Get([]byte(fmt.Sprintf("q-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"command latency", "p99.9", "set", "get", "commit pipeline stages", "coalesce"} {
		if !strings.Contains(stats, want) {
			t.Errorf("STATS missing %q:\n%s", want, stats)
		}
	}
}

// TestDisableObservability checks the off switch: commands still work,
// the latency series render all-zero, and EVENTS/SLOWLOG reply empty
// rather than erroring.
func TestDisableObservability(t *testing.T) {
	opts := lsm.TriadOptions(nil)
	opts.MemtableBytes = 256 << 10
	db, err := shard.Open(shard.Options{
		Shards: 1, Engine: opts, NewFS: shard.MemFS(),
		DisableObservability: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, db, server.Config{DisableObservability: true})
	c := dial(t, addr)
	if err := c.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushStore(); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Do("EVENTS"); err != nil || v.IsError() || len(v.Elems) != 0 {
		t.Fatalf("EVENTS with observability off = %v (err %v), want empty array", v, err)
	}
	if v, err := c.Do("SLOWLOG", []byte("GET")); err != nil || v.IsError() || len(v.Elems) != 0 {
		t.Fatalf("SLOWLOG with observability off = %v (err %v), want empty array", v, err)
	}
	_, text := scrape(t, srv, false, "/metrics")
	if !strings.Contains(text, `triad_cmd_latency_seconds_count{cmd="set"} 0`) {
		t.Error("disabled observability should render all-zero histograms")
	}
	if !strings.Contains(text, "triad_user_writes_total 1") {
		t.Error("engine counters must survive observability off")
	}
}
