package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/base"
	"repro/internal/lsm"
	"repro/internal/obs"
	"repro/internal/resp"
)

// reply is one slot in a connection's in-order response queue. Either it
// is ready (v), or it waits on a group commit (pb) and resolves to ok or
// to the batch's error.
//
// Tracked replies carry their command's family, start time and first
// key; the writer records the latency when the reply resolves — which
// for group-committed writes is the moment the batch is durable, so the
// measured time is what the client actually waited server-side.
type reply struct {
	v  resp.Value
	pb *pending
	ok resp.Value

	fam     obs.Family
	start   time.Time
	key     []byte
	tracked bool
}

// conn is one client connection: a reader goroutine parses and executes
// commands, a writer goroutine sends replies in request order. The
// bounded replies channel is both the pipeline and the backpressure.
type conn struct {
	srv *Server
	nc  net.Conn
	r   *resp.Reader
	w   *resp.Writer

	replies chan reply
	// lastWrite is the connection's most recent group-commit enqueue;
	// reads wait on it so a connection observes its own writes.
	lastWrite *pending
	quit      bool        // QUIT received: stop reading after replying
	draining  atomic.Bool // server shutdown: reader unblocked via read deadline
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:     s,
		nc:      nc,
		r:       resp.NewReader(nc),
		w:       resp.NewWriter(nc),
		replies: make(chan reply, s.cfg.MaxPipeline),
	}
}

// beginDrain unblocks the reader (which may be parked in a blocking
// Read) so a server shutdown can proceed; in-flight replies still drain.
func (c *conn) beginDrain() {
	c.draining.Store(true)
	c.nc.SetReadDeadline(time.Now())
}

// serve runs the connection to completion: reader inline, writer in a
// goroutine, joined by the replies queue.
func (c *conn) serve() {
	defer c.nc.Close()
	// Cursors die with their connection: release any the client left
	// open, so an abrupt disconnect cannot pin snapshots past the TTL.
	defer c.srv.cursors.removeConn(c)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c.writeLoop()
	}()
	c.readLoop()
	close(c.replies)
	<-writerDone
}

func (c *conn) writeLoop() {
	ob := c.srv.ob
	for rep := range c.replies {
		if rep.pb != nil {
			<-rep.pb.done
			if rep.pb.err != nil {
				c.w.WriteError(fmtErr(rep.pb.err))
			} else {
				c.w.WriteValue(rep.ok)
			}
		} else {
			c.w.WriteValue(rep.v)
		}
		if rep.tracked {
			ob.observe(rep.fam, rep.key, rep.start)
		}
		// Flush when the pipeline is momentarily empty: one syscall per
		// burst instead of one per reply.
		if len(c.replies) == 0 {
			var fs time.Time
			if ob != nil {
				fs = time.Now()
			}
			err := c.w.Flush()
			if ob != nil {
				ob.stage[obs.StageReplyFlush].Record(time.Since(fs))
			}
			if err != nil {
				// Client gone: closing the socket unblocks the reader;
				// keep draining the queue so it never blocks either.
				c.nc.Close()
			}
		}
	}
	c.w.Flush()
}

func (c *conn) readLoop() {
	for !c.quit {
		args, err := c.r.ReadCommand()
		if err != nil {
			var pe *resp.ProtocolError
			switch {
			case errors.As(err, &pe):
				// Speak before hanging up, as redis does.
				c.send(resp.Error("ERR protocol error: " + pe.Reason))
			case errors.Is(err, io.EOF):
			case errors.Is(err, os.ErrDeadlineExceeded) && c.draining.Load():
				// Server shutdown, not a client fault.
			default:
				c.srv.cfg.Logf("server: conn %s: read: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		c.srv.commands.Add(1)
		c.dispatch(args)
	}
}

// send queues an already-resolved reply.
func (c *conn) send(v resp.Value) { c.replies <- reply{v: v} }

// sendTracked queues a resolved reply whose latency the writer records
// at send time under the command's family.
func (c *conn) sendTracked(v resp.Value, fam obs.Family, start time.Time, key []byte) {
	c.replies <- reply{v: v, fam: fam, start: start, key: key, tracked: c.srv.ob != nil}
}

// dispatch executes one parsed command. Commands are case-insensitive.
func (c *conn) dispatch(args [][]byte) {
	var start time.Time
	if c.srv.ob != nil {
		start = time.Now()
	}
	switch cmd := asciiUpper(args[0]); cmd {
	case "PING":
		if len(args) > 1 {
			c.send(resp.Bulk(args[1]))
		} else {
			c.send(resp.Simple("PONG"))
		}
	case "QUIT":
		c.quit = true
		c.send(resp.Simple("OK"))
	case "GET":
		if !c.wantArgs(args, 2, 2, "GET key") {
			return
		}
		c.barrier()
		c.sendTracked(c.get(args[1]), obs.FamGet, start, args[1])
	case "MGET":
		if !c.wantArgs(args, 2, -1, "MGET key [key ...]") {
			return
		}
		c.barrier()
		elems := make([]resp.Value, 0, len(args)-1)
		for _, k := range args[1:] {
			elems = append(elems, c.get(k))
		}
		c.sendTracked(resp.Array(elems...), obs.FamMGet, start, args[1])
	case "SET":
		if !c.wantArgs(args, 3, 3, "SET key value") {
			return
		}
		c.write(args[1:2], []base.Entry{{Key: args[1], Value: args[2], Kind: base.KindSet}}, resp.Simple("OK"), obs.FamSet, start)
	case "DEL":
		if !c.wantArgs(args, 2, -1, "DEL key [key ...]") {
			return
		}
		entries := make([]base.Entry, 0, len(args)-1)
		for _, k := range args[1:] {
			entries = append(entries, base.Entry{Key: k, Kind: base.KindDelete})
		}
		// Replies with the number of tombstones written, not the redis
		// "keys that existed" count — existence would cost a read per
		// key on an LSM.
		c.write(args[1:], entries, resp.Int(int64(len(entries))), obs.FamDel, start)
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			c.send(resp.Error("ERR wrong number of arguments: MSET key value [key value ...]"))
			return
		}
		keys := make([][]byte, 0, (len(args)-1)/2)
		entries := make([]base.Entry, 0, (len(args)-1)/2)
		for i := 1; i < len(args); i += 2 {
			keys = append(keys, args[i])
			entries = append(entries, base.Entry{Key: args[i], Value: args[i+1], Kind: base.KindSet})
		}
		c.write(keys, entries, resp.Simple("OK"), obs.FamMSet, start)
	case "SCAN":
		// Subcommand forms first: SCAN CONT <cursor> [count] resumes a
		// server-side cursor, SCAN CLOSE <cursor> releases one. The
		// subcommand word must be followed by a cursor-shaped token
		// ("c" + digits, the only ids the server hands out), so an open
		// scan whose literal start key is "cont"/"close" still works —
		// it is only shadowed when its limit also looks like a cursor.
		if len(args) >= 3 && isCursorID(args[2]) {
			switch asciiUpper(args[1]) {
			case "CONT":
				if !c.wantArgs(args, 3, 4, "SCAN CONT cursor [count]") {
					return
				}
				c.scanCont(args[2], args[3:], start)
				return
			case "CLOSE":
				if !c.wantArgs(args, 3, 3, "SCAN CLOSE cursor") {
					return
				}
				c.scanClose(args[2])
				return
			}
		}
		if !c.wantArgs(args, 1, 4, "SCAN [start [limit [count]]]") {
			return
		}
		c.barrier()
		c.scan(args[1:], start)
	case "EVENTS":
		if !c.wantArgs(args, 1, 2, "EVENTS [count]") {
			return
		}
		c.events(args[1:])
	case "SLOWLOG":
		if !c.wantArgs(args, 1, 3, "SLOWLOG [GET [count] | LEN | RESET]") {
			return
		}
		c.slowlog(args[1:])
	case "STATS":
		if !c.wantArgs(args, 1, 1, "STATS") {
			return
		}
		c.barrier()
		c.send(resp.Bulk([]byte(c.srv.statsText())))
	case "FLUSH":
		if !c.wantArgs(args, 1, 1, "FLUSH") {
			return
		}
		c.barrier()
		if err := c.srv.store.Flush(); err != nil {
			c.send(resp.Error(fmtErr(err)))
			return
		}
		c.send(resp.Simple("OK"))
	default:
		c.send(resp.Error(fmt.Sprintf("ERR unknown command '%s'", sanitize(cmd))))
	}
}

// wantArgs validates arity ([minA, maxA]; maxA < 0 means unbounded).
func (c *conn) wantArgs(args [][]byte, minA, maxA int, usage string) bool {
	if len(args) < minA || (maxA >= 0 && len(args) > maxA) {
		c.send(resp.Error("ERR wrong number of arguments: " + usage))
		return false
	}
	return true
}

// barrier makes a following read observe the connection's last enqueued
// write group (read-your-writes within a connection). It is keyed on
// the group's epoch: wait for the epoch to be assigned (coalesce time),
// then for the store's commit watermark to reach it. The barrier does
// not need the group's error — the write's own queued reply carries it.
func (c *conn) barrier() {
	pb := c.lastWrite
	if pb == nil {
		return
	}
	c.lastWrite = nil
	<-pb.sealed
	if pb.epoch == 0 {
		// Prepare failed; the group never entered the commit order.
		<-pb.done
		return
	}
	c.srv.store.WaitCommitted(pb.epoch)
}

// get executes a point read and shapes the reply.
func (c *conn) get(key []byte) resp.Value {
	v, err := c.srv.store.Get(key)
	switch {
	case err == nil:
		return resp.Bulk(v)
	case errors.Is(err, lsm.ErrNotFound):
		return resp.NullBulk()
	default:
		return resp.Error(fmtErr(err))
	}
}

// write routes entries through the group committer (or applies them
// directly when group commit is off). Keys are validated here, before
// they can reach the shared batch: one connection's empty key must fail
// that connection's command, not everybody's group.
func (c *conn) write(keys [][]byte, entries []base.Entry, ok resp.Value, fam obs.Family, start time.Time) {
	for _, k := range keys {
		if len(k) == 0 {
			c.send(resp.Error("ERR empty key"))
			return
		}
	}
	var key []byte
	if len(keys) > 0 {
		key = keys[0]
	}
	if c.srv.gc == nil {
		var b lsm.Batch
		for _, e := range entries {
			b.PutEntry(e)
		}
		if err := c.srv.store.Apply(&b); err != nil {
			c.send(resp.Error(fmtErr(err)))
			return
		}
		c.sendTracked(ok, fam, start, key)
		return
	}
	pb, err := c.srv.gc.enqueue(entries)
	if err != nil {
		c.send(resp.Error(fmtErr(err)))
		return
	}
	c.lastWrite = pb
	c.replies <- reply{pb: pb, ok: ok, fam: fam, start: start, key: key, tracked: c.srv.ob != nil}
}

// scanCount parses the optional COUNT argument, capped at the server's
// per-page maximum.
func (c *conn) scanCount(args [][]byte) (int, bool) {
	count := c.srv.cfg.ScanMaxEntries
	if len(args) > 0 {
		n, err := strconv.Atoi(string(args[0]))
		if err != nil || n <= 0 {
			c.send(resp.Error("ERR invalid SCAN count"))
			return 0, false
		}
		if n < count {
			count = n
		}
	}
	return count, true
}

// scan serves SCAN [start [limit [count]]]: it pins a cross-shard
// snapshot, opens a streaming iterator on it, and replies with
// [cursor, k1, v1, ...] — the first page plus the cursor to resume
// from. The cursor is "0" when the page already exhausted the range
// (nothing is retained server-side); otherwise the snapshot stays
// pinned until SCAN CONT drains it, SCAN CLOSE releases it, the idle
// TTL fires, or the connection dies. Because every page reads the same
// pinned snapshot, paging is repeatable: concurrent writes — including
// cross-shard batches — never appear mid-scan.
func (c *conn) scan(args [][]byte, start0 time.Time) {
	var start, limit []byte
	if len(args) > 0 && len(args[0]) > 0 {
		start = args[0]
	}
	if len(args) > 1 && len(args[1]) > 0 {
		limit = args[1]
	}
	count, ok := c.scanCount(args[2:])
	if !ok {
		return
	}
	if !c.srv.cursors.canOpen(c) {
		c.send(resp.Error(fmtErr(c.srv.cursors.errTooManyCursors())))
		return
	}
	snap, err := c.srv.store.NewSnapshot()
	if err != nil {
		c.send(resp.Error(fmtErr(err)))
		return
	}
	it, err := snap.NewIterator(start, limit)
	if err != nil {
		snap.Close()
		c.send(resp.Error(fmtErr(err)))
		return
	}
	cur, err := c.srv.cursors.open(c, snap, it)
	if err != nil {
		it.Close()
		snap.Close()
		c.send(resp.Error(fmtErr(err)))
		return
	}
	v, _ := c.srv.cursors.readPage(cur, count)
	c.sendTracked(v, obs.FamScan, start0, start)
}

// scanCont serves SCAN CONT <cursor> [count]: the next page of a
// cursor's pinned scan. No read barrier — the whole point is that the
// cursor reads its original snapshot, not the connection's latest
// writes.
func (c *conn) scanCont(id []byte, args [][]byte, start0 time.Time) {
	count, ok := c.scanCount(args)
	if !ok {
		return
	}
	cur, ok := c.srv.cursors.lookup(c, string(id))
	if !ok {
		c.send(resp.Error("ERR unknown cursor"))
		return
	}
	v, _ := c.srv.cursors.readPage(cur, count)
	c.sendTracked(v, obs.FamScan, start0, id)
}

// scanClose serves SCAN CLOSE <cursor>: releases the cursor's iterator
// and pinned snapshot.
func (c *conn) scanClose(id []byte) {
	cur, ok := c.srv.cursors.lookup(c, string(id))
	if !ok {
		c.send(resp.Error("ERR unknown cursor"))
		return
	}
	c.srv.cursors.remove(cur)
	c.send(resp.Simple("OK"))
}

// events serves EVENTS [count]: the store's background-event journal,
// newest first, one bulk string per event. An engine without a journal
// (observability disabled) replies with an empty array.
func (c *conn) events(args [][]byte) {
	maxN := 0
	if len(args) > 0 {
		n, err := strconv.Atoi(string(args[0]))
		if err != nil || n <= 0 {
			c.send(resp.Error("ERR invalid EVENTS count"))
			return
		}
		maxN = n
	}
	evs := c.srv.store.Events().Events(maxN)
	elems := make([]resp.Value, 0, len(evs))
	for _, e := range evs {
		elems = append(elems, resp.Bulk([]byte(e.String())))
	}
	c.send(resp.Array(elems...))
}

// slowlog serves SLOWLOG [GET [count] | LEN | RESET] over the server's
// slow-command ring (redis-flavored surface, same semantics).
func (c *conn) slowlog(args [][]byte) {
	var log *obs.SlowLog
	if c.srv.ob != nil {
		log = c.srv.ob.slow
	}
	sub := "GET"
	if len(args) > 0 {
		sub = asciiUpper(args[0])
	}
	switch sub {
	case "GET":
		maxN := 0
		if len(args) > 1 {
			n, err := strconv.Atoi(string(args[1]))
			if err != nil || n <= 0 {
				c.send(resp.Error("ERR invalid SLOWLOG count"))
				return
			}
			maxN = n
		}
		entries := log.Entries(maxN)
		elems := make([]resp.Value, 0, len(entries))
		for _, e := range entries {
			elems = append(elems, resp.Bulk([]byte(e.String())))
		}
		c.send(resp.Array(elems...))
	case "LEN":
		c.send(resp.Int(int64(len(log.Entries(0)))))
	case "RESET":
		log.Reset()
		c.send(resp.Simple("OK"))
	default:
		c.send(resp.Error("ERR unknown SLOWLOG subcommand: SLOWLOG [GET [count] | LEN | RESET]"))
	}
}

// asciiUpper uppercases a command name without allocating for the common
// already-upper case.
func asciiUpper(b []byte) string {
	for i := 0; i < len(b); i++ {
		if b[i] >= 'a' && b[i] <= 'z' {
			u := make([]byte, len(b))
			for j := range b {
				u[j] = b[j]
				if u[j] >= 'a' && u[j] <= 'z' {
					u[j] -= 'a' - 'A'
				}
			}
			return string(u)
		}
	}
	return string(b)
}

// sanitize keeps hostile command names printable inside error replies.
func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		if c < 0x20 || c > 0x7e {
			out[i] = '?'
		}
	}
	if len(out) > 64 {
		out = out[:64]
	}
	return string(out)
}
