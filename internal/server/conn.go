package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/base"
	"repro/internal/lsm"
	"repro/internal/obs"
	"repro/internal/resp"
)

// reply is one slot in a connection's in-order response queue. Either it
// is ready (v), or it waits on a group commit (pb) and resolves to ok or
// to the batch's error.
//
// Tracked replies carry their command's family, start time and first
// key; the writer records the latency when the reply resolves — which
// for group-committed writes is the moment the batch is durable, so the
// measured time is what the client actually waited server-side.
type reply struct {
	v  resp.Value
	pb *pending
	ok resp.Value

	fam     obs.Family
	start   time.Time
	key     []byte
	tracked bool
	// tr is the command's sampled trace (nil almost always). The writer
	// records the reply_flush span into it and finishes it once the
	// reply has left the socket buffer.
	tr *obs.Trace
}

// conn is one client connection: a reader goroutine parses and executes
// commands, a writer goroutine sends replies in request order. The
// bounded replies channel is both the pipeline and the backpressure.
type conn struct {
	srv *Server
	nc  net.Conn
	r   *resp.Reader
	w   *resp.Writer

	replies chan reply
	// lastWrite is the connection's most recent group-commit enqueue;
	// reads wait on it so a connection observes its own writes.
	lastWrite *pending
	quit      bool        // QUIT received: stop reading after replying
	draining  atomic.Bool // server shutdown: reader unblocked via read deadline
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:     s,
		nc:      nc,
		r:       resp.NewReader(nc),
		w:       resp.NewWriter(nc),
		replies: make(chan reply, s.cfg.MaxPipeline),
	}
}

// beginDrain unblocks the reader (which may be parked in a blocking
// Read) so a server shutdown can proceed; in-flight replies still drain.
func (c *conn) beginDrain() {
	c.draining.Store(true)
	c.nc.SetReadDeadline(time.Now())
}

// serve runs the connection to completion: reader inline, writer in a
// goroutine, joined by the replies queue.
func (c *conn) serve() {
	defer c.nc.Close()
	// Cursors die with their connection: release any the client left
	// open, so an abrupt disconnect cannot pin snapshots past the TTL.
	defer c.srv.cursors.removeConn(c)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c.writeLoop()
	}()
	c.readLoop()
	close(c.replies)
	<-writerDone
}

func (c *conn) writeLoop() {
	ob := c.srv.ob
	// ftr collects sampled replies written since the last flush: the
	// flush that actually puts their bytes on the wire is the one that
	// ends them, so the reply_flush span and Finish happen there.
	var ftr []*obs.Trace
	for rep := range c.replies {
		if rep.pb != nil {
			<-rep.pb.done
			if rep.pb.err != nil {
				c.w.WriteError(fmtErr(rep.pb.err))
			} else {
				c.w.WriteValue(rep.ok)
			}
		} else {
			c.w.WriteValue(rep.v)
		}
		if rep.tracked {
			ob.observe(rep.fam, rep.key, rep.start, rep.tr)
		}
		if rep.tr != nil {
			ftr = append(ftr, rep.tr)
		}
		// Flush when the pipeline is momentarily empty: one syscall per
		// burst instead of one per reply.
		if len(c.replies) == 0 {
			var fs time.Time
			if ob != nil {
				fs = time.Now()
			}
			err := c.w.Flush()
			if ob != nil {
				fd := time.Since(fs)
				ob.stage[obs.StageReplyFlush].Record(fd)
				for _, tr := range ftr {
					tr.SpanAt(obs.SpanReplyFlush, fs, fd, "")
					ob.tracer.Finish(tr)
				}
				ftr = ftr[:0]
			}
			if err != nil {
				// Client gone: closing the socket unblocks the reader;
				// keep draining the queue so it never blocks either.
				c.nc.Close()
			}
		}
	}
	c.w.Flush()
	// Leftovers (the conn died mid-burst) still reach the ring.
	for _, tr := range ftr {
		ob.tracer.Finish(tr)
	}
}

func (c *conn) readLoop() {
	for !c.quit {
		// parseStart is taken before the blocking read so a sampled
		// trace's decode span covers socket wait + RESP parse — the
		// request's true server-side beginning.
		var parseStart time.Time
		if c.srv.ob != nil {
			parseStart = time.Now()
		}
		args, err := c.r.ReadCommand()
		if err != nil {
			var pe *resp.ProtocolError
			switch {
			case errors.As(err, &pe):
				// Speak before hanging up, as redis does.
				c.send(resp.Error("ERR protocol error: " + pe.Reason))
			case errors.Is(err, io.EOF):
			case errors.Is(err, os.ErrDeadlineExceeded) && c.draining.Load():
				// Server shutdown, not a client fault.
			default:
				c.srv.cfg.Logf("server: conn %s: read: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		c.srv.commands.Add(1)
		c.dispatch(args, parseStart)
	}
}

// send queues an already-resolved reply.
func (c *conn) send(v resp.Value) { c.replies <- reply{v: v} }

// sendTracked queues a resolved reply whose latency the writer records
// at send time under the command's family (tr: the command's sampled
// trace, nil when unsampled).
func (c *conn) sendTracked(v resp.Value, fam obs.Family, start time.Time, key []byte, tr *obs.Trace) {
	c.replies <- reply{v: v, fam: fam, start: start, key: key, tracked: c.srv.ob != nil, tr: tr}
}

// trace samples a trace for the command, recording the decode span
// (socket wait + parse, parseStart -> now). Nil when unsampled or
// observability is off — the common case, costing one random draw.
func (c *conn) trace(cmd string, key []byte, parseStart, now time.Time) *obs.Trace {
	ob := c.srv.ob
	if ob == nil {
		return nil
	}
	tr := ob.tracer.Start(cmd, key, parseStart)
	if tr != nil {
		tr.SpanAt(obs.SpanDecode, parseStart, now.Sub(parseStart), "")
	}
	return tr
}

// dispatch executes one parsed command. Commands are case-insensitive.
func (c *conn) dispatch(args [][]byte, parseStart time.Time) {
	var start time.Time
	if c.srv.ob != nil {
		start = time.Now()
	}
	switch cmd := asciiUpper(args[0]); cmd {
	case "PING":
		if len(args) > 1 {
			c.send(resp.Bulk(args[1]))
		} else {
			c.send(resp.Simple("PONG"))
		}
	case "QUIT":
		c.quit = true
		c.send(resp.Simple("OK"))
	case "GET":
		if !c.wantArgs(args, 2, 2, "GET key") {
			return
		}
		tr := c.trace("GET", args[1], parseStart, start)
		c.barrier(tr)
		c.sendTracked(c.get(args[1], tr), obs.FamGet, start, args[1], tr)
	case "MGET":
		if !c.wantArgs(args, 2, -1, "MGET key [key ...]") {
			return
		}
		tr := c.trace("MGET", args[1], parseStart, start)
		c.barrier(tr)
		elems := make([]resp.Value, 0, len(args)-1)
		for _, k := range args[1:] {
			elems = append(elems, c.get(k, tr))
		}
		c.sendTracked(resp.Array(elems...), obs.FamMGet, start, args[1], tr)
	case "SET":
		if !c.wantArgs(args, 3, 3, "SET key value") {
			return
		}
		tr := c.trace("SET", args[1], parseStart, start)
		c.write(args[1:2], []base.Entry{{Key: args[1], Value: args[2], Kind: base.KindSet}}, resp.Simple("OK"), obs.FamSet, start, tr)
	case "DEL":
		if !c.wantArgs(args, 2, -1, "DEL key [key ...]") {
			return
		}
		entries := make([]base.Entry, 0, len(args)-1)
		for _, k := range args[1:] {
			entries = append(entries, base.Entry{Key: k, Kind: base.KindDelete})
		}
		// Replies with the number of tombstones written, not the redis
		// "keys that existed" count — existence would cost a read per
		// key on an LSM.
		tr := c.trace("DEL", args[1], parseStart, start)
		c.write(args[1:], entries, resp.Int(int64(len(entries))), obs.FamDel, start, tr)
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			c.send(resp.Error("ERR wrong number of arguments: MSET key value [key value ...]"))
			return
		}
		keys := make([][]byte, 0, (len(args)-1)/2)
		entries := make([]base.Entry, 0, (len(args)-1)/2)
		for i := 1; i < len(args); i += 2 {
			keys = append(keys, args[i])
			entries = append(entries, base.Entry{Key: args[i], Value: args[i+1], Kind: base.KindSet})
		}
		tr := c.trace("MSET", args[1], parseStart, start)
		c.write(keys, entries, resp.Simple("OK"), obs.FamMSet, start, tr)
	case "SCAN":
		// Subcommand forms first: SCAN CONT <cursor> [count] resumes a
		// server-side cursor, SCAN CLOSE <cursor> releases one. The
		// subcommand word must be followed by a cursor-shaped token
		// ("c" + digits, the only ids the server hands out), so an open
		// scan whose literal start key is "cont"/"close" still works —
		// it is only shadowed when its limit also looks like a cursor.
		if len(args) >= 3 && isCursorID(args[2]) {
			switch asciiUpper(args[1]) {
			case "CONT":
				if !c.wantArgs(args, 3, 4, "SCAN CONT cursor [count]") {
					return
				}
				c.scanCont(args[2], args[3:], start)
				return
			case "CLOSE":
				if !c.wantArgs(args, 3, 3, "SCAN CLOSE cursor") {
					return
				}
				c.scanClose(args[2])
				return
			}
		}
		if !c.wantArgs(args, 1, 4, "SCAN [start [limit [count]]]") {
			return
		}
		c.barrier(nil)
		c.scan(args[1:], start)
	case "EVENTS":
		if !c.wantArgs(args, 1, 2, "EVENTS [count]") {
			return
		}
		c.events(args[1:])
	case "SLOWLOG":
		if !c.wantArgs(args, 1, 3, "SLOWLOG [GET [count] | LEN | RESET]") {
			return
		}
		c.slowlog(args[1:])
	case "TRACE":
		if !c.wantArgs(args, 2, 3, "TRACE [RECENT [count] | GET id]") {
			return
		}
		c.traceCmd(args[1:])
	case "STATS":
		if !c.wantArgs(args, 1, 1, "STATS") {
			return
		}
		c.barrier(nil)
		c.send(resp.Bulk([]byte(c.srv.statsText())))
	case "FLUSH":
		if !c.wantArgs(args, 1, 1, "FLUSH") {
			return
		}
		c.barrier(nil)
		if err := c.srv.store.Flush(); err != nil {
			c.send(resp.Error(fmtErr(err)))
			return
		}
		c.send(resp.Simple("OK"))
	default:
		c.send(resp.Error(fmt.Sprintf("ERR unknown command '%s'", sanitize(cmd))))
	}
}

// wantArgs validates arity ([minA, maxA]; maxA < 0 means unbounded).
func (c *conn) wantArgs(args [][]byte, minA, maxA int, usage string) bool {
	if len(args) < minA || (maxA >= 0 && len(args) > maxA) {
		c.send(resp.Error("ERR wrong number of arguments: " + usage))
		return false
	}
	return true
}

// barrier makes a following read observe the connection's last enqueued
// write group (read-your-writes within a connection). It is keyed on
// the group's epoch: wait for the epoch to be assigned (coalesce time),
// then for the store's commit watermark to reach it. The barrier does
// not need the group's error — the write's own queued reply carries it.
func (c *conn) barrier(tr *obs.Trace) {
	pb := c.lastWrite
	if pb == nil {
		return
	}
	c.lastWrite = nil
	var bs time.Time
	if tr != nil {
		bs = time.Now()
	}
	<-pb.sealed
	if pb.epoch == 0 {
		// Prepare failed; the group never entered the commit order.
		<-pb.done
	} else {
		c.srv.store.WaitCommitted(pb.epoch)
	}
	tr.Span(obs.SpanBarrier, bs, "read-your-writes wait")
}

// get executes a point read and shapes the reply. A sampled read passes
// its trace down so cache-missing table reads surface as sstable_read
// spans.
func (c *conn) get(key []byte, tr *obs.Trace) resp.Value {
	v, err := c.srv.store.GetTraced(key, tr)
	switch {
	case err == nil:
		return resp.Bulk(v)
	case errors.Is(err, lsm.ErrNotFound):
		return resp.NullBulk()
	default:
		return resp.Error(fmtErr(err))
	}
}

// write routes entries through the group committer (or applies them
// directly when group commit is off). Keys are validated here, before
// they can reach the shared batch: one connection's empty key must fail
// that connection's command, not everybody's group.
func (c *conn) write(keys [][]byte, entries []base.Entry, ok resp.Value, fam obs.Family, start time.Time, tr *obs.Trace) {
	for _, k := range keys {
		if len(k) == 0 {
			c.replies <- reply{v: resp.Error("ERR empty key"), tr: tr}
			return
		}
	}
	var key []byte
	if len(keys) > 0 {
		key = keys[0]
	}
	if c.srv.gc == nil {
		var b lsm.Batch
		for _, e := range entries {
			b.PutEntry(e)
		}
		err := c.applyDirect(&b, tr)
		if err != nil {
			c.replies <- reply{v: resp.Error(fmtErr(err)), tr: tr}
			return
		}
		c.sendTracked(ok, fam, start, key, tr)
		return
	}
	pb, err := c.srv.gc.enqueue(entries, tr)
	if err != nil {
		c.replies <- reply{v: resp.Error(fmtErr(err)), tr: tr}
		return
	}
	c.lastWrite = pb
	c.replies <- reply{pb: pb, ok: ok, fam: fam, start: start, key: key, tracked: c.srv.ob != nil, tr: tr}
}

// applyDirect commits a batch outside the group committer (group commit
// disabled). An unsampled write takes the store's one-call Apply; a
// sampled one runs Prepare/Commit by hand so the trace rides the batch
// into the engine and the commit span is recorded.
func (c *conn) applyDirect(b *lsm.Batch, tr *obs.Trace) error {
	if tr == nil {
		return c.srv.store.Apply(b)
	}
	cm, err := c.srv.store.Prepare(b)
	if err != nil {
		return err
	}
	cm.Trace(obs.Traces{tr})
	cs := time.Now()
	err = cm.Commit()
	tr.Span(obs.SpanCommit, cs, "")
	return err
}

// scanCount parses the optional COUNT argument, capped at the server's
// per-page maximum.
func (c *conn) scanCount(args [][]byte) (int, bool) {
	count := c.srv.cfg.ScanMaxEntries
	if len(args) > 0 {
		n, err := strconv.Atoi(string(args[0]))
		if err != nil || n <= 0 {
			c.send(resp.Error("ERR invalid SCAN count"))
			return 0, false
		}
		if n < count {
			count = n
		}
	}
	return count, true
}

// scan serves SCAN [start [limit [count]]]: it pins a cross-shard
// snapshot, opens a streaming iterator on it, and replies with
// [cursor, k1, v1, ...] — the first page plus the cursor to resume
// from. The cursor is "0" when the page already exhausted the range
// (nothing is retained server-side); otherwise the snapshot stays
// pinned until SCAN CONT drains it, SCAN CLOSE releases it, the idle
// TTL fires, or the connection dies. Because every page reads the same
// pinned snapshot, paging is repeatable: concurrent writes — including
// cross-shard batches — never appear mid-scan.
func (c *conn) scan(args [][]byte, start0 time.Time) {
	var start, limit []byte
	if len(args) > 0 && len(args[0]) > 0 {
		start = args[0]
	}
	if len(args) > 1 && len(args[1]) > 0 {
		limit = args[1]
	}
	count, ok := c.scanCount(args[2:])
	if !ok {
		return
	}
	if !c.srv.cursors.canOpen(c) {
		c.send(resp.Error(fmtErr(c.srv.cursors.errTooManyCursors())))
		return
	}
	snap, err := c.srv.store.NewSnapshot()
	if err != nil {
		c.send(resp.Error(fmtErr(err)))
		return
	}
	it, err := snap.NewIterator(start, limit)
	if err != nil {
		snap.Close()
		c.send(resp.Error(fmtErr(err)))
		return
	}
	cur, err := c.srv.cursors.open(c, snap, it)
	if err != nil {
		it.Close()
		snap.Close()
		c.send(resp.Error(fmtErr(err)))
		return
	}
	v, _ := c.srv.cursors.readPage(cur, count)
	c.sendTracked(v, obs.FamScan, start0, start, nil)
}

// scanCont serves SCAN CONT <cursor> [count]: the next page of a
// cursor's pinned scan. No read barrier — the whole point is that the
// cursor reads its original snapshot, not the connection's latest
// writes.
func (c *conn) scanCont(id []byte, args [][]byte, start0 time.Time) {
	count, ok := c.scanCount(args)
	if !ok {
		return
	}
	cur, ok := c.srv.cursors.lookup(c, string(id))
	if !ok {
		c.send(resp.Error("ERR unknown cursor"))
		return
	}
	v, _ := c.srv.cursors.readPage(cur, count)
	c.sendTracked(v, obs.FamScan, start0, id, nil)
}

// scanClose serves SCAN CLOSE <cursor>: releases the cursor's iterator
// and pinned snapshot.
func (c *conn) scanClose(id []byte) {
	cur, ok := c.srv.cursors.lookup(c, string(id))
	if !ok {
		c.send(resp.Error("ERR unknown cursor"))
		return
	}
	c.srv.cursors.remove(cur)
	c.send(resp.Simple("OK"))
}

// events serves EVENTS [count]: the store's background-event journal,
// newest first, one bulk string per event. An engine without a journal
// (observability disabled) replies with an empty array.
func (c *conn) events(args [][]byte) {
	maxN := 0
	if len(args) > 0 {
		n, err := strconv.Atoi(string(args[0]))
		if err != nil || n <= 0 {
			c.send(resp.Error("ERR invalid EVENTS count"))
			return
		}
		maxN = n
	}
	evs := c.srv.store.Events().Events(maxN)
	elems := make([]resp.Value, 0, len(evs))
	for _, e := range evs {
		elems = append(elems, resp.Bulk([]byte(e.String())))
	}
	c.send(resp.Array(elems...))
}

// slowlog serves SLOWLOG [GET [count] | LEN | RESET] over the server's
// slow-command ring (redis-flavored surface, same semantics).
func (c *conn) slowlog(args [][]byte) {
	var log *obs.SlowLog
	if c.srv.ob != nil {
		log = c.srv.ob.slow
	}
	sub := "GET"
	if len(args) > 0 {
		sub = asciiUpper(args[0])
	}
	switch sub {
	case "GET":
		maxN := 0
		if len(args) > 1 {
			n, err := strconv.Atoi(string(args[1]))
			if err != nil || n <= 0 {
				c.send(resp.Error("ERR invalid SLOWLOG count"))
				return
			}
			maxN = n
		}
		entries := log.Entries(maxN)
		elems := make([]resp.Value, 0, len(entries))
		for _, e := range entries {
			elems = append(elems, resp.Bulk([]byte(e.String())))
		}
		c.send(resp.Array(elems...))
	case "LEN":
		c.send(resp.Int(int64(len(log.Entries(0)))))
	case "RESET":
		log.Reset()
		c.send(resp.Simple("OK"))
	default:
		c.send(resp.Error("ERR unknown SLOWLOG subcommand: SLOWLOG [GET [count] | LEN | RESET]"))
	}
}

// traceCmd serves TRACE RECENT [count] (one summary line per retained
// trace, newest first) and TRACE GET <id> (the full span breakdown for
// one trace; ids appear in RECENT output and in slowlog entries as
// trace=#N). With tracing off (-trace-sample 0) RECENT replies with an
// empty array and GET with a null bulk.
func (c *conn) traceCmd(args [][]byte) {
	var tracer *obs.Tracer
	if c.srv.ob != nil {
		tracer = c.srv.ob.tracer
	}
	switch asciiUpper(args[0]) {
	case "RECENT":
		maxN := 0
		if len(args) > 1 {
			n, err := strconv.Atoi(string(args[1]))
			if err != nil || n <= 0 {
				c.send(resp.Error("ERR invalid TRACE RECENT count"))
				return
			}
			maxN = n
		}
		trs := tracer.Recent(maxN)
		elems := make([]resp.Value, 0, len(trs))
		for _, tr := range trs {
			elems = append(elems, resp.Bulk([]byte(tr.String())))
		}
		c.send(resp.Array(elems...))
	case "GET":
		if len(args) != 2 {
			c.send(resp.Error("ERR wrong number of arguments: TRACE GET id"))
			return
		}
		id, err := strconv.ParseUint(strings.TrimPrefix(string(args[1]), "#"), 10, 64)
		if err != nil || id == 0 {
			c.send(resp.Error("ERR invalid trace id"))
			return
		}
		tr := tracer.Get(id)
		if tr == nil {
			c.send(resp.NullBulk())
			return
		}
		c.send(resp.Bulk([]byte(tr.Render())))
	default:
		c.send(resp.Error("ERR unknown TRACE subcommand: TRACE [RECENT [count] | GET id]"))
	}
}

// asciiUpper uppercases a command name without allocating for the common
// already-upper case.
func asciiUpper(b []byte) string {
	for i := 0; i < len(b); i++ {
		if b[i] >= 'a' && b[i] <= 'z' {
			u := make([]byte, len(b))
			for j := range b {
				u[j] = b[j]
				if u[j] >= 'a' && u[j] <= 'z' {
					u[j] -= 'a' - 'A'
				}
			}
			return string(u)
		}
	}
	return string(b)
}

// sanitize keeps hostile command names printable inside error replies.
func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		if c < 0x20 || c > 0x7e {
			out[i] = '?'
		}
	}
	if len(out) > 64 {
		out = out[:64]
	}
	return string(out)
}
