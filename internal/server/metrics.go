package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"repro/internal/bgsched"
	"repro/internal/obs"
)

// MetricsHandler returns the server's HTTP side surface. Serve it on a
// listener of its own, never the RESP port:
//
//		http.ListenAndServe(addr, s.MetricsHandler(false))
//
//	  - GET /metrics (or /) — Prometheus text exposition (format 0.0.4):
//	    engine counters, derived amplifications, per-shard gauges, and the
//	    latency histograms (per command family, per commit-pipeline stage,
//	    per-batch apply).
//	  - GET /stats — the human-readable Stats() text.
//	  - GET /debug/events — the background-event journal, newest first
//	    (?n=100 limits).
//	  - GET /debug/slowlog — the slow-command ring, newest first.
//	  - GET /debug/pprof/* — net/http/pprof, only when enablePprof; the
//	    profiling surface can run arbitrary CPU/heap captures, so it stays
//	    off unless the operator asked for it (triadserver -pprof).
func (s *Server) MetricsHandler(enablePprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.statsText())
	})
	dump := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		fmt.Fprint(w, s.MetricsText())
	}
	mux.HandleFunc("/metrics", dump)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		// "/" is a catch-all pattern; without this check every unknown
		// path — including /debug/pprof/* when profiling is off — would
		// serve the metrics dump instead of a 404.
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		dump(w, r)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		maxN := 0
		if q := r.URL.Query().Get("n"); q != "" {
			if n, err := strconv.Atoi(q); err == nil && n > 0 {
				maxN = n
			}
		}
		j := s.store.Events()
		fmt.Fprintf(w, "# %d events total (ring keeps the most recent)\n", j.Total())
		for _, e := range j.Events(maxN) {
			fmt.Fprintln(w, e)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var tracer *obs.Tracer
		if s.ob != nil {
			tracer = s.ob.tracer
		}
		maxN := 0
		if q := r.URL.Query().Get("n"); q != "" {
			if n, err := strconv.Atoi(q); err == nil && n > 0 {
				maxN = n
			}
		}
		fmt.Fprintf(w, "# %d traces sampled, %d finished (ring keeps the most recent; rate set by -trace-sample)\n",
			tracer.Sampled(), tracer.Finished())
		for _, tr := range tracer.Recent(maxN) {
			fmt.Fprintln(w, tr.Render())
		}
	})
	mux.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var log *obs.SlowLog
		if s.ob != nil {
			log = s.ob.slow
		}
		fmt.Fprintf(w, "# threshold %s, %d slow commands total\n", log.Threshold(), log.Total())
		for _, e := range log.Entries(0) {
			fmt.Fprintln(w, e)
		}
	})
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// MetricsText renders the metrics dump (the /metrics body) in the
// Prometheus text exposition format: every series carries # HELP and
// # TYPE, histograms expose _bucket/_sum/_count, and per-shard series
// are labeled {shard="N"}.
func (s *Server) MetricsText() string {
	var b strings.Builder
	p := obs.NewProm(&b)
	m := s.store.Metrics()

	p.Counter("triad_user_writes_total", "User Put/Delete operations accepted by the store.", "", m.UserWrites)
	p.Counter("triad_user_reads_total", "User Get operations served by the store.", "", m.UserReads)
	p.Counter("triad_user_bytes_total", "Key+value bytes written by users.", "", m.UserBytes)
	p.Counter("triad_bytes_logged_total", "Bytes appended to commit logs.", "", m.BytesLogged)
	p.Counter("triad_bytes_flushed_total", "Bytes written to L0 by flushes.", "", m.BytesFlushed)
	p.Counter("triad_bytes_compacted_total", "Bytes written by compactions.", "", m.BytesCompacted)
	p.Counter("triad_flushes_total", "Memtable flushes completed.", "", m.Flushes)
	p.Counter("triad_flush_skips_total", "TRIAD-MEM small-memtable flush skips (commit-log rewrites).", "", m.FlushSkips)
	p.Counter("triad_compactions_total", "Compactions completed.", "", m.Compactions)
	p.Counter("triad_compactions_deferred_total", "TRIAD-DISK compaction deferrals (insufficient key overlap).", "", m.CompactionsDeferred)
	p.GaugeF("triad_write_amplification", "Store-wide write amplification: (logged+flushed+compacted)/user bytes.", "", m.WriteAmplification())
	p.GaugeF("triad_read_amplification", "Store-wide read amplification: disk reads per user read.", "", m.ReadAmplification())
	p.Counter("triad_write_stalls_total", "Write-stall episodes: writers blocked on memtable or L0 backpressure.", "", m.WriteStalls)
	p.CounterF("triad_write_stall_seconds_total", "Total wall time writers spent blocked in stalls.", "", m.WriteStallTime.Seconds())
	p.Gauge("triad_compaction_backlog_bytes", "Store-wide pending-compaction byte estimate (L0 at trigger plus per-level excess over target).", "", s.store.CompactionDebt())

	if ps := s.store.Scheduler(); ps != nil {
		bs := ps.Stats()
		p.Gauge("triad_bg_workers", "Background pool worker count.", "", int64(bs.Workers))
		p.Gauge("triad_bg_workers_busy", "Background pool workers currently running a task.", "", int64(bs.Busy))
		for c := 0; c < bgsched.NumClasses; c++ {
			p.Gauge("triad_bg_queue_depth", "Tasks queued in the background pool by priority class.",
				fmt.Sprintf("class=%q", bgsched.Class(c)), int64(bs.Queued[c]))
		}
		p.Counter("triad_bg_tasks_completed_total", "Background pool tasks run to completion.", "", bs.Completed)
	}

	cs := s.store.BlockCacheStats()
	p.Counter("triad_block_cache_hits_total", "Block-cache lookups served from memory.", "", cs.Hits)
	p.Counter("triad_block_cache_misses_total", "Block-cache lookups that went to disk.", "", cs.Misses)
	p.Gauge("triad_block_cache_resident_bytes", "Bytes currently resident in the block cache.", "", cs.Resident)
	p.Gauge("triad_block_cache_capacity_bytes", "Configured block-cache capacity.", "", cs.Capacity)
	p.Counter("triad_block_cache_evictions_total", "Blocks evicted to make room.", "", cs.Evictions)
	p.Counter("triad_block_cache_admission_rejects_total", "Blocks the scan-resistant admission policy refused to cache.", "", cs.AdmissionRejects)
	p.GaugeF("triad_block_cache_hit_rate", "Lifetime block-cache hit rate (hits / lookups).", "", cs.HitRate())

	for _, st := range s.store.ShardStats() {
		l := fmt.Sprintf("shard=%q", strconv.Itoa(st.Shard))
		p.Counter("triad_shard_writes_total", "User write operations routed to the shard.", l, st.Writes)
		p.Counter("triad_shard_reads_total", "User read operations routed to the shard.", l, st.Reads)
		p.Gauge("triad_shard_disk_bytes", "On-disk table bytes held by the shard.", l, st.DiskBytes)
		p.Gauge("triad_shard_files", "On-disk table files held by the shard.", l, int64(st.Files))
		p.GaugeF("triad_shard_write_amplification", "The shard's own write amplification.", l, st.WA)
		p.GaugeF("triad_shard_read_amplification", "The shard's own read amplification.", l, st.RA)
		p.GaugeF("triad_shard_hot_budget", "The shard's current TRIAD-MEM hot fraction (auto-tuned when enabled).", l, st.HotBudget)
		p.Gauge("triad_shard_compaction_backlog_bytes", "The shard's pending-compaction byte estimate.", l, st.CompactionDebt)
		p.Counter("triad_shard_write_stalls_total", "Write-stall episodes on the shard.", l, st.WriteStalls)
		p.CounterF("triad_shard_write_stall_seconds_total", "Wall time the shard's writers spent blocked in stalls.", l, st.WriteStallTime.Seconds())
		p.Gauge("triad_shard_snapshots_open", "Live snapshot pins on the shard.", l, int64(st.OpenSnapshots))
		p.Counter("triad_shard_snapshots_leaked_total", "Snapshot pins reclaimed by finalizer instead of Close.", l, st.LeakedSnapshots)
		p.Gauge("triad_shard_overlay_entries", "Preserved old versions in the shard's snapshot overlay.", l, int64(st.OverlayEntries))
		p.Counter("triad_shard_cache_hits_total", "Block-cache lookups by this shard served from memory.", l, st.CacheHits)
		p.Counter("triad_shard_cache_misses_total", "Block-cache lookups by this shard that went to disk.", l, st.CacheMisses)
		p.Gauge("triad_shard_cache_resident_bytes", "Shared-cache bytes currently held by this shard's blocks.", l, st.CacheBytes)
		for src := obs.Source(0); src < obs.NumSources; src++ {
			p.Counter("triad_io_bytes_total",
				"Disk bytes attributed by shard and source. user_write is WA's denominator; wal+flush+compaction_write its numerator; compaction_read is merge input, snapshot_gc zombie bytes reclaimed.",
				fmt.Sprintf("shard=%q,source=%q", strconv.Itoa(st.Shard), src.String()), st.IO[src])
		}
	}

	p.Gauge("triad_commit_epoch", "Store-wide commit watermark (every epoch at or below has committed).", "", int64(s.store.CommittedEpoch()))
	p.Gauge("triad_snapshots_open", "Live cross-shard snapshots.", "", int64(s.store.OpenSnapshots()))
	p.Counter("triad_snapshots_leaked_total", "Cross-shard snapshots reclaimed by finalizer instead of Close.", "", s.store.LeakedSnapshots())
	p.Gauge("triad_overlay_entries", "Preserved old versions across all snapshot overlays.", "", int64(s.store.OverlayEntries()))

	open, total, commands := s.ConnStats()
	p.Gauge("triad_server_connections_open", "Currently open client connections.", "", int64(open))
	p.Counter("triad_server_connections_total", "Client connections ever accepted.", "", total)
	p.Counter("triad_server_commands_total", "Commands parsed and dispatched.", "", commands)
	curOpen, curTotal := s.CursorStats()
	p.Gauge("triad_server_cursors_open", "Open server-side SCAN cursors (each pins a snapshot).", "", int64(curOpen))
	p.Counter("triad_server_cursors_total", "SCAN cursors ever opened.", "", curTotal)
	batches, ops := s.GroupCommitStats()
	p.Counter("triad_server_group_commit_batches_total", "Write groups committed by the group committer.", "", batches)
	p.Counter("triad_server_group_commit_ops_total", "Write operations carried by committed groups.", "", ops)
	if batches > 0 {
		p.GaugeF("triad_server_group_commit_mean_size", "Realized mean group size (ops per batch).", "", float64(ops)/float64(batches))
	}

	// Latency histograms. With observability disabled the recorders are
	// nil and every series renders all-zero, so scrapers see a stable
	// series set either way.
	for f := obs.FamGet; f < obs.NumFamilies; f++ {
		p.Histogram("triad_cmd_latency_seconds",
			"Server-side command latency (dispatch to reply resolution) by command family.",
			fmt.Sprintf("cmd=%q", f.String()), s.ob.cmdHist(f))
	}
	for st := obs.StageCoalesce; st < obs.NumStages; st++ {
		p.Histogram("triad_commit_stage_latency_seconds",
			"Commit-pipeline stage latency: coalesce (batching window), epoch_wait (Prepare), commit (WAL+memtable), reply_flush (socket flush).",
			fmt.Sprintf("stage=%q", st.String()), s.ob.stageHist(st))
	}
	p.Histogram("triad_apply_latency_seconds",
		"Store-level batch commit execution latency (ticket wait + WAL append + memtable insert).",
		"", s.store.ApplyLatency())

	ev := s.store.Events()
	p.Counter("triad_events_total", "Background events (flush/compaction/snapshot-gc/stall) ever journaled.", "", int64(ev.Total()))
	p.Counter("triad_journal_dropped_total", "Background events overwritten in the ring before any reader saw them.", "", int64(ev.Dropped()))
	var slow *obs.SlowLog
	if s.ob != nil {
		slow = s.ob.slow
	}
	p.Counter("triad_server_slow_commands_total", "Commands that exceeded the slowlog threshold.", "", int64(slow.Total()))
	var tracer *obs.Tracer
	if s.ob != nil {
		tracer = s.ob.tracer
	}
	p.Counter("triad_traces_sampled_total", "Commands sampled for end-to-end tracing.", "", int64(tracer.Sampled()))
	p.Counter("triad_traces_finished_total", "Sampled traces finished and retained in the TRACE ring.", "", int64(tracer.Finished()))
	return b.String()
}

// statsText is the STATS / /stats body: the engine dump, the latency
// quantile tables, and the server's own snapshot/cursor accounting.
func (s *Server) statsText() string {
	curOpen, curTotal := s.CursorStats()
	return s.store.Stats() + s.ob.quantileTable() +
		fmt.Sprintf("server: %d cursors open (%d lifetime), %d store snapshots open (%d leaked), %d overlay entries\n",
			curOpen, curTotal, s.store.OpenSnapshots(), s.store.LeakedSnapshots(), s.store.OverlayEntries())
}
