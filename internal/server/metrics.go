package server

import (
	"fmt"
	"net/http"
	"strings"
)

// MetricsHandler returns a plain-text, Prometheus-style dump of the
// engine counters, derived amplifications, the per-shard balance table
// and the server's own counters — so an operator sees WA/RA and shard
// imbalance without attaching a RESP client. Serve it on a side
// listener:
//
//	http.ListenAndServe(addr, s.MetricsHandler())
//
// GET /metrics (or /) returns the counter dump; GET /stats returns the
// human-readable Stats() text.
func (s *Server) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.statsText())
	})
	dump := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, s.MetricsText())
	}
	mux.HandleFunc("/metrics", dump)
	mux.HandleFunc("/", dump)
	return mux
}

// MetricsText renders the metrics dump (the /metrics body).
func (s *Server) MetricsText() string {
	var b strings.Builder
	m := s.store.Metrics()
	line := func(name string, v any) { fmt.Fprintf(&b, "triad_%s %v\n", name, v) }

	line("user_writes_total", m.UserWrites)
	line("user_reads_total", m.UserReads)
	line("user_bytes_total", m.UserBytes)
	line("bytes_logged_total", m.BytesLogged)
	line("bytes_flushed_total", m.BytesFlushed)
	line("bytes_compacted_total", m.BytesCompacted)
	line("flushes_total", m.Flushes)
	line("flush_skips_total", m.FlushSkips)
	line("compactions_total", m.Compactions)
	line("compactions_deferred_total", m.CompactionsDeferred)
	fmt.Fprintf(&b, "triad_write_amplification %.4f\n", m.WriteAmplification())
	fmt.Fprintf(&b, "triad_read_amplification %.4f\n", m.ReadAmplification())

	for _, st := range s.store.ShardStats() {
		fmt.Fprintf(&b, "triad_shard_writes_total{shard=\"%d\"} %d\n", st.Shard, st.Writes)
		fmt.Fprintf(&b, "triad_shard_reads_total{shard=\"%d\"} %d\n", st.Shard, st.Reads)
		fmt.Fprintf(&b, "triad_shard_disk_bytes{shard=\"%d\"} %d\n", st.Shard, st.DiskBytes)
		fmt.Fprintf(&b, "triad_shard_files{shard=\"%d\"} %d\n", st.Shard, st.Files)
		fmt.Fprintf(&b, "triad_shard_write_amplification{shard=\"%d\"} %.4f\n", st.Shard, st.WA)
		fmt.Fprintf(&b, "triad_shard_read_amplification{shard=\"%d\"} %.4f\n", st.Shard, st.RA)
		fmt.Fprintf(&b, "triad_shard_snapshots_open{shard=\"%d\"} %d\n", st.Shard, st.OpenSnapshots)
		fmt.Fprintf(&b, "triad_shard_snapshots_leaked_total{shard=\"%d\"} %d\n", st.Shard, st.LeakedSnapshots)
		fmt.Fprintf(&b, "triad_shard_overlay_entries{shard=\"%d\"} %d\n", st.Shard, st.OverlayEntries)
	}

	line("commit_epoch", s.store.CommittedEpoch())
	line("snapshots_open", s.store.OpenSnapshots())
	line("snapshots_leaked_total", s.store.LeakedSnapshots())
	line("overlay_entries", s.store.OverlayEntries())

	open, total, commands := s.ConnStats()
	line("server_connections_open", open)
	line("server_connections_total", total)
	line("server_commands_total", commands)
	curOpen, curTotal := s.CursorStats()
	line("server_cursors_open", curOpen)
	line("server_cursors_total", curTotal)
	batches, ops := s.GroupCommitStats()
	line("server_group_commit_batches_total", batches)
	line("server_group_commit_ops_total", ops)
	if batches > 0 {
		fmt.Fprintf(&b, "triad_server_group_commit_mean_size %.2f\n", float64(ops)/float64(batches))
	}
	return b.String()
}

// statsText is the STATS / /stats body: the engine dump plus the
// server's own snapshot/cursor accounting.
func (s *Server) statsText() string {
	curOpen, curTotal := s.CursorStats()
	return s.store.Stats() + fmt.Sprintf("server: %d cursors open (%d lifetime), %d store snapshots open (%d leaked), %d overlay entries\n",
		curOpen, curTotal, s.store.OpenSnapshots(), s.store.LeakedSnapshots(), s.store.OverlayEntries())
}
