package server

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
)

// serverObs bundles the server's latency instrumentation: one recorder
// per command family, one per commit-pipeline stage, and the slowlog.
// A nil *serverObs (Config.DisableObservability) turns every
// instrumentation point into a pointer test and skips the time.Now
// calls — the configuration the overhead benchmark compares against.
type serverObs struct {
	cmd    [obs.NumFamilies]*obs.Hist
	stage  [obs.NumStages]*obs.Hist
	slow   *obs.SlowLog
	tracer *obs.Tracer // nil when Config.TraceSample is 0
}

func newServerObs(cfg Config) *serverObs {
	o := &serverObs{}
	if cfg.SlowlogThreshold >= 0 {
		o.slow = obs.NewSlowLog(cfg.SlowlogSize, cfg.SlowlogThreshold)
	}
	o.tracer = obs.NewTracer(cfg.TraceSample, cfg.TraceKeep)
	for f := range o.cmd {
		o.cmd[f] = obs.NewHist()
	}
	for s := range o.stage {
		o.stage[s] = obs.NewHist()
	}
	return o
}

// observe records one finished command: its family latency and, when it
// crossed the threshold, a slowlog entry carrying the command's trace
// id when it happened to be sampled (the slowest commands thereby link
// to their full span breakdown).
func (o *serverObs) observe(fam obs.Family, key []byte, start time.Time, tr *obs.Trace) {
	if o == nil {
		return
	}
	d := time.Since(start)
	o.cmd[fam].Record(d)
	o.slow.Observe(fam.String(), key, d, tr.ID())
}

// cmdHist returns the family's recorder (nil when disabled), for the
// exposition and quantile table.
func (o *serverObs) cmdHist(f obs.Family) *obs.Hist {
	if o == nil {
		return nil
	}
	return o.cmd[f]
}

// stageHist returns the stage's recorder (nil when disabled).
func (o *serverObs) stageHist(s obs.Stage) *obs.Hist {
	if o == nil {
		return nil
	}
	return o.stage[s]
}

// quantileTable renders the per-family latency quantiles as an aligned
// text table (the STATS / triaddb stats surface). Empty when nothing was
// recorded or observability is off.
func (o *serverObs) quantileTable() string {
	if o == nil {
		return ""
	}
	var b strings.Builder
	wrote := false
	for f := obs.FamGet; f < obs.NumFamilies; f++ {
		h := o.cmd[f].Snapshot()
		if h.Count() == 0 {
			continue
		}
		if !wrote {
			fmt.Fprintf(&b, "command latency (server-side, reply-resolution time):\n")
			fmt.Fprintf(&b, "  %-6s %10s %10s %10s %10s %10s\n", "cmd", "count", "p50", "p90", "p99", "p99.9")
			wrote = true
		}
		fmt.Fprintf(&b, "  %-6s %10d %10s %10s %10s %10s\n",
			f, h.Count(),
			rq(h.Quantile(0.50)), rq(h.Quantile(0.90)), rq(h.Quantile(0.99)), rq(h.Quantile(0.999)))
	}
	wroteStage := false
	for s := obs.StageCoalesce; s < obs.NumStages; s++ {
		h := o.stage[s].Snapshot()
		if h.Count() == 0 {
			continue
		}
		if !wroteStage {
			fmt.Fprintf(&b, "commit pipeline stages:\n")
			fmt.Fprintf(&b, "  %-12s %10s %10s %10s %10s %10s\n", "stage", "count", "p50", "p90", "p99", "p99.9")
			wroteStage = true
		}
		fmt.Fprintf(&b, "  %-12s %10d %10s %10s %10s %10s\n",
			s, h.Count(),
			rq(h.Quantile(0.50)), rq(h.Quantile(0.90)), rq(h.Quantile(0.99)), rq(h.Quantile(0.999)))
	}
	return b.String()
}

// rq rounds a quantile for table display.
func rq(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}
