package server

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/resp"
	"repro/internal/shard"
)

// DoneCursor is the cursor id a SCAN reply carries when the scan is
// exhausted and no server-side state remains (redis uses the same
// sentinel).
const DoneCursor = "0"

// isCursorID reports whether b has the shape of a server-issued cursor
// id: "c" followed by decimal digits. The SCAN dispatcher uses it to
// tell the CONT/CLOSE subcommand forms apart from an open scan whose
// start key happens to be the word "cont" or "close".
func isCursorID(b []byte) bool {
	if string(b) == DoneCursor {
		// The done sentinel routes to the subcommand too, so a client
		// that keeps CONTing past exhaustion gets "unknown cursor"
		// instead of a surprise scan from the key "CONT".
		return true
	}
	if len(b) < 2 || b[0] != 'c' {
		return false
	}
	for _, ch := range b[1:] {
		if ch < '0' || ch > '9' {
			return false
		}
	}
	return true
}

// cursor is one server-side scan: a pinned cross-shard snapshot plus a
// streaming iterator positioned after the last page served. SCAN CONT
// resumes it, which is what makes paging repeatable — every page comes
// from the same frozen view, no matter how many writes land in between.
//
// Lifecycle: owned by the connection that opened it (other connections
// cannot touch it), closed by exhaustion, SCAN CLOSE, the idle TTL
// sweeper, or the owning connection's teardown — whichever comes first.
type cursor struct {
	id    string
	owner *conn

	// mu serializes page reads with the sweeper/teardown close. Page
	// reads are bounded (ScanMaxEntries), so the hold is short.
	mu     sync.Mutex
	snap   *shard.Snapshot
	it     shard.Iter
	closed bool

	lastUsed time.Time // guarded by the registry lock
}

// registry tracks a server's open cursors: lookup by id, per-connection
// caps and teardown, and the idle sweep.
type registry struct {
	cfg Config

	mu      sync.Mutex
	cursors map[string]*cursor
	perConn map[*conn]int
	nextID  uint64
	opened  int64 // lifetime count, for metrics

	stop chan struct{}
	done chan struct{}
}

func newRegistry(cfg Config) *registry {
	r := &registry{
		cfg:     cfg,
		cursors: make(map[string]*cursor),
		perConn: make(map[*conn]int),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go r.sweep()
	return r
}

// errTooManyCursors is the reply for a connection at its cursor cap,
// shared by the pre-check and the authoritative check in open.
func (r *registry) errTooManyCursors() error {
	return fmt.Errorf("too many open cursors (max %d per connection); SCAN CLOSE one first", r.cfg.MaxCursorsPerConn)
}

// open registers a new cursor for c. The per-connection cap is enforced
// here; the caller checks canOpen first to avoid building a snapshot it
// will have to throw away, but the cap is only authoritative under the
// registry lock.
func (r *registry) open(c *conn, snap *shard.Snapshot, it shard.Iter) (*cursor, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.perConn[c] >= r.cfg.MaxCursorsPerConn {
		return nil, r.errTooManyCursors()
	}
	r.nextID++
	cur := &cursor{
		id:       "c" + strconv.FormatUint(r.nextID, 10),
		owner:    c,
		snap:     snap,
		it:       it,
		lastUsed: time.Now(),
	}
	r.cursors[cur.id] = cur
	r.perConn[c]++
	r.opened++
	return cur, nil
}

// canOpen reports whether c may open another cursor.
func (r *registry) canOpen(c *conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.perConn[c] < r.cfg.MaxCursorsPerConn
}

// lookup returns c's cursor id, touching its idle clock. Cursors are
// private to the connection that opened them: a wrong owner reads as
// unknown, exactly like an expired id.
func (r *registry) lookup(c *conn, id string) (*cursor, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.cursors[id]
	if !ok || cur.owner != c {
		return nil, false
	}
	cur.lastUsed = time.Now()
	return cur, true
}

// remove unregisters cur and releases its snapshot and iterator.
func (r *registry) remove(cur *cursor) {
	r.mu.Lock()
	if _, ok := r.cursors[cur.id]; ok {
		delete(r.cursors, cur.id)
		if n := r.perConn[cur.owner] - 1; n > 0 {
			r.perConn[cur.owner] = n
		} else {
			delete(r.perConn, cur.owner)
		}
	}
	r.mu.Unlock()
	cur.mu.Lock()
	defer cur.mu.Unlock()
	if cur.closed {
		return
	}
	cur.closed = true
	cur.it.Close()
	cur.snap.Close()
}

// removeConn closes every cursor the connection still owns (cursors die
// with their connection).
func (r *registry) removeConn(c *conn) {
	r.mu.Lock()
	var doomed []*cursor
	for _, cur := range r.cursors {
		if cur.owner == c {
			doomed = append(doomed, cur)
		}
	}
	r.mu.Unlock()
	for _, cur := range doomed {
		r.remove(cur)
	}
}

// openCount reports the number of live cursors.
func (r *registry) openCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cursors)
}

// openedTotal reports the lifetime cursor count.
func (r *registry) openedTotal() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opened
}

// sweep closes cursors idle past the TTL, so an abandoned cursor cannot
// pin snapshot files forever even on a connection that stays open.
func (r *registry) sweep() {
	defer close(r.done)
	tick := r.cfg.CursorTTL / 4
	if tick > time.Second {
		tick = time.Second
	}
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case now := <-t.C:
			r.mu.Lock()
			var doomed []*cursor
			for _, cur := range r.cursors {
				if now.Sub(cur.lastUsed) > r.cfg.CursorTTL {
					doomed = append(doomed, cur)
				}
			}
			r.mu.Unlock()
			for _, cur := range doomed {
				r.remove(cur)
			}
		}
	}
}

// close stops the sweeper and releases every remaining cursor.
func (r *registry) close() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
	r.mu.Lock()
	var doomed []*cursor
	for _, cur := range r.cursors {
		doomed = append(doomed, cur)
	}
	r.mu.Unlock()
	for _, cur := range doomed {
		r.remove(cur)
	}
}

// readPage serves up to count key/value pairs from cur, returning the
// reply array [cursor, k1, v1, ...] and whether the cursor survived
// (false: exhausted or errored, already removed from the registry).
func (r *registry) readPage(cur *cursor, count int) (resp.Value, bool) {
	cur.mu.Lock()
	if cur.closed {
		// Lost a race with the TTL sweeper or connection teardown.
		cur.mu.Unlock()
		return resp.Error("ERR unknown cursor"), false
	}
	elems := make([]resp.Value, 1, 2*count+1)
	n := 0
	for n < count && cur.it.Next() {
		// The iterator owns its buffers; copy before queueing.
		k := append([]byte(nil), cur.it.Key()...)
		v := append([]byte(nil), cur.it.Value()...)
		elems = append(elems, resp.Bulk(k), resp.Bulk(v))
		n++
	}
	exhausted := n < count
	var scanErr error
	if exhausted {
		scanErr = cur.it.Err()
	}
	cur.mu.Unlock()
	if scanErr != nil {
		r.remove(cur)
		return resp.Error(fmtErr(scanErr)), false
	}
	if exhausted {
		r.remove(cur)
		elems[0] = resp.Bulk([]byte(DoneCursor))
		return resp.Array(elems...), false
	}
	elems[0] = resp.Bulk([]byte(cur.id))
	return resp.Array(elems...), true
}
