package server_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

func fillStore(t *testing.T, c *client.Conn, n int) {
	t.Helper()
	for i := 0; i < n; i += 100 {
		pairs := make([][]byte, 0, 200)
		for j := i; j < i+100 && j < n; j++ {
			pairs = append(pairs, []byte(fmt.Sprintf("key-%05d", j)), []byte(fmt.Sprintf("val-%d", j)))
		}
		if err := c.MSet(pairs...); err != nil {
			t.Fatal(err)
		}
	}
}

// TestScanCursorPaging: SCAN returns a cursor, SCAN CONT resumes it
// page by page in order with no gaps or duplicates, and the final page
// carries the done sentinel.
func TestScanCursorPaging(t *testing.T) {
	db := newTestStore(t, 4)
	srv, addr := startServer(t, db, server.Config{})
	c := dial(t, addr)
	const n = 1000
	fillStore(t, c, n)

	cursor, keys, vals, err := c.ScanOpen(nil, nil, 128)
	if err != nil {
		t.Fatal(err)
	}
	if cursor == client.DoneCursor {
		t.Fatal("scan of 1000 keys finished in one 128-entry page")
	}
	if open, _ := srv.CursorStats(); open != 1 {
		t.Fatalf("CursorStats open = %d, want 1", open)
	}
	pages := 1
	for cursor != client.DoneCursor {
		var ks, vs [][]byte
		cursor, ks, vs, err = c.ScanCont(cursor, 128)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, ks...)
		vals = append(vals, vs...)
		pages++
	}
	if len(keys) != n {
		t.Fatalf("paged scan saw %d keys, want %d", len(keys), n)
	}
	if pages < 3 {
		t.Fatalf("scan took %d pages — paging not exercised", pages)
	}
	for i, k := range keys {
		if string(k) != fmt.Sprintf("key-%05d", i) || string(vals[i]) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("entry %d = (%q, %q)", i, k, vals[i])
		}
	}
	if open, _ := srv.CursorStats(); open != 0 {
		t.Fatalf("CursorStats open = %d after exhaustion, want 0", open)
	}
	if db.OpenSnapshots() != 0 {
		t.Fatalf("store snapshots still open: %d", db.OpenSnapshots())
	}
}

// TestScanCursorRepeatableRead: pages served after writes still come
// from the cursor's pinned snapshot — overwrites, deletes and new keys
// are invisible until a new SCAN.
func TestScanCursorRepeatableRead(t *testing.T) {
	db := newTestStore(t, 4)
	_, addr := startServer(t, db, server.Config{})
	c := dial(t, addr)
	const n = 600
	fillStore(t, c, n)

	cursor, keys, _, err := c.ScanOpen(nil, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate everything through a second connection: overwrite all,
	// delete a slice the cursor has not reached, add keys past the end.
	w := dial(t, addr)
	for i := 0; i < n; i += 100 {
		pairs := make([][]byte, 0, 200)
		for j := i; j < i+100; j++ {
			pairs = append(pairs, []byte(fmt.Sprintf("key-%05d", j)), []byte("overwritten"))
		}
		if err := w.MSet(pairs...); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Del([]byte("key-00300"), []byte("key-00301")); err != nil {
		t.Fatal(err)
	}
	if err := w.Set([]byte("key-99999"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := w.FlushStore(); err != nil { // push the new state through a flush too
		t.Fatal(err)
	}

	var vals [][]byte
	for cursor != client.DoneCursor {
		var ks, vs [][]byte
		cursor, ks, vs, err = c.ScanCont(cursor, 100)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, ks...)
		vals = append(vals, vs...)
	}
	if len(keys) != n {
		t.Fatalf("cursor saw %d keys, want %d (pinned view must include deleted keys, exclude new ones)", len(keys), n)
	}
	for i, v := range vals {
		if string(v) == "overwritten" {
			t.Fatalf("cursor page leaked a post-snapshot write at %q", keys[len(keys)-len(vals)+i])
		}
	}
	// A fresh scan sees the new world.
	ks, vs, err := c.ScanAll(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != n-2+1 {
		t.Fatalf("fresh scan saw %d keys, want %d", len(ks), n-2+1)
	}
	for i, v := range vs {
		if string(ks[i]) != "key-99999" && string(v) != "overwritten" {
			t.Fatalf("fresh scan: %q = %q, want overwritten", ks[i], v)
		}
	}
}

// TestScanCursorLimits: the per-connection cap errors further SCANs,
// SCAN CLOSE frees a slot, unknown and cross-connection cursors are
// rejected, and cursors die with their connection.
func TestScanCursorLimits(t *testing.T) {
	db := newTestStore(t, 2)
	srv, addr := startServer(t, db, server.Config{MaxCursorsPerConn: 2})
	c := dial(t, addr)
	fillStore(t, c, 500)

	open := func() string {
		t.Helper()
		cursor, _, _, err := c.ScanOpen(nil, nil, 10)
		if err != nil {
			t.Fatal(err)
		}
		if cursor == client.DoneCursor {
			t.Fatal("cursor finished prematurely")
		}
		return cursor
	}
	c1, c2 := open(), open()
	if _, _, _, err := c.ScanOpen(nil, nil, 10); err == nil || !strings.Contains(err.Error(), "too many open cursors") {
		t.Fatalf("third cursor: err = %v, want per-connection cap error", err)
	}
	if err := c.ScanClose(c1); err != nil {
		t.Fatal(err)
	}
	c3 := open() // the freed slot is reusable

	// Unknown cursor and double close.
	if _, _, _, err := c.ScanCont("c999999", 10); err == nil || !strings.Contains(err.Error(), "unknown cursor") {
		t.Fatalf("unknown cursor: err = %v", err)
	}
	if err := c.ScanClose(c1); err == nil {
		t.Fatal("double close succeeded")
	}

	// Another connection cannot touch this connection's cursors.
	other := dial(t, addr)
	if _, _, _, err := other.ScanCont(c2, 10); err == nil || !strings.Contains(err.Error(), "unknown cursor") {
		t.Fatalf("cross-connection CONT: err = %v", err)
	}

	// Cursors die with the connection.
	if open, _ := srv.CursorStats(); open != 2 {
		t.Fatalf("CursorStats open = %d, want 2", open)
	}
	if err := c.Quit(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if open, _ := srv.CursorStats(); open == 0 {
			break
		}
		if time.Now().After(deadline) {
			open, _ := srv.CursorStats()
			t.Fatalf("connection death left %d cursors open", open)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if db.OpenSnapshots() != 0 {
		t.Fatalf("store snapshots still open: %d", db.OpenSnapshots())
	}
	_ = c2
	_ = c3
}

// TestScanCursorIdleTTL: an abandoned cursor is reaped by the idle
// sweeper and subsequent CONTs read as unknown.
func TestScanCursorIdleTTL(t *testing.T) {
	db := newTestStore(t, 2)
	srv, addr := startServer(t, db, server.Config{CursorTTL: 50 * time.Millisecond})
	c := dial(t, addr)
	fillStore(t, c, 300)

	cursor, _, _, err := c.ScanOpen(nil, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cursor == client.DoneCursor {
		t.Fatal("cursor finished prematurely")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if open, _ := srv.CursorStats(); open == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle cursor not reaped by TTL sweeper")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, _, _, err := c.ScanCont(cursor, 10); err == nil || !strings.Contains(err.Error(), "unknown cursor") {
		t.Fatalf("CONT after TTL: err = %v, want unknown cursor", err)
	}
	if db.OpenSnapshots() != 0 {
		t.Fatalf("store snapshots still open after TTL reap: %d", db.OpenSnapshots())
	}
}

// TestScanSubcommandDisambiguation: SCAN CONT/CLOSE only routes to the
// cursor machinery when the next token is cursor-shaped, so keys that
// happen to spell "cont"/"close" still scan; CONT with the done
// sentinel reads as an unknown cursor, not a scan.
func TestScanSubcommandDisambiguation(t *testing.T) {
	db := newTestStore(t, 2)
	_, addr := startServer(t, db, server.Config{})
	c := dial(t, addr)
	for _, k := range []string{"cont", "continent", "close", "closet"} {
		if err := c.Set([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Open scans whose start keys collide with the subcommand words.
	for start, want := range map[string]int{"cont": 2, "close": 4} {
		cursor, keys, _, err := c.ScanOpen([]byte(start), []byte("z"), 10)
		if err != nil {
			t.Fatalf("scan from %q: %v", start, err)
		}
		if cursor != client.DoneCursor || len(keys) != want {
			t.Fatalf("scan from %q: cursor=%q, %d keys, want %d", start, cursor, len(keys), want)
		}
	}
	// Continuing past exhaustion is an unknown cursor, not a scan.
	if _, _, _, err := c.ScanCont(client.DoneCursor, 10); err == nil || !strings.Contains(err.Error(), "unknown cursor") {
		t.Fatalf("CONT on done sentinel: err = %v", err)
	}
}

// TestStatsAndMetricsReportCursors: STATS and /metrics carry the
// snapshot and cursor gauges.
func TestStatsAndMetricsReportCursors(t *testing.T) {
	db := newTestStore(t, 2)
	srv, addr := startServer(t, db, server.Config{})
	c := dial(t, addr)
	fillStore(t, c, 300)
	cursor, _, _, err := c.ScanOpen(nil, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "1 cursors open") {
		t.Fatalf("STATS missing cursor line:\n%s", stats)
	}
	text := srv.MetricsText()
	for _, want := range []string{"triad_server_cursors_open 1", "triad_snapshots_open", "triad_server_cursors_total 1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	if err := c.ScanClose(cursor); err != nil {
		t.Fatal(err)
	}
}
