package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/base"
	"repro/internal/lsm"
	"repro/internal/obs"
)

// tracedOp is one sampled command riding a write group: its trace and
// the moment it joined the group, so the coalesce span charged to the
// trace covers that op's own wait, not the group leader's.
type tracedOp struct {
	tr  *obs.Trace
	enq time.Time
}

// pending is one group of writes awaiting a shared commit. Connections
// hold a reference per enqueued command; sealed closes once the group's
// epoch is assigned (at coalesce time), done once the commit finished,
// with err carrying the outcome to every waiter.
type pending struct {
	batch  lsm.Batch
	sealed chan struct{} // epoch assigned (or the prepare failed)
	epoch  uint64        // valid once sealed is closed; 0 = prepare failed
	done   chan struct{}
	err    error
	start  time.Time
	traced []tracedOp // sampled ops in the group (usually empty)
}

// committer coalesces writes from every connection into shard-split
// batches and feeds them to the store's commit pipeline. Batching is
// leader-based: by default (CommitDelay 0) the loop seals the open
// group the moment it is free, and the ops that arrive while a commit
// is in flight simply form the next group — under load the batches grow
// toward CommitMaxOps/CommitMaxBytes with no latency added to a quiet
// server. A positive CommitDelay instead holds each group open for a
// fixed window from its first write (deliberately trading latency for
// larger batches; note Go's netpoller rounds sub-millisecond sleeps up
// toward a millisecond on an idle process, so tiny windows cost more
// than they read).
//
// The committer is a stage of the store's commit pipeline, not an
// ordering layer of its own: the loop Prepares each detached group —
// fixing its store-clock epoch in detach order — and then runs the
// Commit on a pooled goroutine, up to CommitPipeline groups in flight
// at once. Epoch order, enforced per shard by the store clock, is what
// keeps overlapping commits strictly ordered; the old single-goroutine
// one-Apply-at-a-time rule existed only to provide that ordering and is
// gone.
type committer struct {
	store Store
	cfg   Config
	ob    *serverObs // nil when observability is disabled

	mu     sync.Mutex
	cur    *pending
	closed bool

	kick     chan struct{} // a new group opened
	full     chan struct{} // the current group hit a size limit
	quit     chan struct{}
	wg       sync.WaitGroup
	inflight chan struct{}  // semaphore: groups between Prepare and Commit-done
	cwg      sync.WaitGroup // in-flight Commit goroutines

	batches atomic.Int64
	ops     atomic.Int64
}

func newCommitter(store Store, cfg Config, ob *serverObs) *committer {
	c := &committer{
		store:    store,
		cfg:      cfg,
		ob:       ob,
		kick:     make(chan struct{}, 1),
		full:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		inflight: make(chan struct{}, cfg.CommitPipeline),
	}
	c.wg.Add(1)
	go c.loop()
	return c
}

// enqueue adds entries to the open group (opening one if needed) and
// returns the group to wait on. The entries must be caller-owned copies;
// they are handed to the batch without further copying. A sampled
// command passes its trace; the group carries it through the pipeline
// so the coalesce/epoch_wait/commit spans land on the right request.
func (c *committer) enqueue(entries []base.Entry, tr *obs.Trace) (*pending, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errShuttingDown
	}
	if c.cur == nil {
		c.cur = &pending{sealed: make(chan struct{}), done: make(chan struct{}), start: time.Now()}
		select {
		case c.kick <- struct{}{}:
		default:
		}
	}
	pb := c.cur
	for _, e := range entries {
		pb.batch.PutEntry(e)
	}
	if tr != nil {
		pb.traced = append(pb.traced, tracedOp{tr: tr, enq: time.Now()})
	}
	if pb.batch.Len() >= c.cfg.CommitMaxOps || pb.batch.Bytes() >= c.cfg.CommitMaxBytes {
		select {
		case c.full <- struct{}{}:
		default:
		}
	}
	c.mu.Unlock()
	return pb, nil
}

func (c *committer) loop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.quit:
			c.commit()
			return
		case <-c.kick:
		}
		c.mu.Lock()
		pb := c.cur
		c.mu.Unlock()
		if pb == nil {
			// Stale kick: the group it announced was already committed
			// by a size trigger.
			continue
		}
		if wait := c.cfg.CommitDelay - time.Since(pb.start); c.cfg.CommitDelay > 0 && wait > 0 && !c.isFull(pb) {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-c.full:
				t.Stop()
			case <-c.quit:
				t.Stop()
				c.commit()
				return
			}
		}
		c.commit()
	}
}

func (c *committer) isFull(pb *pending) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return pb.batch.Len() >= c.cfg.CommitMaxOps || pb.batch.Bytes() >= c.cfg.CommitMaxBytes
}

// commit waits for a pipeline slot, then detaches the open group,
// Prepares it (assigning its epoch — waiters unblock on sealed the
// moment the position in the commit order is known), and hands the
// Commit to a pipelined goroutine. Acquiring the slot before detaching
// is what preserves leader-based batching: while every slot is busy,
// the open group keeps absorbing arrivals, so batches still grow with
// load exactly as when one blocking Apply gated the loop. A leftover
// full token from a group that was committed by the timer can close the
// next window early; that costs one smaller batch, never correctness.
func (c *committer) commit() {
	c.inflight <- struct{}{}
	c.mu.Lock()
	pb := c.cur
	c.cur = nil
	c.mu.Unlock()
	if pb == nil {
		<-c.inflight
		return
	}
	// Stage timing: coalesce is group open -> detach (the batching
	// window, pipeline-slot wait included), epoch_wait is detach ->
	// ticket assigned, commit is ticket -> durable.
	var detached time.Time
	if c.ob != nil {
		detached = time.Now()
		c.ob.stage[obs.StageCoalesce].Record(detached.Sub(pb.start))
	}
	for _, to := range pb.traced {
		to.tr.SpanAt(obs.SpanCoalesce, to.enq, detached.Sub(to.enq),
			fmt.Sprintf("group of %d ops", pb.batch.Len()))
	}
	cm, err := c.store.Prepare(&pb.batch)
	if err != nil {
		pb.err = err
		close(pb.sealed)
		close(pb.done)
		<-c.inflight
		return
	}
	pb.epoch = cm.Epoch()
	close(pb.sealed)
	var prepared time.Time
	if c.ob != nil {
		prepared = time.Now()
		c.ob.stage[obs.StageEpochWait].Record(prepared.Sub(detached))
	}
	var trs obs.Traces
	if len(pb.traced) > 0 {
		trs = make(obs.Traces, 0, len(pb.traced))
		for _, to := range pb.traced {
			trs = append(trs, to.tr)
		}
		trs.SpanAt(obs.SpanEpochWait, detached, prepared.Sub(detached),
			fmt.Sprintf("epoch %d", pb.epoch))
		// The engine records wal_append/memtable_apply into every trace
		// riding the group while the sub-batches commit.
		cm.Trace(trs)
	}
	// Bounded pipelining: the loop goes back to coalescing while up to
	// CommitPipeline prepared groups apply concurrently. Their epochs
	// are already ordered, so the store commits them in sealing order on
	// every shard they share.
	c.cwg.Add(1)
	go func() {
		defer c.cwg.Done()
		pb.err = cm.Commit()
		if c.ob != nil {
			c.ob.stage[obs.StageCommit].Record(time.Since(prepared))
		}
		if len(trs) > 0 {
			trs.SpanAt(obs.SpanCommit, prepared, time.Since(prepared), "")
		}
		c.batches.Add(1)
		c.ops.Add(int64(pb.batch.Len()))
		close(pb.done)
		<-c.inflight
	}()
}

// close stops accepting writes, commits any open group, and waits for
// the loop and every in-flight commit to finish. Safe to call once;
// callers (Server.Shutdown) ensure connections have drained first so no
// enqueue races the close.
func (c *committer) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.quit)
	c.wg.Wait()
	c.cwg.Wait()
}
