package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/base"
	"repro/internal/lsm"
)

// pending is one group of writes awaiting a shared Apply. Connections
// hold a reference per enqueued command and wait on done; err carries
// the Apply outcome to every waiter.
type pending struct {
	batch lsm.Batch
	done  chan struct{}
	err   error
	start time.Time
}

// committer coalesces writes from every connection into shard-split
// batches. One goroutine owns the Apply; batching is leader-based: by
// default (CommitDelay 0) the loop commits the open group the moment it
// is free, and the ops that arrive while an Apply is in flight simply
// form the next group — under load the batches grow toward
// CommitMaxOps/CommitMaxBytes with no latency added to a quiet server.
// A positive CommitDelay instead holds each group open for a fixed
// window from its first write (deliberately trading latency for larger
// batches; note Go's netpoller rounds sub-millisecond sleeps up toward
// a millisecond on an idle process, so tiny windows cost more than they
// read). Applying from a single goroutine keeps batches strictly
// ordered — two writes from one connection can never commit out of
// order — while the shard layer fans each batch's sub-batches out to
// the shards in parallel.
type committer struct {
	store Store
	cfg   Config

	mu     sync.Mutex
	cur    *pending
	closed bool

	kick chan struct{} // a new group opened
	full chan struct{} // the current group hit a size limit
	quit chan struct{}
	wg   sync.WaitGroup

	batches atomic.Int64
	ops     atomic.Int64
}

func newCommitter(store Store, cfg Config) *committer {
	c := &committer{
		store: store,
		cfg:   cfg,
		kick:  make(chan struct{}, 1),
		full:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
	}
	c.wg.Add(1)
	go c.loop()
	return c
}

// enqueue adds entries to the open group (opening one if needed) and
// returns the group to wait on. The entries must be caller-owned copies;
// they are handed to the batch without further copying.
func (c *committer) enqueue(entries []base.Entry) (*pending, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errShuttingDown
	}
	if c.cur == nil {
		c.cur = &pending{done: make(chan struct{}), start: time.Now()}
		select {
		case c.kick <- struct{}{}:
		default:
		}
	}
	pb := c.cur
	for _, e := range entries {
		pb.batch.PutEntry(e)
	}
	if pb.batch.Len() >= c.cfg.CommitMaxOps || pb.batch.Bytes() >= c.cfg.CommitMaxBytes {
		select {
		case c.full <- struct{}{}:
		default:
		}
	}
	c.mu.Unlock()
	return pb, nil
}

func (c *committer) loop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.quit:
			c.commit()
			return
		case <-c.kick:
		}
		c.mu.Lock()
		pb := c.cur
		c.mu.Unlock()
		if pb == nil {
			// Stale kick: the group it announced was already committed
			// by a size trigger.
			continue
		}
		if wait := c.cfg.CommitDelay - time.Since(pb.start); c.cfg.CommitDelay > 0 && wait > 0 && !c.isFull(pb) {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-c.full:
				t.Stop()
			case <-c.quit:
				t.Stop()
				c.commit()
				return
			}
		}
		c.commit()
	}
}

func (c *committer) isFull(pb *pending) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return pb.batch.Len() >= c.cfg.CommitMaxOps || pb.batch.Bytes() >= c.cfg.CommitMaxBytes
}

// commit detaches the open group, applies it, and wakes the waiters. A
// leftover full token from a group that was committed by the timer can
// close the next window early; that costs one smaller batch, never
// correctness.
func (c *committer) commit() {
	c.mu.Lock()
	pb := c.cur
	c.cur = nil
	c.mu.Unlock()
	if pb == nil {
		return
	}
	pb.err = c.store.Apply(&pb.batch)
	c.batches.Add(1)
	c.ops.Add(int64(pb.batch.Len()))
	close(pb.done)
}

// close stops accepting writes, commits any open group, and waits for
// the loop to exit. Safe to call once; callers (Server.Shutdown) ensure
// connections have drained first so no enqueue races the close.
func (c *committer) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.quit)
	c.wg.Wait()
}
