package server_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// parseSpanLines extracts the (offset, kind) sequence from a TRACE GET /
// /debug/trace rendering: lines of the form "  +<offset> <kind> <dur>".
func parseSpanLines(t *testing.T, rendered string) (offs []time.Duration, kinds []string) {
	t.Helper()
	for _, line := range strings.Split(rendered, "\n")[1:] {
		f := strings.Fields(line)
		if len(f) < 3 || !strings.HasPrefix(f[0], "+") {
			continue
		}
		off, err := time.ParseDuration(strings.TrimPrefix(f[0], "+"))
		if err != nil {
			t.Fatalf("bad span offset %q in %q: %v", f[0], line, err)
		}
		offs = append(offs, off)
		kinds = append(kinds, f[1])
	}
	return offs, kinds
}

// TestTraceRoundTrip drives traffic at -trace-sample 1 and checks the
// whole surface: TRACE RECENT summaries, TRACE GET span breakdowns with
// monotone offsets and the expected pipeline spans, and /debug/trace.
func TestTraceRoundTrip(t *testing.T) {
	db := newTestStore(t, 4)
	srv, addr := startServer(t, db, server.Config{TraceSample: 1, TraceKeep: 64})
	c := dial(t, addr)

	for i := 0; i < 5; i++ {
		k := []byte(fmt.Sprintf("trace-key-%d", i))
		if err := c.Set(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Get(k); err != nil {
			t.Fatal(err)
		}
	}

	// The writer finishes a trace just after flushing its reply, so the
	// client can win the race to TRACE RECENT by a hair; poll briefly.
	var recent []string
	deadline := time.Now().Add(2 * time.Second)
	for {
		var err error
		recent, err = c.TraceRecent(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(recent) >= 10 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(recent) < 10 {
		t.Fatalf("TRACE RECENT returned %d traces, want >= 10:\n%s", len(recent), strings.Join(recent, "\n"))
	}

	idRe := regexp.MustCompile(`^#(\d+) .* (GET|SET) "trace-key-\d+" dur=`)
	// recent is newest first; keep the newest SET and GET so they are
	// still inside the /debug/trace?n=5 window checked below.
	var setID, getID uint64
	for _, line := range recent {
		m := idRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unexpected TRACE RECENT line %q", line)
		}
		id, _ := strconv.ParseUint(m[1], 10, 64)
		switch {
		case m[2] == "SET" && setID == 0:
			setID = id
		case m[2] == "GET" && getID == 0:
			getID = id
		}
	}
	if setID == 0 || getID == 0 {
		t.Fatalf("missing SET/GET traces in:\n%s", strings.Join(recent, "\n"))
	}

	wantSpans := func(id uint64, want ...string) string {
		t.Helper()
		rendered, found, err := c.TraceGet(id)
		if err != nil || !found {
			t.Fatalf("TRACE GET %d = found=%v err=%v", id, found, err)
		}
		offs, kinds := parseSpanLines(t, rendered)
		for i := 1; i < len(offs); i++ {
			if offs[i] < offs[i-1] {
				t.Fatalf("trace #%d offsets not monotone: %v\n%s", id, offs, rendered)
			}
		}
		have := make(map[string]bool, len(kinds))
		for _, k := range kinds {
			have[k] = true
		}
		for _, w := range want {
			if !have[w] {
				t.Fatalf("trace #%d missing span %q:\n%s", id, w, rendered)
			}
		}
		return rendered
	}

	// A SET rides the group-commit pipeline end to end.
	setRendered := wantSpans(setID, "decode", "coalesce", "epoch_wait",
		"wal_append", "memtable_apply", "commit", "reply_flush")
	// The decode span must come first in the timeline.
	if _, kinds := parseSpanLines(t, setRendered); kinds[0] != "decode" {
		t.Fatalf("SET trace does not start with decode:\n%s", setRendered)
	}
	// A GET after a write pays the read-your-writes barrier.
	wantSpans(getID, "decode", "barrier", "reply_flush")

	// Unknown id: null reply, no error.
	if _, found, err := c.TraceGet(1 << 60); err != nil || found {
		t.Fatalf("TRACE GET unknown = found=%v err=%v", found, err)
	}
	if _, err := c.Do("TRACE", []byte("BOGUS")); err == nil {
		t.Fatal("TRACE BOGUS did not error")
	}

	// /debug/trace serves the same ring over HTTP.
	ts := httptest.NewServer(srv.MetricsHandler(false))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/trace?n=5")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "traces sampled") {
		t.Fatalf("/debug/trace header missing: %q", body)
	}
	if !strings.Contains(string(body), fmt.Sprintf("#%d ", setID)) &&
		!strings.Contains(string(body), fmt.Sprintf("#%d ", getID)) {
		t.Fatalf("/debug/trace shows neither recent trace:\n%s", body)
	}
	if !strings.Contains(string(body), "reply_flush") {
		t.Fatalf("/debug/trace renders no spans:\n%s", body)
	}

	// The sampled counter is on /metrics.
	if !strings.Contains(srv.MetricsText(), "triad_traces_sampled_total") {
		t.Fatal("triad_traces_sampled_total missing from /metrics")
	}
}

// TestTraceDisabled: with -trace-sample 0 the surfaces answer benignly.
func TestTraceDisabled(t *testing.T) {
	db := newTestStore(t, 2)
	srv, addr := startServer(t, db, server.Config{})
	c := dial(t, addr)
	if err := c.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	recent, err := c.TraceRecent(0)
	if err != nil || len(recent) != 0 {
		t.Fatalf("TRACE RECENT with tracing off = %v, %v", recent, err)
	}
	if _, found, err := c.TraceGet(1); err != nil || found {
		t.Fatalf("TRACE GET with tracing off = found=%v err=%v", found, err)
	}
	ts := httptest.NewServer(srv.MetricsHandler(false))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "0 traces sampled") {
		t.Fatalf("/debug/trace with tracing off: %q", body)
	}
}

// promSeries parses one exposition dump into name{labels} -> value for
// simple (non-histogram) series.
func promSeries(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsLedgerConsistency is the acceptance check tying the
// attribution ledger to the engine's own counters: after quiescing,
// the per-shard triad_io_bytes_total series must sum exactly to the
// store-wide byte counters WA is computed from.
func TestMetricsLedgerConsistency(t *testing.T) {
	db := newTestStore(t, 2)
	srv, addr := startServer(t, db, server.Config{})
	c := dial(t, addr)

	val := []byte(strings.Repeat("v", 512))
	for i := 0; i < 400; i++ {
		if err := c.Set([]byte(fmt.Sprintf("ledger-%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}

	io := db.IOBySource()
	m := db.Metrics()
	if io[obs.SrcUser] != m.UserBytes {
		t.Fatalf("ledger user_write %d != UserBytes %d", io[obs.SrcUser], m.UserBytes)
	}
	if io[obs.SrcWAL] != m.BytesLogged {
		t.Fatalf("ledger wal %d != BytesLogged %d", io[obs.SrcWAL], m.BytesLogged)
	}
	if io[obs.SrcFlush] != m.BytesFlushed {
		t.Fatalf("ledger flush %d != BytesFlushed %d", io[obs.SrcFlush], m.BytesFlushed)
	}
	if io[obs.SrcCompactionWrite] != m.BytesCompacted {
		t.Fatalf("ledger compaction_write %d != BytesCompacted %d", io[obs.SrcCompactionWrite], m.BytesCompacted)
	}
	if io[obs.SrcUser] == 0 || io[obs.SrcWAL] == 0 || io[obs.SrcFlush] == 0 {
		t.Fatalf("ledger recorded nothing: %v", io)
	}

	// The same identities must hold for the exposed series.
	series := promSeries(t, srv.MetricsText())
	sumSrc := func(src string) (total float64) {
		for name, v := range series {
			if strings.HasPrefix(name, "triad_io_bytes_total{") && strings.Contains(name, `source="`+src+`"`) {
				total += v
			}
		}
		return total
	}
	for _, check := range []struct {
		src, counter string
	}{
		{"user_write", "triad_user_bytes_total"},
		{"wal", "triad_bytes_logged_total"},
		{"flush", "triad_bytes_flushed_total"},
		{"compaction_write", "triad_bytes_compacted_total"},
	} {
		if got, want := sumSrc(check.src), series[check.counter]; got != want {
			t.Fatalf("sum(triad_io_bytes_total{source=%q}) = %g, want %s = %g",
				check.src, got, check.counter, want)
		}
	}

	// And STATS carries the human-readable decomposition.
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "WA decomposition") {
		t.Fatalf("STATS missing the WA decomposition:\n%s", stats)
	}
}
