package server_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	triad "repro"
	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/vfs"
)

// TestDifferentialClientVsEmbedded applies one randomized workload two
// ways — through internal/client against a live sharded server, and
// through an embedded unsharded triad.DB — and requires identical
// Get/MGet/Scan results. The two paths share no routing, batching or
// transport code above the engine, so a divergence pinpoints a bug in
// the server, codec, client or shard router.
func TestDifferentialClientVsEmbedded(t *testing.T) {
	db := newTestStore(t, 4)
	_, addr := startServer(t, db, server.Config{})
	c := dial(t, addr)

	ref, err := triad.Open(triad.Options{FS: vfs.NewMemFS(), Profile: triad.ProfileTriad})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	const (
		ops      = 2500
		keySpace = 300
	)
	rng := rand.New(rand.NewSource(42))
	key := func() []byte { return []byte(fmt.Sprintf("key-%03d", rng.Intn(keySpace))) }
	val := func() []byte {
		v := make([]byte, rng.Intn(200))
		rng.Read(v)
		return v
	}

	touched := make(map[string]struct{})
	for i := 0; i < ops; i++ {
		switch p := rng.Float64(); {
		case p < 0.55: // SET
			k, v := key(), val()
			touched[string(k)] = struct{}{}
			if err := c.Set(k, v); err != nil {
				t.Fatal(err)
			}
			if err := ref.Put(k, v); err != nil {
				t.Fatal(err)
			}
		case p < 0.70: // DEL
			k := key()
			touched[string(k)] = struct{}{}
			if _, err := c.Del(k); err != nil {
				t.Fatal(err)
			}
			if err := ref.Delete(k); err != nil {
				t.Fatal(err)
			}
		case p < 0.85: // MSET of 2-4 pairs
			n := 2 + rng.Intn(3)
			var pairs [][]byte
			var b triad.Batch
			for j := 0; j < n; j++ {
				k, v := key(), val()
				touched[string(k)] = struct{}{}
				pairs = append(pairs, k, v)
				b.Put(k, v)
			}
			if err := c.MSet(pairs...); err != nil {
				t.Fatal(err)
			}
			if err := ref.Apply(&b); err != nil {
				t.Fatal(err)
			}
		default: // pipelined burst of SETs (the group-commit shape)
			n := 4 + rng.Intn(12)
			type kv struct{ k, v []byte }
			var burst []kv
			for j := 0; j < n; j++ {
				k, v := key(), val()
				touched[string(k)] = struct{}{}
				burst = append(burst, kv{k, v})
				if err := c.Send("SET", k, v); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			for range burst {
				if _, err := c.Receive(); err != nil {
					t.Fatal(err)
				}
			}
			for _, e := range burst {
				if err := ref.Put(e.k, e.v); err != nil {
					t.Fatal(err)
				}
			}
		}
		if i%500 == 499 {
			compareStores(t, c, ref, touched)
		}
	}
	// Force flushes so the comparison also covers on-disk state.
	if err := c.FlushStore(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	compareStores(t, c, ref, touched)
}

// compareStores checks every touched key point-wise and the full scans
// of both stores against each other.
func compareStores(t *testing.T, c *client.Conn, ref *triad.DB, touched map[string]struct{}) {
	t.Helper()
	for k := range touched {
		gotV, gotFound, err := c.Get([]byte(k))
		if err != nil {
			t.Fatalf("client Get %q: %v", k, err)
		}
		refV, refErr := ref.Get([]byte(k))
		refFound := refErr == nil
		if refErr != nil && refErr != triad.ErrNotFound {
			t.Fatalf("ref Get %q: %v", k, refErr)
		}
		if gotFound != refFound {
			t.Fatalf("key %q: client found=%v, embedded found=%v", k, gotFound, refFound)
		}
		if gotFound && !bytes.Equal(gotV, refV) {
			t.Fatalf("key %q: client %q != embedded %q", k, gotV, refV)
		}
	}

	// Page with a small count so the comparison walks the cursor path
	// (ScanAll always uses cursors; forcing several pages makes CONT do
	// real work at every comparison point).
	cursor, keys, vals, err := c.ScanOpen(nil, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	for cursor != client.DoneCursor {
		var ks, vs [][]byte
		cursor, ks, vs, err = c.ScanCont(cursor, 64)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, ks...)
		vals = append(vals, vs...)
	}
	it, err := ref.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for it.Next() {
		if i >= len(keys) {
			t.Fatalf("client scan ended at %d entries; embedded has more (next %q)", len(keys), it.Key())
		}
		if !bytes.Equal(keys[i], it.Key()) || !bytes.Equal(vals[i], it.Value()) {
			t.Fatalf("scan entry %d: client (%q, %q) != embedded (%q, %q)",
				i, keys[i], vals[i], it.Key(), it.Value())
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("client scan has %d entries, embedded %d", len(keys), i)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialCursorPagingUnderWriters pages tiny cursor pages
// through a store being rewritten by concurrent MSET writers that
// maintain a constant pair sum. Every fully-paged scan must be a
// consistent point-in-time view: all pairs present, every pair summing
// to the invariant — across page boundaries, which is exactly what the
// pinned cursor snapshot guarantees and last-key-resume paging did not.
func TestDifferentialCursorPagingUnderWriters(t *testing.T) {
	db := newTestStore(t, 4)
	_, addr := startServer(t, db, server.Config{})
	const (
		pairs = 20
		sum   = 1000
	)
	seed := dial(t, addr)
	for i := 0; i < pairs; i++ {
		if err := seed.MSet(
			[]byte(fmt.Sprintf("bal-a-%03d", i)), []byte(fmt.Sprintf("%04d", sum)),
			[]byte(fmt.Sprintf("bal-b-%03d", i)), []byte("0000"),
		); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	done := make(chan error, 2)
	for w := 0; w < 2; w++ {
		go func(w int) {
			wc, err := client.Dial(addr)
			if err != nil {
				done <- err
				return
			}
			defer wc.Close()
			rng := rand.New(rand.NewSource(int64(w) + 7))
			// Disjoint pair ownership: concurrent conflicting cross-shard
			// batches have no cross-shard ordering guarantee.
			lo, hi := w*pairs/2, (w+1)*pairs/2
			for {
				select {
				case <-stop:
					done <- nil
					return
				default:
				}
				i := lo + rng.Intn(hi-lo)
				r := rng.Intn(sum + 1)
				if err := wc.MSet(
					[]byte(fmt.Sprintf("bal-a-%03d", i)), []byte(fmt.Sprintf("%04d", r)),
					[]byte(fmt.Sprintf("bal-b-%03d", i)), []byte(fmt.Sprintf("%04d", sum-r)),
				); err != nil {
					done <- err
					return
				}
			}
		}(w)
	}

	c := dial(t, addr)
	for round := 0; round < 40 && !t.Failed(); round++ {
		seen := map[string]int{}
		cursor, keys, vals, err := c.ScanOpen([]byte("bal-"), []byte("bal-z"), 7)
		if err != nil {
			t.Fatal(err)
		}
		for {
			for i := range keys {
				var n int
				fmt.Sscanf(string(vals[i]), "%d", &n)
				seen[string(keys[i])] = n
			}
			if cursor == client.DoneCursor {
				break
			}
			cursor, keys, vals, err = c.ScanCont(cursor, 7)
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(seen) != 2*pairs {
			t.Fatalf("round %d: paged scan saw %d keys, want %d", round, len(seen), 2*pairs)
		}
		for i := 0; i < pairs; i++ {
			a := seen[fmt.Sprintf("bal-a-%03d", i)]
			b := seen[fmt.Sprintf("bal-b-%03d", i)]
			if a+b != sum {
				t.Fatalf("round %d: pair %d sums to %d across pages, want %d — cursor view not snapshot-consistent", round, i, a+b, sum)
			}
		}
	}
	close(stop)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Errorf("writer: %v", err)
		}
	}
}
