package server_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/lsm"
	"repro/internal/resp"
	"repro/internal/server"
	"repro/internal/shard"
)

// newTestStore opens an in-memory sharded store sized for tests.
func newTestStore(t *testing.T, shards int) *shard.DB {
	t.Helper()
	opts := lsm.TriadOptions(nil)
	opts.MemtableBytes = 256 << 10
	opts.CommitLogBytes = 1 << 20
	db, err := shard.Open(shard.Options{Shards: shards, Engine: opts, NewFS: shard.MemFS()})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// startServer serves db on a random port and tears everything down with
// the test.
func startServer(t *testing.T, db *shard.DB, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv := server.New(db, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
		if err := db.Close(); err != nil {
			t.Errorf("close store: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *client.Conn {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestCommands exercises every command's happy path and reply shape
// through one connection.
func TestCommands(t *testing.T) {
	db := newTestStore(t, 4)
	_, addr := startServer(t, db, server.Config{})
	c := dial(t, addr)

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Set([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get([]byte("alpha"))
	if err != nil || !found || string(v) != "1" {
		t.Fatalf("Get alpha = %q, %v, %v", v, found, err)
	}
	if _, found, err = c.Get([]byte("missing")); err != nil || found {
		t.Fatalf("Get missing = found=%v err=%v", found, err)
	}
	if err := c.MSet([]byte("beta"), []byte("2"), []byte("gamma"), []byte("3")); err != nil {
		t.Fatal(err)
	}
	got, err := c.MGet([]byte("alpha"), []byte("nope"), []byte("gamma"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "1" || got[1] != nil || string(got[2]) != "3" {
		t.Fatalf("MGet = %q", got)
	}
	n, err := c.Del([]byte("alpha"), []byte("nope"))
	if err != nil || n != 2 {
		t.Fatalf("Del = %d, %v", n, err)
	}
	if _, found, _ = c.Get([]byte("alpha")); found {
		t.Fatal("alpha survived DEL")
	}
	keys, vals, err := c.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || string(keys[0]) != "beta" || string(keys[1]) != "gamma" ||
		string(vals[0]) != "2" || string(vals[1]) != "3" {
		t.Fatalf("Scan = %q / %q", keys, vals)
	}
	// Bounded scan with a count.
	keys, _, err = c.Scan([]byte("beta"), nil, 1)
	if err != nil || len(keys) != 1 || string(keys[0]) != "beta" {
		t.Fatalf("bounded Scan = %q, %v", keys, err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "shards: 4") || !strings.Contains(stats, "per-shard balance") {
		t.Fatalf("STATS missing shard table:\n%s", stats)
	}
	if err := c.FlushStore(); err != nil {
		t.Fatal(err)
	}
	// Empty values round-trip as empty (not null).
	if err := c.Set([]byte("empty"), nil); err != nil {
		t.Fatal(err)
	}
	v, found, err = c.Get([]byte("empty"))
	if err != nil || !found || len(v) != 0 {
		t.Fatalf("empty value = %q, %v, %v", v, found, err)
	}
	if err := c.Quit(); err != nil {
		t.Fatal(err)
	}
}

// TestCommandErrors checks arity and validation error replies, and that
// the connection survives them.
func TestCommandErrors(t *testing.T) {
	db := newTestStore(t, 2)
	_, addr := startServer(t, db, server.Config{})
	c := dial(t, addr)

	for _, cmdline := range [][]string{
		{"GET"},
		{"GET", "a", "b"},
		{"SET", "only-key"},
		{"MSET", "odd", "1", "dangling"},
		{"DEL"},
		{"SET", "", "empty-key"},
		{"SCAN", "a", "z", "not-a-number"},
		{"NOSUCHCMD", "x"},
	} {
		args := make([][]byte, len(cmdline)-1)
		for i, a := range cmdline[1:] {
			args[i] = []byte(a)
		}
		if _, err := c.Do(cmdline[0], args...); err == nil {
			t.Errorf("%v: expected error reply", cmdline)
		} else if _, ok := err.(client.ServerError); !ok {
			t.Errorf("%v: expected ServerError, got %v", cmdline, err)
		}
	}
	// The connection is still healthy after every error reply.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unhealthy after error replies: %v", err)
	}
}

// TestLowerCaseAndInline: commands are case-insensitive and the inline
// framing works end to end.
func TestLowerCaseAndInline(t *testing.T) {
	db := newTestStore(t, 1)
	_, addr := startServer(t, db, server.Config{})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := io.WriteString(nc, "set inline-key inline-val\r\nget inline-key\r\n"); err != nil {
		t.Fatal(err)
	}
	r := resp.NewReader(nc)
	ok, err := r.ReadReply()
	if err != nil || ok.Text() != "OK" {
		t.Fatalf("inline set: %v %v", ok, err)
	}
	got, err := r.ReadReply()
	if err != nil || got.Text() != "inline-val" {
		t.Fatalf("inline get: %v %v", got, err)
	}
}

// TestPipelining sends a deep pipeline before reading anything and
// checks every reply arrives in request order.
func TestPipelining(t *testing.T) {
	db := newTestStore(t, 4)
	_, addr := startServer(t, db, server.Config{})
	c := dial(t, addr)

	const n = 500
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		if err := c.Send("SET", key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.Send("GET", key); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ok, err := c.Receive()
		if err != nil || ok.Text() != "OK" {
			t.Fatalf("reply %d (SET): %v %v", i, ok, err)
		}
		got, err := c.Receive()
		if err != nil {
			t.Fatalf("reply %d (GET): %v", i, err)
		}
		if want := fmt.Sprintf("val-%d", i); got.Text() != want {
			t.Fatalf("pipelined GET %d = %q, want %q", i, got.Text(), want)
		}
	}
}

// TestReadYourWrites: with a long commit window, a GET right after a SET
// on the same connection must still see the value (the connection
// barrier), and the group must carry both pipelined writes in one batch.
func TestReadYourWrites(t *testing.T) {
	db := newTestStore(t, 2)
	srv, addr := startServer(t, db, server.Config{CommitDelay: 50 * time.Millisecond})
	c := dial(t, addr)

	start := time.Now()
	if err := c.Set([]byte("ryw"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get([]byte("ryw"))
	if err != nil || !found || string(v) != "v1" {
		t.Fatalf("read-your-writes: %q %v %v", v, found, err)
	}
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("commit window not honored: round trip took %s", elapsed)
	}
	batches, ops := srv.GroupCommitStats()
	if batches == 0 || ops == 0 {
		t.Fatalf("no group commits recorded: batches=%d ops=%d", batches, ops)
	}
}

// TestGroupCommitCoalesces: a pipelined burst of writes from one
// connection must land in far fewer Apply batches than ops.
func TestGroupCommitCoalesces(t *testing.T) {
	db := newTestStore(t, 4)
	srv, addr := startServer(t, db, server.Config{CommitDelay: 2 * time.Millisecond})
	c := dial(t, addr)

	const n = 400
	for i := 0; i < n; i++ {
		if err := c.Send("SET", []byte(fmt.Sprintf("burst-%04d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.Receive(); err != nil {
			t.Fatal(err)
		}
	}
	batches, ops := srv.GroupCommitStats()
	if ops != n {
		t.Fatalf("ops = %d, want %d", ops, n)
	}
	if batches >= n/4 {
		t.Fatalf("group commit barely coalesced: %d batches for %d ops", batches, ops)
	}
}

// TestConcurrentConnections drives mixed traffic from many connections
// under the race detector and verifies every write landed.
func TestConcurrentConnections(t *testing.T) {
	db := newTestStore(t, 4)
	_, addr := startServer(t, db, server.Config{})

	const conns, opsPer = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < opsPer; i++ {
				key := []byte(fmt.Sprintf("w%d-%04d", w, i))
				if err := c.Set(key, []byte(fmt.Sprintf("%d", i))); err != nil {
					errs <- err
					return
				}
				if i%3 == 0 {
					if _, _, err := c.Get(key); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	c := dial(t, addr)
	for w := 0; w < conns; w++ {
		for _, i := range []int{0, opsPer / 2, opsPer - 1} {
			key := []byte(fmt.Sprintf("w%d-%04d", w, i))
			v, found, err := c.Get(key)
			if err != nil || !found || string(v) != fmt.Sprintf("%d", i) {
				t.Fatalf("%s = %q, %v, %v", key, v, found, err)
			}
		}
	}
}

// TestGracefulShutdown: writes accepted before Shutdown commit; the
// store is intact afterwards.
func TestGracefulShutdown(t *testing.T) {
	db := newTestStore(t, 2)
	srv := server.New(db, server.Config{CommitDelay: 20 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 50
	for i := 0; i < n; i++ {
		if err := c.Send("SET", []byte(fmt.Sprintf("shut-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Collect all replies so the writes are known-accepted, then stop.
	for i := 0; i < n; i++ {
		if v, err := c.Receive(); err != nil || v.Text() != "OK" {
			t.Fatalf("reply %d: %v %v", i, v, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned %v", err)
	}
	for i := 0; i < n; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("shut-%03d", i))); err != nil {
			t.Fatalf("write %d lost across shutdown: %v", i, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownIdempotent: double Shutdown and post-shutdown Serve are
// clean errors, not hangs.
func TestShutdownIdempotent(t *testing.T) {
	db := newTestStore(t, 1)
	defer db.Close()
	srv := server.New(db, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	ctx := context.Background()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Serve after (or racing) Shutdown is a clean no-op stop: a signal
	// can land before the Serve goroutine registers the listener.
	if err := srv.Serve(ln); err != nil {
		t.Fatalf("Serve after Shutdown: %v", err)
	}
}

// TestNoGroupCommitMode: the one-Apply-per-command mode serves the same
// semantics (it is the benchmark baseline).
func TestNoGroupCommitMode(t *testing.T) {
	db := newTestStore(t, 4)
	srv, addr := startServer(t, db, server.Config{DisableGroupCommit: true})
	c := dial(t, addr)
	if err := c.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get([]byte("k"))
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("%q %v %v", v, found, err)
	}
	if batches, ops := srv.GroupCommitStats(); batches != 0 || ops != 0 {
		t.Fatalf("group commit stats nonzero in disabled mode: %d/%d", batches, ops)
	}
}

// TestScanAllWithSmallServerCap: ScanAll must page to exhaustion even
// when the server's per-reply cap is smaller than the client's page
// size (termination is on an empty page, not a short one).
func TestScanAllWithSmallServerCap(t *testing.T) {
	db := newTestStore(t, 4)
	_, addr := startServer(t, db, server.Config{ScanMaxEntries: 7})
	c := dial(t, addr)

	const n = 100
	for i := 0; i < n; i++ {
		if err := c.Set([]byte(fmt.Sprintf("cap-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	keys, _, err := c.ScanAll(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Fatalf("ScanAll returned %d keys, want %d", len(keys), n)
	}
	for i, k := range keys {
		if want := fmt.Sprintf("cap-%03d", i); string(k) != want {
			t.Fatalf("key %d = %q, want %q", i, k, want)
		}
	}
}

// TestProtocolErrorGetsReplyThenClose: garbage framing earns an error
// reply and a hangup, and never kills the server.
func TestProtocolErrorGetsReplyThenClose(t *testing.T) {
	db := newTestStore(t, 1)
	_, addr := startServer(t, db, server.Config{})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := io.WriteString(nc, "*2\r\n$3\r\nGET\r\n:bad\r\n"); err != nil {
		t.Fatal(err)
	}
	buf, err := io.ReadAll(nc) // server replies then closes
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, []byte("-ERR protocol error")) {
		t.Fatalf("got %q, want protocol error reply", buf)
	}
	// The server is still alive for well-behaved clients.
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsHandler checks the plain-text dump carries engine counters,
// amplifications, the per-shard table and the server counters.
func TestMetricsHandler(t *testing.T) {
	db := newTestStore(t, 2)
	srv, addr := startServer(t, db, server.Config{})
	c := dial(t, addr)
	for i := 0; i < 32; i++ {
		if err := c.Set([]byte(fmt.Sprintf("m-%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Get([]byte("m-00")); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.MetricsHandler(false))
	defer ts.Close()
	res, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"triad_user_writes_total 32",
		"triad_write_amplification",
		"triad_read_amplification",
		"triad_shard_writes_total{shard=\"0\"}",
		"triad_shard_writes_total{shard=\"1\"}",
		"triad_server_connections_open",
		"triad_server_commands_total",
		"triad_server_group_commit_batches_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("dump:\n%s", text)
	}

	res, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(body), "per-shard balance") {
		t.Errorf("/stats missing balance table:\n%s", body)
	}
}
