// Package shutdown is the small signal-handling helper shared by the
// binaries (triadserver, triaddb): a context that cancels on SIGINT or
// SIGTERM so main loops can drain and close the store cleanly instead of
// dying mid-write. A second signal force-exits with the conventional
// status 130 — the escape hatch when a drain hangs.
package shutdown

import (
	"context"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Notify returns a context cancelled by the first SIGINT/SIGTERM. The
// returned stop function releases the signal handler (restoring default
// die-on-signal behavior); call it once the clean path has run.
//
//	ctx, stop := shutdown.Notify()
//	defer stop()
//	...
//	select {
//	case <-ctx.Done():  // drain, flush, close
//	}
func Notify() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	stopped := make(chan struct{})
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		select {
		case <-ch:
			cancel()
		case <-stopped:
			return
		}
		// Second signal while the clean path is still draining: the
		// operator is insisting.
		select {
		case <-ch:
			os.Exit(130)
		case <-stopped:
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			close(stopped)
			cancel()
		})
	}
	return ctx, stop
}
