package lint

// TicketLeak enforces the commit-pipeline liveness invariant
// documented on shard.Prepare: every *shard.Commit it returns holds an
// epoch ticket — a slot in the store-wide total commit order — and
// exactly one Commit() or Abort() call must follow on every
// control-flow path. An abandoned ticket is worse than a resource
// leak: the committed watermark can never pass the missing epoch, so
// every later write and snapshot queued behind it on the ticket's
// shards stalls forever. The analyzer is control-flow aware (a ticket
// released in only one branch of an if is a finding) and treats any
// ownership hand-off — returning the ticket, storing it, passing it to
// another function, capturing it in a closure — as transferring the
// obligation to the new owner.
var TicketLeak = &Analyzer{
	Name: "ticketleak",
	Doc:  "epoch tickets from shard.Prepare must reach Commit() or Abort() on all paths",
	Run: func(pass *Pass) {
		runResourceSpecs(pass, []*resourceSpec{
			{
				pkgSuffix: "internal/shard",
				typeName:  "Commit",
				creators:  []string{"Prepare"},
				releases:  []string{"Commit", "Abort"},
				what:      "epoch ticket (*shard.Commit)",
				verb:      "committed or aborted",
			},
		})
	},
}
