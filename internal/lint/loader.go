package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath   string
	Dir          string
	Name         string
	Standard     bool
	DepOnly      bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	ImportMap    map[string]string
	Error        *struct{ Err string }
}

// Loader type-checks packages from source using only the standard
// library: `go list -json` supplies file sets and the import graph,
// go/parser + go/types do the rest. It exists because the repository
// carries no module dependencies, so golang.org/x/tools/go/packages is
// not available; everything triadlint needs — full type information
// for the tree, its test files, and the stdlib closure — is
// reconstructible from the toolchain that is already required to build
// the repo.
//
// A Loader caches every package it checks, so repeated Load calls
// (e.g. the analysistest harness loading stdlib stubs per test) pay
// for each import path once per process.
type Loader struct {
	// Dir is the directory go list runs in; it must be inside the
	// module. "." works anywhere in the repo.
	Dir string

	mu      sync.Mutex
	fset    *token.FileSet
	listed  map[string]*listPkg
	checked map[string]*types.Package
	plain   map[string]*Package
	sizes   types.Sizes
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	return &Loader{
		Dir:     dir,
		fset:    token.NewFileSet(),
		listed:  make(map[string]*listPkg),
		checked: make(map[string]*types.Package),
		plain:   make(map[string]*Package),
		sizes:   sizes,
	}
}

// Load lists the packages matching patterns and type-checks them along
// with their full dependency closure, returning an analysis-ready
// Package per match. In-package test files are checked as part of
// their package (legal Go guarantees this cannot introduce an import
// cycle) and external _test packages are returned as their own
// entries, so the analyzers see the whole tree the race suite runs.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()

	targets, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	// Test-only imports are outside the -deps closure; list them too.
	var extra []string
	for _, p := range targets {
		if p.DepOnly || p.Standard {
			continue
		}
		for _, imp := range append(append([]string{}, p.TestImports...), p.XTestImports...) {
			if _, ok := l.listed[imp]; !ok && imp != "C" {
				extra = append(extra, imp)
			}
		}
	}
	if len(extra) > 0 {
		if _, err := l.list(extra); err != nil {
			return nil, err
		}
	}

	// Establish the canonical dependency universe first: every package
	// checked from its non-test files only, in dependency order, so
	// each import path has exactly one types.Package identity.
	for _, p := range targets {
		if p.Name == "" || p.ImportPath == "unsafe" {
			continue
		}
		if _, err := l.typePkg(p.ImportPath); err != nil {
			return nil, err
		}
	}

	// Then build the analysis view of each matched package: augmented
	// in place with its in-package test files (legal Go guarantees
	// that cannot introduce an import cycle), plus any external _test
	// package as its own entry. Augmented checks are never cached, so
	// importers keep resolving to the canonical plain packages above.
	var out []*Package
	for _, p := range targets {
		if p.DepOnly || p.Standard || p.Name == "" {
			continue
		}
		pkg := l.plain[p.ImportPath]
		if len(p.TestGoFiles) > 0 {
			files := append(append([]string{}, p.GoFiles...), p.TestGoFiles...)
			pkg, err = l.check(p, p.ImportPath, files, false)
			if err != nil {
				return nil, err
			}
		}
		if pkg != nil {
			out = append(out, pkg)
		}
		if len(p.XTestGoFiles) > 0 {
			xpkg, err := l.check(p, p.ImportPath+"_test", p.XTestGoFiles, false)
			if err != nil {
				return nil, err
			}
			out = append(out, xpkg)
		}
	}
	return out, nil
}

// list runs go list -deps -json over args, merging results into
// l.listed and returning the packages in dependency-first order.
func (l *Loader) list(args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-deps", "-json=ImportPath,Dir,Name,Standard,DepOnly,GoFiles,TestGoFiles,XTestGoFiles,Imports,TestImports,XTestImports,ImportMap,Error"}, args...)...)
	cmd.Dir = l.Dir
	// Cgo off: every package the checker sees must be pure Go source,
	// and the stdlib has pure-Go fallbacks for everything we reach.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if _, ok := l.listed[p.ImportPath]; !ok {
			l.listed[p.ImportPath] = p
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// typePkg returns the checked types.Package for an import path,
// checking it (and transitively its imports) on first use.
func (l *Loader) typePkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	meta, ok := l.listed[path]
	if !ok {
		// A dependency surfaced that earlier list calls did not cover
		// (e.g. a test-only import's own deps): list its closure now.
		if _, err := l.list([]string{path}); err != nil {
			return nil, err
		}
		meta, ok = l.listed[path]
		if !ok {
			return nil, fmt.Errorf("lint: package %q not found by go list", path)
		}
	}
	pkg, err := l.check(meta, path, meta.GoFiles, true)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// check parses and type-checks one package (the given files out of
// meta.Dir, named by key); cache records it as the canonical package
// for the import path, which must happen exactly for the plain
// (non-test-augmented) build.
func (l *Loader) check(meta *listPkg, key string, files []string, cache bool) (*Package, error) {
	var asts []*ast.File
	for _, name := range files {
		full := filepath.Join(meta.Dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", full, err)
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: &mapImporter{l: l, meta: meta},
		Sizes:    l.sizes,
	}
	tpkg, err := conf.Check(key, l.fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %v", key, err)
	}
	pkg := &Package{Path: key, Fset: l.fset, Files: asts, Types: tpkg, TypesInfo: info}
	if cache {
		l.checked[key] = tpkg
		l.plain[key] = pkg
	}
	return pkg, nil
}

// mapImporter resolves the current package's imports through its
// go-list ImportMap (vendored stdlib) and the loader cache.
type mapImporter struct {
	l    *Loader
	meta *listPkg
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.meta.ImportMap[path]; ok {
		path = mapped
	}
	return m.l.typePkg(path)
}
