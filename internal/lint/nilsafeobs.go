package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// obsNilSafeTypes are the observability types whose nil receiver is a
// documented no-op: `-no-observability` (and a nil Tracer from
// sampling-off) rely on every exported method compiling down to a
// pointer test, so instrumentation call sites never branch.
var obsNilSafeTypes = []string{"Hist", "Tracer", "Trace", "Journal", "SlowLog", "Ledger"}

// NilSafeObs enforces the obs layer's nil-receiver contract:
//
//  1. inside internal/obs, every exported method with a pointer
//     receiver on a nil-safe type must guard `recv == nil` before the
//     first receiver field access (a method that touches no fields
//     needs no guard — method calls on a nil receiver are fine as long
//     as the callee guards);
//  2. outside internal/obs, code must never access fields of these
//     types directly — only methods keep the nil contract, so a field
//     poked from a caller is one `-no-observability` run away from a
//     nil dereference.
var NilSafeObs = &Analyzer{
	Name: "nilsafeobs",
	Doc:  "obs nil-safe types must guard the nil receiver before field access; callers must not touch their fields",
	Run:  runNilSafeObs,
}

func runNilSafeObs(pass *Pass) {
	inObs := pkgMatches(pass.Pkg, "internal/obs")
	for _, f := range pass.Files {
		if inObs {
			checkObsMethods(pass, f)
		} else {
			checkObsFieldAccess(pass, f)
		}
	}
}

func isObsNilSafe(t types.Type) (string, bool) {
	n := namedOf(t)
	if n == nil || !pkgMatches(n.Obj().Pkg(), "internal/obs") {
		return "", false
	}
	for _, name := range obsNilSafeTypes {
		if n.Obj().Name() == name {
			return name, true
		}
	}
	return "", false
}

// checkObsMethods verifies the guard-before-field-access discipline on
// exported pointer-receiver methods inside the obs package.
func checkObsMethods(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
			continue
		}
		if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
			continue // unnamed receiver cannot be dereferenced
		}
		recvIdent := fd.Recv.List[0].Names[0]
		recvObj := pass.TypesInfo.Defs[recvIdent]
		if recvObj == nil {
			continue
		}
		if _, ok := recvObj.Type().(*types.Pointer); !ok {
			continue // value receiver: a nil pointer can't reach it
		}
		typeName, ok := isObsNilSafe(recvObj.Type())
		if !ok {
			continue
		}
		if acc := firstUnguardedFieldAccess(pass, fd.Body, recvObj); acc != nil {
			pass.Reportf(acc.Pos(),
				"%s.%s accesses field %s before guarding the nil receiver; obs.%s must be nil-safe (add `if %s == nil { return ... }` first)",
				typeName, fd.Name.Name, fieldAccessName(acc), typeName, recvIdent.Name)
		}
	}
}

// firstUnguardedFieldAccess scans the method body's top-level
// statements in order. Once a statement of the form
// `if recv == nil { ...return }` (possibly `recv == nil || more` —
// short-circuit evaluation makes trailing field reads safe) has been
// seen, everything after is considered guarded. A receiver field
// access found before that point is returned.
func firstUnguardedFieldAccess(pass *Pass, body *ast.BlockStmt, recv types.Object) *ast.SelectorExpr {
	for _, stmt := range body.List {
		if ifStmt, ok := stmt.(*ast.IfStmt); ok && ifStmt.Init == nil {
			if guardsNil(pass, ifStmt, recv) {
				return nil // everything after the guard is safe
			}
		}
		if acc := receiverFieldAccess(pass, stmt, recv); acc != nil {
			return acc
		}
	}
	return nil
}

// guardsNil reports whether ifStmt is a nil guard for recv: the
// condition's short-circuit spine starts with `recv == nil` and the
// body unconditionally leaves the function.
func guardsNil(pass *Pass, ifStmt *ast.IfStmt, recv types.Object) bool {
	if !condStartsWithNilCheck(pass, ifStmt.Cond, recv) {
		return false
	}
	return blockTerminates(ifStmt.Body)
}

// condStartsWithNilCheck walks the left spine of a `||` chain looking
// for `recv == nil` as the first evaluated operand — the only position
// where later operands may legally touch receiver fields.
func condStartsWithNilCheck(pass *Pass, cond ast.Expr, recv types.Object) bool {
	cond = ast.Unparen(cond)
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if be.Op == token.LOR {
		return condStartsWithNilCheck(pass, be.X, recv)
	}
	if be.Op != token.EQL {
		return false
	}
	lhs, rhs := ast.Unparen(be.X), ast.Unparen(be.Y)
	for _, pair := range [][2]ast.Expr{{lhs, rhs}, {rhs, lhs}} {
		if id, ok := pair[0].(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv && isNilIdent(pass, pair[1]) {
			return true
		}
	}
	return false
}

// blockTerminates reports whether the block's last statement
// unconditionally leaves the function.
func blockTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	default:
		return terminates(last)
	}
}

// receiverFieldAccess finds a selector `recv.field` (through nested
// selectors like recv.mu.Lock) anywhere in stmt where field resolves
// to a struct field, excluding accesses syntactically inside a nested
// nil guard (an inner `if recv == nil` conditional) — only the
// top-level-ordering heuristic above decides guardedness, but the
// guard's own condition may contain post-check accesses.
func receiverFieldAccess(pass *Pass, stmt ast.Stmt, recv types.Object) *ast.SelectorExpr {
	var found *ast.SelectorExpr
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		// Inside a guard-shaped if: the condition short-circuits, so
		// accesses after the nil check are fine; the body never runs
		// on nil. Skip the whole statement.
		if inner, ok := n.(*ast.IfStmt); ok && inner.Init == nil && guardsNil(pass, inner, recv) {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[base] != recv {
			return true
		}
		if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			found = sel
			return false
		}
		return true
	})
	return found
}

func fieldAccessName(sel *ast.SelectorExpr) string {
	return sel.Sel.Name
}

// checkObsFieldAccess flags direct field access on nil-safe obs types
// from outside the obs package.
func checkObsFieldAccess(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		if name, ok := isObsNilSafe(s.Recv()); ok {
			pass.Reportf(sel.Sel.Pos(),
				"direct access to obs.%s field %s outside internal/obs; use its nil-safe methods",
				name, sel.Sel.Name)
		}
		return true
	})
}
