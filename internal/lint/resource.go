package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// resourceSpec describes one "must be released" resource: calls named
// in creators whose result is the named type must, on every
// control-flow path, either have one of the release methods called on
// them or be handed off (returned, stored, passed to another
// function — a tracked owner takes over).
type resourceSpec struct {
	pkgSuffix string   // package path suffix owning the type
	typeName  string   // named (or interface) type of the resource
	creators  []string // function/method names that mint one
	releases  []string // method names that satisfy the obligation
	what      string   // diagnostic noun, e.g. "epoch ticket (*shard.Commit)"
	verb      string   // diagnostic verb phrase, e.g. "committed or aborted"
}

func (rs *resourceSpec) createdBy(name string) bool {
	for _, c := range rs.creators {
		if c == name {
			return true
		}
	}
	return false
}

func (rs *resourceSpec) releasedBy(name string) bool {
	for _, r := range rs.releases {
		if r == name {
			return true
		}
	}
	return false
}

// creation is one tracked minting of a resource in a function body.
type creation struct {
	spec *resourceSpec
	call *ast.CallExpr
	obj  types.Object // tracked local, nil when the result is dropped
	err  types.Object // error assigned alongside, if any
}

// runResourceSpecs checks every function body in the pass against the
// specs. The analysis is intra-procedural and deliberately
// transfer-friendly: any use that could move ownership elsewhere
// (argument, return value, struct/slice/map/channel placement, alias
// assignment, capture by a closure) satisfies the obligation, so the
// only findings are values that provably stay local and still miss a
// release on some path — the exact shape of a leak bug.
func runResourceSpecs(pass *Pass, specs []*resourceSpec) {
	for _, f := range pass.Files {
		parents := buildParents(f)
		funcBodies([]*ast.File{f}, func(body *ast.BlockStmt, decl *ast.FuncDecl) {
			checkBody(pass, specs, parents, body)
		})
	}
}

func checkBody(pass *Pass, specs []*resourceSpec, parents map[ast.Node]ast.Node, body *ast.BlockStmt) {
	creations := findCreations(pass, specs, parents, body)
	if len(creations) == 0 {
		return
	}
	g := buildCFG(body)
	if !g.ok {
		return // goto et al: skip rather than report unsoundly
	}

	for _, c := range creations {
		if c.obj == nil {
			pass.Reportf(c.call.Pos(), "result of %s (%s) is dropped; it must be %s",
				calleeName(c.call), c.spec.what, c.spec.verb)
			continue
		}
		satisfying := satisfyingNodes(pass, c.spec, specs, parents, body, c.obj, g)
		node := nodeFor(parents, g, c.call)
		if node == nil {
			continue
		}
		if leak := findLeakPath(pass, g, node, satisfying, c); leak != nil {
			where := "the function exit"
			if leak.stmt != nil {
				where = fmt.Sprintf("line %d", pass.Fset.Position(leak.stmt.Pos()).Line)
			}
			pass.Reportf(c.call.Pos(), "%s may not be %s on the path reaching %s",
				c.spec.what, c.spec.verb, where)
		}
	}
}

// findCreations collects tracked resource mintings in body, skipping
// nested function literals (each literal is checked as its own body).
func findCreations(pass *Pass, specs []*resourceSpec, parents map[ast.Node]ast.Node, body *ast.BlockStmt) []creation {
	var creations []creation
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if name == "" {
			return true
		}
		for _, spec := range specs {
			if !spec.createdBy(name) {
				continue
			}
			results := resultTypes(pass.TypesInfo, call)
			idx := -1
			for i, rt := range results {
				if isNamedType(rt, spec.pkgSuffix, spec.typeName) {
					idx = i
					break
				}
			}
			if idx < 0 {
				continue
			}
			c := creation{spec: spec, call: call}
			track := false
			switch p := parents[ast.Node(call)].(type) {
			case *ast.AssignStmt:
				var lhs ast.Expr
				if len(p.Rhs) == 1 {
					if idx < len(p.Lhs) {
						lhs = p.Lhs[idx]
					}
					for i, l := range p.Lhs {
						if i == idx {
							continue
						}
						if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
							if o := identObject(pass.TypesInfo, id); o != nil && isErrorType(o.Type()) {
								c.err = o
							}
						}
					}
				} else {
					for i, rhs := range p.Rhs {
						if ast.Unparen(rhs) == ast.Expr(call) && i < len(p.Lhs) {
							lhs = p.Lhs[i]
						}
					}
				}
				switch l := lhs.(type) {
				case *ast.Ident:
					track = true
					if l.Name != "_" {
						c.obj = identObject(pass.TypesInfo, l)
					}
					// `_ = create()`: obj stays nil, reported as dropped.
				case nil:
					// Unmatched slot; leave untracked.
				default:
					// Stored straight into a slice element, struct
					// field, or map entry: ownership moved to that
					// container — a transfer, not a drop.
				}
			case *ast.ValueSpec:
				track = true
				if len(p.Values) == 1 && idx < len(p.Names) && p.Names[idx].Name != "_" {
					c.obj = identObject(pass.TypesInfo, p.Names[idx])
				} else {
					for i, v := range p.Values {
						if ast.Unparen(v) == ast.Expr(call) && i < len(p.Names) && p.Names[i].Name != "_" {
							c.obj = identObject(pass.TypesInfo, p.Names[i])
						}
					}
				}
			case *ast.ExprStmt:
				track = true // result dropped on the floor: reported as-is
			default:
				// Returned, passed along, stored into a composite —
				// ownership moved before it ever had a local name.
			}
			if track {
				creations = append(creations, c)
			}
			break
		}
		return true
	})
	return creations
}

// identObject resolves an identifier in assignment position.
func identObject(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

func isErrorType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// satisfyingNodes finds every statement that satisfies the release
// obligation for obj: a release-method call (including deferred ones)
// or any ownership transfer. Neutral uses (method calls like Epoch(),
// field accesses, nil comparisons) do not satisfy.
func satisfyingNodes(pass *Pass, spec *resourceSpec, specs []*resourceSpec, parents map[ast.Node]ast.Node, body *ast.BlockStmt, obj types.Object, g *cfg) map[*cfgNode]bool {
	satisfying := make(map[*cfgNode]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		// A use inside a nested function literal: the closure may run
		// later (defer, goroutine, stored callback) — treat the
		// statement introducing the literal as satisfying. The walk
		// stops at the analyzed body so that, when body is itself a
		// FuncLit's block, the enclosing literal does not count.
		var litAncestor ast.Node
		for p := parents[ast.Node(id)]; p != nil && p != ast.Node(body); p = parents[p] {
			if _, ok := p.(*ast.FuncLit); ok {
				litAncestor = p
			}
		}
		anchor := ast.Node(id)
		if litAncestor != nil {
			anchor = litAncestor
		}
		stmt := enclosingStmt(parents, g, anchor)
		if stmt == nil {
			return true
		}
		if litAncestor != nil || classifyUse(pass, spec, specs, parents, id) != useNeutral {
			satisfying[g.nodes[stmt]] = true
		}
		return true
	})
	return satisfying
}

type useKind int

const (
	useNeutral useKind = iota
	useRelease
	useTransfer
)

// classifyUse decides what one mention of the resource does.
func classifyUse(pass *Pass, spec *resourceSpec, allSpecs []*resourceSpec, parents map[ast.Node]ast.Node, id *ast.Ident) useKind {
	switch p := parents[ast.Node(id)].(type) {
	case *ast.SelectorExpr:
		if p.X != ast.Expr(id) {
			return useNeutral
		}
		if call, ok := parents[ast.Node(p)].(*ast.CallExpr); ok && call.Fun == ast.Expr(p) {
			if spec.releasedBy(p.Sel.Name) {
				return useRelease
			}
			// A derived-resource constructor: a method on the resource
			// whose result is itself tracked (snap.NewIterator, ...)
			// hands the receiver to the derived object, whose own
			// release obligation then covers both.
			for _, rt := range resultTypes(pass.TypesInfo, call) {
				for _, os := range allSpecs {
					if isNamedType(rt, os.pkgSuffix, os.typeName) {
						return useTransfer
					}
				}
			}
			return useNeutral // other method calls don't move ownership
		}
		if spec.releasedBy(p.Sel.Name) {
			return useTransfer // method value (it.Close handed around)
		}
		return useNeutral
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if ast.Unparen(arg) == ast.Expr(id) {
				return useTransfer // handed to another function
			}
		}
		return useNeutral
	case *ast.ReturnStmt:
		return useTransfer
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if ast.Unparen(rhs) == ast.Expr(id) {
				return useTransfer // aliased or stored somewhere
			}
		}
		return useNeutral // reassignment target: that creation is tracked separately
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt, *ast.UnaryExpr, *ast.IndexExpr:
		return useTransfer
	case *ast.RangeStmt:
		if p.X == ast.Expr(id) {
			return useTransfer
		}
		return useNeutral
	case *ast.TypeAssertExpr, *ast.StarExpr, *ast.ParenExpr:
		return useTransfer // conservative: wrapped and used elsewhere
	}
	return useNeutral
}

// findLeakPath searches for a path from the creation node to the
// function exit that never passes a satisfying node, pruning branches
// where the resource is provably nil (error-checked creations,
// explicit nil tests). It returns the node from which the exit was
// reached, or nil when every path satisfies the obligation.
func findLeakPath(pass *Pass, g *cfg, from *cfgNode, satisfying map[*cfgNode]bool, c creation) *cfgNode {
	succsOf := func(n *cfgNode) []*cfgNode {
		if ifStmt, ok := n.stmt.(*ast.IfStmt); ok && n.thenEntry != nil {
			switch nilBranch(pass, ifStmt.Cond, c.obj, c.err) {
			case nilOnThen:
				return []*cfgNode{n.elseEntry}
			case nilOnElse:
				return []*cfgNode{n.thenEntry}
			}
		}
		return n.succs
	}
	visited := make(map[*cfgNode]bool)
	var dfs func(n, pred *cfgNode) *cfgNode
	dfs = func(n, pred *cfgNode) *cfgNode {
		if n == nil || visited[n] {
			return nil
		}
		if n.isExit {
			return pred
		}
		visited[n] = true
		if satisfying[n] {
			return nil
		}
		for _, s := range succsOf(n) {
			if bad := dfs(s, n); bad != nil {
				return bad
			}
		}
		return nil
	}
	visited[from] = true
	for _, s := range succsOf(from) {
		if bad := dfs(s, from); bad != nil {
			return bad
		}
	}
	return nil
}

type nilBranchKind int

const (
	nilUnknown nilBranchKind = iota
	nilOnThen                // condition true => resource is nil
	nilOnElse                // condition false => resource is nil
)

// nilBranch inspects an if condition for the idioms that imply the
// resource is nil on one branch: `err != nil` / `err == nil` for the
// creation's sibling error, and `v == nil` / `v != nil` for the
// resource itself. For composite conditions only implications that
// survive the boolean structure are honored: `nil-implying && x`
// still implies nil when the whole condition is true, and the whole
// of `nil-implied-on-false || x` being false still implies nil.
func nilBranch(pass *Pass, cond ast.Expr, obj, errObj types.Object) nilBranchKind {
	cond = ast.Unparen(cond)
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return nilUnknown
	}
	switch be.Op {
	case token.LAND:
		if nilBranch(pass, be.X, obj, errObj) == nilOnThen ||
			nilBranch(pass, be.Y, obj, errObj) == nilOnThen {
			return nilOnThen
		}
		return nilUnknown
	case token.LOR:
		if nilBranch(pass, be.X, obj, errObj) == nilOnElse ||
			nilBranch(pass, be.Y, obj, errObj) == nilOnElse {
			return nilOnElse
		}
		return nilUnknown
	case token.EQL, token.NEQ:
		var matched types.Object
		lhs, rhs := ast.Unparen(be.X), ast.Unparen(be.Y)
		for _, pair := range [][2]ast.Expr{{lhs, rhs}, {rhs, lhs}} {
			id, ok := pair[0].(*ast.Ident)
			if !ok {
				continue
			}
			o := pass.TypesInfo.Uses[id]
			if o != nil && (o == obj || (errObj != nil && o == errObj)) && isNilIdent(pass, pair[1]) {
				matched = o
			}
		}
		if matched == nil {
			return nilUnknown
		}
		if errObj != nil && matched == errObj {
			// err != nil => creation failed => resource nil on then.
			if be.Op == token.NEQ {
				return nilOnThen
			}
			return nilOnElse
		}
		// v == nil => nil on then; v != nil => nil on else.
		if be.Op == token.EQL {
			return nilOnThen
		}
		return nilOnElse
	}
	return nilUnknown
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// nodeFor locates the CFG node whose statement encloses n.
func nodeFor(parents map[ast.Node]ast.Node, g *cfg, n ast.Node) *cfgNode {
	stmt := enclosingStmt(parents, g, n)
	if stmt == nil {
		return nil
	}
	return g.nodes[stmt]
}
