package lint

// MustClose enforces the lifetime conventions of the store's pinning
// handles. Snapshots pin memtable overlay versions and zombie
// sstables, iterators own snapshots, block-cache handles own a
// tenant's resident bytes, background pools own worker goroutines,
// scheduler owner handles pin queued/running tasks, and compaction
// merge/dedup iterators own every input table iterator under them;
// each is reclaimed only by an explicit Close/Release (the finalizer
// safety net exists to count leaks, not to excuse them). Every
// constructor result must therefore be closed/released on all
// control-flow paths or escape to a tracked owner (returned, stored
// in a registry, handed to another function).
var MustClose = &Analyzer{
	Name: "mustclose",
	Doc:  "snapshots, iterators, cache handles, pools and merge iterators must be closed/released or escape to an owner",
	Run: func(pass *Pass) {
		runResourceSpecs(pass, []*resourceSpec{
			{
				pkgSuffix: "internal/lsm",
				typeName:  "Snapshot",
				creators:  []string{"NewSnapshot", "NewSnapshotAt"},
				releases:  []string{"Close"},
				what:      "engine snapshot (*lsm.Snapshot)",
				verb:      "closed",
			},
			{
				pkgSuffix: "internal/lsm",
				typeName:  "Iterator",
				creators:  []string{"NewIterator"},
				releases:  []string{"Close"},
				what:      "engine iterator (*lsm.Iterator)",
				verb:      "closed",
			},
			{
				pkgSuffix: "internal/shard",
				typeName:  "Snapshot",
				creators:  []string{"NewSnapshot"},
				releases:  []string{"Close"},
				what:      "store snapshot (*shard.Snapshot)",
				verb:      "closed",
			},
			{
				pkgSuffix: "internal/shard",
				typeName:  "Iter",
				creators:  []string{"NewIterator"},
				releases:  []string{"Close"},
				what:      "store iterator (shard.Iter)",
				verb:      "closed",
			},
			{
				pkgSuffix: "internal/sstable",
				typeName:  "Handle",
				creators:  []string{"NewHandle"},
				releases:  []string{"Release"},
				what:      "block-cache tenant handle (*sstable.Handle)",
				verb:      "released",
			},
			{
				pkgSuffix: "internal/bgsched",
				typeName:  "Pool",
				creators:  []string{"NewPool"},
				releases:  []string{"Close"},
				what:      "background worker pool (*bgsched.Pool)",
				verb:      "closed",
			},
			{
				pkgSuffix: "internal/bgsched",
				typeName:  "Owner",
				creators:  []string{"NewOwner"},
				releases:  []string{"Close"},
				what:      "scheduler owner handle (*bgsched.Owner)",
				verb:      "closed",
			},
			{
				pkgSuffix: "internal/compaction",
				typeName:  "MergeIterator",
				creators:  []string{"NewMergeIterator", "NewSliceMerge"},
				releases:  []string{"Close"},
				what:      "compaction merge iterator (*compaction.MergeIterator)",
				verb:      "closed",
			},
			{
				pkgSuffix: "internal/compaction",
				typeName:  "DedupIterator",
				creators:  []string{"NewDedupIterator"},
				releases:  []string{"Close"},
				what:      "compaction dedup iterator (*compaction.DedupIterator)",
				verb:      "closed",
			},
			{
				pkgSuffix: "repro",
				typeName:  "Snapshot",
				creators:  []string{"NewSnapshot"},
				releases:  []string{"Close"},
				what:      "snapshot (*triad.Snapshot)",
				verb:      "closed",
			},
			{
				pkgSuffix: "repro",
				typeName:  "Iterator",
				creators:  []string{"NewIterator"},
				releases:  []string{"Close"},
				what:      "iterator (triad.Iterator)",
				verb:      "closed",
			},
		})
	},
}
