package lint

// MustClose enforces the lifetime conventions of the store's pinning
// handles. Snapshots pin memtable overlay versions and zombie
// sstables, iterators own snapshots, and block-cache handles own a
// tenant's resident bytes; each is reclaimed only by an explicit
// Close/Release (the finalizer safety net exists to count leaks, not
// to excuse them). Every constructor result must therefore be
// closed/released on all control-flow paths or escape to a tracked
// owner (returned, stored in a registry, handed to another function).
var MustClose = &Analyzer{
	Name: "mustclose",
	Doc:  "snapshots, iterators and cache handles must be closed/released or escape to an owner",
	Run: func(pass *Pass) {
		runResourceSpecs(pass, []*resourceSpec{
			{
				pkgSuffix: "internal/lsm",
				typeName:  "Snapshot",
				creators:  []string{"NewSnapshot", "NewSnapshotAt"},
				releases:  []string{"Close"},
				what:      "engine snapshot (*lsm.Snapshot)",
				verb:      "closed",
			},
			{
				pkgSuffix: "internal/lsm",
				typeName:  "Iterator",
				creators:  []string{"NewIterator"},
				releases:  []string{"Close"},
				what:      "engine iterator (*lsm.Iterator)",
				verb:      "closed",
			},
			{
				pkgSuffix: "internal/shard",
				typeName:  "Snapshot",
				creators:  []string{"NewSnapshot"},
				releases:  []string{"Close"},
				what:      "store snapshot (*shard.Snapshot)",
				verb:      "closed",
			},
			{
				pkgSuffix: "internal/shard",
				typeName:  "Iter",
				creators:  []string{"NewIterator"},
				releases:  []string{"Close"},
				what:      "store iterator (shard.Iter)",
				verb:      "closed",
			},
			{
				pkgSuffix: "internal/sstable",
				typeName:  "Handle",
				creators:  []string{"NewHandle"},
				releases:  []string{"Release"},
				what:      "block-cache tenant handle (*sstable.Handle)",
				verb:      "released",
			},
			{
				pkgSuffix: "repro",
				typeName:  "Snapshot",
				creators:  []string{"NewSnapshot"},
				releases:  []string{"Close"},
				what:      "snapshot (*triad.Snapshot)",
				verb:      "closed",
			},
			{
				pkgSuffix: "repro",
				typeName:  "Iterator",
				creators:  []string{"NewIterator"},
				releases:  []string{"Close"},
				what:      "iterator (triad.Iterator)",
				verb:      "closed",
			},
		})
	},
}
