package lint

import (
	"go/ast"
	"go/token"
)

// cfgNode is one statement (or synthetic join/exit point) in a
// function's control-flow graph. Control statements are decomposed:
// an *ast.IfStmt's node represents only its init+condition, with the
// branch entries recorded so path searches can prune by condition; a
// loop's node is its guard.
type cfgNode struct {
	stmt   ast.Stmt // nil for the synthetic exit
	succs  []*cfgNode
	isExit bool

	// For *ast.IfStmt nodes: where the true and false edges enter.
	// Both also appear in succs.
	thenEntry, elseEntry *cfgNode
}

// cfg is the control-flow graph of one function body.
type cfg struct {
	entry *cfgNode
	exit  *cfgNode
	// nodes maps each statement to its node. Statements nested inside
	// a node's expression position (e.g. an if's Init assignment) map
	// to the enclosing control node.
	nodes map[ast.Stmt]*cfgNode
	// ok is false when the body uses constructs the builder does not
	// model (goto); analyses should then skip the function rather
	// than report unsoundly.
	ok bool
}

type cfgBuilder struct {
	g      *cfg
	labels map[string]*labelTargets
	bad    bool
}

type labelTargets struct {
	breakTo    *cfgNode
	continueTo *cfgNode
}

// buildCFG constructs the graph for a function body. The second
// result is false when the body is unmodellable (contains goto).
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{
		g: &cfg{
			exit:  &cfgNode{isExit: true},
			nodes: make(map[ast.Stmt]*cfgNode),
		},
		labels: make(map[string]*labelTargets),
	}
	b.g.entry = b.stmts(body.List, b.g.exit, nil, nil)
	b.g.ok = !b.bad
	return b.g
}

// node allocates the node for stmt.
func (b *cfgBuilder) node(stmt ast.Stmt) *cfgNode {
	n := &cfgNode{stmt: stmt}
	b.g.nodes[stmt] = n
	return n
}

// stmts wires a statement list so that falling off the end reaches
// next; breakTo/continueTo are the innermost loop (or switch) targets.
func (b *cfgBuilder) stmts(list []ast.Stmt, next, breakTo, continueTo *cfgNode) *cfgNode {
	// Build back to front so each statement knows its successor.
	for i := len(list) - 1; i >= 0; i-- {
		next = b.stmt(list[i], next, breakTo, continueTo, "")
	}
	return next
}

// stmt builds the subgraph for one statement and returns its entry
// node. label is the statement's label when it was wrapped in an
// *ast.LabeledStmt.
func (b *cfgBuilder) stmt(s ast.Stmt, next, breakTo, continueTo *cfgNode, label string) *cfgNode {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, next, breakTo, continueTo)

	case *ast.LabeledStmt:
		// Register targets before building the body so labeled
		// break/continue inside it resolve. continueTo is patched by
		// the loop cases below via the shared labelTargets.
		lt := &labelTargets{breakTo: next}
		b.labels[s.Label.Name] = lt
		return b.stmt(s.Stmt, next, breakTo, continueTo, s.Label.Name)

	case *ast.IfStmt:
		n := b.node(s)
		elseEntry := next
		if s.Else != nil {
			elseEntry = b.stmt(s.Else, next, breakTo, continueTo, "")
		}
		thenEntry := b.stmts(s.Body.List, next, breakTo, continueTo)
		n.thenEntry, n.elseEntry = thenEntry, elseEntry
		n.succs = []*cfgNode{thenEntry, elseEntry}
		return n

	case *ast.ForStmt:
		guard := b.node(s)
		if label != "" {
			b.labels[label].continueTo = guard
		}
		post := guard
		if s.Post != nil {
			post = b.stmt(s.Post, guard, nil, nil, "")
		}
		if label != "" {
			// Labeled continue re-runs the post statement.
			b.labels[label].continueTo = post
		}
		body := b.stmts(s.Body.List, post, next, post)
		guard.succs = append(guard.succs, body)
		if s.Cond != nil {
			guard.succs = append(guard.succs, next)
		}
		entry := guard
		if s.Init != nil {
			entry = b.stmt(s.Init, guard, nil, nil, "")
		}
		return entry

	case *ast.RangeStmt:
		guard := b.node(s)
		if label != "" {
			b.labels[label].continueTo = guard
		}
		body := b.stmts(s.Body.List, guard, next, guard)
		guard.succs = []*cfgNode{body, next}
		return guard

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		n := b.node(s)
		var clauses []ast.Stmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			clauses = s.Body.List
		case *ast.TypeSwitchStmt:
			clauses = s.Body.List
		}
		hasDefault := false
		// Build cases back to front so fallthrough can target the
		// following case's body.
		entries := make([]*cfgNode, len(clauses))
		following := next
		for i := len(clauses) - 1; i >= 0; i-- {
			cc := clauses[i].(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			entries[i] = b.caseBody(cc, next, following, continueTo)
			following = entries[i]
		}
		n.succs = append(n.succs, entries...)
		if !hasDefault {
			n.succs = append(n.succs, next)
		}
		if label != "" {
			b.labels[label].breakTo = next
		}
		return n

	case *ast.SelectStmt:
		n := b.node(s)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			entry := b.stmts(cc.Body, next, next, continueTo)
			if cc.Comm != nil {
				entry = b.stmt(cc.Comm, entry, nil, nil, "")
			}
			n.succs = append(n.succs, entry)
		}
		// A select{} with no cases blocks forever: no successors.
		return n

	case *ast.ReturnStmt:
		n := b.node(s)
		n.succs = []*cfgNode{b.g.exit}
		return n

	case *ast.BranchStmt:
		n := b.node(s)
		switch s.Tok {
		case token.BREAK:
			target := breakTo
			if s.Label != nil {
				if lt := b.labels[s.Label.Name]; lt != nil {
					target = lt.breakTo
				}
			}
			if target != nil {
				n.succs = []*cfgNode{target}
			}
		case token.CONTINUE:
			target := continueTo
			if s.Label != nil {
				if lt := b.labels[s.Label.Name]; lt != nil {
					target = lt.continueTo
				}
			}
			if target != nil {
				n.succs = []*cfgNode{target}
			}
		case token.FALLTHROUGH:
			// Normally rewired by caseBody; as a bare statement fall
			// through to the recorded next.
			n.succs = []*cfgNode{next}
		case token.GOTO:
			b.bad = true
		}
		return n

	default:
		// Simple statements: assignments, declarations, expressions,
		// defer, go, send, inc/dec, empty.
		n := b.node(s)
		if terminates(s) {
			return n // no successors: panic/os.Exit-style dead end
		}
		n.succs = []*cfgNode{next}
		return n
	}
}

// caseBody wires one case clause body: break exits the switch, a
// trailing fallthrough jumps to the entry of the following case.
func (b *cfgBuilder) caseBody(cc *ast.CaseClause, next, following, continueTo *cfgNode) *cfgNode {
	list := cc.Body
	if n := len(list); n > 0 {
		if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			tail := &cfgNode{stmt: br, succs: []*cfgNode{following}}
			b.g.nodes[br] = tail
			list = list[:n-1]
			for i := len(list) - 1; i >= 0; i-- {
				tail = b.stmt(list[i], tail, next, continueTo, "")
			}
			return tail
		}
	}
	return b.stmts(list, next, next, continueTo)
}

// terminates reports whether a simple statement is a call that never
// returns: panic, os.Exit, log.Fatal*, runtime.Goexit, or a
// testing.T/B Fatal/Fatalf/FailNow/Skip* call. Purely syntactic — it
// exists so analyses do not flag cleanup-free crash paths.
func terminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		switch fn.Sel.Name {
		case "Exit", "Goexit", "Fatal", "Fatalf", "Fatalln", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}
