package lint

import (
	"go/ast"
	"go/types"
)

// AtomicField enforces the memory-model discipline around sync/atomic:
//
//  1. a struct field passed to a sync/atomic function (`&x.f` in
//     atomic.LoadInt64(&x.f), atomic.AddUint64(&x.f, 1), ...)
//     anywhere in the package must be accessed through sync/atomic
//     everywhere — one plain read racing an atomic write is an
//     undiagnosed data race that `-race` only catches if a torture
//     test happens to interleave it;
//  2. a raw 64-bit field used with sync/atomic must sit at an 8-byte
//     aligned offset under 32-bit struct layout rules, where the Go
//     runtime only guarantees alignment for the first word of an
//     allocation (the atomic.Int64 wrapper types embed an alignment
//     pad and are always safe — prefer them).
//
// The check is per-package, which matches Go's visibility rules: an
// unexported field cannot be touched from outside its package, and the
// repository's convention is that atomics are never exported.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must be accessed atomically everywhere and 64-bit ones must be alignment-safe",
	Run:  runAtomicField,
}

// atomicFns maps sync/atomic function names to the indexes of their
// pointer arguments (always 0 for the value-typed API).
var atomicFns = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true,
	"LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true,
	"StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true,
	"SwapUintptr": true, "SwapPointer": true,
	"AndInt32": true, "AndInt64": true, "AndUint32": true, "AndUint64": true, "AndUintptr": true,
	"OrInt32": true, "OrInt64": true, "OrUint32": true, "OrUint64": true, "OrUintptr": true,
}

func runAtomicField(pass *Pass) {
	// Pass 1: collect fields used atomically, and remember the exact
	// selector nodes inside atomic calls (they are the allowed uses).
	atomicFields := make(map[*types.Var]ast.Node) // field -> example atomic use
	allowed := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !atomicFns[fn.Sel.Name] {
				return true
			}
			if pkg, ok := ast.Unparen(fn.X).(*ast.Ident); !ok || !isSyncAtomic(pass, pkg) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fv := fieldOf(pass, sel); fv != nil {
				if _, seen := atomicFields[fv]; !seen {
					atomicFields[fv] = call
				}
				allowed[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: every other access to those fields is a finding.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || allowed[sel] {
				return true
			}
			fv := fieldOf(pass, sel)
			if fv == nil {
				return true
			}
			if first, ok := atomicFields[fv]; ok {
				pass.Reportf(sel.Sel.Pos(),
					"field %s is accessed with sync/atomic (e.g. at %s) and must not be accessed plainly; use the atomic API or an atomic.%s",
					fv.Name(), pass.Fset.Position(first.Pos()), wrapperFor(fv.Type()))
				return true
			}
			return true
		})
	}

	// Pass 3: 64-bit atomic fields must be 8-byte aligned under 32-bit
	// layout rules.
	sizes := types.SizesFor("gc", "386")
	for fv := range atomicFields {
		if !is64Bit(fv.Type()) {
			continue
		}
		owner, index := findOwnerStruct(pass, fv)
		if owner == nil {
			continue
		}
		fields := make([]*types.Var, owner.NumFields())
		for i := range fields {
			fields[i] = owner.Field(i)
		}
		offsets := sizes.Offsetsof(fields)
		if offsets[index]%8 != 0 {
			pass.Reportf(fv.Pos(),
				"64-bit atomic field %s is at offset %d under 32-bit alignment; move it to an 8-byte aligned position or use atomic.%s",
				fv.Name(), offsets[index], wrapperFor(fv.Type()))
		}
	}
}

func isSyncAtomic(pass *Pass, id *ast.Ident) bool {
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	return pn.Imported().Path() == "sync/atomic"
}

// fieldOf resolves a selector to the struct field it denotes, or nil.
func fieldOf(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	obj := s.Obj()
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

func is64Bit(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int64, types.Uint64:
		return true
	}
	return false
}

func wrapperFor(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64:
		return "Uint64"
	case types.Uintptr:
		return "Uintptr"
	}
	return "Value"
}

// findOwnerStruct locates the struct type declaring the field and the
// field's index within it, searching the package's named types.
func findOwnerStruct(pass *Pass, fv *types.Var) (*types.Struct, int) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := range st.NumFields() {
			if st.Field(i) == fv {
				return st, i
			}
		}
	}
	return nil, -1
}
