// Package metricname seeds violations of the metric-naming
// conventions checked at obs.Prom emission sites.
package metricname

import "obs"

const flushBytes = "triad_flush_backlog_bytes"

func emit(p *obs.Prom, dyn string) {
	p.Counter("triad_requests_total", "", "", 1) // conventional: no finding
	p.Gauge("triad_queue_depth", "", "", 1)      // conventional: no finding
	p.GaugeF(flushBytes, "", "", 1)              // constants fold: no finding
	p.Histogram("triad_commit_wait_seconds", "", "", nil)
	p.CounterF("triad_write_stall_seconds_total", "", "", 1.5) // float counters follow counter rules: no finding

	p.Counter("triad_requests", "", "", 1)                    // want `counters must end in _total`
	p.Gauge("triad_queue_depth_total", "", "", 1)             // want `_total is the counter suffix; Gauge emits a gauge`
	p.Counter("Triad_Requests_Total", "", "", 1)              // want `not snake_case`
	p.Counter("triad__requests_total", "", "", 1)             // want `not snake_case`
	p.Counter("requests_total", "", "", 1)                    // want `missing the triad_ namespace prefix`
	p.Histogram("triad_commit_wait_ms", "", "", nil)          // want `unit suffix _ms is not a Prometheus base unit; use _seconds`
	p.Histogram("triad_commit_wait", "", "", nil)             // want `histograms must carry a base-unit suffix`
	p.Histogram("triad_commit_wait_seconds_sum", "", "", nil) // want `suffix _sum is reserved for the histogram exposition expansion`
	p.Counter(dyn, "", "", 1)                                 // want `not a compile-time constant`
	p.CounterF("triad_write_stall_seconds", "", "", 1.5)      // want `counters must end in _total`
}
