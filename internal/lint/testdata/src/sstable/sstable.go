// Package sstable is a stub of repro/internal/sstable for analyzer
// golden tests: just the block cache's tenant-handle surface.
package sstable

type Cache struct{}

func NewCache(capacity int64) *Cache { return &Cache{} }

func (c *Cache) NewHandle() *Handle { return &Handle{} }

type Handle struct{}

func (h *Handle) Get(table, off uint64) []byte      { return nil }
func (h *Handle) Put(table, off uint64, blk []byte) {}
func (h *Handle) Release()                          {}
