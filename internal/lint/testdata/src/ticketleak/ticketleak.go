// Package ticketleak seeds violations of the epoch-ticket lifetime
// invariant: every *shard.Commit minted by Prepare must reach
// Commit() or Abort() on every control-flow path. A leaked ticket
// holds its epoch open forever and stalls snapshot reclamation, so
// the analyzer treats "some path forgets" as a finding even when the
// happy path is correct.
package ticketleak

import "shard"

var cond bool

// leakOnEarlyReturn forgets the ticket on the validation bail-out.
func leakOnEarlyReturn(db *shard.DB, b *shard.Batch) error {
	c, err := db.Prepare(b) // want `epoch ticket \(\*shard\.Commit\) may not be committed or aborted`
	if err != nil {
		return err
	}
	if cond {
		return nil // ticket c leaks here
	}
	return c.Commit()
}

// dropped never binds the ticket at all.
func dropped(db *shard.DB, b *shard.Batch) {
	db.Prepare(b) // want `result of Prepare \(epoch ticket \(\*shard\.Commit\)\) is dropped`
}

// committed settles the ticket on both paths.
func committed(db *shard.DB, b *shard.Batch) error {
	c, err := db.Prepare(b)
	if err != nil {
		return err
	}
	if cond {
		c.Abort()
		return nil
	}
	return c.Commit()
}

// deferredAbort satisfies the obligation from a deferred closure:
// the analyzer treats closure capture as a hand-off.
func deferredAbort(db *shard.DB, b *shard.Batch) error {
	c, err := db.Prepare(b)
	if err != nil {
		return err
	}
	done := false
	defer func() {
		if !done {
			c.Abort()
		}
	}()
	if err := c.Commit(); err != nil {
		return err
	}
	done = true
	return nil
}

// neutralUseDoesNotSatisfy: reading the epoch is not settling the
// ticket.
func neutralUseDoesNotSatisfy(db *shard.DB, b *shard.Batch) uint64 {
	c, err := db.Prepare(b) // want `epoch ticket \(\*shard\.Commit\) may not be committed or aborted`
	if err != nil {
		return 0
	}
	return c.Epoch()
}

// transferred hands the ticket to the caller, which takes over the
// obligation.
func transferred(db *shard.DB, b *shard.Batch) (*shard.Commit, error) {
	return db.Prepare(b)
}

// transferredViaVar escapes through a return of the local.
func transferredViaVar(db *shard.DB, b *shard.Batch) (*shard.Commit, error) {
	c, err := db.Prepare(b)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// errPathPruned: the nil-implied branch is not a leak path.
func errPathPruned(db *shard.DB, b *shard.Batch) error {
	c, err := db.Prepare(b)
	if err != nil {
		return err // c is nil here: pruned, not a leak
	}
	return c.Commit()
}
