// Package mustclose seeds violations of the pinning-handle lifetime
// invariant: snapshots, iterators and block-cache tenant handles must
// be closed/released on every path, or escape to an owner (returned,
// stored, handed to a function, captured by a closure). It also pins
// the idioms the analyzer must accept: the expected-error probe, the
// derived-resource hand-off, container stores, and the explicit
// `_ = v` deliberate-leak marker used by reclamation tests.
package mustclose

import (
	"bgsched"
	"compaction"
	"lsm"
	"shard"
	"sstable"
)

var cond bool

// leakOnEarlyReturn closes on the happy path only.
func leakOnEarlyReturn(db *lsm.DB) error {
	s, err := db.NewSnapshot() // want `engine snapshot \(\*lsm\.Snapshot\) may not be closed`
	if err != nil {
		return err
	}
	if cond {
		return nil // snapshot leaks here
	}
	return s.Close()
}

// dropped never binds the snapshot.
func dropped(db *lsm.DB) {
	db.NewSnapshot() // want `result of NewSnapshot \(engine snapshot \(\*lsm\.Snapshot\)\) is dropped`
}

// leakIterator forgets the iterator entirely.
func leakIterator(db *lsm.DB) int {
	it, err := db.NewIterator(nil, nil) // want `engine iterator \(\*lsm\.Iterator\) may not be closed`
	if err != nil {
		return 0
	}
	n := 0
	for it.Next() {
		n++
	}
	return n
}

// leakHandle forgets the tenant's release.
func leakHandle(c *sstable.Cache) []byte {
	h := c.NewHandle() // want `block-cache tenant handle \(\*sstable\.Handle\) may not be released`
	return h.Get(1, 0)
}

// deferClose is the canonical correct shape.
func deferClose(db *lsm.DB) error {
	s, err := db.NewSnapshot()
	if err != nil {
		return err
	}
	defer s.Close()
	_, err = s.Get(nil)
	return err
}

// deferRelease likewise for handles.
func deferRelease(c *sstable.Cache) []byte {
	h := c.NewHandle()
	defer h.Release()
	return h.Get(1, 0)
}

// expectedErrorProbe binds the result and closes it only on the
// unexpected-success path; the error path carries a nil resource and
// is pruned.
func expectedErrorProbe(db *lsm.DB) bool {
	if s, err := db.NewSnapshot(); err == nil {
		s.Close()
		return false
	}
	return true
}

// nilTestPruned: an explicit nil test also prunes.
func nilTestPruned(db *lsm.DB) {
	s, _ := db.NewSnapshot()
	if s == nil {
		return
	}
	s.Close()
}

// storedInContainer: assignment into a slice element is an ownership
// transfer to the container, not a drop.
func storedInContainer(db *lsm.DB, snaps []*lsm.Snapshot) error {
	var err error
	snaps[0], err = db.NewSnapshot()
	return err
}

// derivedIterator: calling a constructor method on the snapshot hands
// it to the derived iterator, which the caller then owns.
func derivedIterator(db *lsm.DB) (*lsm.Iterator, error) {
	s, err := db.NewSnapshot()
	if err != nil {
		return nil, err
	}
	it, err := s.NewIterator(nil, nil)
	if err != nil {
		s.Close()
		return nil, err
	}
	return it, nil
}

// interfaceResource: shard.Iter is tracked through its interface type.
func interfaceResource(db *shard.DB) error {
	snap, err := db.NewSnapshot()
	if err != nil {
		return err
	}
	defer snap.Close()
	it, err := snap.NewIterator(nil, nil) // want `store iterator \(shard\.Iter\) may not be closed`
	if err != nil {
		return err
	}
	for it.Next() {
	}
	return nil
}

// goroutineLoopClose: a snapshot minted and closed inside a goroutine
// loop is settled even though the loop re-enters the creation; this
// pins the fix for analyzing function-literal bodies in place.
func goroutineLoopClose(db *shard.DB, stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap, err := db.NewSnapshot()
			if err != nil {
				return
			}
			snap.Close()
		}
	}()
}

// goroutineLeak: the same loop without the Close is a finding inside
// the literal body.
func goroutineLeak(db *shard.DB, stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap, err := db.NewSnapshot() // want `store snapshot \(\*shard\.Snapshot\) may not be closed`
			if err != nil {
				return
			}
			_ = snap.Get
		}
	}()
}

// deliberateLeak documents the reclamation-test idiom: binding the
// resource and explicitly discarding it with `_ = v` asserts the leak
// is intentional (the finalizer accounting is the subject under
// test), and the analyzer treats the discard as a transfer.
func deliberateLeak(db *lsm.DB) {
	s, err := db.NewSnapshot()
	if err != nil {
		return
	}
	_ = s // dropped without Close, on purpose
}

// closureCapture: capture by any closure counts as a hand-off, since
// the closure may outlive the frame.
func closureCapture(db *lsm.DB) (func() error, error) {
	s, err := db.NewSnapshot()
	if err != nil {
		return nil, err
	}
	return func() error { return s.Close() }, nil
}

// --- background scheduler handles ---

// leakPool starts workers and never stops them: goroutines leak past
// the frame.
func leakPool() int {
	p := bgsched.NewPool(2) // want `background worker pool \(\*bgsched\.Pool\) may not be closed`
	return p.Workers()
}

// poolDeferClose is the canonical correct shape.
func poolDeferClose() int {
	p := bgsched.NewPool(2)
	defer p.Close()
	return p.Workers()
}

// poolEscapesToOptions: storing the pool in a config struct hands it
// to the component that will own its shutdown.
type engineOptions struct {
	Scheduler *bgsched.Pool
}

func poolEscapesToOptions(o *engineOptions) {
	o.Scheduler = bgsched.NewPool(4)
}

// leakOwnerOnEarlyReturn closes the owner on the happy path only; the
// early return abandons its queued tasks.
func leakOwnerOnEarlyReturn(p *bgsched.Pool) error {
	o := p.NewOwner() // want `scheduler owner handle \(\*bgsched\.Owner\) may not be closed`
	if !o.Submit(bgsched.ClassFlush, 0, func() {}) {
		return nil // owner leaks here
	}
	return o.Close()
}

// ownerDeferClose settles the owner on every path.
func ownerDeferClose(p *bgsched.Pool) {
	o := p.NewOwner()
	defer o.Close()
	o.Submit(bgsched.ClassDeep, 1, func() {})
}

// --- compaction slice iterators ---

// leakSliceMerge forgets the merge (and with it every input table
// iterator) when the entry count comes up empty.
func leakSliceMerge(tables []compaction.Table, slc compaction.Slice) (int, error) {
	m, err := compaction.NewSliceMerge(tables, slc) // want `compaction merge iterator \(\*compaction\.MergeIterator\) may not be closed`
	if err != nil {
		return 0, err
	}
	n := 0
	for m.Next() {
		n++
	}
	return n, nil
}

// sliceMergeDeferClose is the correct subcompaction shape.
func sliceMergeDeferClose(tables []compaction.Table, slc compaction.Slice) (int, error) {
	m, err := compaction.NewSliceMerge(tables, slc)
	if err != nil {
		return 0, err
	}
	defer m.Close()
	n := 0
	for m.Next() {
		n++
	}
	return n, m.Err()
}

// mergeHandedToDedup: wrapping the merge in a dedup iterator transfers
// ownership — the dedup's Close covers both — but the dedup itself
// must then be settled.
func mergeHandedToDedup(its []compaction.Iterator) error {
	m := compaction.NewMergeIterator(its)
	d := compaction.NewDedupIterator(m, true, nil)
	defer d.Close()
	for d.Next() {
	}
	return d.Err()
}

// leakDedup wraps and then forgets the whole stack.
func leakDedup(its []compaction.Iterator) int {
	m := compaction.NewMergeIterator(its)
	d := compaction.NewDedupIterator(m, false, nil) // want `compaction dedup iterator \(\*compaction\.DedupIterator\) may not be closed`
	n := 0
	for d.Next() {
		n++
	}
	return n
}
