// Package lsm is a stub of repro/internal/lsm for analyzer golden
// tests.
package lsm

type DB struct{}

func (db *DB) NewSnapshot() (*Snapshot, error)             { return &Snapshot{}, nil }
func (db *DB) NewSnapshotAt(seq uint64) (*Snapshot, error) { return &Snapshot{}, nil }
func (db *DB) NewIterator(start, limit []byte) (*Iterator, error) {
	return &Iterator{}, nil
}

type Snapshot struct{}

func (s *Snapshot) Get(k []byte) ([]byte, error) { return nil, nil }
func (s *Snapshot) NewIterator(start, limit []byte) (*Iterator, error) {
	return &Iterator{}, nil
}
func (s *Snapshot) Close() error { return nil }

type Iterator struct{}

func (it *Iterator) Next() bool    { return false }
func (it *Iterator) Key() []byte   { return nil }
func (it *Iterator) Value() []byte { return nil }
func (it *Iterator) Close() error  { return nil }
