// Package nilsafeobs is the caller-side golden target for the
// nilsafeobs analyzer: outside internal/obs, code must go through the
// nil-safe methods — a direct field access is one `-no-observability`
// run away from a nil dereference.
package nilsafeobs

import "obs"

func record(h *obs.Hist) {
	h.Observe(7) // methods keep the nil contract: no finding
}

func peek(h *obs.Hist) int64 {
	return h.Count // want `direct access to obs\.Hist field Count outside internal/obs`
}

func bump(h *obs.Hist) {
	h.Count++ // want `direct access to obs\.Hist field Count outside internal/obs`
}
